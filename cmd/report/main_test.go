package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMain lets the test binary double as the report tool: with the
// helper env var set it runs main() on os.Args, so the stream-hygiene
// test below can observe real process stdout/stderr separation.
func TestMain(m *testing.M) {
	if os.Getenv("REPORT_TEST_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// progressLine matches jobs.PrintProgress output, e.g.
// "[    0.2s]   3/100 aesEncrypt128/PRO [cached] (eta 1.2s)".
var progressLine = regexp.MustCompile(`^\[ *[0-9.]+s\] +[0-9]+/[0-9]+ `)

// TestStdoutCarriesOnlyArtifacts pins the tool's stream contract:
// stdout is exclusively the paper artifacts (safe to redirect into a
// file or diff), while progress, ETA and timing lines go to stderr.
// A regression here corrupts every scripted `report > results.txt`.
func TestStdoutCarriesOnlyArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec integration test")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cache := filepath.Join(t.TempDir(), "cache")
	cmd := exec.Command(exe, "-maxtbs", "2", "-cache", cache)
	cmd.Env = append(os.Environ(), "REPORT_TEST_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("report failed: %v\nstderr:\n%s", err, stderr.String())
	}

	for i, line := range strings.Split(stdout.String(), "\n") {
		if progressLine.MatchString(line) {
			t.Errorf("stdout line %d is a progress line: %q", i+1, line)
		}
		if strings.Contains(line, "report completed in") {
			t.Errorf("stdout line %d is a timing line: %q", i+1, line)
		}
	}
	for _, artifact := range []string{
		"Fig. 4 — Speedup of PRO over baseline schedulers",
		"Table III — Improvement in stall cycles with PRO",
	} {
		if !strings.Contains(stdout.String(), artifact) {
			t.Errorf("stdout missing artifact %q", artifact)
		}
	}

	var sawProgress, sawTiming bool
	for _, line := range strings.Split(stderr.String(), "\n") {
		if progressLine.MatchString(line) {
			sawProgress = true
		}
		if strings.Contains(line, "report completed in") {
			sawTiming = true
		}
	}
	if !sawProgress {
		t.Error("no progress lines on stderr (progress reporting broke)")
	}
	if !sawTiming {
		t.Error("no completion timing line on stderr")
	}
}
