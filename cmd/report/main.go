// Command report runs the paper's entire evaluation — all 25 Table II
// kernels under TL, LRR, GTO and PRO — and emits every table and figure:
// Fig. 1 (stall composition), Fig. 2 (TB timelines), Fig. 4 (speedups),
// Fig. 5 / Table III (stall improvements) and Table IV (TB order trace).
//
// Usage:
//
//	report                 # full scaled grids, all cores
//	report -maxtbs 100     # quick pass
//	report -out results    # also write each artifact to results/
//	report -jobs 1         # serial (bit-identical to the parallel run)
//	report -cache .simcache  # memoize results; warm re-runs are instant
//	report -daemon 127.0.0.1:9753  # run on a prosimd daemon instead
//	report -workers a:9753,b:9753  # fan out across a prosimd cluster
//	report -shard 2/3 -cache /shared/simcache  # run slice 2 of 3 only
//
// With -daemon the simulations execute on a running prosimd instance
// (sharing its warm cache and deduping against other clients); -jobs and
// -cache then configure the daemon, not this process, and are ignored.
// With -workers they fan out across several prosimd instances through a
// work-stealing coordinator (retrying on worker loss); -cache is then
// the coordinator's shared merge cache. With -shard i/n the tool runs
// only its deterministic slice of the full job list (by result-cache
// key) and emits no artifacts — point n machines at a shared cache, one
// per shard, then run once without -shard to assemble everything from
// the cache without simulating.
//
// Progress and timing go to stderr; stdout carries only the artifacts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/daemon"
	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/viz"
	"repro/internal/workloads"
	"repro/prosim"
)

func main() {
	maxTBs := flag.Int("maxtbs", 0, "shrink grids to at most this many TBs (0 = full)")
	outDir := flag.String("out", "", "directory to write artifact files into (optional)")
	quiet := flag.Bool("quiet", false, "suppress per-run progress")
	njobs := flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers")
	smWorkers := flag.Int("sm-workers", 0, "SM-tick workers inside each simulation (0 = auto: spare cores per job; 1 = serial; results identical either way)")
	cacheDir := flag.String("cache", "", "result-cache directory (optional; makes warm re-runs instant)")
	cacheGC := flag.String("cache-gc", "", "after the run, evict least-recently-used cache entries down to this size (e.g. 256M; needs -cache)")
	daemonAddr := flag.String("daemon", "", "run simulations on a prosimd daemon at this address (host:port or unix:/path) instead of locally")
	workersFlag := flag.String("workers", "", "fan simulations out across these comma-separated prosimd addresses (work-stealing coordinator; -cache is the shared merge cache)")
	shardSpec := flag.String("shard", "", "run only slice i/n of the full job list (e.g. 2/3) against a shared cache and emit no artifacts")
	priority := flag.String("priority", "interactive", "scheduling class on the daemon/workers (interactive report runs preempt bulk sweeps)")
	token := flag.String("token", "", "tenant token sent as X-Prosim-Token to tokened daemons")
	traceOut := flag.String("trace-out", "", "write NDJSON job-lifecycle spans to this file (\"-\" = stderr; local runs only)")
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	log, err := logCfg.Setup()
	if err != nil {
		fatal(err)
	}
	if *daemonAddr != "" && *workersFlag != "" {
		fatal(fmt.Errorf("-daemon and -workers are mutually exclusive"))
	}

	emit := func(name, content string) {
		fmt.Println(content)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(filepath.Join(*outDir, name), []byte(content), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	start := time.Now()
	var progress func(jobs.Event)
	if !*quiet {
		progress = jobs.PrintProgress(os.Stderr)
	}
	var run jobs.Runner
	var eng *jobs.Engine
	var client *daemon.Client
	if *daemonAddr != "" {
		var err error
		client, err = daemon.Dial(*daemonAddr)
		if err != nil {
			fatal(err)
		}
		client.Progress = progress
		client.SMWorkers = *smWorkers
		client.Priority = *priority
		client.Token = *token
		run = client
	} else if *workersFlag != "" {
		var addrs []string
		for _, a := range strings.Split(*workersFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		coord, err := cluster.New(cluster.Config{
			Workers:   addrs,
			CacheDir:  *cacheDir,
			SMWorkers: *smWorkers,
			Priority:  *priority,
			Token:     *token,
			Log:       log,
		})
		if err != nil {
			fatal(err)
		}
		defer coord.Close()
		coord.OnProgress = progress
		run = coord
	} else {
		var err error
		eng, err = jobs.New(*njobs, *cacheDir, progress)
		if err != nil {
			fatal(err)
		}
		if *traceOut != "" {
			tr, err := obs.OpenTrace(*traceOut)
			if err != nil {
				fatal(err)
			}
			defer tr.Close()
			eng.Trace = tr
		}
		run = eng
	}

	scheds := []string{"TL", "LRR", "GTO", "PRO"}
	if *shardSpec != "" {
		// Shard mode: run this machine's deterministic slice of every job
		// the full report would execute (suite grid, timelines, order
		// trace), warming the shared cache, and emit no artifacts. The
		// final artifact pass is a run without -shard: with every shard
		// done it assembles purely from the cache.
		if err := runShard(*shardSpec, scheds, *maxTBs, run, start); err != nil {
			fatal(err)
		}
		return
	}

	suite, err := experiments.RunSuite(workloads.All(), scheds, *maxTBs, run)
	if err != nil {
		fatal(err)
	}

	writeFile := func(name, content string) {
		if *outDir == "" {
			return
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*outDir, name), []byte(content), 0o644); err != nil {
			fatal(err)
		}
	}

	for _, sched := range experiments.BaselineOrder {
		rows := suite.ComputeFig1(sched)
		emit("fig1_"+sched+".txt", experiments.FormatFig1(sched, rows))
		labels := make([]string, len(rows))
		parts := make([][]float64, len(rows))
		for i, r := range rows {
			labels[i] = r.App
			parts[i] = []float64{r.SBFrac, r.IdleFrac, r.PipeFrac}
		}
		writeFile("fig1_"+sched+".svg", viz.StackedShares(
			"Fig. 1 ("+sched+") — stall composition", labels,
			[]string{"scoreboard", "idle", "pipeline"}, parts))
	}
	f4 := suite.ComputeFig4()
	emit("fig4.txt", experiments.FormatFig4(f4))
	{
		labels := make([]string, len(f4.Rows))
		series := []viz.Series{{Name: "vs TL"}, {Name: "vs LRR"}, {Name: "vs GTO"}}
		for i, r := range f4.Rows {
			labels[i] = r.Kernel
			series[0].Values = append(series[0].Values, r.Over["TL"])
			series[1].Values = append(series[1].Values, r.Over["LRR"])
			series[2].Values = append(series[2].Values, r.Over["GTO"])
		}
		writeFile("fig4.svg", viz.GroupedBars("Fig. 4 — PRO speedup over baselines", labels, series, 1.0))
	}
	t3 := suite.ComputeTable3()
	emit("table3.txt", experiments.FormatTable3(t3))
	emit("fig5.txt", experiments.FormatFig5(t3))
	{
		labels := make([]string, len(t3.Rows))
		series := []viz.Series{{Name: "vs TL"}, {Name: "vs LRR"}, {Name: "vs GTO"}}
		for i, r := range t3.Rows {
			labels[i] = r.App
			series[0].Values = append(series[0].Values, r.Over["TL"].Total)
			series[1].Values = append(series[1].Values, r.Over["LRR"].Total)
			series[2].Values = append(series[2].Values, r.Over["GTO"].Total)
		}
		writeFile("fig5.svg", viz.GroupedBars("Fig. 5 — total stall ratio (baseline/PRO)", labels, series, 1.0))
	}

	// Fig. 2: AES timelines under LRR and PRO on SM 0.
	aes, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		fatal(err)
	}
	if *maxTBs > 0 {
		aes = aes.Shrunk(*maxTBs)
	}
	for _, sched := range []string{"LRR", "PRO"} {
		spans, r, err := experiments.Timeline(aes, sched, 0, run)
		if err != nil {
			fatal(err)
		}
		emit("fig2_"+sched+".txt", experiments.FormatTimeline(sched, spans, r.Cycles))
		writeFile("fig2_"+sched+".svg", viz.Timeline(
			fmt.Sprintf("Fig. 2 — AES thread blocks on SM 0 (%s)", sched), spans, r.Cycles))
	}

	// Table IV: AES under PRO with order tracing, first batch of TBs on
	// SM 0 (the paper shows 16 samples for its first batch of 6 TBs).
	samples, err := experiments.OrderTrace(aes, 0, run)
	if err != nil {
		fatal(err)
	}
	emit("table4.txt", experiments.FormatOrderTrace(samples, 16))

	if client != nil {
		if st, err := client.Stats(context.Background()); err == nil {
			fmt.Fprintf(os.Stderr, "report completed in %.1fs (daemon lifetime: %d jobs, %d simulated, %d replayed)\n",
				time.Since(start).Seconds(), st.Completed, st.Simulated, st.Replayed)
		} else {
			fmt.Fprintf(os.Stderr, "report completed in %.1fs\n", time.Since(start).Seconds())
		}
	} else {
		fmt.Fprintf(os.Stderr, "report completed in %.1fs (%d jobs: %d simulated, %d cache hits)\n",
			time.Since(start).Seconds(), eng.Completed(), eng.Simulated(), eng.Replayed())
	}

	if *cacheGC != "" {
		var st prosim.CacheGCStats
		var err error
		if client != nil {
			st, err = client.GC(context.Background(), *cacheGC)
		} else {
			st, err = prosim.GCResultCache(*cacheDir, *cacheGC)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cache-gc: evicted %d of %d entries, freed %d bytes\n",
			st.Evicted, st.Entries, st.Freed)
	}
}

// runShard executes slice i/n of every job the full report would run —
// the suite grid, both Fig. 2 timelines and the Table IV order trace —
// warming the shared result cache without emitting artifacts.
func runShard(spec string, scheds []string, maxTBs int, run jobs.Runner, start time.Time) error {
	i, n, err := cluster.ParseShard(spec)
	if err != nil {
		return err
	}
	batch := experiments.SuiteJobs(workloads.All(), scheds, maxTBs)
	aes, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		return err
	}
	if maxTBs > 0 {
		aes = aes.Shrunk(maxTBs)
	}
	batch = append(batch,
		experiments.TimelineJob(aes, "LRR"),
		experiments.TimelineJob(aes, "PRO"),
		experiments.OrderTraceJob(aes, 0))
	slice, err := cluster.Shard(i, n, batch)
	if err != nil {
		return err
	}
	if _, err := run.Run(context.Background(), slice); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shard %d/%d: ran %d of %d jobs in %.1fs\n",
		i+1, n, len(slice), len(batch), time.Since(start).Seconds())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
