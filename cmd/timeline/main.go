// Command timeline regenerates the paper's Figure 2: the lifetimes of
// the thread blocks executed by one SM under LRR and under PRO. Under
// LRR the TBs run in lock-step batches; under PRO they are staggered, so
// fresh TBs overlap the execution of old ones.
//
// The two runs execute in parallel; -cache DIR memoizes them. Progress
// goes to stderr; stdout carries only the timelines.
//
// Usage:
//
//	timeline                          # AES on SM 0 (the paper's setup)
//	timeline -kernel scalarProdGPU -sm 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workloads"
	"repro/prosim"
)

func main() {
	kernel := flag.String("kernel", "aesEncrypt128", "Table II kernel to trace")
	smID := flag.Int("sm", 0, "SM to plot")
	maxTBs := flag.Int("maxtbs", 0, "shrink grid (0 = full)")
	quiet := flag.Bool("quiet", true, "suppress progress")
	njobs := flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers")
	smWorkers := flag.Int("sm-workers", 0, "SM-tick workers inside each simulation (0 = auto: spare cores per job; 1 = serial; results identical either way)")
	cacheDir := flag.String("cache", "", "result-cache directory (optional)")
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	if _, err := logCfg.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, "timeline:", err)
		os.Exit(1)
	}

	w, err := workloads.ByKernel(*kernel)
	if err != nil {
		fatal(err)
	}
	if *maxTBs > 0 {
		w = w.Shrunk(*maxTBs)
	}
	var progress func(jobs.Event)
	if !*quiet {
		progress = jobs.PrintProgress(os.Stderr)
	}
	eng, err := jobs.New(*njobs, *cacheDir, progress)
	if err != nil {
		fatal(err)
	}
	eng.SMWorkers = *smWorkers

	scheds := []string{"LRR", "PRO"}
	rs, err := eng.Run(context.Background(),
		jobs.Grid([]*workloads.Workload{w}, scheds, 0, prosim.Options{Timeline: true}))
	if err != nil {
		fatal(err)
	}
	for i, sched := range scheds {
		r := rs[i]
		var spans []stats.TBSpan
		for _, sp := range r.Timeline {
			if sp.SM == *smID {
				spans = append(spans, sp)
			}
		}
		fmt.Print(experiments.FormatTimeline(
			fmt.Sprintf("%s / %s, %d cycles total", *kernel, sched, r.Cycles), spans, r.Cycles))
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "timeline:", err)
	os.Exit(1)
}
