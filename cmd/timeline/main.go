// Command timeline regenerates the paper's Figure 2: the lifetimes of
// the thread blocks executed by one SM under LRR and under PRO. Under
// LRR the TBs run in lock-step batches; under PRO they are staggered, so
// fresh TBs overlap the execution of old ones.
//
// Usage:
//
//	timeline                          # AES on SM 0 (the paper's setup)
//	timeline -kernel scalarProdGPU -sm 3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	kernel := flag.String("kernel", "aesEncrypt128", "Table II kernel to trace")
	smID := flag.Int("sm", 0, "SM to plot")
	maxTBs := flag.Int("maxtbs", 0, "shrink grid (0 = full)")
	flag.Parse()

	w, err := workloads.ByKernel(*kernel)
	if err != nil {
		fatal(err)
	}
	if *maxTBs > 0 {
		w = w.Shrunk(*maxTBs)
	}
	for _, sched := range []string{"LRR", "PRO"} {
		spans, r, err := experiments.Timeline(w, sched, *smID)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatTimeline(
			fmt.Sprintf("%s / %s, %d cycles total", *kernel, sched, r.Cycles), spans, r.Cycles))
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "timeline:", err)
	os.Exit(1)
}
