// Command sweep runs the design-choice ablations:
//
//   - -ablate: PRO with and without special barrier handling, per kernel.
//     Sec. IV reports scalarProd speeding up 11% with the handling
//     disabled — the motivation for the paper's future-work profiling.
//   - -threshold: sensitivity of PRO to the re-sort THRESHOLD
//     (Sec. III-C.1 uses 1000 cycles).
//   - -variants: PRO against the paper's future-work variants.
//   - -l1: L1 capacity sensitivity under LRR and PRO.
//
// All points of a sweep run in parallel across -jobs workers; -cache DIR
// memoizes every point so re-sweeping with one more kernel only
// simulates the new points. With -daemon ADDR the points execute on a
// running prosimd instance instead (sharing its warm cache and deduping
// against concurrent clients); -jobs and -cache then belong to the
// daemon and are ignored here. With -workers the points fan out across
// several prosimd instances through a work-stealing coordinator. With
// -shard i/n only slice i of n of the selected sweeps' points run (by
// result-cache key, against a shared -cache) and no tables print — run
// once without -shard afterwards to print everything from the cache.
// Progress goes to stderr; stdout carries only the tables.
//
// Usage:
//
//	sweep -ablate
//	sweep -threshold -kernel aesEncrypt128
//	sweep -cache .simcache
//	sweep -daemon unix:/tmp/prosimd.sock -threshold
//	sweep -workers 127.0.0.1:9753,127.0.0.1:9754 -cache /shared/simcache
//	sweep -shard 1/2 -cache /shared/simcache
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workloads"
	"repro/prosim"
)

// runner executes every sweep batch: a local jobs.Engine, a
// daemon.Client when -daemon is set, or a cluster.Coordinator when
// -workers is set.
var runner jobs.Runner

func main() {
	ablate := flag.Bool("ablate", false, "compare PRO vs PRO-nobar (barrier-handling ablation)")
	variants := flag.Bool("variants", false, "compare PRO against the paper's future-work variants (PRO-adaptive, PRO-norm)")
	threshold := flag.Bool("threshold", false, "sweep the PRO re-sort threshold")
	l1Sweep := flag.Bool("l1", false, "sweep the L1 size (paper future work: cache behaviour of prioritized warps)")
	kernels := flag.String("kernel", "scalarProdGPU,MonteCarloOneBlockPerOption,calculate_temp,aesEncrypt128",
		"comma-separated kernels to sweep")
	maxTBs := flag.Int("maxtbs", 0, "shrink grids (0 = full)")
	quiet := flag.Bool("quiet", false, "suppress progress")
	njobs := flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers")
	smWorkers := flag.Int("sm-workers", 0, "SM-tick workers inside each simulation (0 = auto: spare cores per job; 1 = serial; results identical either way)")
	cacheDir := flag.String("cache", "", "result-cache directory (optional)")
	cacheGC := flag.String("cache-gc", "", "after the run, evict least-recently-used cache entries down to this size (e.g. 256M; needs -cache)")
	daemonAddr := flag.String("daemon", "", "run simulations on a prosimd daemon at this address (host:port or unix:/path) instead of locally")
	workersFlag := flag.String("workers", "", "fan simulations out across these comma-separated prosimd addresses (work-stealing coordinator; -cache is the shared merge cache)")
	shardSpec := flag.String("shard", "", "run only slice i/n of the selected sweeps' points (e.g. 2/3) against a shared cache and print no tables")
	priority := flag.String("priority", "bulk", "scheduling class on the daemon/workers: bulk yields slots to interactive clients")
	token := flag.String("token", "", "tenant token sent as X-Prosim-Token to tokened daemons")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	log, err := logCfg.Setup()
	if err != nil {
		fatal(err)
	}
	if *daemonAddr != "" && *workersFlag != "" {
		fatal(fmt.Errorf("-daemon and -workers are mutually exclusive"))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if !*ablate && !*threshold && !*variants && !*l1Sweep {
		*ablate, *threshold, *variants, *l1Sweep = true, true, true, true
	}
	var progress func(jobs.Event)
	if !*quiet {
		progress = jobs.PrintProgress(os.Stderr)
	}
	var client *daemon.Client
	if *daemonAddr != "" {
		var err error
		client, err = daemon.Dial(*daemonAddr)
		if err != nil {
			fatal(err)
		}
		client.Progress = progress
		client.SMWorkers = *smWorkers
		client.Priority = *priority
		client.Token = *token
		runner = client
	} else if *workersFlag != "" {
		var addrs []string
		for _, a := range strings.Split(*workersFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		coord, err := cluster.New(cluster.Config{
			Workers:   addrs,
			CacheDir:  *cacheDir,
			SMWorkers: *smWorkers,
			Priority:  *priority,
			Token:     *token,
			Log:       log,
		})
		if err != nil {
			fatal(err)
		}
		defer coord.Close()
		coord.OnProgress = progress
		runner = coord
	} else {
		eng, err := jobs.New(*njobs, *cacheDir, progress)
		if err != nil {
			fatal(err)
		}
		eng.SMWorkers = *smWorkers
		runner = eng
	}

	var targets []*prosim.Workload
	for _, name := range strings.Split(*kernels, ",") {
		w, err := workloads.ByKernel(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		if *maxTBs > 0 {
			w = w.Shrunk(*maxTBs)
		}
		targets = append(targets, w)
	}

	if *shardSpec != "" {
		// Shard mode: run this machine's deterministic slice of every
		// point the selected sweeps would simulate, warming the shared
		// cache; the tables print on a later run without -shard.
		i, n, err := cluster.ParseShard(*shardSpec)
		if err != nil {
			fatal(err)
		}
		var batch []jobs.Job
		if *ablate {
			batch = append(batch, ablationJobs(targets)...)
		}
		if *variants {
			batch = append(batch, variantJobs(targets)...)
		}
		if *l1Sweep {
			batch = append(batch, l1Jobs(targets)...)
		}
		if *threshold {
			batch = append(batch, thresholdJobs(targets)...)
		}
		slice, err := cluster.Shard(i, n, batch)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		run(slice)
		fmt.Fprintf(os.Stderr, "shard %d/%d: ran %d of %d jobs in %.1fs\n",
			i+1, n, len(slice), len(batch), time.Since(start).Seconds())
		return
	}

	if *ablate {
		printAblation(targets, run(ablationJobs(targets)))
	}
	if *variants {
		printVariants(targets, run(variantJobs(targets)))
	}
	if *l1Sweep {
		printL1Sweep(targets, run(l1Jobs(targets)))
	}
	if *threshold {
		printThresholdSweep(targets, run(thresholdJobs(targets)))
	}

	if *cacheGC != "" {
		var st prosim.CacheGCStats
		var err error
		if client != nil {
			st, err = client.GC(context.Background(), *cacheGC)
		} else {
			st, err = prosim.GCResultCache(*cacheDir, *cacheGC)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cache-gc: evicted %d of %d entries, freed %d bytes\n",
			st.Evicted, st.Entries, st.Freed)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

// run executes a batch through the shared runner.
func run(batch []jobs.Job) []*stats.KernelResult {
	rs, err := runner.Run(context.Background(), batch)
	if err != nil {
		fatal(err)
	}
	return rs
}

// ---- Batch builders ----
//
// Each sweep's exact job list, separate from its printer so the shard
// selector can enumerate (and slice) the points without running them.

// ablationJobs is the PRO vs PRO-nobar grid (Sec. IV).
func ablationJobs(targets []*prosim.Workload) []jobs.Job {
	return jobs.Grid(targets, []string{"PRO", "PRO-nobar"}, 0, prosim.Options{})
}

// variantNames orders the future-work variant comparison.
var variantNames = []string{"PRO", "PRO-nobar", "PRO-adaptive", "PRO-norm"}

// variantJobs is the future-work variant grid.
func variantJobs(targets []*prosim.Workload) []jobs.Job {
	return jobs.Grid(targets, variantNames, 0, prosim.Options{})
}

// sweepThresholds are the re-sort THRESHOLD points (paper: 1000).
var sweepThresholds = []int64{250, 500, 1000, 2000, 4000}

// thresholdJobs is the re-sort threshold grid, threshold-major within
// each kernel.
func thresholdJobs(targets []*prosim.Workload) []jobs.Job {
	var batch []jobs.Job
	for _, w := range targets {
		for _, th := range sweepThresholds {
			batch = append(batch, jobs.Job{
				Launch:     w.Launch,
				Kernel:     w.Kernel,
				Factory:    prosim.PRO(core.WithThreshold(th)),
				FactoryKey: fmt.Sprintf("PRO+threshold=%d", th),
			})
		}
	}
	return batch
}

// l1Sizes and l1Scheds define the L1 sensitivity grid.
var (
	l1Sizes  = []int{8 << 10, 16 << 10, 32 << 10, 64 << 10}
	l1Scheds = []string{"LRR", "PRO"}
)

// l1Jobs is the L1 capacity grid, size-major within each
// kernel/scheduler pair.
func l1Jobs(targets []*prosim.Workload) []jobs.Job {
	var batch []jobs.Job
	for _, w := range targets {
		for _, sched := range l1Scheds {
			for _, size := range l1Sizes {
				cfg := prosim.GTX480()
				cfg.L1Size = size
				batch = append(batch, jobs.Job{
					Config:    cfg,
					Launch:    w.Launch,
					Kernel:    w.Kernel,
					Scheduler: sched,
				})
			}
		}
	}
	return batch
}

// ---- Printers ----

// printAblation compares PRO against PRO-nobar per kernel (Sec. IV).
func printAblation(targets []*prosim.Workload, rs []*stats.KernelResult) {
	fmt.Println("Ablation — PRO barrier handling (Sec. IV: scalarProd gains when disabled)")
	fmt.Printf("%-28s %12s %12s %10s\n", "KERNEL", "PRO", "PRO-nobar", "nobar/PRO")
	for i, w := range targets {
		on, off := rs[2*i], rs[2*i+1]
		fmt.Printf("%-28s %12d %12d %9.3fx\n", w.Kernel, on.Cycles, off.Cycles,
			float64(on.Cycles)/float64(off.Cycles))
	}
	fmt.Println()
}

// printVariants compares PRO against the future-work variants.
func printVariants(targets []*prosim.Workload, rs []*stats.KernelResult) {
	fmt.Println("Future-work variants (Sec. IV profiling, Sec. III-A normalized progress)")
	fmt.Printf("%-28s", "KERNEL")
	for _, n := range variantNames {
		fmt.Printf(" %13s", n)
	}
	fmt.Println()
	for i, w := range targets {
		fmt.Printf("%-28s", w.Kernel)
		for k := range variantNames {
			fmt.Printf(" %13d", rs[i*len(variantNames)+k].Cycles)
		}
		fmt.Println()
	}
	fmt.Println()
}

// printThresholdSweep prints the re-sort threshold sensitivity.
func printThresholdSweep(targets []*prosim.Workload, rs []*stats.KernelResult) {
	fmt.Println("Ablation — PRO re-sort THRESHOLD (paper uses 1000 cycles)")
	fmt.Printf("%-28s", "KERNEL")
	for _, th := range sweepThresholds {
		fmt.Printf(" %9d", th)
	}
	fmt.Println()
	for i, w := range targets {
		fmt.Printf("%-28s", w.Kernel)
		for k := range sweepThresholds {
			fmt.Printf(" %9d", rs[i*len(sweepThresholds)+k].Cycles)
		}
		fmt.Println()
	}
}

// printL1Sweep prints cycles and L1 miss rate at each capacity point.
// The paper's future work targets "improving cache and memory
// performance of high priority warps"; this sweep shows how much
// headroom the L1 leaves on each kernel.
func printL1Sweep(targets []*prosim.Workload, rs []*stats.KernelResult) {
	fmt.Println("Sensitivity — L1 capacity (cycles @ L1 miss rate)")
	fmt.Printf("%-28s %-5s", "KERNEL", "SCHED")
	for _, s := range l1Sizes {
		fmt.Printf(" %16s", fmt.Sprintf("L1=%dKB", s>>10))
	}
	fmt.Println()
	i := 0
	for _, w := range targets {
		for _, sched := range l1Scheds {
			fmt.Printf("%-28s %-5s", w.Kernel, sched)
			for range l1Sizes {
				r := rs[i]
				i++
				fmt.Printf(" %10d@%4.1f%%", r.Cycles, 100*r.Mem.L1MissRate())
			}
			fmt.Println()
		}
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
