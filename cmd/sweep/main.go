// Command sweep runs the design-choice ablations:
//
//   - -ablate: PRO with and without special barrier handling, per kernel.
//     Sec. IV reports scalarProd speeding up 11% with the handling
//     disabled — the motivation for the paper's future-work profiling.
//   - -threshold: sensitivity of PRO to the re-sort THRESHOLD
//     (Sec. III-C.1 uses 1000 cycles).
//
// Usage:
//
//	sweep -ablate
//	sweep -threshold -kernel aesEncrypt128
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/workloads"
	"repro/prosim"
)

func main() {
	ablate := flag.Bool("ablate", false, "compare PRO vs PRO-nobar (barrier-handling ablation)")
	variants := flag.Bool("variants", false, "compare PRO against the paper's future-work variants (PRO-adaptive, PRO-norm)")
	threshold := flag.Bool("threshold", false, "sweep the PRO re-sort threshold")
	cacheSweep := flag.Bool("cache", false, "sweep the L1 size (paper future work: cache behaviour of prioritized warps)")
	kernels := flag.String("kernel", "scalarProdGPU,MonteCarloOneBlockPerOption,calculate_temp,aesEncrypt128",
		"comma-separated kernels to sweep")
	maxTBs := flag.Int("maxtbs", 0, "shrink grids (0 = full)")
	flag.Parse()

	if !*ablate && !*threshold && !*variants && !*cacheSweep {
		*ablate, *threshold, *variants, *cacheSweep = true, true, true, true
	}
	var targets []*prosim.Workload
	for _, name := range strings.Split(*kernels, ",") {
		w, err := workloads.ByKernel(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		if *maxTBs > 0 {
			w = w.Shrunk(*maxTBs)
		}
		targets = append(targets, w)
	}

	if *ablate {
		fmt.Println("Ablation — PRO barrier handling (Sec. IV: scalarProd gains when disabled)")
		fmt.Printf("%-28s %12s %12s %10s\n", "KERNEL", "PRO", "PRO-nobar", "nobar/PRO")
		for _, w := range targets {
			on, err := prosim.RunWorkload(w, "PRO", prosim.Options{})
			if err != nil {
				fatal(err)
			}
			off, err := prosim.RunWorkload(w, "PRO-nobar", prosim.Options{})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-28s %12d %12d %9.3fx\n", w.Kernel, on.Cycles, off.Cycles,
				float64(on.Cycles)/float64(off.Cycles))
		}
		fmt.Println()
	}

	if *variants {
		names := []string{"PRO", "PRO-nobar", "PRO-adaptive", "PRO-norm"}
		fmt.Println("Future-work variants (Sec. IV profiling, Sec. III-A normalized progress)")
		fmt.Printf("%-28s", "KERNEL")
		for _, n := range names {
			fmt.Printf(" %13s", n)
		}
		fmt.Println()
		for _, w := range targets {
			fmt.Printf("%-28s", w.Kernel)
			for _, n := range names {
				r, err := prosim.RunWorkload(w, n, prosim.Options{})
				if err != nil {
					fatal(err)
				}
				fmt.Printf(" %13d", r.Cycles)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if *cacheSweep {
		runCacheSweep(targets)
	}

	if *threshold {
		thresholds := []int64{250, 500, 1000, 2000, 4000}
		fmt.Println("Ablation — PRO re-sort THRESHOLD (paper uses 1000 cycles)")
		fmt.Printf("%-28s", "KERNEL")
		for _, th := range thresholds {
			fmt.Printf(" %9d", th)
		}
		fmt.Println()
		for _, w := range targets {
			fmt.Printf("%-28s", w.Kernel)
			for _, th := range thresholds {
				r, err := prosim.RunFactory(prosim.GTX480(), w.Launch,
					prosim.PRO(core.WithThreshold(th)), prosim.Options{})
				if err != nil {
					fatal(err)
				}
				fmt.Printf(" %9d", r.Cycles)
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

// runCacheSweep sweeps the per-SM L1 capacity for the given workloads
// under LRR and PRO, printing cycles and L1 miss rate at each point.
// The paper's future work targets "improving cache and memory
// performance of high priority warps"; this sweep shows how much
// headroom the L1 leaves on each kernel.
func runCacheSweep(targets []*prosim.Workload) {
	sizes := []int{8 << 10, 16 << 10, 32 << 10, 64 << 10}
	fmt.Println("Sensitivity — L1 capacity (cycles @ L1 miss rate)")
	fmt.Printf("%-28s %-5s", "KERNEL", "SCHED")
	for _, s := range sizes {
		fmt.Printf(" %16s", fmt.Sprintf("L1=%dKB", s>>10))
	}
	fmt.Println()
	for _, w := range targets {
		for _, sched := range []string{"LRR", "PRO"} {
			fmt.Printf("%-28s %-5s", w.Kernel, sched)
			for _, size := range sizes {
				cfg := prosim.GTX480()
				cfg.L1Size = size
				r, err := prosim.Run(cfg, w.Launch, sched, prosim.Options{})
				if err != nil {
					fatal(err)
				}
				fmt.Printf(" %10d@%4.1f%%", r.Cycles, 100*r.Mem.L1MissRate())
			}
			fmt.Println()
		}
	}
	fmt.Println()
}
