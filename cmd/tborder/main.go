// Command tborder regenerates the paper's Table IV: the priority-sorted
// order of SM 0's first batch of thread blocks, sampled at every
// THRESHOLD-cycle re-sort of the PRO scheduler, for the AES application.
//
// Usage:
//
//	tborder                          # AES, threshold 1000 (paper setup)
//	tborder -kernel render -threshold 500 -rows 0
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/workloads"
)

func main() {
	kernel := flag.String("kernel", "aesEncrypt128", "Table II kernel to trace")
	threshold := flag.Int64("threshold", 0, "PRO re-sort threshold in cycles (0 = paper default 1000)")
	rows := flag.Int("rows", 16, "max sample rows to print (0 = all)")
	maxTBs := flag.Int("maxtbs", 0, "shrink grid (0 = full)")
	njobs := flag.Int("jobs", 1, "parallel simulation workers (a trace is one job)")
	smWorkers := flag.Int("sm-workers", 0, "SM-tick workers inside the simulation (0 = auto: spare cores; 1 = serial; results identical either way)")
	cacheDir := flag.String("cache", "", "result-cache directory (optional)")
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	if _, err := logCfg.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, "tborder:", err)
		os.Exit(1)
	}

	w, err := workloads.ByKernel(*kernel)
	if err != nil {
		fatal(err)
	}
	if *maxTBs > 0 {
		w = w.Shrunk(*maxTBs)
	}
	eng, err := jobs.New(*njobs, *cacheDir, nil)
	if err != nil {
		fatal(err)
	}
	eng.SMWorkers = *smWorkers
	samples, err := experiments.OrderTrace(w, *threshold, eng)
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiments.FormatOrderTrace(samples, *rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tborder:", err)
	os.Exit(1)
}
