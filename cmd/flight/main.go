// Command flight runs kernels under the flight recorder and renders
// the capture: an aggregated stall-attribution report (kernel ×
// scheduler table of mean memory latency split by lifecycle component,
// plus the top-N least-progressed warps), a Perfetto/Chrome trace-event
// JSON file loadable at ui.perfetto.dev, or raw NDJSON for downstream
// tooling.
//
// Unlike the other harnesses it never uses a result cache: a cached
// result was not executed, so it has no flight to record.
//
// Usage:
//
//	flight -kernel scalarProdGPU -scheds LRR,PRO                # report to stdout
//	flight -kernel scalarProdGPU -scheds PRO -format perfetto -out pro.trace.json
//	flight -kernel BlackScholes -scheds GTO -format ndjson -out gto.ndjson
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/flight"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/workloads"
	"repro/prosim"
)

func main() {
	kernel := flag.String("kernel", "scalarProdGPU", "Table II kernel to record")
	scheds := flag.String("scheds", "LRR,PRO",
		"comma-separated schedulers (report compares them; perfetto/ndjson need exactly one)")
	maxTBs := flag.Int("maxtbs", 0, "shrink grid (0 = full)")
	format := flag.String("format", "report", "output format: report | perfetto | ndjson")
	out := flag.String("out", "", "output file (default stdout)")
	smWorkers := flag.Int("sm-workers", 0, "SM-tick workers inside each simulation (0 = auto; results identical either way)")
	warpSample := flag.Int("warp-sample", 1, "record warp-level events for every Nth warp slot (1 = all)")
	memSample := flag.Int("mem-sample", 1, "record every Nth memory transaction as a span (1 = all)")
	ringEvents := flag.Int("ring-events", 0, fmt.Sprintf("per-SM event ring capacity (0 = %d)", flight.DefaultRingEvents))
	ringSpans := flag.Int("ring-spans", 0, fmt.Sprintf("memory-span ring capacity (0 = %d)", flight.DefaultRingSpans))
	topN := flag.Int("topn", flight.DefaultTopN, "least-progressed warps listed per scheduler in the report")
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	if _, err := logCfg.Setup(); err != nil {
		fatal(err)
	}

	w, err := workloads.ByKernel(*kernel)
	if err != nil {
		fatal(err)
	}
	if *maxTBs > 0 {
		w = w.Shrunk(*maxTBs)
	}
	names := splitScheds(*scheds)
	if len(names) == 0 {
		fatal(fmt.Errorf("no schedulers given"))
	}
	if *format != "report" && len(names) != 1 {
		fatal(fmt.Errorf("format %q writes one capture: give exactly one scheduler (got %d)", *format, len(names)))
	}

	fopts := flight.Options{
		WarpSample: *warpSample, MemSample: *memSample,
		RingEvents: *ringEvents, RingSpans: *ringSpans, TopN: *topN,
	}

	// No cache directory on purpose: every run must actually execute.
	eng, err := jobs.New(1, "", nil)
	if err != nil {
		fatal(err)
	}
	eng.SMWorkers = *smWorkers

	dst := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		dst = f
	}

	var reports []flight.Report
	for _, sched := range names {
		rec := flight.New(fopts)
		_, err := eng.RunOne(context.Background(), jobs.Job{
			Launch:    w.Launch,
			Kernel:    w.Kernel,
			Scheduler: sched,
			Options:   prosim.Options{Flight: rec},
		})
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "perfetto":
			if err := rec.Capture().WritePerfetto(dst); err != nil {
				fatal(err)
			}
		case "ndjson":
			if err := rec.Capture().WriteNDJSON(dst); err != nil {
				fatal(err)
			}
		case "report":
			reports = append(reports, rec.Report())
		default:
			fatal(fmt.Errorf("unknown format %q", *format))
		}
	}
	if *format == "report" {
		writeReportTable(dst, reports)
	}
}

// writeReportTable renders the kernel × scheduler stall-attribution
// table followed by each scheduler's least-progressed warps.
func writeReportTable(w io.Writer, reports []flight.Report) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kernel\tscheduler\tcycles\tstall_total\tidle\tscoreboard\tpipeline\tspans\tmem_mean\ticnt_req\tl2_service\tl2_mshr\tdram_queue\tdram_service\ticnt_resp")
	for _, rep := range reports {
		m := rep.Mem
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			rep.Kernel, rep.Scheduler, rep.Cycles,
			rep.Stalls.Total(), rep.Stalls.Idle, rep.Stalls.Scoreboard, rep.Stalls.Pipeline,
			m.Spans, m.MeanTotal, m.MeanICNTReq, m.MeanL2Service, m.MeanL2MSHR,
			m.MeanDRAMQueue, m.MeanDRAMService, m.MeanICNTResp)
	}
	tw.Flush()
	for _, rep := range reports {
		if len(rep.LeastProgressed) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n%s/%s least-progressed warps (events %d, dropped %d; spans %d, dropped %d; l2_hits %d, l2_merges %d, row_hits %d, l1_merged %d):\n",
			rep.Kernel, rep.Scheduler, rep.Events, rep.EventsDropped, rep.Spans, rep.SpansDropped,
			rep.Mem.L2Hits, rep.Mem.L2Merges, rep.Mem.RowHits, rep.Mem.MergedL1)
		for _, ws := range rep.LeastProgressed {
			fmt.Fprintf(w, "  sm=%-2d warp=%-2d tb=%-4d progress=%-8d lifetime=%d\n",
				ws.SM, ws.Warp, ws.TB, ws.Progress, ws.Lifetime)
		}
	}
}

func splitScheds(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flight:", err)
	os.Exit(1)
}
