package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/flight"
	"repro/internal/jobs"
	"repro/internal/workloads"
	"repro/prosim"
)

// record runs one small recorded simulation, exactly as main does.
func record(t *testing.T, sched string) *flight.Recorder {
	t.Helper()
	w, err := workloads.ByKernel("scalarProdGPU")
	if err != nil {
		t.Fatal(err)
	}
	w = w.Shrunk(8)
	eng, err := jobs.New(1, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New(flight.Options{ProgressEvery: 8})
	if _, err := eng.RunOne(context.Background(), jobs.Job{
		Launch:    w.Launch,
		Kernel:    w.Kernel,
		Scheduler: sched,
		Options:   prosim.Options{Flight: rec},
	}); err != nil {
		t.Fatal(err)
	}
	if !rec.Recorded() {
		t.Fatal("run not recorded")
	}
	return rec
}

// TestFlightPerfettoStructure is the acceptance test for the export: a
// recorded scalarProdGPU run emits structurally valid Chrome/Perfetto
// trace-event JSON — a displayTimeUnit plus a traceEvents array whose
// entries carry the required fields per phase type — with at least one
// per-warp progress counter track and one memory-request span.
func TestFlightPerfettoStructure(t *testing.T) {
	rec := record(t, "PRO")
	var buf bytes.Buffer
	if err := rec.Capture().WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *int64         `json:"ts"`
			Dur  *int64         `json:"dur"`
			Pid  *int64         `json:"pid"`
			Tid  *int64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	var progress, spans, metas, instants int
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
			if e.Name != "process_name" && e.Name != "thread_name" {
				t.Fatalf("event %d: metadata name %q", i, e.Name)
			}
		case "C":
			if e.Ts == nil || e.Pid == nil {
				t.Fatalf("event %d: counter missing ts/pid: %+v", i, e)
			}
			if strings.Contains(e.Name, "progress") {
				progress++
				if _, ok := e.Args["progress"]; !ok {
					t.Fatalf("event %d: progress counter without a progress arg", i)
				}
			}
		case "X":
			if e.Ts == nil || e.Dur == nil || e.Pid == nil || e.Tid == nil || e.Name == "" {
				t.Fatalf("event %d: complete event missing ts/dur/pid/tid/name: %+v", i, e)
			}
			if *e.Dur < 1 {
				t.Fatalf("event %d: non-positive dur %d", i, *e.Dur)
			}
			// Memory spans live on the partition rows (pid >= 1000) and
			// carry the full component breakdown.
			if *e.Pid >= 1000 {
				spans++
				for _, k := range []string{"icnt_req", "l2_mshr", "icnt_resp", "total"} {
					if _, ok := e.Args[k]; !ok {
						t.Fatalf("event %d: span missing %s arg: %+v", i, k, e.Args)
					}
				}
			}
		case "i":
			instants++
			if e.Ts == nil {
				t.Fatalf("event %d: instant without ts", i)
			}
		default:
			t.Fatalf("event %d: unexpected phase %q", i, e.Ph)
		}
	}
	if metas == 0 || progress == 0 || spans == 0 || instants == 0 {
		t.Fatalf("track coverage: metas=%d progress=%d spans=%d instants=%d (all must be > 0)",
			metas, progress, spans, instants)
	}
}

// TestFlightNDJSONStream pins the line-oriented export: a meta header
// line, then one well-formed JSON object per event and span with
// symbolic kind names.
func TestFlightNDJSONStream(t *testing.T) {
	rec := record(t, "LRR")
	var buf bytes.Buffer
	if err := rec.Capture().WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("only %d NDJSON lines", len(lines))
	}
	var events, spans int
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		typ, _ := obj["type"].(string)
		switch typ {
		case "meta":
			if i != 0 {
				t.Fatalf("meta line at position %d, want 0", i)
			}
			if obj["kernel"] != "scalarProdGPU" {
				t.Fatalf("meta kernel %v", obj["kernel"])
			}
		case "event":
			events++
		case "span":
			spans++
		default:
			t.Fatalf("line %d: unknown type %q", i, typ)
		}
	}
	if events == 0 || spans == 0 {
		t.Fatalf("stream coverage: events=%d spans=%d", events, spans)
	}
}

// TestFlightReportTable smoke-tests the report rendering used by the
// default format: a header row plus one row per scheduler.
func TestFlightReportTable(t *testing.T) {
	reps := []flight.Report{record(t, "LRR").Report(), record(t, "PRO").Report()}
	var buf bytes.Buffer
	writeReportTable(&buf, reps)
	out := buf.String()
	for _, want := range []string{"scheduler", "dram_queue", "LRR", "PRO", "least-progressed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report table missing %q:\n%s", want, out)
		}
	}
}
