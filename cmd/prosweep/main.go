// Command prosweep fans the paper's evaluation grid out across a
// cluster of prosimd workers: a coordinator with per-worker queues,
// work-stealing, health checks, and retry-on-worker-loss, plus a merge
// pass that assembles the suite from the shared result cache — so an
// interrupted sweep resumes for free, and a finished sweep re-runs
// without a single simulation.
//
// Usage:
//
//	prosweep -workers 127.0.0.1:9753,127.0.0.1:9754 -cache .simcache
//	prosweep -workers-file workers.txt -maxtbs 100
//	prosweep -workers unix:/tmp/w1.sock,unix:/tmp/w2.sock -out results
//
// Workers are prosimd instances (see cmd/prosimd); point them all at
// the same -cache directory as this coordinator to get merge-from-cache
// resumption. The suite tables go to stdout; progress, retry logs and
// the per-worker dispatch summary go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/workloads"
)

func main() {
	workersFlag := flag.String("workers", "", "comma-separated prosimd addresses (host:port or unix:/path)")
	workersFile := flag.String("workers-file", "", "file with one prosimd address per line (# comments allowed)")
	cacheDir := flag.String("cache", "", "shared result-cache directory: merge-first assembly and free resume (point the workers at the same directory)")
	scheds := flag.String("schedulers", "TL,LRR,GTO,PRO", "comma-separated schedulers to sweep")
	maxTBs := flag.Int("maxtbs", 0, "shrink grids to at most this many TBs (0 = full)")
	outDir := flag.String("out", "", "directory to write fig4.txt and table3.txt into (optional)")
	slots := flag.Int("slots", 0, "concurrent jobs per worker (0 = ask each worker via /v1/health)")
	smWorkers := flag.Int("sm-workers", 0, "SM-tick workers inside each simulation on the workers (0 = worker policy; 1 = serial; results identical either way)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-attempt wall-clock cap; an over-budget attempt is retried elsewhere (0 = none)")
	retries := flag.Int("retries", 3, "dispatch attempts per job before the batch fails")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "delay before the first retry (doubles per attempt)")
	maxBackoff := flag.Duration("max-backoff", 5*time.Second, "retry-delay cap")
	healthEvery := flag.Duration("health-interval", 2*time.Second, "worker health-check cadence")
	priority := flag.String("priority", "bulk", "scheduling class on the workers: bulk yields slots to interactive clients")
	token := flag.String("token", "", "tenant token sent as X-Prosim-Token to tokened workers")
	quiet := flag.Bool("quiet", false, "suppress per-job progress")
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	log, err := logCfg.Setup()
	if err != nil {
		fatal(err)
	}

	addrs, err := workerList(*workersFlag, *workersFile)
	if err != nil {
		fatal(err)
	}
	coord, err := cluster.New(cluster.Config{
		Workers:        addrs,
		SlotsPerWorker: *slots,
		SMWorkers:      *smWorkers,
		CacheDir:       *cacheDir,
		JobTimeout:     *jobTimeout,
		MaxAttempts:    *retries,
		BaseBackoff:    *backoff,
		MaxBackoff:     *maxBackoff,
		HealthInterval: *healthEvery,
		Priority:       *priority,
		Token:          *token,
		Log:            log,
	})
	if err != nil {
		fatal(err)
	}
	defer coord.Close()
	if !*quiet {
		coord.OnProgress = jobs.PrintProgress(os.Stderr)
	}

	start := time.Now()
	suite, err := experiments.RunSuite(workloads.All(),
		splitList(*scheds), *maxTBs, coord)
	if err != nil {
		fatal(err)
	}

	emit := func(name, content string) {
		fmt.Println(content)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(filepath.Join(*outDir, name), []byte(content), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	emit("fig4.txt", experiments.FormatFig4(suite.ComputeFig4()))
	emit("table3.txt", experiments.FormatTable3(suite.ComputeTable3()))

	st := coord.Snapshot()
	fmt.Fprintf(os.Stderr,
		"prosweep completed in %.1fs (merged from cache: %d, retries: %d, steals: %d, workers lost: %d)\n",
		time.Since(start).Seconds(), st.MergeHits, st.Retries, st.Steals, st.WorkersLost)
	for _, w := range st.Workers {
		state := "up"
		if w.Down {
			state = "down"
		}
		fmt.Fprintf(os.Stderr, "  worker %-30s %-4s slots=%d dispatched=%d stolen=%d\n",
			w.Addr, state, w.Slots, w.Dispatched, w.Stolen)
	}
}

// workerList resolves the -workers / -workers-file flags into a
// non-empty address list.
func workerList(inline, file string) ([]string, error) {
	addrs := splitList(inline)
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			addrs = append(addrs, line)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("no workers: pass -workers or -workers-file")
	}
	return addrs, nil
}

// splitList splits a comma-separated flag, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prosweep:", err)
	os.Exit(1)
}
