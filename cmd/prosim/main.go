// Command prosim runs one Table II kernel (or all of them) under one or
// more warp schedulers and prints runtime and stall statistics.
//
// Usage:
//
//	prosim -kernel scalarProdGPU -sched PRO,LRR
//	prosim -all -sched TL,LRR,GTO,PRO
//	prosim -program mykernel.k -grid 256 -block 128 -sched LRR,PRO
//	prosim -list
//
// -program runs a kernel written in the text format of internal/isa
// (see examples/kernels/*.k for the syntax).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/prosim"
)

func main() {
	kernel := flag.String("kernel", "", "Table II kernel name to run")
	scheds := flag.String("sched", "TL,LRR,GTO,PRO", "comma-separated scheduler list")
	all := flag.Bool("all", false, "run every Table II kernel")
	list := flag.Bool("list", false, "list workloads and exit")
	maxTBs := flag.Int("maxtbs", 0, "shrink grids to at most this many TBs (0 = full)")
	njobs := flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers")
	smWorkers := flag.Int("sm-workers", 0, "SM-tick workers inside each simulation (0 = auto: spare cores per job; 1 = serial; results identical either way)")
	cacheDir := flag.String("cache", "", "result-cache directory (optional)")
	cacheGC := flag.String("cache-gc", "", "after the run, evict least-recently-used cache entries down to this size (e.g. 256M; needs -cache)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	quiet := flag.Bool("quiet", true, "suppress per-run progress (stderr)")
	div := flag.Bool("div", false, "also print warp-level-divergence metrics (finish disparity, barrier wait)")
	program := flag.String("program", "", "path to a kernel in the text format (overrides -kernel/-all)")
	grid := flag.Int("grid", 128, "grid size in TBs for -program")
	block := flag.Int("block", 128, "threads per TB for -program")
	regs := flag.Int("regs", 16, "registers per thread for -program")
	smem := flag.Int("smem", 0, "shared memory per TB in bytes for -program")
	seed := flag.Uint64("seed", 1, "kernel seed for -program")
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	if _, err := logCfg.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, "prosim:", err)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		fmt.Printf("%-12s %-28s %-10s %8s %6s %6s\n", "APP", "KERNEL", "SUITE", "PAPERTBS", "GRID", "BLOCK")
		for _, w := range prosim.AllWorkloads() {
			fmt.Printf("%-12s %-28s %-10s %8d %6d %6d\n",
				w.App, w.Kernel, w.Suite, w.PaperTBs, w.Launch.GridTBs, w.Launch.BlockThreads)
		}
		return
	}

	var targets []*prosim.Workload
	switch {
	case *program != "":
		text, err := os.ReadFile(*program)
		if err != nil {
			fatal(err)
		}
		prog, err := isa.Parse(string(text))
		if err != nil {
			fatal(err)
		}
		targets = []*prosim.Workload{{
			App:    prog.Name,
			Kernel: prog.Name,
			Suite:  "custom",
			Launch: &prosim.Launch{
				Program:        prog,
				GridTBs:        *grid,
				BlockThreads:   *block,
				RegsPerThread:  *regs,
				SharedMemPerTB: *smem,
				Seed:           *seed,
			},
		}}
	case *all:
		targets = prosim.AllWorkloads()
	case *kernel != "":
		w, err := prosim.WorkloadByKernel(*kernel)
		if err != nil {
			fatal(err)
		}
		targets = []*prosim.Workload{w}
	default:
		fatal(fmt.Errorf("pass -kernel <name>, -program <file>, -all or -list"))
	}

	names := strings.Split(*scheds, ",")
	for i, name := range names {
		names[i] = strings.TrimSpace(name)
	}

	var progress func(prosim.JobEvent)
	if !*quiet {
		progress = prosimProgress(os.Stderr)
	}
	eng, err := prosim.NewJobEngine(*njobs, *cacheDir, progress)
	if err != nil {
		fatal(err)
	}
	eng.SMWorkers = *smWorkers
	results, err := prosim.RunJobs(context.Background(), eng,
		prosim.WorkloadJobs(targets, names, *maxTBs, prosim.Options{}))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%-28s %-9s %12s %8s %12s %12s %12s %8s",
		"KERNEL", "SCHED", "CYCLES", "IPC", "IDLE", "SCOREBOARD", "PIPELINE", "L1MISS")
	if *div {
		fmt.Printf(" %10s %10s", "WDISP", "BARWAIT")
	}
	fmt.Println()
	for wi, w := range targets {
		var baseCycles int64
		for i := range names {
			r := results[wi*len(names)+i]
			speed := ""
			if i == 0 {
				baseCycles = r.Cycles
			} else if r.Cycles > 0 {
				speed = fmt.Sprintf("  %.3fx vs %s", float64(baseCycles)/float64(r.Cycles), names[0])
			}
			fmt.Printf("%-28s %-9s %12d %8.3f %12d %12d %12d %7.1f%%",
				w.Kernel, r.Scheduler, r.Cycles, r.IPC(),
				r.Stalls.Idle, r.Stalls.Scoreboard, r.Stalls.Pipeline,
				100*r.Mem.L1MissRate())
			if *div {
				fmt.Printf(" %10.0f %10.0f", r.AvgWarpDisparity(), r.AvgBarrierWait())
			}
			fmt.Println(speed)
		}
	}

	if *cacheGC != "" {
		st, err := prosim.GCResultCache(*cacheDir, *cacheGC)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cache-gc: evicted %d of %d entries, freed %d bytes\n",
			st.Evicted, st.Entries, st.Freed)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

// prosimProgress renders job-engine events on w, one line each.
func prosimProgress(w *os.File) func(prosim.JobEvent) {
	return func(ev prosim.JobEvent) {
		fmt.Fprintf(w, "[%7.1fs] %3d/%d %s/%s\n",
			ev.Elapsed.Seconds(), ev.Done, ev.Total, ev.Kernel, ev.Scheduler)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prosim:", err)
	os.Exit(1)
}
