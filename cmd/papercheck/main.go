// Command papercheck is the reproduction acceptance harness: it runs the
// evaluation and asserts the paper's directional claims one by one,
// printing PASS/FAIL for each. Absolute numbers are not compared (the
// substrate is a different simulator); the claims are the *shape* of the
// results:
//
//	C1  PRO beats TL on geomean runtime
//	C2  PRO beats LRR on geomean runtime
//	C3  PRO at least matches GTO on geomean runtime (paper: +2%)
//	C4  TL is the weakest baseline (paper: PRO gains most over TL)
//	C5  PRO reduces total stalls vs TL on geomean (paper: 1.32x)
//	C6  PRO reduces total stalls vs LRR on geomean (paper: 1.19x)
//	C7  PRO's biggest stall reduction vs LRR is in Idle cycles
//	C8  LRR has the highest Idle-stall share among baselines on more
//	    applications than either TL or GTO (paper Sec. II-B)
//	C9  LRR runs TBs in batches; PRO staggers them (Fig. 2): the
//	    first-batch finish spread on SM 0 is wider under PRO
//	C10 PRO's TB priority order changes over time (Table IV churn)
//	C11 scalarProd prefers barrier handling OFF (Sec. IV ablation)
//	C12 PRO's hardware cost is 240 bytes/SM for Table I (Sec. III-E)
//
// Usage:
//
//	papercheck                  # full grids, all cores
//	papercheck -maxtbs 60       # quick pass
//	papercheck -cache .simcache # memoize runs; warm re-checks are instant
//
// Progress goes to stderr; stdout carries only the PASS/FAIL report.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workloads"
	"repro/prosim"
)

var failures int

func check(id, claim string, ok bool, detail string) {
	status := "PASS"
	if !ok {
		status = "FAIL"
		failures++
	}
	fmt.Printf("%-4s %s  %s (%s)\n", id, status, claim, detail)
}

func main() {
	maxTBs := flag.Int("maxtbs", 0, "shrink grids to at most this many TBs (0 = full)")
	quiet := flag.Bool("quiet", true, "suppress per-run progress")
	njobs := flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers")
	smWorkers := flag.Int("sm-workers", 0, "SM-tick workers inside each simulation (0 = auto: spare cores per job; 1 = serial; results identical either way)")
	cacheDir := flag.String("cache", "", "result-cache directory (optional)")
	cacheGC := flag.String("cache-gc", "", "after the run, evict least-recently-used cache entries down to this size (e.g. 256M; needs -cache)")
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	if _, err := logCfg.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, "papercheck:", err)
		os.Exit(1)
	}

	if *maxTBs > 0 {
		fmt.Printf("note: grids shrunk to %d TBs — the SM-residency claims (C2, C6, C8)\n", *maxTBs)
		fmt.Println("need multi-batch grids and may legitimately weaken; run without -maxtbs")
		fmt.Println("for the authoritative check.")
		fmt.Println()
	}
	start := time.Now()
	var progress func(jobs.Event)
	if !*quiet {
		progress = jobs.PrintProgress(os.Stderr)
	}
	eng, err := jobs.New(*njobs, *cacheDir, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "papercheck:", err)
		os.Exit(1)
	}
	eng.SMWorkers = *smWorkers
	suite, err := experiments.RunSuite(workloads.All(),
		[]string{"TL", "LRR", "GTO", "PRO"}, *maxTBs, eng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "papercheck:", err)
		os.Exit(1)
	}

	f4 := suite.ComputeFig4()
	check("C1", "PRO > TL on geomean runtime",
		f4.Geomean["TL"] > 1.0, fmt.Sprintf("%.3fx, paper 1.13x", f4.Geomean["TL"]))
	check("C2", "PRO > LRR on geomean runtime",
		f4.Geomean["LRR"] > 1.0, fmt.Sprintf("%.3fx, paper 1.12x", f4.Geomean["LRR"]))
	check("C3", "PRO >= GTO on geomean runtime (within 1%)",
		f4.Geomean["GTO"] > 0.99, fmt.Sprintf("%.3fx, paper 1.02x", f4.Geomean["GTO"]))
	check("C4", "TL is the weakest baseline",
		f4.Geomean["TL"] >= f4.Geomean["LRR"] && f4.Geomean["TL"] >= f4.Geomean["GTO"],
		fmt.Sprintf("gains: TL %.3f, LRR %.3f, GTO %.3f",
			f4.Geomean["TL"], f4.Geomean["LRR"], f4.Geomean["GTO"]))

	t3 := suite.ComputeTable3()
	check("C5", "PRO reduces total stalls vs TL",
		t3.Geomean["TL"].Total > 1.0, fmt.Sprintf("%.2fx, paper 1.32x", t3.Geomean["TL"].Total))
	check("C6", "PRO reduces total stalls vs LRR",
		t3.Geomean["LRR"].Total > 1.0, fmt.Sprintf("%.2fx, paper 1.19x", t3.Geomean["LRR"].Total))
	lrr := t3.Geomean["LRR"]
	check("C7", "largest stall reduction vs LRR is Idle",
		lrr.Idle >= lrr.SB && lrr.Idle >= lrr.Pipe,
		fmt.Sprintf("idle %.2f, sb %.2f, pipe %.2f", lrr.Idle, lrr.SB, lrr.Pipe))

	meanIdle := map[string]float64{}
	for _, sched := range experiments.BaselineOrder {
		rows := suite.ComputeFig1(sched)
		sum := 0.0
		for _, row := range rows {
			sum += row.IdleFrac
		}
		meanIdle[sched] = sum / float64(len(rows))
	}
	check("C8", "LRR has the highest mean Idle-stall share (Sec. II-B)",
		meanIdle["LRR"] >= meanIdle["TL"] && meanIdle["LRR"] >= meanIdle["GTO"],
		fmt.Sprintf("LRR %.1f%%, TL %.1f%%, GTO %.1f%%",
			100*meanIdle["LRR"], 100*meanIdle["TL"], 100*meanIdle["GTO"]))

	aes, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		fmt.Fprintln(os.Stderr, "papercheck:", err)
		os.Exit(1)
	}
	if *maxTBs > 0 {
		aes = aes.Shrunk(*maxTBs)
	}
	batch := aes.Launch.ResidentTBs(config.GTX480())
	spreadOf := func(sched string) int64 {
		spans, _, err := experiments.Timeline(aes, sched, 0, eng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "papercheck:", err)
			os.Exit(1)
		}
		return finishSpread(spans, batch)
	}
	lrrSpread, proSpread := spreadOf("LRR"), spreadOf("PRO")
	check("C9", "PRO staggers the first batch (Fig. 2)",
		proSpread > lrrSpread,
		fmt.Sprintf("finish spread LRR %d vs PRO %d cycles", lrrSpread, proSpread))

	trace, err := experiments.OrderTrace(aes, 0, eng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "papercheck:", err)
		os.Exit(1)
	}
	churn := 0
	for i := 1; i < len(trace); i++ {
		if !equalInts(trace[i].Order, trace[i-1].Order) {
			churn++
		}
	}
	check("C10", "TB priority order re-sorts over time (Table IV)",
		churn >= 2, fmt.Sprintf("%d changes over %d samples", churn, len(trace)))

	sp, err := workloads.ByKernel("scalarProdGPU")
	if err != nil {
		fmt.Fprintln(os.Stderr, "papercheck:", err)
		os.Exit(1)
	}
	if *maxTBs > 0 {
		sp = sp.Shrunk(*maxTBs)
	}
	ablation, err := eng.Run(context.Background(),
		jobs.Grid([]*workloads.Workload{sp}, []string{"PRO", "PRO-nobar"}, 0, prosim.Options{}))
	if err != nil {
		fmt.Fprintln(os.Stderr, "papercheck:", err)
		os.Exit(1)
	}
	on, off := ablation[0], ablation[1]
	check("C11", "scalarProd prefers barrier handling off (Sec. IV)",
		off.Cycles < on.Cycles,
		fmt.Sprintf("PRO %d vs PRO-nobar %d cycles", on.Cycles, off.Cycles))

	check("C12", "hardware cost is 240 bytes/SM (Sec. III-E)",
		core.HardwareCostBytes(config.GTX480()) == 240,
		fmt.Sprintf("%d bytes", core.HardwareCostBytes(config.GTX480())))

	fmt.Fprintf(os.Stderr, "papercheck completed in %.1fs (%d jobs: %d simulated, %d cache hits)\n",
		time.Since(start).Seconds(), eng.Completed(), eng.Simulated(), eng.Replayed())

	if *cacheGC != "" {
		st, err := prosim.GCResultCache(*cacheDir, *cacheGC)
		if err != nil {
			fmt.Fprintln(os.Stderr, "papercheck:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cache-gc: evicted %d of %d entries, freed %d bytes\n",
			st.Evicted, st.Entries, st.Freed)
	}

	if failures > 0 {
		fmt.Printf("\n%d claim(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall paper claims reproduced")
}

func finishSpread(spans []stats.TBSpan, batch int) int64 {
	var lo, hi int64 = 1 << 62, 0
	for _, s := range spans {
		if s.Slot >= batch {
			continue
		}
		if s.End < lo {
			lo = s.End
		}
		if s.End > hi {
			hi = s.End
		}
	}
	if hi == 0 {
		return 0
	}
	return hi - lo
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
