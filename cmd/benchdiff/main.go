// Command benchdiff turns `go test -bench` output into a persisted,
// diffable snapshot and gates on performance regressions.
//
// It parses a bench run (default results/bench.txt, as written by
// `make bench`), aggregates repetitions, attaches the result-cache job
// key to every golden cycle-count benchmark, and compares against the
// most recent snapshot recorded for a different commit:
//
//   - throughput metrics (any "/s" unit) may not drop more than
//     -max-tput-drop (default 25%);
//   - allocs/op may not rise more than -max-alloc-rise (default 10%);
//   - golden cycle counts must match exactly while their job key —
//     config + kernel + scheduler + cache schema — is unchanged; a
//     changed key skips the comparison instead of failing, so
//     deliberate workload changes do not trip the gate.
//
// With -write the run is persisted as results/bench-<git-sha>.json and
// becomes the next baseline.
//
// Usage:
//
//	benchdiff [-in results/bench.txt] [-dir results] [-write]
//	          [-max-tput-drop 0.25] [-max-alloc-rise 0.10]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/benchparse"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// benchTBs mirrors the per-grid cap bench_test.go uses; the golden job
// table below must describe the exact launches the benchmarks run.
const benchTBs = 42

// goldenJob maps one cycle-reporting benchmark to the simulation job
// whose result-cache key identifies it.
type goldenJob struct {
	bench     string
	kernel    string
	scheduler string // registered name, or "" when factory is set
	threshold int64  // PRO threshold override when > 0
}

var goldenJobs = []goldenJob{
	{bench: "AblationThreshold/threshold250", kernel: "aesEncrypt128", threshold: 250},
	{bench: "AblationThreshold/threshold1000", kernel: "aesEncrypt128", threshold: 1000},
	{bench: "AblationThreshold/threshold4000", kernel: "aesEncrypt128", threshold: 4000},
	{bench: "FutureWorkVariants/PRO", kernel: "scalarProdGPU", scheduler: "PRO"},
	{bench: "FutureWorkVariants/PRO-adaptive", kernel: "scalarProdGPU", scheduler: "PRO-adaptive"},
	{bench: "FutureWorkVariants/PRO-norm", kernel: "scalarProdGPU", scheduler: "PRO-norm"},
}

func main() {
	in := flag.String("in", filepath.Join("results", "bench.txt"), "bench output to read")
	dir := flag.String("dir", "results", "snapshot directory")
	write := flag.Bool("write", false, "persist this run as bench-<git-sha>.json")
	tputDrop := flag.Float64("max-tput-drop", 0.25, "max tolerated fractional throughput drop")
	allocRise := flag.Float64("max-alloc-rise", 0.10, "max tolerated fractional allocs/op rise")
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	if _, err := logCfg.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	if err := run(*in, *dir, *write, benchparse.Thresholds{
		MaxThroughputDrop: *tputDrop,
		MaxAllocRise:      *allocRise,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(in, dir string, write bool, th benchparse.Thresholds) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	results, err := benchparse.Parse(f)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("%s contains no benchmark lines", in)
	}

	sha := gitSHA()
	cur := &benchparse.Snapshot{
		Schema:     benchparse.SnapshotSchema,
		GitSHA:     sha,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: make(map[string]*benchparse.Result, len(results)),
		Golden:     make(map[string]benchparse.GoldenEntry),
	}
	for _, r := range results {
		cur.Benchmarks[r.Name] = r
	}
	if err := attachGolden(cur); err != nil {
		return err
	}

	base, basePath, err := latestSnapshot(dir, sha)
	if err != nil {
		return err
	}
	failed := false
	if base == nil {
		fmt.Println("benchdiff: no prior snapshot to diff against")
	} else {
		fmt.Printf("benchdiff: comparing against %s (%s, %s)\n", basePath, base.GitSHA, base.Date)
		findings := benchparse.Diff(base, cur, th)
		for _, fd := range findings {
			tag := "note"
			if fd.Fail {
				tag = "FAIL"
				failed = true
			}
			fmt.Printf("  %s  %-40s %s\n", tag, fd.Bench, fd.Msg)
		}
		if len(findings) == 0 {
			fmt.Println("  ok: no regressions, no notes")
		}
	}

	if write {
		out := filepath.Join(dir, "bench-"+sha+".json")
		buf, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("benchdiff: recorded", out)
	}
	if failed {
		return fmt.Errorf("performance regressions above threshold")
	}
	return nil
}

// attachGolden pins each cycle-reporting benchmark in the snapshot to
// its job's result-cache key. Benchmarks absent from the run (e.g. a
// -bench filter) are skipped.
func attachGolden(s *benchparse.Snapshot) error {
	eng := &jobs.Engine{}
	for _, g := range goldenJobs {
		r, ok := s.Benchmarks[g.bench]
		if !ok {
			continue
		}
		cycles, ok := r.Metrics["cycles"]
		if !ok {
			continue
		}
		w, err := workloads.ByKernel(g.kernel)
		if err != nil {
			return fmt.Errorf("golden job %s: %w", g.bench, err)
		}
		w = w.Shrunk(benchTBs)
		job := &jobs.Job{Launch: w.Launch, Scheduler: g.scheduler}
		if g.threshold > 0 {
			job.Factory = core.New(core.WithThreshold(g.threshold))
			job.FactoryKey = fmt.Sprintf("PRO+threshold=%d", g.threshold)
		}
		key, ok, err := eng.Key(job)
		if err != nil || !ok {
			return fmt.Errorf("golden job %s: no cache key (%v)", g.bench, err)
		}
		s.Golden[g.bench] = benchparse.GoldenEntry{JobKey: key, Cycles: int64(cycles)}
	}
	return nil
}

// latestSnapshot loads the newest bench-*.json in dir recorded for a
// commit other than sha (re-running at the same commit should diff
// against the previous commit's baseline, not itself). Snapshots with
// an unknown schema are ignored.
func latestSnapshot(dir, sha string) (*benchparse.Snapshot, string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "bench-*.json"))
	if err != nil {
		return nil, "", err
	}
	sort.Strings(paths)
	var best *benchparse.Snapshot
	var bestPath string
	for _, p := range paths {
		buf, err := os.ReadFile(p)
		if err != nil {
			return nil, "", err
		}
		var s benchparse.Snapshot
		if err := json.Unmarshal(buf, &s); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: skipping unreadable %s: %v\n", p, err)
			continue
		}
		if s.Schema != benchparse.SnapshotSchema || s.GitSHA == sha {
			continue
		}
		if best == nil || s.Date > best.Date {
			best, bestPath = &s, p
		}
	}
	return best, bestPath, nil
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
