// Command stalls regenerates the paper's stall studies: Figure 1 (the
// composition of Idle / Scoreboard / Pipeline stalls per application
// under TL, LRR and GTO), Table III (per-application stall-cycle ratios
// of each baseline over PRO) and Figure 5 (the total-stall view of
// Table III).
//
// Usage:
//
//	stalls -fig1             # Fig. 1 only (baselines only, no PRO runs)
//	stalls -table3 -fig5     # stall-improvement tables (runs PRO too)
//	stalls                   # everything
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/workloads"
)

func main() {
	fig1 := flag.Bool("fig1", false, "emit Fig. 1 stall composition")
	table3 := flag.Bool("table3", false, "emit Table III")
	fig5 := flag.Bool("fig5", false, "emit Fig. 5")
	maxTBs := flag.Int("maxtbs", 0, "shrink grids to at most this many TBs (0 = full)")
	quiet := flag.Bool("quiet", false, "suppress progress")
	njobs := flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers")
	smWorkers := flag.Int("sm-workers", 0, "SM-tick workers inside each simulation (0 = auto: spare cores per job; 1 = serial; results identical either way)")
	cacheDir := flag.String("cache", "", "result-cache directory (optional)")
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	if _, err := logCfg.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, "stalls:", err)
		os.Exit(1)
	}

	if !*fig1 && !*table3 && !*fig5 {
		*fig1, *table3, *fig5 = true, true, true
	}
	scheds := []string{"TL", "LRR", "GTO"}
	if *table3 || *fig5 {
		scheds = append(scheds, "PRO")
	}
	var progress func(jobs.Event)
	if !*quiet {
		progress = jobs.PrintProgress(os.Stderr)
	}
	eng, err := jobs.New(*njobs, *cacheDir, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stalls:", err)
		os.Exit(1)
	}
	eng.SMWorkers = *smWorkers
	suite, err := experiments.RunSuite(workloads.All(), scheds, *maxTBs, eng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stalls:", err)
		os.Exit(1)
	}
	if *fig1 {
		for _, sched := range experiments.BaselineOrder {
			fmt.Print(experiments.FormatFig1(sched, suite.ComputeFig1(sched)))
			fmt.Println()
		}
	}
	if *table3 || *fig5 {
		t3 := suite.ComputeTable3()
		if *table3 {
			fmt.Print(experiments.FormatTable3(t3))
			fmt.Println()
		}
		if *fig5 {
			fmt.Print(experiments.FormatFig5(t3))
		}
	}
}
