// Command speedup regenerates the paper's Figure 4: per-kernel speedup
// of PRO over the TL, LRR and GTO baselines, with geometric means.
//
// Usage:
//
//	speedup                  # full suite
//	speedup -app ScalarProd  # one application's kernels
//	speedup -maxtbs 100      # quick pass on shrunk grids
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "", "restrict to one application (Table III name)")
	maxTBs := flag.Int("maxtbs", 0, "shrink grids to at most this many TBs (0 = full)")
	quiet := flag.Bool("quiet", false, "suppress progress")
	njobs := flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers")
	smWorkers := flag.Int("sm-workers", 0, "SM-tick workers inside each simulation (0 = auto: spare cores per job; 1 = serial; results identical either way)")
	cacheDir := flag.String("cache", "", "result-cache directory (optional)")
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	if _, err := logCfg.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(1)
	}

	ws := workloads.All()
	if *app != "" {
		ws = workloads.ByApp(*app)
		if len(ws) == 0 {
			fmt.Fprintf(os.Stderr, "speedup: unknown application %q\n", *app)
			os.Exit(1)
		}
	}
	var progress func(jobs.Event)
	if !*quiet {
		progress = jobs.PrintProgress(os.Stderr)
	}
	eng, err := jobs.New(*njobs, *cacheDir, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(1)
	}
	eng.SMWorkers = *smWorkers
	suite, err := experiments.RunSuite(ws, []string{"TL", "LRR", "GTO", "PRO"}, *maxTBs, eng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(1)
	}
	fmt.Print(experiments.FormatFig4(suite.ComputeFig4()))
}
