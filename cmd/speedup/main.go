// Command speedup regenerates the paper's Figure 4: per-kernel speedup
// of PRO over the TL, LRR and GTO baselines, with geometric means.
//
// Usage:
//
//	speedup                  # full suite
//	speedup -app ScalarProd  # one application's kernels
//	speedup -maxtbs 100      # quick pass on shrunk grids
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "", "restrict to one application (Table III name)")
	maxTBs := flag.Int("maxtbs", 0, "shrink grids to at most this many TBs (0 = full)")
	quiet := flag.Bool("quiet", false, "suppress progress")
	flag.Parse()

	ws := workloads.All()
	if *app != "" {
		ws = workloads.ByApp(*app)
		if len(ws) == 0 {
			fmt.Fprintf(os.Stderr, "speedup: unknown application %q\n", *app)
			os.Exit(1)
		}
	}
	progress := func(kernel, sched string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s / %s\n", kernel, sched)
		}
	}
	suite, err := experiments.RunSuite(ws, []string{"TL", "LRR", "GTO", "PRO"}, *maxTBs, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(1)
	}
	fmt.Print(experiments.FormatFig4(suite.ComputeFig4()))
}
