// Command prosimd is the long-running simulation daemon: it wraps the
// parallel job engine in an HTTP service (TCP or unix socket), keeps
// the result cache warm across invocations of the cmd/ tools, and
// dedupes identical in-flight work submitted by concurrent clients —
// the second client attaches to the running simulation instead of
// re-simulating.
//
// Endpoints: POST /v1/batch (NDJSON progress stream + results),
// GET /v1/stats, POST /v1/gc. See DESIGN.md §9 for the protocol.
//
// Usage:
//
//	prosimd -cache .simcache                     # TCP on 127.0.0.1:9753
//	prosimd -listen unix:/tmp/prosimd.sock       # unix socket
//	prosimd -job-timeout 10m -drain 1m
//
// Point the clients at it:
//
//	report -daemon 127.0.0.1:9753
//	sweep  -daemon unix:/tmp/prosimd.sock -threshold
//
// SIGINT/SIGTERM drain gracefully: the daemon stops accepting work,
// waits up to -drain for running batches, aborts whatever is left via
// context cancellation, and exits 0 on a clean drain.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/daemon"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9753",
		"listen address: host:port for TCP or unix:/path/to.sock for a unix socket")
	njobs := flag.Int("jobs", runtime.NumCPU(), "concurrent simulation workers")
	cacheDir := flag.String("cache", "", "result-cache directory (optional; strongly recommended for a daemon)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock cap (0 = none)")
	drain := flag.Duration("drain", daemon.DefaultDrainTimeout,
		"how long a SIGINT/SIGTERM shutdown waits for running jobs before aborting them")
	quiet := flag.Bool("quiet", false, "suppress lifecycle logging")
	flag.Parse()

	cfg := daemon.Config{
		Workers:      *njobs,
		CacheDir:     *cacheDir,
		JobTimeout:   *jobTimeout,
		DrainTimeout: *drain,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	d, err := daemon.New(cfg)
	if err != nil {
		fatal(err)
	}
	l, err := daemon.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		cache := *cacheDir
		if cache == "" {
			cache = "(none)"
		}
		fmt.Fprintf(os.Stderr, "prosimd: listening on %s (workers %d, cache %s, drain %s)\n",
			*listen, *njobs, cache, drain.String())
	}
	start := time.Now()
	if err := d.ServeUntilSignal(l); err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "prosimd: clean shutdown after %.1fs (%d jobs: %d simulated, %d replayed)\n",
			time.Since(start).Seconds(), d.Engine().Completed(), d.Engine().Simulated(), d.Engine().Replayed())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prosimd:", err)
	os.Exit(1)
}
