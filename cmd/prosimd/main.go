// Command prosimd is the long-running simulation daemon: it wraps the
// parallel job engine in an HTTP service (TCP or unix socket), keeps
// the result cache warm across invocations of the cmd/ tools, and
// dedupes identical in-flight work submitted by concurrent clients —
// the second client attaches to the running simulation instead of
// re-simulating.
//
// Endpoints: POST /v1/batch (NDJSON progress stream + results),
// GET /v1/stats, POST /v1/gc, GET /metrics (Prometheus text format).
// See DESIGN.md §9 for the protocol and §10 for the telemetry.
//
// Usage:
//
//	prosimd -cache .simcache                     # TCP on 127.0.0.1:9753
//	prosimd -listen unix:/tmp/prosimd.sock       # unix socket
//	prosimd -job-timeout 10m -drain 1m
//	prosimd -debug-addr 127.0.0.1:9754           # pprof + /metrics + expvar
//	prosimd -trace-out jobs.ndjson               # job-lifecycle spans
//	prosimd -log-level debug -log-json           # structured logs (stderr)
//
// Multi-tenant hardening (see DESIGN.md §13):
//
//	prosimd -queue-depth 512 -max-batch 256      # admission bounds (429 beyond)
//	prosimd -tokens-file tenants.json            # named tenants with rate/quota limits
//	prosimd -cache .simcache -serve-cache        # share the cache as an HTTP store
//	prosimd -cache .l1 -cache-remote http://peer:9753/cache   # tier onto a peer's store
//
// Point the clients at it:
//
//	report -daemon 127.0.0.1:9753
//	sweep  -daemon unix:/tmp/prosimd.sock -threshold
//
// SIGINT/SIGTERM drain gracefully: the daemon stops accepting work,
// waits up to -drain for running batches, aborts whatever is left via
// context cancellation, and exits 0 on a clean drain.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/daemon"
	"repro/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9753",
		"listen address: host:port for TCP or unix:/path/to.sock for a unix socket")
	njobs := flag.Int("jobs", runtime.NumCPU(), "concurrent simulation workers")
	smWorkers := flag.Int("sm-workers", 0, "SM-tick workers inside each simulation (0 = auto: spare cores per job; 1 = serial; results identical either way)")
	cacheDir := flag.String("cache", "", "result-cache directory (optional; strongly recommended for a daemon)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock cap (0 = none)")
	drain := flag.Duration("drain", daemon.DefaultDrainTimeout,
		"how long a SIGINT/SIGTERM shutdown waits for running jobs before aborting them")
	debugAddr := flag.String("debug-addr", "",
		"serve /debug/pprof, /metrics and /debug/vars on this extra address (keep it loopback-only)")
	traceOut := flag.String("trace-out", "",
		"write one NDJSON job-lifecycle span per line to this file (\"-\" = stderr)")
	queueDepth := flag.Int("queue-depth", 0,
		fmt.Sprintf("pending jobs admitted per priority class before batches get 429 (0 = %d)", daemon.DefaultQueueDepth))
	maxBatch := flag.Int("max-batch", 0, "max jobs in one batch request, 413 beyond it (0 = the queue depth)")
	interactiveWeight := flag.Int("interactive-weight", 0,
		fmt.Sprintf("consecutive interactive slot grants per bulk grant (0 = %d)", daemon.DefaultInteractiveWeight))
	tokensFile := flag.String("tokens-file", "",
		"JSON array of tenant configs ({token, name, ratePerSec, burst, maxInFlight}); absent = one open default tenant")
	cacheRemote := flag.String("cache-remote", "",
		"HTTP object store to tier the local cache onto (e.g. http://peer:9753/cache); requires -cache")
	cacheRemoteTimeout := flag.Duration("cache-remote-timeout", 0,
		"per-operation budget for the remote cache tier (0 = 250ms)")
	serveCache := flag.Bool("serve-cache", false,
		"serve the local result cache as an HTTP object store under /cache/ (peers point -cache-remote here)")
	flightOut := flag.String("flight-out", "",
		"flight-recorder directory: every simulated job writes a Perfetto capture <cache-key>.trace.json there (cache hits record nothing)")
	quiet := flag.Bool("quiet", false, "suppress lifecycle logging (same as -log-level error)")
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	if *quiet && logCfg.Level == "info" {
		logCfg.Level = "error"
	}
	log, err := logCfg.Setup()
	if err != nil {
		fatal(err)
	}

	cfg := daemon.Config{
		Workers:            *njobs,
		SMWorkers:          *smWorkers,
		CacheDir:           *cacheDir,
		JobTimeout:         *jobTimeout,
		DrainTimeout:       *drain,
		QueueDepth:         *queueDepth,
		MaxBatchJobs:       *maxBatch,
		InteractiveWeight:  *interactiveWeight,
		CacheRemote:        *cacheRemote,
		CacheRemoteTimeout: *cacheRemoteTimeout,
		ServeCache:         *serveCache,
		FlightDir:          *flightOut,
		Log:                log,
	}
	if *tokensFile != "" {
		tenants, err := daemon.LoadTenants(*tokensFile)
		if err != nil {
			fatal(err)
		}
		cfg.Tenants = tenants
		log.Info("tenants loaded", "file", *tokensFile, "tenants", len(tenants))
	}
	if *traceOut != "" {
		tr, err := obs.OpenTrace(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer tr.Close()
		cfg.Trace = tr
	}
	d, err := daemon.New(cfg)
	if err != nil {
		fatal(err)
	}
	l, err := daemon.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: obs.DebugHandler(obs.Default)}
		go func() {
			log.Info("debug endpoints up", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Error("debug server failed", "err", err)
			}
		}()
		defer dbg.Close()
	}
	cache := *cacheDir
	if cache == "" {
		cache = "(none)"
	}
	log.Info("listening",
		"addr", *listen, "workers", *njobs, "cache", cache, "drain", drain.String())
	start := time.Now()
	if err := d.ServeUntilSignal(l); err != nil {
		fatal(err)
	}
	log.Info("clean shutdown",
		"uptime_sec", fmt.Sprintf("%.1f", time.Since(start).Seconds()),
		"jobs", d.Engine().Completed(),
		"simulated", d.Engine().Simulated(),
		"replayed", d.Engine().Replayed())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prosimd:", err)
	os.Exit(1)
}
