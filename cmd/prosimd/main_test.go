package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/jobs"
	"repro/internal/workloads"
)

// TestMain lets the test binary double as the daemon: when the helper
// env var is set, it runs main() with the flags in os.Args — the
// SIGTERM test re-execs itself this way so it can signal a real
// process.
func TestMain(m *testing.M) {
	if os.Getenv("PROSIMD_TEST_DAEMON") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startDaemon re-execs the test binary as a prosimd on a unix socket
// and waits for it to accept connections.
func startDaemon(t *testing.T, sock string, extra ...string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-listen", "unix:" + sock}, extra...)
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "PROSIMD_TEST_DAEMON=1")
	var logs bytes.Buffer
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if t.Failed() {
			t.Logf("daemon stderr:\n%s", logs.String())
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(sock); err == nil {
			if _, err := daemon.Dial("unix:" + sock); err == nil {
				return cmd
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon did not come up")
	return nil
}

func TestSIGTERMDrainsAndExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec integration test")
	}
	sock := filepath.Join(t.TempDir(), "d.sock")
	cmd := startDaemon(t, sock, "-jobs", "2", "-drain", "2m")

	c, err := daemon.Dial("unix:" + sock)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByKernel("scalarProdGPU")
	if err != nil {
		t.Fatal(err)
	}
	// A few hundred ms of simulation (several seconds under -race):
	// long enough to be caught in flight, short enough to drain.
	w = w.Shrunk(50)
	type out struct {
		cycles int64
		err    error
	}
	got := make(chan out, 1)
	go func() {
		rs, err := c.Run(context.Background(),
			[]jobs.Job{{Launch: w.Launch, Kernel: w.Kernel, Scheduler: "PRO"}})
		if err != nil {
			got <- out{err: err}
			return
		}
		got <- out{cycles: rs[0].Cycles}
	}()

	// Wait until the daemon reports the job in flight, then TERM it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Stats(context.Background())
		if err == nil && st.InFlight > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached the engine")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The busy daemon must finish the running batch and exit 0.
	o := <-got
	if o.err != nil {
		t.Fatalf("in-flight batch aborted by SIGTERM: %v", o.err)
	}
	if o.cycles <= 0 {
		t.Fatal("drained batch lost its result")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited non-zero after graceful drain: %v", err)
	}

	// The socket is gone for good: a fresh dial must fail.
	if _, err := daemon.Dial("unix:" + sock); err == nil {
		t.Fatal("daemon still serving after SIGTERM")
	}
}

func TestDaemonServesBatchOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec integration test")
	}
	sock := filepath.Join(t.TempDir(), "d.sock")
	cache := filepath.Join(t.TempDir(), "cache")
	startDaemon(t, sock, "-jobs", "2", "-cache", cache, "-quiet")

	c, err := daemon.Dial("unix:" + sock)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	js := []jobs.Job{{Launch: w.Shrunk(8).Launch, Kernel: w.Kernel, Scheduler: "PRO"}}
	cold, err := c.Run(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.Run(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(cold[0])
	b, _ := json.Marshal(warm[0])
	if !bytes.Equal(a, b) {
		t.Fatal("warm result differs from cold")
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Simulated != 1 || st.Replayed != 1 {
		t.Fatalf("cache did not persist across batches: %+v", st)
	}
}

// TestNDJSONStreamReadableLineByLine drives the raw protocol through a
// real daemon process: every line before the terminator must be a
// complete JSON object even when read eagerly.
func TestNDJSONStreamReadableLineByLine(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec integration test")
	}
	sock := filepath.Join(t.TempDir(), "d.sock")
	startDaemon(t, sock, "-jobs", "2", "-quiet")

	w, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	var req daemon.BatchRequest
	for _, sched := range []string{"LRR", "PRO"} {
		req.Jobs = append(req.Jobs, daemon.WireJob{
			Launch:    w.Shrunk(8).Launch,
			Kernel:    w.Kernel,
			Scheduler: sched,
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hc := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (conn net.Conn, err error) {
			var d net.Dialer
			return d.DialContext(ctx, "unix", sock)
		},
	}}
	resp, err := hc.Post("http://prosimd/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var lines int
	var sawBatch bool
	for sc.Scan() {
		lines++
		var ev daemon.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		if ev.Type == "batch" {
			sawBatch = true
			if len(ev.Results) != len(req.Jobs) {
				t.Fatalf("batch line has %d results, want %d", len(ev.Results), len(req.Jobs))
			}
		} else if sawBatch {
			t.Fatal("job event after the batch terminator")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawBatch {
		t.Fatal("stream ended without a batch line")
	}
	if lines != len(req.Jobs)+1 {
		t.Fatalf("%d lines for %d jobs", lines, len(req.Jobs))
	}
	if strings.TrimSpace(resp.Header.Get("Content-Type")) != "application/x-ndjson" {
		t.Fatalf("content type %q", resp.Header.Get("Content-Type"))
	}
}
