// Command trace emits a sampled time series of one simulation as CSV:
// per-window IPC, stall composition, resident and pending thread
// blocks. It makes the paper's phase arguments visible — compute vs
// memory phases, the fastTBPhase→slowTBPhase transition, batch
// boundaries under LRR, and their disappearance under PRO.
//
// Usage:
//
//	trace -kernel scalarProdGPU -sched LRR -every 500 > lrr.csv
//	trace -kernel scalarProdGPU -sched PRO -every 500 > pro.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/flight"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/workloads"
	"repro/prosim"
)

func main() {
	kernel := flag.String("kernel", "scalarProdGPU", "Table II kernel to trace")
	sched := flag.String("sched", "PRO", "scheduler")
	every := flag.Int64("every", 1000, "sampling window in cycles")
	maxTBs := flag.Int("maxtbs", 0, "shrink grid (0 = full)")
	njobs := flag.Int("jobs", 1, "parallel simulation workers (a trace is one job)")
	smWorkers := flag.Int("sm-workers", 0, "SM-tick workers inside the simulation (0 = auto: spare cores; 1 = serial; results identical either way)")
	cacheDir := flag.String("cache", "", "result-cache directory (optional)")
	flightOut := flag.String("flight-out", "",
		"write the run's flight-recorder capture as Perfetto trace-event JSON to this file (a cache-served run records nothing; a warning is printed)")
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	if _, err := logCfg.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}

	w, err := workloads.ByKernel(*kernel)
	if err != nil {
		fatal(err)
	}
	if *maxTBs > 0 {
		w = w.Shrunk(*maxTBs)
	}
	eng, err := jobs.New(*njobs, *cacheDir, nil)
	if err != nil {
		fatal(err)
	}
	eng.SMWorkers = *smWorkers
	opts := prosim.Options{SampleEvery: *every}
	var rec *flight.Recorder
	if *flightOut != "" {
		rec = flight.New(flight.Options{})
		opts.Flight = rec
	}
	r, err := eng.RunOne(context.Background(), jobs.Job{
		Launch:    w.Launch,
		Kernel:    w.Kernel,
		Scheduler: *sched,
		Options:   opts,
	})
	if err != nil {
		fatal(err)
	}
	if rec != nil {
		if !rec.Recorded() {
			fmt.Fprintf(os.Stderr, "trace: -flight-out: result served from the cache, nothing recorded (clear %s or change -cache)\n", *cacheDir)
		} else {
			f, err := os.Create(*flightOut)
			if err != nil {
				fatal(err)
			}
			if err := rec.Capture().WritePerfetto(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "trace: flight capture written to %s\n", *flightOut)
		}
	}
	fmt.Println("cycle,ipc,issued,idle,scoreboard,pipeline,resident_tbs,pending_tbs")
	for _, s := range r.Samples {
		fmt.Printf("%d,%.4f,%d,%d,%d,%d,%d,%d\n",
			s.Cycle, s.IPC(*every),
			s.Stalls.Issued, s.Stalls.Idle, s.Stalls.Scoreboard, s.Stalls.Pipeline,
			s.ResidentTBs, s.PendingTBs)
	}
	fmt.Fprintf(os.Stderr, "trace: %s/%s: %d cycles, %d samples\n",
		w.Kernel, r.Scheduler, r.Cycles, len(r.Samples))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trace:", err)
	os.Exit(1)
}
