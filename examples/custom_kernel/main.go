// Custom kernel: build a new synthetic kernel with the ISA program
// builder — a tiled matrix-multiply-like workload that is not part of the
// paper's suite — and compare all four schedulers on it.
//
// This is the path a library user takes to model their own CUDA kernel:
// express its instruction mix, memory patterns, barriers and imbalance,
// then measure how scheduling policies behave on it.
//
//	go run ./examples/custom_kernel
package main

import (
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/prosim"
)

// buildTiledMatMul models one output tile per thread block: stream A and
// B tiles into shared memory behind barriers, multiply-accumulate, and
// write the tile back. The K-loop makes it long-running; a per-warp trip
// wobble models ragged matrix edges.
func buildTiledMatMul() (*isa.Program, error) {
	b := isa.NewBuilder("tiledMatMul")
	b.Loop(isa.LoopSpec{Min: 12, Max: 12}) // K/TILE iterations
	{
		// Stage the next A and B tiles.
		b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0, IterVaries: true})
		b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1, IterVaries: true})
		b.StShared(1, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
		b.StShared(2, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
		b.Bar()
		// Inner product over the tile.
		b.Repeat(8, func() {
			b.LdShared(3, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
			b.LdShared(4, isa.MemSpec{Pattern: isa.PatBroadcast, IterVaries: true})
			b.FFMA(5, 3, 4, 5)
		})
		b.Bar()
	}
	b.EndLoop()
	b.StGlobal(5, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 2})
	b.Exit()
	return b.Build()
}

func main() {
	prog, err := buildTiledMatMul()
	if err != nil {
		log.Fatal(err)
	}
	launch := &prosim.Launch{
		Program:        prog,
		GridTBs:        168,
		BlockThreads:   256,
		RegsPerThread:  28,
		SharedMemPerTB: 8 * 1024,
		Seed:           2024,
	}
	cfg := prosim.GTX480()
	fmt.Printf("custom kernel %q: %d TBs × %d threads, %d TBs resident per SM\n",
		prog.Name, launch.GridTBs, launch.BlockThreads, launch.ResidentTBs(cfg))
	mix := prog.Mix()
	fmt.Printf("static mix: %d SP, %d global, %d shared, %d barriers, %d branches\n\n",
		mix.SP, mix.GlobalMem, mix.SharedMem, mix.Barriers, mix.Branches)

	var baseline *prosim.Result
	for _, sched := range prosim.SchedulerNames() {
		r, err := prosim.Run(cfg, launch, sched, prosim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if baseline == nil {
			baseline = r
		} else {
			note = fmt.Sprintf("  (%.3fx vs %s)", r.Speedup(baseline), baseline.Scheduler)
		}
		fmt.Printf("%-4s %8d cycles  IPC %6.3f  L1 miss %5.1f%%%s\n",
			r.Scheduler, r.Cycles, r.IPC(), 100*r.Mem.L1MissRate(), note)
	}
}
