// GPU scaling: how does PRO's advantage move as the GPU grows? A fixed
// grid on more SMs means fewer residency batches (Sec. II-C's phenomenon
// shrinks), while fewer SMs deepen the batch structure. This example
// sweeps the SM count at constant workload and memory system per SM.
//
//	go run ./examples/gpu_scaling
package main

import (
	"fmt"
	"log"

	"repro/prosim"
)

func main() {
	w, err := prosim.WorkloadByKernel("aesEncrypt128")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s, %d TBs of %d threads\n\n", w.Kernel, w.Launch.GridTBs, w.Launch.BlockThreads)
	fmt.Printf("%6s %9s %12s %12s %10s\n", "SMs", "BATCHES", "LRR", "PRO", "SPEEDUP")

	for _, sms := range []int{4, 7, 14, 28} {
		cfg := prosim.GTX480()
		cfg.NumSMs = sms
		if err := cfg.Validate(); err != nil {
			log.Fatal(err)
		}
		capacity := w.Launch.ResidentTBs(cfg) * cfg.NumSMs
		lrr, err := prosim.Run(cfg, w.Launch, "LRR", prosim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		pro, err := prosim.Run(cfg, w.Launch, "PRO", prosim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %9.2f %12d %12d %9.3fx\n",
			sms, float64(w.Launch.GridTBs)/float64(capacity), lrr.Cycles, pro.Cycles, pro.Speedup(lrr))
	}
	fmt.Println("\nMore SMs -> fewer batches -> less tail-batch waste for PRO to")
	fmt.Println("reclaim; fewer SMs deepen the batch structure and PRO's margin.")
}
