// TB timeline: reproduce the paper's Figure 2 phenomenon interactively —
// under LRR the thread blocks of an SM run and finish in lock-step
// batches; under PRO they are deliberately staggered so fresh TBs start
// while old ones still run, keeping the SM's ready-warp pool deep.
//
//	go run ./examples/tb_timeline
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/prosim"
)

func main() {
	w, err := prosim.WorkloadByKernel("aesEncrypt128")
	if err != nil {
		log.Fatal(err)
	}
	// A smaller grid keeps the picture readable: ~3 batches on SM 0.
	w = w.Shrunk(128)

	cfg := prosim.GTX480()
	batch := w.Launch.ResidentTBs(cfg)

	for _, sched := range []string{"LRR", "PRO"} {
		spans, r, err := experiments.Timeline(w, sched, 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatTimeline(
			fmt.Sprintf("%s, %d cycles", sched, r.Cycles), spans, r.Cycles))

		// Quantify the batching the paper describes in Sec. II-C: a
		// narrow spread of first-batch finish times means the batch ended
		// as a unit (LRR); a wide spread means execution was staggered
		// and fresh TBs overlapped the old batch (PRO).
		fmt.Printf("-> %d TBs on SM 0; first-batch (%d TBs) finish-time spread: %d cycles\n\n",
			len(spans), batch, firstBatchSpread(spans, batch))
	}
	fmt.Println("Under LRR the first-batch TBs end within a narrow band (a batch boundary);")
	fmt.Println("under PRO the ends spread out, so new TBs overlapped the old batch.")
}

// firstBatchSpread returns max(End)-min(End) over the SM's first batch
// TBs (launch sequence < batch).
func firstBatchSpread(spans []stats.TBSpan, batch int) int64 {
	var lo, hi int64 = 1 << 62, 0
	for _, s := range spans {
		if s.Slot >= batch {
			continue
		}
		if s.End < lo {
			lo = s.End
		}
		if s.End > hi {
			hi = s.End
		}
	}
	if hi == 0 {
		return 0
	}
	return hi - lo
}
