// Quickstart: simulate one Table II kernel under LRR and PRO and print
// the headline comparison — the five-minute tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/prosim"
)

func main() {
	// scalarProdGPU is the paper's most scheduler-sensitive kernel: a
	// dot product whose warps accumulate unevenly and then meet at a
	// reduction-tree of barriers.
	w, err := prosim.WorkloadByKernel("scalarProdGPU")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s (%s), %d thread blocks of %d threads\n\n",
		w.Kernel, w.App, w.Launch.GridTBs, w.Launch.BlockThreads)

	base, err := prosim.RunWorkload(w, "LRR", prosim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	pro, err := prosim.RunWorkload(w, "PRO", prosim.Options{})
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range []*prosim.Result{base, pro} {
		fmt.Printf("%-4s  %8d cycles  IPC %.3f  stalls: idle=%d scoreboard=%d pipeline=%d\n",
			r.Scheduler, r.Cycles, r.IPC(),
			r.Stalls.Idle, r.Stalls.Scoreboard, r.Stalls.Pipeline)
	}
	fmt.Printf("\nPRO speedup over LRR: %.3fx\n", pro.Speedup(base))
	fmt.Printf("PRO hardware cost on this GPU: %d bytes per SM (paper: 240)\n",
		prosim.HardwareCostBytes(prosim.GTX480()))
}
