// Occupancy study: the paper's Sec. II-C argument, measured. A kernel
// whose grid slightly exceeds the GPU's concurrent TB capacity suffers a
// "tail batch" under batch-synchronous scheduling: the last few TBs run
// on a nearly empty machine. PRO's finishWait/progress priorities
// release TB slots earlier, so the tail overlaps the body.
//
// This example sweeps the grid size of a synthetic kernel from one batch
// to four batches of residency and reports LRR vs PRO runtime at each
// point — the gain peaks where the tail-batch waste is largest
// (just past an integer batch count).
//
//	go run ./examples/occupancy_study
package main

import (
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/prosim"
)

func buildKernel() (*isa.Program, error) {
	b := isa.NewBuilder("occupancy-probe")
	// Mildly memory-bound with per-TB imbalance so TB runtimes differ —
	// the ingredient that lets progress-aware prioritization reorder
	// completions.
	b.Loop(isa.LoopSpec{Min: 16, Max: 24, Imb: isa.ImbPerTB})
	{
		b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0, IterVaries: true})
		b.FFMA(2, 1, 1, 2)
		b.FFMA(3, 2, 1, 3)
		b.FAdd(2, 3, 1)
	}
	b.EndLoop()
	b.StGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.Exit()
	return b.Build()
}

func main() {
	prog, err := buildKernel()
	if err != nil {
		log.Fatal(err)
	}
	cfg := prosim.GTX480()
	launch := &prosim.Launch{
		Program:       prog,
		BlockThreads:  256,
		RegsPerThread: 20,
		Seed:          7,
		GridTBs:       1, // set per sweep point
	}
	capacity := launch.ResidentTBs(cfg) * cfg.NumSMs
	fmt.Printf("concurrent capacity: %d TBs (%d per SM × %d SMs)\n\n",
		capacity, launch.ResidentTBs(cfg), cfg.NumSMs)
	fmt.Printf("%8s %8s %12s %12s %10s\n", "GRID", "BATCHES", "LRR", "PRO", "SPEEDUP")

	for _, frac := range []float64{1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0} {
		l := *launch
		l.GridTBs = int(float64(capacity) * frac)
		lrr, err := prosim.Run(cfg, &l, "LRR", prosim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		pro, err := prosim.Run(cfg, &l, "PRO", prosim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %8.2f %12d %12d %9.3fx\n",
			l.GridTBs, frac, lrr.Cycles, pro.Cycles, pro.Speedup(lrr))
	}
	fmt.Println("\nPRO wins at every point; the margin is widest when the batch tail is")
	fmt.Println("a large fraction of the run (few batches), because LRR strands those")
	fmt.Println("tail TBs on an underused GPU (paper Sec. II-C). As the batch count")
	fmt.Println("grows the tail amortizes and the gap narrows.")
}
