# Developer / CI entry points. `make check` is the gate every change
# must pass: go vet plus the full test suite under the race detector —
# load-bearing now that the job engine fans simulations across a worker
# pool.

GO ?= go

.PHONY: build test vet race check bench report papercheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race

bench:
	$(GO) test -bench=. -benchtime=1x .

# Regenerate every paper artifact into results/ using all cores and a
# local result cache (warm re-runs are nearly instant).
report:
	$(GO) run ./cmd/report -out results -cache .simcache

papercheck:
	$(GO) run ./cmd/papercheck -cache .simcache
