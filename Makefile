# Developer / CI entry points. `make check` is the gate every change
# must pass: go vet, the full test suite under the race detector, the
# fast-path differential test (order cache + cycle skipping must be
# bit-invisible) and a compile check of the bench harness.

GO ?= go

.PHONY: build test vet race fastpath fastforwardtest smparalleltest benchbuild daemontest obstest clustertest tenanttest flighttest benchdiff benchdiff-write baseline check bench benchquick profile report papercheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The bit-identity oracle for the simulation fast paths: every fast-path
# combination must reproduce the naive engine's results byte for byte.
fastpath:
	$(GO) test -run TestFastPathEquivalence -count=1 ./prosim

# The global fast-forward gate: the event-horizon jump must be invisible
# for every registered scheduler, checked under the race detector with
# the fast-forward both on and off (the differential runs both sides).
fastforwardtest:
	$(GO) test -race -run 'TestFastForwardDifferential|TestFastPathEquivalence' -count=1 ./prosim

# The parallel-SM determinism gate: ticking SMs on a worker pool with
# two-phase memsys commit must be byte-identical to serial ticking for
# every registered scheduler, at every worker count, under the race
# detector (which proves the staged phase has no cross-SM data races
# even on a single-core host).
smparalleltest:
	$(GO) test -race -run 'TestParallelSM' -count=1 ./prosim

# The bench harness must always compile (it is easy to break silently,
# since plain `go test ./...` runs it but a refactor of the experiment
# API can leave stale benchmarks behind on partial builds).
benchbuild:
	$(GO) vet .
	$(GO) test -run '^$$' -bench '^$$' .

# The daemon's concurrency surface (singleflight dedupe, NDJSON stream
# fan-in, graceful drain) under the race detector, re-run every time:
# these tests exercise real sockets and a re-exec'd daemon process, so
# they must not be satisfied from the test cache.
daemontest:
	$(GO) test -race -count=1 ./internal/daemon ./cmd/prosimd

# Telemetry smoke under the race detector: the /metrics acceptance test
# (valid Prometheus exposition after real work), the pprof/expvar debug
# mux, the heartbeat bit-identity gate and the tracer's line atomicity.
obstest:
	$(GO) test -race -count=1 -run 'TestMetricsEndpointServesPrometheus|TestTraceSpansCoverBatchLifecycle|TestDebugHandlerServesMetricsVarsAndPprof|TestHeartbeat' ./internal/daemon ./internal/obs ./internal/gpu

# The multi-tenant surface under the race detector, re-run every time:
# admission control (429/413 + Retry-After), tenant auth/rate/quota,
# weighted priority dispatch, the tiered L1/L2 result cache (including
# the two-daemons-share-an-L2 acceptance test) and the singleflight /
# fan-out / socket-takeover regression tests.
tenanttest:
	$(GO) test -race -count=1 -run 'TestLeaderDisconnect|TestFullQueue|TestOversizeBatch|TestBulkFlood|TestTenant|TestLargeBatchBounded|TestTwoDaemonsSharedL2|TestStatsAndHealthReject|TestListenRefuses|TestClientSurfacesOverload|TestDispatcherWeighted|TestStatsWireCompat|TestTiered|TestStoreHandler' ./internal/daemon ./internal/resultcache

# The flight-recorder gate under the race detector, re-run every time:
# the bit-identity differential (recorder on vs off for every
# scheduler, serial and parallel SM ticking), the disabled-path
# zero-allocation pin, the cache-key kill switch, the ring/sampling
# unit tests and the structural validation of the Perfetto and NDJSON
# exports.
flighttest:
	$(GO) test -race -count=1 -run 'TestFlight|TestPerfetto' ./internal/flight ./internal/gpu ./internal/engine ./internal/jobs ./cmd/flight

# The sweep cluster under the race detector, re-run every time: the
# acceptance test spins up three in-process daemons sharing a cache,
# kills one mid-batch and asserts the assembled suite is byte-identical
# to a serial run — real sockets and timing, so no test-cache reuse.
clustertest:
	$(GO) test -race -count=1 ./internal/cluster

# Diff the latest bench run against the newest recorded snapshot in
# results/ (bench-<git-sha>.json). Non-blocking in check: a missing or
# stale bench.txt should not fail unrelated changes. To advance the
# baseline after landing a change on main, run `make baseline` — a
# fresh 5-rep bench run persisted as results/bench-<git-sha>.json,
# which later `make benchdiff` runs compare against.
benchdiff:
	$(GO) run ./cmd/benchdiff -in results/bench.txt

benchdiff-write:
	$(GO) run ./cmd/benchdiff -in results/bench.txt -write

baseline: bench benchdiff-write

check: vet race fastpath fastforwardtest smparalleltest daemontest obstest clustertest tenanttest flighttest benchbuild
	-$(MAKE) benchdiff

# Statistically meaningful bench run for before/after comparisons:
# 5 repetitions with allocation counts, archived under results/.
bench:
	@mkdir -p results
	$(GO) test -bench=. -benchmem -count=5 . | tee results/bench.txt

# Quick bench pass (one iteration per benchmark, no allocation stats).
benchquick:
	$(GO) test -bench=. -benchtime=1x .

# CPU + heap profiles of the paper grid (all kernels, the four headline
# schedulers) into results/, for digging into where tick vs commit time
# goes: `go tool pprof results/cpu.pprof`.
profile:
	@mkdir -p results
	$(GO) run ./cmd/prosim -all -maxtbs 128 \
		-cpuprofile results/cpu.pprof -memprofile results/mem.pprof
	@echo "profiles written: results/cpu.pprof results/mem.pprof"

# Regenerate every paper artifact into results/ using all cores and a
# local result cache (warm re-runs are nearly instant).
report:
	$(GO) run ./cmd/report -out results -cache .simcache

papercheck:
	$(GO) run ./cmd/papercheck -cache .simcache
