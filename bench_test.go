// Package repro's root bench harness regenerates every table and figure
// of the paper as a testing.B benchmark, reporting the paper's figures of
// merit through b.ReportMetric:
//
//	Table I   -> BenchmarkTableIConfig          (config construction)
//	Table II  -> BenchmarkTableIIWorkloads      (workload construction)
//	Fig. 1    -> BenchmarkFig1StallBreakdown/*  (idle/sb/pipe fractions)
//	Fig. 2    -> BenchmarkFig2Timeline/*        (TB finish-time spread)
//	Fig. 4    -> BenchmarkFig4Speedup           (geomean speedups)
//	Fig. 5    -> BenchmarkFig5StallImprovement  (geomean stall ratios)
//	Table III -> BenchmarkTableIIIStallRatios   (per-type stall ratios)
//	Table IV  -> BenchmarkTableIVTBOrder        (order-change count)
//	Sec. IV   -> BenchmarkAblationBarrierHandling (scalarProd ablation)
//	Sec. III  -> BenchmarkAblationThreshold/*   (THRESHOLD sensitivity)
//	(extra)   -> BenchmarkSimulatorThroughput   (simulated cycles/s)
//
// Benchmarks run on shrunk grids so `go test -bench=.` finishes in
// minutes; the full-scale numbers in EXPERIMENTS.md come from cmd/report.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/stats"
	"repro/internal/workloads"
	"repro/prosim"
)

// benchTBs is the per-grid cap for bench runs (~2 residency batches).
const benchTBs = 42

// benchKernels is the representative subset used by the suite-wide
// benches: one kernel per major behaviour class (shared-memory rounds,
// compute-bound, barrier reduction, stencil, bin scatter, streaming NN).
func benchKernels(b *testing.B) []*workloads.Workload {
	b.Helper()
	names := []string{
		"aesEncrypt128", "cenergy", "scalarProdGPU",
		"calculate_temp", "histogram256Kernel", "executeFirstLayer",
	}
	var ws []*workloads.Workload
	for _, n := range names {
		w, err := workloads.ByKernel(n)
		if err != nil {
			b.Fatal(err)
		}
		ws = append(ws, w.Shrunk(benchTBs))
	}
	return ws
}

func runSuite(b *testing.B, scheds []string) *experiments.Suite {
	b.Helper()
	s, err := experiments.RunSuite(benchKernels(b), scheds, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkTableIConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.GTX480()
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIIWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := workloads.All()
		if len(ws) != 25 {
			b.Fatal("workload inventory broken")
		}
	}
}

func BenchmarkFig1StallBreakdown(b *testing.B) {
	for _, sched := range []string{"TL", "LRR", "GTO"} {
		b.Run(sched, func(b *testing.B) {
			var rows []experiments.BreakdownRow
			for i := 0; i < b.N; i++ {
				s := runSuite(b, []string{sched})
				rows = s.ComputeFig1(sched)
			}
			var idle, sb, pipe float64
			for _, r := range rows {
				idle += r.IdleFrac
				sb += r.SBFrac
				pipe += r.PipeFrac
			}
			n := float64(len(rows))
			b.ReportMetric(idle/n, "idle_frac")
			b.ReportMetric(sb/n, "sb_frac")
			b.ReportMetric(pipe/n, "pipe_frac")
		})
	}
}

func BenchmarkFig2Timeline(b *testing.B) {
	aes, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		b.Fatal(err)
	}
	aes = aes.Shrunk(128)
	batch := aes.Launch.ResidentTBs(config.GTX480())
	for _, sched := range []string{"LRR", "PRO"} {
		b.Run(sched, func(b *testing.B) {
			var spread int64
			for i := 0; i < b.N; i++ {
				spans, _, err := experiments.Timeline(aes, sched, 0, nil)
				if err != nil {
					b.Fatal(err)
				}
				spread = finishSpread(spans, batch)
			}
			// The paper's Fig. 2 signature: LRR's first batch finishes in
			// a narrow band, PRO's is spread wide.
			b.ReportMetric(float64(spread), "batch_end_spread_cycles")
		})
	}
}

func finishSpread(spans []stats.TBSpan, batch int) int64 {
	var lo, hi int64 = 1 << 62, 0
	for _, s := range spans {
		if s.Slot >= batch {
			continue
		}
		if s.End < lo {
			lo = s.End
		}
		if s.End > hi {
			hi = s.End
		}
	}
	if hi == 0 {
		return 0
	}
	return hi - lo
}

func BenchmarkFig4Speedup(b *testing.B) {
	var f4 *experiments.Fig4
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []string{"TL", "LRR", "GTO", "PRO"})
		f4 = s.ComputeFig4()
	}
	// Paper geomeans: 1.13 over TL, 1.12 over LRR, 1.02 over GTO.
	b.ReportMetric(f4.Geomean["TL"], "geomean_vs_TL")
	b.ReportMetric(f4.Geomean["LRR"], "geomean_vs_LRR")
	b.ReportMetric(f4.Geomean["GTO"], "geomean_vs_GTO")
}

func BenchmarkFig5StallImprovement(b *testing.B) {
	var t3 *experiments.Table3
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []string{"TL", "LRR", "GTO", "PRO"})
		t3 = s.ComputeTable3()
	}
	// Paper geomean totals: 1.32 over TL, 1.19 over LRR, 1.04 over GTO.
	b.ReportMetric(t3.Geomean["TL"].Total, "stall_ratio_vs_TL")
	b.ReportMetric(t3.Geomean["LRR"].Total, "stall_ratio_vs_LRR")
	b.ReportMetric(t3.Geomean["GTO"].Total, "stall_ratio_vs_GTO")
}

func BenchmarkTableIIIStallRatios(b *testing.B) {
	var t3 *experiments.Table3
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []string{"TL", "LRR", "GTO", "PRO"})
		t3 = s.ComputeTable3()
	}
	// Per-type geomeans vs TL (paper: Pipe 0.70, Idle 2.40, SB 1.58).
	b.ReportMetric(t3.Geomean["TL"].Pipe, "pipe_vs_TL")
	b.ReportMetric(t3.Geomean["TL"].Idle, "idle_vs_TL")
	b.ReportMetric(t3.Geomean["TL"].SB, "sb_vs_TL")
	b.ReportMetric(t3.Geomean["LRR"].Idle, "idle_vs_LRR")
}

func BenchmarkTableIVTBOrder(b *testing.B) {
	aes, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		b.Fatal(err)
	}
	aes = aes.Shrunk(128)
	var changes, samples int
	for i := 0; i < b.N; i++ {
		trace, err := experiments.OrderTrace(aes, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		changes, samples = orderChanges(trace)
	}
	// The paper observes the sorted order changing 7 times over 16
	// samples for AES; report the analogous churn.
	b.ReportMetric(float64(changes), "order_changes")
	b.ReportMetric(float64(samples), "samples")
}

func orderChanges(trace []stats.OrderSample) (changes, samples int) {
	for i := 1; i < len(trace); i++ {
		if !equalInts(trace[i].Order, trace[i-1].Order) {
			changes++
		}
	}
	return changes, len(trace)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkAblationBarrierHandling(b *testing.B) {
	// Sec. IV: scalarProd improves when barrier special-handling is
	// disabled; barrier-heavy stencils should not.
	for _, kernel := range []string{"scalarProdGPU", "calculate_temp"} {
		b.Run(kernel, func(b *testing.B) {
			w, err := workloads.ByKernel(kernel)
			if err != nil {
				b.Fatal(err)
			}
			w = w.Shrunk(benchTBs)
			var ratio float64
			for i := 0; i < b.N; i++ {
				on, err := prosim.RunWorkload(w, "PRO", prosim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				off, err := prosim.RunWorkload(w, "PRO-nobar", prosim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(on.Cycles) / float64(off.Cycles)
			}
			b.ReportMetric(ratio, "nobar_speedup")
		})
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	w, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		b.Fatal(err)
	}
	w = w.Shrunk(benchTBs)
	base, err := prosim.RunWorkload(w, "PRO", prosim.Options{}) // threshold 1000
	if err != nil {
		b.Fatal(err)
	}
	for _, th := range []int64{250, 1000, 4000} {
		b.Run(thName(th), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				r, err := prosim.RunFactory(prosim.GTX480(), w.Launch,
					prosim.PRO(core.WithThreshold(th)), prosim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				cycles = r.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
			b.ReportMetric(float64(base.Cycles)/float64(cycles), "vs_threshold_1000")
		})
	}
}

func thName(th int64) string {
	switch th {
	case 250:
		return "threshold250"
	case 1000:
		return "threshold1000"
	default:
		return "threshold4000"
	}
}

func BenchmarkFutureWorkVariants(b *testing.B) {
	// The paper's own extensions (Sec. IV profiling, Sec. III-A
	// normalized progress) on the kernel that motivated them.
	w, err := workloads.ByKernel("scalarProdGPU")
	if err != nil {
		b.Fatal(err)
	}
	w = w.Shrunk(benchTBs)
	for _, name := range []string{"PRO", "PRO-adaptive", "PRO-norm"} {
		b.Run(name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				r, err := prosim.RunWorkload(w, name, prosim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				cycles = r.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

func BenchmarkWideGPUParallelSM(b *testing.B) {
	// Intra-simulation SM parallelism on wide GPUs (2x and 4x the
	// GTX480's 14 SMs): serial ticking vs the staged two-phase parallel
	// path. Results are bit-identical in every mode (pinned by
	// TestParallelSMDifferential); this bench records the wall-clock
	// effect. "parallel" resolves the worker count automatically
	// (min(NumSMs, GOMAXPROCS) — on a single-core host it degenerates
	// to serial), while "parallel4" forces 4 workers so the staging
	// machinery is exercised even there; a real speedup needs spare
	// cores.
	w, err := workloads.ByKernel("calculate_temp")
	if err != nil {
		b.Fatal(err)
	}
	w = w.Shrunk(112) // two full residency rounds on the widest GPU
	for _, sms := range []int{28, 56} {
		for _, mode := range []string{"serial", "parallel", "parallel4"} {
			b.Run(fmt.Sprintf("sms%d/%s", sms, mode), func(b *testing.B) {
				cfg := prosim.GTX480()
				cfg.NumSMs = sms
				switch mode {
				case "serial":
					cfg.DisableSMParallel = true
				case "parallel4":
					cfg.ParallelSMs = 4
				}
				// Per-phase attribution via the heartbeat listener: the
				// listener fires on the simulation goroutine, so plain
				// accumulators are safe here (one run at a time).
				var parTicks, serTicks, tickNS, commitNS int64
				gpu.SetHeartbeat(func(h gpu.Heartbeat) {
					parTicks += h.ParTicks
					serTicks += h.SerialTicks
					tickNS += h.TickNS
					commitNS += h.CommitNS
				}, 1<<14)
				defer gpu.SetHeartbeat(nil, 0)
				var simCycles int64
				for i := 0; i < b.N; i++ {
					r, err := prosim.Run(cfg, w.Launch, "PRO", prosim.Options{})
					if err != nil {
						b.Fatal(err)
					}
					simCycles += r.Cycles
				}
				b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "sim_cycles/s")
				if simCycles > 0 {
					b.ReportMetric(float64(tickNS)/float64(simCycles), "tick_ns/cycle")
					b.ReportMetric(float64(commitNS)/float64(simCycles), "commit_ns/cycle")
				}
				if d := parTicks + serTicks; d > 0 {
					// Fraction of pool-backed iterations the fan-out
					// decision actually parallelised.
					b.ReportMetric(float64(parTicks)/float64(d), "fanout_rate")
				}
			})
		}
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	// Raw simulator speed: simulated SM-cycles per wall second on a
	// mid-weight kernel under PRO.
	w, err := workloads.ByKernel("calculate_temp")
	if err != nil {
		b.Fatal(err)
	}
	w = w.Shrunk(benchTBs)
	var simCycles int64
	for i := 0; i < b.N; i++ {
		r, err := prosim.RunWorkload(w, "PRO", prosim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		simCycles += r.Cycles
	}
	b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}
