package prosim_test

// Differential gate for parallel SM ticking (`make smparalleltest`).
// The two-phase commit — concurrent staged SM ticks, then a lane drain
// in SM-ID order — must be invisible in every observable output for
// every registered scheduler; these tests require byte-identical JSON
// against the serial loop, and the chaos test shakes worker-count and
// option combinations under -race (the scheduler pool plus the race
// detector is also what catches any unstaged shared mutation).

import (
	"encoding/json"
	"testing"

	"repro/internal/schedreg"
	"repro/prosim"
)

// runJSON simulates one configuration and returns the canonical JSON.
// mod, when non-nil, adjusts the execution knobs after the worker count
// is applied (used to isolate one commit-pipeline layer at a time).
func runJSON(t *testing.T, kernel, sched string, workers int, opts prosim.Options, mod func(*prosim.Config)) string {
	t.Helper()
	w, err := prosim.WorkloadByKernel(kernel)
	if err != nil {
		t.Fatal(err)
	}
	w = w.Shrunk(8)
	cfg := prosim.GTX480()
	if workers <= 1 {
		cfg.DisableSMParallel = true
	} else {
		// Explicit count: fan out even on single-core hosts, where auto
		// mode would resolve to the serial loop.
		cfg.ParallelSMs = workers
	}
	if mod != nil {
		mod(cfg)
	}
	r, err := prosim.Run(cfg, w.Launch, sched, opts)
	if err != nil {
		t.Fatalf("%s/%s workers=%d: %v", kernel, sched, workers, err)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// smVariants isolates the layers of the parallel commit pipeline. The
// single-layer rows pin the adaptive controller off so every eligible
// iteration actually stages (the controller could otherwise legally run
// stretches serial and dilute coverage); the full row keeps it on, so
// serial/parallel flips and probe windows are themselves under the
// byte-identity oracle.
var smVariants = []struct {
	name string
	mod  func(*prosim.Config)
}{
	{"full", nil},
	{"batched-commit-only", func(cfg *prosim.Config) {
		cfg.DisableMemsysParallel = true
		cfg.DisableAdaptiveFanout = true
	}},
	{"memsys-parallel-only", func(cfg *prosim.Config) {
		cfg.DisableCommitBatch = true
		cfg.DisableAdaptiveFanout = true
	}},
}

// TestParallelSMDifferential sweeps every registered scheduler on two
// kernels with different TB-churn and memory profiles: parallel ticking
// must reproduce the serial results byte for byte — including mid-run
// observations (samples, timelines), which see the committed state at
// the exact same cycles. Every pipeline variant runs at 4 workers; the
// full production pipeline additionally runs at 2 and 99 workers
// (non-dividing and larger-than-the-array counts).
func TestParallelSMDifferential(t *testing.T) {
	kernels := []string{"aesEncrypt128", "scalarProdGPU"}
	opts := prosim.Options{Timeline: true, SampleEvery: 500}
	for _, k := range kernels {
		for _, s := range schedreg.All() {
			k, s := k, s
			t.Run(k+"/"+s, func(t *testing.T) {
				t.Parallel()
				serial := runJSON(t, k, s, 1, opts, nil)
				for _, v := range smVariants {
					if got := runJSON(t, k, s, 4, opts, v.mod); got != serial {
						t.Errorf("%s/%s: variant %s diverged from serial", k, s, v.name)
					}
				}
				for _, workers := range []int{2, 99} {
					if got := runJSON(t, k, s, workers, opts, nil); got != serial {
						t.Errorf("%s/%s: workers=%d diverged from serial", k, s, workers)
					}
				}
			})
		}
	}
}

// TestParallelSMWorkerCountChaos varies the worker count — including
// counts that do not divide the SM array, exceed it, and degenerate to
// one SM per worker — on a scheduler with timed behaviour and one with
// heavy barrier traffic. Every combination must match the serial run;
// under -race this doubles as the data-race oracle for the staging
// discipline.
func TestParallelSMWorkerCountChaos(t *testing.T) {
	cases := []struct {
		kernel string
		sched  string
	}{
		{"calculate_temp", "PRO-adaptive"},
		{"scalarProdGPU", "PRO"},
		{"aesEncrypt128", "GTO"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.kernel+"/"+c.sched, func(t *testing.T) {
			t.Parallel()
			serial := runJSON(t, c.kernel, c.sched, 1, prosim.Options{}, nil)
			for _, workers := range []int{2, 3, 5, 14, 99} {
				if got := runJSON(t, c.kernel, c.sched, workers, prosim.Options{}, nil); got != serial {
					t.Errorf("%s/%s: workers=%d diverged from serial", c.kernel, c.sched, workers)
				}
			}
		})
	}
}
