package prosim_test

// TestFastForwardDifferential is the dedicated gate for the global
// fast-forward path (`make fastforwardtest`). Where TestFastPathEquivalence
// isolates each switch on a small scheduler set, this test sweeps every
// registered scheduler — the fast-forward horizon computation must hold
// for policies with timed behaviour (PRO-adaptive's phase timer, TL's
// level rotation) just as for purely event-driven ones.

import (
	"encoding/json"
	"testing"

	"repro/internal/schedreg"
	"repro/prosim"
)

func TestFastForwardDifferential(t *testing.T) {
	// Two memory-divergent kernels with different TB churn profiles keep
	// the sweep affordable while exercising both the idle-memsys jump
	// (aes compute bursts) and the drain/retire boundary (scalarProd).
	kernels := []string{"aesEncrypt128", "scalarProdGPU"}
	for _, k := range kernels {
		w, err := prosim.WorkloadByKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		w = w.Shrunk(8)
		for _, s := range schedreg.All() {
			s := s
			t.Run(k+"/"+s, func(t *testing.T) {
				t.Parallel()
				var ref string
				for _, disable := range []bool{true, false} {
					cfg := prosim.GTX480()
					cfg.DisableFastForward = disable
					r, err := prosim.Run(cfg, w.Launch, s, prosim.Options{})
					if err != nil {
						t.Fatal(err)
					}
					data, err := json.Marshal(r)
					if err != nil {
						t.Fatal(err)
					}
					if disable {
						ref = string(data)
					} else if string(data) != ref {
						t.Errorf("fast-forward changed the result for %s/%s", k, s)
					}
				}
			})
		}
	}
}
