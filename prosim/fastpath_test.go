package prosim_test

// Differential tests for the simulation fast paths. The order cache,
// stall-aware cycle skipping, global fast-forward and warp pooling exist
// purely to make simulations faster; by design they must be invisible in
// every observable output — cycles, stall breakdowns, memory counters,
// timelines and samples. These tests run a workload × scheduler grid
// with each fast path toggled off via the Config switches and require
// byte-identical results against the naive reference. `make check` runs
// this test by name; it is the gate for any change to the cycle engine.

import (
	"encoding/json"
	"testing"

	"repro/prosim"
)

// fastPaths names the simulation-speed switches under differential test.
// The zero value is the production configuration (everything on).
type fastPaths struct {
	disableOrderCache  bool
	disableCycleSkip   bool
	disableFastForward bool
	disableWarpPooling bool
	disableSMParallel  bool
	// Parallel-path refinements, each individually toggleable so the
	// grid can isolate one layer of the commit pipeline at a time.
	disableCommitBatch    bool
	disableMemsysParallel bool
	disableAdaptiveFanout bool
	// parallelSMs pins the SM-tick worker count when parallelism is on,
	// so the grid exercises real fan-out even on single-core CI hosts
	// (auto mode would resolve to serial there).
	parallelSMs int
}

// naivePaths disables every fast path — the reference implementation.
var naivePaths = fastPaths{
	disableOrderCache:     true,
	disableCycleSkip:      true,
	disableFastForward:    true,
	disableWarpPooling:    true,
	disableSMParallel:     true,
	disableCommitBatch:    true,
	disableMemsysParallel: true,
	disableAdaptiveFanout: true,
}

// fastPathGrid simulates the differential grid with the given fast-path
// switches and returns one canonical JSON encoding per run.
func fastPathGrid(t *testing.T, fp fastPaths) []string {
	t.Helper()
	kernels := []string{"aesEncrypt128", "scalarProdGPU", "calculate_temp"}
	// PRO-adaptive exercises the timed-refresh path (the adaptive
	// profiler switches phases on a schedule, not on issue events).
	scheds := []string{"TL", "LRR", "GTO", "PRO", "PRO-adaptive"}
	// The sampled run checks that mid-run observations (per-interval
	// counters, TB timelines) see the same state at the same cycles.
	opts := []prosim.Options{{}, {Timeline: true, SampleEvery: 500}}

	var out []string
	for _, k := range kernels {
		w, err := prosim.WorkloadByKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		w = w.Shrunk(8)
		for _, s := range scheds {
			for _, o := range opts {
				cfg := prosim.GTX480()
				cfg.DisableOrderCache = fp.disableOrderCache
				cfg.DisableCycleSkip = fp.disableCycleSkip
				cfg.DisableFastForward = fp.disableFastForward
				cfg.DisableWarpPooling = fp.disableWarpPooling
				cfg.DisableSMParallel = fp.disableSMParallel
				cfg.DisableCommitBatch = fp.disableCommitBatch
				cfg.DisableMemsysParallel = fp.disableMemsysParallel
				cfg.DisableAdaptiveFanout = fp.disableAdaptiveFanout
				cfg.ParallelSMs = fp.parallelSMs
				r, err := prosim.Run(cfg, w.Launch, s, o)
				if err != nil {
					t.Fatalf("%s/%s: %v", k, s, err)
				}
				data, err := json.Marshal(r)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, string(data))
			}
		}
	}
	return out
}

func TestFastPathEquivalence(t *testing.T) {
	naive := fastPathGrid(t, naivePaths)
	each := func(mod func(*fastPaths)) fastPaths {
		fp := naivePaths
		mod(&fp)
		return fp
	}
	for _, tc := range []struct {
		name string
		fp   fastPaths
	}{
		{"order-cache-only", each(func(fp *fastPaths) { fp.disableOrderCache = false })},
		{"cycle-skip-only", each(func(fp *fastPaths) { fp.disableCycleSkip = false })},
		{"fast-forward-only", each(func(fp *fastPaths) { fp.disableFastForward = false })},
		{"warp-pooling-only", each(func(fp *fastPaths) { fp.disableWarpPooling = false })},
		// Bare two-phase commit: parallel staged ticks with the batched
		// lane commit, overlapped DRAM scan and adaptive controller all
		// held off.
		{"sm-parallel-only", each(func(fp *fastPaths) { fp.disableSMParallel = false; fp.parallelSMs = 4 })},
		// One commit-pipeline refinement at a time on top of the bare
		// parallel path.
		{"commit-batch-only", each(func(fp *fastPaths) {
			fp.disableSMParallel = false
			fp.parallelSMs = 4
			fp.disableCommitBatch = false
		})},
		{"memsys-parallel-only", each(func(fp *fastPaths) {
			fp.disableSMParallel = false
			fp.parallelSMs = 4
			fp.disableMemsysParallel = false
		})},
		// Everything on together — including the adaptive fan-out
		// controller — with fan-out forced so the two-phase commit
		// composes with the other fast paths on any host.
		{"default-all-on", fastPaths{parallelSMs: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := fastPathGrid(t, tc.fp)
			for i := range naive {
				if got[i] != naive[i] {
					t.Errorf("run %d: result differs from the naive path", i)
				}
			}
		})
	}
}
