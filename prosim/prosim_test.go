package prosim_test

import (
	"testing"

	"repro/internal/core"
	"repro/prosim"
)

func TestSchedulerRegistry(t *testing.T) {
	for _, name := range append(prosim.SchedulerNames(), "PRO-nobar") {
		if _, err := prosim.Schedulers(name); err != nil {
			t.Errorf("Schedulers(%q): %v", name, err)
		}
	}
	if _, err := prosim.Schedulers("nope"); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if got := prosim.SchedulerNames(); len(got) != 4 || got[3] != "PRO" {
		t.Errorf("SchedulerNames = %v", got)
	}
}

func TestWorkloadLookups(t *testing.T) {
	if len(prosim.AllWorkloads()) != 25 {
		t.Fatal("AllWorkloads != 25")
	}
	if len(prosim.Apps()) != 15 {
		t.Fatal("Apps != 15")
	}
	w, err := prosim.WorkloadByKernel("cenergy")
	if err != nil || w.App != "CP" {
		t.Fatalf("WorkloadByKernel: %v %v", w, err)
	}
	if got := prosim.WorkloadsByApp("histogram"); len(got) != 4 {
		t.Fatalf("WorkloadsByApp(histogram) = %d", len(got))
	}
}

func TestRunWorkloadEndToEnd(t *testing.T) {
	w, err := prosim.WorkloadByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	w = w.Shrunk(14)
	base, err := prosim.RunWorkload(w, "LRR", prosim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pro, err := prosim.RunWorkload(w, "PRO", prosim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles <= 0 || pro.Cycles <= 0 {
		t.Fatal("zero cycles")
	}
	if base.ThreadInstrs != pro.ThreadInstrs {
		t.Fatal("schedulers disagreed on executed work")
	}
	if sp := pro.Speedup(base); sp < 0.5 || sp > 3 {
		t.Fatalf("implausible speedup %v", sp)
	}
}

func TestRunFactoryWithOptions(t *testing.T) {
	w, err := prosim.WorkloadByKernel("scalarProdGPU")
	if err != nil {
		t.Fatal(err)
	}
	w = w.Shrunk(10)
	r, err := prosim.RunFactory(prosim.GTX480(), w.Launch,
		prosim.PRO(core.WithThreshold(500), core.WithOrderTrace()), prosim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.OrderTrace) == 0 {
		t.Fatal("order trace not recorded")
	}
}

func TestHardwareCost(t *testing.T) {
	if got := prosim.HardwareCostBytes(prosim.GTX480()); got != 240 {
		t.Fatalf("HardwareCostBytes = %d, want the paper's 240", got)
	}
}

func TestRunAppAggregates(t *testing.T) {
	// MonteCarlo has two kernels; the aggregate must sum both. Shrink is
	// not available through RunApp, so pick the app with small grids.
	agg, err := prosim.RunApp("MonteCarlo", "LRR", prosim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Kernels != 2 {
		t.Fatalf("aggregated %d kernels, want 2", agg.Kernels)
	}
	if agg.Cycles <= 0 || agg.Stalls.Total() <= 0 {
		t.Fatal("empty aggregate")
	}
	if _, err := prosim.RunApp("NoSuchApp", "LRR", prosim.Options{}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRelatedWorkSchedulers(t *testing.T) {
	w, err := prosim.WorkloadByKernel("cenergy")
	if err != nil {
		t.Fatal(err)
	}
	w = w.Shrunk(14)
	ref, err := prosim.RunWorkload(w, "LRR", prosim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"CAWS-lite", "OWL-lite"} {
		r, err := prosim.RunWorkload(w, name, prosim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Scheduler != name {
			t.Fatalf("Scheduler = %q, want %q", r.Scheduler, name)
		}
		if r.ThreadInstrs != ref.ThreadInstrs {
			t.Fatalf("%s: work not conserved", name)
		}
	}
}

func TestRunRejectsBadScheduler(t *testing.T) {
	w, _ := prosim.WorkloadByKernel("cenergy")
	if _, err := prosim.Run(prosim.GTX480(), w.Launch, "XX", prosim.Options{}); err == nil {
		t.Fatal("bad scheduler accepted")
	}
}
