package prosim_test

import (
	"testing"

	"repro/prosim"
)

// TestGoldenCycleCounts pins exact cycle counts for three small runs per
// scheduler. The simulator is deterministic, so these are stable across
// runs and platforms; they exist to catch *unintentional* changes to the
// timing model. An intentional model change should update the table (and
// re-run cmd/report so EXPERIMENTS.md matches).
func TestGoldenCycleCounts(t *testing.T) {
	golden := []struct {
		kernel, sched string
		cycles        int64
		threadInstrs  int64
	}{
		{"aesEncrypt128", "TL", 4141, 599040},
		{"aesEncrypt128", "LRR", 3543, 599040},
		{"aesEncrypt128", "GTO", 3822, 599040},
		{"aesEncrypt128", "PRO", 3578, 599040},
		{"cenergy", "TL", 3153, 829440},
		{"cenergy", "LRR", 3152, 829440},
		{"cenergy", "GTO", 3078, 829440},
		{"cenergy", "PRO", 3060, 829440},
		{"scalarProdGPU", "TL", 35845, 575488},
		{"scalarProdGPU", "LRR", 35083, 575488},
		{"scalarProdGPU", "GTO", 40551, 575488},
		{"scalarProdGPU", "PRO", 39191, 575488},
	}
	for _, g := range golden {
		w, err := prosim.WorkloadByKernel(g.kernel)
		if err != nil {
			t.Fatal(err)
		}
		w = w.Shrunk(20)
		r, err := prosim.RunWorkload(w, g.sched, prosim.Options{})
		if err != nil {
			t.Fatalf("%s/%s: %v", g.kernel, g.sched, err)
		}
		if r.Cycles != g.cycles {
			t.Errorf("%s/%s: %d cycles, golden %d (timing model changed?)",
				g.kernel, g.sched, r.Cycles, g.cycles)
		}
		if r.ThreadInstrs != g.threadInstrs {
			t.Errorf("%s/%s: %d thread-instrs, golden %d (functional behaviour changed!)",
				g.kernel, g.sched, r.ThreadInstrs, g.threadInstrs)
		}
	}
}
