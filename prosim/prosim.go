// Package prosim is the public facade of the PRO warp-scheduling
// reproduction: one import gives access to the GPU configuration, the
// scheduler registry (LRR, GTO, TL, PRO and PRO ablations), the Table II
// workload suite and the simulation entry points.
//
// Quickstart:
//
//	w, _ := prosim.WorkloadByKernel("scalarProdGPU")
//	base, _ := prosim.RunWorkload(w, "LRR", prosim.Options{})
//	pro, _ := prosim.RunWorkload(w, "PRO", prosim.Options{})
//	fmt.Printf("PRO speedup over LRR: %.2fx\n", pro.Speedup(base))
package prosim

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/jobs"
	"repro/internal/resultcache"
	"repro/internal/schedreg"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Re-exported types so callers need only this package.
type (
	// Config is the simulated GPU hardware description (Table I).
	Config = config.Config
	// Launch describes one kernel launch.
	Launch = engine.Launch
	// Result is everything one simulated launch produces.
	Result = stats.KernelResult
	// Options tune one simulation run.
	Options = gpu.Options
	// Workload is one Table II benchmark kernel.
	Workload = workloads.Workload
	// Factory builds a scheduling policy for an SM.
	Factory = engine.Factory
	// Job is one simulation in a parallel batch (see RunJobs).
	Job = jobs.Job
	// JobEngine fans jobs across a worker pool with an optional result
	// cache.
	JobEngine = jobs.Engine
	// JobEvent reports one job completion to a progress callback.
	JobEvent = jobs.Event
	// ResultCache memoizes simulation results on disk.
	ResultCache = resultcache.Cache
	// JobRunner executes job batches: a local JobEngine or a
	// DaemonClient.
	JobRunner = jobs.Runner
	// DaemonClient submits batches to a running prosimd daemon.
	DaemonClient = daemon.Client
	// DaemonStats is the daemon's counter snapshot (GET /v1/stats).
	DaemonStats = daemon.Stats
)

// GTX480 returns the paper's Table I configuration.
func GTX480() *Config { return config.GTX480() }

// SchedulerNames lists the registered policies in the paper's comparison
// order.
func SchedulerNames() []string { return schedreg.Names() }

// Schedulers returns the factory for a named policy. Recognized names:
// LRR, GTO, TL, PRO, PRO-nobar (the barrier-handling ablation of
// Sec. IV), PRO-adaptive (the paper's future-work online profiler that
// toggles barrier handling per SM), PRO-norm (the Sec. III-A
// normalized-progress variant) and the related-work baselines CAWS-lite
// and OWL-lite.
func Schedulers(name string) (Factory, error) { return schedreg.New(name) }

// PRO returns a PRO factory with explicit options (threshold, ablations,
// order tracing).
func PRO(opts ...core.Option) Factory { return core.New(opts...) }

// Run simulates launch on cfg under the named scheduler.
func Run(cfg *Config, launch *Launch, scheduler string, opts Options) (*Result, error) {
	f, err := Schedulers(scheduler)
	if err != nil {
		return nil, err
	}
	return gpu.Run(cfg, launch, f, opts)
}

// RunFactory simulates launch under an explicit policy factory.
func RunFactory(cfg *Config, launch *Launch, f Factory, opts Options) (*Result, error) {
	return gpu.Run(cfg, launch, f, opts)
}

// RunWorkload simulates a Table II workload on the GTX480 configuration.
func RunWorkload(w *Workload, scheduler string, opts Options) (*Result, error) {
	return Run(GTX480(), w.Launch, scheduler, opts)
}

// AllWorkloads returns the 25 Table II kernels in paper order.
func AllWorkloads() []*Workload { return workloads.All() }

// Apps returns the 15 Table III application names in paper order.
func Apps() []string { return workloads.Apps() }

// WorkloadByKernel looks a workload up by its Table II kernel name.
func WorkloadByKernel(name string) (*Workload, error) { return workloads.ByKernel(name) }

// WorkloadsByApp returns the kernels of one Table III application.
func WorkloadsByApp(app string) []*Workload { return workloads.ByApp(app) }

// HardwareCostBytes reports PRO's extra per-SM storage (Sec. III-E).
func HardwareCostBytes(cfg *Config) int { return core.HardwareCostBytes(cfg) }

// AppResult aggregates an application's kernels (Table III granularity).
type AppResult = stats.AppResult

// RunApp simulates every kernel of a Table III application back to back
// under the named scheduler and returns the aggregate (cycles and stall
// counters summed over kernels, as the paper reports applications).
func RunApp(app, scheduler string, opts Options) (*AppResult, error) {
	ws := WorkloadsByApp(app)
	if len(ws) == 0 {
		return nil, fmt.Errorf("prosim: unknown application %q", app)
	}
	agg := &AppResult{App: app, Scheduler: scheduler}
	for _, w := range ws {
		r, err := RunWorkload(w, scheduler, opts)
		if err != nil {
			return nil, err
		}
		agg.Accumulate(r)
	}
	return agg, nil
}

// ---- Parallel execution & caching ----

// NewJobEngine builds a job engine with workers pool slots (<= 0 means
// one per CPU core) and, when cacheDir is non-empty, a content-addressed
// result cache in that directory. progress may be nil.
func NewJobEngine(workers int, cacheDir string, progress func(JobEvent)) (*JobEngine, error) {
	return jobs.New(workers, cacheDir, progress)
}

// OpenResultCache opens (creating if needed) a result cache directory at
// the current schema version.
func OpenResultCache(dir string) (*ResultCache, error) { return resultcache.Open(dir) }

// CacheGCStats reports what a result-cache GC pass found and removed.
type CacheGCStats = resultcache.GCStats

// GCResultCache evicts least-recently-used entries from the result
// cache at dir until it fits in the human-readable size budget
// (e.g. "256M", "2G"; see resultcache.ParseSize).
func GCResultCache(dir, size string) (CacheGCStats, error) {
	if dir == "" {
		return CacheGCStats{}, fmt.Errorf("prosim: cache GC needs a cache directory")
	}
	maxBytes, err := resultcache.ParseSize(size)
	if err != nil {
		return CacheGCStats{}, err
	}
	c, err := resultcache.Open(dir)
	if err != nil {
		return CacheGCStats{}, err
	}
	return c.GC(maxBytes)
}

// RunJobs executes a batch of simulation jobs through e (nil means a
// default engine: one worker per core, no cache) and returns one result
// per job, in job order regardless of completion order. The simulator is
// deterministic, so the results are identical to running the batch
// serially.
func RunJobs(ctx context.Context, e *JobEngine, js []Job) ([]*Result, error) {
	if e == nil {
		e = &JobEngine{}
	}
	return e.Run(ctx, js)
}

// ---- Simulation daemon ----

// DialDaemon connects to a prosimd daemon at addr — "host:port" for TCP
// or "unix:/path/to.sock" for a unix socket — verifying it responds
// before returning. The client implements JobRunner, so it drops into
// every API that takes one. Jobs submitted through it execute on the
// daemon (sharing its warm result cache, deduped against identical
// in-flight work from other clients); jobs with an anonymous Factory and
// no resolvable FactoryKey cannot cross the wire and fail per batch.
func DialDaemon(addr string) (*DaemonClient, error) { return daemon.Dial(addr) }

// SubmitBatch executes a batch of simulation jobs through any runner —
// a local JobEngine or a DaemonClient (nil means a default local
// engine) — returning one result per job in job order.
func SubmitBatch(ctx context.Context, r JobRunner, js []Job) ([]*Result, error) {
	if r == nil {
		r = &JobEngine{}
	}
	return r.Run(ctx, js)
}

// WorkloadJobs builds the standard evaluation batch — every workload
// under every named scheduler, in suite order — ready for RunJobs.
// maxTBs > 0 shrinks each grid first.
func WorkloadJobs(ws []*Workload, scheds []string, maxTBs int, opts Options) []Job {
	return jobs.Grid(ws, scheds, maxTBs, opts)
}
