// Package prosim is the public facade of the PRO warp-scheduling
// reproduction: one import gives access to the GPU configuration, the
// scheduler registry (LRR, GTO, TL, PRO and PRO ablations), the Table II
// workload suite and the simulation entry points.
//
// Quickstart:
//
//	w, _ := prosim.WorkloadByKernel("scalarProdGPU")
//	base, _ := prosim.RunWorkload(w, "LRR", prosim.Options{})
//	pro, _ := prosim.RunWorkload(w, "PRO", prosim.Options{})
//	fmt.Printf("PRO speedup over LRR: %.2fx\n", pro.Speedup(base))
package prosim

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Re-exported types so callers need only this package.
type (
	// Config is the simulated GPU hardware description (Table I).
	Config = config.Config
	// Launch describes one kernel launch.
	Launch = engine.Launch
	// Result is everything one simulated launch produces.
	Result = stats.KernelResult
	// Options tune one simulation run.
	Options = gpu.Options
	// Workload is one Table II benchmark kernel.
	Workload = workloads.Workload
	// Factory builds a scheduling policy for an SM.
	Factory = engine.Factory
)

// GTX480 returns the paper's Table I configuration.
func GTX480() *Config { return config.GTX480() }

// SchedulerNames lists the registered policies in the paper's comparison
// order.
func SchedulerNames() []string { return []string{"TL", "LRR", "GTO", "PRO"} }

// Schedulers returns the factory for a named policy. Recognized names:
// LRR, GTO, TL, PRO, PRO-nobar (the barrier-handling ablation of
// Sec. IV), PRO-adaptive (the paper's future-work online profiler that
// toggles barrier handling per SM) and PRO-norm (the Sec. III-A
// normalized-progress variant).
func Schedulers(name string) (Factory, error) {
	switch name {
	case "LRR":
		return sched.NewLRR, nil
	case "GTO":
		return sched.NewGTO, nil
	case "TL":
		return sched.NewTL, nil
	case "PRO":
		return core.New(), nil
	case "PRO-nobar":
		return core.New(core.WithoutBarrierHandling()), nil
	case "PRO-adaptive":
		return core.New(core.WithAdaptiveBarrierHandling(0, 0)), nil
	case "PRO-norm":
		return core.New(core.WithNormalizedProgress()), nil
	case "CAWS-lite":
		return sched.NewCAWSLite, nil
	case "OWL-lite":
		return sched.NewOWLLite, nil
	default:
		return nil, fmt.Errorf("prosim: unknown scheduler %q", name)
	}
}

// PRO returns a PRO factory with explicit options (threshold, ablations,
// order tracing).
func PRO(opts ...core.Option) Factory { return core.New(opts...) }

// Run simulates launch on cfg under the named scheduler.
func Run(cfg *Config, launch *Launch, scheduler string, opts Options) (*Result, error) {
	f, err := Schedulers(scheduler)
	if err != nil {
		return nil, err
	}
	return gpu.Run(cfg, launch, f, opts)
}

// RunFactory simulates launch under an explicit policy factory.
func RunFactory(cfg *Config, launch *Launch, f Factory, opts Options) (*Result, error) {
	return gpu.Run(cfg, launch, f, opts)
}

// RunWorkload simulates a Table II workload on the GTX480 configuration.
func RunWorkload(w *Workload, scheduler string, opts Options) (*Result, error) {
	return Run(GTX480(), w.Launch, scheduler, opts)
}

// AllWorkloads returns the 25 Table II kernels in paper order.
func AllWorkloads() []*Workload { return workloads.All() }

// Apps returns the 15 Table III application names in paper order.
func Apps() []string { return workloads.Apps() }

// WorkloadByKernel looks a workload up by its Table II kernel name.
func WorkloadByKernel(name string) (*Workload, error) { return workloads.ByKernel(name) }

// WorkloadsByApp returns the kernels of one Table III application.
func WorkloadsByApp(app string) []*Workload { return workloads.ByApp(app) }

// HardwareCostBytes reports PRO's extra per-SM storage (Sec. III-E).
func HardwareCostBytes(cfg *Config) int { return core.HardwareCostBytes(cfg) }

// AppResult aggregates an application's kernels (Table III granularity).
type AppResult = stats.AppResult

// RunApp simulates every kernel of a Table III application back to back
// under the named scheduler and returns the aggregate (cycles and stall
// counters summed over kernels, as the paper reports applications).
func RunApp(app, scheduler string, opts Options) (*AppResult, error) {
	ws := WorkloadsByApp(app)
	if len(ws) == 0 {
		return nil, fmt.Errorf("prosim: unknown application %q", app)
	}
	agg := &AppResult{App: app, Scheduler: scheduler}
	for _, w := range ws {
		r, err := RunWorkload(w, scheduler, opts)
		if err != nil {
			return nil, err
		}
		agg.Accumulate(r)
	}
	return agg, nil
}
