package isa

// This file implements a human-writable text format for kernels, so
// workloads can be modeled without writing Go. The format mirrors the
// structured builder one-to-one:
//
//	kernel tiledMatMul
//	# stage tiles, multiply, write back
//	ld.global r1 pattern=coalesced space=0 itervaries
//	st.shared r1 pattern=coalesced
//	bar
//	loop min=12 max=12 imb=none {
//	    ld.shared r3 pattern=coalesced itervaries
//	    ffma r5 r3 r4 r5
//	}
//	if lane<16 {
//	    iadd r2 r2 r1
//	} else {
//	    imul r2 r2 r1
//	}
//	if rand=0.25 {
//	    sfu r6 r5
//	}
//	st.global r5 pattern=coalesced space=1
//	exit
//
// Parse builds a validated Program; Format reconstructs the structured
// text from a Program (loops and if/else regions are recovered from
// branch targets), and Parse(Format(p)) reproduces p exactly — a
// property the tests rely on.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Parse reads the text format and returns a validated Program.
func Parse(text string) (*Program, error) {
	var b *Builder
	type openRegion struct{ isLoop bool }
	var regions []openRegion

	lines := strings.Split(text, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("isa: line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		if b == nil {
			if fields[0] != "kernel" || len(fields) != 2 {
				return nil, errf("file must start with 'kernel <name>'")
			}
			b = NewBuilder(fields[1])
			continue
		}
		switch fields[0] {
		case "kernel":
			return nil, errf("duplicate kernel directive")
		case "nop":
			b.Nop()
		case "iadd", "imul", "fadd", "fmul":
			rs, err := regs(fields[1:], 3)
			if err != nil {
				return nil, errf("%v", err)
			}
			switch fields[0] {
			case "iadd":
				b.IAdd(rs[0], rs[1], rs[2])
			case "imul":
				b.IMul(rs[0], rs[1], rs[2])
			case "fadd":
				b.FAdd(rs[0], rs[1], rs[2])
			case "fmul":
				b.FMul(rs[0], rs[1], rs[2])
			}
		case "ffma":
			rs, err := regs(fields[1:], 4)
			if err != nil {
				return nil, errf("%v", err)
			}
			b.FFMA(rs[0], rs[1], rs[2], rs[3])
		case "sfu":
			rs, err := regs(fields[1:], 2)
			if err != nil {
				return nil, errf("%v", err)
			}
			b.SFU(rs[0], rs[1])
		case "ld.const":
			rs, err := regs(fields[1:], 1)
			if err != nil {
				return nil, errf("%v", err)
			}
			b.LdConst(rs[0])
		case "ld.global", "st.global", "ld.shared", "st.shared", "atom.global":
			nregs := 1
			if fields[0] == "atom.global" {
				nregs = 2
			}
			if len(fields) < 1+nregs {
				return nil, errf("%s needs %d register(s)", fields[0], nregs)
			}
			rs, err := regs(fields[1:1+nregs], nregs)
			if err != nil {
				return nil, errf("%v", err)
			}
			spec, err := parseMemSpec(fields[1+nregs:])
			if err != nil {
				return nil, errf("%v", err)
			}
			switch fields[0] {
			case "ld.global":
				b.LdGlobal(rs[0], spec)
			case "st.global":
				b.StGlobal(rs[0], spec)
			case "ld.shared":
				b.LdShared(rs[0], spec)
			case "st.shared":
				b.StShared(rs[0], spec)
			case "atom.global":
				b.AtomGlobal(rs[0], rs[1], spec)
			}
		case "bar":
			b.Bar()
		case "loop":
			if fields[len(fields)-1] != "{" {
				return nil, errf("loop must end with '{'")
			}
			spec, err := parseLoopSpec(fields[1 : len(fields)-1])
			if err != nil {
				return nil, errf("%v", err)
			}
			b.Loop(spec)
			regions = append(regions, openRegion{isLoop: true})
		case "if":
			if len(fields) != 3 || fields[2] != "{" {
				return nil, errf("if syntax: 'if <cond> {'")
			}
			cond := fields[1]
			switch {
			case strings.HasPrefix(cond, "lane<"):
				n, err := strconv.Atoi(cond[len("lane<"):])
				if err != nil {
					return nil, errf("bad lane threshold %q", cond)
				}
				b.IfLaneLess(n)
			case strings.HasPrefix(cond, "rand="):
				p, err := strconv.ParseFloat(cond[len("rand="):], 64)
				if err != nil {
					return nil, errf("bad probability %q", cond)
				}
				b.IfRandom(p)
			case strings.HasPrefix(cond, "wrand="):
				p, err := strconv.ParseFloat(cond[len("wrand="):], 64)
				if err != nil {
					return nil, errf("bad probability %q", cond)
				}
				b.IfWarpRandom(p)
			default:
				return nil, errf("unknown condition %q", cond)
			}
			regions = append(regions, openRegion{})
		case "}":
			if len(regions) == 0 {
				return nil, errf("unmatched '}'")
			}
			if len(fields) == 1 {
				r := regions[len(regions)-1]
				regions = regions[:len(regions)-1]
				if r.isLoop {
					b.EndLoop()
				} else {
					b.EndIf()
				}
				continue
			}
			if len(fields) == 3 && fields[1] == "else" && fields[2] == "{" {
				if regions[len(regions)-1].isLoop {
					return nil, errf("else on a loop")
				}
				b.Else()
				continue
			}
			return nil, errf("bad region close %q", line)
		case "exit":
			b.Exit()
		default:
			return nil, errf("unknown directive %q", fields[0])
		}
	}
	if b == nil {
		return nil, fmt.Errorf("isa: empty program text")
	}
	if len(regions) != 0 {
		return nil, fmt.Errorf("isa: %d unclosed regions at end of file", len(regions))
	}
	return b.Build()
}

func regs(fields []string, n int) ([]Reg, error) {
	if len(fields) < n {
		return nil, fmt.Errorf("expected %d registers", n)
	}
	out := make([]Reg, n)
	for i := 0; i < n; i++ {
		f := fields[i]
		if len(f) < 2 || f[0] != 'r' {
			return nil, fmt.Errorf("bad register %q", f)
		}
		v, err := strconv.Atoi(f[1:])
		if err != nil || v < 0 || v > int(MaxReg) {
			return nil, fmt.Errorf("bad register %q", f)
		}
		out[i] = Reg(v)
	}
	return out, nil
}

func parseMemSpec(attrs []string) (MemSpec, error) {
	var m MemSpec
	seenPattern := false
	for _, a := range attrs {
		switch {
		case strings.HasPrefix(a, "pattern="):
			seenPattern = true
			switch a[len("pattern="):] {
			case "coalesced":
				m.Pattern = PatCoalesced
			case "strided":
				m.Pattern = PatStrided
			case "random":
				m.Pattern = PatRandom
			case "tblocal":
				m.Pattern = PatTBLocal
			case "broadcast":
				m.Pattern = PatBroadcast
			default:
				return m, fmt.Errorf("unknown pattern %q", a)
			}
		case strings.HasPrefix(a, "stride="):
			v, err := strconv.Atoi(a[len("stride="):])
			if err != nil {
				return m, fmt.Errorf("bad stride %q", a)
			}
			m.Stride = v
		case strings.HasPrefix(a, "region="):
			v, err := strconv.ParseUint(a[len("region="):], 10, 64)
			if err != nil {
				return m, fmt.Errorf("bad region %q", a)
			}
			m.Region = v
		case strings.HasPrefix(a, "space="):
			v, err := strconv.Atoi(a[len("space="):])
			if err != nil || v < 0 || v > 255 {
				return m, fmt.Errorf("bad space %q", a)
			}
			m.Space = uint8(v)
		case a == "itervaries":
			m.IterVaries = true
		default:
			return m, fmt.Errorf("unknown memory attribute %q", a)
		}
	}
	if !seenPattern {
		return m, fmt.Errorf("memory instruction needs pattern=")
	}
	return m, nil
}

func parseLoopSpec(attrs []string) (LoopSpec, error) {
	spec := LoopSpec{Min: -1, Max: -1}
	for _, a := range attrs {
		switch {
		case strings.HasPrefix(a, "min="):
			v, err := strconv.Atoi(a[len("min="):])
			if err != nil {
				return spec, fmt.Errorf("bad min %q", a)
			}
			spec.Min = v
		case strings.HasPrefix(a, "max="):
			v, err := strconv.Atoi(a[len("max="):])
			if err != nil {
				return spec, fmt.Errorf("bad max %q", a)
			}
			spec.Max = v
		case strings.HasPrefix(a, "imb="):
			switch a[len("imb="):] {
			case "none":
				spec.Imb = ImbNone
			case "tb":
				spec.Imb = ImbPerTB
			case "warp":
				spec.Imb = ImbPerWarp
			case "thread":
				spec.Imb = ImbPerThread
			default:
				return spec, fmt.Errorf("unknown imbalance %q", a)
			}
		default:
			return spec, fmt.Errorf("unknown loop attribute %q", a)
		}
	}
	if spec.Min < 0 || spec.Max < 0 {
		return spec, fmt.Errorf("loop needs min= and max=")
	}
	return spec, nil
}

// Format renders a Program in the text format, reconstructing loops and
// if/else regions from branch targets. It assumes builder-shaped
// programs (which Validate enforces).
func Format(p *Program) string {
	type open struct {
		text   string
		end    int // pc at which the region closes
		isLoop bool
	}
	// Region opens keyed by start pc; loops may share a start (nested
	// loops with empty prefix), outer (larger end) first.
	opens := map[int][]open{}
	skips := map[int]bool{}   // else-skip branch positions
	elses := map[int]bool{}   // positions where "} else {" replaces the skip
	loopEnd := map[int]bool{} // loop back-branch positions

	for pc, in := range p.Code {
		if in.Op != OpBra {
			continue
		}
		br := in.Branch
		if br.Kind == BrLoop {
			spec := p.Loops[br.LoopID]
			opens[br.Target] = append(opens[br.Target], open{
				text:   fmt.Sprintf("loop min=%d max=%d imb=%s {", spec.Min, spec.Max, imbName(spec.Imb)),
				end:    pc,
				isLoop: true,
			})
			loopEnd[pc] = true
			continue
		}
		if skips[pc] {
			continue // already classified as an else-skip
		}
		var cond string
		switch br.Kind {
		case BrLaneLess:
			cond = fmt.Sprintf("lane<%d", br.N)
		case BrRandom:
			cond = fmt.Sprintf("rand=%s", trimFloat(br.P))
		case BrWarpRandom:
			cond = fmt.Sprintf("wrand=%s", trimFloat(br.P))
		}
		// Else detection: instruction just before Target is an
		// unconditional skip (BrWarpRandom P=0) jumping to Reconv.
		if t := br.Target - 1; t > pc {
			if sk := p.Code[t]; sk.Op == OpBra && sk.Branch.Kind == BrWarpRandom &&
				sk.Branch.P == 0 && sk.Branch.Target == br.Reconv && br.Target != br.Reconv {
				skips[t] = true
				elses[t] = true
			}
		}
		opens[pc] = append(opens[pc], open{text: fmt.Sprintf("if %s {", cond), end: br.Reconv})
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %s\n", p.Name)
	indent := 0
	emit := func(s string) {
		sb.WriteString(strings.Repeat("    ", indent))
		sb.WriteString(s)
		sb.WriteByte('\n')
	}
	// Track open loop regions to close them at their back-branch.
	type region struct {
		isLoop bool
		end    int
	}
	var stack []region

	for pc, in := range p.Code {
		// Close if-regions that reconverge here (innermost first).
		for len(stack) > 0 && !stack[len(stack)-1].isLoop && stack[len(stack)-1].end == pc {
			stack = stack[:len(stack)-1]
			indent--
			emit("}")
		}
		// Opens at this pc, outermost first: loops enclose ifs at the
		// same position (a loop starting at pc contains the instruction
		// at pc, while an if at pc IS that instruction), then larger
		// ends first.
		if os := opens[pc]; len(os) > 0 {
			sort.SliceStable(os, func(i, j int) bool {
				if os[i].isLoop != os[j].isLoop {
					return os[i].isLoop
				}
				return os[i].end > os[j].end
			})
			for _, o := range os {
				emit(o.text)
				indent++
				stack = append(stack, region{isLoop: o.isLoop, end: o.end})
			}
		}
		switch {
		case elses[pc]:
			indent--
			emit("} else {")
			indent++
		case loopEnd[pc]:
			// The loop's back-branch: close the region.
			for len(stack) > 0 && !stack[len(stack)-1].isLoop && stack[len(stack)-1].end <= pc {
				stack = stack[:len(stack)-1]
				indent--
				emit("}")
			}
			stack = stack[:len(stack)-1]
			indent--
			emit("}")
		case in.Op == OpBra:
			// The if-branch itself was emitted as a region open.
		default:
			emit(formatInstr(&in))
		}
	}
	return sb.String()
}

func formatInstr(in *Instr) string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpIAdd, OpIMul, OpFAdd, OpFMul:
		return fmt.Sprintf("%s r%d r%d r%d", in.Op, in.Dst, in.Srcs[0], in.Srcs[1])
	case OpFFMA:
		return fmt.Sprintf("ffma r%d r%d r%d r%d", in.Dst, in.Srcs[0], in.Srcs[1], in.Srcs[2])
	case OpSFU:
		return fmt.Sprintf("sfu r%d r%d", in.Dst, in.Srcs[0])
	case OpLdConst:
		return fmt.Sprintf("ld.const r%d", in.Dst)
	case OpLdGlobal:
		return "ld.global r" + strconv.Itoa(int(in.Dst)) + formatMem(in.Mem)
	case OpLdShared:
		return "ld.shared r" + strconv.Itoa(int(in.Dst)) + formatMem(in.Mem)
	case OpStGlobal:
		return "st.global r" + strconv.Itoa(int(in.Srcs[0])) + formatMem(in.Mem)
	case OpStShared:
		return "st.shared r" + strconv.Itoa(int(in.Srcs[0])) + formatMem(in.Mem)
	case OpAtomGlobal:
		return fmt.Sprintf("atom.global r%d r%d%s", in.Dst, in.Srcs[0], formatMem(in.Mem))
	case OpBar:
		return "bar"
	case OpExit:
		return "exit"
	}
	return fmt.Sprintf("# unknown op %d", in.Op)
}

func formatMem(m *MemSpec) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, " pattern=%s", m.Pattern)
	if m.Stride != 0 {
		fmt.Fprintf(&sb, " stride=%d", m.Stride)
	}
	if m.Region != 0 {
		fmt.Fprintf(&sb, " region=%d", m.Region)
	}
	if m.Space != 0 {
		fmt.Fprintf(&sb, " space=%d", m.Space)
	}
	if m.IterVaries {
		sb.WriteString(" itervaries")
	}
	return sb.String()
}

func imbName(im Imbalance) string {
	switch im {
	case ImbPerTB:
		return "tb"
	case ImbPerWarp:
		return "warp"
	case ImbPerThread:
		return "thread"
	}
	return "none"
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
