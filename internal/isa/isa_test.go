package isa

import (
	"strings"
	"testing"
)

func TestOpUnits(t *testing.T) {
	cases := []struct {
		op   Op
		unit Unit
	}{
		{OpIAdd, UnitSP}, {OpFFMA, UnitSP}, {OpNop, UnitSP},
		{OpSFU, UnitSFU},
		{OpLdGlobal, UnitMem}, {OpStGlobal, UnitMem}, {OpAtomGlobal, UnitMem},
		{OpLdShared, UnitMem}, {OpStShared, UnitMem}, {OpLdConst, UnitMem},
		{OpBra, UnitSP}, {OpBar, UnitSP}, {OpExit, UnitSP},
	}
	for _, c := range cases {
		if c.op.Unit() != c.unit {
			t.Errorf("%s.Unit() = %s, want %s", c.op, c.op.Unit(), c.unit)
		}
	}
	if !OpLdGlobal.IsGlobalMem() || OpLdShared.IsGlobalMem() {
		t.Error("IsGlobalMem misclassifies")
	}
	if !OpStShared.IsSharedMem() || OpStGlobal.IsSharedMem() {
		t.Error("IsSharedMem misclassifies")
	}
	if !OpBar.IsControl() || OpIAdd.IsControl() {
		t.Error("IsControl misclassifies")
	}
}

func TestBuilderStraightLine(t *testing.T) {
	b := NewBuilder("straight")
	b.LdGlobal(1, MemSpec{Pattern: PatCoalesced})
	b.FFMA(2, 1, 1, 1)
	b.StGlobal(2, MemSpec{Pattern: PatCoalesced})
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d, want 4", p.Len())
	}
	mix := p.Mix()
	if mix.GlobalMem != 2 || mix.SP != 1 {
		t.Fatalf("mix = %+v", mix)
	}
}

func TestBuilderLoopShape(t *testing.T) {
	b := NewBuilder("loop")
	b.Loop(LoopSpec{Min: 3, Max: 3})
	b.IAdd(1, 1, 1)
	b.EndLoop()
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// code: 0 iadd, 1 bra, 2 exit
	br := p.At(1).Branch
	if br == nil || br.Kind != BrLoop || br.Target != 0 || br.Reconv != 2 {
		t.Fatalf("loop branch = %+v", br)
	}
}

func TestBuilderIfElseShape(t *testing.T) {
	b := NewBuilder("ifelse")
	b.IfLaneLess(16)
	b.IAdd(1, 1, 1) // then (pc 1)
	b.Else()
	b.IMul(2, 2, 2) // else (pc 3)
	b.EndIf()
	b.FAdd(3, 1, 2) // join (pc 4)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ifBr := p.At(0).Branch
	if ifBr.Target != 3 { // else block start (after skip at pc 2)
		t.Fatalf("if target = %d, want 3", ifBr.Target)
	}
	if ifBr.Reconv != 4 {
		t.Fatalf("if reconv = %d, want 4", ifBr.Reconv)
	}
	skip := p.At(2).Branch
	if skip == nil || skip.Target != 4 || skip.Reconv != 4 || skip.P != 0 {
		t.Fatalf("skip branch = %+v", skip)
	}
}

func TestBuilderIfWithoutElse(t *testing.T) {
	b := NewBuilder("if")
	b.IfRandom(0.5)
	b.IAdd(1, 1, 1)
	b.EndIf()
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	br := p.At(0).Branch
	if br.Target != 2 || br.Reconv != 2 {
		t.Fatalf("if branch = %+v", br)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
		frag  string
	}{
		{"unclosed loop", func(b *Builder) { b.Loop(LoopSpec{Min: 1, Max: 1}); b.IAdd(1, 1, 1) }, "unclosed"},
		{"stray endloop", func(b *Builder) { b.EndLoop(); b.Exit() }, "EndLoop"},
		{"stray else", func(b *Builder) { b.Else(); b.Exit() }, "Else"},
		{"stray endif", func(b *Builder) { b.EndIf(); b.Exit() }, "EndIf"},
		{"exit in region", func(b *Builder) { b.IfLaneLess(4); b.Exit() }, "Exit inside"},
		{"no exit", func(b *Builder) { b.IAdd(1, 1, 1) }, "end with Exit"},
		{"zero-trip loop", func(b *Builder) { b.Loop(LoopSpec{Min: 0, Max: 2}); b.IAdd(1, 1, 1); b.EndLoop(); b.Exit() }, "invalid loop"},
		{"if with brloop", func(b *Builder) { b.If(BrLoop, 0, 0); b.EndIf(); b.Exit() }, "BrLoop"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder("bad")
			c.build(b)
			_, err := b.Build()
			if err == nil {
				t.Fatal("Build accepted malformed program")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q lacks %q", err, c.frag)
			}
		})
	}
}

func TestValidateBarrierInDivergentRegion(t *testing.T) {
	// Hand-build: barrier between a lane branch and its reconvergence.
	p := &Program{Name: "bad", Code: []Instr{
		{Op: OpBra, Branch: &BranchSpec{Kind: BrLaneLess, N: 8, Target: 3, Reconv: 3}},
		{Op: OpBar},
		{Op: OpIAdd, Dst: 1},
		{Op: OpExit},
	}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "divergent") {
		t.Fatalf("Validate = %v, want divergent-region error", err)
	}
}

func TestValidateBarrierInImbalancedLoop(t *testing.T) {
	p := &Program{
		Name: "bad",
		Code: []Instr{
			{Op: OpBar},
			{Op: OpBra, Branch: &BranchSpec{Kind: BrLoop, LoopID: 0, Target: 0, Reconv: 2}},
			{Op: OpExit},
		},
		Loops: []LoopSpec{{Min: 1, Max: 4, Imb: ImbPerWarp}},
	}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "imbalanced loop") {
		t.Fatalf("Validate = %v, want imbalanced-loop error", err)
	}
}

func TestValidateBarrierInUniformLoopOK(t *testing.T) {
	p := &Program{
		Name: "ok",
		Code: []Instr{
			{Op: OpBar},
			{Op: OpBra, Branch: &BranchSpec{Kind: BrLoop, LoopID: 0, Target: 0, Reconv: 2}},
			{Op: OpExit},
		},
		Loops: []LoopSpec{{Min: 4, Max: 4}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate rejected barrier in uniform loop: %v", err)
	}
}

func TestValidateRejectsStructuralErrors(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
	}{
		{"empty", &Program{Name: "x"}},
		{"no exit", &Program{Name: "x", Code: []Instr{{Op: OpIAdd}}}},
		{"two exits", &Program{Name: "x", Code: []Instr{{Op: OpExit}, {Op: OpExit}}}},
		{"mem without spec", &Program{Name: "x", Code: []Instr{{Op: OpLdGlobal, Dst: 1}, {Op: OpExit}}}},
		{"bra without spec", &Program{Name: "x", Code: []Instr{{Op: OpBra}, {Op: OpExit}}}},
		{"target oob", &Program{Name: "x", Code: []Instr{
			{Op: OpBra, Branch: &BranchSpec{Kind: BrLaneLess, Target: 9, Reconv: 1}}, {Op: OpExit}}}},
		{"forward branch backward", &Program{Name: "x", Code: []Instr{
			{Op: OpIAdd},
			{Op: OpBra, Branch: &BranchSpec{Kind: BrLaneLess, Target: 0, Reconv: 2}},
			{Op: OpExit}}}},
		{"bad probability", &Program{Name: "x", Code: []Instr{
			{Op: OpBra, Branch: &BranchSpec{Kind: BrRandom, P: 1.5, Target: 1, Reconv: 1}},
			{Op: OpExit}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.prog.Validate(); err == nil {
				t.Fatal("Validate accepted malformed program")
			}
		})
	}
}

func TestDisassemblyRoundtripMentionsEverything(t *testing.T) {
	b := NewBuilder("disasm")
	b.LdGlobal(1, MemSpec{Pattern: PatRandom, Region: 4096, Space: 2})
	b.Loop(LoopSpec{Min: 2, Max: 2})
	b.FFMA(3, 1, 1, 1)
	b.EndLoop()
	b.Exit()
	p := b.MustBuild()
	s := p.String()
	for _, frag := range []string{"disasm", "ld.global", "random", "ffma", "bra", "exit", ".loop 0"} {
		if !strings.Contains(s, frag) {
			t.Errorf("disassembly lacks %q:\n%s", frag, s)
		}
	}
}

func TestNestedLoops(t *testing.T) {
	b := NewBuilder("nested")
	b.Loop(LoopSpec{Min: 2, Max: 2})
	b.Loop(LoopSpec{Min: 3, Max: 3})
	b.IAdd(1, 1, 1)
	b.EndLoop()
	b.EndLoop()
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Loops) != 2 {
		t.Fatalf("loop table has %d entries, want 2", len(p.Loops))
	}
	// Inner back-branch at pc 1 targets 0; outer at pc 2 targets 0.
	if p.At(1).Branch.LoopID != 1 || p.At(2).Branch.LoopID != 0 {
		t.Fatalf("loop ids: inner=%d outer=%d", p.At(1).Branch.LoopID, p.At(2).Branch.LoopID)
	}
}
