package isa

import (
	"math/bits"
	"testing"
	"testing/quick"
)

const fullMask = ^uint32(0)

func TestTripsRespectBoundsAndImbalanceScope(t *testing.T) {
	for _, imb := range []Imbalance{ImbNone, ImbPerTB, ImbPerWarp, ImbPerThread} {
		p := &Program{Name: "x", Loops: []LoopSpec{{Min: 3, Max: 9, Imb: imb}}}
		for tb := 0; tb < 4; tb++ {
			for w := 0; w < 4; w++ {
				for lane := 0; lane < 32; lane++ {
					tr := p.Trips(0, 7, tb, w, lane)
					if tr < 3 || tr > 9 {
						t.Fatalf("imb=%s trips=%d out of [3,9]", imb, tr)
					}
				}
			}
		}
	}
}

func TestTripsImbalanceGranularity(t *testing.T) {
	// ImbNone: identical everywhere. ImbPerTB: constant within a TB.
	// ImbPerWarp: constant within a warp. ImbPerThread: varies by lane.
	mk := func(imb Imbalance) *Program {
		return &Program{Name: "x", Loops: []LoopSpec{{Min: 1, Max: 64, Imb: imb}}}
	}
	pNone := mk(ImbNone)
	ref := pNone.Trips(0, 7, 0, 0, 0)
	for tb := 0; tb < 3; tb++ {
		for w := 0; w < 3; w++ {
			if pNone.Trips(0, 7, tb, w, 5) != ref {
				t.Fatal("ImbNone varied across threads")
			}
		}
	}
	pWarp := mk(ImbPerWarp)
	for lane := 1; lane < 32; lane++ {
		if pWarp.Trips(0, 7, 2, 3, lane) != pWarp.Trips(0, 7, 2, 3, 0) {
			t.Fatal("ImbPerWarp varied within a warp")
		}
	}
	varies := false
	for w := 1; w < 8; w++ {
		if pWarp.Trips(0, 7, 2, w, 0) != pWarp.Trips(0, 7, 2, 0, 0) {
			varies = true
		}
	}
	if !varies {
		t.Fatal("ImbPerWarp constant across warps (64-value range: collision across all 8 warps is implausible)")
	}
	pThr := mk(ImbPerThread)
	varies = false
	for lane := 1; lane < 32; lane++ {
		if pThr.Trips(0, 7, 0, 0, lane) != pThr.Trips(0, 7, 0, 0, 0) {
			varies = true
		}
	}
	if !varies {
		t.Fatal("ImbPerThread constant within a warp")
	}
}

func TestTripsFixedWhenMinEqualsMax(t *testing.T) {
	p := &Program{Name: "x", Loops: []LoopSpec{{Min: 5, Max: 5, Imb: ImbPerThread}}}
	if p.Trips(0, 123, 9, 9, 9) != 5 {
		t.Fatal("fixed trip count not honored")
	}
}

func TestPredMaskLaneLess(t *testing.T) {
	br := &BranchSpec{Kind: BrLaneLess, N: 8}
	m := PredMask(br, 1, 0, 0, 0, 0, fullMask)
	if m != 0xff {
		t.Fatalf("lane<8 mask = %#x, want 0xff", m)
	}
	// Respects the active mask.
	m = PredMask(br, 1, 0, 0, 0, 0, 0xf0f0)
	if m != 0x00f0 {
		t.Fatalf("masked lane<8 = %#x, want 0x00f0", m)
	}
	br32 := &BranchSpec{Kind: BrLaneLess, N: 32}
	if PredMask(br32, 1, 0, 0, 0, 0, fullMask) != fullMask {
		t.Fatal("lane<32 must cover all lanes")
	}
}

func TestPredMaskRandomProbabilities(t *testing.T) {
	br := &BranchSpec{Kind: BrRandom, P: 0.5}
	total, set := 0, 0
	for iter := int64(0); iter < 200; iter++ {
		m := PredMask(br, 42, 0, 0, 3, iter, fullMask)
		set += bits.OnesCount32(m)
		total += 32
	}
	frac := float64(set) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("BrRandom(0.5) set fraction %.3f, want ~0.5", frac)
	}
	if PredMask(&BranchSpec{Kind: BrRandom, P: 0}, 42, 0, 0, 3, 0, fullMask) != 0 {
		t.Fatal("P=0 set lanes")
	}
	if PredMask(&BranchSpec{Kind: BrRandom, P: 1}, 42, 0, 0, 3, 0, fullMask) != fullMask {
		t.Fatal("P=1 missed lanes")
	}
}

func TestPredMaskWarpRandomUniform(t *testing.T) {
	br := &BranchSpec{Kind: BrWarpRandom, P: 0.5}
	for iter := int64(0); iter < 100; iter++ {
		m := PredMask(br, 42, 1, 2, 3, iter, fullMask)
		if m != 0 && m != fullMask {
			t.Fatalf("warp-uniform predicate split the warp: %#x", m)
		}
	}
}

func TestPredMaskDeterministic(t *testing.T) {
	f := func(seed uint64, pc uint8, iter uint8) bool {
		br := &BranchSpec{Kind: BrRandom, P: 0.3}
		a := PredMask(br, seed, 1, 1, int(pc), int64(iter), fullMask)
		b := PredMask(br, seed, 1, 1, int(pc), int64(iter), fullMask)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineAddrsCoalescedIsOneLine(t *testing.T) {
	m := &MemSpec{Pattern: PatCoalesced}
	lines := LineAddrs(nil, m, 1, 0, 0, 0, 0, fullMask, 256, 128)
	if len(lines) != 1 {
		t.Fatalf("coalesced warp touched %d lines, want 1", len(lines))
	}
}

func TestLineAddrsBroadcastIsOneLine(t *testing.T) {
	m := &MemSpec{Pattern: PatBroadcast}
	if got := LineAddrs(nil, m, 1, 3, 2, 0, 5, fullMask, 256, 128); len(got) != 1 {
		t.Fatalf("broadcast touched %d lines", len(got))
	}
}

func TestLineAddrsStridedGrowsWithStride(t *testing.T) {
	small := LineAddrs(nil, &MemSpec{Pattern: PatStrided, Stride: 8}, 1, 0, 0, 0, 0, fullMask, 256, 128)
	big := LineAddrs(nil, &MemSpec{Pattern: PatStrided, Stride: 256}, 1, 0, 0, 0, 0, fullMask, 256, 128)
	if len(small) >= len(big) {
		t.Fatalf("stride 8 → %d lines, stride 256 → %d; expected growth", len(small), len(big))
	}
	if len(big) != 32 {
		t.Fatalf("stride 256 should give one line per lane, got %d", len(big))
	}
}

func TestLineAddrsRandomWithinRegionAndSpace(t *testing.T) {
	m := &MemSpec{Pattern: PatRandom, Region: 1 << 20, Space: 3}
	lines := LineAddrs(nil, m, 9, 5, 1, 7, 11, fullMask, 256, 128)
	base := uint64(4) << 40
	for _, ln := range lines {
		if ln < base || ln >= base+(1<<20) {
			t.Fatalf("line %#x outside space-3 region", ln)
		}
		if ln%128 != 0 {
			t.Fatalf("line %#x not line-aligned", ln)
		}
	}
}

func TestLineAddrsPropertyBounds(t *testing.T) {
	// Never more lines than active lanes; all distinct; all aligned.
	f := func(pat uint8, mask uint32, iter uint8) bool {
		if mask == 0 {
			mask = 1
		}
		m := &MemSpec{
			Pattern:    AccessPattern(pat % 5),
			Stride:     64,
			Region:     1 << 16,
			IterVaries: iter%2 == 0,
		}
		lines := LineAddrs(nil, m, 3, 1, 1, 2, int64(iter), mask, 256, 128)
		if len(lines) == 0 || len(lines) > bits.OnesCount32(mask) {
			return false
		}
		seen := map[uint64]bool{}
		for _, ln := range lines {
			if ln%128 != 0 || seen[ln] {
				return false
			}
			seen[ln] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLineAddrsIterVariesChangesAddresses(t *testing.T) {
	m := &MemSpec{Pattern: PatCoalesced, IterVaries: true}
	a := LineAddrs(nil, m, 1, 0, 0, 0, 0, fullMask, 256, 128)
	b := LineAddrs(nil, m, 1, 0, 0, 0, 1, fullMask, 256, 128)
	if a[0] == b[0] {
		t.Fatal("IterVaries did not advance addresses")
	}
	fixed := &MemSpec{Pattern: PatCoalesced}
	c := LineAddrs(nil, fixed, 1, 0, 0, 0, 0, fullMask, 256, 128)
	d := LineAddrs(nil, fixed, 1, 0, 0, 0, 1, fullMask, 256, 128)
	if c[0] != d[0] {
		t.Fatal("non-IterVaries addresses moved across iterations")
	}
}

func TestBankPassesCoalescedAndBroadcast(t *testing.T) {
	if BankPasses(&MemSpec{Pattern: PatCoalesced}, 1, 0, 0, 0, 0, fullMask, 32) != 1 {
		t.Fatal("coalesced shared access should be conflict-free")
	}
	if BankPasses(&MemSpec{Pattern: PatBroadcast}, 1, 0, 0, 0, 0, fullMask, 32) != 1 {
		t.Fatal("broadcast shared access should be conflict-free")
	}
}

func TestBankPassesPowerOfTwoStride(t *testing.T) {
	// Stride of 8 words (32 bytes) on 32 banks: lanes map to 4 distinct
	// banks, 8 lanes each → 8 passes.
	got := BankPasses(&MemSpec{Pattern: PatStrided, Stride: 32}, 1, 0, 0, 0, 0, fullMask, 32)
	if got != 8 {
		t.Fatalf("stride-32B conflict passes = %d, want 8", got)
	}
	// Odd word stride is conflict-free.
	if BankPasses(&MemSpec{Pattern: PatStrided, Stride: 20}, 1, 0, 0, 0, 0, fullMask, 32) != 1 {
		t.Fatal("odd-stride access should be conflict-free")
	}
}

func TestBankPassesBounds(t *testing.T) {
	f := func(pat uint8, mask uint32) bool {
		if mask == 0 {
			mask = 1
		}
		m := &MemSpec{Pattern: AccessPattern(pat % 5), Stride: 8, Region: 4096}
		p := BankPasses(m, 1, 0, 0, 0, 0, mask, 32)
		return p >= 1 && p <= bits.OnesCount32(mask)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceSeparation(t *testing.T) {
	a := LineAddrs(nil, &MemSpec{Pattern: PatCoalesced, Space: 0}, 1, 0, 0, 0, 0, fullMask, 256, 128)
	b := LineAddrs(nil, &MemSpec{Pattern: PatCoalesced, Space: 1}, 1, 0, 0, 0, 0, fullMask, 256, 128)
	if a[0] == b[0] {
		t.Fatal("distinct spaces produced overlapping addresses")
	}
}
