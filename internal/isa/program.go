package isa

import (
	"fmt"
	"strings"
)

// Instr is one static instruction.
type Instr struct {
	Op   Op
	Dst  Reg
	Srcs [3]Reg
	// Mem is non-nil for memory opcodes.
	Mem *MemSpec
	// Branch is non-nil for OpBra.
	Branch *BranchSpec
}

// String renders a disassembly line.
func (in Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Dst != NoReg {
		fmt.Fprintf(&b, " r%d", in.Dst)
	}
	for _, s := range in.Srcs {
		if s != NoReg {
			fmt.Fprintf(&b, ", r%d", s)
		}
	}
	if in.Mem != nil {
		fmt.Fprintf(&b, " [%s sp%d]", in.Mem.Pattern, in.Mem.Space)
	}
	if in.Branch != nil {
		fmt.Fprintf(&b, " %s ->%d ^%d", in.Branch.Kind, in.Branch.Target, in.Branch.Reconv)
	}
	return b.String()
}

// Program is a validated straight-line program with structured control
// flow. Instruction indices are PCs.
type Program struct {
	// Name identifies the kernel (for reports).
	Name string
	// Code is the instruction sequence; Code[len-1] is OpExit.
	Code []Instr
	// Loops is the loop table referenced by BrLoop branches.
	Loops []LoopSpec
	// barUniform[i] is true when instruction i is a barrier that every
	// thread of the TB executes the same number of times (validated at
	// build time).
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Code) }

// At returns the instruction at pc.
func (p *Program) At(pc int) *Instr { return &p.Code[pc] }

// String renders the full disassembly.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".kernel %s\n", p.Name)
	for i, in := range p.Code {
		fmt.Fprintf(&b, "%4d: %s\n", i, in.String())
	}
	for i, l := range p.Loops {
		fmt.Fprintf(&b, ".loop %d trips=[%d,%d] imb=%s\n", i, l.Min, l.Max, l.Imb)
	}
	return b.String()
}

// Validate checks structural well-formedness:
//   - non-empty, ends with OpExit, exactly one OpExit;
//   - memory ops carry MemSpec, branches carry BranchSpec, others don't;
//   - branch targets and reconvergence points in range; loop branches go
//     backward with reconvergence immediately after; non-loop branches go
//     forward with target ≤ reconv;
//   - loop IDs valid; registers within range;
//   - barriers only at warp-converged points (the builder guarantees
//     this; Validate re-checks nesting by scanning divergence regions).
func (p *Program) Validate() error {
	n := len(p.Code)
	if n == 0 {
		return fmt.Errorf("isa: %s: empty program", p.Name)
	}
	if p.Code[n-1].Op != OpExit {
		return fmt.Errorf("isa: %s: program must end with exit", p.Name)
	}
	exits := 0
	for pc, in := range p.Code {
		if in.Op == OpExit {
			exits++
		}
		if in.Op.IsMem() && in.Op != OpLdConst && in.Mem == nil {
			return fmt.Errorf("isa: %s: pc %d: %s lacks MemSpec", p.Name, pc, in.Op)
		}
		if !in.Op.IsMem() && in.Mem != nil {
			return fmt.Errorf("isa: %s: pc %d: %s carries MemSpec", p.Name, pc, in.Op)
		}
		if in.Op == OpBra {
			br := in.Branch
			if br == nil {
				return fmt.Errorf("isa: %s: pc %d: bra lacks BranchSpec", p.Name, pc)
			}
			if br.Target < 0 || br.Target >= n || br.Reconv < 0 || br.Reconv >= n {
				return fmt.Errorf("isa: %s: pc %d: branch target/reconv out of range", p.Name, pc)
			}
			if br.Kind == BrLoop {
				if br.Target > pc {
					return fmt.Errorf("isa: %s: pc %d: loop branch must go backward", p.Name, pc)
				}
				if br.Reconv != pc+1 {
					return fmt.Errorf("isa: %s: pc %d: loop branch must reconverge at fall-through", p.Name, pc)
				}
				if br.LoopID < 0 || br.LoopID >= len(p.Loops) {
					return fmt.Errorf("isa: %s: pc %d: loop id %d out of range", p.Name, pc, br.LoopID)
				}
				if !p.Loops[br.LoopID].Valid() {
					return fmt.Errorf("isa: %s: loop %d has invalid trip bounds", p.Name, br.LoopID)
				}
			} else {
				if br.Target <= pc {
					return fmt.Errorf("isa: %s: pc %d: forward branch must go forward", p.Name, pc)
				}
				if br.Reconv < br.Target {
					return fmt.Errorf("isa: %s: pc %d: reconv before target", p.Name, pc)
				}
				if br.Kind == BrRandom || br.Kind == BrWarpRandom {
					if br.P < 0 || br.P > 1 {
						return fmt.Errorf("isa: %s: pc %d: probability %v out of [0,1]", p.Name, pc, br.P)
					}
				}
			}
		} else if in.Branch != nil {
			return fmt.Errorf("isa: %s: pc %d: %s carries BranchSpec", p.Name, pc, in.Op)
		}
		if in.Dst > MaxReg {
			return fmt.Errorf("isa: %s: pc %d: dst register out of range", p.Name, pc)
		}
		for _, s := range in.Srcs {
			if s > MaxReg {
				return fmt.Errorf("isa: %s: pc %d: src register out of range", p.Name, pc)
			}
		}
	}
	if exits != 1 {
		return fmt.Errorf("isa: %s: program must contain exactly one exit, found %d", p.Name, exits)
	}
	return p.validateBarrierPlacement()
}

// validateBarrierPlacement rejects barriers inside potentially-divergent
// regions: a barrier may not sit strictly between a lane-divergent branch
// (BrLaneLess/BrRandom) and its reconvergence point, nor inside a loop
// whose trip count varies per warp or per thread (threads of the TB would
// execute the barrier different numbers of times — CUDA undefined
// behaviour, and a deadlock in the simulator).
func (p *Program) validateBarrierPlacement() error {
	for pc, in := range p.Code {
		if in.Op != OpBar {
			continue
		}
		for qc, other := range p.Code {
			if other.Op != OpBra {
				continue
			}
			br := other.Branch
			switch br.Kind {
			case BrLaneLess, BrRandom:
				// Divergent region is (qc, reconv).
				if pc > qc && pc < br.Reconv {
					return fmt.Errorf("isa: %s: barrier at pc %d inside divergent region of branch at %d", p.Name, pc, qc)
				}
			case BrLoop:
				imb := p.Loops[br.LoopID].Imb
				if imb == ImbPerWarp || imb == ImbPerThread {
					// Loop body is [target, qc].
					if pc >= br.Target && pc <= qc {
						return fmt.Errorf("isa: %s: barrier at pc %d inside imbalanced loop ending at %d", p.Name, pc, qc)
					}
				}
			case BrWarpRandom:
				if pc > qc && pc < br.Reconv {
					return fmt.Errorf("isa: %s: barrier at pc %d inside warp-variant region of branch at %d", p.Name, pc, qc)
				}
			}
		}
	}
	return nil
}

// StaticMix summarizes the static instruction mix; useful for workload
// documentation and tests.
type StaticMix struct {
	SP, SFU, GlobalMem, SharedMem, ConstMem, Barriers, Branches int
}

// Mix computes the static instruction mix.
func (p *Program) Mix() StaticMix {
	var m StaticMix
	for _, in := range p.Code {
		switch {
		case in.Op == OpExit || in.Op == OpNop:
			// Not counted: neither work nor a scheduling obstacle.
		case in.Op == OpBar:
			m.Barriers++
		case in.Op == OpBra:
			m.Branches++
		case in.Op == OpLdConst:
			m.ConstMem++
		case in.Op.IsGlobalMem():
			m.GlobalMem++
		case in.Op.IsSharedMem():
			m.SharedMem++
		case in.Op.Unit() == UnitSFU:
			m.SFU++
		default:
			m.SP++
		}
	}
	return m
}
