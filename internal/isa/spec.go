package isa

import "fmt"

// AccessPattern describes how the 32 threads of a warp compute addresses
// for one static memory instruction. Patterns are evaluated with
// deterministic hashes of (kernel seed, TB, warp, lane, pc, iteration), so
// the same program run twice produces the same memory traffic.
type AccessPattern uint8

const (
	// PatCoalesced: thread t accesses base + gtid*4 — consecutive 4-byte
	// words, one 128B transaction per warp (the ideal GPU pattern).
	PatCoalesced AccessPattern = iota
	// PatStrided: thread t accesses base + gtid*Stride bytes; the number
	// of 128B transactions grows with the stride.
	PatStrided
	// PatRandom: each thread touches a pseudo-random line in a Region-byte
	// working set — up to 32 transactions per warp, poor row locality.
	PatRandom
	// PatTBLocal: each thread touches a pseudo-random line within a
	// Region-byte window owned by its thread block — uncoalesced but with
	// cache and DRAM-row locality (b+tree/BFS-like).
	PatTBLocal
	// PatBroadcast: all threads read the same address — one transaction.
	PatBroadcast
)

// String names the pattern.
func (p AccessPattern) String() string {
	switch p {
	case PatCoalesced:
		return "coalesced"
	case PatStrided:
		return "strided"
	case PatRandom:
		return "random"
	case PatTBLocal:
		return "tblocal"
	case PatBroadcast:
		return "broadcast"
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// MemSpec is the static address-generation descriptor attached to global
// and shared memory instructions.
type MemSpec struct {
	// Pattern selects the address generator.
	Pattern AccessPattern
	// Stride is the per-thread byte stride for PatStrided.
	Stride int
	// Region is the working-set size in bytes for PatRandom / PatTBLocal.
	Region uint64
	// Space tags distinct data structures so they occupy disjoint address
	// ranges (space i starts at i<<40).
	Space uint8
	// IterVaries: when true, addresses change with the loop iteration
	// (streaming); when false, the same addresses are revisited each
	// iteration (temporal locality, e.g. shared-memory tables or stencil
	// halos re-read per sweep).
	IterVaries bool
}

// BranchKind enumerates the predicate models for OpBra.
type BranchKind uint8

const (
	// BrLoop is a structured backward branch: a thread takes it while its
	// remaining trip count for LoopID is positive (decremented on each
	// take). Trip counts come from the program's loop table.
	BrLoop BranchKind = iota
	// BrLaneLess is taken by threads whose lane (thread index within the
	// warp) is < N. Produces intra-warp divergence with a fixed split.
	BrLaneLess
	// BrRandom is taken by each thread independently with probability P,
	// re-drawn per dynamic execution (varies with iteration).
	BrRandom
	// BrWarpRandom is taken by all threads of a warp together with
	// probability P — warp-uniform, so it never splits the warp, but
	// different warps take different paths (warp-level divergence in
	// path length).
	BrWarpRandom
)

// String names the branch kind.
func (k BranchKind) String() string {
	switch k {
	case BrLoop:
		return "loop"
	case BrLaneLess:
		return "lane<"
	case BrRandom:
		return "rand"
	case BrWarpRandom:
		return "wrand"
	}
	return fmt.Sprintf("brkind(%d)", uint8(k))
}

// BranchSpec is the static descriptor attached to OpBra instructions.
// Target and Reconv are filled by the builder.
//
// Branch semantics: the spec's Kind defines a per-thread predicate. For
// BrLoop (backward) branches, predicate-TRUE threads (those with trips
// remaining) jump to Target and the rest fall through. For all forward
// kinds, predicate-FALSE threads jump to Target and predicate-TRUE
// threads fall through into the then-block — the compiled-C "branch if
// not condition" convention.
type BranchSpec struct {
	Kind BranchKind
	// N is the lane threshold for BrLaneLess.
	N int
	// P is the predicate-true probability for BrRandom / BrWarpRandom.
	P float64
	// LoopID indexes the program loop table for BrLoop.
	LoopID int
	// Target is the jump destination (see branch semantics above).
	Target int
	// Reconv is the immediate post-dominator where diverged threads
	// re-join. For structured programs it is known by construction:
	// the end of the if/else region, or the instruction after a loop's
	// back-branch.
	Reconv int
}

// Imbalance describes how loop trip counts vary across threads — the
// paper's "warp-level divergence" knob.
type Imbalance uint8

const (
	// ImbNone: every thread runs the same number of trips.
	ImbNone Imbalance = iota
	// ImbPerTB: trips vary per thread block (uniform within a TB) —
	// causes TB-level runtime variation without breaking barriers.
	ImbPerTB
	// ImbPerWarp: trips vary per warp (uniform within a warp) — causes
	// warp-level divergence: warps of a TB finish/reach barriers at
	// different times.
	ImbPerWarp
	// ImbPerThread: trips vary per thread — causes intra-warp divergence
	// (the warp keeps looping until its slowest thread is done).
	ImbPerThread
)

// String names the imbalance model.
func (im Imbalance) String() string {
	switch im {
	case ImbNone:
		return "none"
	case ImbPerTB:
		return "per-tb"
	case ImbPerWarp:
		return "per-warp"
	case ImbPerThread:
		return "per-thread"
	}
	return fmt.Sprintf("imbalance(%d)", uint8(im))
}

// LoopSpec declares one structured loop. The dynamic trip count of each
// thread is drawn uniformly from [Min, Max] according to Imb. Loops are
// do-while shaped: the body always executes at least once, so Min must be
// at least 1.
type LoopSpec struct {
	Min, Max int
	Imb      Imbalance
}

// Valid reports whether the loop bounds are sane.
func (l LoopSpec) Valid() bool { return l.Min >= 1 && l.Max >= l.Min }
