// Package isa defines the simulator's miniature SIMT instruction set, the
// program representation, and a structured-control-flow program builder.
//
// The ISA is deliberately small: it carries exactly the information a warp
// scheduler's environment observes — which execution unit an instruction
// needs, its result latency class, its register dependences, whether it
// touches the memory system (and with what address pattern), and whether it
// branches (and with what divergence behaviour). Arithmetic values are not
// computed; addresses and branch outcomes are derived from deterministic
// hashes so runs are reproducible and independent of data values, while
// still exhibiting the paper's phenomena (long-latency loads, intra-warp
// divergence, warp-level divergence, barrier waits).
package isa

import "fmt"

// Op enumerates instruction opcodes.
type Op uint8

const (
	// OpNop does nothing but still occupies an issue slot (SP unit).
	OpNop Op = iota
	// OpIAdd is integer add/sub/logic (SP unit, ALU latency).
	OpIAdd
	// OpIMul is integer multiply (SP unit, ALU latency).
	OpIMul
	// OpFAdd is floating add (SP unit, ALU latency).
	OpFAdd
	// OpFMul is floating multiply (SP unit, ALU latency).
	OpFMul
	// OpFFMA is fused multiply-add (SP unit, ALU latency).
	OpFFMA
	// OpSFU is a special-function op: rcp, rsqrt, sin, exp (SFU unit).
	OpSFU
	// OpLdGlobal loads from global memory through L1/L2/DRAM (MEM unit).
	OpLdGlobal
	// OpStGlobal stores to global memory, write-through around L1 (MEM unit).
	OpStGlobal
	// OpAtomGlobal is a global atomic read-modify-write resolved at L2
	// (MEM unit). It bypasses L1 like GPGPU-Sim's global atomics.
	OpAtomGlobal
	// OpLdShared loads from per-SM shared memory (MEM unit, bank conflicts).
	OpLdShared
	// OpStShared stores to shared memory (MEM unit, bank conflicts).
	OpStShared
	// OpLdConst loads from the constant cache (MEM unit, short fixed
	// latency, always hits).
	OpLdConst
	// OpBar is a thread-block-wide barrier (CUDA __syncthreads).
	OpBar
	// OpBra is a conditional branch described by a BranchSpec.
	OpBra
	// OpExit terminates the warp. Programs end with exactly one OpExit and
	// reach it with all threads converged.
	OpExit

	opCount // number of opcodes; keep last
)

var opNames = [opCount]string{
	OpNop:        "nop",
	OpIAdd:       "iadd",
	OpIMul:       "imul",
	OpFAdd:       "fadd",
	OpFMul:       "fmul",
	OpFFMA:       "ffma",
	OpSFU:        "sfu",
	OpLdGlobal:   "ld.global",
	OpStGlobal:   "st.global",
	OpAtomGlobal: "atom.global",
	OpLdShared:   "ld.shared",
	OpStShared:   "st.shared",
	OpLdConst:    "ld.const",
	OpBar:        "bar.sync",
	OpBra:        "bra",
	OpExit:       "exit",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Unit identifies the execution unit an instruction issues to.
type Unit uint8

const (
	// UnitSP is the streaming-processor (CUDA core) pipeline. Control
	// instructions (branch, barrier, exit) also occupy an SP issue slot,
	// matching GPGPU-Sim where they flow through the SP pipeline.
	UnitSP Unit = iota
	// UnitSFU is the special-function unit pipeline.
	UnitSFU
	// UnitMem is the load/store unit.
	UnitMem

	// UnitCount is the number of execution unit kinds.
	UnitCount
)

// String names the unit.
func (u Unit) String() string {
	switch u {
	case UnitSP:
		return "SP"
	case UnitSFU:
		return "SFU"
	case UnitMem:
		return "MEM"
	}
	return fmt.Sprintf("unit(%d)", uint8(u))
}

// UnitOf returns the execution unit for an opcode.
func (o Op) Unit() Unit {
	switch o {
	case OpSFU:
		return UnitSFU
	case OpLdGlobal, OpStGlobal, OpAtomGlobal, OpLdShared, OpStShared, OpLdConst:
		return UnitMem
	default:
		return UnitSP
	}
}

// IsMem reports whether the opcode accesses a memory space.
func (o Op) IsMem() bool { return o.Unit() == UnitMem }

// IsGlobalMem reports whether the opcode goes to the global-memory
// hierarchy (L1/L2/DRAM).
func (o Op) IsGlobalMem() bool {
	return o == OpLdGlobal || o == OpStGlobal || o == OpAtomGlobal
}

// IsSharedMem reports whether the opcode accesses shared memory.
func (o Op) IsSharedMem() bool { return o == OpLdShared || o == OpStShared }

// IsControl reports whether the opcode changes control flow or warp state
// rather than producing a value.
func (o Op) IsControl() bool { return o == OpBra || o == OpBar || o == OpExit }

// Reg is a per-thread register index. Register 0 is the hardwired zero /
// "no register" sentinel; usable registers are 1..63 so a warp's pending
// writes fit in one 64-bit scoreboard mask (Fermi allows up to 63
// registers per thread, conveniently).
type Reg uint8

// NoReg is the absent-register sentinel.
const NoReg Reg = 0

// MaxReg is the highest usable register index.
const MaxReg Reg = 63
