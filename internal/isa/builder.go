package isa

import "fmt"

// Builder assembles a Program with structured control flow. Reconvergence
// points (immediate post-dominators) are known by construction: an
// if/else region reconverges at its end, a loop's back-branch reconverges
// at its fall-through. Build returns an error for malformed structure, so
// workload definitions fail fast.
//
// Typical use:
//
//	b := isa.NewBuilder("stencil")
//	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
//	b.Bar()
//	b.Loop(isa.LoopSpec{Min: 8, Max: 8})
//	    b.FFMA(2, 1, 2, 0)
//	b.EndLoop()
//	b.StGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced})
//	prog, err := b.Build()
type Builder struct {
	name  string
	code  []Instr
	loops []LoopSpec
	stack []frame
	err   error
}

type frameKind uint8

const (
	frameLoop frameKind = iota
	frameIf
	frameElse
)

type frame struct {
	kind frameKind
	// loop: index of first body instruction; if/else: index of the OpBra.
	at int
	// loop table index for loops.
	loopID int
	// if: position of the then-terminating skip branch (filled by Else).
	skipAt int
}

// NewBuilder returns a builder for a kernel named name.
func NewBuilder(name string) *Builder { return &Builder{name: name} }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("isa: builder %s: %s", b.name, fmt.Sprintf(format, args...))
	}
}

func (b *Builder) emit(in Instr) int {
	b.code = append(b.code, in)
	return len(b.code) - 1
}

// --- Arithmetic ---

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(Instr{Op: OpNop}) }

// IAdd emits dst = a + b on the SP pipeline.
func (b *Builder) IAdd(dst, a, c Reg) { b.emit(Instr{Op: OpIAdd, Dst: dst, Srcs: [3]Reg{a, c}}) }

// IMul emits dst = a * b on the SP pipeline.
func (b *Builder) IMul(dst, a, c Reg) { b.emit(Instr{Op: OpIMul, Dst: dst, Srcs: [3]Reg{a, c}}) }

// FAdd emits dst = a + b on the SP pipeline.
func (b *Builder) FAdd(dst, a, c Reg) { b.emit(Instr{Op: OpFAdd, Dst: dst, Srcs: [3]Reg{a, c}}) }

// FMul emits dst = a * b on the SP pipeline.
func (b *Builder) FMul(dst, a, c Reg) { b.emit(Instr{Op: OpFMul, Dst: dst, Srcs: [3]Reg{a, c}}) }

// FFMA emits dst = a*b + c on the SP pipeline.
func (b *Builder) FFMA(dst, a, c, d Reg) {
	b.emit(Instr{Op: OpFFMA, Dst: dst, Srcs: [3]Reg{a, c, d}})
}

// SFU emits dst = f(a) on the special-function unit.
func (b *Builder) SFU(dst, a Reg) { b.emit(Instr{Op: OpSFU, Dst: dst, Srcs: [3]Reg{a}}) }

// --- Memory ---

func (b *Builder) mem(op Op, dst Reg, srcs [3]Reg, spec MemSpec) {
	s := spec
	b.emit(Instr{Op: op, Dst: dst, Srcs: srcs, Mem: &s})
}

// LdGlobal emits a global load into dst.
func (b *Builder) LdGlobal(dst Reg, spec MemSpec) { b.mem(OpLdGlobal, dst, [3]Reg{}, spec) }

// StGlobal emits a global store of src.
func (b *Builder) StGlobal(src Reg, spec MemSpec) { b.mem(OpStGlobal, NoReg, [3]Reg{src}, spec) }

// AtomGlobal emits a global atomic RMW returning the old value into dst.
func (b *Builder) AtomGlobal(dst, src Reg, spec MemSpec) {
	b.mem(OpAtomGlobal, dst, [3]Reg{src}, spec)
}

// LdShared emits a shared-memory load into dst.
func (b *Builder) LdShared(dst Reg, spec MemSpec) { b.mem(OpLdShared, dst, [3]Reg{}, spec) }

// StShared emits a shared-memory store of src.
func (b *Builder) StShared(src Reg, spec MemSpec) { b.mem(OpStShared, NoReg, [3]Reg{src}, spec) }

// LdConst emits a constant-cache load into dst.
func (b *Builder) LdConst(dst Reg) { b.emit(Instr{Op: OpLdConst, Dst: dst}) }

// --- Synchronization & control ---

// Bar emits a thread-block barrier.
func (b *Builder) Bar() { b.emit(Instr{Op: OpBar}) }

// Loop opens a structured loop with the given trip specification. Must be
// matched by EndLoop.
func (b *Builder) Loop(spec LoopSpec) {
	if !spec.Valid() {
		b.fail("invalid loop spec [%d,%d]", spec.Min, spec.Max)
	}
	b.loops = append(b.loops, spec)
	b.stack = append(b.stack, frame{kind: frameLoop, at: len(b.code), loopID: len(b.loops) - 1})
}

// EndLoop closes the innermost open loop, emitting its back-branch.
func (b *Builder) EndLoop() {
	if len(b.stack) == 0 || b.stack[len(b.stack)-1].kind != frameLoop {
		b.fail("EndLoop without matching Loop")
		return
	}
	f := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	pc := b.emit(Instr{Op: OpBra, Branch: &BranchSpec{
		Kind:   BrLoop,
		LoopID: f.loopID,
		Target: f.at,
	}})
	b.code[pc].Branch.Reconv = pc + 1
}

// If opens a structured conditional: threads satisfying the predicate run
// the then-block; the rest skip to Else/EndIf. kind must not be BrLoop.
func (b *Builder) If(kind BranchKind, n int, p float64) {
	if kind == BrLoop {
		b.fail("If cannot use BrLoop")
		return
	}
	at := b.emit(Instr{Op: OpBra, Branch: &BranchSpec{Kind: kind, N: n, P: p}})
	b.stack = append(b.stack, frame{kind: frameIf, at: at})
}

// IfLaneLess opens a conditional taken by lanes < n.
func (b *Builder) IfLaneLess(n int) { b.If(BrLaneLess, n, 0) }

// IfRandom opens a conditional taken per-thread with probability p.
func (b *Builder) IfRandom(p float64) { b.If(BrRandom, 0, p) }

// IfWarpRandom opens a conditional taken per-warp with probability p.
func (b *Builder) IfWarpRandom(p float64) { b.If(BrWarpRandom, 0, p) }

// Else switches the innermost If to its else-block.
func (b *Builder) Else() {
	if len(b.stack) == 0 || b.stack[len(b.stack)-1].kind != frameIf {
		b.fail("Else without matching If")
		return
	}
	// Terminate the then-block with an unconditional skip to EndIf.
	// Forward branches send predicate-FALSE threads to Target, so a
	// BrWarpRandom with P=0 (predicate false for every warp) is an
	// unconditional jump.
	skip := b.emit(Instr{Op: OpBra, Branch: &BranchSpec{Kind: BrWarpRandom, P: 0}})
	f := &b.stack[len(b.stack)-1]
	f.kind = frameElse
	f.skipAt = skip
	// If-branch semantics in the engine: predicate-TRUE threads continue
	// at pc+1 (then-block), FALSE threads go to Target. Else-block starts
	// after the skip branch.
	b.code[f.at].Branch.Target = skip + 1
}

// EndIf closes the innermost If/Else.
func (b *Builder) EndIf() {
	if len(b.stack) == 0 {
		b.fail("EndIf without matching If")
		return
	}
	f := b.stack[len(b.stack)-1]
	if f.kind != frameIf && f.kind != frameElse {
		b.fail("EndIf without matching If")
		return
	}
	b.stack = b.stack[:len(b.stack)-1]
	end := len(b.code)
	br := b.code[f.at].Branch
	if f.kind == frameIf {
		// No else: FALSE threads jump straight to end.
		br.Target = end
	} else {
		// With else: the then-block's skip branch jumps to end; both its
		// target and reconvergence are end.
		sk := b.code[f.skipAt].Branch
		sk.Target = end
		sk.Reconv = end
	}
	br.Reconv = end
	if br.Target >= len(b.code) || br.Reconv >= len(b.code) {
		// The region must be followed by at least one instruction for
		// reconvergence; callers always emit Exit last, but an empty tail
		// here means a structural bug we catch in Build via Validate.
		// Defer: record as-is; Validate will reject if out of range after
		// Build appends nothing.
		_ = end
	}
}

// Exit emits the terminal instruction. The builder rejects Exit inside an
// open control region (the program must be converged at exit).
func (b *Builder) Exit() {
	if len(b.stack) != 0 {
		b.fail("Exit inside open control region")
		return
	}
	b.emit(Instr{Op: OpExit})
}

// Repeat emits body n times; a convenience for unrolled instruction
// sequences.
func (b *Builder) Repeat(n int, body func()) {
	for i := 0; i < n; i++ {
		body()
	}
}

// Build finalizes the program: checks structure, appends nothing, and
// runs Program.Validate.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("isa: builder %s: %d unclosed control regions", b.name, len(b.stack))
	}
	if len(b.code) == 0 || b.code[len(b.code)-1].Op != OpExit {
		return nil, fmt.Errorf("isa: builder %s: program must end with Exit", b.name)
	}
	p := &Program{Name: b.name, Code: b.code, Loops: b.loops}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for static workload tables
// whose correctness is covered by tests.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
