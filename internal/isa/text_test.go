package isa

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

const sampleText = `
kernel sample
# stage, compute, write back
ld.global r1 pattern=coalesced space=0 itervaries
st.shared r1 pattern=coalesced
bar
loop min=4 max=8 imb=warp {
    ld.shared r3 pattern=strided stride=32 itervaries
    ffma r5 r3 r4 r5
    if lane<16 {
        iadd r2 r2 r1
    } else {
        imul r2 r2 r1
    }
}
if rand=0.25 {
    sfu r6 r5
}
atom.global r7 r5 pattern=tblocal region=65536 space=2
st.global r5 pattern=coalesced space=1
exit
`

func TestParseSample(t *testing.T) {
	p, err := Parse(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sample" {
		t.Fatalf("name = %q", p.Name)
	}
	mix := p.Mix()
	if mix.Barriers != 1 || mix.SharedMem != 2 || mix.GlobalMem != 3 || mix.SFU != 1 {
		t.Fatalf("mix = %+v", mix)
	}
	if len(p.Loops) != 1 || p.Loops[0].Imb != ImbPerWarp || p.Loops[0].Min != 4 || p.Loops[0].Max != 8 {
		t.Fatalf("loops = %+v", p.Loops)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, frag string
	}{
		{"no kernel", "iadd r1 r1 r1\nexit\n", "must start"},
		{"dup kernel", "kernel a\nkernel b\nexit\n", "duplicate"},
		{"bad reg", "kernel a\niadd rx r1 r1\nexit\n", "bad register"},
		{"reg range", "kernel a\niadd r99 r1 r1\nexit\n", "bad register"},
		{"missing pattern", "kernel a\nld.global r1\nexit\n", "pattern"},
		{"bad pattern", "kernel a\nld.global r1 pattern=zig\nexit\n", "unknown pattern"},
		{"bad attr", "kernel a\nld.global r1 pattern=random zap=3\nexit\n", "unknown memory attribute"},
		{"loop no brace", "kernel a\nloop min=1 max=1\n}\nexit\n", "'{'"},
		{"loop no bounds", "kernel a\nloop imb=none {\niadd r1 r1 r1\n}\nexit\n", "min="},
		{"bad imb", "kernel a\nloop min=1 max=1 imb=zebra {\n}\nexit\n", "unknown imbalance"},
		{"bad cond", "kernel a\nif weird {\n}\nexit\n", "unknown condition"},
		{"unmatched close", "kernel a\n}\nexit\n", "unmatched"},
		{"else on loop", "kernel a\nloop min=1 max=1 {\n} else {\n}\nexit\n", "else on a loop"},
		{"unclosed", "kernel a\nloop min=1 max=1 {\niadd r1 r1 r1\nexit\n", "unclosed"},
		{"unknown op", "kernel a\nfrobnicate r1\nexit\n", "unknown directive"},
		{"empty", "", "empty"},
		{"bad close", "kernel a\nif lane<4 {\n} garbage\nexit\n", "bad region close"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.text)
			if err == nil {
				t.Fatal("Parse accepted malformed text")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("error %q lacks %q", err, c.frag)
			}
		})
	}
}

// equalPrograms compares everything the simulator observes.
func equalPrograms(a, b *Program) bool {
	if a.Name != b.Name || len(a.Code) != len(b.Code) || len(a.Loops) != len(b.Loops) {
		return false
	}
	for i := range a.Loops {
		if a.Loops[i] != b.Loops[i] {
			return false
		}
	}
	for i := range a.Code {
		x, y := a.Code[i], b.Code[i]
		if x.Op != y.Op || x.Dst != y.Dst || x.Srcs != y.Srcs {
			return false
		}
		switch {
		case (x.Mem == nil) != (y.Mem == nil):
			return false
		case x.Mem != nil && *x.Mem != *y.Mem:
			return false
		case (x.Branch == nil) != (y.Branch == nil):
			return false
		case x.Branch != nil && *x.Branch != *y.Branch:
			return false
		}
	}
	return true
}

func TestFormatParseRoundTripSample(t *testing.T) {
	p, err := Parse(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(p)
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\ntext:\n%s", err, text)
	}
	if !equalPrograms(p, q) {
		t.Fatalf("round trip changed the program:\noriginal:\n%s\nreparsed:\n%s", Format(p), Format(q))
	}
}

func TestFormatParseRoundTripWorkloadShapes(t *testing.T) {
	// Build a program with every construct the builder offers and check
	// the round trip.
	b := NewBuilder("everything")
	b.Nop()
	b.LdConst(1)
	b.Loop(LoopSpec{Min: 2, Max: 2})
	b.Loop(LoopSpec{Min: 3, Max: 5, Imb: ImbPerThread})
	b.FFMA(2, 1, 1, 2)
	b.EndLoop()
	b.IfWarpRandom(0.5)
	b.FAdd(3, 2, 1)
	b.EndIf()
	b.EndLoop()
	b.IfLaneLess(8)
	b.IfRandom(0.125)
	b.IMul(4, 3, 3)
	b.EndIf()
	b.Else()
	b.FMul(5, 4, 4)
	b.EndIf()
	b.StGlobal(5, MemSpec{Pattern: PatBroadcast, Space: 3})
	b.Exit()
	p := b.MustBuild()
	q, err := Parse(Format(p))
	if err != nil {
		t.Fatalf("%v\n%s", err, Format(p))
	}
	if !equalPrograms(p, q) {
		t.Fatalf("round trip changed the program:\n%s\nvs\n%s", Format(p), Format(q))
	}
}

// TestPropertyRoundTripRandomPrograms: Format∘Parse is the identity on
// randomly generated structured programs.
func TestPropertyRoundTripRandomPrograms(t *testing.T) {
	gen := func(rng *xrand.RNG) *Program {
		b := NewBuilder("rt")
		var emit func(depth, budget int)
		emit = func(depth, budget int) {
			for i := 0; i < budget; i++ {
				switch c := rng.Intn(7); {
				case c <= 2 || depth >= 3:
					b.IAdd(Reg(1+rng.Intn(10)), Reg(1+rng.Intn(10)), Reg(1+rng.Intn(10)))
				case c == 3:
					b.LdGlobal(Reg(1+rng.Intn(10)), MemSpec{
						Pattern:    AccessPattern(rng.Intn(5)),
						Stride:     4 * (1 + rng.Intn(8)),
						Region:     uint64(1024 << rng.Intn(4)),
						Space:      uint8(rng.Intn(4)),
						IterVaries: rng.Intn(2) == 0,
					})
				case c == 4:
					b.Loop(LoopSpec{Min: 1 + rng.Intn(3), Max: 1 + rng.Intn(3) + 3, Imb: Imbalance(rng.Intn(4))})
					emit(depth+1, 1+rng.Intn(2))
					b.EndLoop()
				case c == 5:
					b.IfLaneLess(1 + rng.Intn(31))
					emit(depth+1, 1+rng.Intn(2))
					if rng.Intn(2) == 0 {
						b.Else()
						emit(depth+1, 1+rng.Intn(2))
					}
					b.EndIf()
				default:
					b.SFU(Reg(1+rng.Intn(10)), Reg(1+rng.Intn(10)))
				}
			}
		}
		emit(0, 3+rng.Intn(6))
		b.Exit()
		return b.MustBuild()
	}
	f := func(seed uint64) bool {
		p := gen(xrand.NewRNG(seed | 1))
		q, err := Parse(Format(p))
		if err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, Format(p))
			return false
		}
		if !equalPrograms(p, q) {
			t.Logf("seed %d round trip mismatch:\n%s\nvs\n%s", seed, Format(p), Format(q))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatTableIIWorkloadsRoundTrip(t *testing.T) {
	// Every Table II program must survive the round trip; guards the
	// formatter against constructs used by the real suite. (The suite
	// lives in another package; rebuild one representative here and
	// leave the full check to the workloads tests.)
	p, err := Parse(Format(mustSample(t)))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() == 0 {
		t.Fatal("empty")
	}
}

func mustSample(t *testing.T) *Program {
	t.Helper()
	p, err := Parse(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
