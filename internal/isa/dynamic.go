package isa

import (
	"math/bits"

	"repro/internal/config"
	"repro/internal/xrand"
)

// This file implements the dynamic (per-execution) semantics that the
// engine queries: loop trip counts, branch predicate masks, global-memory
// line addresses, and shared-memory bank-conflict passes. Everything is a
// pure function of coordinates hashed through splitmix64, so simulations
// are reproducible and identical across warp schedulers (a scheduler must
// never change *what* executes, only *when*).

// Trips returns the trip count of loop loopID for the given thread.
// kseed is the kernel seed; tb is the global thread-block index; warpInTB
// and lane locate the thread within the block.
func (p *Program) Trips(loopID int, kseed uint64, tb, warpInTB, lane int) int {
	spec := p.Loops[loopID]
	if spec.Min == spec.Max {
		return spec.Min
	}
	span := uint64(spec.Max - spec.Min + 1)
	var h uint64
	switch spec.Imb {
	case ImbNone:
		// Same for every thread of the kernel (but still seed-dependent).
		h = xrand.Mix2(kseed, uint64(loopID))
	case ImbPerTB:
		h = xrand.Mix3(kseed, uint64(loopID), uint64(tb))
	case ImbPerWarp:
		h = xrand.Mix4(kseed, uint64(loopID), uint64(tb), uint64(warpInTB))
	case ImbPerThread:
		h = xrand.Mix4(kseed, uint64(loopID), uint64(tb), uint64(warpInTB)<<8|uint64(lane))
	}
	return spec.Min + int(h%span)
}

// PredMask evaluates a non-loop branch predicate for every lane in
// activeMask and returns the mask of predicate-TRUE lanes. iter is the
// warp's dynamic execution count of this branch, so BrRandom re-draws per
// visit. (Loop branches are evaluated from per-thread trip counters held
// by the engine, not here.)
func PredMask(br *BranchSpec, kseed uint64, tb, warpInTB, pc int, iter int64, activeMask uint32) uint32 {
	switch br.Kind {
	case BrLaneLess:
		if br.N >= 32 {
			return activeMask
		}
		return activeMask & (uint32(1)<<uint(br.N) - 1)
	case BrRandom:
		var m uint32
		for lanes := activeMask; lanes != 0; {
			l := bits.TrailingZeros32(lanes)
			lanes &^= 1 << uint(l)
			h := xrand.Mix4(kseed, uint64(tb)<<16|uint64(warpInTB), uint64(pc), uint64(iter)<<8|uint64(l))
			if xrand.Uniform01(h) < br.P {
				m |= 1 << uint(l)
			}
		}
		return m
	case BrWarpRandom:
		h := xrand.Mix4(kseed, uint64(tb)<<16|uint64(warpInTB), uint64(pc), uint64(iter))
		if xrand.Uniform01(h) < br.P {
			return activeMask
		}
		return 0
	}
	return 0
}

// spaceBase places each address space in a disjoint 1TB-aligned range.
func spaceBase(space uint8) uint64 { return (uint64(space) + 1) << 40 }

// streamChunk is the per-iteration address advance for IterVaries
// patterns: large enough that successive iterations never hit in L1/L2
// (streaming), small enough to stay within a DRAM channel's row spread.
const streamChunk = 1 << 22

// LineAddrs appends to dst the distinct cache-line addresses touched by
// the active lanes of a warp executing the memory instruction at pc, and
// returns the extended slice. blockDim is threads per TB; lineSize must be
// a power of two.
func LineAddrs(dst []uint64, m *MemSpec, kseed uint64, tb, warpInTB, pc int, iter int64, activeMask uint32, blockDim, lineSize int) []uint64 {
	base := spaceBase(m.Space)
	lineMask := ^uint64(lineSize - 1)
	it := int64(0)
	if m.IterVaries {
		it = iter
	}
	push := func(addr uint64) {
		line := addr & lineMask
		for _, a := range dst {
			if a == line {
				return
			}
		}
		dst = append(dst, line)
	}
	warpBase := tb*blockDim + warpInTB*config.WarpSize

	switch m.Pattern {
	case PatBroadcast:
		push(base + uint64(it)*uint64(lineSize))
	case PatCoalesced:
		for lanes := activeMask; lanes != 0; {
			l := bits.TrailingZeros32(lanes)
			lanes &^= 1 << uint(l)
			gtid := warpBase + l
			push(base + uint64(it)*streamChunk + uint64(gtid)*4)
		}
	case PatStrided:
		stride := m.Stride
		if stride <= 0 {
			stride = 4
		}
		for lanes := activeMask; lanes != 0; {
			l := bits.TrailingZeros32(lanes)
			lanes &^= 1 << uint(l)
			gtid := warpBase + l
			push(base + uint64(it)*streamChunk + uint64(gtid)*uint64(stride))
		}
	case PatRandom:
		region := m.Region
		if region < uint64(lineSize) {
			region = uint64(lineSize)
		}
		nlines := region / uint64(lineSize)
		for lanes := activeMask; lanes != 0; {
			l := bits.TrailingZeros32(lanes)
			lanes &^= 1 << uint(l)
			gtid := warpBase + l
			h := xrand.Mix4(kseed, uint64(pc), uint64(gtid), uint64(it))
			push(base + (h%nlines)*uint64(lineSize))
		}
	case PatTBLocal:
		region := m.Region
		if region < uint64(lineSize) {
			region = uint64(lineSize)
		}
		nlines := region / uint64(lineSize)
		window := base + uint64(tb)*region
		for lanes := activeMask; lanes != 0; {
			l := bits.TrailingZeros32(lanes)
			lanes &^= 1 << uint(l)
			h := xrand.Mix4(kseed, uint64(pc), uint64(warpInTB)<<8|uint64(l), uint64(it))
			push(window + (h%nlines)*uint64(lineSize))
		}
	}
	return dst
}

// BankPasses returns the number of serialized shared-memory bank passes
// for the active lanes: 1 for conflict-free (or broadcast) access, k when
// some bank is touched by k lanes at distinct addresses. banks is the
// number of shared-memory banks (a power of two in practice).
func BankPasses(m *MemSpec, kseed uint64, tb, warpInTB, pc int, iter int64, activeMask uint32, banks int) int {
	if activeMask == 0 {
		return 1
	}
	var counts [64]int // supports up to 64 banks
	if banks > len(counts) {
		banks = len(counts)
	}
	it := int64(0)
	if m.IterVaries {
		it = iter
	}
	maxPass := 1
	switch m.Pattern {
	case PatBroadcast:
		return 1
	case PatCoalesced:
		// Word-consecutive: lane l hits bank l%banks — conflict-free.
		return 1
	case PatStrided:
		strideWords := m.Stride / 4
		if strideWords <= 0 {
			strideWords = 1
		}
		for lanes := activeMask; lanes != 0; {
			l := bits.TrailingZeros32(lanes)
			lanes &^= 1 << uint(l)
			b := (l * strideWords) % banks
			counts[b]++
			if counts[b] > maxPass {
				maxPass = counts[b]
			}
		}
	case PatRandom, PatTBLocal:
		for lanes := activeMask; lanes != 0; {
			l := bits.TrailingZeros32(lanes)
			lanes &^= 1 << uint(l)
			h := xrand.Mix4(kseed, uint64(pc)<<8|uint64(l), uint64(tb)<<8|uint64(warpInTB), uint64(it))
			b := int(h % uint64(banks))
			counts[b]++
			if counts[b] > maxPass {
				maxPass = counts[b]
			}
		}
	}
	return maxPass
}
