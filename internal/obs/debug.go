// Debug endpoint bundle: /metrics, /debug/vars (expvar JSON) and
// /debug/pprof on one mux — what cmd/prosimd serves behind
// -debug-addr. Profiling stays off the service mux so an exposed
// daemon port never leaks heap dumps; operators opt in with a
// separate, typically loopback-only, listener.
package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns a mux serving the registry in Prometheus text
// at /metrics, the expvar JSON view at /debug/vars, and the standard
// pprof endpoints under /debug/pprof/.
func DebugHandler(r *Registry) http.Handler {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
