// Job-lifecycle tracing: NDJSON spans from submission through
// execution. A span line is self-contained JSON, so a trace file can
// be tailed, grepped, or loaded into any log pipeline:
//
//	{"ts":"2026-08-06T10:11:12.131Z","event":"done","key":"2fa0…",
//	 "kernel":"aesEncrypt128","sched":"PRO","outcome":"simulated",
//	 "duration_ms":1412,"sim_cycles":271660}
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Span outcomes. A job resolves exactly one way: replayed from the
// result cache, attached to another submission's identical in-flight
// run, simulated, or failed.
const (
	OutcomeCacheHit  = "cache-hit"
	OutcomeDeduped   = "dedup"
	OutcomeSimulated = "simulated"
	OutcomeError     = "error"
)

// Span is one NDJSON trace line.
type Span struct {
	// TS is the emission time (RFC3339, millisecond precision); the
	// tracer stamps it.
	TS string `json:"ts"`
	// Event is the lifecycle step: "submit" or "done".
	Event string `json:"event"`
	// Key is the job's result-cache key ("" for uncacheable jobs).
	Key string `json:"key,omitempty"`
	// Kernel and Sched identify the job.
	Kernel string `json:"kernel,omitempty"`
	Sched  string `json:"sched,omitempty"`
	// Outcome is set on "done": cache-hit, dedup, simulated or error.
	Outcome string `json:"outcome,omitempty"`
	// DurationMS is submit-to-done wall time, set on every "done" (a
	// pointer so sub-millisecond durations serialize as 0 instead of
	// vanishing under omitempty; build with Millis).
	DurationMS *int64 `json:"duration_ms,omitempty"`
	// SimCycles is the result's simulated cycle count, on a successful
	// "done".
	SimCycles int64 `json:"sim_cycles,omitempty"`
	// Err carries the failure text when Outcome is "error".
	Err string `json:"err,omitempty"`
}

// Millis converts an elapsed duration into a Span.DurationMS value.
func Millis(d time.Duration) *int64 {
	ms := d.Milliseconds()
	return &ms
}

// Tracer serializes spans onto one writer. A nil *Tracer is a valid
// no-op sink, so instrumented code never branches on "tracing on?".
type Tracer struct {
	mu     sync.Mutex
	enc    *json.Encoder
	closer io.Closer

	spans Counter
}

// NewTracer wraps w in a tracer. The caller keeps ownership of w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{enc: json.NewEncoder(w)}
}

// OpenTrace creates (truncating) the NDJSON sink at path; "-" means
// stderr. Close flushes and releases it.
func OpenTrace(path string) (*Tracer, error) {
	if path == "-" {
		return NewTracer(os.Stderr), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace sink: %w", err)
	}
	t := NewTracer(f)
	t.closer = f
	return t, nil
}

// Emit stamps and writes one span. Nil-safe; errors are dropped (a
// full disk must never fail a simulation batch).
func (t *Tracer) Emit(s Span) {
	if t == nil {
		return
	}
	s.TS = time.Now().UTC().Format("2006-01-02T15:04:05.000Z")
	t.mu.Lock()
	t.enc.Encode(s)
	t.mu.Unlock()
	t.spans.Inc()
}

// Spans returns how many spans were emitted (tests and /v1/stats).
func (t *Tracer) Spans() int64 {
	if t == nil {
		return 0
	}
	return t.spans.Value()
}

// Close releases the underlying file when the tracer owns one.
func (t *Tracer) Close() error {
	if t == nil || t.closer == nil {
		return nil
	}
	return t.closer.Close()
}
