package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs/obstest"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := &Registry{}
	c := r.Counter("x_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("x_total", "a counter"); again != c {
		t.Fatal("get-or-create returned a different counter cell")
	}

	g := r.Gauge("depth", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}

	// Nil cells are inert, so optional instrumentation needs no guards.
	var nc *Counter
	nc.Add(1)
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := &Registry{}
	r.Counter("dual", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dual", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := &Registry{}
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+5+50; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Cumulative buckets: le=0.1 holds 0.05 and 0.1 (le is inclusive),
	// le=1 adds 0.5, le=10 adds 5, +Inf adds 50.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusIsValidAndStable(t *testing.T) {
	r := &Registry{}
	r.Counter(`http_requests_total{path="/v1/batch"}`, "requests").Add(3)
	r.Counter(`http_requests_total{path="/v1/stats"}`, "requests").Add(1)
	r.Gauge("inflight", "running jobs").Set(2)
	r.GaugeFunc("uptime_seconds", "uptime", func() float64 { return 12.5 })
	r.Histogram(`lat_seconds{path="/v1/batch"}`, "latency", []float64{0.5}).Observe(0.2)

	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("exposition not stable across scrapes")
	}
	obstest.ValidatePrometheus(t, a.String())
	out := a.String()
	// Labeled series of one family share a single HELP/TYPE pair.
	if strings.Count(out, "# TYPE http_requests_total counter") != 1 {
		t.Errorf("family TYPE emitted other than once:\n%s", out)
	}
	if !strings.Contains(out, `http_requests_total{path="/v1/batch"} 3`) {
		t.Errorf("missing labeled counter sample:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_bucket{path="/v1/batch",le="0.5"} 1`) {
		t.Errorf("histogram label body must precede le:\n%s", out)
	}
	if !strings.Contains(out, "uptime_seconds 12.5") {
		t.Errorf("missing gauge-func sample:\n%s", out)
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	r := &Registry{}
	r.Counter("served_total", "x").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Fatalf("content type %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "served_total 1") {
		t.Fatalf("body missing sample:\n%s", body)
	}
}

func TestSnapshotFlattens(t *testing.T) {
	r := &Registry{}
	r.Counter("c_total", "").Add(2)
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap["c_total"] != 2 {
		t.Fatalf("snapshot c_total = %v", snap["c_total"])
	}
	if snap["h_seconds_count"] != 1 || snap["h_seconds_sum"] != 0.5 {
		t.Fatalf("snapshot histogram = %v / %v", snap["h_seconds_count"], snap["h_seconds_sum"])
	}
}

func TestConcurrentUse(t *testing.T) {
	r := &Registry{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("race_total", "")
			h := r.Histogram("race_seconds", "", []float64{0.5, 1})
			g := r.Gauge("race_depth", "")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i%3) * 0.4)
				g.Set(int64(i))
				if i%100 == 0 {
					var sb strings.Builder
					r.WritePrometheus(&sb)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("race_total", "").Value(); got != 8000 {
		t.Fatalf("race_total = %d, want 8000", got)
	}
	if got := r.Histogram("race_seconds", "", nil).Count(); got != 8000 {
		t.Fatalf("race_seconds count = %d, want 8000", got)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := (&Registry{}).Counter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
