// Structured leveled logging shared by the daemon and every cmd/
// tool: one flag-registration helper, one setup call. All logs go to
// stderr (stdout carries artifacts; see the cmd/report regression
// test), text by default, JSON with -log-json.
package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// LogConfig is the parsed logging flags of one tool.
type LogConfig struct {
	// Level is the minimum level: debug, info, warn, error.
	Level string
	// JSON switches the handler to one JSON object per line.
	JSON bool
}

// LogFlags registers -log-level and -log-json on fs (nil means
// flag.CommandLine) and returns the config the flags fill in. Call
// (*LogConfig).Setup after fs.Parse.
func LogFlags(fs *flag.FlagSet) *LogConfig {
	if fs == nil {
		fs = flag.CommandLine
	}
	lc := &LogConfig{}
	fs.StringVar(&lc.Level, "log-level", "info", "minimum log level: debug, info, warn or error")
	fs.BoolVar(&lc.JSON, "log-json", false, "emit one JSON object per log line instead of text")
	return lc
}

// ParseLevel maps a level name (case-insensitive) to its slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// Setup builds the logger described by lc writing to os.Stderr,
// installs it as the slog default, and returns it. An unknown level is
// an error (tools treat it as a flag-usage failure).
func (lc *LogConfig) Setup() (*slog.Logger, error) {
	return lc.SetupWriter(os.Stderr)
}

// SetupWriter is Setup with an explicit sink (tests capture output).
func (lc *LogConfig) SetupWriter(w io.Writer) (*slog.Logger, error) {
	level, err := ParseLevel(lc.Level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if lc.JSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l, nil
}

// NewLogger builds a stderr logger at the given level without touching
// the slog default — for components that want an explicit logger
// (daemon tests pass a discard logger).
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// Discard returns a logger that drops everything — the nil-object for
// Config.Log fields.
func Discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 128}))
}
