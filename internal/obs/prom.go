// Prometheus text exposition and expvar JSON export of a Registry.
package obs

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// promKind maps a series kind to the Prometheus TYPE keyword.
func (k metricKind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): one # HELP and # TYPE pair
// per family, then one line per series. Families are sorted by name,
// so output is stable across scrapes and registration orders.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastFamily string
	for _, s := range r.snapshot() {
		if s.family != lastFamily {
			if s.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", s.family, escapeHelp(s.help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.family, s.kind.promType())
			lastFamily = s.family
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", seriesName(s.family, s.labels), s.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %d\n", seriesName(s.family, s.labels), s.g.Value())
		case kindGaugeFunc:
			fmt.Fprintf(bw, "%s %s\n", seriesName(s.family, s.labels), formatFloat(s.fn()))
		case kindHistogram:
			writeHistogram(bw, s)
		}
	}
	return bw.Flush()
}

// seriesName renders family plus optional label body.
func seriesName(family, labels string) string {
	if labels == "" {
		return family
	}
	return family + "{" + labels + "}"
}

// withLabel appends one label pair to an existing (possibly empty)
// label body.
func withLabel(labels, k, v string) string {
	pair := k + `="` + v + `"`
	if labels == "" {
		return pair
	}
	return labels + "," + pair
}

// writeHistogram renders the cumulative bucket lines plus _sum and
// _count. The le label goes after any constant labels.
func writeHistogram(w io.Writer, s *series) {
	h := s.h
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s %d\n",
			seriesName(s.family+"_bucket", withLabel(s.labels, "le", formatFloat(bound))), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s %d\n",
		seriesName(s.family+"_bucket", withLabel(s.labels, "le", "+Inf")), cum)
	fmt.Fprintf(w, "%s %s\n", seriesName(s.family+"_sum", s.labels), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s %d\n", seriesName(s.family+"_count", s.labels), h.count.Load())
}

// escapeHelp escapes backslashes and newlines per the exposition
// format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry in Prometheus text format — mount it at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Snapshot returns every series as a flat name -> value map (histogram
// series expand to _sum and _count). This is the expvar JSON view.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range r.snapshot() {
		name := seriesName(s.family, s.labels)
		switch s.kind {
		case kindCounter:
			out[name] = float64(s.c.Value())
		case kindGauge:
			out[name] = float64(s.g.Value())
		case kindGaugeFunc:
			out[name] = s.fn()
		case kindHistogram:
			out[seriesName(s.family+"_sum", s.labels)] = s.h.Sum()
			out[seriesName(s.family+"_count", s.labels)] = float64(s.h.Count())
		}
	}
	return out
}

var expvarOnce sync.Once

// PublishExpvar exposes the Default registry under the "prosim" expvar
// variable, so GET /debug/vars serves the same counters as /metrics in
// JSON. Safe to call more than once; only the first call publishes
// (expvar panics on duplicate names).
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("prosim", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}
