// Package obs is the runtime telemetry subsystem: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms) with
// Prometheus text and expvar JSON exposition, a structured-logging
// setup helper on log/slog shared by every cmd/ tool, and a
// job-lifecycle tracer emitting NDJSON spans.
//
// The registry is deliberately tiny — no external client library, no
// background goroutines, no metric expiry. Every metric is a fixed
// atomic cell created once (Counter/Gauge/Histogram are get-or-create
// by full name, so concurrent daemons in one process share series
// instead of colliding) and read lock-free on the hot path. The
// simulator's own hot loops are never instrumented directly: the
// layers above it (job engine, daemon, result cache) count work at
// job granularity, and the only in-simulation hook is the low-
// frequency heartbeat in internal/gpu, disabled unless a listener is
// registered.
//
// Metric names follow Prometheus conventions: snake_case families
// with a subsystem prefix (prosimd_, jobs_, resultcache_, sim_) and
// optional constant labels given inline in the name, e.g.
//
//	obs.Counter(`prosimd_http_requests_total{path="/v1/batch"}`, "...")
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric cell.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters
// never go down).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric cell that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds in increasing order; an implicit +Inf bucket always exists.
// Observations are lock-free: one atomic add in the matching bucket
// plus a CAS loop folding the value into the float64 sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefBuckets is the default latency bucket ladder in seconds — the
// same spread the Prometheus client library defaults to, wide enough
// for sub-millisecond cache hits and multi-minute simulations.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 300}

// metricKind tags a registered series for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// series is one registered time series: a family name, optional
// constant labels, and its cell.
type series struct {
	family string // name without labels
	labels string // `k="v",k2="v2"` or ""
	help   string
	kind   metricKind
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// Registry holds named metrics and renders them. The zero value is
// ready to use; most code uses the package-level Default registry.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*series
	order  []string // registration order of full names
}

// Default is the process-wide registry the package-level constructors
// use.
var Default = &Registry{}

// splitName separates an inline-labeled metric name into family and
// label body: `a_total{k="v"}` -> ("a_total", `k="v"`).
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// register returns the existing series for name or creates one via
// make. It panics when name is already registered as a different
// kind — that is a programming error, not a runtime condition.
func (r *Registry) register(name, help string, kind metricKind, mk func() *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName == nil {
		r.byName = make(map[string]*series)
	}
	if s, ok := r.byName[name]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return s
	}
	s := mk()
	s.family, s.labels = splitName(name)
	s.help = help
	s.kind = kind
	r.byName[name] = s
	r.order = append(r.order, name)
	return s
}

// Counter returns the counter registered under name (get-or-create).
// name may carry inline constant labels: `x_total{path="/v1/batch"}`.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, func() *series {
		return &series{c: &Counter{}}
	}).c
}

// Gauge returns the gauge registered under name (get-or-create).
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, func() *series {
		return &series{g: &Gauge{}}
	}).g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Re-registering the same name replaces the function (the latest
// closure wins — a daemon restarted in-process must not read a stale
// engine).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	s := r.register(name, help, kindGaugeFunc, func() *series { return &series{} })
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name
// (get-or-create). buckets are increasing upper bounds; nil means
// DefBuckets. The bucket layout of the first registration wins.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, func() *series {
		if buckets == nil {
			buckets = DefBuckets
		}
		bounds := make([]float64, len(buckets))
		copy(bounds, buckets)
		h := &Histogram{bounds: bounds}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		return &series{h: h}
	}).h
}

// snapshot returns the registered series sorted by family then label
// set, so exposition is deterministic regardless of registration
// order.
func (r *Registry) snapshot() []*series {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*series, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byName[name])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// Package-level constructors on the Default registry (get-or-create,
// like the Registry methods).

// NewCounter returns the Default-registry counter for name.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewGauge returns the Default-registry gauge for name.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewGaugeFunc registers a computed gauge on the Default registry.
func NewGaugeFunc(name, help string, fn func() float64) { Default.GaugeFunc(name, help, fn) }

// NewHistogram returns the Default-registry histogram for name.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.Histogram(name, help, buckets)
}

// Labeled composes a metric name with one inline constant label,
// quoting the value (Prometheus label values may contain anything):
// Labeled("cluster_worker_jobs_total", "worker", addr). Callers with a
// bounded label set use it with the get-or-create constructors to make
// one series per label value.
func Labeled(family, key, value string) string {
	return fmt.Sprintf("%s{%s=%q}", family, key, value)
}
