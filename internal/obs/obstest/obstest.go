// Package obstest holds test helpers for asserting on telemetry
// output. It lives outside package obs so that any package's tests can
// validate a /metrics response (obs's own, the daemon's acceptance
// test) without duplicating the format rules.
package obstest

import (
	"regexp"
	"strings"
	"testing"
)

// promLine matches one sample line of the text exposition format:
// metric name, optional label body, a float value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*")*\})? (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

// ValidatePrometheus fails t on any line that is neither a well-formed
// comment nor a well-formed sample, and checks every sample's family
// has a preceding # TYPE.
func ValidatePrometheus(t testing.TB, text string) {
	t.Helper()
	typed := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("line %d: malformed TYPE: %q", i+1, line)
				continue
			}
			switch f[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: unknown TYPE %q", i+1, f[3])
			}
			typed[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unknown comment %q", i+1, line)
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line %d: malformed sample %q", i+1, line)
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f := strings.TrimSuffix(name, suf); f != name && typed[f] {
				family = f
				break
			}
		}
		if !typed[family] {
			t.Errorf("line %d: sample %q has no # TYPE", i+1, name)
		}
	}
}
