package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerEmitsValidNDJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Span{Event: "submit", Key: "abc", Kernel: "k", Sched: "PRO"})
	tr.Emit(Span{Event: "done", Key: "abc", Kernel: "k", Sched: "PRO",
		Outcome: OutcomeSimulated, DurationMS: Millis(42 * time.Millisecond), SimCycles: 1000})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	var s Span
	if err := json.Unmarshal([]byte(lines[1]), &s); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if s.Event != "done" || s.Outcome != OutcomeSimulated || s.SimCycles != 1000 {
		t.Fatalf("round-trip mangled span: %+v", s)
	}
	if s.TS == "" {
		t.Fatal("tracer did not stamp ts")
	}
	if tr.Spans() != 2 {
		t.Fatalf("Spans() = %d, want 2", tr.Spans())
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	tr.Emit(Span{Event: "done"}) // must not panic
	if tr.Spans() != 0 {
		t.Fatal("nil tracer counted spans")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenTraceWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	tr, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit(Span{Event: "submit", Kernel: "k"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Span
	if err := json.Unmarshal(bytes.TrimSpace(data), &s); err != nil {
		t.Fatalf("trace file not NDJSON: %v", err)
	}
}

func TestTracerConcurrentEmitsStayLineAtomic(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit(Span{Event: "done", Outcome: OutcomeCacheHit})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1600 {
		t.Fatalf("%d lines, want 1600", len(lines))
	}
	for i, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Fatalf("line %d torn by concurrent writers: %q", i+1, l)
		}
	}
}

func TestLogFlagsAndSetup(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	lc := LogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-json"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	l, err := lc.SetupWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("hello", "k", 7)
	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &rec); err != nil {
		t.Fatalf("-log-json line not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["k"] != float64(7) || rec["level"] != "DEBUG" {
		t.Fatalf("record = %v", rec)
	}

	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("unknown level accepted")
	}
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		"warning": slog.LevelWarn, "error": slog.LevelError, "": slog.LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

func TestTextLoggingBelowLevelIsDropped(t *testing.T) {
	var buf bytes.Buffer
	lc := &LogConfig{Level: "warn"}
	l, err := lc.SetupWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering broken: %q", out)
	}
}

func TestDiscardLoggerIsSilent(t *testing.T) {
	Discard().Error("nothing") // must not panic, must not write anywhere visible
}
