package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDebugHandlerServesMetricsVarsAndPprof is the pprof/expvar smoke
// test behind `make obstest`: the debug mux must answer all three
// endpoint groups.
func TestDebugHandlerServesMetricsVarsAndPprof(t *testing.T) {
	Default.Counter("debug_smoke_total", "smoke").Inc()
	srv := httptest.NewServer(DebugHandler(Default))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "debug_smoke_total") {
		t.Fatalf("/metrics: code %d, body %q", code, body)
	}
	code, body := get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: code %d", code)
	}
	var vars struct {
		Prosim map[string]float64 `json:"prosim"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars.Prosim["debug_smoke_total"] < 1 {
		t.Fatalf("expvar view missing registry counter: %v", vars.Prosim)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline: code %d", code)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ index: code %d", code)
	}
}
