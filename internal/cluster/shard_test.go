package cluster

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/jobs"
	"repro/internal/workloads"
	"repro/prosim"
)

// gridBatch builds a realistic multi-kernel batch with a few duplicate
// jobs (equal cache keys) appended, since dedupe happens downstream of
// sharding.
func gridBatch(t *testing.T) []jobs.Job {
	t.Helper()
	var ws []*workloads.Workload
	for _, k := range []string{"aesEncrypt128", "scalarProdGPU", "calculate_temp"} {
		w, err := workloads.ByKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	batch := jobs.Grid(ws, []string{"TL", "LRR", "GTO", "PRO"}, 8, gpu.Options{})
	return append(batch, batch[0], batch[len(batch)-1])
}

func batchKey(t *testing.T, j *jobs.Job) string {
	t.Helper()
	key, ok, err := jobs.Key(j)
	if err != nil || !ok {
		t.Fatalf("job %s/%s has no key: ok=%v err=%v", j.Label(), j.SchedLabel(), ok, err)
	}
	return key
}

// TestShardPartition: for any n, the shards of a batch are disjoint and
// their union is exactly the batch — every job runs on exactly one
// machine.
func TestShardPartition(t *testing.T) {
	batch := gridBatch(t)
	for _, n := range []int{1, 2, 3, 5, 8} {
		seen := make([]int, len(batch))
		total := 0
		for i := 0; i < n; i++ {
			idx, err := ShardIndices(i, n, batch)
			if err != nil {
				t.Fatalf("n=%d shard %d: %v", n, i, err)
			}
			for _, k := range idx {
				seen[k]++
			}
			total += len(idx)

			// Shard must return the same jobs in batch order.
			slice, err := Shard(i, n, batch)
			if err != nil {
				t.Fatalf("n=%d shard %d: %v", n, i, err)
			}
			if len(slice) != len(idx) {
				t.Fatalf("n=%d shard %d: Shard returned %d jobs, ShardIndices %d", n, i, len(slice), len(idx))
			}
			for k, j := range idx {
				if batchKey(t, &slice[k]) != batchKey(t, &batch[j]) {
					t.Fatalf("n=%d shard %d: job %d does not match index %d", n, i, k, j)
				}
			}
		}
		if total != len(batch) {
			t.Fatalf("n=%d: shards cover %d of %d jobs", n, total, len(batch))
		}
		for k, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: job %d appears in %d shards, want exactly 1", n, k, c)
			}
		}
	}
}

// TestShardStability: assignment depends only on (key, n) — reordering
// the batch never moves a job to a different shard, and jobs with equal
// keys always land together.
func TestShardStability(t *testing.T) {
	batch := gridBatch(t)
	const n = 3

	shardByKey := map[string]int{}
	for i := 0; i < n; i++ {
		slice, err := Shard(i, n, batch)
		if err != nil {
			t.Fatal(err)
		}
		for k := range slice {
			key := batchKey(t, &slice[k])
			if prev, ok := shardByKey[key]; ok && prev != i {
				t.Fatalf("equal-key jobs split across shards %d and %d", prev, i)
			}
			shardByKey[key] = i
		}
	}

	// Reverse the batch and check every job keeps its shard.
	rev := make([]jobs.Job, len(batch))
	for k := range batch {
		rev[len(batch)-1-k] = batch[k]
	}
	for i := 0; i < n; i++ {
		slice, err := Shard(i, n, rev)
		if err != nil {
			t.Fatal(err)
		}
		for k := range slice {
			key := batchKey(t, &slice[k])
			if shardByKey[key] != i {
				t.Fatalf("job %s moved from shard %d to %d after reordering", shortKey(key), shardByKey[key], i)
			}
		}
	}
}

// TestShardRejectsAnonymousJobs: a job without a stable identity cannot
// be placed reproducibly.
func TestShardRejectsAnonymousJobs(t *testing.T) {
	w, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	anon := jobs.Job{Launch: w.Launch, Kernel: w.Kernel, Factory: prosim.PRO()}
	if _, err := ShardIndices(0, 2, []jobs.Job{anon}); err == nil {
		t.Fatal("sharding an anonymous-factory job succeeded, want error")
	}
}

func TestParseShard(t *testing.T) {
	i, n, err := ParseShard("2/3")
	if err != nil || i != 1 || n != 3 {
		t.Fatalf("ParseShard(2/3) = %d, %d, %v; want 1, 3, nil", i, n, err)
	}
	for _, bad := range []string{"", "2", "0/3", "4/3", "-1/3", "a/b", "1/0"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) succeeded, want error", bad)
		}
	}
}
