// Package cluster turns N independent prosimd replicas into one sweep
// cluster. The paper's evaluation is an embarrassingly parallel grid
// (schedulers × benchmarks × configs) of deterministic jobs whose
// results are content-addressed (internal/resultcache), which makes
// horizontal scaling almost free — the cluster layer only has to decide
// *where* each job runs and reassemble the batch afterwards:
//
//   - Shard slices an ordered batch into disjoint, stable subsets by
//     result-cache key, so independent machines given `-shard i/n` run
//     non-overlapping work against a shared cache with no coordination
//     at all.
//   - Coordinator actively fans a batch out to a set of prosimd
//     workers: per-worker queues seeded by the same shard math, idle
//     workers stealing from the longest queue, health checks marking
//     lost workers down, and transport failures retried on surviving
//     replicas with capped exponential backoff.
//   - Merge assembles results purely from the result cache, so an
//     interrupted sweep resumes for free (already-cached jobs are never
//     dispatched) and the final suite is bit-identical to a local
//     serial run.
//
// Every placement decision keys off jobs.Key — the exact identity the
// result cache files entries under — so cluster runs, daemon runs and
// local runs all converge on the same cache entries.
package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/jobs"
	"repro/internal/obs"
)

// Cluster telemetry (internal/obs). Process-wide counters; per-worker
// series are created per address via obs.Labeled when a Coordinator is
// built.
var (
	mRetries = obs.NewCounter("cluster_retries_total",
		"job attempts retried on a surviving replica after a worker loss or timeout")
	mSteals = obs.NewCounter("cluster_steals_total",
		"jobs stolen from another worker's queue by an idle worker")
	mLost = obs.NewCounter("cluster_workers_lost_total",
		"workers marked down after transport or health-check failures")
	mMergeHits = obs.NewCounter("cluster_merge_hits_total",
		"jobs assembled from the shared result cache without any dispatch")
	mDispatched = obs.NewCounter("cluster_jobs_dispatched_total",
		"job attempts handed to a worker (retries included)")
)

// ParseShard parses the CLI shard spec "i/n" (1-based, so "-shard 1/3"
// is the first of three slices) into a 0-based shard index and count.
func ParseShard(spec string) (i, n int, err error) {
	a, b, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("cluster: shard spec %q is not i/n", spec)
	}
	i, err = strconv.Atoi(strings.TrimSpace(a))
	if err == nil {
		n, err = strconv.Atoi(strings.TrimSpace(b))
	}
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: shard spec %q is not i/n: %w", spec, err)
	}
	if n < 1 || i < 1 || i > n {
		return 0, 0, fmt.Errorf("cluster: shard spec %q out of range (want 1 <= i <= n)", spec)
	}
	return i - 1, n, nil
}

// shardOf maps a result-cache key to its shard among n. The key is
// already a sha256 hex digest, so its leading 64 bits are uniform — a
// modulo balances shards to within noise without any extra hashing.
// Assignment depends on nothing but (key, n): reordering a batch,
// splitting it differently across processes, or re-running tomorrow all
// land every job on the same shard.
func shardOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := key
	if len(h) > 16 {
		h = h[:16]
	}
	v, err := strconv.ParseUint(h, 16, 64)
	if err != nil {
		// Not a hex key (cannot happen for resultcache keys) — fall back
		// to a FNV-1a over the whole string, still deterministic.
		var f uint64 = 14695981039346656037
		for i := 0; i < len(key); i++ {
			f ^= uint64(key[i])
			f *= 1099511628211
		}
		v = f
	}
	return int(v % uint64(n))
}

// ShardIndices returns the positions of the jobs of shard i of n within
// js, in batch order. Every job of an ordered batch lands in exactly
// one shard, and the assignment is stable: it depends only on the job's
// result-cache key and n, never on the job's position. A job with no
// stable identity (anonymous factory) cannot be sharded — placement
// would not be reproducible — and is an error.
func ShardIndices(i, n int, js []jobs.Job) ([]int, error) {
	if n < 1 || i < 0 || i >= n {
		return nil, fmt.Errorf("cluster: shard %d/%d out of range", i, n)
	}
	var out []int
	for k := range js {
		key, ok, err := jobs.Key(&js[k])
		if err != nil {
			return nil, fmt.Errorf("cluster: job %d (%s/%s): %w", k, js[k].Label(), js[k].SchedLabel(), err)
		}
		if !ok {
			return nil, fmt.Errorf("cluster: job %d (%s/%s) has no stable identity and cannot be sharded",
				k, js[k].Label(), js[k].SchedLabel())
		}
		if shardOf(key, n) == i {
			out = append(out, k)
		}
	}
	return out, nil
}

// Shard returns the subset of js belonging to shard i of n, preserving
// batch order (see ShardIndices for the assignment contract).
func Shard(i, n int, js []jobs.Job) ([]jobs.Job, error) {
	idx, err := ShardIndices(i, n, js)
	if err != nil {
		return nil, err
	}
	out := make([]jobs.Job, len(idx))
	for k, j := range idx {
		out[k] = js[j]
	}
	return out, nil
}

// shortKey abbreviates a 64-hex-char cache key for log lines.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
