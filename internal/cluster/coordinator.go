// The coordinator: active fan-out of one batch across N prosimd
// replicas. One lane goroutine per worker slot pulls job indices off
// per-worker queues (seeded by the shard math for placement stability,
// drained by work-stealing for balance), submits them as single-job
// daemon batches, and on a transport failure marks the worker down and
// reschedules the lost job on a surviving replica after a capped
// exponential backoff. Job-level errors (the simulation itself failed)
// are never retried — replaying a deterministic failure elsewhere
// produces the same failure.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/daemon"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/stats"
)

// Config tunes a Coordinator.
type Config struct {
	// Workers are the prosimd addresses (daemon.NewClient syntax:
	// host:port, unix:/path, or an http:// base). Required.
	Workers []string
	// SlotsPerWorker is the number of concurrent jobs sent to each
	// worker; <= 0 asks each worker for its own slot count via
	// /v1/health (falling back to 1 for unreachable workers).
	SlotsPerWorker int
	// CacheDir, when non-empty, is the result cache shared with the
	// workers: Run merges already-cached jobs from it without any
	// dispatch (free resume) and re-reads dispatched results from it at
	// assembly, so the final batch is built purely from the cache.
	CacheDir string
	// JobTimeout caps one dispatch attempt; an over-budget attempt is
	// retried on another worker. 0 means no cap.
	JobTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per job (first try included);
	// <= 0 means 3.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry, doubling per
	// attempt up to MaxBackoff; defaults 100ms and 5s.
	BaseBackoff, MaxBackoff time.Duration
	// HealthInterval is the per-worker health-check cadence; 0 means 2s,
	// < 0 disables the background checks (losses are then detected only
	// through failed dispatches).
	HealthInterval time.Duration
	// HealthFailLimit is how many consecutive failed health probes mark
	// a worker down; <= 0 means 2.
	HealthFailLimit int
	// SMWorkers, when positive, is stamped onto every dispatched wire
	// job as its intra-simulation SM tick worker count (see
	// daemon.Client.SMWorkers); zero defers to each worker's own
	// -sm-workers policy. Execution knob only — results and cache keys
	// are unaffected.
	SMWorkers int
	// Priority is the scheduling class every dispatched batch carries
	// (daemon.PriorityInteractive or daemon.PriorityBulk); empty means
	// the daemon default (interactive). Sweeps should run bulk so they
	// yield worker slots to interactive lookups.
	Priority string
	// Token authenticates the coordinator to tokened workers
	// (X-Prosim-Token on every request); empty means the default tenant.
	Token string
	// Log, when non-nil, receives worker-loss and retry events.
	Log *slog.Logger
}

// worker is one prosimd replica.
type worker struct {
	id     int
	addr   string
	client *daemon.Client
	slots  int
	// down is sticky within a Run (a lost worker gets no further jobs)
	// but the health loop revives a worker that answers again, so later
	// Runs use it.
	down       atomic.Bool
	dispatched atomic.Int64
	stolen     atomic.Int64
	mJobs      *obs.Counter
	mQueue     *obs.Gauge
}

// Coordinator fans batches out to a fixed set of prosimd workers. It
// implements jobs.Runner, so every harness that takes a local engine or
// a daemon client — experiments.RunSuite, cmd/report, cmd/sweep — can
// transparently run on a cluster. Create with New, release the health
// loops with Close.
type Coordinator struct {
	cfg     Config
	log     *slog.Logger
	cache   *resultcache.Cache
	workers []*worker

	// OnProgress, when non-nil, receives one jobs.Event per completed
	// job of a Run batch (merge hits included, FromCache=true), the same
	// callback shape the local engine uses. Calls are serialized.
	OnProgress func(jobs.Event)

	retries   atomic.Int64
	steals    atomic.Int64
	lost      atomic.Int64
	mergeHits atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	healthWG sync.WaitGroup
}

// Stats is a snapshot of a coordinator's lifetime counters.
type Stats struct {
	Retries     int64
	Steals      int64
	WorkersLost int64
	MergeHits   int64
	Workers     []WorkerStats
}

// WorkerStats describes one worker's share of the lifetime counters.
type WorkerStats struct {
	Addr       string
	Down       bool
	Slots      int
	Dispatched int64
	Stolen     int64
}

// New builds a coordinator and probes every worker once: unreachable
// workers are marked down (with a warning) rather than failing the
// whole cluster — the health loop revives them if they come back. An
// empty worker list is an error.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.HealthFailLimit <= 0 {
		cfg.HealthFailLimit = 2
	}
	log := cfg.Log
	if log == nil {
		log = obs.Discard()
	}
	c := &Coordinator{cfg: cfg, log: log, stop: make(chan struct{})}
	if cfg.CacheDir != "" {
		cache, err := resultcache.Open(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		c.cache = cache
	}
	for id, addr := range cfg.Workers {
		client := daemon.NewClient(addr)
		client.SMWorkers = cfg.SMWorkers
		client.Priority = cfg.Priority
		client.Token = cfg.Token
		w := &worker{
			id:     id,
			addr:   addr,
			client: client,
			slots:  cfg.SlotsPerWorker,
			mJobs:  obs.NewCounter(obs.Labeled("cluster_worker_jobs_total", "worker", addr), "job attempts dispatched to this worker"),
			mQueue: obs.NewGauge(obs.Labeled("cluster_worker_queue_depth", "worker", addr), "jobs queued for this worker"),
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		h, err := w.client.Health(ctx)
		cancel()
		switch {
		case err != nil:
			c.markLost(w, fmt.Errorf("initial probe: %w", err))
		case h.Draining:
			c.markLost(w, fmt.Errorf("initial probe: worker is draining"))
		default:
			if w.slots <= 0 {
				w.slots = h.Workers
			}
		}
		if w.slots <= 0 {
			w.slots = 1
		}
		c.workers = append(c.workers, w)
	}
	if cfg.HealthInterval > 0 {
		for _, w := range c.workers {
			c.healthWG.Add(1)
			go c.healthLoop(w)
		}
	}
	return c, nil
}

// Close stops the background health checks. In-flight Run calls are
// unaffected.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.healthWG.Wait()
}

// Snapshot returns the coordinator's lifetime counters.
func (c *Coordinator) Snapshot() Stats {
	st := Stats{
		Retries:     c.retries.Load(),
		Steals:      c.steals.Load(),
		WorkersLost: c.lost.Load(),
		MergeHits:   c.mergeHits.Load(),
	}
	for _, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStats{
			Addr:       w.addr,
			Down:       w.down.Load(),
			Slots:      w.slots,
			Dispatched: w.dispatched.Load(),
			Stolen:     w.stolen.Load(),
		})
	}
	return st
}

// markLost transitions a worker to down once, counting and logging the
// loss.
func (c *Coordinator) markLost(w *worker, cause error) {
	if w.down.Swap(true) {
		return
	}
	c.lost.Add(1)
	mLost.Inc()
	c.log.Warn("worker lost", "worker", w.addr, "err", cause)
}

// healthLoop probes one worker until Close. A run of HealthFailLimit
// consecutive failures (or a draining report) marks the worker down; a
// healthy answer from a down worker revives it for subsequent Runs.
func (c *Coordinator) healthLoop(w *worker) {
	defer c.healthWG.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	fails := 0
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthInterval)
		h, err := w.client.Health(ctx)
		cancel()
		switch {
		case err != nil:
			fails++
			if fails >= c.cfg.HealthFailLimit {
				c.markLost(w, fmt.Errorf("%d consecutive failed health checks: %w", fails, err))
			}
		case h.Draining:
			fails = 0
			c.markLost(w, fmt.Errorf("worker is draining"))
		default:
			fails = 0
			if w.down.Swap(false) {
				c.log.Info("worker recovered", "worker", w.addr)
			}
		}
	}
}

// runState is the shared mutable state of one Run: per-worker queues,
// completion bookkeeping, and the failure latch. All fields are guarded
// by mu; cond wakes lanes when a queue refills (retry landing) or the
// batch resolves.
type runState struct {
	mu   sync.Mutex
	cond *sync.Cond

	queues    [][]int // per worker id, queued job indices
	active    []bool  // per worker id: lanes running this Run
	attempts  []int   // per job, dispatch attempts so far
	remaining int     // jobs without a final outcome
	failed    error

	// Progress bookkeeping (jobs.Event shape).
	done  int
	hits  int
	start time.Time
}

// fail latches the first batch failure and wakes every lane.
func (st *runState) fail(err error) {
	st.mu.Lock()
	if st.failed == nil {
		st.failed = err
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// Run implements jobs.Runner: merge what the shared cache already has,
// fan the rest out across the live workers with work-stealing and
// retries, and return one result per job in job order. Like the local
// engine, the first definitive job failure fails the batch.
func (c *Coordinator) Run(ctx context.Context, js []jobs.Job) ([]*stats.KernelResult, error) {
	if len(js) == 0 {
		return nil, nil
	}
	keys, err := batchKeys(js)
	if err != nil {
		return nil, err
	}

	st := &runState{
		queues:   make([][]int, len(c.workers)),
		active:   make([]bool, len(c.workers)),
		attempts: make([]int, len(js)),
		start:    time.Now(),
	}
	st.cond = sync.NewCond(&st.mu)
	results := make([]*stats.KernelResult, len(js))

	// Merge pass: anything the shared cache already holds is final —
	// an interrupted sweep resumes here with zero dispatches.
	pending := make([]int, 0, len(js))
	for i := range js {
		if c.cache != nil {
			if r, ok := c.cache.Get(keys[i]); ok {
				results[i] = r
				c.mergeHits.Add(1)
				mMergeHits.Inc()
				c.progress(st, &js[i], true, len(js))
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return results, nil
	}

	// Seed per-worker queues with the same shard math standalone
	// `-shard i/n` runs use, over the live workers only: placement is
	// deterministic for a fixed live set, and stealing rebalances
	// whatever the static split gets wrong.
	live := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		if !w.down.Load() {
			live = append(live, w)
			st.active[w.id] = true
		}
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("cluster: no live workers (of %d configured)", len(c.workers))
	}
	for _, i := range pending {
		w := live[shardOf(keys[i], len(live))]
		st.queues[w.id] = append(st.queues[w.id], i)
	}
	st.remaining = len(pending)
	for _, w := range live {
		w.mQueue.Set(int64(len(st.queues[w.id])))
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for _, w := range live {
		for s := 0; s < w.slots; s++ {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				c.lane(runCtx, st, w, js, keys, results)
			}(w)
		}
	}
	// A context cancel must wake lanes blocked on the cond var.
	ctxDone := make(chan struct{})
	go func() {
		select {
		case <-runCtx.Done():
			st.fail(fmt.Errorf("cluster: %w", context.Cause(runCtx)))
		case <-ctxDone:
		}
	}()
	wg.Wait()
	close(ctxDone)

	st.mu.Lock()
	err = st.failed
	remaining := st.remaining
	st.mu.Unlock()
	if err == nil && ctx.Err() != nil {
		err = fmt.Errorf("cluster: %w", ctx.Err())
	}
	if err == nil && remaining > 0 {
		err = fmt.Errorf("cluster: all workers lost with %d jobs unfinished", remaining)
	}
	if err != nil {
		return nil, err
	}
	// Final assembly: prefer the cache's copy of every dispatched
	// result, so the returned batch is exactly what a later merge-only
	// run would read. Wire results fill in only when the workers do not
	// share this coordinator's cache directory.
	if c.cache != nil {
		for _, i := range pending {
			if r, ok := c.cache.Get(keys[i]); ok {
				results[i] = r
			}
		}
	}
	return results, nil
}

// progress emits one jobs.Event for a finished job under st.mu-free
// accounting (it takes the lock itself).
func (c *Coordinator) progress(st *runState, j *jobs.Job, fromCache bool, total int) {
	st.mu.Lock()
	st.done++
	if fromCache {
		st.hits++
	}
	ev := jobs.Event{
		Kernel:    j.Label(),
		Scheduler: j.SchedLabel(),
		Done:      st.done,
		Total:     total,
		FromCache: fromCache,
		CacheHits: st.hits,
		Elapsed:   time.Since(st.start),
	}
	cb := c.OnProgress
	if cb != nil {
		cb(ev)
	}
	st.mu.Unlock()
}

// next hands the lane of worker w its next job index. It prefers w's
// own queue (front — shard order), then steals from the back of the
// longest other queue (down workers' stranded queues included), and
// otherwise waits: jobs in backoff or in flight on other lanes may yet
// be requeued here. Returns false when the batch is resolved, the lane's
// worker is lost, or the run failed.
func (c *Coordinator) next(st *runState, w *worker) (int, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.failed != nil || st.remaining == 0 || !st.active[w.id] {
			return 0, false
		}
		if q := st.queues[w.id]; len(q) > 0 {
			i := q[0]
			st.queues[w.id] = q[1:]
			w.mQueue.Set(int64(len(st.queues[w.id])))
			return i, true
		}
		// Steal from the longest queue anywhere else. Queues of down
		// workers have no lanes left, so stealing is also how their
		// stranded work drains.
		victim := -1
		for id := range st.queues {
			if id != w.id && len(st.queues[id]) > 0 &&
				(victim < 0 || len(st.queues[id]) > len(st.queues[victim])) {
				victim = id
			}
		}
		if victim >= 0 {
			q := st.queues[victim]
			i := q[len(q)-1]
			st.queues[victim] = q[:len(q)-1]
			c.workers[victim].mQueue.Set(int64(len(st.queues[victim])))
			w.stolen.Add(1)
			c.steals.Add(1)
			mSteals.Inc()
			return i, true
		}
		st.cond.Wait()
	}
}

// lane is one worker slot's dispatch loop.
func (c *Coordinator) lane(ctx context.Context, st *runState, w *worker, js []jobs.Job, keys []string, results []*stats.KernelResult) {
	for {
		i, ok := c.next(st, w)
		if !ok {
			return
		}
		w.dispatched.Add(1)
		w.mJobs.Inc()
		mDispatched.Inc()
		st.mu.Lock()
		st.attempts[i]++
		attempt := st.attempts[i]
		st.mu.Unlock()

		attemptCtx := ctx
		var cancel context.CancelFunc
		if c.cfg.JobTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, c.cfg.JobTimeout)
		}
		rs, err := w.client.Run(attemptCtx, js[i:i+1])
		if cancel != nil {
			cancel()
		}

		if err == nil {
			st.mu.Lock()
			results[i] = rs[0]
			st.remaining--
			if st.remaining == 0 {
				st.cond.Broadcast()
			}
			st.mu.Unlock()
			c.progress(st, &js[i], false, len(js))
			continue
		}
		if ctx.Err() != nil {
			// The batch context ended; the watchdog goroutine latches the
			// failure. Nothing to retry.
			return
		}
		var oe *daemon.OverloadedError
		if errors.As(err, &oe) {
			// The worker refused the batch at admission (429 rate/quota/
			// queue or 503 draining): it is alive and shedding load, not
			// lost. Retry after at least its Retry-After hint, on another
			// replica when one exists, and keep this lane running.
			c.requeue(ctx, st, i, keys[i], attempt, w, oe.RetryAfter, err)
			continue
		}
		var te *daemon.TransportError
		if !errors.As(err, &te) {
			// The job ran and failed — deterministic, so retrying it on
			// another replica reproduces the failure. Fail the batch like
			// the local engine does.
			st.fail(fmt.Errorf("cluster: job %d (%s/%s): %w", i, js[i].Label(), js[i].SchedLabel(), err))
			return
		}
		// Transport-level loss. A per-attempt deadline means the worker
		// is slow, not gone; anything else (connect refused, mid-stream
		// disconnect) marks it down and ends this lane.
		timeout := errors.Is(err, context.DeadlineExceeded)
		if !timeout {
			c.markLost(w, err)
			st.mu.Lock()
			st.active[w.id] = false
			st.cond.Broadcast()
			st.mu.Unlock()
		}
		c.requeue(ctx, st, i, keys[i], attempt, w, 0, err)
		if !timeout {
			return
		}
	}
}

// requeue schedules a failed attempt's retry: after a capped
// exponential backoff (but at least minDelay — an overloaded worker's
// Retry-After hint) the job lands on the live worker with the shortest
// queue (never the one that just failed it, when another exists).
// Exhausted attempts fail the batch.
func (c *Coordinator) requeue(ctx context.Context, st *runState, i int, key string, attempt int, failed *worker, minDelay time.Duration, cause error) {
	if attempt >= c.cfg.MaxAttempts {
		st.fail(fmt.Errorf("cluster: job %d gave out after %d attempts: %w", i, attempt, cause))
		return
	}
	delay := c.cfg.BaseBackoff << (attempt - 1)
	if delay > c.cfg.MaxBackoff || delay <= 0 {
		delay = c.cfg.MaxBackoff
	}
	if delay < minDelay {
		delay = minDelay
	}
	c.retries.Add(1)
	mRetries.Inc()
	c.log.Warn("retrying job on a surviving replica",
		"job", i, "key", shortKey(key), "failed_worker", failed.addr,
		"attempt", attempt, "backoff", delay.String(), "err", cause)
	go func() {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			// The watchdog latches the context failure; just stop.
			return
		}
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.failed != nil {
			return
		}
		target := -1
		for id, ok := range st.active {
			if !ok || c.workers[id] == failed {
				continue
			}
			if target < 0 || len(st.queues[id]) < len(st.queues[target]) {
				target = id
			}
		}
		if target < 0 && st.active[failed.id] {
			target = failed.id // timeout case: the slow worker is all we have
		}
		if target < 0 {
			st.failed = fmt.Errorf("cluster: no live workers left to retry job %d: %w", i, cause)
			st.cond.Broadcast()
			return
		}
		st.queues[target] = append(st.queues[target], i)
		c.workers[target].mQueue.Set(int64(len(st.queues[target])))
		st.cond.Broadcast()
	}()
}
