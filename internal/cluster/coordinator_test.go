package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/jobs"
	"repro/internal/stats"
)

// testCluster starts n in-process prosimd daemons sharing one result
// cache directory and returns their addresses plus the servers (so a
// test can kill one).
func testCluster(t *testing.T, n int, cacheDir string) (addrs []string, srvs []*httptest.Server) {
	t.Helper()
	for i := 0; i < n; i++ {
		d, err := daemon.New(daemon.Config{Workers: 2, CacheDir: cacheDir})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(d.Handler())
		t.Cleanup(srv.Close)
		addrs = append(addrs, srv.URL)
		srvs = append(srvs, srv)
	}
	return addrs, srvs
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestClusterSurvivesWorkerLossAndMatchesSerial is the subsystem's
// acceptance test: a batch fanned across three workers completes after
// one of them dies with jobs queued (its work retried on the
// survivors), the assembled results are byte-identical to a serial
// single-process run, and a fresh coordinator re-running the same batch
// dispatches nothing — full merge from the shared cache.
func TestClusterSurvivesWorkerLossAndMatchesSerial(t *testing.T) {
	cacheDir := t.TempDir()
	addrs, srvs := testCluster(t, 3, cacheDir)
	batch := gridBatch(t)

	// The serial reference run (its own cache-less engine).
	eng, err := jobs.New(1, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Run(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}

	coord, err := New(Config{
		Workers:        addrs,
		CacheDir:       cacheDir,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		HealthInterval: -1, // losses detected through failed dispatches
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Kill the worker that owns the first job's shard (it necessarily
	// has work queued) after the healthy New probe — its lanes fail
	// their dispatches while the batch is in flight, and the survivors
	// absorb the stranded queue.
	keys, err := batchKeys(batch)
	if err != nil {
		t.Fatal(err)
	}
	victim := shardOf(keys[0], len(addrs))
	srvs[victim].CloseClientConnections()
	srvs[victim].Close()

	retriesBefore := mRetries.Value()
	got, err := coord.Run(context.Background(), batch)
	if err != nil {
		t.Fatalf("cluster run with a dead worker: %v", err)
	}
	compareResults(t, want, got, "cluster vs serial")

	st := coord.Snapshot()
	if st.Retries < 1 {
		t.Fatalf("worker loss triggered %d retries, want >= 1", st.Retries)
	}
	if mRetries.Value() <= retriesBefore {
		t.Fatal("cluster_retries_total did not advance on worker loss")
	}
	if !st.Workers[victim].Down {
		t.Fatalf("killed worker %s not marked down", addrs[victim])
	}
	if st.Workers[victim].Dispatched < 1 {
		t.Fatalf("victim recorded %d dispatches, want >= 1 (the failed attempts)", st.Workers[victim].Dispatched)
	}

	// A fresh coordinator over the survivors re-runs the batch without a
	// single dispatch: every job merges from the shared cache.
	survivors := append([]string{}, addrs[:victim]...)
	survivors = append(survivors, addrs[victim+1:]...)
	coord2, err := New(Config{Workers: survivors, CacheDir: cacheDir, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	got2, err := coord2.Run(context.Background(), batch)
	if err != nil {
		t.Fatalf("merge-only re-run: %v", err)
	}
	compareResults(t, want, got2, "merge-only re-run vs serial")
	st2 := coord2.Snapshot()
	if st2.MergeHits != int64(len(batch)) {
		t.Fatalf("re-run merged %d of %d jobs from cache", st2.MergeHits, len(batch))
	}
	for _, w := range st2.Workers {
		if w.Dispatched != 0 {
			t.Fatalf("re-run dispatched %d jobs to %s, want 0 (full merge)", w.Dispatched, w.Addr)
		}
	}
}

// TestCoordinatorProgressEvents: every job of a batch produces exactly
// one progress event, and merge hits are flagged FromCache.
func TestCoordinatorProgressEvents(t *testing.T) {
	cacheDir := t.TempDir()
	addrs, _ := testCluster(t, 2, cacheDir)
	batch := gridBatch(t)

	coord, err := New(Config{Workers: addrs, CacheDir: cacheDir, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	var events, cached int
	coord.OnProgress = func(ev jobs.Event) {
		events++
		if ev.FromCache {
			cached++
		}
	}
	if _, err := coord.Run(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if events != len(batch) {
		t.Fatalf("first run emitted %d events for %d jobs", events, len(batch))
	}

	events, cached = 0, 0
	if _, err := coord.Run(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if events != len(batch) || cached != len(batch) {
		t.Fatalf("warm run emitted %d events (%d cached) for %d jobs", events, cached, len(batch))
	}
}

func compareResults(t *testing.T, want, got []*stats.KernelResult, what string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results vs %d", what, len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(mustJSON(t, want[i]), mustJSON(t, got[i])) {
			t.Fatalf("%s: result %d differs", what, i)
		}
	}
}
