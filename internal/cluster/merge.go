// The merge pass: batch assembly purely from the result cache. Workers
// write every simulated result into the shared content-addressed cache,
// so the authoritative way to collect a sweep is not to trust whatever
// crossed the wire but to look each job's key up again — an interrupted
// coordinator re-run then dispatches only what is genuinely missing,
// and a completed sweep assembles with zero simulations anywhere.
package cluster

import (
	"fmt"

	"repro/internal/jobs"
	"repro/internal/resultcache"
	"repro/internal/stats"
)

// Merge assembles one result per job purely from the result cache.
// results[k] is nil exactly for the jobs whose keys are absent; their
// positions are returned in missing (batch order). An unshardable job
// (no stable identity) is an error — it can never be merged from a
// cache.
func Merge(cache *resultcache.Cache, js []jobs.Job) (results []*stats.KernelResult, missing []int, err error) {
	keys, err := batchKeys(js)
	if err != nil {
		return nil, nil, err
	}
	results = make([]*stats.KernelResult, len(js))
	for k := range js {
		if r, ok := cache.Get(keys[k]); ok {
			results[k] = r
			mMergeHits.Inc()
		} else {
			missing = append(missing, k)
		}
	}
	return results, missing, nil
}

// batchKeys computes the result-cache key of every job, failing on jobs
// without a stable identity.
func batchKeys(js []jobs.Job) ([]string, error) {
	keys := make([]string, len(js))
	for k := range js {
		key, ok, err := jobs.Key(&js[k])
		if err != nil {
			return nil, fmt.Errorf("cluster: job %d (%s/%s): %w", k, js[k].Label(), js[k].SchedLabel(), err)
		}
		if !ok {
			return nil, fmt.Errorf("cluster: job %d (%s/%s) has no stable identity",
				k, js[k].Label(), js[k].SchedLabel())
		}
		keys[k] = key
	}
	return keys, nil
}
