// Package config defines the hardware configuration of the simulated GPU.
//
// The default configuration, GTX480, mirrors Table I of the paper
// (an NVIDIA Fermi-class part as configured in GPGPU-Sim 3.2.2):
// 14 SMs, at most 8 thread blocks and 1536 threads per SM, 48KB shared
// memory, 16KB L1 data cache, 768KB shared L2, 32768 registers per SM,
// two warp schedulers per SM and an FR-FCFS DRAM scheduler.
package config

import (
	"errors"
	"fmt"
)

// WarpSize is the number of threads in a warp. All NVIDIA architectures
// the paper discusses use 32; the simulator assumes it in several packed
// bitmask representations (uint32 active masks), so it is a constant
// rather than a configuration field.
const WarpSize = 32

// Config describes one simulated GPU. Zero values are invalid; construct
// via GTX480 (or copy and modify) and call Validate before use.
type Config struct {
	// --- Core/SM organization (Table I) ---

	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// MaxTBsPerSM is the maximum number of resident thread blocks per SM.
	MaxTBsPerSM int
	// MaxThreadsPerSM is the maximum number of resident threads per SM.
	MaxThreadsPerSM int
	// SharedMemPerSM is the shared-memory capacity per SM in bytes.
	SharedMemPerSM int
	// RegistersPerSM is the number of 4-byte registers per SM.
	RegistersPerSM int
	// SchedulersPerSM is the number of warp schedulers per SM. Warps are
	// statically partitioned between schedulers by warp-slot parity, as on
	// Fermi (paper footnote 4).
	SchedulersPerSM int

	// --- Execution latencies (in core cycles) ---

	// ALULatency is the result latency of simple integer/float pipeline ops.
	ALULatency int
	// SFULatency is the result latency of special-function ops
	// (rcp, sqrt, sin, ...).
	SFULatency int
	// SharedLatency is the result latency of a conflict-free shared-memory
	// access. Bank conflicts serialize in WarpSize-bank groups and add
	// SharedConflictPenalty cycles per extra bank pass.
	SharedLatency int
	// SharedConflictPenalty is the additional latency per serialized
	// shared-memory bank pass beyond the first.
	SharedConflictPenalty int
	// ConstLatency is the latency of a constant-cache hit (constant memory
	// is modeled as always hitting; constants are broadcast).
	ConstLatency int

	// --- Execution unit structure ---

	// SFUQueueDepth is the number of in-flight warp instructions the SFU
	// pipeline accepts before back-pressuring (pipeline stall).
	SFUQueueDepth int
	// MemQueueDepth is the number of in-flight warp memory instructions the
	// LD/ST unit accepts before back-pressuring.
	MemQueueDepth int
	// SharedBanks is the number of shared-memory banks.
	SharedBanks int

	// --- L1 data cache (per SM) ---

	L1Size   int // bytes
	L1Assoc  int
	L1Line   int // bytes; also the coalescing granularity
	L1MSHRs  int // miss-status holding registers
	L1Merges int // max requests merged per MSHR entry
	// L1HitLatency is the load-to-use latency of an L1 hit in core cycles.
	L1HitLatency int
	// StoreBufferPerSM caps outstanding global stores per SM; a full
	// buffer back-pressures the LD/ST unit (pipeline stall).
	StoreBufferPerSM int

	// --- L2 cache (shared, partitioned) ---

	L2Size       int // total bytes across partitions
	L2Assoc      int
	L2Partitions int // address-interleaved partitions (memory channels)
	L2HitLatency int // core cycles from L2 lookup to data at L2 boundary

	// --- Interconnect ---

	// IcntLatency is the one-way SM<->L2 latency in cycles.
	IcntLatency int
	// IcntBytesPerCycle is the per-direction, per-SM-port bandwidth.
	IcntBytesPerCycle int

	// --- DRAM (per partition/channel) ---

	DRAMBanksPerChannel int
	// DRAMRowHit is the service time of a row-buffer hit, in core cycles.
	DRAMRowHit int
	// DRAMRowMiss is the service time of a row activate+access (precharge
	// folded in), in core cycles.
	DRAMRowMiss int
	// DRAMRowBytes is the size of an open row in bytes.
	DRAMRowBytes int
	// DRAMQueueDepth is the per-channel request-queue capacity.
	DRAMQueueDepth int

	// --- Instruction supply ---

	// IBufferEntries is the number of decoded instructions buffered per
	// warp. Refill takes IFetchLatency cycles and models the fetch/decode
	// front end; an empty i-buffer makes the warp invalid for issue
	// (an Idle-stall contributor, as in GPGPU-Sim).
	IBufferEntries int
	IFetchLatency  int

	// --- Optional instruction cache (disabled when ICacheSize == 0) ---
	//
	// When enabled, each i-buffer refill probes a per-SM instruction
	// cache at the warp's current PC; a miss adds ICacheMissLatency to
	// the refill (another Idle source, as in GPGPU-Sim). ICacheLineInstrs
	// instructions share a cache line.
	ICacheSize        int // bytes; 0 disables the model
	ICacheAssoc       int
	ICacheLineInstrs  int
	ICacheMissLatency int

	// --- Simulation-speed switches ---
	//
	// These force the engine's naive per-cycle paths for differential
	// testing. They cannot change any observable result — the fast paths
	// are bit-identical by construction (see DESIGN.md, "Performance
	// notes") — so they are excluded from result-cache keys.

	// DisableOrderCache rebuilds every scheduler slot's warp order each
	// cycle instead of reusing the generation-tagged cached order.
	DisableOrderCache bool `json:"-"`
	// DisableCycleSkip ticks fully-stalled SMs cycle by cycle instead of
	// fast-forwarding their stall accounting to the next wake-up event.
	DisableCycleSkip bool `json:"-"`
	// DisableFastForward makes the top-level clock loop increment cycle
	// by cycle even when every component (SMs, timing wheel, DRAM queues)
	// reports no work before a known future horizon, instead of jumping
	// straight to the minimum NextEvent cycle.
	DisableFastForward bool `json:"-"`
	// DisableWarpPooling allocates fresh warp/thread-block objects on
	// every TB assignment instead of recycling retired ones.
	DisableWarpPooling bool `json:"-"`

	// ParallelSMs selects how many worker goroutines tick SMs inside one
	// simulation (two-phase commit: parallel SM ticks staging their
	// memory-system and wheel side effects into per-SM lanes, then a
	// serial drain in SM-ID order — see DESIGN.md, "Parallel SM
	// ticking"). 0 picks min(NumSMs, GOMAXPROCS) automatically, 1 forces
	// the serial loop, and N>1 uses exactly N workers regardless of core
	// count. Like the Disable* switches it cannot change any observable
	// result, so it is excluded from result-cache keys.
	ParallelSMs int `json:"-"`
	// DisableSMParallel forces the serial SM tick loop regardless of
	// ParallelSMs (differential-testing kill switch).
	DisableSMParallel bool `json:"-"`
	// DisableCommitBatch makes the staged-lane drain commit wheel
	// schedules one append at a time instead of batching consecutive
	// same-cycle runs into a single bucket copy, and acquire request
	// carriers op by op instead of in one pre-pop pass (differential
	// kill switch for the batched commit, DESIGN.md §12.5).
	DisableCommitBatch bool `json:"-"`
	// DisableMemsysParallel keeps the DRAM channel arbitration scan at
	// its serial position in the clock loop instead of overlapping it
	// with the parallel SM tick phase (staged grants, committed in
	// channel order at the phase barrier — DESIGN.md §12.5).
	DisableMemsysParallel bool `json:"-"`
	// DisableAdaptiveFanout pins the fixed fan-out gate (fan out
	// whenever at least two SMs are awake) instead of the measured
	// serial-vs-parallel controller. Differential tests set it to
	// guarantee staged-path coverage regardless of host timing; like
	// every switch above it cannot change results, only wall-clock.
	DisableAdaptiveFanout bool `json:"-"`
}

// GTX480 returns the configuration from Table I of the paper.
func GTX480() *Config {
	return &Config{
		NumSMs:          14,
		MaxTBsPerSM:     8,
		MaxThreadsPerSM: 1536,
		SharedMemPerSM:  48 * 1024,
		RegistersPerSM:  32768,
		SchedulersPerSM: 2,

		ALULatency:            10,
		SFULatency:            20,
		SharedLatency:         24,
		SharedConflictPenalty: 2,
		ConstLatency:          10,

		SFUQueueDepth: 8,
		MemQueueDepth: 8,
		SharedBanks:   32,

		L1Size:           16 * 1024,
		L1Assoc:          4,
		L1Line:           128,
		L1MSHRs:          32,
		L1Merges:         8,
		L1HitLatency:     40,
		StoreBufferPerSM: 16,

		L2Size:       768 * 1024,
		L2Assoc:      8,
		L2Partitions: 6,
		L2HitLatency: 120,

		IcntLatency:       24,
		IcntBytesPerCycle: 32,

		DRAMBanksPerChannel: 8,
		DRAMRowHit:          40,
		DRAMRowMiss:         100,
		DRAMRowBytes:        2048,
		DRAMQueueDepth:      32,

		IBufferEntries: 2,
		IFetchLatency:  4,
	}
}

// MaxWarpsPerSM returns the warp-slot capacity of one SM.
func (c *Config) MaxWarpsPerSM() int { return c.MaxThreadsPerSM / WarpSize }

// Validate checks internal consistency and returns a descriptive error for
// the first problem found.
func (c *Config) Validate() error {
	type check struct {
		ok  bool
		msg string
	}
	checks := []check{
		{c.NumSMs > 0, "NumSMs must be positive"},
		{c.MaxTBsPerSM > 0, "MaxTBsPerSM must be positive"},
		{c.MaxThreadsPerSM >= WarpSize, "MaxThreadsPerSM must hold at least one warp"},
		{c.MaxThreadsPerSM%WarpSize == 0, "MaxThreadsPerSM must be a multiple of the warp size"},
		{c.SchedulersPerSM > 0, "SchedulersPerSM must be positive"},
		{c.SharedMemPerSM >= 0, "SharedMemPerSM must be non-negative"},
		{c.RegistersPerSM > 0, "RegistersPerSM must be positive"},
		{c.ALULatency > 0, "ALULatency must be positive"},
		{c.SFULatency > 0, "SFULatency must be positive"},
		{c.SharedLatency > 0, "SharedLatency must be positive"},
		{c.ConstLatency > 0, "ConstLatency must be positive"},
		{c.SFUQueueDepth > 0, "SFUQueueDepth must be positive"},
		{c.MemQueueDepth > 0, "MemQueueDepth must be positive"},
		{c.SharedBanks > 0, "SharedBanks must be positive"},
		{c.L1Size > 0 && c.L1Assoc > 0 && c.L1Line > 0, "L1 geometry must be positive"},
		{c.L1Line&(c.L1Line-1) == 0, "L1Line must be a power of two"},
		{c.L1Size%(c.L1Assoc*c.L1Line) == 0, "L1Size must be divisible by L1Assoc*L1Line"},
		{isPow2(c.L1Size / max(1, c.L1Assoc*c.L1Line)), "L1 set count must be a power of two"},
		{c.L1MSHRs > 0 && c.L1Merges > 0, "L1 MSHR geometry must be positive"},
		{c.L1HitLatency > 0, "L1HitLatency must be positive"},
		{c.StoreBufferPerSM > 0, "StoreBufferPerSM must be positive"},
		{c.L2Size > 0 && c.L2Assoc > 0, "L2 geometry must be positive"},
		{c.L2Partitions > 0, "L2Partitions must be positive"},
		{c.L2Size%c.L2Partitions == 0, "L2Size must divide evenly across partitions"},
		{(c.L2Size/c.L2Partitions)%(c.L2Assoc*c.L1Line) == 0, "L2 partition size must be divisible by L2Assoc*L1Line"},
		{isPow2(c.L2Size / max(1, c.L2Partitions*c.L2Assoc*c.L1Line)), "L2 partition set count must be a power of two"},
		{c.L2HitLatency > 0, "L2HitLatency must be positive"},
		{c.IcntLatency >= 0, "IcntLatency must be non-negative"},
		{c.IcntBytesPerCycle > 0, "IcntBytesPerCycle must be positive"},
		{c.DRAMBanksPerChannel > 0, "DRAMBanksPerChannel must be positive"},
		{c.DRAMRowHit > 0, "DRAMRowHit must be positive"},
		{c.DRAMRowMiss >= c.DRAMRowHit, "DRAMRowMiss must be at least DRAMRowHit"},
		{c.DRAMRowBytes >= c.L1Line, "DRAMRowBytes must be at least one cache line"},
		{c.DRAMRowBytes&(c.DRAMRowBytes-1) == 0, "DRAMRowBytes must be a power of two"},
		{c.DRAMQueueDepth > 0, "DRAMQueueDepth must be positive"},
		{c.IBufferEntries > 0, "IBufferEntries must be positive"},
		{c.IFetchLatency >= 0, "IFetchLatency must be non-negative"},
		{c.ICacheSize == 0 || (c.ICacheAssoc > 0 && c.ICacheLineInstrs > 0 && c.ICacheMissLatency > 0),
			"enabled ICache needs positive assoc, line and miss latency"},
		{c.ParallelSMs >= 0, "ParallelSMs must be non-negative"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return errors.New("config: " + ch.msg)
		}
	}
	if c.MaxWarpsPerSM()%c.SchedulersPerSM != 0 {
		return fmt.Errorf("config: warp slots (%d) must divide evenly among %d schedulers",
			c.MaxWarpsPerSM(), c.SchedulersPerSM)
	}
	return nil
}

// isPow2 reports whether n is a positive power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Clone returns a deep copy (Config has no reference fields, so a value
// copy suffices; Clone exists so callers do not depend on that detail).
func (c *Config) Clone() *Config {
	dup := *c
	return &dup
}
