package config

import (
	"strings"
	"testing"
)

func TestGTX480MatchesTableI(t *testing.T) {
	c := GTX480()
	if err := c.Validate(); err != nil {
		t.Fatalf("GTX480 config invalid: %v", err)
	}
	// Table I of the paper.
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"NumSMs", c.NumSMs, 14},
		{"MaxTBsPerSM", c.MaxTBsPerSM, 8},
		{"MaxThreadsPerSM", c.MaxThreadsPerSM, 1536},
		{"SharedMemPerSM", c.SharedMemPerSM, 48 * 1024},
		{"L1Size", c.L1Size, 16 * 1024},
		{"L2Size", c.L2Size, 768 * 1024},
		{"RegistersPerSM", c.RegistersPerSM, 32768},
		{"SchedulersPerSM", c.SchedulersPerSM, 2},
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			t.Errorf("%s = %d, want %d (Table I)", ch.name, ch.got, ch.want)
		}
	}
	if got := c.MaxWarpsPerSM(); got != 48 {
		t.Errorf("MaxWarpsPerSM = %d, want 48 (Fermi)", got)
	}
}

func TestValidateCatchesEachBrokenField(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Config)
		frag   string
	}{
		{"zero SMs", func(c *Config) { c.NumSMs = 0 }, "NumSMs"},
		{"zero TBs", func(c *Config) { c.MaxTBsPerSM = 0 }, "MaxTBsPerSM"},
		{"tiny threads", func(c *Config) { c.MaxThreadsPerSM = 16 }, "warp"},
		{"unaligned threads", func(c *Config) { c.MaxThreadsPerSM = 1537 }, "multiple"},
		{"zero schedulers", func(c *Config) { c.SchedulersPerSM = 0 }, "SchedulersPerSM"},
		{"negative smem", func(c *Config) { c.SharedMemPerSM = -1 }, "SharedMemPerSM"},
		{"zero regs", func(c *Config) { c.RegistersPerSM = 0 }, "RegistersPerSM"},
		{"zero alu", func(c *Config) { c.ALULatency = 0 }, "ALULatency"},
		{"non-pow2 line", func(c *Config) { c.L1Line = 96 }, "power of two"},
		{"odd L1", func(c *Config) { c.L1Size = 1000 }, "divisible"},
		{"zero mshr", func(c *Config) { c.L1MSHRs = 0 }, "MSHR"},
		{"zero hitlat", func(c *Config) { c.L1HitLatency = 0 }, "L1HitLatency"},
		{"zero storebuf", func(c *Config) { c.StoreBufferPerSM = 0 }, "StoreBufferPerSM"},
		{"odd parts", func(c *Config) { c.L2Partitions = 7 }, "partition"},
		{"row miss lt hit", func(c *Config) { c.DRAMRowMiss = c.DRAMRowHit - 1 }, "DRAMRowMiss"},
		{"small row", func(c *Config) { c.DRAMRowBytes = 64 }, "DRAMRowBytes"},
		{"zero ibuf", func(c *Config) { c.IBufferEntries = 0 }, "IBufferEntries"},
		{"warps not divisible", func(c *Config) { c.SchedulersPerSM = 5 }, "schedulers"},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := GTX480()
			m.mutate(c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("Validate accepted broken config (%s)", m.name)
			}
			if !strings.Contains(err.Error(), m.frag) {
				t.Errorf("error %q does not mention %q", err, m.frag)
			}
		})
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := GTX480()
	b := a.Clone()
	b.NumSMs = 99
	if a.NumSMs == 99 {
		t.Fatal("Clone shares state with the original")
	}
}
