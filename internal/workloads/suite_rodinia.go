package workloads

import "repro/internal/isa"

// rodiniaSuite builds the six Rodinia kernels of Table II.
func rodiniaSuite() []*Workload {
	return []*Workload{
		backpropLayerforward(), backpropAdjustWeights(),
		btreeFindRangeK(), btreeFindK(),
		hotspot(), pathfinder(),
	}
}

// backpropLayerforward models bpnn_layerforward: stage inputs in shared
// memory, then a barrier-separated tree reduction over the 16×16 block
// with power-of-two strided shared accesses.
func backpropLayerforward() *Workload {
	b := isa.NewBuilder("bpnn_layerforward")
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatStrided, Stride: 64, Space: 1})
	b.FMul(3, 1, 2)
	b.StShared(3, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.Bar()
	for step := 0; step < 4; step++ {
		b.LdShared(4, isa.MemSpec{Pattern: isa.PatStrided, Stride: 8 << step})
		b.FAdd(3, 3, 4)
		b.StShared(3, isa.MemSpec{Pattern: isa.PatCoalesced})
		b.Bar()
	}
	b.FFMA(5, 3, 1, 2)
	b.StGlobal(5, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 2})
	b.Exit()
	return mk("backprop", "bpnn_layerforward", SuiteRodinia, 4096, 8, 256, 16, 2*1024, b.MustBuild(),
		"shared-memory tree reduction; 5 barriers; strided bank pressure")
}

// backpropAdjustWeights models bpnn_adjust_weights_cuda: a barrier-free
// read-modify-write sweep over the weight matrix, bandwidth-bound.
func backpropAdjustWeights() *Workload {
	b := isa.NewBuilder("bpnn_adjust_weights_cuda")
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.FFMA(3, 1, 2, 3)
	b.StGlobal(3, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.LdGlobal(4, isa.MemSpec{Pattern: isa.PatStrided, Stride: 68, Space: 2})
	b.FFMA(5, 4, 1, 2)
	b.FAdd(5, 5, 3)
	b.StGlobal(5, isa.MemSpec{Pattern: isa.PatStrided, Stride: 68, Space: 2})
	b.Exit()
	return mk("backprop", "bpnn_adjust_weights_cuda", SuiteRodinia, 4096, 8, 256, 20, 0, b.MustBuild(),
		"bandwidth-bound weight update; mixed coalesced and strided traffic")
}

// btreeTraversal is the common b+tree shape: a level-by-level descent
// with block-local irregular node fetches and divergent key comparisons.
// Per-warp depth imbalance makes warps of a TB finish far apart — the
// finishWait scenario PRO targets.
func btreeTraversal(kernel string, paperTBs, scale, extraLoads int) *Workload {
	b := isa.NewBuilder(kernel)
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.Loop(isa.LoopSpec{Min: 4, Max: 8, Imb: isa.ImbPerWarp})
	{
		b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatTBLocal, Region: 512 << 10, Space: 1, IterVaries: true})
		for i := 0; i < extraLoads; i++ {
			b.LdGlobal(3, isa.MemSpec{Pattern: isa.PatTBLocal, Region: 512 << 10, Space: 2, IterVaries: true})
			b.IAdd(4, 2, 3)
		}
		b.IfRandom(0.5)
		{
			b.IAdd(1, 1, 2)
		}
		b.EndIf()
		b.IMul(5, 1, 2)
	}
	b.EndLoop()
	b.StGlobal(5, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 3})
	b.Exit()
	return mk("b+tree", kernel, SuiteRodinia, paperTBs, scale, 256, 16, 0, b.MustBuild(),
		"tree descent; irregular node fetches; per-warp depth imbalance")
}

func btreeFindRangeK() *Workload { return btreeTraversal("findRageK", 6000, 24, 1) }
func btreeFindK() *Workload      { return btreeTraversal("findK", 10000, 40, 0) }

// hotspot models calculate_temp: an iterative in-shared-memory stencil
// with border-lane divergence and two barriers per pyramid iteration.
func hotspot() *Workload {
	b := isa.NewBuilder("calculate_temp")
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.StShared(1, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.Bar()
	b.Loop(isa.LoopSpec{Min: 6, Max: 6})
	{
		b.IfLaneLess(28)
		{
			b.LdShared(3, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
			b.LdShared(4, isa.MemSpec{Pattern: isa.PatStrided, Stride: 68, IterVaries: true})
			b.FFMA(5, 3, 4, 2)
			b.FFMA(6, 5, 3, 4)
			b.FFMA(7, 6, 2, 5)
		}
		b.EndIf()
		b.Bar()
		b.StShared(7, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
		b.Bar()
	}
	b.EndLoop()
	b.StGlobal(7, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 2})
	b.Exit()
	return mk("hotspot", "calculate_temp", SuiteRodinia, 1849, 4, 256, 24, 3*1024, b.MustBuild(),
		"pyramid stencil; 13 barriers; border-lane divergence")
}

// pathfinder models dynproc_kernel: a shorter iterative wavefront with a
// barrier per row and edge-lane divergence.
func pathfinder() *Workload {
	b := isa.NewBuilder("dynproc_kernel")
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.StShared(1, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.Bar()
	b.Loop(isa.LoopSpec{Min: 5, Max: 5})
	{
		b.IfLaneLess(30)
		{
			b.LdShared(2, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
			b.LdShared(3, isa.MemSpec{Pattern: isa.PatStrided, Stride: 8, IterVaries: true})
			b.IAdd(4, 2, 3)
			b.FAdd(5, 4, 1)
		}
		b.EndIf()
		b.Bar()
		b.StShared(5, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
		b.Bar()
	}
	b.EndLoop()
	b.LdGlobal(6, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1, IterVaries: true})
	b.FAdd(7, 5, 6)
	b.StGlobal(7, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 2})
	b.Exit()
	return mk("pathfinder", "dynproc_kernel", SuiteRodinia, 463, 1, 256, 16, 2*1024, b.MustBuild(),
		"dynamic-programming wavefront; 11 barriers; edge-lane divergence")
}
