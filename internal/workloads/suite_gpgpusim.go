package workloads

import "repro/internal/isa"

// gpgpusimSuite builds the first ten Table II kernels (GPGPU-SIM suite).
func gpgpusimSuite() []*Workload {
	return []*Workload{
		aes(), bfs(), cp(), lps(),
		nnLayer("executeFirstLayer", 168, 1, 25, 25),
		nnLayer("executeSecondLayer", 1400, 4, 50, 50),
		nnLayer("executeThirdLayer", 2800, 8, 30, 30),
		nnFourthLayer(),
		ray(), sto(),
	}
}

// aes models aesEncrypt128: T-box tables staged in shared memory behind a
// barrier, ten rounds of conflict-prone shared-memory lookups and integer
// mixing, with one coalesced state load/store pair.
func aes() *Workload {
	b := isa.NewBuilder("aesEncrypt128")
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.StShared(1, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.StShared(2, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.Bar()
	b.Loop(isa.LoopSpec{Min: 10, Max: 10})
	{
		b.LdShared(3, isa.MemSpec{Pattern: isa.PatRandom, Region: 4096, IterVaries: true})
		b.LdShared(4, isa.MemSpec{Pattern: isa.PatRandom, Region: 4096, IterVaries: true})
		b.LdShared(5, isa.MemSpec{Pattern: isa.PatRandom, Region: 4096, IterVaries: true})
		b.LdShared(6, isa.MemSpec{Pattern: isa.PatRandom, Region: 4096, IterVaries: true})
		b.IAdd(7, 3, 4)
		b.IAdd(8, 5, 6)
		b.IMul(9, 7, 8)
		b.IAdd(10, 9, 1)
		b.IAdd(11, 10, 2)
		b.IAdd(1, 11, 7)
	}
	b.EndLoop()
	b.StGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 2})
	b.Exit()
	return mk("AES", "aesEncrypt128", SuiteGPGPUSim, 257, 1, 256, 20, 8*1024, b.MustBuild(),
		"shared-memory T-box rounds; one barrier; coalesced state I/O")
}

// bfs models the BFS kernel: one coalesced frontier read, then a
// data-dependent visit — irregular neighbor loads with per-thread
// divergence and no barriers, finishing at widely different times.
func bfs() *Workload {
	b := isa.NewBuilder("kernel")
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.IAdd(2, 1, 0)
	b.IfRandom(0.4)
	{
		b.Loop(isa.LoopSpec{Min: 2, Max: 8, Imb: isa.ImbPerThread})
		{
			b.LdGlobal(3, isa.MemSpec{Pattern: isa.PatRandom, Region: 8 << 20, Space: 1, IterVaries: true})
			b.IAdd(2, 2, 3)
		}
		b.EndLoop()
		b.StGlobal(2, isa.MemSpec{Pattern: isa.PatRandom, Region: 4 << 20, Space: 2})
	}
	b.EndIf()
	b.Exit()
	return mk("BFS", "kernel", SuiteGPGPUSim, 256, 1, 512, 12, 0, b.MustBuild(),
		"irregular frontier expansion; heavy intra-warp divergence; no barriers")
}

// cp models cenergy (Coulombic potential): a long compute loop over atoms
// held in constant memory — FFMA chains with an rsqrt per atom — and one
// coalesced store. Compute-bound with high SFU pressure.
func cp() *Workload {
	b := isa.NewBuilder("cenergy")
	b.LdConst(1)
	b.FMul(2, 1, 1)
	b.Loop(isa.LoopSpec{Min: 40, Max: 40})
	{
		b.LdConst(3)
		b.FFMA(4, 3, 3, 2)
		b.FFMA(5, 4, 3, 1)
		b.SFU(6, 5)
		b.FFMA(2, 6, 3, 2)
		b.FAdd(7, 2, 6)
		b.FFMA(2, 7, 1, 2)
	}
	b.EndLoop()
	b.StGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.Exit()
	return mk("CP", "cenergy", SuiteGPGPUSim, 256, 1, 128, 30, 0, b.MustBuild(),
		"compute-bound atom loop from constant memory; rsqrt per iteration")
}

// lps models GPU_laplace3d: a z-sweep stencil staging planes in shared
// memory with a barrier per plane and streaming coalesced global traffic.
func lps() *Workload {
	b := isa.NewBuilder("GPU_laplace3d")
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.Loop(isa.LoopSpec{Min: 16, Max: 16})
	{
		b.StShared(1, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
		b.Bar()
		b.LdShared(2, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
		b.LdShared(3, isa.MemSpec{Pattern: isa.PatStrided, Stride: 132, IterVaries: true})
		b.FAdd(4, 2, 3)
		b.FFMA(5, 4, 2, 3)
		b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0, IterVaries: true})
		b.FFMA(6, 5, 4, 2)
		b.Bar()
	}
	b.EndLoop()
	b.StGlobal(6, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.Exit()
	return mk("LPS", "GPU_laplace3d", SuiteGPGPUSim, 100, 1, 128, 24, 2*1024, b.MustBuild(),
		"3D stencil z-sweep; two barriers per plane; single-batch grid")
}

// nnLayer models the neuralnet convolution layers: a window loop of
// streaming loads and FFMAs ending in an SFU activation. Layers differ in
// grid size and window trip count.
func nnLayer(kernel string, paperTBs, scale, minTrips, maxTrips int) *Workload {
	b := isa.NewBuilder(kernel)
	b.LdConst(1)
	b.Loop(isa.LoopSpec{Min: minTrips, Max: maxTrips})
	{
		b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0, IterVaries: true})
		b.LdConst(3)
		b.FFMA(4, 2, 3, 4)
		b.FFMA(5, 4, 1, 5)
	}
	b.EndLoop()
	b.SFU(6, 5)
	b.StGlobal(6, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.Exit()
	return mk("NN", kernel, SuiteGPGPUSim, paperTBs, scale, 128, 16, 0, b.MustBuild(),
		"convolution window loop; streaming loads + FFMA; sigmoid via SFU")
}

// nnFourthLayer adds per-warp imbalance: the final layer's output neurons
// have uneven fan-in, so warps finish at different times.
func nnFourthLayer() *Workload {
	b := isa.NewBuilder("executeFourthLayer")
	b.LdConst(1)
	b.Loop(isa.LoopSpec{Min: 20, Max: 30, Imb: isa.ImbPerWarp})
	{
		b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0, IterVaries: true})
		b.LdConst(3)
		b.FFMA(4, 2, 3, 4)
		b.FFMA(5, 4, 1, 5)
	}
	b.EndLoop()
	b.SFU(6, 5)
	b.StGlobal(6, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.Exit()
	return mk("NN", "executeFourthLayer", SuiteGPGPUSim, 280, 1, 128, 16, 0, b.MustBuild(),
		"uneven fan-in: per-warp trip imbalance, warp-level divergence at finish")
}

// ray models render: a per-thread ray-march loop of very uneven depth
// with scene reads showing block-local locality — the classic
// warp-divergence stress.
func ray() *Workload {
	b := isa.NewBuilder("render")
	b.LdConst(1)
	b.FFMA(2, 1, 1, 1)
	b.FMul(3, 2, 1)
	b.Loop(isa.LoopSpec{Min: 4, Max: 24, Imb: isa.ImbPerThread})
	{
		b.FFMA(4, 3, 2, 1)
		b.SFU(5, 4)
		b.LdGlobal(6, isa.MemSpec{Pattern: isa.PatTBLocal, Region: 64 << 10, Space: 0, IterVaries: true})
		b.IfRandom(0.3)
		{
			b.FFMA(3, 6, 5, 3)
			b.FAdd(2, 3, 5)
		}
		b.EndIf()
		b.FFMA(3, 5, 6, 2)
	}
	b.EndLoop()
	b.StGlobal(3, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.Exit()
	return mk("RAY", "render", SuiteGPGPUSim, 512, 1, 128, 40, 0, b.MustBuild(),
		"ray marching with per-thread depth; divergent shading branch")
}

// sto models sha1_overlap: long integer-rotation rounds with per-warp
// chunk imbalance and shared-memory staging.
func sto() *Workload {
	b := isa.NewBuilder("sha1_overlap")
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.Loop(isa.LoopSpec{Min: 16, Max: 24, Imb: isa.ImbPerWarp})
	{
		b.LdShared(3, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
		b.IAdd(4, 1, 3)
		b.IMul(5, 4, 2)
		b.IAdd(6, 5, 4)
		b.IMul(7, 6, 1)
		b.IAdd(8, 7, 5)
		b.IAdd(1, 8, 6)
		b.IMul(2, 1, 7)
		b.IAdd(2, 2, 8)
		b.StShared(2, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
	}
	b.EndLoop()
	b.StGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.Exit()
	return mk("STO", "sha1_overlap", SuiteGPGPUSim, 384, 1, 128, 32, 8*1024, b.MustBuild(),
		"integer hash rounds; per-warp chunk imbalance; no barriers")
}
