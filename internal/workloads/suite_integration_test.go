package workloads_test

import (
	"testing"

	"repro/internal/workloads"
	"repro/prosim"
)

// TestEveryWorkloadRunsUnderEveryScheduler is the suite-wide smoke and
// invariant test: all 25 Table II kernels, shrunk to a couple of
// residency batches, must complete under all four policies, execute the
// identical dynamic instruction stream, and satisfy the stall-accounting
// identity. Skipped under -short (it simulates 100 kernel launches).
func TestEveryWorkloadRunsUnderEveryScheduler(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite integration test skipped in -short mode")
	}
	cfg := prosim.GTX480()
	scheds := []string{"TL", "LRR", "GTO", "PRO"}
	for _, w := range workloads.All() {
		w := w.Shrunk(30)
		t.Run(w.Kernel, func(t *testing.T) {
			var refInstrs int64
			for _, sched := range scheds {
				r, err := prosim.RunWorkload(w, sched, prosim.Options{})
				if err != nil {
					t.Fatalf("%s: %v", sched, err)
				}
				if r.Cycles <= 0 || r.WarpInstrs <= 0 {
					t.Fatalf("%s: empty run", sched)
				}
				if refInstrs == 0 {
					refInstrs = r.ThreadInstrs
				} else if r.ThreadInstrs != refInstrs {
					t.Errorf("%s executed %d thread-instrs, %s executed %d",
						sched, r.ThreadInstrs, scheds[0], refInstrs)
				}
				slots := r.Cycles * int64(cfg.NumSMs) * int64(cfg.SchedulersPerSM)
				if r.Stalls.Slots() != slots {
					t.Errorf("%s: stall accounting off: %d vs %d", sched, r.Stalls.Slots(), slots)
				}
				if r.Stalls.Issued != r.WarpInstrs {
					t.Errorf("%s: issued slots != warp instrs", sched)
				}
			}
		})
	}
}

// TestBarrierKernelsReduceBarrierWaitUnderPRO checks the paper's central
// barrier claim on the barrier-heavy kernels: PRO's mean
// first-arrival-to-release wait must not exceed LRR's by more than a
// small tolerance, and must strictly improve on at least half of them.
func TestBarrierKernelsReduceBarrierWaitUnderPRO(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	kernels := []string{
		"scalarProdGPU", "MonteCarloOneBlockPerOption",
		"bpnn_layerforward", "mergeHistogram256Kernel",
	}
	improved := 0
	for _, k := range kernels {
		w, err := workloads.ByKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		w = w.Shrunk(60)
		lrr, err := prosim.RunWorkload(w, "LRR", prosim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pro, err := prosim.RunWorkload(w, "PRO", prosim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if lrr.BarrierEpisodes == 0 {
			t.Fatalf("%s: no barrier episodes recorded", k)
		}
		if pro.AvgBarrierWait() < lrr.AvgBarrierWait() {
			improved++
		}
		if pro.AvgBarrierWait() > 1.5*lrr.AvgBarrierWait() {
			t.Errorf("%s: PRO barrier wait %.0f far above LRR %.0f",
				k, pro.AvgBarrierWait(), lrr.AvgBarrierWait())
		}
	}
	if improved < len(kernels)/2 {
		t.Errorf("PRO improved barrier wait on only %d of %d barrier kernels", improved, len(kernels))
	}
}
