// Package workloads defines the 25 benchmark kernels of the paper's
// Table II as synthetic programs for the simulator's mini-ISA.
//
// Each synthetic kernel reproduces the structural, scheduling-relevant
// character of the original CUDA kernel: grid and block shape, per-TB
// resource footprint (which sets SM residency), instruction mix
// (SP/SFU/global/shared/constant), barrier structure, memory access
// patterns, and divergence/imbalance behaviour. Grids larger than ~600
// TBs are scaled down (divisor in Workload.Scale) to keep simulations
// laptop-sized while preserving the multi-batch residency behaviour of
// Sec. II-C (every scaled grid still holds several times the GPU's
// concurrent TB capacity).
package workloads

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/xrand"
)

// Workload is one Table II row.
type Workload struct {
	// App is the application name exactly as Table III spells it.
	App string
	// Kernel is the kernel name exactly as Table II spells it.
	Kernel string
	// Suite is the benchmark suite of origin.
	Suite string
	// PaperTBs is the grid size in the paper's Table II.
	PaperTBs int
	// Scale is the grid divisor we applied (1 = unscaled).
	Scale int
	// Launch is the runnable launch (grid = PaperTBs/Scale).
	Launch *engine.Launch
	// Note documents what the synthetic program models.
	Note string
}

// Suite names.
const (
	SuiteGPGPUSim = "GPGPU-SIM"
	SuiteRodinia  = "Rodinia"
	SuiteCUDASDK  = "CUDA-SDK"
)

// seed derives a stable per-kernel seed from its name.
func seed(kernel string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(kernel); i++ {
		h = xrand.Hash64(h ^ uint64(kernel[i]))
	}
	return h
}

// mk assembles a Workload, applying the grid scale and seeding the
// launch; it panics on malformed definitions (covered by tests).
func mk(app, kernel, suite string, paperTBs, scale int, block, regs, smem int, prog *isa.Program, note string) *Workload {
	if scale < 1 {
		panic("workloads: scale must be >= 1")
	}
	grid := paperTBs / scale
	if grid < 1 {
		grid = 1
	}
	return &Workload{
		App:      app,
		Kernel:   kernel,
		Suite:    suite,
		PaperTBs: paperTBs,
		Scale:    scale,
		Launch: &engine.Launch{
			Program:        prog,
			GridTBs:        grid,
			BlockThreads:   block,
			RegsPerThread:  regs,
			SharedMemPerTB: smem,
			Seed:           seed(kernel),
		},
		Note: note,
	}
}

// All returns the 25 workloads in Table II order.
func All() []*Workload {
	var ws []*Workload
	ws = append(ws, gpgpusimSuite()...)
	ws = append(ws, rodiniaSuite()...)
	ws = append(ws, cudaSDKSuite()...)
	return ws
}

// Apps returns the 15 application names in Table III order.
func Apps() []string {
	return []string{
		"AES", "BFS", "CP", "LPS", "NN", "RAY", "STO",
		"backprop", "b+tree", "hotspot", "pathfinder",
		"convSep", "histogram", "MonteCarlo", "ScalarProd",
	}
}

// ByKernel returns the workload with the given kernel name, or an error.
func ByKernel(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Kernel == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown kernel %q", name)
}

// ByApp returns the workloads of one application in Table II order.
func ByApp(app string) []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.App == app {
			out = append(out, w)
		}
	}
	return out
}

// Shrunk returns a copy of w with its grid reduced to at most maxTBs —
// used by tests and quick examples. The program, block shape and
// resources are unchanged.
func (w *Workload) Shrunk(maxTBs int) *Workload {
	dup := *w
	l := *w.Launch
	if l.GridTBs > maxTBs {
		l.GridTBs = maxTBs
	}
	dup.Launch = &l
	return &dup
}
