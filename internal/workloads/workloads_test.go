package workloads

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
)

func TestTableIIInventory(t *testing.T) {
	ws := All()
	if len(ws) != 25 {
		t.Fatalf("Table II has 25 kernels, got %d", len(ws))
	}
	// Exact kernel names and paper TB counts from Table II.
	want := []struct {
		kernel string
		tbs    int
	}{
		{"aesEncrypt128", 257}, {"kernel", 256}, {"cenergy", 256},
		{"GPU_laplace3d", 100},
		{"executeFirstLayer", 168}, {"executeSecondLayer", 1400},
		{"executeThirdLayer", 2800}, {"executeFourthLayer", 280},
		{"render", 512}, {"sha1_overlap", 384},
		{"bpnn_layerforward", 4096}, {"bpnn_adjust_weights_cuda", 4096},
		{"findRageK", 6000}, {"findK", 10000},
		{"calculate_temp", 1849}, {"dynproc_kernel", 463},
		{"convolutionRowsKernel", 18432}, {"convolutionColumnsKernel", 9216},
		{"histogram64Kernel", 4370}, {"mergeHistogram64Kernel", 64},
		{"histogram256Kernel", 240}, {"mergeHistogram256Kernel", 256},
		{"inverseCNDKernel", 128}, {"MonteCarloOneBlockPerOption", 256},
		{"scalarProdGPU", 128},
	}
	for i, w := range want {
		if ws[i].Kernel != w.kernel {
			t.Errorf("row %d kernel = %s, want %s", i, ws[i].Kernel, w.kernel)
		}
		if ws[i].PaperTBs != w.tbs {
			t.Errorf("%s PaperTBs = %d, want %d", w.kernel, ws[i].PaperTBs, w.tbs)
		}
	}
}

func TestAppsMatchTableIII(t *testing.T) {
	apps := Apps()
	if len(apps) != 15 {
		t.Fatalf("Table III has 15 applications, got %d", len(apps))
	}
	// Every workload's app must be in the list; every app must have at
	// least one kernel.
	byApp := map[string]int{}
	for _, w := range All() {
		byApp[w.App]++
	}
	if len(byApp) != 15 {
		t.Fatalf("workloads span %d apps, want 15", len(byApp))
	}
	for _, app := range apps {
		if byApp[app] == 0 {
			t.Errorf("app %s has no kernels", app)
		}
	}
	// The paper's per-app kernel counts: NN has 4, histogram 4, etc.
	counts := map[string]int{
		"NN": 4, "histogram": 4, "backprop": 2, "b+tree": 2,
		"convSep": 2, "MonteCarlo": 2,
	}
	for app, n := range counts {
		if byApp[app] != n {
			t.Errorf("app %s has %d kernels, want %d", app, byApp[app], n)
		}
	}
}

func TestEveryLaunchValidAndResident(t *testing.T) {
	cfg := config.GTX480()
	for _, w := range All() {
		if err := w.Launch.Validate(cfg); err != nil {
			t.Errorf("%s: %v", w.Kernel, err)
			continue
		}
		res := w.Launch.ResidentTBs(cfg)
		if res < 1 {
			t.Errorf("%s: zero residency", w.Kernel)
		}
		if res > cfg.MaxTBsPerSM {
			t.Errorf("%s: residency %d exceeds hardware cap", w.Kernel, res)
		}
	}
}

func TestScaledGridsKeepMultipleBatches(t *testing.T) {
	// The SM-residency phenomenon of Sec. II-C requires grids well above
	// concurrent capacity. Every workload the paper lists with a big
	// grid must keep at least ~2 batches after scaling; single-batch
	// kernels in the paper (LPS 100 TBs, mergeHistogram64 64 TBs,
	// inverseCND 128, scalarProd 128) are allowed below that.
	cfg := config.GTX480()
	singleBatch := map[string]bool{
		"GPU_laplace3d": true, "mergeHistogram64Kernel": true,
		"inverseCNDKernel": true, "scalarProdGPU": true,
	}
	for _, w := range All() {
		capacity := w.Launch.ResidentTBs(cfg) * cfg.NumSMs
		batches := float64(w.Launch.GridTBs) / float64(capacity)
		if singleBatch[w.Kernel] {
			continue
		}
		if batches < 1.5 {
			t.Errorf("%s: %d TBs over capacity %d = %.1f batches; scaling destroyed the multi-batch structure",
				w.Kernel, w.Launch.GridTBs, capacity, batches)
		}
	}
}

func TestScalingPreservedOnlyWhereNeeded(t *testing.T) {
	for _, w := range All() {
		if w.PaperTBs <= 600 && w.Scale != 1 {
			t.Errorf("%s: small paper grid (%d) was scaled by %d", w.Kernel, w.PaperTBs, w.Scale)
		}
		if got := w.PaperTBs / w.Scale; w.Launch.GridTBs != got && got >= 1 {
			t.Errorf("%s: grid %d != PaperTBs/Scale = %d", w.Kernel, w.Launch.GridTBs, got)
		}
	}
}

func TestSeedsDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, w := range All() {
		if other, dup := seen[w.Launch.Seed]; dup {
			t.Errorf("%s and %s share a seed", w.Kernel, other)
		}
		seen[w.Launch.Seed] = w.Kernel
	}
}

func TestStructuralCharacters(t *testing.T) {
	// Spot-check that each synthetic kernel has the structural features
	// its Table II original is known for.
	mixOf := func(k string) isa.StaticMix {
		w, err := ByKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		return w.Launch.Program.Mix()
	}
	if m := mixOf("aesEncrypt128"); m.Barriers < 1 || m.SharedMem < 4 {
		t.Errorf("AES lacks its shared-memory rounds: %+v", m)
	}
	if m := mixOf("kernel"); m.Barriers != 0 || m.Branches < 2 {
		t.Errorf("BFS should be barrier-free and branchy: %+v", m)
	}
	if m := mixOf("cenergy"); m.SFU < 1 || m.GlobalMem > 1 {
		t.Errorf("CP should be compute-bound with SFU: %+v", m)
	}
	if m := mixOf("calculate_temp"); m.Barriers < 3 {
		t.Errorf("hotspot needs its per-iteration barriers: %+v", m)
	}
	if m := mixOf("scalarProdGPU"); m.Barriers < 3 {
		t.Errorf("scalarProd needs its reduction barriers: %+v", m)
	}
	if m := mixOf("inverseCNDKernel"); m.SFU < 2 {
		t.Errorf("inverseCND should be SFU-heavy: %+v", m)
	}
	// Warp-level divergence sources: kernels whose originals are known
	// for uneven warp runtimes must carry imbalanced loops.
	for _, k := range []string{"render", "findK", "findRageK", "scalarProdGPU", "sha1_overlap"} {
		w, err := ByKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		imb := false
		for _, l := range w.Launch.Program.Loops {
			if l.Imb != isa.ImbNone {
				imb = true
			}
		}
		if !imb {
			t.Errorf("%s lacks trip-count imbalance", k)
		}
	}
}

func TestByKernelAndByApp(t *testing.T) {
	if _, err := ByKernel("no-such-kernel"); err == nil {
		t.Fatal("ByKernel accepted a bogus name")
	}
	w, err := ByKernel("render")
	if err != nil || w.App != "RAY" {
		t.Fatalf("ByKernel(render) = %v, %v", w, err)
	}
	nn := ByApp("NN")
	if len(nn) != 4 {
		t.Fatalf("ByApp(NN) has %d kernels, want 4", len(nn))
	}
}

func TestShrunk(t *testing.T) {
	w, _ := ByKernel("findK")
	s := w.Shrunk(10)
	if s.Launch.GridTBs != 10 {
		t.Fatalf("Shrunk grid = %d", s.Launch.GridTBs)
	}
	if w.Launch.GridTBs == 10 {
		t.Fatal("Shrunk mutated the original")
	}
	tiny := w.Shrunk(1 << 30)
	if tiny.Launch.GridTBs != w.Launch.GridTBs {
		t.Fatal("Shrunk grew the grid")
	}
}

func TestProgramsValidateStandalone(t *testing.T) {
	for _, w := range All() {
		if err := w.Launch.Program.Validate(); err != nil {
			t.Errorf("%s: %v", w.Kernel, err)
		}
	}
}

func TestProgramsSurviveTextRoundTrip(t *testing.T) {
	// Every Table II program must format to text and parse back to an
	// identical program — the text format covers the whole suite.
	for _, w := range All() {
		text := isa.Format(w.Launch.Program)
		q, err := isa.Parse(text)
		if err != nil {
			t.Errorf("%s: re-parse: %v", w.Kernel, err)
			continue
		}
		if q.Len() != w.Launch.Program.Len() || len(q.Loops) != len(w.Launch.Program.Loops) {
			t.Errorf("%s: round trip changed program shape", w.Kernel)
		}
		for pc := 0; pc < q.Len(); pc++ {
			if q.At(pc).Op != w.Launch.Program.At(pc).Op {
				t.Errorf("%s: pc %d opcode changed (%s -> %s)",
					w.Kernel, pc, w.Launch.Program.At(pc).Op, q.At(pc).Op)
				break
			}
		}
	}
}
