package workloads

import "repro/internal/isa"

// cudaSDKSuite builds the nine CUDA-SDK kernels of Table II.
func cudaSDKSuite() []*Workload {
	return []*Workload{
		convolutionRows(), convolutionColumns(),
		histogram64(), mergeHistogram64(),
		histogram256(), mergeHistogram256(),
		inverseCND(), monteCarloOneBlockPerOption(),
		scalarProdGPU(),
	}
}

// convolutionRows models convolutionRowsKernel: stream tiles into shared
// memory behind a barrier, run the filter taps, stream results out.
// Bandwidth-dominated with a huge grid.
func convolutionRows() *Workload {
	b := isa.NewBuilder("convolutionRowsKernel")
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.StShared(1, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.StShared(2, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.Bar()
	b.Loop(isa.LoopSpec{Min: 8, Max: 8})
	{
		b.LdShared(3, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
		b.LdConst(4)
		b.FFMA(5, 3, 4, 5)
	}
	b.EndLoop()
	b.StGlobal(5, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.Exit()
	return mk("convSep", "convolutionRowsKernel", SuiteCUDASDK, 18432, 32, 128, 16, 4*1024, b.MustBuild(),
		"row filter; tile staging; streaming bandwidth-bound")
}

// convolutionColumns models convolutionColumnsKernel: the column variant
// needs taller tiles (more shared memory, lower residency) and its
// shared-memory walk is strided.
func convolutionColumns() *Workload {
	b := isa.NewBuilder("convolutionColumnsKernel")
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.StShared(1, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.StShared(2, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.Bar()
	b.Loop(isa.LoopSpec{Min: 8, Max: 8})
	{
		b.LdShared(3, isa.MemSpec{Pattern: isa.PatStrided, Stride: 20, IterVaries: true})
		b.LdConst(4)
		b.FFMA(5, 3, 4, 5)
	}
	b.EndLoop()
	b.StGlobal(5, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.Exit()
	return mk("convSep", "convolutionColumnsKernel", SuiteCUDASDK, 9216, 16, 128, 16, 8*1024, b.MustBuild(),
		"column filter; taller tiles (lower residency); strided shared walk")
}

// histogramKernel is the shared shape of histogram64Kernel and
// histogram256Kernel: stream data, scatter into per-block shared-memory
// bins (bank-conflicting read-modify-writes), then merge behind barriers.
func histogramKernel(kernel string, paperTBs, scale, block, smem, trips int) *Workload {
	b := isa.NewBuilder(kernel)
	b.Loop(isa.LoopSpec{Min: trips, Max: trips})
	{
		b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0, IterVaries: true})
		b.LdShared(2, isa.MemSpec{Pattern: isa.PatRandom, Region: uint64(smem), IterVaries: true})
		b.IAdd(2, 2, 1)
		b.StShared(2, isa.MemSpec{Pattern: isa.PatRandom, Region: uint64(smem), IterVaries: true})
	}
	b.EndLoop()
	b.Bar()
	b.LdShared(3, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.IAdd(4, 3, 2)
	b.Bar()
	b.LdShared(5, isa.MemSpec{Pattern: isa.PatStrided, Stride: 16})
	b.IAdd(4, 4, 5)
	b.StGlobal(4, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.Exit()
	return mk("histogram", kernel, SuiteCUDASDK, paperTBs, scale, block, 16, smem, b.MustBuild(),
		"shared-memory bin scatter with bank conflicts; barrier-merged tails")
}

func histogram64() *Workload  { return histogramKernel("histogram64Kernel", 4370, 8, 64, 4*1024, 32) }
func histogram256() *Workload { return histogramKernel("histogram256Kernel", 240, 1, 192, 12*1024, 48) }

// mergeHistogram64 models mergeHistogram64Kernel: gather partial bins
// across blocks (strided, uncoalesced) and tree-reduce behind barriers.
func mergeHistogram64() *Workload {
	b := isa.NewBuilder("mergeHistogram64Kernel")
	b.Loop(isa.LoopSpec{Min: 4, Max: 4})
	{
		b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatStrided, Stride: 256, Space: 0, IterVaries: true})
		b.IAdd(2, 2, 1)
	}
	b.EndLoop()
	b.StShared(2, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.Bar()
	for step := 0; step < 3; step++ {
		b.LdShared(3, isa.MemSpec{Pattern: isa.PatStrided, Stride: 8 << step})
		b.IAdd(2, 2, 3)
		b.Bar()
	}
	b.StGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.Exit()
	return mk("histogram", "mergeHistogram64Kernel", SuiteCUDASDK, 64, 1, 64, 12, 1024, b.MustBuild(),
		"cross-block gather; tiny single-batch grid; reduction barriers")
}

// mergeHistogram256 is the 256-bin merge: more gather work per thread and
// a deeper reduction.
func mergeHistogram256() *Workload {
	b := isa.NewBuilder("mergeHistogram256Kernel")
	b.Loop(isa.LoopSpec{Min: 4, Max: 4})
	{
		b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatStrided, Stride: 256, Space: 0, IterVaries: true})
		b.IAdd(2, 2, 1)
	}
	b.EndLoop()
	b.StShared(2, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.Bar()
	for step := 0; step < 4; step++ {
		b.LdShared(3, isa.MemSpec{Pattern: isa.PatStrided, Stride: 8 << step})
		b.IAdd(2, 2, 3)
		b.Bar()
	}
	b.StGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.Exit()
	return mk("histogram", "mergeHistogram256Kernel", SuiteCUDASDK, 256, 1, 256, 12, 1024, b.MustBuild(),
		"cross-block gather; reduction barriers; strided global traffic")
}

// inverseCND models inverseCNDKernel: a short SFU-saturated
// transcendental pipeline over a streaming array.
func inverseCND() *Workload {
	b := isa.NewBuilder("inverseCNDKernel")
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0})
	b.SFU(2, 1)
	b.FFMA(3, 2, 1, 2)
	b.SFU(4, 3)
	b.FFMA(5, 4, 2, 3)
	b.SFU(6, 5)
	b.FMul(7, 6, 4)
	b.StGlobal(7, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.Exit()
	return mk("MonteCarlo", "inverseCNDKernel", SuiteCUDASDK, 128, 1, 128, 16, 0, b.MustBuild(),
		"SFU-saturated transform; small single-batch grid")
}

// monteCarloOneBlockPerOption models MonteCarloOneBlockPerOption: a long
// per-thread path loop of SFU+FFMA work followed by a barrier reduction;
// per-warp path-count imbalance makes warps hit the reduction barrier far
// apart.
func monteCarloOneBlockPerOption() *Workload {
	b := isa.NewBuilder("MonteCarloOneBlockPerOption")
	b.LdConst(1)
	b.Loop(isa.LoopSpec{Min: 28, Max: 36, Imb: isa.ImbPerWarp})
	{
		b.SFU(2, 1)
		b.FFMA(3, 2, 1, 3)
		b.FFMA(4, 3, 2, 4)
		b.FAdd(5, 4, 3)
	}
	b.EndLoop()
	b.StShared(5, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.Bar()
	for step := 0; step < 3; step++ {
		b.LdShared(6, isa.MemSpec{Pattern: isa.PatStrided, Stride: 8 << step})
		b.FAdd(5, 5, 6)
		b.Bar()
	}
	b.StGlobal(5, isa.MemSpec{Pattern: isa.PatBroadcast, Space: 1})
	b.Exit()
	return mk("MonteCarlo", "MonteCarloOneBlockPerOption", SuiteCUDASDK, 256, 1, 256, 24, 4*1024, b.MustBuild(),
		"path simulation; per-warp imbalance into a barrier reduction")
}

// scalarProdGPU models scalarProdGPU: streaming dot-product accumulation
// with per-warp chunk imbalance, then a barrier-stepped shared-memory
// reduction tree — the paper's most scheduler-sensitive kernel (max
// speedup over LRR/TL, and the one that prefers barrier handling off).
func scalarProdGPU() *Workload {
	b := isa.NewBuilder("scalarProdGPU")
	b.Loop(isa.LoopSpec{Min: 20, Max: 28, Imb: isa.ImbPerWarp})
	{
		b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 0, IterVaries: true})
		b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1, IterVaries: true})
		b.FFMA(3, 1, 2, 3)
	}
	b.EndLoop()
	b.StShared(3, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.Bar()
	for step := 0; step < 3; step++ {
		b.LdShared(4, isa.MemSpec{Pattern: isa.PatStrided, Stride: 8 << step})
		b.FAdd(3, 3, 4)
		b.StShared(3, isa.MemSpec{Pattern: isa.PatCoalesced})
		b.Bar()
	}
	b.StGlobal(3, isa.MemSpec{Pattern: isa.PatBroadcast, Space: 2})
	b.Exit()
	return mk("ScalarProd", "scalarProdGPU", SuiteCUDASDK, 128, 1, 256, 16, 4*1024, b.MustBuild(),
		"dot product: imbalanced accumulation into a 4-barrier reduction tree")
}
