package gpu

import "sync/atomic"

// Heartbeat is a low-frequency snapshot of one running simulation,
// delivered to the process-wide listener registered with SetHeartbeat.
// It exists so a long-running service (the daemon) can show liveness
// and progress of in-flight simulations without touching the cycle
// loop's hot path: when no listener is registered the loop pays one
// predictable branch per iteration, and the listener can never alter
// simulation state — it only reads counters.
type Heartbeat struct {
	// Kernel and Scheduler identify the run.
	Kernel, Scheduler string
	// Cycle is the current simulated cycle.
	Cycle int64
	// ResidentTBs and PendingTBs describe TB occupancy at this cycle.
	ResidentTBs int
	PendingTBs  int
	// Iters counts top-level loop iterations since the previous
	// heartbeat of this run; FFJumps counts how many of them advanced
	// the clock by more than one cycle (global fast-forward, DESIGN.md
	// §8.6). Deltas, so a listener can feed counters directly.
	Iters   int64
	FFJumps int64
	// SMWorkers is the run's resolved intra-simulation worker count
	// (1 = serial SM ticking; see config.ParallelSMs).
	SMWorkers int
	// ParTicks counts iterations since the previous heartbeat whose SM
	// tick phase fanned out to the worker pool; TickNS and CommitNS are
	// the wall nanoseconds those iterations spent in the parallel tick
	// phase and the serial commit (lane + retire drain) phase, and
	// ImbalanceNS accumulates each fanned iteration's slowest-minus-
	// fastest worker shard time. All deltas; zero on serial runs. Phase
	// timing is measured only while a listener is registered, so
	// unobserved runs never call the clock.
	ParTicks    int64
	TickNS      int64
	CommitNS    int64
	ImbalanceNS int64
	// SerialTicks counts iterations since the previous heartbeat whose
	// fan-out decision was serial even though the pool existed (awake
	// SMs below the floor, or the adaptive controller estimating the
	// fused serial loop cheaper). ParTicks + SerialTicks is the total
	// decision count on a parallel-capable run.
	SerialTicks int64
	// MemsysParTicks counts fanned iterations whose DRAM channel scan
	// was overlapped with the parallel tick phase (staged grants,
	// committed at the barrier) and actually had queued requests.
	MemsysParTicks int64
	// LaneOps is the number of staged lane effects committed since the
	// previous heartbeat; LaneDrains the number of non-empty lane
	// drains. Their ratio is the mean commit batch size
	// (sim_lane_batch_size).
	LaneOps    int64
	LaneDrains int64
	// Final marks the run-completion heartbeat.
	Final bool
}

// hbConfig pairs the listener with its sampling interval so both swap
// atomically.
type hbConfig struct {
	fn    func(Heartbeat)
	every int64
}

var hbState atomic.Pointer[hbConfig]

// DefaultHeartbeatEvery is the sampling interval SetHeartbeat applies
// when every <= 0: one heartbeat per 2^20 simulated cycles, a few per
// second of wall time on typical kernels — invisible in profiles.
const DefaultHeartbeatEvery = 1 << 20

// SetHeartbeat registers fn as the process-wide simulation heartbeat
// listener, sampled every `every` cycles (<= 0 means
// DefaultHeartbeatEvery); fn nil unregisters. Runs already in flight
// keep the listener they started with. fn may be called concurrently
// from independent simulations and must not block; it must not (and
// cannot, through the Heartbeat value) mutate simulation state, so
// results remain bit-identical with or without a listener.
func SetHeartbeat(fn func(Heartbeat), every int64) {
	if fn == nil {
		hbState.Store(nil)
		return
	}
	if every <= 0 {
		every = DefaultHeartbeatEvery
	}
	hbState.Store(&hbConfig{fn: fn, every: every})
}
