package gpu

import (
	"sync/atomic"

	"repro/internal/flight"
)

// flSink pairs the process-wide flight-capture listener with the
// recorder options each run should use, so both swap atomically —
// the same discipline as hbConfig.
type flSink struct {
	fn   func(*flight.Capture)
	opts flight.Options
}

var flState atomic.Pointer[flSink]

// SetFlightSink registers fn as the process-wide flight-recorder sink:
// every simulation that starts while it is registered (and does not
// carry its own Options.Flight recorder) records with opts and delivers
// its capture to fn at completion; fn nil unregisters. Runs already in
// flight keep the sink they started with — the loop loads it once, like
// the heartbeat listener. fn may be called concurrently from
// independent simulations and must not block; it receives a frozen
// capture and can never mutate simulation state, so results remain
// bit-identical with or without a sink (asserted by
// TestFlightRecorderDoesNotAlterResults).
func SetFlightSink(fn func(*flight.Capture), opts flight.Options) {
	if fn == nil {
		flState.Store(nil)
		return
	}
	flState.Store(&flSink{fn: fn, opts: opts})
}
