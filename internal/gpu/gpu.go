// Package gpu assembles the full simulated GPU — SM array, global
// Thread Block Scheduler (gigathread engine), memory hierarchy, clock —
// and runs kernel launches to completion.
package gpu

import (
	"context"
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/flight"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/timing"
)

// Options tune one simulation run.
type Options struct {
	// Timeline records per-TB lifetimes (Fig. 2 data).
	Timeline bool
	// SampleEvery, when positive, records a stats.Sample of the
	// aggregate counters every SampleEvery cycles (phase analysis).
	SampleEvery int64
	// MaxCycles aborts a runaway simulation; 0 means the default.
	MaxCycles int64
	// StallWindow aborts when no SM issues for this many consecutive
	// cycles (deadlock watchdog); 0 means the default.
	StallWindow int64
	// Flight, when non-nil, attaches a flight recorder to the run
	// (per-warp progress timelines, memory-request lifecycle spans,
	// scheduler-decision events — see internal/flight). The recorder
	// only reads simulation state, so results are byte-identical with
	// or without it, and the json:"-" tag keeps it out of result-cache
	// keys — an execution-observability switch, never cache identity.
	// A recorder captures exactly one run.
	Flight *flight.Recorder `json:"-"`
}

const (
	defaultMaxCycles   = 200_000_000
	defaultStallWindow = 2_000_000
)

// OrderTracer is implemented by scheduling policies that record
// Table IV-style priority-order samples (PRO does, on SM 0).
type OrderTracer interface {
	OrderSamples() []stats.OrderSample
}

// ctxCheckInterval is how many loop iterations pass between context
// checks in RunContext's cycle loop. The interval counts iterations, not
// cycles: with fast-forwarding a single iteration can cover far more
// than 4096 cycles, so a cycle-count poll would not bound cancellation
// latency. A non-blocking poll every 4096 iterations is invisible in
// profiles (each iteration simulates 14 SMs plus the memory system) yet
// bounds the abort delay to well under a millisecond of wall time.
const ctxCheckInterval = 4096

// Run simulates launch on a GPU described by cfg under the scheduling
// policy produced by factory, and returns the collected result.
func Run(cfg *config.Config, launch *engine.Launch, factory engine.Factory, opts Options) (*stats.KernelResult, error) {
	return RunContext(context.Background(), cfg, launch, factory, opts)
}

// RunContext is Run with cooperative cancellation: the cycle loop polls
// ctx every ctxCheckInterval cycles and aborts with ctx's error when it
// is cancelled, so a context cancel (daemon shutdown, per-job timeout)
// stops an in-flight simulation within a bounded delay instead of
// letting it run to completion. Cancellation never alters results: a
// run that completes did so on the exact same cycle-by-cycle path as
// under Run.
func RunContext(ctx context.Context, cfg *config.Config, launch *engine.Launch, factory engine.Factory, opts Options) (*stats.KernelResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := launch.Validate(cfg); err != nil {
		return nil, err
	}
	maxCycles := opts.MaxCycles
	if maxCycles <= 0 {
		maxCycles = defaultMaxCycles
	}
	stallWindow := opts.StallWindow
	if stallWindow <= 0 {
		stallWindow = defaultStallWindow
	}

	wheel := timing.NewWheel()
	mem := memsys.New(cfg, wheel)

	pending := launch.GridTBs
	assignedNext := 0

	res := &stats.KernelResult{
		Kernel:  launch.Program.Name,
		TBCount: launch.GridTBs,
	}

	// assignDirty tracks whether a TB placement could possibly succeed:
	// residency only frees on TB retirement, so after a probe that finds
	// every SM full, the per-cycle assignment step is skipped until the
	// next retire instead of re-probing all SMs each cycle.
	assignDirty := true
	// handleRetire is the coordinator-side retire notification. Under
	// parallel SM ticking it runs at the phase barrier (drained from the
	// per-SM retire buffers in SM-ID order) instead of inside Tick, so
	// concurrent SMs never touch assignDirty or the shared timeline.
	handleRetire := func(tb *engine.ThreadBlock) {
		assignDirty = true
		if opts.Timeline {
			res.Timeline = append(res.Timeline, stats.TBSpan{
				TB: tb.Global, SM: tb.SMID, Slot: tb.LaunchSeq,
				Start: tb.StartCycle, End: tb.EndCycle,
			})
		}
	}

	smWorkers := resolveSMWorkers(cfg)
	par := smWorkers > 1

	sms := make([]*engine.SM, cfg.NumSMs)
	var retired [][]*engine.ThreadBlock
	if par {
		retired = make([][]*engine.ThreadBlock, cfg.NumSMs)
	}
	for i := range sms {
		sm := engine.NewSM(i, cfg, wheel, mem, launch, factory)
		sm.PendingTBsFn = func() int { return pending }
		if par {
			// Stage retires per SM. Buffering the TB pointer is safe:
			// a retired TB's fields are stable until the pool can hand
			// it out again, which first happens in the next iteration's
			// assignment step — after this iteration's drain.
			buf := &retired[i]
			sm.OnTBRetireFn = func(tb *engine.ThreadBlock, cycle int64) {
				*buf = append(*buf, tb)
			}
		} else {
			sm.OnTBRetireFn = func(tb *engine.ThreadBlock, cycle int64) {
				handleRetire(tb)
			}
		}
		sms[i] = sm
	}
	res.Scheduler = sms[0].Sched.Name()

	// Flight recorder: an explicit Options.Flight recorder wins;
	// otherwise the process-wide sink (if armed at run start — loaded
	// once, like the heartbeat) builds a per-run recorder and receives
	// the capture at completion. With neither, every instrumented site
	// pays a single nil check and the run is observably identical.
	rec := opts.Flight
	sink := flState.Load()
	if rec == nil && sink != nil {
		rec = flight.New(sink.opts)
	}
	if rec != nil {
		rec.Start(cfg.NumSMs)
		for i, sm := range sms {
			sm.SetFlight(rec.SM(i))
		}
		mem.SetFlight(rec.Mem())
	}

	// drainRetires delivers staged retire notifications in SM-ID order
	// — the order the serial loop's in-tick callbacks fire in.
	drainRetires := func() {
		for i := range retired {
			for j, tb := range retired[i] {
				handleRetire(tb)
				retired[i][j] = nil
			}
			retired[i] = retired[i][:0]
		}
	}

	var pool *smPool
	var lanes []*memsys.Lane
	var ctl *fanoutCtl
	memsysPar := false
	if par {
		lanes = make([]*memsys.Lane, cfg.NumSMs)
		for i := range lanes {
			lanes[i] = mem.NewLane(i)
		}
		pool = newSMPool(sms, lanes, smWorkers)
		defer pool.close()
		memsysPar = !cfg.DisableMemsysParallel
		if !cfg.DisableAdaptiveFanout {
			ctl = newFanoutCtl()
		}
	}

	// Thread Block Scheduler: breadth-first round-robin assignment; after
	// the initial fill, TBs go out one at a time as residency frees up
	// (paper Sec. I). rr persists across cycles so freed slots anywhere
	// get the next TB in grid order.
	rr := 0
	assign := func(cycle int64) {
		if !assignDirty {
			return
		}
		for pending > 0 {
			placed := false
			for probe := 0; probe < len(sms); probe++ {
				sm := sms[(rr+probe)%len(sms)]
				if sm.CanAccept() {
					sm.AssignTB(assignedNext, cycle)
					assignedNext++
					pending--
					rr = (rr + probe + 1) % len(sms)
					placed = true
					break
				}
			}
			if !placed {
				assignDirty = false
				return
			}
		}
	}

	// Sampling state: snapshot of the aggregate counters at the last
	// sample point.
	var lastSample struct {
		instrs int64
		stalls stats.StallBreakdown
	}
	sample := func(cycle int64) {
		var cur stats.StallBreakdown
		var instrs int64
		resident := 0
		for _, sm := range sms {
			cur.Add(sm.StallTotal())
			instrs += sm.WarpInstrs
			resident += sm.ResidentTBCount()
		}
		res.Samples = append(res.Samples, stats.Sample{
			Cycle:      cycle,
			WarpInstrs: instrs - lastSample.instrs,
			Stalls: stats.StallBreakdown{
				Issued:     cur.Issued - lastSample.stalls.Issued,
				Idle:       cur.Idle - lastSample.stalls.Idle,
				Scoreboard: cur.Scoreboard - lastSample.stalls.Scoreboard,
				Pipeline:   cur.Pipeline - lastSample.stalls.Pipeline,
			},
			ResidentTBs: resident,
			PendingTBs:  pending,
		})
		lastSample.instrs = instrs
		lastSample.stalls = cur
	}

	// Incremental SM horizon tracking. Instead of rescanning every SM's
	// NextEvent when computing the fast-forward jump (O(n) per
	// iteration), the loop mirrors each SM's sleep state after its tick
	// and folds changes into a lazy-deletion min-heap: an awake count
	// answers "may anything tick next cycle?" in O(1), and the heap
	// yields the earliest finite wake cycle in O(log n) per update. The
	// mirror is refreshed after every tick phase, so an SM woken early
	// by an event (wakeAt zeroed, full tick this cycle) is re-mirrored
	// before the next horizon query and the heap never serves a stale
	// earlier entry.
	smAsleep := make([]bool, len(sms)) // all start awake
	awake := len(sms)
	wakeHeap := timing.NewWakeHeap(len(sms))
	trackSM := func(i int, sm *engine.SM) {
		asleep, wakeAt := sm.SleepState()
		if asleep != smAsleep[i] {
			smAsleep[i] = asleep
			if asleep {
				awake--
			} else {
				awake++
			}
		}
		if !asleep || wakeAt == engine.NeverWake {
			wakeHeap.Clear(i)
		} else {
			wakeHeap.Set(i, wakeAt)
		}
	}

	// nextCycle computes where the clock goes after an iteration at now —
	// the global fast-forward. Every cycle in (now, target) is provably a
	// no-op: each component reports the earliest future cycle at which it
	// could do anything (ok=false meaning "only another component's event
	// can activate me"), and the clock jumps to the minimum. Skipped
	// cycles would have run an empty loop body — no wheel events fire, no
	// DRAM arbitration can grant, every SM stays asleep, and assignment is
	// inert (it already drained at now, and residency only changes on an
	// SM's own issue path, impossible while asleep) — so results are
	// bit-identical to single-stepping. The jump is clamped to every
	// cycle the loop itself observes: the next sampling boundary (so the
	// sample fires on its exact cycle with stalls flushed identically),
	// the runaway limit, and the deadlock-watchdog deadline (so both
	// errors report the same cycle they would under single-stepping).
	ffOn := !cfg.DisableFastForward
	nextCycle := func(now, lastIssuedCycle int64) int64 {
		if !ffOn {
			return now + 1
		}
		target := int64(1<<63 - 1)
		// The SM horizon, from the mirror: any awake SM ticks next
		// cycle; otherwise the earliest finite wake cycle bounds the
		// jump (sleepers at NeverWake are woken by other components'
		// events, covered by their horizons below).
		if awake > 0 {
			return now + 1
		}
		if at, ok := wakeHeap.Min(); ok {
			if at <= now+1 {
				return now + 1
			}
			target = at
		}
		if at, ok := mem.NextEvent(now); ok {
			if at <= now+1 {
				return now + 1
			}
			if at < target {
				target = at
			}
		}
		if at, ok := wheel.NextEvent(); ok {
			if at <= now+1 {
				return now + 1
			}
			if at < target {
				target = at
			}
		}
		if target == 1<<63-1 {
			// Fully quiescent yet not done: a genuine wedge. Single-step
			// so the deadlock watchdog sees the identical cycle sequence.
			return now + 1
		}
		if opts.SampleEvery > 0 {
			if b := now - now%opts.SampleEvery + opts.SampleEvery; b < target {
				target = b
			}
		}
		if maxCycles < target {
			target = maxCycles
		}
		if d := lastIssuedCycle + stallWindow + 1; d < target {
			target = d
		}
		return target
	}

	// Telemetry heartbeat (internal/obs consumers): loaded once per run,
	// so registration mid-run is not observed. With no listener the loop
	// below pays a single always-false branch per iteration; the
	// listener itself only reads, so results are bit-identical either
	// way (asserted by TestHeartbeatDoesNotAlterResults).
	hb := hbState.Load()
	hbOn := hb != nil
	var hbPrevCycle, hbIters, hbJumps, hbNext int64
	var hbParTicks, hbTickNS, hbCommitNS, hbImbalNS int64
	var hbSerTicks, hbMemParTicks, hbLaneOps, hbLaneDrains int64
	if hbOn {
		hbNext = hb.every
	}
	emitHeartbeat := func(cycle int64, final bool) {
		resident := 0
		for _, sm := range sms {
			resident += sm.ResidentTBCount()
		}
		hb.fn(Heartbeat{
			Kernel: launch.Program.Name, Scheduler: res.Scheduler,
			Cycle: cycle, ResidentTBs: resident, PendingTBs: pending,
			Iters: hbIters, FFJumps: hbJumps,
			SMWorkers: smWorkers, ParTicks: hbParTicks,
			TickNS: hbTickNS, CommitNS: hbCommitNS, ImbalanceNS: hbImbalNS,
			SerialTicks: hbSerTicks, MemsysParTicks: hbMemParTicks,
			LaneOps: hbLaneOps, LaneDrains: hbLaneDrains,
			Final: final,
		})
		hbIters, hbJumps = 0, 0
		hbParTicks, hbTickNS, hbCommitNS, hbImbalNS = 0, 0, 0, 0
		hbSerTicks, hbMemParTicks, hbLaneOps, hbLaneDrains = 0, 0, 0, 0
	}

	// commitLanes is phase 2 of a fanned iteration: one pass over the
	// SMs in ID order, draining each SM's staged lane and then its
	// retire buffer. Fusing the two walks into one pass is identity-
	// safe: lane effects (wheel buckets, interconnect sends, carrier
	// pops) and retire effects (assignDirty, timeline rows) touch
	// disjoint state, so the per-SM interleaving leaves every structure
	// exactly as the two separate SM-ordered passes would have.
	commitLanes := func() {
		for i, l := range lanes {
			if hbOn {
				if n := l.Pending(); n > 0 {
					hbLaneOps += int64(n)
					hbLaneDrains++
				}
			}
			l.Drain()
			for j, tb := range retired[i] {
				handleRetire(tb)
				retired[i][j] = nil
			}
			retired[i] = retired[i][:0]
		}
	}

	lastIssued := int64(-1)
	lastIssuedCycle := int64(0)
	checkCtx := ctx.Done() != nil
	var iters int64
	var cycle int64
	for cycle = 1; ; cycle = nextCycle(cycle, lastIssuedCycle) {
		iters++
		if checkCtx && iters%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("gpu: %s/%s aborted at cycle %d: %w",
					launch.Program.Name, res.Scheduler, cycle, err)
			}
		}
		wheel.Advance(cycle)
		// Fan-out decision for this iteration. eligible: the pool exists
		// and enough SMs are awake to ever justify fanning. fanned: the
		// adaptive controller's (or, with the controller disabled, the
		// static rule's) verdict. Both paths commit identical state, so
		// this is pure execution policy (DESIGN.md §12.5).
		eligible := par && awake >= fanOutMin
		fanned := eligible
		sampled := false
		if ctl != nil && eligible {
			fanned = ctl.parallel()
			sampled = ctl.sampleIter()
		}
		awakeNow := awake
		// On fanned iterations the DRAM channel scan is staged by the
		// coordinator while the workers run phase 1 and committed at the
		// top of phase 2; otherwise it runs here, at the classic
		// pre-assign position. Channel state is untouched between here
		// and the barrier (assign and SM ticks never reach the channels),
		// so both scans observe identical state.
		stageMem := fanned && memsysPar
		if !stageMem {
			mem.Tick(cycle)
		} else if hbOn && mem.QueuedDRAM() > 0 {
			hbMemParTicks++
		}
		assign(cycle)
		done := true
		// The watchdog's issued sum is accumulated once all SM ticks for
		// the cycle have completed: an SM's WarpInstrs is final for the
		// cycle when its own Tick returns (no cross-SM path mutates it),
		// so serial fusing and the post-barrier pass compute the same
		// sum. trackSM in the same pass refreshes the sleep mirror and
		// wake-heap used by nextCycle.
		var issued int64
		if fanned {
			// Two-phase commit: parallel staged ticks, then a serial
			// drain in SM-ID order that replays the shared side effects
			// exactly as the serial loop would have interleaved them.
			timed := hbOn || sampled
			pool.timed = timed
			var t0, t1 time.Time
			if timed {
				t0 = time.Now()
			}
			if stageMem {
				pool.tick(cycle, mem)
			} else {
				pool.tick(cycle, nil)
			}
			if timed {
				t1 = time.Now()
			}
			if stageMem {
				mem.TickCommit()
			}
			commitLanes()
			if timed {
				tickNS := t1.Sub(t0).Nanoseconds()
				commitNS := time.Since(t1).Nanoseconds()
				imbal := pool.imbalance()
				if hbOn {
					hbParTicks++
					hbTickNS += tickNS
					hbCommitNS += commitNS
					hbImbalNS += imbal
				}
				if sampled {
					ctl.record(awakeNow, tickNS+commitNS, tickNS, imbal)
				}
			}
			for i, sm := range sms {
				if !sm.Done() {
					done = false
				}
				issued += sm.WarpInstrs
				trackSM(i, sm)
			}
		} else {
			var t0 time.Time
			if sampled {
				t0 = time.Now()
			}
			for i, sm := range sms {
				sm.Tick(cycle)
				if !sm.Done() {
					done = false
				}
				issued += sm.WarpInstrs
				trackSM(i, sm)
			}
			if sampled {
				ctl.record(awakeNow, time.Since(t0).Nanoseconds(), 0, 0)
			}
			if par {
				// The staged retire closure is wired whenever the pool
				// exists, including iterations ticked serially below
				// the fan-out threshold or by the controller's choice.
				drainRetires()
				if hbOn {
					hbSerTicks++
				}
			}
		}
		if eligible && ctl != nil && ctl.endIter() && !pool.dynamic {
			pool.dynamic = true
		}
		if opts.SampleEvery > 0 && cycle%opts.SampleEvery == 0 {
			sample(cycle)
		}
		if hbOn {
			hbIters++
			if cycle > hbPrevCycle+1 {
				hbJumps++
			}
			hbPrevCycle = cycle
			if cycle >= hbNext {
				emitHeartbeat(cycle, false)
				hbNext = cycle - cycle%hb.every + hb.every
			}
		}
		if done && pending == 0 {
			break
		}
		if cycle >= maxCycles {
			return nil, fmt.Errorf("gpu: %s/%s exceeded %d cycles (runaway)",
				launch.Program.Name, res.Scheduler, maxCycles)
		}
		// Deadlock watchdog: total issued instructions must keep moving.
		if issued != lastIssued {
			lastIssued = issued
			lastIssuedCycle = cycle
		} else if cycle-lastIssuedCycle > stallWindow {
			return nil, fmt.Errorf("gpu: %s/%s deadlocked: no issue since cycle %d (pending TBs %d)",
				launch.Program.Name, res.Scheduler, lastIssuedCycle, pending)
		}
	}

	res.Cycles = cycle
	if hbOn {
		emitHeartbeat(cycle, true)
	}
	for _, sm := range sms {
		res.Stalls.Add(sm.StallTotal())
		res.WarpInstrs += sm.WarpInstrs
		res.ThreadInstrs += sm.ThreadInstrs
		res.WarpDisparitySum += sm.WarpDisparitySum
		res.BarrierWaitSum += sm.BarrierWaitSum
		res.BarrierEpisodes += sm.BarrierEpisodes
	}
	res.Mem = mem.Stats()
	if tr, ok := sms[0].Sched.(OrderTracer); ok {
		res.OrderTrace = tr.OrderSamples()
	}
	stats.SortSpansByStart(res.Timeline)
	if rec != nil {
		rec.FinishRun(res.Kernel, res.Scheduler, res.Cycles, res.Stalls)
		if opts.Flight == nil && sink != nil {
			sink.fn(rec.Capture())
		}
	}
	return res, nil
}
