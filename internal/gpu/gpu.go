// Package gpu assembles the full simulated GPU — SM array, global
// Thread Block Scheduler (gigathread engine), memory hierarchy, clock —
// and runs kernel launches to completion.
package gpu

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/timing"
)

// Options tune one simulation run.
type Options struct {
	// Timeline records per-TB lifetimes (Fig. 2 data).
	Timeline bool
	// SampleEvery, when positive, records a stats.Sample of the
	// aggregate counters every SampleEvery cycles (phase analysis).
	SampleEvery int64
	// MaxCycles aborts a runaway simulation; 0 means the default.
	MaxCycles int64
	// StallWindow aborts when no SM issues for this many consecutive
	// cycles (deadlock watchdog); 0 means the default.
	StallWindow int64
}

const (
	defaultMaxCycles   = 200_000_000
	defaultStallWindow = 2_000_000
)

// OrderTracer is implemented by scheduling policies that record
// Table IV-style priority-order samples (PRO does, on SM 0).
type OrderTracer interface {
	OrderSamples() []stats.OrderSample
}

// ctxCheckInterval is how many loop iterations pass between context
// checks in RunContext's cycle loop. The interval counts iterations, not
// cycles: with fast-forwarding a single iteration can cover far more
// than 4096 cycles, so a cycle-count poll would not bound cancellation
// latency. A non-blocking poll every 4096 iterations is invisible in
// profiles (each iteration simulates 14 SMs plus the memory system) yet
// bounds the abort delay to well under a millisecond of wall time.
const ctxCheckInterval = 4096

// Run simulates launch on a GPU described by cfg under the scheduling
// policy produced by factory, and returns the collected result.
func Run(cfg *config.Config, launch *engine.Launch, factory engine.Factory, opts Options) (*stats.KernelResult, error) {
	return RunContext(context.Background(), cfg, launch, factory, opts)
}

// RunContext is Run with cooperative cancellation: the cycle loop polls
// ctx every ctxCheckInterval cycles and aborts with ctx's error when it
// is cancelled, so a context cancel (daemon shutdown, per-job timeout)
// stops an in-flight simulation within a bounded delay instead of
// letting it run to completion. Cancellation never alters results: a
// run that completes did so on the exact same cycle-by-cycle path as
// under Run.
func RunContext(ctx context.Context, cfg *config.Config, launch *engine.Launch, factory engine.Factory, opts Options) (*stats.KernelResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := launch.Validate(cfg); err != nil {
		return nil, err
	}
	maxCycles := opts.MaxCycles
	if maxCycles <= 0 {
		maxCycles = defaultMaxCycles
	}
	stallWindow := opts.StallWindow
	if stallWindow <= 0 {
		stallWindow = defaultStallWindow
	}

	wheel := timing.NewWheel()
	mem := memsys.New(cfg, wheel)

	pending := launch.GridTBs
	assignedNext := 0

	res := &stats.KernelResult{
		Kernel:  launch.Program.Name,
		TBCount: launch.GridTBs,
	}

	// assignDirty tracks whether a TB placement could possibly succeed:
	// residency only frees on TB retirement, so after a probe that finds
	// every SM full, the per-cycle assignment step is skipped until the
	// next retire instead of re-probing all SMs each cycle.
	assignDirty := true
	sms := make([]*engine.SM, cfg.NumSMs)
	for i := range sms {
		sm := engine.NewSM(i, cfg, wheel, mem, launch, factory)
		sm.PendingTBsFn = func() int { return pending }
		sm.OnTBRetireFn = func(tb *engine.ThreadBlock, cycle int64) {
			assignDirty = true
			if opts.Timeline {
				res.Timeline = append(res.Timeline, stats.TBSpan{
					TB: tb.Global, SM: tb.SMID, Slot: tb.LaunchSeq,
					Start: tb.StartCycle, End: tb.EndCycle,
				})
			}
		}
		sms[i] = sm
	}
	res.Scheduler = sms[0].Sched.Name()

	// Thread Block Scheduler: breadth-first round-robin assignment; after
	// the initial fill, TBs go out one at a time as residency frees up
	// (paper Sec. I). rr persists across cycles so freed slots anywhere
	// get the next TB in grid order.
	rr := 0
	assign := func(cycle int64) {
		if !assignDirty {
			return
		}
		for pending > 0 {
			placed := false
			for probe := 0; probe < len(sms); probe++ {
				sm := sms[(rr+probe)%len(sms)]
				if sm.CanAccept() {
					sm.AssignTB(assignedNext, cycle)
					assignedNext++
					pending--
					rr = (rr + probe + 1) % len(sms)
					placed = true
					break
				}
			}
			if !placed {
				assignDirty = false
				return
			}
		}
	}

	// Sampling state: snapshot of the aggregate counters at the last
	// sample point.
	var lastSample struct {
		instrs int64
		stalls stats.StallBreakdown
	}
	sample := func(cycle int64) {
		var cur stats.StallBreakdown
		var instrs int64
		resident := 0
		for _, sm := range sms {
			cur.Add(sm.StallTotal())
			instrs += sm.WarpInstrs
			resident += sm.ResidentTBCount()
		}
		res.Samples = append(res.Samples, stats.Sample{
			Cycle:      cycle,
			WarpInstrs: instrs - lastSample.instrs,
			Stalls: stats.StallBreakdown{
				Issued:     cur.Issued - lastSample.stalls.Issued,
				Idle:       cur.Idle - lastSample.stalls.Idle,
				Scoreboard: cur.Scoreboard - lastSample.stalls.Scoreboard,
				Pipeline:   cur.Pipeline - lastSample.stalls.Pipeline,
			},
			ResidentTBs: resident,
			PendingTBs:  pending,
		})
		lastSample.instrs = instrs
		lastSample.stalls = cur
	}

	// nextCycle computes where the clock goes after an iteration at now —
	// the global fast-forward. Every cycle in (now, target) is provably a
	// no-op: each component reports the earliest future cycle at which it
	// could do anything (ok=false meaning "only another component's event
	// can activate me"), and the clock jumps to the minimum. Skipped
	// cycles would have run an empty loop body — no wheel events fire, no
	// DRAM arbitration can grant, every SM stays asleep, and assignment is
	// inert (it already drained at now, and residency only changes on an
	// SM's own issue path, impossible while asleep) — so results are
	// bit-identical to single-stepping. The jump is clamped to every
	// cycle the loop itself observes: the next sampling boundary (so the
	// sample fires on its exact cycle with stalls flushed identically),
	// the runaway limit, and the deadlock-watchdog deadline (so both
	// errors report the same cycle they would under single-stepping).
	ffOn := !cfg.DisableFastForward
	nextCycle := func(now, lastIssuedCycle int64) int64 {
		if !ffOn {
			return now + 1
		}
		target := int64(1<<63 - 1)
		for _, sm := range sms {
			at, ok := sm.NextEvent(now)
			if !ok {
				continue
			}
			if at <= now+1 {
				return now + 1
			}
			if at < target {
				target = at
			}
		}
		if at, ok := mem.NextEvent(now); ok {
			if at <= now+1 {
				return now + 1
			}
			if at < target {
				target = at
			}
		}
		if at, ok := wheel.NextEvent(); ok {
			if at <= now+1 {
				return now + 1
			}
			if at < target {
				target = at
			}
		}
		if target == 1<<63-1 {
			// Fully quiescent yet not done: a genuine wedge. Single-step
			// so the deadlock watchdog sees the identical cycle sequence.
			return now + 1
		}
		if opts.SampleEvery > 0 {
			if b := now - now%opts.SampleEvery + opts.SampleEvery; b < target {
				target = b
			}
		}
		if maxCycles < target {
			target = maxCycles
		}
		if d := lastIssuedCycle + stallWindow + 1; d < target {
			target = d
		}
		return target
	}

	// Telemetry heartbeat (internal/obs consumers): loaded once per run,
	// so registration mid-run is not observed. With no listener the loop
	// below pays a single always-false branch per iteration; the
	// listener itself only reads, so results are bit-identical either
	// way (asserted by TestHeartbeatDoesNotAlterResults).
	hb := hbState.Load()
	hbOn := hb != nil
	var hbPrevCycle, hbIters, hbJumps, hbNext int64
	if hbOn {
		hbNext = hb.every
	}
	emitHeartbeat := func(cycle int64, final bool) {
		resident := 0
		for _, sm := range sms {
			resident += sm.ResidentTBCount()
		}
		hb.fn(Heartbeat{
			Kernel: launch.Program.Name, Scheduler: res.Scheduler,
			Cycle: cycle, ResidentTBs: resident, PendingTBs: pending,
			Iters: hbIters, FFJumps: hbJumps, Final: final,
		})
		hbIters, hbJumps = 0, 0
	}

	lastIssued := int64(-1)
	lastIssuedCycle := int64(0)
	checkCtx := ctx.Done() != nil
	var iters int64
	var cycle int64
	for cycle = 1; ; cycle = nextCycle(cycle, lastIssuedCycle) {
		iters++
		if checkCtx && iters%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("gpu: %s/%s aborted at cycle %d: %w",
					launch.Program.Name, res.Scheduler, cycle, err)
			}
		}
		wheel.Advance(cycle)
		mem.Tick(cycle)
		assign(cycle)
		done := true
		// The watchdog's issued sum is fused into the tick loop: an SM's
		// WarpInstrs is final for this cycle once its own Tick returns
		// (no cross-SM path mutates it), so the fused sum equals the
		// post-loop sum the naive loop computed.
		var issued int64
		for _, sm := range sms {
			sm.Tick(cycle)
			if !sm.Done() {
				done = false
			}
			issued += sm.WarpInstrs
		}
		if opts.SampleEvery > 0 && cycle%opts.SampleEvery == 0 {
			sample(cycle)
		}
		if hbOn {
			hbIters++
			if cycle > hbPrevCycle+1 {
				hbJumps++
			}
			hbPrevCycle = cycle
			if cycle >= hbNext {
				emitHeartbeat(cycle, false)
				hbNext = cycle - cycle%hb.every + hb.every
			}
		}
		if done && pending == 0 {
			break
		}
		if cycle >= maxCycles {
			return nil, fmt.Errorf("gpu: %s/%s exceeded %d cycles (runaway)",
				launch.Program.Name, res.Scheduler, maxCycles)
		}
		// Deadlock watchdog: total issued instructions must keep moving.
		if issued != lastIssued {
			lastIssued = issued
			lastIssuedCycle = cycle
		} else if cycle-lastIssuedCycle > stallWindow {
			return nil, fmt.Errorf("gpu: %s/%s deadlocked: no issue since cycle %d (pending TBs %d)",
				launch.Program.Name, res.Scheduler, lastIssuedCycle, pending)
		}
	}

	res.Cycles = cycle
	if hbOn {
		emitHeartbeat(cycle, true)
	}
	for _, sm := range sms {
		res.Stalls.Add(sm.StallTotal())
		res.WarpInstrs += sm.WarpInstrs
		res.ThreadInstrs += sm.ThreadInstrs
		res.WarpDisparitySum += sm.WarpDisparitySum
		res.BarrierWaitSum += sm.BarrierWaitSum
		res.BarrierEpisodes += sm.BarrierEpisodes
	}
	res.Mem = mem.Stats()
	if tr, ok := sms[0].Sched.(OrderTracer); ok {
		res.OrderTrace = tr.OrderSamples()
	}
	stats.SortSpansByStart(res.Timeline)
	return res, nil
}
