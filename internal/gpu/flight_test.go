package gpu

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/flight"
	"repro/internal/isa"
	"repro/internal/schedreg"
)

// flProg is a kernel that exercises every recorder hook: per-iteration
// global loads (memory spans, scoreboard stalls), a barrier (barrier
// events), a store (fire-and-forget spans) and enough TBs that SMs
// retire and re-assign blocks.
func flProg(t *testing.T) *engine.Launch {
	t.Helper()
	b := isa.NewBuilder("fl-kernel")
	b.Loop(isa.LoopSpec{Min: 48, Max: 48})
	b.IAdd(1, 0, 0)
	b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
	b.Bar()
	b.EndLoop()
	b.StGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &engine.Launch{Program: p, GridTBs: 32, BlockThreads: 256, Seed: 7}
}

// TestFlightRecorderDoesNotAlterResults is the bit-identity gate for
// the flight recorder: for every registered scheduler, a run with a
// full-fidelity recorder attached must produce byte-identical results
// (including the sampled timeline) to a bare run, while the capture
// itself is sane — events and spans were recorded, the report's stall
// taxonomy matches the run's, and every memory span's component split
// sums exactly to its total latency.
func TestFlightRecorderDoesNotAlterResults(t *testing.T) {
	launch := flProg(t)
	for _, name := range schedreg.All() {
		t.Run(name, func(t *testing.T) {
			factory, err := schedreg.New(name)
			if err != nil {
				t.Fatal(err)
			}
			bare, err := Run(config.GTX480(), launch, factory, Options{SampleEvery: 512})
			if err != nil {
				t.Fatal(err)
			}

			rec := flight.New(flight.Options{ProgressEvery: 1, MemSample: 1})
			observed, err := Run(config.GTX480(), launch, factory,
				Options{SampleEvery: 512, Flight: rec})
			if err != nil {
				t.Fatal(err)
			}

			a, _ := json.Marshal(bare)
			b, _ := json.Marshal(observed)
			if !bytes.Equal(a, b) {
				t.Fatal("flight recorder changed the simulation result")
			}

			if !rec.Recorded() {
				t.Fatal("recorder not finalized after a successful run")
			}
			rep := rec.Report()
			if rep.Kernel != "fl-kernel" || rep.Scheduler != bare.Scheduler {
				t.Fatalf("report mislabeled: %s/%s", rep.Kernel, rep.Scheduler)
			}
			if rep.Cycles != bare.Cycles {
				t.Fatalf("report cycles %d, run cycles %d", rep.Cycles, bare.Cycles)
			}
			if rep.Stalls.Total() != bare.Stalls.Total() {
				t.Fatalf("report stall total %d, run stall total %d",
					rep.Stalls.Total(), bare.Stalls.Total())
			}
			if rep.Events == 0 {
				t.Fatal("no events captured")
			}
			if rep.Spans == 0 {
				t.Fatal("no memory spans captured")
			}
			if len(rep.LeastProgressed) == 0 {
				t.Fatal("least-progressed table empty despite finished warps")
			}

			cap := rec.Capture()
			for i := range cap.Spans {
				sp := &cap.Spans[i]
				c := sp.Components()
				sum := c.ICNTReq + c.L2Service + c.L2MSHR + c.DRAMQueue +
					c.DRAMService + c.ICNTResp
				if sum != c.Total {
					t.Fatalf("span %d components sum %d != total %d (%+v)", i, sum, c.Total, sp)
				}
				if c.Total != sp.Deliver-sp.Inject {
					t.Fatalf("span %d total %d != Deliver-Inject %d", i, c.Total, sp.Deliver-sp.Inject)
				}
				if c.Total < 0 {
					t.Fatalf("span %d negative total: %+v", i, sp)
				}
			}
		})
	}
}

// TestFlightRecorderParallelDoesNotAlterResults extends the gate to
// the parallel SM-tick path: a recorder-attached run with 4 SM workers
// must stay byte-identical to a bare serial run. Under -race this also
// proves the per-SM traces are single-writer and the memory-side trace
// stays on the coordinator.
func TestFlightRecorderParallelDoesNotAlterResults(t *testing.T) {
	launch := flProg(t)
	factory, err := schedreg.New("PRO")
	if err != nil {
		t.Fatal(err)
	}
	serial := config.GTX480()
	serial.DisableSMParallel = true
	bare, err := Run(serial, launch, factory, Options{})
	if err != nil {
		t.Fatal(err)
	}

	rec := flight.New(flight.Options{ProgressEvery: 1})
	par := config.GTX480()
	par.ParallelSMs = 4
	observed, err := Run(par, launch, factory, Options{Flight: rec})
	if err != nil {
		t.Fatal(err)
	}

	a, _ := json.Marshal(bare)
	b, _ := json.Marshal(observed)
	if !bytes.Equal(a, b) {
		t.Fatal("parallel SM ticking with a flight recorder changed the simulation result")
	}
	if rep := rec.Report(); rep.Events == 0 || rep.Spans == 0 {
		t.Fatalf("parallel run captured events=%d spans=%d", rep.Events, rep.Spans)
	}
}

// TestFlightSinkRecordsRun pins the process-wide sink: with no
// per-run recorder in Options, a registered sink receives one capture
// per run; an explicit Options.Flight recorder takes precedence and
// the sink stays silent for that run.
func TestFlightSinkRecordsRun(t *testing.T) {
	launch := flProg(t)
	factory, err := schedreg.New("LRR")
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu       sync.Mutex
		captures []*flight.Capture
	)
	SetFlightSink(func(c *flight.Capture) {
		mu.Lock()
		captures = append(captures, c)
		mu.Unlock()
	}, flight.Options{})
	defer SetFlightSink(nil, flight.Options{})

	if _, err := Run(config.GTX480(), launch, factory, Options{}); err != nil {
		t.Fatal(err)
	}
	if len(captures) != 1 {
		t.Fatalf("sink received %d captures, want 1", len(captures))
	}
	if c := captures[0]; c.Kernel != "fl-kernel" || len(c.Events) == 0 {
		t.Fatalf("sink capture malformed: kernel=%q events=%d", c.Kernel, len(c.Events))
	}

	// An explicit recorder wins; the sink must not fire again.
	rec := flight.New(flight.Options{})
	if _, err := Run(config.GTX480(), launch, factory, Options{Flight: rec}); err != nil {
		t.Fatal(err)
	}
	if len(captures) != 1 {
		t.Fatalf("sink fired for a run with an explicit recorder (%d captures)", len(captures))
	}
	if !rec.Recorded() {
		t.Fatal("explicit recorder not finalized")
	}
}
