package gpu

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/schedreg"
)

// hbProg is a modest kernel: long enough to cross several small
// heartbeat intervals, short enough for a unit test.
func hbProg(t *testing.T) *engine.Launch {
	t.Helper()
	b := isa.NewBuilder("hb-kernel")
	b.Loop(isa.LoopSpec{Min: 64, Max: 64})
	b.IAdd(1, 0, 0)
	b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
	b.EndLoop()
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &engine.Launch{Program: p, GridTBs: 32, BlockThreads: 256, Seed: 7}
}

// TestHeartbeatDoesNotAlterResults is the bit-identity gate for the
// telemetry hook: a run with an aggressive heartbeat listener must
// produce byte-identical results to a bare run, while the listener
// observes sane, monotonic snapshots.
func TestHeartbeatDoesNotAlterResults(t *testing.T) {
	launch := hbProg(t)
	factory, err := schedreg.New("PRO")
	if err != nil {
		t.Fatal(err)
	}

	SetHeartbeat(nil, 0)
	bare, err := Run(config.GTX480(), launch, factory, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu    sync.Mutex
		beats []Heartbeat
	)
	SetHeartbeat(func(h Heartbeat) {
		mu.Lock()
		beats = append(beats, h)
		mu.Unlock()
	}, 256)
	defer SetHeartbeat(nil, 0)
	observed, err := Run(config.GTX480(), launch, factory, Options{})
	if err != nil {
		t.Fatal(err)
	}

	a, _ := json.Marshal(bare)
	b, _ := json.Marshal(observed)
	if !bytes.Equal(a, b) {
		t.Fatal("heartbeat listener changed the simulation result")
	}

	if len(beats) < 2 {
		t.Fatalf("only %d heartbeats for a %d-cycle run at interval 256", len(beats), bare.Cycles)
	}
	last := beats[len(beats)-1]
	if !last.Final || last.Cycle != bare.Cycles {
		t.Fatalf("final heartbeat = %+v, want Final at cycle %d", last, bare.Cycles)
	}
	var iters int64
	prev := int64(0)
	for i, h := range beats {
		if h.Cycle < prev {
			t.Fatalf("heartbeat %d went backwards: %d after %d", i, h.Cycle, prev)
		}
		prev = h.Cycle
		if h.Kernel != "hb-kernel" || h.Scheduler != bare.Scheduler {
			t.Fatalf("heartbeat %d mislabeled: %+v", i, h)
		}
		if h.ResidentTBs < 0 || h.PendingTBs < 0 || h.PendingTBs > launch.GridTBs {
			t.Fatalf("heartbeat %d occupancy out of range: %+v", i, h)
		}
		iters += h.Iters
	}
	if iters <= 0 || iters > bare.Cycles {
		t.Fatalf("summed heartbeat iters %d out of range (0, %d]", iters, bare.Cycles)
	}
}

// TestHeartbeatParallelDoesNotAlterResults extends the bit-identity
// gate to the parallel SM-tick path: a run with both an aggressive
// heartbeat listener AND ParallelSMs workers must stay byte-identical
// to a bare serial run, and the parallel-phase telemetry (SMWorkers,
// ParTicks, TickNS/CommitNS deltas) must be sane — the per-shard
// timing merged at the phase barrier may not disturb results.
func TestHeartbeatParallelDoesNotAlterResults(t *testing.T) {
	launch := hbProg(t)
	factory, err := schedreg.New("PRO")
	if err != nil {
		t.Fatal(err)
	}

	SetHeartbeat(nil, 0)
	serial := config.GTX480()
	serial.DisableSMParallel = true
	bare, err := Run(serial, launch, factory, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu    sync.Mutex
		beats []Heartbeat
	)
	SetHeartbeat(func(h Heartbeat) {
		mu.Lock()
		beats = append(beats, h)
		mu.Unlock()
	}, 256)
	defer SetHeartbeat(nil, 0)
	par := config.GTX480()
	par.ParallelSMs = 4
	observed, err := Run(par, launch, factory, Options{})
	if err != nil {
		t.Fatal(err)
	}

	a, _ := json.Marshal(bare)
	b, _ := json.Marshal(observed)
	if !bytes.Equal(a, b) {
		t.Fatal("parallel SM ticking with a heartbeat listener changed the simulation result")
	}

	if len(beats) < 2 {
		t.Fatalf("only %d heartbeats for a %d-cycle run at interval 256", len(beats), bare.Cycles)
	}
	var parTicks, tickNS, commitNS int64
	for i, h := range beats {
		if h.SMWorkers != 4 {
			t.Fatalf("heartbeat %d reports SMWorkers=%d, want 4", i, h.SMWorkers)
		}
		if h.ParTicks < 0 || h.TickNS < 0 || h.CommitNS < 0 || h.ImbalanceNS < 0 {
			t.Fatalf("heartbeat %d has negative phase telemetry: %+v", i, h)
		}
		parTicks += h.ParTicks
		tickNS += h.TickNS
		commitNS += h.CommitNS
	}
	if parTicks <= 0 {
		t.Fatal("no parallel ticks observed with ParallelSMs=4 on a 15-SM run")
	}
	if parTicks > bare.Cycles {
		t.Fatalf("summed ParTicks %d exceeds total cycles %d", parTicks, bare.Cycles)
	}
	if tickNS <= 0 || commitNS <= 0 {
		t.Fatalf("phase timing not measured under a listener: tick=%dns commit=%dns", tickNS, commitNS)
	}
}

// TestHeartbeatObservesFastForwardJumps pins that the FFJumps delta
// actually counts event-horizon jumps on a memory-bound kernel, where
// fast-forward is known to engage.
func TestHeartbeatObservesFastForwardJumps(t *testing.T) {
	launch := hbProg(t)
	factory, err := schedreg.New("LRR")
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu    sync.Mutex
		jumps int64
	)
	SetHeartbeat(func(h Heartbeat) {
		mu.Lock()
		jumps += h.FFJumps
		mu.Unlock()
	}, 256)
	defer SetHeartbeat(nil, 0)
	if _, err := Run(config.GTX480(), launch, factory, Options{}); err != nil {
		t.Fatal(err)
	}
	if jumps == 0 {
		t.Fatal("no fast-forward jumps observed on a memory-bound kernel")
	}
}
