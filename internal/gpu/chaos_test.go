package gpu_test

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// chaos is an adversarial scheduling policy: every cycle it presents the
// slot's warps in a pseudo-random order (and randomly hides a prefix of
// them). The engine must tolerate ANY such policy — completing the
// kernel, conserving work, and keeping the stall accounting consistent —
// because the Scheduler interface promises policies only control
// priority, never correctness.
type chaos struct {
	engine.BasePolicy
	sm  *engine.SM
	rng *xrand.RNG
}

func newChaos(seed uint64) engine.Factory {
	return func(sm *engine.SM) engine.Scheduler {
		return &chaos{sm: sm, rng: xrand.NewRNG(seed ^ uint64(sm.ID)<<32)}
	}
}

func (c *chaos) Name() string { return "chaos" }

func (c *chaos) Order(slot int, dst []*engine.Warp, _ int64) []*engine.Warp {
	start := len(dst)
	for _, w := range c.sm.WarpSlots {
		if w != nil && w.SchedSlot == slot && !w.Finished() {
			dst = append(dst, w)
		}
	}
	own := dst[start:]
	// Fisher-Yates with the deterministic RNG.
	for i := len(own) - 1; i > 0; i-- {
		j := c.rng.Intn(i + 1)
		own[i], own[j] = own[j], own[i]
	}
	// Occasionally hide a random suffix — a policy is allowed to expose
	// only part of its warps in a cycle. Hiding everything forever would
	// deadlock, but the RNG re-rolls each cycle so exposure is fair.
	if len(own) > 1 && c.rng.Intn(4) == 0 {
		keep := 1 + c.rng.Intn(len(own))
		dst = dst[:start+keep]
	}
	return dst
}

func TestChaosMonkeySchedulerPreservesInvariants(t *testing.T) {
	launch := barrierKernel(t)
	cfg := miniConfig()
	ref, err := gpu.Run(cfg, launch, sched.NewLRR, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		r, err := gpu.Run(cfg, launch, newChaos(seed), gpu.Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if r.ThreadInstrs != ref.ThreadInstrs {
			t.Logf("seed %d: work not conserved (%d vs %d)", seed, r.ThreadInstrs, ref.ThreadInstrs)
			return false
		}
		slots := r.Cycles * int64(cfg.NumSMs) * int64(cfg.SchedulersPerSM)
		if r.Stalls.Slots() != slots {
			t.Logf("seed %d: accounting broken", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestChaosOnDivergentMemoryKernel drives the adversary over the memory
// system and SIMT divergence simultaneously.
func TestChaosOnDivergentMemoryKernel(t *testing.T) {
	b := isa.NewBuilder("chaos-mem")
	b.Loop(isa.LoopSpec{Min: 1, Max: 6, Imb: isa.ImbPerThread})
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatRandom, Region: 1 << 21, IterVaries: true})
	b.IfRandom(0.5)
	b.AtomGlobal(2, 1, isa.MemSpec{Pattern: isa.PatTBLocal, Region: 1 << 16, Space: 1})
	b.EndIf()
	b.StGlobal(1, isa.MemSpec{Pattern: isa.PatStrided, Stride: 256, Space: 2})
	b.EndLoop()
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := miniConfig()
	launch := &engine.Launch{Program: prog, GridTBs: 12, BlockThreads: 128, Seed: 77}
	ref, err := gpu.Run(cfg, launch, sched.NewGTO, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 6; seed++ {
		r, err := gpu.Run(cfg, launch, newChaos(seed), gpu.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.ThreadInstrs != ref.ThreadInstrs {
			t.Fatalf("seed %d: work not conserved", seed)
		}
	}
}
