package gpu

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/memsys"
)

// resolveSMWorkers turns the config knobs into a concrete worker count
// for one run. 1 means the serial tick loop; the choice can never
// change results (the parallel path is bit-identical by construction —
// see DESIGN.md, "Parallel SM ticking"), only wall-clock time.
func resolveSMWorkers(cfg *config.Config) int {
	if cfg.DisableSMParallel {
		return 1
	}
	n := cfg.ParallelSMs
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > cfg.NumSMs {
		n = cfg.NumSMs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// fanOutMin is the hard floor on fanning out: below two awake SMs the
// coordinator always ticks the (mostly sleeping) array itself and skips
// two channel rendezvous per worker. Purely a latency heuristic: both
// paths commit identical state, so the threshold cannot affect results.
const fanOutMin = 2

// Adaptive fan-out controller tuning. The controller replaces the old
// always-fan-out-above-the-floor rule with a measured choice: it clocks
// a subsample of eligible iterations in whichever mode is active,
// maintains per-mode EWMA estimates of nanoseconds per awake SM, and at
// window boundaries steers to the cheaper mode. Because both modes are
// bit-identical, the controller is free to flip on wall-clock evidence
// alone — it is an execution knob, never identity (DESIGN.md §12.5).
const (
	// ctlWindow is how many eligible iterations one decision window
	// spans; the steady mode is reconsidered only at window boundaries
	// so the pool is not thrashed by noise.
	ctlWindow = 256
	// ctlSampleMask subsamples timing: one eligible iteration in 8 is
	// clocked, keeping the clock calls off seven-eighths of iterations.
	ctlSampleMask = 7
	// ctlProbeEvery: after this many steady windows the controller runs
	// one window in the non-steady mode so a stale estimate (awake-SM
	// mix changed, host load changed) can win back.
	ctlProbeEvery = 16
	// ctlHysteresis: the other mode must beat the steady one by more
	// than 10% before the controller flips.
	ctlHysteresis = 1.10
	// ctlEWMA is the fold-in weight of a fresh window estimate.
	ctlEWMA = 0.5
	// ctlImbalFrac and ctlImbalStreak trigger the shard rebalance: when
	// the slowest-minus-fastest worker shard time exceeds this fraction
	// of the parallel phase for this many consecutive measured parallel
	// windows, the pool switches from static interleaved shards to
	// dynamic SM claiming.
	ctlImbalFrac   = 0.5
	ctlImbalStreak = 2
)

// fanoutCtl decides, for each eligible iteration (worker pool present
// and awake >= fanOutMin), whether to fan out or run the fused serial
// loop. serNS/parNS are EWMA estimates of nanoseconds per awake SM per
// iteration (0 = not yet measured); the active window runs one mode and
// refines that mode's estimate.
type fanoutCtl struct {
	steadyPar bool // the mode the estimates currently favour
	probing   bool // this window runs the opposite mode to refresh it

	serNS, parNS float64

	iter       int   // eligible-iteration counter (sampling phase)
	winLeft    int   // eligible iterations left in the current window
	winNS      int64 // summed sampled span ns this window
	winAwake   int64 // summed awake counts over the sampled iterations
	winSamples int
	winTickNS  int64 // parallel windows: summed phase-1 ns
	winImbalNS int64 // parallel windows: summed shard spread ns

	steady   int // completed decided windows since the last probe
	imbalHot int // consecutive parallel windows above the imbalance bar
}

func newFanoutCtl() *fanoutCtl {
	// Start in parallel mode: the run was configured with workers, so
	// give the staged path the first estimate (and the differential
	// tests their staged coverage) before probing serial.
	return &fanoutCtl{steadyPar: true, winLeft: ctlWindow}
}

// parallel reports the mode for the current window.
func (c *fanoutCtl) parallel() bool { return c.steadyPar != c.probing }

// sampleIter advances the eligible-iteration counter and reports
// whether this iteration should be clocked.
func (c *fanoutCtl) sampleIter() bool {
	c.iter++
	return c.iter&ctlSampleMask == 0
}

// record adds one clocked iteration: ns spans the whole SM phase of the
// active mode (serial: the fused tick loop; parallel: fan-out plus
// commit). tickNS and imbalNS carry the parallel split and are zero on
// serial samples.
func (c *fanoutCtl) record(awake int, ns, tickNS, imbalNS int64) {
	c.winNS += ns
	c.winAwake += int64(awake)
	c.winSamples++
	c.winTickNS += tickNS
	c.winImbalNS += imbalNS
}

// endIter closes one eligible iteration; at window boundaries it folds
// the window's measurement into the active mode's estimate and picks
// the next window's mode. goDynamic=true asks the caller to switch the
// pool to dynamic shard claiming (persistent imbalance).
func (c *fanoutCtl) endIter() (goDynamic bool) {
	c.winLeft--
	if c.winLeft > 0 {
		return false
	}
	c.winLeft = ctlWindow
	ranPar := c.parallel()
	if c.winSamples > 0 && c.winAwake > 0 {
		est := float64(c.winNS) / float64(c.winAwake)
		if ranPar {
			c.parNS = fold(c.parNS, est)
			if c.winTickNS > 0 {
				if float64(c.winImbalNS) > ctlImbalFrac*float64(c.winTickNS) {
					c.imbalHot++
					if c.imbalHot >= ctlImbalStreak {
						c.imbalHot = 0
						goDynamic = true
					}
				} else {
					c.imbalHot = 0
				}
			}
		} else {
			c.serNS = fold(c.serNS, est)
		}
	}
	c.winNS, c.winAwake, c.winSamples = 0, 0, 0
	c.winTickNS, c.winImbalNS = 0, 0

	c.probing = false
	switch {
	case c.serNS == 0:
		// Serial never measured: probe it next (steadyPar is still
		// parallel here, so probing selects the serial loop).
		c.probing = c.steadyPar
	case c.parNS == 0:
		c.probing = !c.steadyPar
	default:
		if c.steadyPar && c.serNS*ctlHysteresis < c.parNS {
			c.steadyPar = false
		} else if !c.steadyPar && c.parNS*ctlHysteresis < c.serNS {
			c.steadyPar = true
		}
		c.steady++
		if c.steady >= ctlProbeEvery {
			c.steady = 0
			c.probing = true
		}
	}
	return goDynamic
}

func fold(ewma, fresh float64) float64 {
	if ewma == 0 {
		return fresh
	}
	return ewma*(1-ctlEWMA) + fresh*ctlEWMA
}

// smPool is the persistent worker pool that runs phase 1 of the
// two-phase commit: each worker ticks a set of SMs and stages all
// shared side effects into the per-SM lanes. The coordinator then
// drains the lanes in SM-ID order (phase 2). Workers live for the whole
// run; a tick is one start send and one done receive per worker.
//
// Shard assignment has two modes. Static (the default): worker w owns
// the interleaved shard w, w+nw, ... Dynamic (entered when the fan-out
// controller sees persistent shard imbalance): workers claim SM indices
// one at a time off an atomic cursor, so a cluster of expensive SMs
// cannot pin one worker. Phase-1 execution order across SMs is free —
// each SM is ticked exactly once and stages only into its own lane —
// so the mode switch cannot affect results, only balance.
type smPool struct {
	sms   []*engine.SM
	lanes []*memsys.Lane
	nw    int
	start []chan int64
	done  chan struct{}
	fault chan any

	// timed asks workers to clock their shard (fan-out controller
	// samples and heartbeat telemetry). dynamic selects the claiming
	// mode. Both are written by the coordinator between ticks; the
	// channel rendezvous orders them against worker reads.
	timed   bool
	dynamic bool
	cursor  atomic.Int64
	shardNS []int64
}

func newSMPool(sms []*engine.SM, lanes []*memsys.Lane, nw int) *smPool {
	p := &smPool{
		sms:     sms,
		lanes:   lanes,
		nw:      nw,
		start:   make([]chan int64, nw),
		done:    make(chan struct{}, nw),
		fault:   make(chan any, nw),
		shardNS: make([]int64, nw),
	}
	for w := 0; w < nw; w++ {
		p.start[w] = make(chan int64, 1)
		go p.worker(w)
	}
	return p
}

func (p *smPool) worker(w int) {
	for cycle := range p.start[w] {
		p.tickShard(w, cycle)
		p.done <- struct{}{}
	}
}

// tickShard runs worker w's share of the SMs for one cycle, converting
// a panic into a fault report so the coordinator's barrier never
// deadlocks.
func (p *smPool) tickShard(w int, cycle int64) {
	defer func() {
		if r := recover(); r != nil {
			p.fault <- r
		}
	}()
	var t0 time.Time
	timed := p.timed
	if timed {
		t0 = time.Now()
	}
	if p.dynamic {
		for {
			i := int(p.cursor.Add(1)) - 1
			if i >= len(p.sms) {
				break
			}
			p.sms[i].TickStaged(cycle, p.lanes[i])
		}
	} else {
		for i := w; i < len(p.sms); i += p.nw {
			p.sms[i].TickStaged(cycle, p.lanes[i])
		}
	}
	if timed {
		p.shardNS[w] = time.Since(t0).Nanoseconds()
	}
}

// tick fans one cycle out to every worker and waits for all of them
// (the phase barrier). While the workers run, the coordinator — which
// would otherwise idle at the barrier — overlaps the staged DRAM
// channel scan when mem is non-nil (the grants are committed by the
// caller, after the barrier, in channel order). A worker panic is
// re-raised here, on the coordinator goroutine, after the barrier
// completes.
func (p *smPool) tick(cycle int64, mem *memsys.System) {
	if p.dynamic {
		p.cursor.Store(0)
	}
	for _, ch := range p.start {
		ch <- cycle
	}
	if mem != nil {
		mem.TickStage(cycle)
	}
	for range p.start {
		<-p.done
	}
	select {
	case r := <-p.fault:
		panic(r)
	default:
	}
}

// imbalance returns the slowest-minus-fastest shard time of the last
// timed tick.
func (p *smPool) imbalance() int64 {
	lo, hi := p.shardNS[0], p.shardNS[0]
	for _, ns := range p.shardNS[1:] {
		if ns < lo {
			lo = ns
		}
		if ns > hi {
			hi = ns
		}
	}
	return hi - lo
}

// close shuts the workers down. RunContext only calls it with no tick
// in flight (between iterations, or after a barrier re-panic unwound).
func (p *smPool) close() {
	for _, ch := range p.start {
		close(ch)
	}
}
