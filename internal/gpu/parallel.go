package gpu

import (
	"runtime"
	"time"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/memsys"
)

// resolveSMWorkers turns the config knobs into a concrete worker count
// for one run. 1 means the serial tick loop; the choice can never
// change results (the parallel path is bit-identical by construction —
// see DESIGN.md, "Parallel SM ticking"), only wall-clock time.
func resolveSMWorkers(cfg *config.Config) int {
	if cfg.DisableSMParallel {
		return 1
	}
	n := cfg.ParallelSMs
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > cfg.NumSMs {
		n = cfg.NumSMs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// fanOutMin is the minimum number of awake SMs for which an iteration
// uses the worker pool; below it the coordinator ticks the (mostly
// sleeping) array itself and skips two channel rendezvous per worker.
// Purely a latency heuristic: both paths commit identical state, so the
// threshold cannot affect results.
const fanOutMin = 2

// smPool is the persistent worker pool that runs phase 1 of the
// two-phase commit: each worker owns a static interleaved shard of the
// SM array (worker w ticks SMs w, w+nw, ...) and stages all shared side
// effects into the per-SM lanes. The coordinator then drains the lanes
// in SM-ID order (phase 2). Workers live for the whole run; a tick is
// one start send and one done receive per worker.
type smPool struct {
	sms   []*engine.SM
	lanes []*memsys.Lane
	nw    int
	start []chan int64
	done  chan struct{}
	fault chan any

	// timed asks workers to clock their shard (heartbeat telemetry
	// only). Written by the coordinator between ticks; the channel
	// rendezvous orders it against worker reads.
	timed   bool
	shardNS []int64
}

func newSMPool(sms []*engine.SM, lanes []*memsys.Lane, nw int) *smPool {
	p := &smPool{
		sms:     sms,
		lanes:   lanes,
		nw:      nw,
		start:   make([]chan int64, nw),
		done:    make(chan struct{}, nw),
		fault:   make(chan any, nw),
		shardNS: make([]int64, nw),
	}
	for w := 0; w < nw; w++ {
		p.start[w] = make(chan int64, 1)
		go p.worker(w)
	}
	return p
}

func (p *smPool) worker(w int) {
	for cycle := range p.start[w] {
		p.tickShard(w, cycle)
		p.done <- struct{}{}
	}
}

// tickShard runs worker w's SMs for one cycle, converting a panic into
// a fault report so the coordinator's barrier never deadlocks.
func (p *smPool) tickShard(w int, cycle int64) {
	defer func() {
		if r := recover(); r != nil {
			p.fault <- r
		}
	}()
	var t0 time.Time
	timed := p.timed
	if timed {
		t0 = time.Now()
	}
	for i := w; i < len(p.sms); i += p.nw {
		p.sms[i].TickStaged(cycle, p.lanes[i])
	}
	if timed {
		p.shardNS[w] = time.Since(t0).Nanoseconds()
	}
}

// tick fans one cycle out to every worker and waits for all of them
// (the phase barrier). A worker panic is re-raised here, on the
// coordinator goroutine, after the barrier completes.
func (p *smPool) tick(cycle int64) {
	for _, ch := range p.start {
		ch <- cycle
	}
	for range p.start {
		<-p.done
	}
	select {
	case r := <-p.fault:
		panic(r)
	default:
	}
}

// imbalance returns the slowest-minus-fastest shard time of the last
// timed tick.
func (p *smPool) imbalance() int64 {
	lo, hi := p.shardNS[0], p.shardNS[0]
	for _, ns := range p.shardNS[1:] {
		if ns < lo {
			lo = ns
		}
		if ns > hi {
			hi = ns
		}
	}
	return hi - lo
}

// close shuts the workers down. RunContext only calls it with no tick
// in flight (between iterations, or after a barrier re-panic unwound).
func (p *smPool) close() {
	for _, ch := range p.start {
		close(ch)
	}
}
