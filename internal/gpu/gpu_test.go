package gpu_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/sched"
	"repro/internal/stats"
)

// miniConfig is a small GPU so integration tests run in milliseconds.
func miniConfig() *config.Config {
	c := config.GTX480()
	c.NumSMs = 2
	c.L2Partitions = 2
	c.L2Size = 256 * 1024
	return c
}

// factories returns the four policies under test.
func factories() map[string]engine.Factory {
	return map[string]engine.Factory{
		"LRR": sched.NewLRR,
		"GTO": sched.NewGTO,
		"TL":  sched.NewTL,
		"PRO": core.New(),
	}
}

// barrierKernel exercises barriers, divergence, imbalance and all memory
// paths at once.
func barrierKernel(t *testing.T) *engine.Launch {
	t.Helper()
	b := isa.NewBuilder("itest")
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.StShared(1, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.Bar()
	b.Loop(isa.LoopSpec{Min: 2, Max: 4, Imb: isa.ImbPerThread})
	b.LdShared(2, isa.MemSpec{Pattern: isa.PatStrided, Stride: 32, IterVaries: true})
	b.IfRandom(0.5)
	b.FFMA(3, 2, 1, 3)
	b.Else()
	b.SFU(3, 2)
	b.EndIf()
	b.EndLoop()
	b.Bar()
	b.LdGlobal(4, isa.MemSpec{Pattern: isa.PatRandom, Region: 1 << 20, Space: 1})
	b.AtomGlobal(5, 4, isa.MemSpec{Pattern: isa.PatTBLocal, Region: 1 << 16, Space: 2})
	b.StGlobal(5, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 3})
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &engine.Launch{
		Program:      prog,
		GridTBs:      24,
		BlockThreads: 96,
		Seed:         99,
	}
}

func runAll(t *testing.T, cfg *config.Config, launch *engine.Launch, opts gpu.Options) map[string]*stats.KernelResult {
	t.Helper()
	out := map[string]*stats.KernelResult{}
	for name, f := range factories() {
		r, err := gpu.Run(cfg, launch, f, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = r
	}
	return out
}

func TestAllSchedulersCompleteAndConserveWork(t *testing.T) {
	cfg := miniConfig()
	launch := barrierKernel(t)
	results := runAll(t, cfg, launch, gpu.Options{})
	ref := results["LRR"]
	if ref.ThreadInstrs == 0 || ref.WarpInstrs == 0 {
		t.Fatal("no work executed")
	}
	for name, r := range results {
		// A scheduling policy may only change WHEN instructions execute,
		// never WHAT executes.
		if r.ThreadInstrs != ref.ThreadInstrs {
			t.Errorf("%s executed %d thread-instrs, LRR executed %d — work not conserved",
				name, r.ThreadInstrs, ref.ThreadInstrs)
		}
		if r.WarpInstrs != ref.WarpInstrs {
			t.Errorf("%s issued %d warp-instrs, LRR issued %d", name, r.WarpInstrs, ref.WarpInstrs)
		}
		if r.TBCount != launch.GridTBs {
			t.Errorf("%s TBCount = %d, want %d", name, r.TBCount, launch.GridTBs)
		}
	}
}

func TestStallAccountingInvariant(t *testing.T) {
	// Every scheduler-slot cycle is classified exactly once:
	// issued + idle + scoreboard + pipeline == cycles × SMs × slots.
	cfg := miniConfig()
	launch := barrierKernel(t)
	for name, r := range runAll(t, cfg, launch, gpu.Options{}) {
		slots := r.Cycles * int64(cfg.NumSMs) * int64(cfg.SchedulersPerSM)
		if got := r.Stalls.Slots(); got != slots {
			t.Errorf("%s: accounted %d scheduler-cycles, want %d", name, got, slots)
		}
		if r.Stalls.Issued != r.WarpInstrs {
			t.Errorf("%s: issued slots %d != warp instrs %d", name, r.Stalls.Issued, r.WarpInstrs)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := miniConfig()
	launch := barrierKernel(t)
	for name, f := range factories() {
		a, err := gpu.Run(cfg, launch, f, gpu.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := gpu.Run(cfg, launch, f, gpu.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles || a.ThreadInstrs != b.ThreadInstrs || a.Stalls != b.Stalls {
			t.Errorf("%s: repeated run diverged: %d vs %d cycles", name, a.Cycles, b.Cycles)
		}
	}
}

func TestSeedChangesExecution(t *testing.T) {
	cfg := miniConfig()
	l1 := barrierKernel(t)
	l2 := *l1
	l2.Seed = 12345
	a, err := gpu.Run(cfg, l1, sched.NewLRR, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := gpu.Run(cfg, &l2, sched.NewLRR, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.ThreadInstrs == b.ThreadInstrs && a.Cycles == b.Cycles {
		t.Error("different seeds produced identical executions (suspicious for a divergent kernel)")
	}
}

func TestTimelineSpans(t *testing.T) {
	cfg := miniConfig()
	launch := barrierKernel(t)
	r, err := gpu.Run(cfg, launch, sched.NewLRR, gpu.Options{Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Timeline) != launch.GridTBs {
		t.Fatalf("timeline has %d spans, want %d", len(r.Timeline), launch.GridTBs)
	}
	seen := map[int]bool{}
	for _, s := range r.Timeline {
		if s.End <= s.Start {
			t.Errorf("TB %d span [%d,%d] not positive", s.TB, s.Start, s.End)
		}
		if s.End > r.Cycles {
			t.Errorf("TB %d ends at %d after kernel end %d", s.TB, s.End, r.Cycles)
		}
		if s.SM < 0 || s.SM >= cfg.NumSMs {
			t.Errorf("TB %d on bogus SM %d", s.TB, s.SM)
		}
		if seen[s.TB] {
			t.Errorf("TB %d recorded twice", s.TB)
		}
		seen[s.TB] = true
	}
	// Residency: at no point may more TBs be live on an SM than the
	// occupancy limit.
	limit := launch.ResidentTBs(cfg)
	for _, s := range r.Timeline {
		live := 0
		for _, o := range r.Timeline {
			if o.SM == s.SM && o.Start <= s.Start && o.End > s.Start {
				live++
			}
		}
		if live > limit {
			t.Fatalf("SM %d had %d live TBs at cycle %d, limit %d", s.SM, live, s.Start, limit)
		}
	}
}

func TestNoTimelineByDefault(t *testing.T) {
	cfg := miniConfig()
	launch := barrierKernel(t)
	r, err := gpu.Run(cfg, launch, sched.NewLRR, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Timeline) != 0 {
		t.Fatal("timeline recorded without being requested")
	}
}

func TestSampledTimeSeries(t *testing.T) {
	cfg := miniConfig()
	launch := barrierKernel(t)
	r, err := gpu.Run(cfg, launch, sched.NewLRR, gpu.Options{SampleEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	var instrs int64
	var slots int64
	prev := int64(0)
	for _, s := range r.Samples {
		if s.Cycle <= prev || s.Cycle%100 != 0 {
			t.Fatalf("bad sample cycle %d after %d", s.Cycle, prev)
		}
		prev = s.Cycle
		if s.WarpInstrs != s.Stalls.Issued {
			t.Fatalf("window instrs %d != issued slots %d", s.WarpInstrs, s.Stalls.Issued)
		}
		if s.ResidentTBs < 0 || s.PendingTBs < 0 {
			t.Fatal("negative occupancy")
		}
		instrs += s.WarpInstrs
		slots += s.Stalls.Slots()
		// Each window accounts exactly window × SMs × slots scheduler
		// cycles.
		want := int64(100 * cfg.NumSMs * cfg.SchedulersPerSM)
		if s.Stalls.Slots() != want {
			t.Fatalf("window slots %d, want %d", s.Stalls.Slots(), want)
		}
	}
	// Windows cover all but the final partial window.
	if instrs > r.WarpInstrs {
		t.Fatalf("sampled instrs %d exceed total %d", instrs, r.WarpInstrs)
	}
	if r.WarpInstrs-instrs > r.WarpInstrs/2 {
		t.Fatalf("samples cover too little: %d of %d", instrs, r.WarpInstrs)
	}
}

func TestWarpDivergenceMetricsPopulated(t *testing.T) {
	cfg := miniConfig()
	launch := barrierKernel(t)
	r, err := gpu.Run(cfg, launch, sched.NewLRR, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.BarrierEpisodes == 0 {
		t.Fatal("barrier kernel recorded no barrier episodes")
	}
	if r.AvgBarrierWait() <= 0 {
		t.Fatal("zero barrier wait with imbalanced warps")
	}
	// Per-thread imbalanced loop: warps of a TB must finish at
	// different cycles.
	if r.WarpDisparitySum == 0 {
		t.Fatal("no warp finish disparity despite per-thread imbalance")
	}
	if r.AvgWarpDisparity() < 0 {
		t.Fatal("negative disparity")
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	cfg := miniConfig()
	launch := barrierKernel(t)
	_, err := gpu.Run(cfg, launch, sched.NewLRR, gpu.Options{MaxCycles: 10})
	if err == nil {
		t.Fatal("MaxCycles did not abort")
	}
}

func TestSingleTBGridCompletes(t *testing.T) {
	cfg := miniConfig()
	launch := barrierKernel(t)
	one := *launch
	one.GridTBs = 1
	for name, f := range factories() {
		r, err := gpu.Run(cfg, &one, f, gpu.Options{})
		if err != nil {
			t.Fatalf("%s on 1-TB grid: %v", name, err)
		}
		if r.Cycles == 0 {
			t.Fatalf("%s: zero cycles", name)
		}
	}
}

func TestInvalidLaunchRejected(t *testing.T) {
	cfg := miniConfig()
	launch := barrierKernel(t)
	bad := *launch
	bad.BlockThreads = 5000
	if _, err := gpu.Run(cfg, &bad, sched.NewLRR, gpu.Options{}); err == nil {
		t.Fatal("oversized block accepted")
	}
}

func TestMemCountersPopulated(t *testing.T) {
	cfg := miniConfig()
	launch := barrierKernel(t)
	r, err := gpu.Run(cfg, launch, sched.NewLRR, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mem.L1Accesses == 0 || r.Mem.L2Accesses == 0 || r.Mem.DRAMReqs == 0 {
		t.Fatalf("memory hierarchy unused: %+v", r.Mem)
	}
	if r.Mem.L1Misses > r.Mem.L1Accesses {
		t.Fatal("more L1 misses than accesses")
	}
}

func TestSchedulerNameInResult(t *testing.T) {
	cfg := miniConfig()
	launch := barrierKernel(t)
	r, err := gpu.Run(cfg, launch, core.New(), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheduler != "PRO" {
		t.Fatalf("Scheduler = %q, want PRO", r.Scheduler)
	}
}

func TestBreadthFirstAssignment(t *testing.T) {
	// A grid of exactly 2 TBs per SM must spread evenly at launch: with
	// round-robin assignment every SM's first two TBs are index i and
	// i+NumSMs.
	cfg := miniConfig()
	launch := barrierKernel(t)
	two := *launch
	two.GridTBs = 2 * cfg.NumSMs
	r, err := gpu.Run(cfg, &two, sched.NewLRR, gpu.Options{Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	perSM := map[int][]int{}
	for _, sp := range r.Timeline {
		perSM[sp.SM] = append(perSM[sp.SM], sp.TB)
	}
	for sm := 0; sm < cfg.NumSMs; sm++ {
		tbs := perSM[sm]
		if len(tbs) != 2 {
			t.Fatalf("SM %d ran %d TBs, want 2", sm, len(tbs))
		}
		// Breadth-first: the SM's two TBs differ by NumSMs.
		lo, hi := tbs[0], tbs[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi-lo != cfg.NumSMs {
			t.Fatalf("SM %d got TBs %v; expected stride %d", sm, tbs, cfg.NumSMs)
		}
	}
}

func TestOrderTraceOnlyCoversSM0(t *testing.T) {
	cfg := miniConfig()
	launch := barrierKernel(t)
	r, err := gpu.Run(cfg, launch, core.New(core.WithOrderTrace(), core.WithThreshold(50)), gpu.Options{Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.OrderTrace) == 0 {
		t.Fatal("no order samples")
	}
	sm0 := map[int]bool{}
	for _, sp := range r.Timeline {
		if sp.SM == 0 {
			sm0[sp.TB] = true
		}
	}
	for _, s := range r.OrderTrace {
		for _, tb := range s.Order {
			if !sm0[tb] {
				t.Fatalf("order sample contains TB %d which never ran on SM 0", tb)
			}
		}
	}
}
