package xrand

import (
	"testing"
	"testing/quick"
)

func TestSplitmix64KnownSequence(t *testing.T) {
	// Reference values for seed 0 from the canonical splitmix64
	// implementation (Vigna).
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := Splitmix64(&state); got != w {
			t.Fatalf("Splitmix64 value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestHash64Deterministic(t *testing.T) {
	f := func(x uint64) bool { return Hash64(x) == Hash64(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64NotIdentity(t *testing.T) {
	diff := 0
	for x := uint64(0); x < 1000; x++ {
		if Hash64(x) != x {
			diff++
		}
	}
	if diff < 999 {
		t.Fatalf("Hash64 looks like identity: only %d/1000 values changed", diff)
	}
}

func TestMixersDistinguishArguments(t *testing.T) {
	if Mix2(1, 2) == Mix2(2, 1) {
		t.Error("Mix2 is symmetric; coordinates must not commute")
	}
	if Mix3(1, 2, 3) == Mix3(3, 2, 1) {
		t.Error("Mix3 is symmetric")
	}
	if Mix4(1, 2, 3, 4) == Mix4(4, 3, 2, 1) {
		t.Error("Mix4 is symmetric")
	}
}

func TestUniform01Range(t *testing.T) {
	f := func(h uint64) bool {
		u := Uniform01(h)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniform01Coverage(t *testing.T) {
	// Hashing consecutive integers should spread roughly uniformly:
	// check decile occupancy.
	var buckets [10]int
	const n = 10000
	for i := 0; i < n; i++ {
		u := Uniform01(Hash64(uint64(i)))
		buckets[int(u*10)]++
	}
	for d, c := range buckets {
		if c < n/20 || c > n/5 {
			t.Errorf("decile %d has %d of %d samples; poor uniformity", d, c, n)
		}
	}
}

func TestBelowRange(t *testing.T) {
	f := func(h uint64, n uint16) bool {
		m := int(n%1000) + 1
		v := Below(h, m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBelowPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Below(h, 0) did not panic")
		}
	}()
	Below(1, 0)
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs collided %d/100 times", same)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(8)
		if v < 0 || v >= 8 {
			t.Fatalf("Intn(8) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("Intn(8) hit only %d of 8 values in 1000 draws", len(seen))
	}
}
