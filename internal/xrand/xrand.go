// Package xrand provides small, fast, deterministic pseudo-random
// primitives used throughout the simulator.
//
// The simulator must be bit-for-bit reproducible across runs and across Go
// releases, and must be able to derive independent, stateless random values
// from coordinates such as (kernel, thread block, thread, pc, iteration).
// math/rand offers neither property conveniently, so we use splitmix64 — a
// tiny, well-mixed 64-bit finalizer — both as a stream generator and as a
// stateless hash.
package xrand

// Splitmix64 advances *state by the splitmix64 increment and returns the
// next value of the sequence. It is the canonical generator from
// Steele, Lea & Flood, "Fast Splittable Pseudorandom Number Generators".
func Splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 mixes x through the splitmix64 finalizer. It is a stateless,
// high-quality 64-bit hash suitable for deriving per-coordinate randomness.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix2 hashes two coordinates into one value.
func Mix2(a, b uint64) uint64 {
	return Hash64(a*0x9e3779b97f4a7c15 ^ Hash64(b))
}

// Mix3 hashes three coordinates into one value.
func Mix3(a, b, c uint64) uint64 {
	return Hash64(Mix2(a, b) ^ Hash64(c)*0xda942042e4dd58b5)
}

// Mix4 hashes four coordinates into one value.
func Mix4(a, b, c, d uint64) uint64 {
	return Hash64(Mix3(a, b, c) ^ Hash64(d)*0xca01f9dd51b11cb3)
}

// Uniform01 maps a 64-bit hash value to [0,1) with 53-bit resolution.
func Uniform01(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// Below maps h to [0,n). n must be positive.
func Below(h uint64, n int) int {
	if n <= 0 {
		panic("xrand: Below requires positive n")
	}
	return int(h % uint64(n))
}

// RNG is a splitmix64 stream with explicit state, for the few places that
// want sequential draws rather than coordinate hashing.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 { return Splitmix64(&r.state) }

// Float64 returns a value in [0,1).
func (r *RNG) Float64() float64 { return Uniform01(r.Next()) }

// Intn returns a value in [0,n). n must be positive.
func (r *RNG) Intn(n int) int { return Below(r.Next(), n) }
