package flight

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/obstest"
	"repro/internal/stats"
)

// TestFlightRingWrapKeepsNewest pins the ring semantics: when the
// event ring fills, the oldest events are overwritten (and counted as
// dropped), and events() still reads back in chronological order.
func TestFlightRingWrapKeepsNewest(t *testing.T) {
	r := New(Options{RingEvents: 8})
	r.Start(1)
	tr := r.SM(0)
	tr.Size(4, 2)

	for i := 0; i < 20; i++ {
		tr.OnWarpFinish(int64(i), i%4, 0, int64(i), 0)
	}
	evs := tr.events()
	if len(evs) != 8 {
		t.Fatalf("ring retained %d events, want 8", len(evs))
	}
	if tr.overwritten != 12 {
		t.Fatalf("overwritten = %d, want 12", tr.overwritten)
	}
	for i, e := range evs {
		if want := int64(12 + i); e.Cycle != want {
			t.Fatalf("event %d at cycle %d, want %d (not chronological)", i, e.Cycle, want)
		}
	}
	captured, dropped := r.eventCounts()
	if captured != 20 || dropped != 12 {
		t.Fatalf("counts captured=%d dropped=%d, want 20/12", captured, dropped)
	}
}

// TestFlightWarpSampling pins WarpSample: fine-grained events stick to
// slots where slot%N == 0, but warp-finish events are always kept so
// the least-progressed report stays complete.
func TestFlightWarpSampling(t *testing.T) {
	r := New(Options{WarpSample: 4})
	r.Start(1)
	tr := r.SM(0)
	tr.Size(8, 2)

	for w := 0; w < 8; w++ {
		tr.OnBarrier(1, w, 0)
		tr.OnWarpFinish(2, w, 0, 10, 0)
	}
	var barriers, finishes int
	for _, e := range tr.events() {
		switch e.Kind {
		case EvWarpBarrier:
			barriers++
			if e.Warp%4 != 0 {
				t.Fatalf("barrier recorded for unsampled warp %d", e.Warp)
			}
		case EvWarpFinish:
			finishes++
		}
	}
	if barriers != 2 {
		t.Fatalf("%d barrier events, want 2 (warps 0 and 4)", barriers)
	}
	if finishes != 8 {
		t.Fatalf("%d finish events, want all 8 regardless of sampling", finishes)
	}
}

// TestFlightStallDedup pins the flood guard: without cycle skipping
// the engine re-reports a blocked warp every cycle, so repeats of the
// same stall cause since the warp's last issue collapse to one event,
// and the pending-load sentinel maps to -1.
func TestFlightStallDedup(t *testing.T) {
	r := New(Options{ProgressEvery: 1})
	r.Start(1)
	tr := r.SM(0)
	tr.Size(4, 2)

	const pendingLoad = int64(1<<63 - 1)
	for cy := int64(1); cy <= 5; cy++ {
		tr.OnWarpStall(cy, 0, 0, 100) // same gate cycle, 5 cycles running
	}
	tr.OnIssue(6, 0, 0, 0, 1, 0) // issue resets the dedup state
	tr.OnWarpStall(7, 0, 0, 100) // same cause again → recorded again
	tr.OnWarpStall(8, 0, 0, pendingLoad)
	tr.OnWarpStall(9, 0, 0, pendingLoad)

	var stalls []Event
	for _, e := range tr.events() {
		if e.Kind == EvWarpStall {
			stalls = append(stalls, e)
		}
	}
	if len(stalls) != 3 {
		t.Fatalf("%d stall events, want 3 (dedup + reset + pending-load)", len(stalls))
	}
	if stalls[0].Cycle != 1 || stalls[1].Cycle != 7 {
		t.Fatalf("stall cycles %d,%d, want 1,7", stalls[0].Cycle, stalls[1].Cycle)
	}
	if stalls[2].A != -1 {
		t.Fatalf("pending-load stall A=%d, want -1", stalls[2].A)
	}
}

// TestFlightSpanComponentsSumIdentity pins the attribution identity on
// every span shape: the six components always sum exactly to
// Deliver-Inject.
func TestFlightSpanComponentsSumIdentity(t *testing.T) {
	cases := []struct {
		name string
		sp   MemSpan
	}{
		{"dram-path", MemSpan{Kind: SpanLoad,
			Inject: 10, L2At: 25, DRAMq: 40, Grant: 90, Done: 130, Deliver: 150}},
		{"l2-hit", MemSpan{Kind: SpanLoad, L2Hit: true,
			Inject: 10, L2At: 25, Done: 45, Deliver: 60}},
		{"l2-merged", MemSpan{Kind: SpanLoad, L2Merged: true,
			Inject: 10, L2At: 25, Done: 110, Deliver: 130}},
		{"store-fire-and-forget", MemSpan{Kind: SpanStore,
			Inject: 10, L2At: 25, DRAMq: 30, Grant: 55, Done: 80, Deliver: 80}},
		{"mshr-retry-wait", MemSpan{Kind: SpanLoad, Retries: 3,
			Inject: 10, L2At: 25, DRAMq: 200, Grant: 220, Done: 260, Deliver: 280}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.sp.Components()
			sum := c.ICNTReq + c.L2Service + c.L2MSHR + c.DRAMQueue + c.DRAMService + c.ICNTResp
			if sum != c.Total {
				t.Fatalf("components sum %d != total %d (%+v)", sum, c.Total, c)
			}
			if want := tc.sp.Deliver - tc.sp.Inject; c.Total != want {
				t.Fatalf("total %d != Deliver-Inject %d", c.Total, want)
			}
		})
	}
}

// TestFlightMemSampling pins MemSample: every Nth accepted transaction
// starts a span, the rest return nil so the carrier hooks stay single
// branches.
func TestFlightMemSampling(t *testing.T) {
	r := New(Options{MemSample: 3})
	m := r.Mem()
	var started int
	for i := 0; i < 9; i++ {
		sp := m.Start(SpanLoad, 0, 0, uint64(i), int64(i), 0)
		if sp != nil {
			started++
			sp.L2At, sp.Done, sp.Deliver = sp.Inject+1, sp.Inject+2, sp.Inject+3
			sp.L2Hit = true
			m.Commit(sp)
		}
	}
	if started != 3 {
		t.Fatalf("started %d spans of 9 at MemSample=3, want 3", started)
	}
	if got := len(m.spans()); got != 3 {
		t.Fatalf("committed %d spans, want 3", got)
	}
	if m.live != 0 {
		t.Fatalf("%d spans still live after commits", m.live)
	}
}

// TestFlightSpanRingWrap pins span-ring overwrite and pooling: commits
// beyond capacity overwrite the oldest span, and the pool recycles
// span objects instead of growing.
func TestFlightSpanRingWrap(t *testing.T) {
	r := New(Options{RingSpans: 4})
	m := r.Mem()
	for i := 0; i < 10; i++ {
		sp := m.Start(SpanLoad, 0, 0, uint64(i), int64(i), 0)
		sp.L2At, sp.Done, sp.Deliver = sp.Inject+1, sp.Inject+2, sp.Inject+3
		m.Commit(sp)
	}
	got := m.spans()
	if len(got) != 4 || m.overwritten != 6 {
		t.Fatalf("retained %d spans, overwritten %d; want 4/6", len(got), m.overwritten)
	}
	for i, sp := range got {
		if want := int64(6 + i); sp.Inject != want {
			t.Fatalf("span %d injected at %d, want %d (not commit order)", i, sp.Inject, want)
		}
	}
	if len(m.free) != 1 {
		t.Fatalf("span pool holds %d objects, want 1 (single live span recycled)", len(m.free))
	}
}

// TestFlightReportAggregates pins the report math on a hand-built
// capture: conditional means, hit/merge counters and the
// least-progressed ordering (ascending progress, TopN-truncated).
func TestFlightReportAggregates(t *testing.T) {
	r := New(Options{TopN: 2})
	r.Start(2)
	r.SM(0).Size(4, 2)
	r.SM(1).Size(4, 2)

	r.SM(0).OnWarpFinish(100, 0, 0, 50, 10)
	r.SM(0).OnWarpFinish(110, 1, 0, 5, 10)
	r.SM(1).OnWarpFinish(120, 0, 1, 20, 15)

	m := r.Mem()
	hit := m.Start(SpanLoad, 0, 0, 1, 10, 0)
	hit.L2At, hit.Done, hit.Deliver, hit.L2Hit = 20, 30, 40, true
	m.Commit(hit)
	miss := m.Start(SpanLoad, 1, 1, 2, 10, 0)
	miss.L2At, miss.DRAMq, miss.Grant, miss.Done, miss.Deliver = 20, 30, 60, 100, 120
	miss.RowHit = true
	m.Commit(miss)

	r.FinishRun("k", "s", 200, stats.StallBreakdown{Idle: 3, Scoreboard: 4, Pipeline: 5})
	rep := r.Report()

	if rep.Stalls.Total() != 12 {
		t.Fatalf("stall total %d, want 12", rep.Stalls.Total())
	}
	if rep.Events != 3 || rep.Spans != 2 {
		t.Fatalf("events=%d spans=%d, want 3/2", rep.Events, rep.Spans)
	}
	if rep.Mem.L2Hits != 1 || rep.Mem.RowHits != 1 {
		t.Fatalf("l2_hits=%d row_hits=%d, want 1/1", rep.Mem.L2Hits, rep.Mem.RowHits)
	}
	// mean total = ((40-10)+(120-10))/2; mean dram_queue over the one
	// span that has one = 30.
	if rep.Mem.MeanTotal != 70 {
		t.Fatalf("mean total %.1f, want 70", rep.Mem.MeanTotal)
	}
	if rep.Mem.MeanDRAMQueue != 30 {
		t.Fatalf("mean dram_queue %.1f, want 30", rep.Mem.MeanDRAMQueue)
	}
	if len(rep.LeastProgressed) != 2 {
		t.Fatalf("least-progressed lists %d warps, want TopN=2", len(rep.LeastProgressed))
	}
	if rep.LeastProgressed[0].Progress != 5 || rep.LeastProgressed[1].Progress != 20 {
		t.Fatalf("least-progressed not ascending: %+v", rep.LeastProgressed)
	}
	if lt := rep.LeastProgressed[0].Lifetime; lt != 100 {
		t.Fatalf("lifetime %d, want finish-spawn = 100", lt)
	}

	var buf bytes.Buffer
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "k/s") && !strings.Contains(buf.String(), "k") {
		t.Fatalf("text report missing run identity:\n%s", buf.String())
	}
}

// TestFlightMetricsExposition pins the sim_flight_* families: after a
// finished run flushes, the default registry exposes well-formed
// Prometheus text containing every family, including the pre-registered
// per-component attribution histograms.
func TestFlightMetricsExposition(t *testing.T) {
	r := New(Options{})
	r.Start(1)
	r.SM(0).Size(4, 2)
	r.SM(0).OnWarpFinish(10, 0, 0, 1, 0)
	m := r.Mem()
	sp := m.Start(SpanLoad, 0, 0, 1, 0, 0)
	sp.L2At, sp.DRAMq, sp.Grant, sp.Done, sp.Deliver = 10, 20, 50, 90, 100
	m.Commit(sp)
	r.FinishRun("k", "s", 100, stats.StallBreakdown{})

	var buf bytes.Buffer
	if err := obs.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	obstest.ValidatePrometheus(t, text)
	for _, family := range []string{
		"sim_flight_runs_total",
		"sim_flight_events_total",
		"sim_flight_events_dropped_total",
		"sim_flight_spans_total",
		"sim_flight_spans_dropped_total",
		"sim_flight_event_ring_occupancy_pct",
		"sim_flight_span_ring_occupancy_pct",
		`sim_flight_attr_cycles_bucket{component="icnt_req"`,
		`sim_flight_attr_cycles_bucket{component="l2_service"`,
		`sim_flight_attr_cycles_bucket{component="l2_mshr"`,
		`sim_flight_attr_cycles_bucket{component="dram_queue"`,
		`sim_flight_attr_cycles_bucket{component="dram_service"`,
		`sim_flight_attr_cycles_bucket{component="icnt_resp"`,
		`sim_flight_attr_cycles_bucket{component="total"`,
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition missing %s", family)
		}
	}
}
