package flight

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// Attribution aggregates span latency components over a capture. Means
// are conditional on the component being exercised (an L2 hit
// contributes no DRAM legs); MeanTotal is over all spans.
type Attribution struct {
	Spans int64 `json:"spans"`

	MeanTotal       float64 `json:"mean_total"`
	MeanICNTReq     float64 `json:"mean_icnt_req"`
	MeanL2Service   float64 `json:"mean_l2_service"`
	MeanL2MSHR      float64 `json:"mean_l2_mshr"`
	MeanDRAMQueue   float64 `json:"mean_dram_queue"`
	MeanDRAMService float64 `json:"mean_dram_service"`
	MeanICNTResp    float64 `json:"mean_icnt_resp"`

	L2Hits   int64 `json:"l2_hits"`
	L2Merges int64 `json:"l2_merges"`
	RowHits  int64 `json:"row_hits"`
	// MergedL1 counts L1-side same-line requests that rode on recorded
	// fills' MSHR entries (MSHR-merge wait, no downstream traffic).
	MergedL1 int64 `json:"merged_l1"`
	Retries  int64 `json:"retries"`
}

// WarpStat is one warp's final standing for the least-progressed table.
type WarpStat struct {
	SM       int   `json:"sm"`
	Warp     int   `json:"warp"`
	TB       int   `json:"tb"`
	Progress int64 `json:"progress"`
	Lifetime int64 `json:"lifetime"`
}

// Report is the aggregated view of one capture: the run's stall
// taxonomy extended with memory-side attribution, plus the top-N
// least-progressed warps (the paper's progress-divergence lens).
type Report struct {
	Kernel    string                `json:"kernel"`
	Scheduler string                `json:"scheduler"`
	Cycles    int64                 `json:"cycles"`
	Stalls    stats.StallBreakdown  `json:"stalls"`

	Events        int64 `json:"events"`
	EventsDropped int64 `json:"events_dropped"`
	Spans         int64 `json:"spans"`
	SpansDropped  int64 `json:"spans_dropped"`

	Mem             Attribution `json:"mem"`
	LeastProgressed []WarpStat  `json:"least_progressed"`
}

// Report aggregates the capture.
func (r *Recorder) Report() Report {
	rep := Report{
		Kernel:    r.kernel,
		Scheduler: r.scheduler,
		Cycles:    r.cycles,
		Stalls:    r.stalls,
	}
	rep.Events, rep.EventsDropped = r.eventCounts()
	rep.Spans, rep.SpansDropped = r.mem.count, r.mem.overwritten

	var sum SpanComponents
	var nReq, nHit, nMshr, nQ, nSvc, nResp int64
	for _, sp := range r.mem.spans() {
		c := sp.Components()
		sum.Total += c.Total
		if c.ICNTReq > 0 {
			sum.ICNTReq += c.ICNTReq
			nReq++
		}
		if c.L2Service > 0 {
			sum.L2Service += c.L2Service
			nHit++
		}
		if c.L2MSHR > 0 {
			sum.L2MSHR += c.L2MSHR
			nMshr++
		}
		if c.DRAMQueue > 0 {
			sum.DRAMQueue += c.DRAMQueue
			nQ++
		}
		if c.DRAMService > 0 {
			sum.DRAMService += c.DRAMService
			nSvc++
		}
		if c.ICNTResp > 0 {
			sum.ICNTResp += c.ICNTResp
			nResp++
		}
		if sp.L2Hit {
			rep.Mem.L2Hits++
		}
		if sp.L2Merged {
			rep.Mem.L2Merges++
		}
		if sp.RowHit {
			rep.Mem.RowHits++
		}
		rep.Mem.MergedL1 += int64(sp.Merged)
		rep.Mem.Retries += int64(sp.Retries)
	}
	n := int64(len(r.mem.spans()))
	rep.Mem.Spans = n
	rep.Mem.MeanTotal = mean(sum.Total, n)
	rep.Mem.MeanICNTReq = mean(sum.ICNTReq, nReq)
	rep.Mem.MeanL2Service = mean(sum.L2Service, nHit)
	rep.Mem.MeanL2MSHR = mean(sum.L2MSHR, nMshr)
	rep.Mem.MeanDRAMQueue = mean(sum.DRAMQueue, nQ)
	rep.Mem.MeanDRAMService = mean(sum.DRAMService, nSvc)
	rep.Mem.MeanICNTResp = mean(sum.ICNTResp, nResp)

	rep.LeastProgressed = r.leastProgressed()
	return rep
}

func mean(sum, n int64) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// leastProgressed ranks warps by final progress from their EvWarpFinish
// events (always recorded), ascending, ties broken by SM then warp slot
// for determinism.
func (r *Recorder) leastProgressed() []WarpStat {
	var ws []WarpStat
	for _, t := range r.sms {
		for _, e := range t.events() {
			if e.Kind != EvWarpFinish {
				continue
			}
			ws = append(ws, WarpStat{
				SM: int(e.SM), Warp: int(e.Warp), TB: int(e.TB),
				Progress: e.A, Lifetime: e.Cycle - e.B,
			})
		}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Progress != ws[j].Progress {
			return ws[i].Progress < ws[j].Progress
		}
		if ws[i].SM != ws[j].SM {
			return ws[i].SM < ws[j].SM
		}
		return ws[i].Warp < ws[j].Warp
	})
	if len(ws) > r.opts.TopN {
		ws = ws[:r.opts.TopN]
	}
	return ws
}

// WriteText renders the report as the human stall-attribution table.
func (rep Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "kernel=%s scheduler=%s cycles=%d\n", rep.Kernel, rep.Scheduler, rep.Cycles)
	fmt.Fprintf(w, "  stall slots: total=%d idle=%d scoreboard=%d pipeline=%d (issued=%d)\n",
		rep.Stalls.Total(), rep.Stalls.Idle, rep.Stalls.Scoreboard, rep.Stalls.Pipeline, rep.Stalls.Issued)
	fmt.Fprintf(w, "  events: %d captured, %d dropped; spans: %d captured, %d dropped\n",
		rep.Events, rep.EventsDropped, rep.Spans, rep.SpansDropped)
	m := rep.Mem
	fmt.Fprintf(w, "  mem latency (mean cycles over %d spans): total=%.1f\n", m.Spans, m.MeanTotal)
	fmt.Fprintf(w, "    icnt_req=%.1f l2_service=%.1f l2_mshr=%.1f dram_queue=%.1f dram_service=%.1f icnt_resp=%.1f\n",
		m.MeanICNTReq, m.MeanL2Service, m.MeanL2MSHR, m.MeanDRAMQueue, m.MeanDRAMService, m.MeanICNTResp)
	fmt.Fprintf(w, "    l2_hits=%d l2_merges=%d row_hits=%d l1_merged=%d retries=%d\n",
		m.L2Hits, m.L2Merges, m.RowHits, m.MergedL1, m.Retries)
	if len(rep.LeastProgressed) > 0 {
		fmt.Fprintf(w, "  least-progressed warps (progress, lifetime):\n")
		for _, ws := range rep.LeastProgressed {
			fmt.Fprintf(w, "    sm=%-2d warp=%-2d tb=%-4d progress=%-8d lifetime=%d\n",
				ws.SM, ws.Warp, ws.TB, ws.Progress, ws.Lifetime)
		}
	}
}
