package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Capture is a recorder's frozen output: run identity, the retained
// event and span windows in chronological order, and drop counts. It is
// safe to use after the run (the rings are copied out).
type Capture struct {
	Kernel    string               `json:"kernel"`
	Scheduler string               `json:"scheduler"`
	Cycles    int64                `json:"cycles"`
	Stalls    stallsJSON           `json:"stalls"`
	Events    []Event              `json:"events"`
	Spans     []MemSpan            `json:"spans"`
	EventsDropped int64            `json:"events_dropped"`
	SpansDropped  int64            `json:"spans_dropped"`
}

// stallsJSON mirrors stats.StallBreakdown with lower-case keys for the
// exported artifact.
type stallsJSON struct {
	Issued     int64 `json:"issued"`
	Idle       int64 `json:"idle"`
	Scoreboard int64 `json:"scoreboard"`
	Pipeline   int64 `json:"pipeline"`
}

// Capture freezes the recorder's rings into an export-ready snapshot.
func (r *Recorder) Capture() *Capture {
	c := &Capture{
		Kernel:    r.kernel,
		Scheduler: r.scheduler,
		Cycles:    r.cycles,
		Stalls: stallsJSON{
			Issued: r.stalls.Issued, Idle: r.stalls.Idle,
			Scoreboard: r.stalls.Scoreboard, Pipeline: r.stalls.Pipeline,
		},
		SpansDropped: r.mem.overwritten,
	}
	for _, t := range r.sms {
		c.Events = append(c.Events, t.events()...)
		c.EventsDropped += t.overwritten
	}
	c.Spans = append(c.Spans, r.mem.spans()...)
	return c
}

// perfEvent is one Chrome/Perfetto trace-event object. Cycles map to
// microseconds one-to-one (ts/dur are µs in the trace-event schema), so
// Perfetto's time axis reads directly as simulated cycles.
type perfEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Partition processes are offset past any plausible SM id so the two
// process families never collide in the trace.
const perfPartPidBase = 1000

// WritePerfetto writes the capture as Chrome trace-event JSON loadable
// by Perfetto (ui.perfetto.dev) and chrome://tracing. SMs become
// processes with one thread per warp slot (progress counters, lifetime
// slices, stall/barrier instants, scheduler events on the scheduler
// threads); L2 partitions become processes whose slices are
// memory-request spans with the latency attribution in args.
func (c *Capture) WritePerfetto(w io.Writer) error {
	var evs []perfEvent

	meta := func(pid int64, name string) {
		evs = append(evs, perfEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name}})
	}
	threadMeta := func(pid, tid int64, name string) {
		evs = append(evs, perfEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name}})
	}

	seenSM := map[int64]bool{}
	seenWarp := map[[2]int64]bool{}
	needSM := func(sm int64) {
		if !seenSM[sm] {
			seenSM[sm] = true
			meta(sm, fmt.Sprintf("SM %d", sm))
		}
	}
	needWarp := func(sm, warp int64) {
		k := [2]int64{sm, warp}
		if !seenWarp[k] {
			seenWarp[k] = true
			threadMeta(sm, warp+1, fmt.Sprintf("warp %d", warp))
		}
	}

	for _, e := range c.Events {
		sm := int64(e.SM)
		needSM(sm)
		switch e.Kind {
		case EvWarpProgress:
			needWarp(sm, int64(e.Warp))
			evs = append(evs, perfEvent{
				Name: fmt.Sprintf("warp %d progress", e.Warp), Ph: "C",
				Ts: e.Cycle, Pid: sm, Tid: int64(e.Warp) + 1,
				Args: map[string]any{"progress": e.A},
			})
		case EvWarpFinish:
			needWarp(sm, int64(e.Warp))
			dur := e.Cycle - e.B
			if dur < 1 {
				dur = 1
			}
			evs = append(evs, perfEvent{
				Name: fmt.Sprintf("warp %d tb%d", e.Warp, e.TB), Ph: "X",
				Ts: e.B, Dur: dur, Pid: sm, Tid: int64(e.Warp) + 1,
				Args: map[string]any{"progress": e.A},
			})
		case EvWarpStall:
			needWarp(sm, int64(e.Warp))
			cause := "scoreboard"
			if e.A < 0 {
				cause = "pending_load"
			}
			evs = append(evs, perfEvent{
				Name: "stall:" + cause, Ph: "i", S: "t",
				Ts: e.Cycle, Pid: sm, Tid: int64(e.Warp) + 1,
				Args: map[string]any{"ready_at": e.A},
			})
		case EvWarpBarrier:
			needWarp(sm, int64(e.Warp))
			evs = append(evs, perfEvent{
				Name: "barrier", Ph: "i", S: "t",
				Ts: e.Cycle, Pid: sm, Tid: int64(e.Warp) + 1,
			})
		case EvSlotState, EvSchedResort, EvSchedPick:
			// Scheduler threads sit above the warp threads at tid 0
			// offsets; encode scheduler slot into a negative-free tid
			// space past the warps by reusing tid 0 with named events.
			evs = append(evs, perfEvent{
				Name: e.Kind.String(), Ph: "i", S: "t",
				Ts: e.Cycle, Pid: sm, Tid: 0,
				Args: map[string]any{"slot": e.Slot, "a": e.A, "b": e.B, "warp": e.Warp},
			})
		case EvTBStart, EvTBFinish:
			evs = append(evs, perfEvent{
				Name: e.Kind.String(), Ph: "i", S: "t",
				Ts: e.Cycle, Pid: sm, Tid: 0,
				Args: map[string]any{"tb": e.TB, "a": e.A},
			})
		}
	}

	seenPart := map[int64]bool{}
	for i := range c.Spans {
		sp := &c.Spans[i]
		pid := perfPartPidBase + int64(sp.Part)
		if !seenPart[pid] {
			seenPart[pid] = true
			meta(pid, fmt.Sprintf("L2 partition %d", sp.Part))
		}
		co := sp.Components()
		dur := co.Total
		if dur < 1 {
			dur = 1
		}
		evs = append(evs, perfEvent{
			Name: fmt.Sprintf("%s sm%d 0x%x", sp.Kind, sp.SM, sp.Line), Ph: "X",
			Ts: sp.Inject, Dur: dur, Pid: pid, Tid: int64(sp.SM),
			Args: map[string]any{
				"total": co.Total,
				"icnt_req": co.ICNTReq, "l2_service": co.L2Service,
				"l2_mshr": co.L2MSHR, "dram_queue": co.DRAMQueue,
				"dram_service": co.DRAMService, "icnt_resp": co.ICNTResp,
				"l2_hit": sp.L2Hit, "l2_merged": sp.L2Merged,
				"row_hit": sp.RowHit, "l1_merged": sp.Merged,
				"retries": sp.Retries, "icnt_queue": sp.ICNTQueue,
			},
		})
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if _, err := fmt.Fprintf(bw, "{%q:%q,%q:", "displayTimeUnit", "ms", "traceEvents"); err != nil {
		return err
	}
	if err := enc.Encode(evs); err != nil {
		return err
	}
	if _, err := fmt.Fprint(bw, "}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteNDJSON writes the capture as newline-delimited JSON: one meta
// line, then one object per event and per span, with symbolic kinds and
// the per-span attribution inlined — the machine-consumption format.
func (c *Capture) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	metaLine := struct {
		Type          string     `json:"type"`
		Kernel        string     `json:"kernel"`
		Scheduler     string     `json:"scheduler"`
		Cycles        int64      `json:"cycles"`
		Stalls        stallsJSON `json:"stalls"`
		Events        int        `json:"events"`
		EventsDropped int64      `json:"events_dropped"`
		Spans         int        `json:"spans"`
		SpansDropped  int64      `json:"spans_dropped"`
	}{"meta", c.Kernel, c.Scheduler, c.Cycles, c.Stalls,
		len(c.Events), c.EventsDropped, len(c.Spans), c.SpansDropped}
	if err := enc.Encode(metaLine); err != nil {
		return err
	}
	for _, e := range c.Events {
		line := struct {
			Type  string `json:"type"`
			Kind  string `json:"kind"`
			Cycle int64  `json:"cycle"`
			SM    int16  `json:"sm"`
			Slot  int16  `json:"slot"`
			Warp  int32  `json:"warp"`
			TB    int32  `json:"tb"`
			A     int64  `json:"a"`
			B     int64  `json:"b"`
		}{"event", e.Kind.String(), e.Cycle, e.SM, e.Slot, e.Warp, e.TB, e.A, e.B}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for i := range c.Spans {
		sp := &c.Spans[i]
		co := sp.Components()
		line := struct {
			Type string         `json:"type"`
			Kind string         `json:"kind"`
			SM   int32          `json:"sm"`
			Part int32          `json:"part"`
			Line uint64         `json:"line"`
			Span MemSpan        `json:"span"`
			Attr SpanComponents `json:"attr"`
		}{"span", sp.Kind.String(), sp.SM, sp.Part, sp.Line, *sp, co}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
