package flight

import "repro/internal/obs"

// sim_flight_* metric families. Registered at package init so the
// daemon's /metrics endpoint exposes the series (with TYPE/HELP) before
// the first recorded run; flushed by Recorder.FinishRun.
var (
	mRuns = obs.NewCounter("sim_flight_runs_total",
		"Simulation runs captured by the flight recorder.")
	mEvents = obs.NewCounter("sim_flight_events_total",
		"Warp/scheduler events captured (retained + overwritten).")
	mEventsDropped = obs.NewCounter("sim_flight_events_dropped_total",
		"Events overwritten by ring wrap-around (oldest-first).")
	mSpans = obs.NewCounter("sim_flight_spans_total",
		"Memory-request lifecycle spans committed.")
	mSpansDropped = obs.NewCounter("sim_flight_spans_dropped_total",
		"Memory spans overwritten by ring wrap-around.")
	mEventRingOcc = obs.NewGauge("sim_flight_event_ring_occupancy_pct",
		"Event-ring occupancy after the last captured run (percent, max over SMs).")
	mSpanRingOcc = obs.NewGauge("sim_flight_span_ring_occupancy_pct",
		"Span-ring occupancy after the last captured run (percent).")
)

// attrBuckets are cycle-latency buckets for the attribution histograms:
// L2 hits land in the low buckets, DRAM row misses in the hundreds.
var attrBuckets = []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

var attrHists = map[string]*obs.Histogram{
	"icnt_req":     newAttrHist("icnt_req"),
	"l2_service":   newAttrHist("l2_service"),
	"l2_mshr":      newAttrHist("l2_mshr"),
	"dram_queue":   newAttrHist("dram_queue"),
	"dram_service": newAttrHist("dram_service"),
	"icnt_resp":    newAttrHist("icnt_resp"),
	"total":        newAttrHist("total"),
}

func newAttrHist(component string) *obs.Histogram {
	return obs.NewHistogram(
		obs.Labeled("sim_flight_attr_cycles", "component", component),
		"Memory-latency attribution per lifecycle component, in cycles.",
		attrBuckets)
}

// flushMetrics publishes one finished run's counts into the families.
func (r *Recorder) flushMetrics() {
	mRuns.Inc()
	captured, dropped := r.eventCounts()
	mEvents.Add(captured)
	mEventsDropped.Add(dropped)
	mSpans.Add(r.mem.count)
	mSpansDropped.Add(r.mem.overwritten)

	occ := int64(0)
	for _, t := range r.sms {
		if cap(t.ring) == 0 {
			continue
		}
		if p := int64(len(t.ring)) * 100 / int64(cap(t.ring)); p > occ {
			occ = p
		}
	}
	mEventRingOcc.Set(occ)
	if cap(r.mem.ring) > 0 {
		mSpanRingOcc.Set(int64(len(r.mem.ring)) * 100 / int64(cap(r.mem.ring)))
	} else {
		mSpanRingOcc.Set(0)
	}

	for _, sp := range r.mem.spans() {
		c := sp.Components()
		observeNonZero("icnt_req", c.ICNTReq)
		observeNonZero("l2_service", c.L2Service)
		observeNonZero("l2_mshr", c.L2MSHR)
		observeNonZero("dram_queue", c.DRAMQueue)
		observeNonZero("dram_service", c.DRAMService)
		observeNonZero("icnt_resp", c.ICNTResp)
		attrHists["total"].Observe(float64(c.Total))
	}
}

// observeNonZero skips components a span never reached (an L2 hit has
// no DRAM legs) so the histogram means stay per-component-conditional.
func observeNonZero(component string, v int64) {
	if v > 0 {
		attrHists[component].Observe(float64(v))
	}
}
