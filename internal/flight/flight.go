// Package flight is the simulation flight recorder: an opt-in,
// sampling, ring-buffered capture of one run's warp-granular execution
// story — per-warp progress timelines, scheduler-decision events, and
// memory-request lifecycle spans with latency attribution across the
// hierarchy (interconnect, L2/MSHR, DRAM queueing and service).
//
// The recorder follows the heartbeat discipline (internal/gpu): when no
// recorder is attached every instrumented site pays one predictable
// nil-check branch and nothing else; an attached recorder only ever
// *reads* simulation state and writes into its own buffers, so results
// are byte-identical with or without it (pinned by
// TestFlightRecorderDoesNotAlterResults). The gpu.Options kill switch
// carries `json:"-"` so result-cache keys are unaffected.
//
// Concurrency: under parallel SM ticking (DESIGN.md §12) the engine-side
// hooks fire from per-SM goroutines during phase 1, so each SM records
// into its own SMTrace ring and never touches shared recorder state.
// Every memory-side hook runs on the coordinator goroutine (carrier
// callbacks, lane drains, grant commits) or inside the staged DRAM scan
// whose results are published at the same barrier as the grants
// themselves, so MemTrace needs no locking either.
//
// Ring semantics are true flight-recorder semantics: when a ring fills,
// the oldest record is overwritten and counted as dropped, so a capture
// always holds the most recent window of the run.
package flight

import (
	"repro/internal/stats"
)

// Defaults for Options fields left zero.
const (
	DefaultRingEvents    = 1 << 14
	DefaultRingSpans     = 1 << 15
	DefaultProgressEvery = 32
	DefaultTopN          = 10
)

// Options tune one recorder. The zero value records everything at the
// default ring sizes and progress granularity.
type Options struct {
	// RingEvents is the per-SM event ring capacity (<=0 means
	// DefaultRingEvents). Oldest events are overwritten when it fills.
	RingEvents int
	// RingSpans is the committed memory-span ring capacity (<=0 means
	// DefaultRingSpans).
	RingSpans int
	// WarpSample samples warp-level events (progress points, stall
	// causes, barrier arrivals) to warp slots where slot%WarpSample == 0;
	// <=1 records every warp. Warp lifecycle (start/finish) events are
	// always recorded so the least-progressed report stays complete.
	WarpSample int
	// ProgressEvery records one progress point per that many issues of a
	// sampled warp (<=0 means DefaultProgressEvery). 1 records every
	// issue.
	ProgressEvery int
	// MemSample records every Nth accepted memory transaction as a span;
	// <=1 records all of them.
	MemSample int
	// TopN is how many least-progressed warps the report lists (<=0
	// means DefaultTopN).
	TopN int
}

func (o Options) withDefaults() Options {
	if o.RingEvents <= 0 {
		o.RingEvents = DefaultRingEvents
	}
	if o.RingSpans <= 0 {
		o.RingSpans = DefaultRingSpans
	}
	if o.WarpSample <= 1 {
		o.WarpSample = 1
	}
	if o.ProgressEvery <= 0 {
		o.ProgressEvery = DefaultProgressEvery
	}
	if o.MemSample <= 1 {
		o.MemSample = 1
	}
	if o.TopN <= 0 {
		o.TopN = DefaultTopN
	}
	return o
}

// EventKind enumerates warp/scheduler event types.
type EventKind uint8

const (
	// EvWarpProgress is a progress checkpoint of a sampled warp:
	// A = Warp.Progress (the paper's metric), B = PC.
	EvWarpProgress EventKind = iota
	// EvWarpStall marks a warp transitioning to blocked: A = the cycle
	// its registers become ready, or -1 when it waits on a pending load
	// (resolution is event-driven).
	EvWarpStall
	// EvWarpBarrier marks a warp arriving at its TB barrier.
	EvWarpBarrier
	// EvWarpFinish marks a warp exiting: A = final Progress,
	// B = SpawnCycle (lifetime = Cycle - B). Always recorded.
	EvWarpFinish
	// EvSlotState marks a scheduler slot's per-cycle outcome changing:
	// A = new outcome (0 issued, 1 pipeline, 2 scoreboard, 3 idle),
	// B = previous outcome.
	EvSlotState
	// EvSchedResort marks a cached priority order being rebuilt (PRO
	// re-sorts, generation bumps): A = the new order generation.
	EvSchedResort
	// EvSchedPick marks a scheduler slot issuing from a different warp
	// than its previous issue (CAWS critical-warp picks, leader
	// changes): Warp = the new leader's slot, A = the previous one (-1
	// on the slot's first issue).
	EvSchedPick
	// EvTBStart / EvTBFinish mark thread-block assignment and
	// retirement; A = TB progress on finish.
	EvTBStart
	EvTBFinish
)

// String names an event kind for exports.
func (k EventKind) String() string {
	switch k {
	case EvWarpProgress:
		return "warp_progress"
	case EvWarpStall:
		return "warp_stall"
	case EvWarpBarrier:
		return "warp_barrier"
	case EvWarpFinish:
		return "warp_finish"
	case EvSlotState:
		return "slot_state"
	case EvSchedResort:
		return "sched_resort"
	case EvSchedPick:
		return "sched_pick"
	case EvTBStart:
		return "tb_start"
	case EvTBFinish:
		return "tb_finish"
	}
	return "unknown"
}

// Event is one recorded warp/scheduler event. Warp is the SM warp slot
// (-1 when not warp-scoped), Slot the scheduler slot (-1 likewise), TB
// the global thread-block id (-1 likewise); A and B are kind-specific.
type Event struct {
	Cycle int64
	A, B  int64
	TB    int32
	Warp  int32
	SM    int16
	Slot  int16
	Kind  EventKind
}

// SlotOutcomeName names the EvSlotState outcome codes (the engine's
// slot classification, mirroring the stall taxonomy).
func SlotOutcomeName(v int64) string {
	switch v {
	case 0:
		return "issued"
	case 1:
		return "pipeline"
	case 2:
		return "scoreboard"
	case 3:
		return "idle"
	}
	return "unknown"
}

// Recorder captures one simulation run. Build with New, attach via
// gpu.Options.Flight (or the process-wide sink, gpu.SetFlightSink),
// then read the results with Report or Capture. A Recorder records
// exactly one run; attach a fresh one per run.
type Recorder struct {
	opts Options

	// Meta, filled by FinishRun.
	kernel    string
	scheduler string
	cycles    int64
	stalls    stats.StallBreakdown
	finished  bool

	sms []*SMTrace
	mem *MemTrace
}

// New builds a recorder with opts (zero value = defaults).
func New(opts Options) *Recorder {
	r := &Recorder{opts: opts.withDefaults()}
	r.mem = &MemTrace{rec: r, every: r.opts.MemSample}
	return r
}

// Start sizes the per-SM traces. Called by the GPU once per run, before
// the first cycle; calling it twice is a misuse of the one-run contract
// and panics.
func (r *Recorder) Start(numSMs int) {
	if r.sms != nil {
		panic("flight: Recorder attached to a second run")
	}
	r.sms = make([]*SMTrace, numSMs)
	for i := range r.sms {
		r.sms[i] = &SMTrace{rec: r, id: int16(i)}
	}
}

// SM returns SM i's trace (the engine's per-SM hook target).
func (r *Recorder) SM(i int) *SMTrace { return r.sms[i] }

// Mem returns the memory-side trace (the memsys hook target).
func (r *Recorder) Mem() *MemTrace { return r.mem }

// FinishRun stamps the run's identity and aggregate stall taxonomy onto
// the capture and flushes the sim_flight_* metrics. Called by the GPU
// after the cycle loop completes.
func (r *Recorder) FinishRun(kernel, scheduler string, cycles int64, stalls stats.StallBreakdown) {
	r.kernel, r.scheduler, r.cycles, r.stalls = kernel, scheduler, cycles, stalls
	r.finished = true
	r.flushMetrics()
}

// Recorded reports whether FinishRun ran — false means the run never
// executed (e.g. it was served from a result cache) or failed.
func (r *Recorder) Recorded() bool { return r.finished }

// eventCounts sums captured/dropped events over the per-SM rings.
func (r *Recorder) eventCounts() (captured, dropped int64) {
	for _, t := range r.sms {
		captured += t.count
		dropped += t.overwritten
	}
	return captured, dropped
}

// SMTrace is one SM's event ring. During a parallel tick phase it is
// written only by its SM's goroutine; between phases only by the
// coordinator — single-writer at all times, so no synchronization.
type SMTrace struct {
	rec *Recorder
	id  int16

	ring        []Event
	head        int
	count       int64 // total pushed (retained + overwritten)
	overwritten int64

	// Per-warp-slot issue counters for progress sampling, and per-slot
	// last-seen state for transition events. Sized by Size.
	issueCnt    []int32
	lastStall   []int64
	lastOutcome []int8
	lastPick    []int32
}

// stallUnset marks "no stall recorded since the last issue" in
// lastStall (readyAt values are non-negative or the -1 pending-load
// sentinel, so this cannot collide).
const stallUnset = int64(-1) << 62

// Size allocates the per-slot state; called by the engine when the
// trace is attached to an SM (warpSlots resident warp slots, schedSlots
// scheduler slots).
func (t *SMTrace) Size(warpSlots, schedSlots int) {
	t.ring = make([]Event, 0, t.rec.opts.RingEvents)
	t.issueCnt = make([]int32, warpSlots)
	t.lastStall = make([]int64, warpSlots)
	t.lastOutcome = make([]int8, schedSlots)
	t.lastPick = make([]int32, schedSlots)
	for i := range t.lastStall {
		t.lastStall[i] = stallUnset
	}
	for i := range t.lastOutcome {
		t.lastOutcome[i] = -1
	}
	for i := range t.lastPick {
		t.lastPick[i] = -1
	}
}

// push appends to the ring, overwriting the oldest event when full.
func (t *SMTrace) push(e Event) {
	e.SM = t.id
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.head] = e
		t.head++
		if t.head == len(t.ring) {
			t.head = 0
		}
		t.overwritten++
	}
	t.count++
}

// events returns the retained events in chronological (push) order.
func (t *SMTrace) events() []Event {
	if t.overwritten == 0 {
		return t.ring
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// sampled reports whether warp slot w's fine-grained events are kept.
func (t *SMTrace) sampled(w int) bool {
	s := t.rec.opts.WarpSample
	return s == 1 || w%s == 0
}

// OnIssue records an issue commit: a leader-change event when the
// scheduler slot switched warps, and a progress checkpoint every
// ProgressEvery issues of a sampled warp.
func (t *SMTrace) OnIssue(cycle int64, schedSlot, warpSlot int, tb int, progress, pc int64) {
	if prev := t.lastPick[schedSlot]; prev != int32(warpSlot) {
		t.lastPick[schedSlot] = int32(warpSlot)
		t.push(Event{Cycle: cycle, Kind: EvSchedPick, Slot: int16(schedSlot),
			Warp: int32(warpSlot), TB: int32(tb), A: int64(prev)})
	}
	if !t.sampled(warpSlot) {
		return
	}
	t.lastStall[warpSlot] = stallUnset
	t.issueCnt[warpSlot]++
	if (t.issueCnt[warpSlot]-1)%int32(t.rec.opts.ProgressEvery) != 0 {
		return
	}
	t.push(Event{Cycle: cycle, Kind: EvWarpProgress, Slot: int16(schedSlot),
		Warp: int32(warpSlot), TB: int32(tb), A: progress, B: pc})
}

// OnWarpStall records a sampled warp entering a blocked state; readyAt
// is the warp's gate cycle (math.MaxInt64 — a pending load — maps to
// -1). Without cycle skipping the engine re-classifies a blocked warp
// every cycle, so repeats of the same cause since the warp's last issue
// are deduplicated here rather than flooding the ring.
func (t *SMTrace) OnWarpStall(cycle int64, warpSlot, tb int, readyAt int64) {
	if !t.sampled(warpSlot) {
		return
	}
	a := readyAt
	if a == int64(1<<63-1) {
		a = -1
	}
	if t.lastStall[warpSlot] == a {
		return
	}
	t.lastStall[warpSlot] = a
	t.push(Event{Cycle: cycle, Kind: EvWarpStall, Slot: -1,
		Warp: int32(warpSlot), TB: int32(tb), A: a})
}

// OnBarrier records a sampled warp arriving at its TB barrier.
func (t *SMTrace) OnBarrier(cycle int64, warpSlot, tb int) {
	if !t.sampled(warpSlot) {
		return
	}
	t.push(Event{Cycle: cycle, Kind: EvWarpBarrier, Slot: -1,
		Warp: int32(warpSlot), TB: int32(tb)})
}

// OnWarpFinish records a warp exiting. Always recorded (not sampled):
// the least-progressed report needs every warp's final progress.
func (t *SMTrace) OnWarpFinish(cycle int64, warpSlot, tb int, progress, spawn int64) {
	t.push(Event{Cycle: cycle, Kind: EvWarpFinish, Slot: -1,
		Warp: int32(warpSlot), TB: int32(tb), A: progress, B: spawn})
}

// OnSlotOutcome records a scheduler slot's outcome class changing.
func (t *SMTrace) OnSlotOutcome(cycle int64, slot int, outcome uint8) {
	if t.lastOutcome[slot] == int8(outcome) {
		return
	}
	prev := t.lastOutcome[slot]
	t.lastOutcome[slot] = int8(outcome)
	t.push(Event{Cycle: cycle, Kind: EvSlotState, Slot: int16(slot),
		Warp: -1, TB: -1, A: int64(outcome), B: int64(prev)})
}

// OnResort records a cached priority order being rebuilt.
func (t *SMTrace) OnResort(cycle int64, slot int, gen uint64) {
	t.push(Event{Cycle: cycle, Kind: EvSchedResort, Slot: int16(slot),
		Warp: -1, TB: -1, A: int64(gen)})
}

// OnTBStart / OnTBFinish record thread-block assignment and retirement.
func (t *SMTrace) OnTBStart(cycle int64, tb, tbSlot int) {
	t.push(Event{Cycle: cycle, Kind: EvTBStart, Slot: -1, Warp: -1,
		TB: int32(tb), A: int64(tbSlot)})
}

func (t *SMTrace) OnTBFinish(cycle int64, tb int, progress int64) {
	t.push(Event{Cycle: cycle, Kind: EvTBFinish, Slot: -1, Warp: -1,
		TB: int32(tb), A: progress})
}

// SpanKind enumerates memory transaction kinds.
type SpanKind uint8

const (
	SpanLoad SpanKind = iota
	SpanAtomic
	SpanStore
)

// String names a span kind for exports.
func (k SpanKind) String() string {
	switch k {
	case SpanLoad:
		return "load"
	case SpanAtomic:
		return "atomic"
	case SpanStore:
		return "store"
	}
	return "unknown"
}

// MemSpan is one memory transaction's lifecycle, timestamps threaded
// through the pooled memsys carriers. Cycle fields are zero until their
// stage is reached (simulated cycles start at 1, so zero is a safe
// sentinel). The latency attribution derived from a span extends the
// Idle/Scoreboard/Pipeline stall taxonomy into memory-side causes; see
// Components.
type MemSpan struct {
	// Line is the line-aligned address; SM the requesting SM; Part the
	// L2 partition / DRAM channel.
	Line uint64
	SM   int32
	Part int32
	Kind SpanKind

	// L2Hit: served from the L2 partition. L2Merged: joined another
	// request's in-flight L2 MSHR entry. RowHit: the DRAM grant hit its
	// bank's open row.
	L2Hit    bool
	L2Merged bool
	RowHit   bool

	// Inject: request packet entered the interconnect. L2At: arrived at
	// the partition. DRAMq: entered the channel queue. Grant: bank
	// grant. Done: data ready at the partition (L2 hit service or DRAM
	// completion). Deliver: response delivered at the SM (== Done for
	// stores, which are fire-and-forget).
	Inject  int64
	L2At    int64
	DRAMq   int64
	Grant   int64
	Done    int64
	Deliver int64

	// ICNTQueue is the injection-port backlog (cycles) observed when the
	// request entered the interconnect — the icnt-queueing share of the
	// Inject→L2At leg.
	ICNTQueue int64
	// Retries counts replays against full downstream queues (L2 MSHRs,
	// DRAM queue).
	Retries int32
	// Merged counts same-line L1-side requests that merged onto this
	// fill's MSHR entry and were woken by its delivery (MSHR-merge wait
	// attribution: those requests waited without downstream traffic).
	Merged int32
}

// Components splits the span's total latency (Deliver-Inject) into
// additive memory-side causes:
//
//	icnt_req:     interconnect request leg (port queueing + serialization
//	              + traversal)
//	l2_service:   L2 hit service time
//	l2_mshr:      wait at the partition for an in-flight fill (merge
//	              wait) or for DRAM admission (full-queue retries)
//	dram_queue:   channel queue wait (enqueue → bank grant)
//	dram_service: bank service (grant → data)
//	icnt_resp:    interconnect response leg
//
// The six terms always sum to Total exactly.
func (sp *MemSpan) Components() (c SpanComponents) {
	c.ICNTReq = sp.L2At - sp.Inject
	switch {
	case sp.L2Hit:
		c.L2Service = sp.Done - sp.L2At
	case sp.L2Merged:
		c.L2MSHR = sp.Done - sp.L2At
	default:
		c.L2MSHR = sp.DRAMq - sp.L2At
		c.DRAMQueue = sp.Grant - sp.DRAMq
		c.DRAMService = sp.Done - sp.Grant
	}
	c.ICNTResp = sp.Deliver - sp.Done
	c.Total = sp.Deliver - sp.Inject
	return c
}

// SpanComponents is one span's additive latency attribution, in cycles.
type SpanComponents struct {
	ICNTReq     int64
	L2Service   int64
	L2MSHR      int64
	DRAMQueue   int64
	DRAMService int64
	ICNTResp    int64
	Total       int64
}

// MemTrace records memory-request spans. Every method runs on the
// coordinator goroutine (carrier callbacks, lane drains, grant
// commits); the staged DRAM scan writes span fields only through the
// same publication barrier as the grants themselves, so there is no
// concurrent access.
type MemTrace struct {
	rec *Recorder

	ring        []MemSpan
	head        int
	count       int64 // committed (retained + overwritten)
	overwritten int64

	free  []*MemSpan // live-span pool
	live  int        // started but not yet committed
	seen  int64      // accepted transactions observed (sampling base)
	every int
}

// Start begins a span for an accepted memory transaction, returning nil
// when sampling skips it (callers keep a nil span pointer and every
// later hook stays a single branch).
func (m *MemTrace) Start(kind SpanKind, sm, part int, line uint64, inject, icntQueue int64) *MemSpan {
	m.seen++
	if m.every > 1 && (m.seen-1)%int64(m.every) != 0 {
		return nil
	}
	var sp *MemSpan
	if n := len(m.free); n > 0 {
		sp = m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
	} else {
		sp = &MemSpan{}
	}
	*sp = MemSpan{Kind: kind, SM: int32(sm), Part: int32(part), Line: line,
		Inject: inject, ICNTQueue: icntQueue}
	m.live++
	return sp
}

// Commit files a finished span into the ring and recycles the object.
func (m *MemTrace) Commit(sp *MemSpan) {
	if len(m.ring) < cap(m.ring) {
		m.ring = append(m.ring, *sp)
	} else if cap(m.ring) == 0 {
		m.ring = make([]MemSpan, 0, m.rec.opts.RingSpans)
		m.ring = append(m.ring, *sp)
	} else {
		m.ring[m.head] = *sp
		m.head++
		if m.head == len(m.ring) {
			m.head = 0
		}
		m.overwritten++
	}
	m.count++
	m.live--
	m.free = append(m.free, sp)
}

// spans returns the retained spans in commit order.
func (m *MemTrace) spans() []MemSpan {
	if m.overwritten == 0 {
		return m.ring
	}
	out := make([]MemSpan, 0, len(m.ring))
	out = append(out, m.ring[m.head:]...)
	out = append(out, m.ring[:m.head]...)
	return out
}
