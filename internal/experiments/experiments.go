// Package experiments reproduces the paper's evaluation artifacts: the
// stall-breakdown study (Fig. 1), the thread-block timelines (Fig. 2),
// the per-kernel speedups (Fig. 4), the stall-improvement ratios (Fig. 5
// and Table III) and the TB priority-order trace (Table IV). The cmd/
// tools and the repository's bench harness are thin wrappers around this
// package.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/jobs"
	"repro/internal/stats"
	"repro/internal/workloads"
	"repro/prosim"
)

// BaselineOrder is the comparison order used throughout the paper.
var BaselineOrder = []string{"TL", "LRR", "GTO"}

// Suite holds the results of running kernels × schedulers.
type Suite struct {
	// Kernels maps kernel name → scheduler name → result, in no
	// particular order; Order preserves workload order.
	Kernels map[string]map[string]*stats.KernelResult
	Order   []*workloads.Workload
}

// RunSuite simulates every workload in ws under every named scheduler on
// the GTX480 configuration through a job runner: a local engine (which
// controls parallelism, caching and progress reporting) or a daemon
// client. maxTBs > 0 shrinks grids (for quick runs and benches); 0 runs
// the full scaled grids. run may be nil — a default engine (one worker
// per core, no cache) is used. The simulator is deterministic and
// results are assembled in job order, so the Suite contents do not
// depend on the worker count or on where the jobs execute.
func RunSuite(ws []*workloads.Workload, scheds []string, maxTBs int, run jobs.Runner) (*Suite, error) {
	run = runnerOrDefault(run)
	batch := SuiteJobs(ws, scheds, maxTBs)
	results, err := run.Run(context.Background(), batch)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	s := &Suite{Kernels: make(map[string]map[string]*stats.KernelResult), Order: ws}
	for i, w := range ws {
		byName := make(map[string]*stats.KernelResult, len(scheds))
		for k, sched := range scheds {
			byName[sched] = results[i*len(scheds)+k]
		}
		s.Kernels[w.Kernel] = byName
	}
	return s, nil
}

// result returns the stored result or panics — indices are internal.
func (s *Suite) result(kernel, sched string) *stats.KernelResult {
	r, ok := s.Kernels[kernel][sched]
	if !ok {
		panic("experiments: missing result for " + kernel + "/" + sched)
	}
	return r
}

// ---- Fig. 4: per-kernel speedups of PRO over the baselines ----

// SpeedupRow is one bar group of Fig. 4.
type SpeedupRow struct {
	Kernel string
	// Over maps baseline name → baselineCycles/proCycles.
	Over map[string]float64
}

// Fig4 is the paper's Figure 4.
type Fig4 struct {
	Rows []SpeedupRow
	// Geomean maps baseline → geometric-mean speedup (paper: TL 1.13,
	// LRR 1.12, GTO 1.02).
	Geomean map[string]float64
}

// ComputeFig4 derives Figure 4 from a suite that ran PRO and the
// baselines.
func (s *Suite) ComputeFig4() *Fig4 {
	f := &Fig4{Geomean: map[string]float64{}}
	perBase := map[string][]float64{}
	for _, w := range s.Order {
		pro := s.result(w.Kernel, "PRO")
		row := SpeedupRow{Kernel: w.Kernel, Over: map[string]float64{}}
		for _, b := range BaselineOrder {
			sp := pro.Speedup(s.result(w.Kernel, b))
			row.Over[b] = sp
			perBase[b] = append(perBase[b], sp)
		}
		f.Rows = append(f.Rows, row)
	}
	for _, b := range BaselineOrder {
		f.Geomean[b] = stats.Geomean(perBase[b])
	}
	return f
}

// ---- Application aggregation (Tables III / Fig. 1 / Fig. 5) ----

// AppStalls aggregates the stall breakdown of one application (the sum
// over its kernels, as the paper reports "per application, not per
// kernel").
func (s *Suite) AppStalls(app, sched string) stats.StallBreakdown {
	var b stats.StallBreakdown
	for _, w := range s.Order {
		if w.App == app {
			b.Add(s.result(w.Kernel, sched).Stalls)
		}
	}
	return b
}

// Apps returns the application names present in the suite, in Table III
// order.
func (s *Suite) Apps() []string {
	var out []string
	seen := map[string]bool{}
	for _, app := range workloads.Apps() {
		for _, w := range s.Order {
			if w.App == app && !seen[app] {
				seen[app] = true
				out = append(out, app)
			}
		}
	}
	return out
}

// BreakdownRow is one bar of Fig. 1: the share of each stall type within
// an application's total stalls under one scheduler.
type BreakdownRow struct {
	App                        string
	SBFrac, IdleFrac, PipeFrac float64
}

// ComputeFig1 derives the Fig. 1 stall composition for one scheduler.
func (s *Suite) ComputeFig1(sched string) []BreakdownRow {
	var rows []BreakdownRow
	for _, app := range s.Apps() {
		b := s.AppStalls(app, sched)
		total := float64(b.Total())
		if total == 0 {
			total = 1
		}
		rows = append(rows, BreakdownRow{
			App:      app,
			SBFrac:   float64(b.Scoreboard) / total,
			IdleFrac: float64(b.Idle) / total,
			PipeFrac: float64(b.Pipeline) / total,
		})
	}
	return rows
}

// StallRatios is one Table III cell group: baseline stalls over PRO
// stalls (greater than 1 means PRO has fewer stalls).
type StallRatios struct {
	Pipe, Idle, SB, Total float64
}

// Table3Row is one application row of Table III.
type Table3Row struct {
	App string
	// PRO holds PRO's absolute stall cycles (the paper's first column
	// group: Pipe, Idle, SB).
	PRO stats.StallBreakdown
	// Over maps baseline → ratios.
	Over map[string]StallRatios
}

// Table3 is the paper's Table III (and, through the Total column, the
// bars of Fig. 5).
type Table3 struct {
	Rows []Table3Row
	// Geomean maps baseline → geomean ratios (paper Totals: TL 1.32,
	// LRR 1.19, GTO 1.04).
	Geomean map[string]StallRatios
}

// ComputeTable3 derives Table III.
func (s *Suite) ComputeTable3() *Table3 {
	t := &Table3{Geomean: map[string]StallRatios{}}
	acc := map[string]*[4][]float64{}
	for _, b := range BaselineOrder {
		acc[b] = &[4][]float64{}
	}
	for _, app := range s.Apps() {
		pro := s.AppStalls(app, "PRO")
		row := Table3Row{App: app, PRO: pro, Over: map[string]StallRatios{}}
		for _, b := range BaselineOrder {
			base := s.AppStalls(app, b)
			r := StallRatios{
				Pipe:  stats.Ratio(base.Pipeline, pro.Pipeline),
				Idle:  stats.Ratio(base.Idle, pro.Idle),
				SB:    stats.Ratio(base.Scoreboard, pro.Scoreboard),
				Total: stats.Ratio(base.Total(), pro.Total()),
			}
			row.Over[b] = r
			acc[b][0] = append(acc[b][0], r.Pipe)
			acc[b][1] = append(acc[b][1], r.Idle)
			acc[b][2] = append(acc[b][2], r.SB)
			acc[b][3] = append(acc[b][3], r.Total)
		}
		t.Rows = append(t.Rows, row)
	}
	for _, b := range BaselineOrder {
		t.Geomean[b] = StallRatios{
			Pipe:  stats.Geomean(acc[b][0]),
			Idle:  stats.Geomean(acc[b][1]),
			SB:    stats.Geomean(acc[b][2]),
			Total: stats.Geomean(acc[b][3]),
		}
	}
	return t
}

// ---- Batch builders ----
//
// The exact jobs each experiment runs, exposed so layers that slice or
// route batches (the cluster shard selector, cmd/prosweep) can
// enumerate a harness's full workload without running it.

// SuiteJobs is the batch RunSuite executes: every workload under every
// named scheduler, scheduler-major within each workload.
func SuiteJobs(ws []*workloads.Workload, scheds []string, maxTBs int) []jobs.Job {
	return jobs.Grid(ws, scheds, maxTBs, gpu.Options{})
}

// TimelineJob is the single job Timeline executes for one workload and
// scheduler.
func TimelineJob(w *workloads.Workload, sched string) jobs.Job {
	return jobs.Job{
		Launch:    w.Launch,
		Kernel:    w.Kernel,
		Scheduler: sched,
		Options:   prosim.Options{Timeline: true},
	}
}

// OrderTraceJob is the single job OrderTrace executes (threshold <= 0
// means PRO's default re-sort threshold).
func OrderTraceJob(w *workloads.Workload, threshold int64) jobs.Job {
	key := "PRO+ordertrace+threshold=default"
	if threshold > 0 {
		key = fmt.Sprintf("PRO+ordertrace+threshold=%d", threshold)
	}
	return jobs.Job{
		Launch:     w.Launch,
		Kernel:     w.Kernel,
		Factory:    prosim.PRO(proTraceOptions(threshold)...),
		FactoryKey: key,
	}
}

// ---- Fig. 2: thread-block timelines ----

// Timeline runs one workload under one scheduler with span recording and
// returns the spans for a single SM (the paper plots SM 0). run may be
// nil (direct run, no cache).
func Timeline(w *workloads.Workload, sched string, smID int, run jobs.Runner) ([]stats.TBSpan, *stats.KernelResult, error) {
	rs, err := runnerOrDefault(run).Run(context.Background(), []jobs.Job{TimelineJob(w, sched)})
	if err != nil {
		return nil, nil, err
	}
	r := rs[0]
	var spans []stats.TBSpan
	for _, sp := range r.Timeline {
		if sp.SM == smID {
			spans = append(spans, sp)
		}
	}
	return spans, r, nil
}

// ---- Table IV: PRO's sorted TB order over time ----

// OrderTrace runs w under PRO with order tracing and returns the SM-0
// samples. run may be nil (direct run, no cache).
func OrderTrace(w *workloads.Workload, threshold int64, run jobs.Runner) ([]stats.OrderSample, error) {
	rs, err := runnerOrDefault(run).Run(context.Background(), []jobs.Job{OrderTraceJob(w, threshold)})
	if err != nil {
		return nil, err
	}
	return rs[0].OrderTrace, nil
}

// runnerOrDefault substitutes a default local engine for a nil runner
// (including a typed-nil *jobs.Engine hiding inside the interface).
func runnerOrDefault(run jobs.Runner) jobs.Runner {
	if run == nil {
		return &jobs.Engine{}
	}
	if e, ok := run.(*jobs.Engine); ok && e == nil {
		return &jobs.Engine{}
	}
	return run
}
