package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/workloads"
)

// tinySuite runs two small-ish kernels under all four schedulers with
// heavily shrunk grids; shared by the tests below.
func tinySuite(t *testing.T) *Suite {
	t.Helper()
	var ws []*workloads.Workload
	for _, k := range []string{"aesEncrypt128", "scalarProdGPU"} {
		w, err := workloads.ByKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w.Shrunk(20))
	}
	s, err := RunSuite(ws, []string{"TL", "LRR", "GTO", "PRO"}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteShapes(t *testing.T) {
	s := tinySuite(t)

	f4 := s.ComputeFig4()
	if len(f4.Rows) != 2 {
		t.Fatalf("Fig4 rows = %d", len(f4.Rows))
	}
	for _, b := range BaselineOrder {
		if f4.Geomean[b] <= 0 {
			t.Fatalf("Fig4 geomean over %s = %v", b, f4.Geomean[b])
		}
	}
	for _, r := range f4.Rows {
		for _, b := range BaselineOrder {
			if r.Over[b] <= 0 {
				t.Fatalf("%s speedup over %s = %v", r.Kernel, b, r.Over[b])
			}
		}
	}

	apps := s.Apps()
	if len(apps) != 2 || apps[0] != "AES" || apps[1] != "ScalarProd" {
		t.Fatalf("Apps = %v", apps)
	}

	for _, sched := range BaselineOrder {
		rows := s.ComputeFig1(sched)
		if len(rows) != 2 {
			t.Fatalf("Fig1 rows = %d", len(rows))
		}
		for _, r := range rows {
			sum := r.SBFrac + r.IdleFrac + r.PipeFrac
			if sum < 0.999 || sum > 1.001 {
				t.Fatalf("Fig1 %s/%s fractions sum to %v", sched, r.App, sum)
			}
		}
	}

	t3 := s.ComputeTable3()
	if len(t3.Rows) != 2 {
		t.Fatalf("Table3 rows = %d", len(t3.Rows))
	}
	for _, b := range BaselineOrder {
		if t3.Geomean[b].Total <= 0 {
			t.Fatalf("Table3 geomean total over %s = %v", b, t3.Geomean[b].Total)
		}
	}
}

func TestFormatters(t *testing.T) {
	s := tinySuite(t)
	f4 := FormatFig4(s.ComputeFig4())
	for _, frag := range []string{"GEOMEAN", "aesEncrypt128", "scalarProdGPU", "vs TL"} {
		if !strings.Contains(f4, frag) {
			t.Errorf("Fig4 text lacks %q", frag)
		}
	}
	t3 := s.ComputeTable3()
	if !strings.Contains(FormatTable3(t3), "GEOMEAN") {
		t.Error("Table3 text lacks GEOMEAN")
	}
	if !strings.Contains(FormatFig5(t3), "ScalarProd") {
		t.Error("Fig5 text lacks app name")
	}
	if !strings.Contains(FormatFig1("LRR", s.ComputeFig1("LRR")), "AES") {
		t.Error("Fig1 text lacks app name")
	}
}

func TestTimelineAndTrace(t *testing.T) {
	w, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	w = w.Shrunk(30)

	spans, r, err := Timeline(w, "LRR", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans on SM 0")
	}
	for _, sp := range spans {
		if sp.SM != 0 {
			t.Fatal("foreign SM in filtered spans")
		}
	}
	txt := FormatTimeline("x", spans, r.Cycles)
	if !strings.Contains(txt, "TB") {
		t.Error("timeline text empty")
	}

	samples, err := OrderTrace(w, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no order samples")
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Cycle <= samples[i-1].Cycle {
			t.Fatal("samples not in increasing cycle order")
		}
	}
	out := FormatOrderTrace(samples, 4)
	if !strings.Contains(out, "CYCLE") {
		t.Error("order trace text malformed")
	}
	if FormatOrderTrace(nil, 0) == "" {
		t.Error("empty trace should render a placeholder")
	}
	_ = stats.OrderSample{}
}

func TestRunSuiteUnknownScheduler(t *testing.T) {
	w, _ := workloads.ByKernel("aesEncrypt128")
	_, err := RunSuite([]*workloads.Workload{w.Shrunk(5)}, []string{"BOGUS"}, 0, nil)
	if err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestAppStallsSumKernels(t *testing.T) {
	s := tinySuite(t)
	// AES has one kernel: app aggregate equals the kernel's stalls.
	aes := s.AppStalls("AES", "LRR")
	if aes != s.Kernels["aesEncrypt128"]["LRR"].Stalls {
		t.Fatal("single-kernel app aggregate differs from kernel stalls")
	}
	// Unknown app aggregates to zero.
	var zero = s.AppStalls("nope", "LRR")
	if zero.Total() != 0 || zero.Issued != 0 {
		t.Fatal("unknown app produced stalls")
	}
}

func TestComputeFig4SpeedupConsistency(t *testing.T) {
	s := tinySuite(t)
	f4 := s.ComputeFig4()
	for _, row := range f4.Rows {
		pro := s.Kernels[row.Kernel]["PRO"]
		for _, b := range BaselineOrder {
			base := s.Kernels[row.Kernel][b]
			want := float64(base.Cycles) / float64(pro.Cycles)
			if diff := row.Over[b] - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s over %s: %v, want %v", row.Kernel, b, row.Over[b], want)
			}
		}
	}
}
