package experiments

import (
	"encoding/json"
	"testing"

	"repro/internal/jobs"
	"repro/internal/resultcache"
	"repro/internal/stats"
	"repro/internal/workloads"
	"repro/prosim"
)

// equivKernels is the shrunk grid for the parallel-vs-serial
// equivalence tests: a multi-kernel, multi-app slice of Table II.
func equivKernels(t *testing.T) []*workloads.Workload {
	t.Helper()
	var ws []*workloads.Workload
	for _, k := range []string{"aesEncrypt128", "scalarProdGPU", "calculate_temp"} {
		w, err := workloads.ByKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w.Shrunk(16))
	}
	return ws
}

var equivScheds = []string{"TL", "LRR", "GTO", "PRO"}

// serialReference reproduces the pre-engine serial loop verbatim: one
// prosim.RunWorkload per (workload, scheduler) in suite order.
func serialReference(t *testing.T, ws []*workloads.Workload) *Suite {
	t.Helper()
	s := &Suite{Kernels: make(map[string]map[string]*stats.KernelResult), Order: ws}
	for _, w := range ws {
		byName := make(map[string]*stats.KernelResult, len(equivScheds))
		for _, sched := range equivScheds {
			r, err := prosim.RunWorkload(w, sched, prosim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			byName[sched] = r
		}
		s.Kernels[w.Kernel] = byName
	}
	return s
}

// mustJSON marshals v; map keys sort, so equal contents give equal bytes.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestParallelSuiteMatchesSerialByteForByte(t *testing.T) {
	ws := equivKernels(t)
	serial := serialReference(t, ws)
	parallel, err := RunSuite(ws, equivScheds, 0, &jobs.Engine{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := mustJSON(t, parallel), mustJSON(t, serial); string(got) != string(want) {
		t.Fatal("parallel Suite is not byte-identical to the serial path")
	}
	if got, want := mustJSON(t, parallel.ComputeFig4()), mustJSON(t, serial.ComputeFig4()); string(got) != string(want) {
		t.Fatal("ComputeFig4 differs between parallel and serial suites")
	}
	if got, want := mustJSON(t, parallel.ComputeTable3()), mustJSON(t, serial.ComputeTable3()); string(got) != string(want) {
		t.Fatal("ComputeTable3 differs between parallel and serial suites")
	}
	if got, want := FormatFig4(parallel.ComputeFig4()), FormatFig4(serial.ComputeFig4()); got != want {
		t.Fatal("formatted Fig. 4 differs between parallel and serial suites")
	}
	if got, want := FormatTable3(parallel.ComputeTable3()), FormatTable3(serial.ComputeTable3()); got != want {
		t.Fatal("formatted Table III differs between parallel and serial suites")
	}
}

func TestWarmCacheSuiteMatchesAndSkipsSimulation(t *testing.T) {
	ws := equivKernels(t)
	cache, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := &jobs.Engine{Workers: 4, Cache: cache}
	cold, err := RunSuite(ws, equivScheds, 0, eng)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Simulated() != int64(len(ws)*len(equivScheds)) {
		t.Fatalf("cold run simulated %d jobs, want %d", eng.Simulated(), len(ws)*len(equivScheds))
	}

	warm, err := RunSuite(ws, equivScheds, 0, eng)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Simulated() != int64(len(ws)*len(equivScheds)) {
		t.Fatalf("warm run performed %d extra simulations, want 0",
			eng.Simulated()-int64(len(ws)*len(equivScheds)))
	}
	if eng.Replayed() != int64(len(ws)*len(equivScheds)) {
		t.Fatalf("warm run replayed %d results, want all %d", eng.Replayed(), len(ws)*len(equivScheds))
	}
	if got, want := mustJSON(t, warm), mustJSON(t, cold); string(got) != string(want) {
		t.Fatal("warm-cache Suite is not byte-identical to the cold run")
	}
}
