package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// proTraceOptions builds the PRO options for a Table IV trace run.
func proTraceOptions(threshold int64) []core.Option {
	opts := []core.Option{core.WithOrderTrace()}
	if threshold > 0 {
		opts = append(opts, core.WithThreshold(threshold))
	}
	return opts
}

// FormatFig4 renders Figure 4 as a text table.
func FormatFig4(f *Fig4) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — Speedup of PRO over baseline schedulers\n")
	fmt.Fprintf(&b, "%-28s %10s %10s %10s\n", "KERNEL", "vs TL", "vs LRR", "vs GTO")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-28s %9.3fx %9.3fx %9.3fx\n",
			r.Kernel, r.Over["TL"], r.Over["LRR"], r.Over["GTO"])
	}
	fmt.Fprintf(&b, "%-28s %9.3fx %9.3fx %9.3fx\n",
		"GEOMEAN", f.Geomean["TL"], f.Geomean["LRR"], f.Geomean["GTO"])
	return b.String()
}

// FormatFig1 renders the Fig. 1 stall composition for one scheduler.
func FormatFig1(sched string, rows []BreakdownRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1(%s) — stall composition per application\n", sched)
	fmt.Fprintf(&b, "%-14s %8s %8s %8s\n", "APP", "SB", "IDLE", "PIPE")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %7.1f%% %7.1f%% %7.1f%%\n",
			r.App, 100*r.SBFrac, 100*r.IdleFrac, 100*r.PipeFrac)
	}
	return b.String()
}

// FormatTable3 renders Table III.
func FormatTable3(t *Table3) string {
	var b strings.Builder
	b.WriteString("Table III — Improvement in stall cycles with PRO (ratio > 1: PRO has fewer)\n")
	fmt.Fprintf(&b, "%-14s | %10s %10s %10s | %s | %s | %s\n",
		"APP", "PRO Pipe", "PRO Idle", "PRO SB",
		"TL: Pipe Idle   SB  Tot", "LRR: Pipe Idle   SB  Tot", "GTO: Pipe Idle   SB  Tot")
	line := func(r StallRatios) string {
		return fmt.Sprintf("%5.2f %4.2f %5.2f %4.2f", r.Pipe, r.Idle, r.SB, r.Total)
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s | %10d %10d %10d |  %s |   %s |   %s\n",
			r.App, r.PRO.Pipeline, r.PRO.Idle, r.PRO.Scoreboard,
			line(r.Over["TL"]), line(r.Over["LRR"]), line(r.Over["GTO"]))
	}
	fmt.Fprintf(&b, "%-14s | %10s %10s %10s |  %s |   %s |   %s\n",
		"GEOMEAN", "", "", "",
		line(t.Geomean["TL"]), line(t.Geomean["LRR"]), line(t.Geomean["GTO"]))
	return b.String()
}

// FormatFig5 renders the Fig. 5 view (total-stall ratios per app).
func FormatFig5(t *Table3) string {
	var b strings.Builder
	b.WriteString("Fig. 5 — total stall-cycle ratio (baseline / PRO)\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s\n", "APP", "TL", "LRR", "GTO")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %7.2fx %7.2fx %7.2fx\n",
			r.App, r.Over["TL"].Total, r.Over["LRR"].Total, r.Over["GTO"].Total)
	}
	fmt.Fprintf(&b, "%-14s %7.2fx %7.2fx %7.2fx\n",
		"GEOMEAN", t.Geomean["TL"].Total, t.Geomean["LRR"].Total, t.Geomean["GTO"].Total)
	return b.String()
}

// FormatTimeline renders Fig. 2 raw data: one line per TB on the SM, in
// launch order, with start/end cycles and a coarse bar chart.
func FormatTimeline(title string, spans []stats.TBSpan, totalCycles int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 (%s) — thread blocks on SM 0 (cycles, | = busy window)\n", title)
	const width = 60
	for _, s := range spans {
		from := int(s.Start * width / totalCycles)
		to := int(s.End * width / totalCycles)
		if to <= from {
			to = from + 1
		}
		bar := strings.Repeat(" ", from) + strings.Repeat("|", to-from)
		fmt.Fprintf(&b, "TB %4d (#%2d) %9d..%-9d %s\n", s.TB, s.Slot, s.Start, s.End, bar)
	}
	return b.String()
}

// FormatOrderTrace renders Table IV: the sorted TB order on SM 0 at each
// sampling cycle, restricted to the SM's first batch of resident TBs
// (the paper shows the first six TBs that executed on SM 0). maxRows
// bounds the output; 0 means all samples.
func FormatOrderTrace(samples []stats.OrderSample, maxRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV — sorted TB order on SM 0 every threshold cycles (highest priority first)\n")
	fmt.Fprintf(&b, "%8s  %s\n", "CYCLE", "ORDER")
	if len(samples) == 0 {
		b.WriteString("(no samples)\n")
		return b.String()
	}
	batch := map[int]bool{}
	for _, tb := range samples[0].Order {
		batch[tb] = true
	}
	rows := 0
	for _, s := range samples {
		var shown []string
		for _, tb := range s.Order {
			if batch[tb] {
				shown = append(shown, fmt.Sprintf("%d", tb))
			}
		}
		if len(shown) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%8d  %s\n", s.Cycle, strings.Join(shown, " "))
		rows++
		if maxRows > 0 && rows >= maxRows {
			break
		}
	}
	return b.String()
}
