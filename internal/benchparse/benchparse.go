// Package benchparse parses `go test -bench` text output and diffs two
// recorded runs — the machinery behind cmd/benchdiff's regression gate.
//
// The parser understands the standard benchmark line shape
//
//	BenchmarkName/sub-8   5   123 ns/op   7.9 some_metric   64 B/op   2 allocs/op
//
// including repeated lines from -count=N runs, which are aggregated per
// benchmark (minimum for time and allocations — the least-noise
// estimator on a shared machine — and maximum for throughput-style
// metrics).
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregate over all its -count repetitions.
type Result struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Runs is how many repetitions were aggregated.
	Runs int `json:"runs"`
	// NsOp is the minimum ns/op across repetitions.
	NsOp float64 `json:"ns_op"`
	// AllocsOp is the minimum allocs/op across repetitions (-1 when the
	// run lacked -benchmem).
	AllocsOp float64 `json:"allocs_op"`
	// BytesOp is the minimum B/op across repetitions (-1 without
	// -benchmem).
	BytesOp float64 `json:"bytes_op"`
	// Metrics holds custom b.ReportMetric values. Rate-style metrics
	// (unit containing "/s") keep their maximum across repetitions;
	// everything else keeps the last value (custom metrics like cycle
	// counts are identical across repetitions of a deterministic
	// simulator).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Parse reads go test -bench output and returns one aggregated Result
// per benchmark, in first-appearance order. Non-benchmark lines (goos,
// PASS, timing) are ignored.
func Parse(r io.Reader) ([]*Result, error) {
	byName := make(map[string]*Result)
	var order []*Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("benchparse: line %d: %w", lineNo, err)
		}
		if res == nil {
			continue
		}
		if prev, ok := byName[res.Name]; ok {
			merge(prev, res)
		} else {
			byName[res.Name] = res
			order = append(order, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchparse: %w", err)
	}
	return order, nil
}

// parseLine parses one Benchmark line; it returns (nil, nil) for lines
// that start with "Benchmark" but are not result lines (e.g. a bare
// name printed when a benchmark fails before reporting).
func parseLine(line string) (*Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return nil, nil
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix (absent under GOMAXPROCS=1).
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters <= 0 {
		return nil, nil
	}
	res := &Result{Name: name, Runs: 1, AllocsOp: -1, BytesOp: -1}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsOp = v
		case "B/op":
			res.BytesOp = v
		case "allocs/op":
			res.AllocsOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	return res, nil
}

// merge folds a repetition into the aggregate.
func merge(dst, rep *Result) {
	dst.Runs += rep.Runs
	if rep.NsOp > 0 && (dst.NsOp == 0 || rep.NsOp < dst.NsOp) {
		dst.NsOp = rep.NsOp
	}
	dst.AllocsOp = mergeMin(dst.AllocsOp, rep.AllocsOp)
	dst.BytesOp = mergeMin(dst.BytesOp, rep.BytesOp)
	for unit, v := range rep.Metrics {
		if dst.Metrics == nil {
			dst.Metrics = make(map[string]float64)
		}
		if strings.Contains(unit, "/s") {
			if v > dst.Metrics[unit] {
				dst.Metrics[unit] = v
			}
		} else {
			dst.Metrics[unit] = v
		}
	}
}

func mergeMin(a, b float64) float64 {
	switch {
	case b < 0:
		return a
	case a < 0 || b < a:
		return b
	default:
		return a
	}
}
