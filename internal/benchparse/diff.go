package benchparse

import (
	"fmt"
	"sort"
	"strings"
)

// SnapshotSchema versions the bench-<sha>.json layout; bump on
// incompatible change so stale snapshots are skipped, not misread.
const SnapshotSchema = 1

// Snapshot is one recorded bench run, as persisted under
// results/bench-<git-sha>.json.
type Snapshot struct {
	Schema int    `json:"schema"`
	GitSHA string `json:"git_sha"`
	// Date is RFC 3339; snapshots are ordered by it when picking the
	// baseline to diff against.
	Date       string             `json:"date"`
	Benchmarks map[string]*Result `json:"benchmarks"`
	// Golden pins deterministic simulation outputs to their
	// content-addressed job identity: a cycle count is only comparable
	// across runs when the underlying job key (config + kernel +
	// scheduler + cache schema) is unchanged.
	Golden map[string]GoldenEntry `json:"golden,omitempty"`
}

// GoldenEntry pins one benchmark's simulated cycle count to the result
// cache key of the job that produced it.
type GoldenEntry struct {
	JobKey string `json:"job_key"`
	Cycles int64  `json:"cycles"`
}

// Thresholds bound how much a run may degrade before Diff reports a
// failure. Zero values mean "use the default".
type Thresholds struct {
	// MaxThroughputDrop is the tolerated fractional drop in any
	// rate-style metric (unit containing "/s"). Default 0.25.
	MaxThroughputDrop float64
	// MaxAllocRise is the tolerated fractional rise in allocs/op,
	// with an absolute slack of AllocSlack. Default 0.10.
	MaxAllocRise float64
	// AllocSlack is the absolute allocs/op rise always tolerated
	// (noise floor for tiny benchmarks). Default 16.
	AllocSlack float64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.MaxThroughputDrop == 0 {
		t.MaxThroughputDrop = 0.25
	}
	if t.MaxAllocRise == 0 {
		t.MaxAllocRise = 0.10
	}
	if t.AllocSlack == 0 {
		t.AllocSlack = 16
	}
	return t
}

// Finding is one diff observation. Fail distinguishes regressions from
// informational notes.
type Finding struct {
	Bench string
	Fail  bool
	Msg   string
}

// Diff compares cur against base and returns findings, worst first.
// The rules mirror the repo's regression policy:
//
//   - any "/s" metric dropping more than MaxThroughputDrop fails;
//   - allocs/op rising more than MaxAllocRise (beyond AllocSlack) fails;
//   - a golden cycle count changing while its job key is unchanged
//     fails — determinism is exact, so any drift is a real behaviour
//     change, not noise;
//   - golden entries whose job key changed are reported as skipped
//     (the workload or config was deliberately altered);
//   - benchmarks present in only one run are informational.
func Diff(base, cur *Snapshot, t Thresholds) []Finding {
	t = t.withDefaults()
	var fs []Finding
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		nb := cur.Benchmarks[name]
		ob, ok := base.Benchmarks[name]
		if !ok {
			fs = append(fs, Finding{Bench: name, Msg: "new benchmark (no baseline)"})
			continue
		}
		for unit, nv := range nb.Metrics {
			if !rateMetric(unit) {
				continue
			}
			ov, ok := ob.Metrics[unit]
			if !ok || ov <= 0 {
				continue
			}
			if drop := (ov - nv) / ov; drop > t.MaxThroughputDrop {
				fs = append(fs, Finding{Bench: name, Fail: true, Msg: fmt.Sprintf(
					"%s dropped %.1f%% (%.0f -> %.0f, limit %.0f%%)",
					unit, drop*100, ov, nv, t.MaxThroughputDrop*100)})
			}
		}
		if ob.AllocsOp >= 0 && nb.AllocsOp >= 0 {
			rise := nb.AllocsOp - ob.AllocsOp
			if rise > t.AllocSlack && rise > ob.AllocsOp*t.MaxAllocRise {
				fs = append(fs, Finding{Bench: name, Fail: true, Msg: fmt.Sprintf(
					"allocs/op rose %.1f%% (%.0f -> %.0f, limit %.0f%% + %.0f)",
					rise/ob.AllocsOp*100, ob.AllocsOp, nb.AllocsOp,
					t.MaxAllocRise*100, t.AllocSlack)})
			}
		}
	}
	gnames := make([]string, 0, len(cur.Golden))
	for name := range cur.Golden {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		ng := cur.Golden[name]
		og, ok := base.Golden[name]
		switch {
		case !ok:
			fs = append(fs, Finding{Bench: name, Msg: "new golden entry (no baseline)"})
		case og.JobKey != ng.JobKey:
			fs = append(fs, Finding{Bench: name, Msg: "job key changed; cycle comparison skipped"})
		case og.Cycles != ng.Cycles:
			fs = append(fs, Finding{Bench: name, Fail: true, Msg: fmt.Sprintf(
				"golden cycles changed with identical job key: %d -> %d (simulation behaviour drift)",
				og.Cycles, ng.Cycles)})
		}
	}
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Fail && !fs[j].Fail })
	return fs
}

// rateMetric matches the aggregation rule in merge: "/s" units are
// throughputs (bigger is better, max-aggregated), everything else is a
// deterministic simulation output.
func rateMetric(unit string) bool { return strings.Contains(unit, "/s") }
