package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTableIConfig            	21396355	        58.05 ns/op	       0 B/op	       0 allocs/op
BenchmarkTableIConfig            	21753115	        55.68 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig4Speedup             	       1	1481227188 ns/op	         1.078 geomean_vs_GTO	32533784 B/op	  678739 allocs/op
BenchmarkFig4Speedup             	       1	1423097186 ns/op	         1.078 geomean_vs_GTO	32532600 B/op	  678737 allocs/op
BenchmarkSimulatorThroughput-8   	     100	  10353548 ns/op	    212391 sim_cycles/s	 1115302 B/op	    9077 allocs/op
BenchmarkSimulatorThroughput-8   	     124	   9466913 ns/op	    232283 sim_cycles/s	 1115235 B/op	    9076 allocs/op
BenchmarkAblationThreshold/threshold250 	      51	  26850083 ns/op	      5410 cycles	 1103397 B/op	    9165 allocs/op
PASS
ok  	repro	123.456s
`

func parseSample(t *testing.T) map[string]*Result {
	t.Helper()
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[string]*Result, len(rs))
	for _, r := range rs {
		m[r.Name] = r
	}
	return m
}

func TestParseAggregatesRepetitions(t *testing.T) {
	m := parseSample(t)
	if len(m) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(m))
	}
	cfg := m["TableIConfig"]
	if cfg.Runs != 2 || cfg.NsOp != 55.68 {
		t.Errorf("TableIConfig = %+v, want 2 runs with min ns/op 55.68", cfg)
	}
	f4 := m["Fig4Speedup"]
	if f4.NsOp != 1423097186 || f4.AllocsOp != 678737 {
		t.Errorf("Fig4Speedup min ns/op=%v allocs=%v, want 1423097186/678737", f4.NsOp, f4.AllocsOp)
	}
	if f4.Metrics["geomean_vs_GTO"] != 1.078 {
		t.Errorf("Fig4Speedup geomean metric = %v, want 1.078", f4.Metrics["geomean_vs_GTO"])
	}
}

func TestParseStripsGomaxprocsSuffixAndMaxesRates(t *testing.T) {
	m := parseSample(t)
	tp, ok := m["SimulatorThroughput"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if got := tp.Metrics["sim_cycles/s"]; got != 232283 {
		t.Errorf("sim_cycles/s = %v, want max 232283", got)
	}
}

func TestParseSubBenchmarkMetrics(t *testing.T) {
	m := parseSample(t)
	th := m["AblationThreshold/threshold250"]
	if th == nil || th.Metrics["cycles"] != 5410 {
		t.Fatalf("sub-benchmark cycles = %+v, want 5410", th)
	}
}

func TestParseWithoutBenchmem(t *testing.T) {
	rs, err := Parse(strings.NewReader("BenchmarkX 	 10	 100 ns/op\n"))
	if err != nil || len(rs) != 1 {
		t.Fatalf("Parse = %v, %v", rs, err)
	}
	if rs[0].AllocsOp != -1 || rs[0].BytesOp != -1 {
		t.Errorf("missing -benchmem should leave allocs/bytes at -1, got %+v", rs[0])
	}
}

func snap(bench map[string]*Result, golden map[string]GoldenEntry) *Snapshot {
	return &Snapshot{Schema: SnapshotSchema, Benchmarks: bench, Golden: golden}
}

func TestDiffThroughputDrop(t *testing.T) {
	base := snap(map[string]*Result{
		"T": {Name: "T", Metrics: map[string]float64{"sim_cycles/s": 200000}},
	}, nil)
	cur := snap(map[string]*Result{
		"T": {Name: "T", Metrics: map[string]float64{"sim_cycles/s": 140000}},
	}, nil)
	fs := Diff(base, cur, Thresholds{})
	if len(fs) != 1 || !fs[0].Fail {
		t.Fatalf("30%% throughput drop must fail: %+v", fs)
	}
	cur.Benchmarks["T"].Metrics["sim_cycles/s"] = 160000
	if fs := Diff(base, cur, Thresholds{}); len(fs) != 0 {
		t.Fatalf("20%% drop is within the default 25%% threshold: %+v", fs)
	}
}

func TestDiffAllocRise(t *testing.T) {
	base := snap(map[string]*Result{"A": {Name: "A", AllocsOp: 1000}}, nil)
	cur := snap(map[string]*Result{"A": {Name: "A", AllocsOp: 1200}}, nil)
	fs := Diff(base, cur, Thresholds{})
	if len(fs) != 1 || !fs[0].Fail {
		t.Fatalf("20%% alloc rise must fail: %+v", fs)
	}
	// Small absolute rises are noise even when the percentage is big.
	base.Benchmarks["A"].AllocsOp = 4
	cur.Benchmarks["A"].AllocsOp = 12
	if fs := Diff(base, cur, Thresholds{}); len(fs) != 0 {
		t.Fatalf("rise within AllocSlack must pass: %+v", fs)
	}
}

func TestDiffGoldenCycles(t *testing.T) {
	base := snap(nil, map[string]GoldenEntry{
		"G": {JobKey: "k1", Cycles: 5410},
	})
	same := snap(nil, map[string]GoldenEntry{
		"G": {JobKey: "k1", Cycles: 5410},
	})
	if fs := Diff(base, same, Thresholds{}); len(fs) != 0 {
		t.Fatalf("identical golden entry must pass: %+v", fs)
	}
	drift := snap(nil, map[string]GoldenEntry{
		"G": {JobKey: "k1", Cycles: 5411},
	})
	fs := Diff(base, drift, Thresholds{})
	if len(fs) != 1 || !fs[0].Fail {
		t.Fatalf("cycle drift under the same job key must fail: %+v", fs)
	}
	rekeyed := snap(nil, map[string]GoldenEntry{
		"G": {JobKey: "k2", Cycles: 9999},
	})
	fs = Diff(base, rekeyed, Thresholds{})
	if len(fs) != 1 || fs[0].Fail {
		t.Fatalf("changed job key must skip, not fail: %+v", fs)
	}
}

func TestDiffNewBenchmarkInformational(t *testing.T) {
	base := snap(map[string]*Result{}, nil)
	cur := snap(map[string]*Result{"N": {Name: "N", AllocsOp: 5}}, nil)
	fs := Diff(base, cur, Thresholds{})
	if len(fs) != 1 || fs[0].Fail {
		t.Fatalf("new benchmark must be informational: %+v", fs)
	}
}
