package engine

import (
	"math"
	"math/bits"

	"repro/internal/config"
	"repro/internal/isa"
)

// regPendingLoad marks a register whose producing load has not returned;
// cleared by the memory-completion callback.
const regPendingLoad = math.MaxInt64

// simtEntry is one SIMT reconvergence-stack entry: the threads in Mask
// execute from PC and rejoin the entry below when PC reaches Reconv.
type simtEntry struct {
	PC     int32
	Reconv int32 // -1 on the base entry (never pops)
	Mask   uint32
}

// Warp is one warp's execution state. All mutation happens through the
// owning SM's issue path.
//
// Field order is deliberate: the leading group holds everything the
// per-cycle issue scan reads, so classifying a blocked warp touches one
// cache line; the SIMT stack, scoreboard and visit counters that only
// matter when the warp progresses come after.
type Warp struct {
	// gate caches the earliest cycle at which the warp could next pass
	// the issue checks (decodable instruction + scoreboard clear), so
	// the per-cycle order walk skips blocked warps with one compare.
	// Valid because a blocked warp's state only changes at a
	// statically-known cycle (readyAt, folded into gate) or via an
	// event that zeroes the gate (i-buffer refill, load resolution,
	// barrier release). gateInstr preserves the warp's Idle-vs-
	// Scoreboard contribution while skipped: whether it had a decodable
	// instruction when the gate was set (stable until the gate clears,
	// since a gated warp cannot issue and nothing else drains its
	// i-buffer or moves it to a barrier).
	gate int64

	// nextIn caches NextInstr's result — the decoded instruction the warp
	// would issue, nil when the warp is not Valid. Refreshed by
	// refreshNextInstr at every site that changes the inputs (PC moves,
	// i-buffer drain/refill, barrier entry/release, exit), so the
	// per-cycle issue scan reads a field instead of re-deriving it.
	nextIn *isa.Instr

	// nextPC, nextIter and nextMask snapshot the issue coordinates
	// (program counter, dynamic visit count, active mask) coherently
	// with nextIn. They are only meaningful while nextIn != nil, and
	// every mutation of their sources (SIMT stack, visits) is followed
	// by refreshNextInstr. Keeping them on the warp struct lets the
	// issue path read three fields from an already-hot cache line
	// instead of chasing into the stack and visits allocations on
	// every attempt.
	nextPC   int32
	nextIter int32
	nextMask uint32

	// TB is the owning thread block; in the leading group because the
	// issue path charges progress to it on every instruction.
	TB *ThreadBlock

	gateInstr bool
	finished  bool
	atBar     bool

	// scoreboardOK is the ready sentinel: once nextIn has passed the
	// scoreboard at some cycle it stays ready at every later cycle until
	// the warp issues, because registers only become unavailable through
	// the warp's own issue path (setRegLatency / a pending-load mark) and
	// that path ends in refreshNextInstr, which clears the sentinel. A
	// pipeline-blocked warp is therefore re-checked with one flag load
	// instead of a register walk on every scan.
	scoreboardOK bool

	fetchBusy bool

	// SchedSlot is the hardware scheduler that owns this warp
	// (Slot % SchedulersPerSM, interleaving a TB's warps across
	// schedulers as on Fermi).
	SchedSlot int

	// ibuf is the number of decoded instructions available; when it
	// drains, a refill arrives ifetchLatency cycles later.
	ibuf int

	// SM is the owning core.
	SM *SM
	// IDInTB is the warp index within its TB; Slot is the SM warp slot.
	IDInTB int
	Slot   int

	// Progress is the paper's WarpProgress: thread-instructions executed
	// (issues weighted by active lanes). Maintained by the SM on every
	// issue so any scheduler may read it.
	Progress int64
	// Issued counts warp-instructions issued.
	Issued int64
	// SpawnCycle is when the warp was created (GTO's age).
	SpawnCycle int64
	// FinishCycle is when the warp exited (0 while running). The spread
	// of finish cycles across a TB's warps is the paper's "warp-level
	// divergence".
	FinishCycle int64

	stack []simtEntry

	// regReady[r] is the first cycle register r can be read/overwritten.
	regReady [int(isa.MaxReg) + 1]int64
	// outstandingLoads counts in-flight global loads/atomics.
	outstandingLoads int

	// visits[pc] counts dynamic executions of each static instruction —
	// the iteration coordinate for address/branch hashing.
	visits []int32
	// loopRem[loop*32+lane] is the remaining back-branch takes for each
	// lane; re-armed on loop exit so nested re-entry works.
	loopRem []int32

	// fetchDone is the i-buffer refill callback, bound once at warp
	// creation so fetches do not allocate a closure per refill.
	fetchDone func(int64)
}

// newWarp builds the warp in its initial state: converged at PC 0 with
// its population mask, loop counters armed, i-buffer empty (first fetch
// is scheduled by the SM).
func newWarp(sm *SM, tb *ThreadBlock, idInTB, slot int, cycle int64) *Warp {
	l := tb.Launch
	w := &Warp{
		SM:      sm,
		visits:  make([]int32, l.Program.Len()),
		loopRem: make([]int32, len(l.Program.Loops)*config.WarpSize),
	}
	w.fetchDone = func(int64) {
		if w.finished {
			// A warp that issues Exit just as its i-buffer drains has one
			// last (useless) refill in flight. Clearing fetchBusy is
			// invisible to the model — nothing reads it for a finished
			// warp — but it marks the warp free of pending callbacks, so
			// its thread block becomes recyclable.
			w.fetchBusy = false
			return
		}
		w.ibuf = sm.Cfg.IBufferEntries
		w.fetchBusy = false
		w.gate = 0
		w.refreshNextInstr()
		sm.gateEpoch++
		sm.wakeEvent()
	}
	w.reset(tb, idInTB, slot, cycle)
	return w
}

// reset (re)initializes the warp for a thread block, reusing its
// allocated stack/visits/loopRem backing and its bound fetchDone closure
// (both close over the warp and SM only, which never change across pool
// cycles). The result is indistinguishable from a newWarp-built warp:
// converged at PC 0, registers clear, loop counters armed, i-buffer
// empty. Callers guarantee no stale callbacks (fetch, load completion)
// still reference the warp.
func (w *Warp) reset(tb *ThreadBlock, idInTB, slot int, cycle int64) {
	l := tb.Launch
	threads := l.BlockThreads - idInTB*config.WarpSize
	if threads > config.WarpSize {
		threads = config.WarpSize
	}
	mask := uint32(math.MaxUint32)
	if threads < config.WarpSize {
		mask = uint32(1)<<uint(threads) - 1
	}
	w.TB = tb
	w.IDInTB = idInTB
	w.Slot = slot
	w.SchedSlot = slot % w.SM.Cfg.SchedulersPerSM
	w.Progress, w.Issued = 0, 0
	w.SpawnCycle, w.FinishCycle = cycle, 0
	w.stack = append(w.stack[:0], simtEntry{PC: 0, Reconv: -1, Mask: mask})
	w.atBar, w.finished = false, false
	w.regReady = [int(isa.MaxReg) + 1]int64{}
	w.outstandingLoads = 0
	for i := range w.visits {
		w.visits[i] = 0
	}
	for loopID := range l.Program.Loops {
		w.armLoop(loopID)
	}
	w.ibuf, w.fetchBusy = 0, false
	w.gate, w.gateInstr = 0, false
	// Through the choke point rather than a direct nil, so the SM's
	// validBits mirror tracks this slot too (ibuf is 0 here, so the
	// result is the same nil/clear).
	w.refreshNextInstr()
}

// armLoop initializes the remaining-take counters of loopID for every
// populated lane: a trip count of N means the body runs N times, so the
// back-branch is taken N-1 times.
func (w *Warp) armLoop(loopID int) {
	prog := w.TB.Launch.Program
	for lane := 0; lane < config.WarpSize; lane++ {
		t := prog.Trips(loopID, w.TB.Launch.Seed, w.TB.Global, w.IDInTB, lane)
		w.loopRem[loopID*config.WarpSize+lane] = int32(t - 1)
	}
}

// Finished reports whether every thread of the warp has exited.
func (w *Warp) Finished() bool { return w.finished }

// AtBarrier reports whether the warp is blocked at a barrier.
func (w *Warp) AtBarrier() bool { return w.atBar }

// Valid reports whether the warp has an instruction available for issue
// consideration: alive, not at a barrier, with a decoded instruction in
// its buffer. A warp that is not Valid contributes to Idle stalls.
func (w *Warp) Valid() bool {
	return !w.finished && !w.atBar && w.ibuf > 0
}

// PC returns the warp's current program counter (top of the SIMT stack),
// or -1 when finished.
func (w *Warp) PC() int {
	if w.finished {
		return -1
	}
	return int(w.stack[len(w.stack)-1].PC)
}

// ActiveMask returns the active-lane mask, 0 when finished.
func (w *Warp) ActiveMask() uint32 {
	if w.finished {
		return 0
	}
	return w.stack[len(w.stack)-1].Mask
}

// ActiveLanes returns the number of active lanes.
func (w *Warp) ActiveLanes() int { return bits.OnesCount32(w.ActiveMask()) }

// NextInstr returns the instruction the warp would issue, or nil when not
// Valid.
func (w *Warp) NextInstr() *isa.Instr { return w.nextIn }

// refreshNextInstr re-derives the cached NextInstr result. Must be called
// after any change to the warp's finished/barrier/i-buffer state or its
// program counter.
func (w *Warp) refreshNextInstr() {
	w.scoreboardOK = false
	if w.finished || w.atBar || w.ibuf == 0 {
		w.nextIn = nil
		w.SM.setValidBit(w.Slot, false)
		return
	}
	top := &w.stack[len(w.stack)-1]
	w.nextIn = w.TB.Launch.Program.At(int(top.PC))
	w.nextPC = top.PC
	w.nextMask = top.Mask
	w.nextIter = w.visits[top.PC]
	w.SM.setValidBit(w.Slot, w.nextIn != nil)
}

// ScoreboardReady reports whether in's source and destination registers
// are all available at cycle (RAW and WAW hazards clear).
func (w *Warp) ScoreboardReady(in *isa.Instr, cycle int64) bool {
	if in.Dst != isa.NoReg && w.regReady[in.Dst] > cycle {
		return false
	}
	for _, s := range in.Srcs {
		if s != isa.NoReg && w.regReady[s] > cycle {
			return false
		}
	}
	return true
}

// readyAt returns the first cycle at which in's source and destination
// registers are all available — neverWake when one awaits an in-flight
// load (regPendingLoad), whose completion callback wakes the SM.
func (w *Warp) readyAt(in *isa.Instr) int64 {
	at := int64(0)
	if in.Dst != isa.NoReg {
		at = w.regReady[in.Dst]
	}
	for _, s := range in.Srcs {
		if s != isa.NoReg && w.regReady[s] > at {
			at = w.regReady[s]
		}
	}
	return at // regPendingLoad == neverWake
}

// OutstandingLoads returns the number of global loads/atomics in flight —
// the long-latency signal the TL scheduler watches.
func (w *Warp) OutstandingLoads() int { return w.outstandingLoads }

// setRegLatency marks dst unavailable until cycle+lat.
func (w *Warp) setRegLatency(dst isa.Reg, cycle, lat int64) {
	if dst != isa.NoReg {
		w.regReady[dst] = cycle + lat
	}
}

// advancePC moves the top-of-stack past a non-branch instruction and pops
// reconverged entries.
func (w *Warp) advancePC() {
	w.stack[len(w.stack)-1].PC++
	w.popReconverged()
}

func (w *Warp) popReconverged() {
	for len(w.stack) > 1 {
		top := &w.stack[len(w.stack)-1]
		if top.Reconv < 0 || top.PC != top.Reconv {
			return
		}
		w.stack = w.stack[:len(w.stack)-1]
	}
}

// execBranch applies the branch at pc to the SIMT stack. iter is the
// dynamic execution index used for hashed predicates.
func (w *Warp) execBranch(in *isa.Instr, pc int, iter int64) {
	br := in.Branch
	top := &w.stack[len(w.stack)-1]
	mask := top.Mask

	var jumpMask uint32
	if br.Kind == isa.BrLoop {
		// Lanes with remaining takes jump back; exhausted lanes fall
		// through and re-arm for a possible re-entry.
		base := br.LoopID * config.WarpSize
		prog := w.TB.Launch.Program
		for lanes := mask; lanes != 0; {
			l := bits.TrailingZeros32(lanes)
			lanes &^= 1 << uint(l)
			if w.loopRem[base+l] > 0 {
				w.loopRem[base+l]--
				jumpMask |= 1 << uint(l)
			} else {
				t := prog.Trips(br.LoopID, w.TB.Launch.Seed, w.TB.Global, w.IDInTB, l)
				w.loopRem[base+l] = int32(t - 1)
			}
		}
	} else {
		// Forward branches: predicate-FALSE lanes jump to Target.
		pred := isa.PredMask(br, w.TB.Launch.Seed, w.TB.Global, w.IDInTB, pc, iter, mask)
		jumpMask = mask &^ pred
	}
	fallMask := mask &^ jumpMask

	switch {
	case jumpMask == 0:
		top.PC = int32(pc + 1)
	case fallMask == 0:
		top.PC = int32(br.Target)
	default:
		// Divergence: the current entry becomes the reconvergence entry;
		// the fall-through side is pushed below the jump side so the jump
		// side executes first (order is arbitrary but fixed).
		top.PC = int32(br.Reconv)
		w.stack = append(w.stack,
			simtEntry{PC: int32(pc + 1), Reconv: int32(br.Reconv), Mask: fallMask},
			simtEntry{PC: int32(br.Target), Reconv: int32(br.Reconv), Mask: jumpMask},
		)
	}
	w.popReconverged()
}
