package engine

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/xrand"
)

// This file checks the SIMT reconvergence machinery against an
// independent per-thread reference interpreter on randomly generated
// structured programs: for every lane, the number of times the lane
// executes each class of instruction under warp-stack execution must
// equal sequential per-thread execution. Random programs use only
// deterministic predicates (lane thresholds, trip counts, unconditional
// skips) so the reference is exact.

// genProgram builds a random structured program from rng: nested
// if/else/loop regions around ALU instructions.
func genProgram(rng *xrand.RNG, name string) *isa.Program {
	b := isa.NewBuilder(name)
	var emit func(depth, budget int) int
	emit = func(depth, budget int) int {
		used := 0
		for used < budget {
			switch choice := rng.Intn(6); {
			case choice <= 2 || depth >= 3:
				b.IAdd(1, 1, 1)
				used++
			case choice == 3:
				b.IfLaneLess(1 + rng.Intn(32))
				used += emit(depth+1, 1+rng.Intn(budget-used)) + 1
				if rng.Intn(2) == 0 {
					b.Else()
					used += emit(depth+1, 1+rng.Intn(2)) + 1
				}
				b.EndIf()
			case choice == 4:
				min := 1 + rng.Intn(3)
				span := rng.Intn(4)
				imb := []isa.Imbalance{isa.ImbNone, isa.ImbPerTB, isa.ImbPerWarp, isa.ImbPerThread}[rng.Intn(4)]
				b.Loop(isa.LoopSpec{Min: min, Max: min + span, Imb: imb})
				used += emit(depth+1, 1+rng.Intn(3)) + 1
				b.EndLoop()
			default:
				b.IMul(2, 2, 1)
				used++
			}
		}
		return used
	}
	emit(0, 4+rng.Intn(8))
	b.Exit()
	return b.MustBuild()
}

// refLaneInstrs interprets prog for one lane sequentially and returns
// its dynamic instruction count.
func refLaneInstrs(prog *isa.Program, kseed uint64, tb, warpInTB, lane int, maxSteps int) int {
	rem := make([]int, len(prog.Loops))
	for i := range rem {
		rem[i] = prog.Trips(i, kseed, tb, warpInTB, lane) - 1
	}
	pc, count := 0, 0
	for steps := 0; steps < maxSteps; steps++ {
		in := prog.At(pc)
		count++
		switch in.Op {
		case isa.OpExit:
			return count
		case isa.OpBra:
			br := in.Branch
			switch br.Kind {
			case isa.BrLoop:
				if rem[br.LoopID] > 0 {
					rem[br.LoopID]--
					pc = br.Target
				} else {
					rem[br.LoopID] = prog.Trips(br.LoopID, kseed, tb, warpInTB, lane) - 1
					pc++
				}
			case isa.BrLaneLess:
				if lane < br.N {
					pc++ // predicate true: fall through
				} else {
					pc = br.Target
				}
			case isa.BrWarpRandom:
				// Only P=0 (unconditional skip) appears in generated
				// programs, via Else.
				pc = br.Target
			default:
				panic("unexpected branch kind in generated program")
			}
		default:
			pc++
		}
	}
	return -1 // did not terminate
}

// warpLaneInstrs executes prog on the SIMT stack and returns per-lane
// dynamic instruction counts.
func warpLaneInstrs(t *testing.T, prog *isa.Program, kseed uint64, maxSteps int) ([32]int, *Warp) {
	t.Helper()
	var counts [32]int
	launch := &Launch{Program: prog, GridTBs: 1, BlockThreads: 32, Seed: kseed}
	// Bare SM (no NewSM): give it one bitmask word so the warp's
	// refreshNextInstr can mirror its valid bit.
	sm := &SM{ID: 0, Cfg: config.GTX480(), liveBits: make([]uint64, 1), validBits: make([]uint64, 1)}
	tb := &ThreadBlock{Global: 0, Launch: launch}
	w := newWarp(sm, tb, 0, 0, 0)
	for steps := 0; steps < maxSteps; steps++ {
		if len(w.stack) == 0 {
			t.Fatal("stack emptied without exit")
		}
		pc := w.PC()
		mask := w.ActiveMask()
		for l := 0; l < 32; l++ {
			if mask&(1<<uint(l)) != 0 {
				counts[l]++
			}
		}
		in := prog.At(pc)
		switch in.Op {
		case isa.OpExit:
			if mask != 0xffffffff {
				t.Fatalf("exit with mask %#x; threads lost", mask)
			}
			if len(w.stack) != 1 {
				t.Fatalf("exit with stack depth %d", len(w.stack))
			}
			return counts, w
		case isa.OpBra:
			iter := int64(w.visits[pc])
			w.visits[pc]++
			w.execBranch(in, pc, iter)
		default:
			w.advancePC()
		}
	}
	t.Fatal("warp did not reach exit")
	return counts, w
}

const propMaxSteps = 500_000

// TestPropertySIMTMatchesPerThreadReference is the core SIMT property:
// warp-stack execution is observationally equivalent, per lane, to
// sequential per-thread execution.
func TestPropertySIMTMatchesPerThreadReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.NewRNG(seed | 1)
		prog := genProgram(rng, "prop")
		kseed := rng.Next()
		got, _ := warpLaneInstrs(t, prog, kseed, propMaxSteps)
		for lane := 0; lane < 32; lane++ {
			want := refLaneInstrs(prog, kseed, 0, 0, lane, propMaxSteps)
			if want < 0 {
				t.Logf("reference did not terminate (seed %d)", seed)
				return false
			}
			if got[lane] != want {
				t.Logf("seed %d lane %d: warp executed %d, reference %d\nprogram:\n%s",
					seed, lane, got[lane], want, prog)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLoopCountersReArm checks that after a full warp execution,
// every loop's counters are re-armed to trips-1 — the invariant that
// makes nested loop re-entry correct.
func TestPropertyLoopCountersReArm(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.NewRNG(seed | 1)
		prog := genProgram(rng, "rearm")
		kseed := rng.Next()
		_, w := warpLaneInstrs(t, prog, kseed, propMaxSteps)
		for loopID := range prog.Loops {
			for lane := 0; lane < 32; lane++ {
				want := int32(prog.Trips(loopID, kseed, 0, 0, lane) - 1)
				if w.loopRem[loopID*32+lane] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStackBounded checks the reconvergence stack never grows
// beyond a small structural bound (divergence nesting, not iteration
// count).
func TestPropertyStackBounded(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.NewRNG(seed | 1)
		prog := genProgram(rng, "depth")
		kseed := rng.Next()
		launch := &Launch{Program: prog, GridTBs: 1, BlockThreads: 32, Seed: kseed}
		// Bare SM (no NewSM): give it one bitmask word so the warp's
	// refreshNextInstr can mirror its valid bit.
	sm := &SM{ID: 0, Cfg: config.GTX480(), liveBits: make([]uint64, 1), validBits: make([]uint64, 1)}
		tb := &ThreadBlock{Global: 0, Launch: launch}
		w := newWarp(sm, tb, 0, 0, 0)
		maxDepth := 0
		for steps := 0; steps < propMaxSteps; steps++ {
			if len(w.stack) > maxDepth {
				maxDepth = len(w.stack)
			}
			pc := w.PC()
			in := prog.At(pc)
			if in.Op == isa.OpExit {
				// 2 entries per divergence level; programs nest ≤ 4 deep
				// (3 structural + loop-exit transients).
				return maxDepth <= 16
			}
			if in.Op == isa.OpBra {
				iter := int64(w.visits[pc])
				w.visits[pc]++
				w.execBranch(in, pc, iter)
			} else {
				w.advancePC()
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
