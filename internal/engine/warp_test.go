package engine

import (
	"math/bits"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
)

// testWarp builds a warp over prog with the given block size, without a
// full SM behind it (SIMT-stack and scoreboard mechanics only need Cfg).
func testWarp(t *testing.T, prog *isa.Program, blockThreads, warpID int) *Warp {
	t.Helper()
	cfg := config.GTX480()
	launch := &Launch{Program: prog, GridTBs: 1, BlockThreads: blockThreads, Seed: 7}
	if err := launch.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	sm := &SM{ID: 0, Cfg: cfg, liveBits: make([]uint64, 1), validBits: make([]uint64, 1)}
	tb := &ThreadBlock{Global: 0, Launch: launch}
	return newWarp(sm, tb, warpID, warpID, 0)
}

func mustBuild(t *testing.T, b *isa.Builder) *isa.Program {
	t.Helper()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// stepBranch drives the warp's branch execution directly.
func stepBranch(w *Warp, pc int, iter int64) {
	w.execBranch(w.TB.Launch.Program.At(pc), pc, iter)
}

func TestPartialLastWarpMask(t *testing.T) {
	b := isa.NewBuilder("p")
	b.IAdd(1, 1, 1)
	b.Exit()
	prog := mustBuild(t, b)
	// 72 threads: warps of 32, 32, 8.
	w0 := testWarp(t, prog, 72, 0)
	w2 := testWarp(t, prog, 72, 2)
	if w0.ActiveLanes() != 32 {
		t.Fatalf("warp 0 lanes = %d, want 32", w0.ActiveLanes())
	}
	if w2.ActiveLanes() != 8 {
		t.Fatalf("warp 2 lanes = %d, want 8", w2.ActiveLanes())
	}
	if w2.ActiveMask() != 0xff {
		t.Fatalf("warp 2 mask = %#x, want 0xff", w2.ActiveMask())
	}
}

func TestDivergenceAndReconvergence(t *testing.T) {
	b := isa.NewBuilder("div")
	b.IfLaneLess(8) // pc 0
	b.IAdd(1, 1, 1) // pc 1 (then: lanes 0..7)
	b.Else()        // skip at pc 2
	b.IMul(2, 2, 2) // pc 3 (else: lanes 8..31)
	b.EndIf()
	b.FAdd(3, 1, 2) // pc 4 (join)
	b.Exit()
	prog := mustBuild(t, b)
	w := testWarp(t, prog, 32, 0)

	if w.PC() != 0 {
		t.Fatalf("initial PC = %d", w.PC())
	}
	stepBranch(w, 0, 0)
	// Jump side (predicate-false lanes 8..31 → else block) executes first.
	if w.PC() != 3 {
		t.Fatalf("post-branch PC = %d, want 3 (else side first)", w.PC())
	}
	if w.ActiveMask() != 0xffffff00 {
		t.Fatalf("else mask = %#x", w.ActiveMask())
	}
	w.advancePC() // execute pc 3 → reaches reconv 4 → pops to then side
	if w.PC() != 1 {
		t.Fatalf("after else side PC = %d, want 1 (then side)", w.PC())
	}
	if w.ActiveMask() != 0x000000ff {
		t.Fatalf("then mask = %#x", w.ActiveMask())
	}
	w.advancePC() // pc 1 → 2 (skip branch)
	if w.PC() != 2 {
		t.Fatalf("PC = %d, want 2", w.PC())
	}
	stepBranch(w, 2, 0) // unconditional skip to 4 → reconverged
	if w.PC() != 4 {
		t.Fatalf("join PC = %d, want 4", w.PC())
	}
	if w.ActiveMask() != 0xffffffff {
		t.Fatalf("join mask = %#x, want full", w.ActiveMask())
	}
	if len(w.stack) != 1 {
		t.Fatalf("stack depth %d after reconvergence, want 1", len(w.stack))
	}
}

func TestUniformBranchNoStackGrowth(t *testing.T) {
	b := isa.NewBuilder("uni")
	b.IfLaneLess(32) // taken by everyone → no divergence
	b.IAdd(1, 1, 1)
	b.EndIf()
	b.Exit()
	prog := mustBuild(t, b)
	w := testWarp(t, prog, 32, 0)
	stepBranch(w, 0, 0)
	if len(w.stack) != 1 {
		t.Fatalf("uniform branch grew the stack to %d", len(w.stack))
	}
	if w.PC() != 1 {
		t.Fatalf("PC = %d, want 1 (all lanes fall through)", w.PC())
	}
}

func TestLoopTripCountsAndRearm(t *testing.T) {
	b := isa.NewBuilder("loop")
	b.Loop(isa.LoopSpec{Min: 3, Max: 3}) // body: pc 0, branch: pc 1
	b.IAdd(1, 1, 1)
	b.EndLoop()
	b.Exit()
	prog := mustBuild(t, b)
	w := testWarp(t, prog, 32, 0)

	body := 0
	for iter := int64(0); w.PC() != 2; iter++ {
		if w.PC() == 0 {
			body++
			w.advancePC()
			continue
		}
		stepBranch(w, 1, iter)
		if body > 10 {
			t.Fatal("loop failed to terminate")
		}
	}
	if body != 3 {
		t.Fatalf("body executed %d times, want 3", body)
	}
	// Counters must have re-armed for a hypothetical re-entry.
	for lane := 0; lane < 32; lane++ {
		if w.loopRem[lane] != 2 {
			t.Fatalf("lane %d rem = %d after exit, want re-armed 2", lane, w.loopRem[lane])
		}
	}
}

func TestDivergentLoopExit(t *testing.T) {
	// Per-thread trips in [1,4]: lanes leave the loop at different
	// iterations; every lane must execute the body exactly its trip count.
	b := isa.NewBuilder("divloop")
	b.Loop(isa.LoopSpec{Min: 1, Max: 4, Imb: isa.ImbPerThread})
	b.IAdd(1, 1, 1)
	b.EndLoop()
	b.Exit()
	prog := mustBuild(t, b)
	w := testWarp(t, prog, 32, 0)

	want := make([]int, 32)
	for lane := 0; lane < 32; lane++ {
		want[lane] = prog.Trips(0, 7, 0, 0, lane)
	}
	got := make([]int, 32)
	for guard := 0; w.PC() != 2; guard++ {
		if guard > 1000 {
			t.Fatal("divergent loop failed to terminate")
		}
		pc := w.PC()
		mask := w.ActiveMask()
		if pc == 0 {
			for l := 0; l < 32; l++ {
				if mask&(1<<uint(l)) != 0 {
					got[l]++
				}
			}
			w.advancePC()
			continue
		}
		stepBranch(w, pc, int64(guard))
	}
	for l := 0; l < 32; l++ {
		if got[l] != want[l] {
			t.Fatalf("lane %d executed body %d times, want %d", l, got[l], want[l])
		}
	}
	if w.ActiveMask() != 0xffffffff {
		t.Fatalf("exit mask = %#x, want full reconvergence", w.ActiveMask())
	}
}

func TestScoreboardRAWAndWAW(t *testing.T) {
	b := isa.NewBuilder("sb")
	b.IAdd(1, 2, 3)
	b.Exit()
	prog := mustBuild(t, b)
	w := testWarp(t, prog, 32, 0)
	in := prog.At(0)

	if !w.ScoreboardReady(in, 100) {
		t.Fatal("fresh warp not ready")
	}
	w.setRegLatency(2, 100, 10) // RAW on r2
	if w.ScoreboardReady(in, 105) {
		t.Fatal("RAW hazard not detected")
	}
	if !w.ScoreboardReady(in, 110) {
		t.Fatal("hazard persists after latency")
	}
	w.setRegLatency(1, 200, 10) // WAW on r1
	if w.ScoreboardReady(in, 205) {
		t.Fatal("WAW hazard not detected")
	}
}

func TestLoopRemArmedPerLaneFromTrips(t *testing.T) {
	b := isa.NewBuilder("arm")
	b.Loop(isa.LoopSpec{Min: 2, Max: 9, Imb: isa.ImbPerThread})
	b.IAdd(1, 1, 1)
	b.EndLoop()
	b.Exit()
	prog := mustBuild(t, b)
	w := testWarp(t, prog, 64, 1) // second warp of a 64-thread block
	for lane := 0; lane < 32; lane++ {
		want := int32(prog.Trips(0, 7, 0, 1, lane) - 1)
		if w.loopRem[lane] != want {
			t.Fatalf("lane %d armed with %d, want %d", lane, w.loopRem[lane], want)
		}
	}
}

func TestValidReflectsLifecycle(t *testing.T) {
	b := isa.NewBuilder("v")
	b.Bar()
	b.Exit()
	prog := mustBuild(t, b)
	w := testWarp(t, prog, 32, 0)
	if w.Valid() {
		t.Fatal("warp with empty i-buffer reported Valid")
	}
	w.ibuf = 2
	if !w.Valid() {
		t.Fatal("fetched warp not Valid")
	}
	w.atBar = true
	if w.Valid() {
		t.Fatal("barrier-blocked warp reported Valid")
	}
	w.atBar = false
	w.finished = true
	if w.Valid() || w.PC() != -1 || w.ActiveMask() != 0 {
		t.Fatal("finished warp exposes live state")
	}
}

func TestActiveLanesMatchesMask(t *testing.T) {
	b := isa.NewBuilder("m")
	b.IAdd(1, 1, 1)
	b.Exit()
	prog := mustBuild(t, b)
	w := testWarp(t, prog, 50, 1) // last warp: 18 lanes
	if w.ActiveLanes() != bits.OnesCount32(w.ActiveMask()) || w.ActiveLanes() != 18 {
		t.Fatalf("lanes = %d, mask = %#x", w.ActiveLanes(), w.ActiveMask())
	}
}
