package engine

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
)

func trivialProgram(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("t")
	b.IAdd(1, 1, 1)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLaunchWarpsPerTB(t *testing.T) {
	p := trivialProgram(t)
	cases := []struct{ threads, warps int }{
		{1, 1}, {32, 1}, {33, 2}, {256, 8}, {257, 9}, {1536, 48},
	}
	for _, c := range cases {
		l := &Launch{Program: p, GridTBs: 1, BlockThreads: c.threads}
		if got := l.WarpsPerTB(); got != c.warps {
			t.Errorf("WarpsPerTB(%d threads) = %d, want %d", c.threads, got, c.warps)
		}
	}
}

func TestLaunchValidation(t *testing.T) {
	cfg := config.GTX480()
	p := trivialProgram(t)
	bad := []struct {
		name string
		l    Launch
		frag string
	}{
		{"no program", Launch{GridTBs: 1, BlockThreads: 32}, "no program"},
		{"zero grid", Launch{Program: p, GridTBs: 0, BlockThreads: 32}, "grid"},
		{"zero block", Launch{Program: p, GridTBs: 1, BlockThreads: 0}, "thread"},
		{"block too big", Launch{Program: p, GridTBs: 1, BlockThreads: 2048}, "exceeds SM capacity"},
		{"regs too big", Launch{Program: p, GridTBs: 1, BlockThreads: 1536, RegsPerThread: 63}, "registers"},
		{"smem too big", Launch{Program: p, GridTBs: 1, BlockThreads: 32, SharedMemPerTB: 1 << 20}, "shared memory"},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			err := c.l.Validate(cfg)
			if err == nil {
				t.Fatal("Validate accepted bad launch")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q lacks %q", err, c.frag)
			}
		})
	}
	good := Launch{Program: p, GridTBs: 10, BlockThreads: 256, RegsPerThread: 20, SharedMemPerTB: 4096}
	if err := good.Validate(cfg); err != nil {
		t.Fatalf("Validate rejected good launch: %v", err)
	}
}

func TestResidentTBsOccupancyLimits(t *testing.T) {
	cfg := config.GTX480()
	p := trivialProgram(t)
	cases := []struct {
		name string
		l    Launch
		want int
	}{
		// Paper Sec. I: 256-thread TBs → 1536/256 = 6 per SM.
		{"thread limited", Launch{Program: p, BlockThreads: 256, GridTBs: 1}, 6},
		// TB-slot limited: tiny TBs cap at 8.
		{"slot limited", Launch{Program: p, BlockThreads: 32, GridTBs: 1}, 8},
		// Register limited: 40 regs × 128 threads = 5120 → 32768/5120 = 6.
		{"register limited", Launch{Program: p, BlockThreads: 128, RegsPerThread: 40, GridTBs: 1}, 6},
		// Shared-memory limited: 48KB / 12KB = 4.
		{"smem limited", Launch{Program: p, BlockThreads: 128, SharedMemPerTB: 12 * 1024, GridTBs: 1}, 4},
		// Whole-SM TB.
		{"giant", Launch{Program: p, BlockThreads: 1536, GridTBs: 1}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.l.ResidentTBs(cfg); got != c.want {
				t.Errorf("ResidentTBs = %d, want %d", got, c.want)
			}
		})
	}
}
