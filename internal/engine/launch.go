// Package engine implements the SM core model: warps with SIMT
// reconvergence stacks and scoreboards, thread blocks with barrier and
// finish tracking, execution pipelines, and the per-cycle issue logic
// with GPGPU-Sim's stall taxonomy (Idle / Scoreboard / Pipeline). Warp
// scheduling policies plug in through the Scheduler interface; the engine
// guarantees that a policy can change only *when* instructions issue,
// never *what* executes.
package engine

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
)

// Launch describes one kernel launch: the program, its grid/block shape
// and its per-TB resource footprint — the inputs the Thread Block
// Scheduler uses for residency decisions.
type Launch struct {
	// Program is the kernel body (validated).
	Program *isa.Program
	// GridTBs is the number of thread blocks in the grid.
	GridTBs int
	// BlockThreads is threads per thread block (need not be a multiple of
	// the warp size; the last warp runs partially populated).
	BlockThreads int
	// RegsPerThread is the register footprint used for residency.
	RegsPerThread int
	// SharedMemPerTB is the shared-memory footprint in bytes.
	SharedMemPerTB int
	// Seed makes all data-dependent behaviour (addresses, branch
	// outcomes, trip counts) reproducible.
	Seed uint64
}

// WarpsPerTB returns the number of warps per thread block.
func (l *Launch) WarpsPerTB() int {
	return (l.BlockThreads + config.WarpSize - 1) / config.WarpSize
}

// Validate checks that the launch is well-formed and that a single TB
// fits on one SM of cfg.
func (l *Launch) Validate(cfg *config.Config) error {
	if l.Program == nil {
		return fmt.Errorf("engine: launch has no program")
	}
	if err := l.Program.Validate(); err != nil {
		return err
	}
	if l.GridTBs <= 0 {
		return fmt.Errorf("engine: %s: grid must have at least one TB", l.Program.Name)
	}
	if l.BlockThreads <= 0 {
		return fmt.Errorf("engine: %s: block must have at least one thread", l.Program.Name)
	}
	if l.BlockThreads > cfg.MaxThreadsPerSM {
		return fmt.Errorf("engine: %s: block of %d threads exceeds SM capacity %d",
			l.Program.Name, l.BlockThreads, cfg.MaxThreadsPerSM)
	}
	if l.WarpsPerTB() > cfg.MaxWarpsPerSM() {
		return fmt.Errorf("engine: %s: %d warps per TB exceeds SM warp slots %d",
			l.Program.Name, l.WarpsPerTB(), cfg.MaxWarpsPerSM())
	}
	if l.RegsPerThread < 0 || l.RegsPerThread > int(isa.MaxReg) {
		return fmt.Errorf("engine: %s: regs per thread %d out of range", l.Program.Name, l.RegsPerThread)
	}
	if l.RegsPerThread*l.BlockThreads > cfg.RegistersPerSM {
		return fmt.Errorf("engine: %s: one TB needs %d registers, SM has %d",
			l.Program.Name, l.RegsPerThread*l.BlockThreads, cfg.RegistersPerSM)
	}
	if l.SharedMemPerTB < 0 || l.SharedMemPerTB > cfg.SharedMemPerSM {
		return fmt.Errorf("engine: %s: TB shared memory %d exceeds SM capacity %d",
			l.Program.Name, l.SharedMemPerTB, cfg.SharedMemPerSM)
	}
	return nil
}

// ResidentTBs returns how many TBs of this launch fit concurrently on one
// SM — the occupancy calculation the paper's Sec. II-C reasons about.
func (l *Launch) ResidentTBs(cfg *config.Config) int {
	n := cfg.MaxTBsPerSM
	if byWarps := cfg.MaxWarpsPerSM() / l.WarpsPerTB(); byWarps < n {
		n = byWarps
	}
	if byThreads := cfg.MaxThreadsPerSM / l.BlockThreads; byThreads < n {
		n = byThreads
	}
	if l.RegsPerThread > 0 {
		if byRegs := cfg.RegistersPerSM / (l.RegsPerThread * l.BlockThreads); byRegs < n {
			n = byRegs
		}
	}
	if l.SharedMemPerTB > 0 {
		if bySmem := cfg.SharedMemPerSM / l.SharedMemPerTB; bySmem < n {
			n = bySmem
		}
	}
	return n
}
