package engine_test

// Steady-state allocation regression tests. The issue loop is the
// simulator's hot path: once an SM's thread blocks are resident and
// warps are fetching and issuing, a core cycle must not allocate —
// every buffer it needs (warp orders, memory transactions, event
// callbacks) is pooled or pre-bound. A regression here multiplies
// across millions of simulated cycles, so it is pinned by test rather
// than left to the benchmarks.

import (
	"testing"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/sched"
	"repro/internal/timing"
)

// steadyProg is a long ALU-only loop: warps issue (and periodically
// refetch) for far longer than the measurement window, so every
// measured cycle exercises the issue path in steady state.
func steadyProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("alloc-steady")
	b.Loop(isa.LoopSpec{Min: 1 << 20, Max: 1 << 20})
	b.IAdd(1, 0, 0)
	b.IAdd(2, 0, 0)
	b.EndLoop()
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSteadyStateCycleDoesNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name  string
		naive bool
	}{
		{"fast-path", false},
		{"naive-path", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := config.GTX480()
			cfg.DisableOrderCache = tc.naive
			cfg.DisableCycleSkip = tc.naive

			prog := steadyProg(t)
			wheel := timing.NewWheel()
			mem := memsys.New(cfg, wheel)
			launch := &engine.Launch{Program: prog, GridTBs: 1, BlockThreads: 256, Seed: 1}
			if err := launch.Validate(cfg); err != nil {
				t.Fatal(err)
			}
			sm := engine.NewSM(0, cfg, wheel, mem, launch, sched.NewGTO)
			sm.AssignTB(0, 0)

			cycle := int64(0)
			step := func() {
				cycle++
				wheel.Advance(cycle)
				mem.Tick(cycle)
				sm.Tick(cycle)
			}
			// Warm up past one full timing-wheel lap so every reusable
			// buffer (wheel buckets, order caches, i-buffer refills) has
			// reached its steady capacity.
			for i := 0; i < timing.Horizon+512; i++ {
				step()
			}
			avg := testing.AllocsPerRun(400, step)
			if sm.Done() {
				t.Fatal("kernel finished during measurement; not steady state")
			}
			if avg > 0.05 {
				t.Errorf("steady-state cycle allocates %.2f objects; want 0", avg)
			}
		})
	}
}

// churnProg is a short ALU loop: thread blocks retire after a few
// hundred cycles, so a long run continuously retires and launches TBs.
func churnProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("alloc-churn")
	b.Loop(isa.LoopSpec{Min: 32, Max: 32})
	b.IAdd(1, 0, 0)
	b.EndLoop()
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTBChurnDoesNotAllocate pins the warp/TB pool: once the free list
// has seen one retirement per resident slot, every later TB launch must
// reuse a pooled block — the steady state of a grid with far more TBs
// than SM residency. The naive (pooling-off) configuration allocates on
// every launch, which is what the differential tests cover; here only
// the pooled path is measured.
func TestTBChurnDoesNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factory engine.Factory
	}{
		{"LRR", sched.NewLRR},
		{"GTO", sched.NewGTO},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := config.GTX480()
			prog := churnProg(t)
			wheel := timing.NewWheel()
			mem := memsys.New(cfg, wheel)
			launch := &engine.Launch{Program: prog, GridTBs: 1 << 20, BlockThreads: 256, Seed: 1}
			if err := launch.Validate(cfg); err != nil {
				t.Fatal(err)
			}
			sm := engine.NewSM(0, cfg, wheel, mem, launch, tc.factory)

			next := 0
			cycle := int64(0)
			step := func() {
				cycle++
				wheel.Advance(cycle)
				mem.Tick(cycle)
				for sm.CanAccept() && next < launch.GridTBs {
					sm.AssignTB(next, cycle)
					next++
				}
				sm.Tick(cycle)
			}
			// One measured run is one full churn: simulate until at least
			// one TB retires and its replacement launches. Measuring per
			// churn rather than per cycle keeps the launch-path allocations
			// above AllocsPerRun's integer truncation. (A launch is also
			// exactly where the pool is exercised.)
			churn := func() {
				for target := next + 1; next < target; {
					step()
				}
			}
			// Warm up past a full wheel lap plus several TB generations so
			// the pool holds a drained, reusable block for every slot.
			for i := 0; i < timing.Horizon+4096; i++ {
				step()
			}
			avg := testing.AllocsPerRun(20, churn)
			if sm.Done() {
				t.Fatal("grid finished during measurement; not steady churn")
			}
			if avg > 0.05 {
				t.Errorf("TB churn allocates %.2f objects per launch; want 0", avg)
			}
		})
	}
}
