package engine_test

// Steady-state allocation regression tests. The issue loop is the
// simulator's hot path: once an SM's thread blocks are resident and
// warps are fetching and issuing, a core cycle must not allocate —
// every buffer it needs (warp orders, memory transactions, event
// callbacks) is pooled or pre-bound. A regression here multiplies
// across millions of simulated cycles, so it is pinned by test rather
// than left to the benchmarks.

import (
	"testing"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/sched"
	"repro/internal/timing"
)

// steadyProg is a long ALU-only loop: warps issue (and periodically
// refetch) for far longer than the measurement window, so every
// measured cycle exercises the issue path in steady state.
func steadyProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("alloc-steady")
	b.Loop(isa.LoopSpec{Min: 1 << 20, Max: 1 << 20})
	b.IAdd(1, 0, 0)
	b.IAdd(2, 0, 0)
	b.EndLoop()
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSteadyStateCycleDoesNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name  string
		naive bool
	}{
		{"fast-path", false},
		{"naive-path", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := config.GTX480()
			cfg.DisableOrderCache = tc.naive
			cfg.DisableCycleSkip = tc.naive

			prog := steadyProg(t)
			wheel := timing.NewWheel()
			mem := memsys.New(cfg, wheel)
			launch := &engine.Launch{Program: prog, GridTBs: 1, BlockThreads: 256, Seed: 1}
			if err := launch.Validate(cfg); err != nil {
				t.Fatal(err)
			}
			sm := engine.NewSM(0, cfg, wheel, mem, launch, sched.NewGTO)
			sm.AssignTB(0, 0)

			cycle := int64(0)
			step := func() {
				cycle++
				wheel.Advance(cycle)
				mem.Tick(cycle)
				sm.Tick(cycle)
			}
			// Warm up past one full timing-wheel lap so every reusable
			// buffer (wheel buckets, order caches, i-buffer refills) has
			// reached its steady capacity.
			for i := 0; i < timing.Horizon+512; i++ {
				step()
			}
			avg := testing.AllocsPerRun(400, step)
			if sm.Done() {
				t.Fatal("kernel finished during measurement; not steady state")
			}
			if avg > 0.05 {
				t.Errorf("steady-state cycle allocates %.2f objects; want 0", avg)
			}
		})
	}
}
