package engine

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/timing"
)

// rig is a single-SM test rig driven cycle by cycle.
type rig struct {
	cfg   *config.Config
	wheel *timing.Wheel
	mem   *memsys.System
	sm    *SM
	cycle int64
}

// passAll is a trivial policy: all live warps in slot order.
type passAll struct {
	BasePolicy
	sm *SM
}

func (p *passAll) Name() string { return "passall" }
func (p *passAll) Order(slot int, dst []*Warp, _ int64) []*Warp {
	for _, w := range p.sm.WarpSlots {
		if w != nil && w.SchedSlot == slot {
			dst = append(dst, w)
		}
	}
	return dst
}

func newRig(t *testing.T, prog *isa.Program, blockThreads, gridTBs int) *rig {
	t.Helper()
	cfg := config.GTX480()
	wheel := timing.NewWheel()
	mem := memsys.New(cfg, wheel)
	launch := &Launch{Program: prog, GridTBs: gridTBs, BlockThreads: blockThreads, Seed: 3}
	if err := launch.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	r := &rig{cfg: cfg, wheel: wheel, mem: mem}
	r.sm = NewSM(0, cfg, wheel, mem, launch, func(sm *SM) Scheduler { return &passAll{sm: sm} })
	return r
}

// step advances one core cycle.
func (r *rig) step() {
	r.cycle++
	r.wheel.Advance(r.cycle)
	r.mem.Tick(r.cycle)
	r.sm.Tick(r.cycle)
}

// runToCompletion drives the SM until its resident TBs retire.
func (r *rig) runToCompletion(t *testing.T, budget int64) {
	t.Helper()
	for i := int64(0); i < budget; i++ {
		if r.sm.Done() {
			return
		}
		r.step()
	}
	t.Fatalf("SM did not finish within %d cycles", budget)
}

func build(t *testing.T, f func(b *isa.Builder)) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("sm-test")
	f(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStraightLineKernelRetires(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.IAdd(1, 1, 1)
		b.IAdd(2, 2, 2)
		b.Exit()
	})
	r := newRig(t, prog, 64, 1)
	tb := r.sm.AssignTB(0, 0)
	r.runToCompletion(t, 1000)
	if !tb.Done() || tb.EndCycle == 0 {
		t.Fatal("TB did not retire cleanly")
	}
	// 2 warps × 3 instructions.
	if r.sm.WarpInstrs != 6 {
		t.Fatalf("WarpInstrs = %d, want 6", r.sm.WarpInstrs)
	}
	if r.sm.ThreadInstrs != 6*32 {
		t.Fatalf("ThreadInstrs = %d, want %d", r.sm.ThreadInstrs, 6*32)
	}
	if r.sm.ResidentTBCount() != 0 || !r.sm.CanAccept() {
		t.Fatal("resources not released at retire")
	}
}

func TestProgressCountsActiveLanesOnly(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.IfLaneLess(8)
		b.IAdd(1, 1, 1) // executed by 8 lanes
		b.EndIf()
		b.Exit()
	})
	r := newRig(t, prog, 32, 1)
	tb := r.sm.AssignTB(0, 0)
	r.runToCompletion(t, 1000)
	// bra (32) + iadd (8) + exit (32) = 72 thread-instructions.
	if tb.Progress != 72 {
		t.Fatalf("TB progress = %d, want 72", tb.Progress)
	}
	if tb.Warps[0].Progress != 72 {
		t.Fatalf("warp progress = %d, want 72", tb.Warps[0].Progress)
	}
}

func TestDependentALUChainPaysLatency(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.IAdd(1, 1, 1)
		b.IAdd(1, 1, 1) // RAW on r1
		b.IAdd(1, 1, 1)
		b.Exit()
	})
	r := newRig(t, prog, 32, 1)
	r.sm.AssignTB(0, 0)
	r.runToCompletion(t, 1000)
	// Single warp: each dependent IAdd waits ALULatency; runtime must be
	// at least 2 chained latencies.
	if r.cycle < int64(2*r.cfg.ALULatency) {
		t.Fatalf("dependent chain finished in %d cycles; scoreboard not enforced", r.cycle)
	}
	st := r.sm.StallTotal()
	if st.Scoreboard == 0 {
		t.Fatal("no scoreboard stalls recorded for a RAW chain")
	}
}

func TestIndependentALUOpsPipeline(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.IAdd(1, 0, 0)
		b.IAdd(2, 0, 0)
		b.IAdd(3, 0, 0)
		b.IAdd(4, 0, 0)
		b.Exit()
	})
	r := newRig(t, prog, 32, 1)
	r.sm.AssignTB(0, 0)
	r.runToCompletion(t, 1000)
	// Independent ops issue back-to-back: well under one latency each.
	if r.cycle > int64(3*r.cfg.ALULatency) {
		t.Fatalf("independent ops took %d cycles; they must pipeline", r.cycle)
	}
}

func TestBarrierBlocksUntilAllWarpsArrive(t *testing.T) {
	// Per-warp imbalance before a barrier: the fast warp must wait.
	prog := build(t, func(b *isa.Builder) {
		b.Loop(isa.LoopSpec{Min: 1, Max: 20, Imb: isa.ImbPerWarp})
		b.IAdd(1, 1, 1)
		b.EndLoop()
		b.Bar()
		b.IAdd(2, 2, 2)
		b.Exit()
	})
	r := newRig(t, prog, 128, 1) // 4 warps
	tb := r.sm.AssignTB(0, 0)

	sawWaiting := false
	for i := 0; i < 5000 && !r.sm.Done(); i++ {
		r.step()
		if tb.WarpsAtBarrier > 0 && tb.WarpsAtBarrier < len(tb.Warps) {
			sawWaiting = true
			for _, w := range tb.Warps {
				// A warp at the barrier must never be past pc 3 (the
				// instruction after Bar) while siblings still run.
				if w.AtBarrier() && w.PC() != 3 {
					t.Fatalf("barrier-blocked warp at pc %d", w.PC())
				}
			}
		}
	}
	if !r.sm.Done() {
		t.Fatal("barrier kernel did not finish")
	}
	if !sawWaiting {
		t.Fatal("imbalanced warps never actually waited at the barrier")
	}
	if tb.WarpsAtBarrier != 0 {
		t.Fatal("barrier count not reset")
	}
}

func TestGlobalLoadProducesIdleOrSBWhileWaiting(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced})
		b.IAdd(2, 1, 1) // depends on the load
		b.Exit()
	})
	r := newRig(t, prog, 32, 1)
	r.sm.AssignTB(0, 0)
	r.runToCompletion(t, 100000)
	// The single warp waits out a full memory round trip.
	if r.cycle < int64(r.cfg.L2HitLatency) {
		t.Fatalf("load completed in %d cycles; miss path not exercised", r.cycle)
	}
	if r.sm.StallTotal().Scoreboard == 0 {
		t.Fatal("no scoreboard stalls while load in flight")
	}
}

func TestUncoalescedLoadOccupiesLDSTUnitPerLine(t *testing.T) {
	coalesced := build(t, func(b *isa.Builder) {
		b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced})
		b.IAdd(2, 1, 1)
		b.Exit()
	})
	scattered := build(t, func(b *isa.Builder) {
		b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatRandom, Region: 16 << 20})
		b.IAdd(2, 1, 1)
		b.Exit()
	})
	rc := newRig(t, coalesced, 32, 1)
	rc.sm.AssignTB(0, 0)
	rc.runToCompletion(t, 100000)
	rs := newRig(t, scattered, 32, 1)
	rs.sm.AssignTB(0, 0)
	rs.runToCompletion(t, 100000)
	if rs.cycle <= rc.cycle {
		t.Fatalf("scattered load (%d cycles) not slower than coalesced (%d)", rs.cycle, rc.cycle)
	}
}

func TestSharedMemBankConflictLatency(t *testing.T) {
	free := build(t, func(b *isa.Builder) {
		b.LdShared(1, isa.MemSpec{Pattern: isa.PatCoalesced})
		b.IAdd(2, 1, 1)
		b.Exit()
	})
	conflict := build(t, func(b *isa.Builder) {
		b.LdShared(1, isa.MemSpec{Pattern: isa.PatStrided, Stride: 128}) // 32-way conflict
		b.IAdd(2, 1, 1)
		b.Exit()
	})
	rf := newRig(t, free, 32, 1)
	rf.sm.AssignTB(0, 0)
	rf.runToCompletion(t, 10000)
	rcf := newRig(t, conflict, 32, 1)
	rcf.sm.AssignTB(0, 0)
	rcf.runToCompletion(t, 10000)
	if rcf.cycle <= rf.cycle {
		t.Fatalf("bank-conflicted access (%d) not slower than conflict-free (%d)", rcf.cycle, rf.cycle)
	}
}

func TestSFUQueueSaturationGivesPipelineStalls(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.Repeat(8, func() { b.SFU(1, 0) })
		b.Exit()
	})
	// Many warps all hammering the single SFU port.
	r := newRig(t, prog, 1536, 1)
	r.sm.AssignTB(0, 0)
	r.runToCompletion(t, 100000)
	if r.sm.StallTotal().Pipeline == 0 {
		t.Fatal("SFU saturation produced no pipeline stalls")
	}
}

func TestStoreIsFireAndForget(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.StGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced})
		b.IAdd(2, 2, 2) // independent: must not wait for the store
		b.Exit()
	})
	r := newRig(t, prog, 32, 1)
	r.sm.AssignTB(0, 0)
	r.runToCompletion(t, 100000)
	// Far faster than a memory round trip: the warp never waits on the
	// store data path.
	if r.cycle > int64(r.cfg.L2HitLatency) {
		t.Fatalf("store blocked the warp: %d cycles", r.cycle)
	}
}

func TestIdleStallsWhenNoResidentTBs(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.IAdd(1, 1, 1)
		b.Exit()
	})
	r := newRig(t, prog, 32, 1)
	r.step()
	r.step()
	st := r.sm.StallTotal()
	if st.Idle != int64(2*r.cfg.SchedulersPerSM) {
		t.Fatalf("empty SM idle slots = %d, want %d", st.Idle, 2*r.cfg.SchedulersPerSM)
	}
}

func TestIFetchGapProducesIdle(t *testing.T) {
	// One warp, long straight-line code: every i-buffer drain inserts a
	// fetch bubble classified as Idle.
	prog := build(t, func(b *isa.Builder) {
		b.Repeat(16, func() { b.IAdd(1, 0, 0) })
		b.Exit()
	})
	r := newRig(t, prog, 32, 1)
	r.sm.AssignTB(0, 0)
	r.runToCompletion(t, 10000)
	if r.sm.StallTotal().Idle == 0 {
		t.Fatal("no idle cycles despite fetch bubbles and a single warp")
	}
}

func TestMultipleTBsAssignAndRetireIndependently(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.Loop(isa.LoopSpec{Min: 1, Max: 8, Imb: isa.ImbPerTB})
		b.IAdd(1, 1, 1)
		b.EndLoop()
		b.Exit()
	})
	r := newRig(t, prog, 256, 8)
	retired := 0
	r.sm.OnTBRetireFn = func(tb *ThreadBlock, _ int64) { retired++ }
	for i := 0; i < 6; i++ {
		if !r.sm.CanAccept() {
			t.Fatalf("SM refused TB %d below residency limit", i)
		}
		r.sm.AssignTB(i, 0)
	}
	if r.sm.CanAccept() {
		t.Fatal("SM accepted beyond residency limit (256-thread TBs → 6)")
	}
	r.runToCompletion(t, 100000)
	if retired != 6 {
		t.Fatalf("retired %d TBs, want 6", retired)
	}
}

func TestWarpSlotsContiguousPerTB(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.IAdd(1, 1, 1)
		b.Exit()
	})
	r := newRig(t, prog, 256, 4)
	tb0 := r.sm.AssignTB(0, 0)
	tb1 := r.sm.AssignTB(1, 0)
	wpt := r.sm.Launch.WarpsPerTB()
	for i, w := range tb0.Warps {
		if w.Slot != tb0.Slot*wpt+i {
			t.Fatalf("tb0 warp %d at slot %d", i, w.Slot)
		}
	}
	for i, w := range tb1.Warps {
		if w.Slot != tb1.Slot*wpt+i {
			t.Fatalf("tb1 warp %d at slot %d", i, w.Slot)
		}
	}
	// Scheduler-slot interleave: warps of one TB alternate slots.
	if tb0.Warps[0].SchedSlot == tb0.Warps[1].SchedSlot {
		t.Fatal("adjacent warps share a scheduler slot; expected interleave")
	}
}

func TestStallBreakdownConsistencyUnderLoad(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatRandom, Region: 1 << 22})
		b.IAdd(2, 1, 1)
		b.Bar()
		b.SFU(3, 2)
		b.Exit()
	})
	r := newRig(t, prog, 512, 3)
	for i := 0; i < 3; i++ {
		r.sm.AssignTB(i, 0)
	}
	r.runToCompletion(t, 500000)
	var total stats.StallBreakdown
	for _, s := range r.sm.Stalls {
		total.Add(s)
	}
	if total.Slots() != r.cycle*int64(r.cfg.SchedulersPerSM) {
		t.Fatalf("accounting: %d slots vs %d cycles×%d",
			total.Slots(), r.cycle, r.cfg.SchedulersPerSM)
	}
	if total.Issued != r.sm.WarpInstrs {
		t.Fatal("issued slots != warp instructions")
	}
}

func TestAssignToFullSMPanics(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.IAdd(1, 1, 1)
		b.Exit()
	})
	r := newRig(t, prog, 1536, 2)
	r.sm.AssignTB(0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("AssignTB on full SM did not panic")
		}
	}()
	r.sm.AssignTB(1, 0)
}

func TestInstructionCacheMissAddsFetchLatency(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.Repeat(12, func() { b.IAdd(1, 0, 0) })
		b.Exit()
	})
	base := newRig(t, prog, 32, 1)
	base.sm.AssignTB(0, 0)
	base.runToCompletion(t, 10000)

	// Tiny icache with a big miss penalty: cold misses on every line.
	cfg := config.GTX480()
	cfg.ICacheSize = 2 * 8 * 2 // 2 lines of 2 instructions
	cfg.ICacheAssoc = 1
	cfg.ICacheLineInstrs = 2
	cfg.ICacheMissLatency = 50
	wheel := timing.NewWheel()
	mem := memsys.New(cfg, wheel)
	launch := &Launch{Program: prog, GridTBs: 1, BlockThreads: 32, Seed: 3}
	r2 := &rig{cfg: cfg, wheel: wheel, mem: mem}
	r2.sm = NewSM(0, cfg, wheel, mem, launch, func(sm *SM) Scheduler { return &passAll{sm: sm} })
	r2.sm.AssignTB(0, 0)
	r2.runToCompletion(t, 100000)

	if r2.cycle <= base.cycle+50 {
		t.Fatalf("icache misses added no latency: %d vs %d", r2.cycle, base.cycle)
	}
}

func TestInstructionCacheDisabledByDefault(t *testing.T) {
	if config.GTX480().ICacheSize != 0 {
		t.Fatal("default config must disable the icache (recorded results assume it)")
	}
}

func TestUncoalescedStoreHoldsLDSTUnit(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.StGlobal(1, isa.MemSpec{Pattern: isa.PatRandom, Region: 16 << 20}) // ~32 lines
		b.LdShared(2, isa.MemSpec{Pattern: isa.PatCoalesced})                // needs the LD/ST unit
		b.IAdd(3, 2, 2)
		b.Exit()
	})
	r := newRig(t, prog, 32, 1)
	r.sm.AssignTB(0, 0)

	// The store issues first; the shared load must wait until the store's
	// transactions drained at one line per cycle. Count the pipeline
	// stalls accrued while the single warp was ready but the unit busy.
	r.runToCompletion(t, 100000)
	if st := r.sm.StallTotal(); st.Pipeline < 16 {
		t.Fatalf("only %d pipeline stalls; uncoalesced store did not hold the LD/ST unit", st.Pipeline)
	}
}
