package engine

// ThreadBlock is one resident thread block on an SM. The engine tracks
// the quantities every scheduler may need — progress, warps at barrier,
// warps finished — because the paper's hardware proposal (Sec. III-E)
// maintains exactly these registers per TB.
type ThreadBlock struct {
	// Global is the TB index within the grid.
	Global int
	// SMID is the SM the block resides on; Slot the resident TB slot.
	SMID int
	Slot int
	// Launch is the owning kernel launch.
	Launch *Launch
	// Warps are the TB's warps, in warp-id order (contiguous SM slots).
	Warps []*Warp

	// Progress is the paper's TBProgress: thread-instructions executed by
	// the TB's threads.
	Progress int64
	// WarpsAtBarrier is the paper's nWarpsAtBar register.
	WarpsAtBarrier int
	// WarpsFinished is the paper's nWarpsFin register.
	WarpsFinished int

	// StartCycle/EndCycle bound the TB's residency (Fig. 2 raw data).
	StartCycle int64
	EndCycle   int64
	// barrierStart is the cycle the current barrier episode began (first
	// warp arrived); 0 when no episode is open.
	barrierStart int64
	// LaunchSeq is how-many-th TB this SM received (0-based).
	LaunchSeq int
}

// reset reinitializes a pooled thread block for a new grid position,
// keeping its Warps slice (the warps themselves are reset by the SM) and
// its SM binding (pools are per-SM, so SMID and Launch are unchanged).
func (tb *ThreadBlock) reset(global, slot int, cycle int64, launchSeq int) {
	tb.Global = global
	tb.Slot = slot
	tb.Progress = 0
	tb.WarpsAtBarrier = 0
	tb.WarpsFinished = 0
	tb.StartCycle = cycle
	tb.EndCycle = 0
	tb.barrierStart = 0
	tb.LaunchSeq = launchSeq
}

// Done reports whether every warp has finished.
func (tb *ThreadBlock) Done() bool { return tb.WarpsFinished == len(tb.Warps) }

// WarpDisparity returns the spread (max − min) of the warps' finish
// cycles — the paper's "warp-level divergence" made measurable. Valid
// once the TB is Done.
func (tb *ThreadBlock) WarpDisparity() int64 {
	var lo, hi int64 = 1<<62 - 1, 0
	for _, w := range tb.Warps {
		if w.FinishCycle < lo {
			lo = w.FinishCycle
		}
		if w.FinishCycle > hi {
			hi = w.FinishCycle
		}
	}
	if hi == 0 {
		return 0
	}
	return hi - lo
}

// barrierComplete reports whether every warp has arrived at the barrier.
func (tb *ThreadBlock) barrierComplete() bool {
	return tb.WarpsAtBarrier == len(tb.Warps)
}
