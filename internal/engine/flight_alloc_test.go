package engine_test

// The flight recorder's contract when it is NOT attached: zero cost.
// Every hook site in the SM reduces to one nil check, so a steady-state
// cycle with the recorder absent must stay allocation-free exactly like
// the bare issue loop pinned by alloc_test.go — including on a kernel
// that exercises the memory-side hook sites (traceRead/traceWrite in
// the memsys are nil-guarded the same way).

import (
	"testing"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/sched"
	"repro/internal/timing"
)

// flightSteadyProg loops ALU work with a periodic coalesced load, so
// the measured window crosses the issue hooks, the stall-classification
// hooks and the memsys span hooks — all with the recorder disabled.
func flightSteadyProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("flight-alloc-steady")
	b.Loop(isa.LoopSpec{Min: 1 << 20, Max: 1 << 20})
	b.IAdd(1, 0, 0)
	b.LdGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
	b.IAdd(2, 0, 0)
	b.EndLoop()
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFlightDisabledPathDoesNotAllocate(t *testing.T) {
	cfg := config.GTX480()
	prog := flightSteadyProg(t)
	wheel := timing.NewWheel()
	mem := memsys.New(cfg, wheel)
	launch := &engine.Launch{Program: prog, GridTBs: 1, BlockThreads: 256, Seed: 1}
	if err := launch.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	// No SetFlight call: sm.fl and the memsys trace stay nil, which is
	// the production default.
	sm := engine.NewSM(0, cfg, wheel, mem, launch, sched.NewGTO)
	sm.AssignTB(0, 0)

	cycle := int64(0)
	step := func() {
		cycle++
		wheel.Advance(cycle)
		mem.Tick(cycle)
		sm.Tick(cycle)
	}
	for i := 0; i < timing.Horizon+512; i++ {
		step()
	}
	avg := testing.AllocsPerRun(400, step)
	if sm.Done() {
		t.Fatal("kernel finished during measurement; not steady state")
	}
	if avg > 0.05 {
		t.Fatalf("steady-state cycle allocates %.3f objs/op with the flight recorder disabled; want 0", avg)
	}
}
