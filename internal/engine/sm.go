package engine

import (
	"math/bits"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/timing"
)

// SM is one streaming multiprocessor executing thread blocks of a single
// kernel launch. It owns the issue logic, the execution-pipeline
// occupancy model and the stall classification; the plugged-in Scheduler
// only decides priority order.
type SM struct {
	ID    int
	Cfg   *config.Config
	Wheel *timing.Wheel
	Mem   *memsys.System
	// Launch is the kernel this SM executes.
	Launch *Launch
	// Sched is the warp-scheduling policy.
	Sched Scheduler

	// WarpSlots holds resident warps; a TB's warps occupy the contiguous
	// range [slot*WarpsPerTB, (slot+1)*WarpsPerTB).
	WarpSlots []*Warp
	// TBSlots holds resident TBs, nil when free. Its length is the
	// launch's per-SM residency limit.
	TBSlots []*ThreadBlock

	residentTBs int
	launchSeq   int

	// PendingTBsFn answers "are TBs still waiting in the Thread Block
	// Scheduler?" — PRO's fastTBPhase test. Wired by the GPU; defaults to
	// zero pending.
	PendingTBsFn func() int
	// OnTBRetireFn is notified after a TB's resources are released, so
	// the GPU can assign a fresh TB. May be nil.
	OnTBRetireFn func(tb *ThreadBlock, cycle int64)

	// Per-cycle issue tokens (reset each Tick): the SFU and MEM units
	// accept one instruction per SM-cycle, shared by the scheduler slots;
	// each slot implicitly owns an SP token by issuing at most once.
	sfuToken bool
	memToken bool

	sfuInflight  int
	memInflight  int
	memBusyUntil int64
	// memOp is the warp memory instruction currently occupying the LD/ST
	// unit's address-generation stage: its coalesced transactions are
	// issued to the memory system at one line per cycle, so uncoalesced
	// accesses hold the unit for many cycles.
	memOp *memOp

	// Stalls is the per-scheduler-slot stall breakdown.
	Stalls []stats.StallBreakdown
	// WarpInstrs / ThreadInstrs count issued work.
	WarpInstrs   int64
	ThreadInstrs int64
	// WarpDisparitySum accumulates each retired TB's warp finish spread;
	// BarrierWaitSum/BarrierEpisodes accumulate barrier first-arrival-to
	// -release waits — the warp-level-divergence measurables.
	WarpDisparitySum int64
	BarrierWaitSum   int64
	BarrierEpisodes  int64

	// icache is the optional per-SM instruction cache (nil when the
	// config disables it): refills that miss pay an extra latency.
	icache *cache.Cache

	orderBuf []*Warp
	lineBuf  []uint64
}

// NewSM builds an SM bound to a launch; factory creates its scheduling
// policy. The launch must already be validated against cfg.
func NewSM(id int, cfg *config.Config, wheel *timing.Wheel, mem *memsys.System, launch *Launch, factory Factory) *SM {
	resident := launch.ResidentTBs(cfg)
	sm := &SM{
		ID:           id,
		Cfg:          cfg,
		Wheel:        wheel,
		Mem:          mem,
		Launch:       launch,
		WarpSlots:    make([]*Warp, resident*launch.WarpsPerTB()),
		TBSlots:      make([]*ThreadBlock, resident),
		PendingTBsFn: func() int { return 0 },
		Stalls:       make([]stats.StallBreakdown, cfg.SchedulersPerSM),
	}
	if cfg.ICacheSize > 0 {
		sm.icache = cache.MustNew(cfg.ICacheSize, cfg.ICacheAssoc, cfg.ICacheLineInstrs*8)
	}
	sm.Sched = factory(sm)
	return sm
}

// CanAccept reports whether a further TB of the launch fits now.
func (sm *SM) CanAccept() bool { return sm.residentTBs < len(sm.TBSlots) }

// ResidentTBCount returns the number of TBs currently resident.
func (sm *SM) ResidentTBCount() int { return sm.residentTBs }

// AssignTB makes TB global resident and returns it. Callers must check
// CanAccept first.
func (sm *SM) AssignTB(global int, cycle int64) *ThreadBlock {
	slot := -1
	for i, tb := range sm.TBSlots {
		if tb == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		panic("engine: AssignTB on a full SM")
	}
	tb := &ThreadBlock{
		Global:     global,
		SMID:       sm.ID,
		Slot:       slot,
		Launch:     sm.Launch,
		StartCycle: cycle,
		LaunchSeq:  sm.launchSeq,
	}
	sm.launchSeq++
	wpt := sm.Launch.WarpsPerTB()
	tb.Warps = make([]*Warp, wpt)
	for i := 0; i < wpt; i++ {
		w := newWarp(sm, tb, i, slot*wpt+i, cycle)
		tb.Warps[i] = w
		sm.WarpSlots[w.Slot] = w
		sm.scheduleFetch(w)
	}
	sm.TBSlots[slot] = tb
	sm.residentTBs++
	sm.Sched.OnTBAssign(tb, cycle)
	return tb
}

// scheduleFetch starts an i-buffer refill for w. With the instruction
// cache enabled, a refill that misses at the warp's current PC pays the
// extra miss latency (and fills the line).
func (sm *SM) scheduleFetch(w *Warp) {
	w.fetchBusy = true
	delay := int64(sm.Cfg.IFetchLatency)
	if delay < 1 {
		delay = 1
	}
	if sm.icache != nil {
		pc := w.PC()
		if pc < 0 {
			pc = 0
		}
		addr := uint64(pc) * 8
		if !sm.icache.Access(addr) {
			sm.icache.Fill(addr)
			delay += int64(sm.Cfg.ICacheMissLatency)
		}
	}
	sm.Wheel.ScheduleAfter(delay, func(int64) {
		if !w.finished {
			w.ibuf = sm.Cfg.IBufferEntries
			w.fetchBusy = false
		}
	})
}

// Done reports whether the SM has no resident TBs.
func (sm *SM) Done() bool { return sm.residentTBs == 0 }

// memOp is one warp memory instruction in the LD/ST unit.
type memOp struct {
	w     *Warp
	dst   isa.Reg
	kind  isa.Op
	lines []uint64 // transactions not yet issued to the memory system
	// outstanding counts issued-but-incomplete load/atomic transactions;
	// pushed reports all transactions issued. The op's warp dependency
	// resolves when pushed && outstanding == 0.
	outstanding int
	pushed      bool
}

// Tick runs one core cycle: the LD/ST unit drains one pending
// transaction, then each scheduler slot picks an order and the engine
// issues at most one instruction per slot, classifying the slot's outcome
// as issued / Idle / Scoreboard / Pipeline.
func (sm *SM) Tick(cycle int64) {
	sm.sfuToken = true
	sm.memToken = true
	sm.drainMemOp(cycle)
	for slot := 0; slot < sm.Cfg.SchedulersPerSM; slot++ {
		sm.tickSlot(slot, cycle)
	}
}

// drainMemOp issues at most one transaction of the in-flight memory
// instruction. The unit frees as soon as all transactions are issued; the
// data return path is tracked by callbacks.
func (sm *SM) drainMemOp(cycle int64) {
	op := sm.memOp
	if op == nil {
		return
	}
	line := op.lines[0]
	switch op.kind {
	case isa.OpStGlobal:
		if !sm.Mem.StoreLine(sm.ID, line) {
			return // store buffer full; retry next cycle
		}
	case isa.OpLdGlobal, isa.OpAtomGlobal:
		done := func(cy int64) {
			op.outstanding--
			sm.memOpLineDone(op, cy)
		}
		var ok bool
		if op.kind == isa.OpLdGlobal {
			ok = sm.Mem.LoadLine(sm.ID, line, done)
		} else {
			ok = sm.Mem.AtomicLine(sm.ID, line, done)
		}
		if !ok {
			return // MSHRs full; retry next cycle
		}
		op.outstanding++
	}
	op.lines = op.lines[1:]
	if len(op.lines) == 0 {
		op.pushed = true
		sm.memOp = nil
		if op.kind == isa.OpStGlobal {
			// Stores are fire-and-forget: the instruction is complete for
			// the warp once all lines entered the store path.
			sm.memInflight--
		} else {
			sm.memOpLineDone(op, cycle)
		}
	}
}

// memOpLineDone resolves a load/atomic op when every transaction has
// been issued and completed.
func (sm *SM) memOpLineDone(op *memOp, cy int64) {
	if !op.pushed || op.outstanding != 0 {
		return
	}
	op.pushed = false // guard against double resolution
	if op.dst != isa.NoReg {
		op.w.regReady[op.dst] = cy
	}
	op.w.outstandingLoads--
	sm.memInflight--
}

func (sm *SM) tickSlot(slot int, cycle int64) {
	if sm.residentTBs == 0 {
		sm.Stalls[slot].Idle++
		return
	}
	order := sm.Sched.Order(slot, sm.orderBuf[:0], cycle)
	sm.orderBuf = order[:0]

	anyValid, anyReady := false, false
	for _, w := range order {
		if w == nil || w.SchedSlot != slot || w.finished {
			continue
		}
		in := w.NextInstr()
		if in == nil {
			continue
		}
		anyValid = true
		if !w.ScoreboardReady(in, cycle) {
			continue
		}
		anyReady = true
		if sm.tryIssue(w, in, cycle) {
			sm.Stalls[slot].Issued++
			return
		}
	}
	switch {
	case anyReady:
		sm.Stalls[slot].Pipeline++
	case anyValid:
		sm.Stalls[slot].Scoreboard++
	default:
		sm.Stalls[slot].Idle++
	}
}

// tryIssue attempts to issue in from w at cycle; it returns false — with
// no state changed — when the required pipeline cannot accept the
// instruction (unit token taken, queue full, MSHR/store-buffer refusal).
func (sm *SM) tryIssue(w *Warp, in *isa.Instr, cycle int64) bool {
	switch in.Op.Unit() {
	case isa.UnitSFU:
		if !sm.sfuToken || sm.sfuInflight >= sm.Cfg.SFUQueueDepth {
			return false
		}
	case isa.UnitMem:
		if !sm.memToken || cycle < sm.memBusyUntil || sm.memOp != nil {
			return false
		}
	}

	pc := w.PC()
	iter := int64(w.visits[pc])
	mask := w.ActiveMask()
	tb := w.TB

	// Global-memory instructions occupy the LD/ST unit's single mem-op
	// register until all their coalesced transactions have been issued.
	switch in.Op {
	case isa.OpLdGlobal, isa.OpAtomGlobal, isa.OpStGlobal:
		if sm.memOp != nil || sm.memInflight >= sm.Cfg.MemQueueDepth {
			return false
		}
		lines := isa.LineAddrs(sm.lineBuf[:0], in.Mem, sm.Launch.Seed,
			tb.Global, w.IDInTB, pc, iter, mask, sm.Launch.BlockThreads, sm.Cfg.L1Line)
		sm.lineBuf = lines[:0]
		op := &memOp{
			w:     w,
			dst:   in.Dst,
			kind:  in.Op,
			lines: append([]uint64(nil), lines...),
		}
		sm.memOp = op
		sm.memInflight++
		if in.Op != isa.OpStGlobal {
			w.outstandingLoads++
			if in.Dst != isa.NoReg {
				w.regReady[in.Dst] = regPendingLoad
			}
		}
		sm.memToken = false
		// Issue the first transaction this cycle so a fully coalesced
		// access holds the unit for exactly one cycle.
		sm.drainMemOp(cycle)

	case isa.OpLdShared, isa.OpStShared:
		passes := isa.BankPasses(in.Mem, sm.Launch.Seed, tb.Global, w.IDInTB, pc, iter, mask, sm.Cfg.SharedBanks)
		lat := int64(sm.Cfg.SharedLatency + (passes-1)*sm.Cfg.SharedConflictPenalty)
		w.setRegLatency(in.Dst, cycle, lat)
		sm.memToken = false
		sm.memBusyUntil = cycle + int64(passes)

	case isa.OpLdConst:
		w.setRegLatency(in.Dst, cycle, int64(sm.Cfg.ConstLatency))
		sm.memToken = false
		sm.memBusyUntil = cycle + 1

	case isa.OpSFU:
		w.setRegLatency(in.Dst, cycle, int64(sm.Cfg.SFULatency))
		sm.sfuInflight++
		sm.Wheel.ScheduleAfter(int64(sm.Cfg.SFULatency), func(int64) { sm.sfuInflight-- })
		sm.sfuToken = false

	default: // SP arithmetic and control
		w.setRegLatency(in.Dst, cycle, int64(sm.Cfg.ALULatency))
	}

	// Committed: account progress exactly as the paper's hardware does —
	// warp and TB progress registers incremented by the active-thread
	// count on every scheduled cycle.
	lanes := bits.OnesCount32(mask)
	w.visits[pc]++
	w.Progress += int64(lanes)
	tb.Progress += int64(lanes)
	w.Issued++
	sm.WarpInstrs++
	sm.ThreadInstrs += int64(lanes)

	w.ibuf--
	if w.ibuf == 0 && !w.finished {
		sm.scheduleFetch(w)
	}

	switch in.Op {
	case isa.OpBra:
		w.execBranch(in, pc, iter)
	case isa.OpBar:
		w.advancePC()
		w.atBar = true
		tb.WarpsAtBarrier++
		if tb.WarpsAtBarrier == 1 {
			tb.barrierStart = cycle
		}
		sm.Sched.OnBarrierArrive(w, cycle)
		if tb.barrierComplete() {
			for _, sib := range tb.Warps {
				sib.atBar = false
			}
			tb.WarpsAtBarrier = 0
			sm.BarrierWaitSum += cycle - tb.barrierStart
			sm.BarrierEpisodes++
			tb.barrierStart = 0
			sm.Sched.OnBarrierRelease(tb, cycle)
		}
	case isa.OpExit:
		w.finished = true
		w.FinishCycle = cycle
		w.stack = w.stack[:0]
		tb.WarpsFinished++
		sm.Sched.OnWarpFinish(w, cycle)
		if tb.Done() {
			sm.retireTB(tb, cycle)
		}
	default:
		w.advancePC()
	}

	sm.Sched.OnIssue(w, in, lanes, cycle)
	return true
}

// retireTB releases a finished TB's resources and notifies the policy and
// the GPU.
func (sm *SM) retireTB(tb *ThreadBlock, cycle int64) {
	tb.EndCycle = cycle
	sm.WarpDisparitySum += tb.WarpDisparity()
	wpt := sm.Launch.WarpsPerTB()
	for i := 0; i < wpt; i++ {
		sm.WarpSlots[tb.Slot*wpt+i] = nil
	}
	sm.TBSlots[tb.Slot] = nil
	sm.residentTBs--
	sm.Sched.OnTBRetire(tb, cycle)
	if sm.OnTBRetireFn != nil {
		sm.OnTBRetireFn(tb, cycle)
	}
}

// StallTotal sums the per-slot breakdowns.
func (sm *SM) StallTotal() stats.StallBreakdown {
	var t stats.StallBreakdown
	for _, s := range sm.Stalls {
		t.Add(s)
	}
	return t
}
