package engine

import (
	"math"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/flight"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/timing"
)

// SM is one streaming multiprocessor executing thread blocks of a single
// kernel launch. It owns the issue logic, the execution-pipeline
// occupancy model and the stall classification; the plugged-in Scheduler
// only decides priority order.
type SM struct {
	ID    int
	Cfg   *config.Config
	Wheel *timing.Wheel
	Mem   *memsys.System
	// Launch is the kernel this SM executes.
	Launch *Launch
	// Sched is the warp-scheduling policy.
	Sched Scheduler

	// WarpSlots holds resident warps; a TB's warps occupy the contiguous
	// range [slot*WarpsPerTB, (slot+1)*WarpsPerTB).
	WarpSlots []*Warp

	// liveBits and validBits pack per-warp-slot state into 64-slot words
	// — the flat, branch-light scan layout of DESIGN.md §8.10 — so the
	// hot scan loops (trySleep, round-robin order rebuilds) test 64
	// warps per word instead of dereferencing every WarpSlots entry.
	// A liveBits bit marks a slot holding a resident, unfinished warp
	// (set by AssignTB, cleared on Exit and TB retirement); a validBits
	// bit mirrors Warp.Valid — equivalently nextIn != nil — and is
	// maintained at the single choke point every Valid transition runs
	// through, refreshNextInstr. slotMasks[k] selects the warp slots
	// owned by scheduler slot k (Slot % SchedulersPerSM).
	liveBits  []uint64
	validBits []uint64
	slotMasks [][]uint64
	// TBSlots holds resident TBs, nil when free. Its length is the
	// launch's per-SM residency limit.
	TBSlots []*ThreadBlock

	residentTBs int
	launchSeq   int

	// PendingTBsFn answers "are TBs still waiting in the Thread Block
	// Scheduler?" — PRO's fastTBPhase test. Wired by the GPU; defaults to
	// zero pending.
	PendingTBsFn func() int
	// OnTBRetireFn is notified after a TB's resources are released, so
	// the GPU can assign a fresh TB. May be nil.
	OnTBRetireFn func(tb *ThreadBlock, cycle int64)

	// Per-cycle issue tokens (reset each Tick): the SFU and MEM units
	// accept one instruction per SM-cycle, shared by the scheduler slots;
	// each slot implicitly owns an SP token by issuing at most once.
	sfuToken bool
	memToken bool

	sfuInflight  int
	memInflight  int
	memBusyUntil int64
	// memOp is the warp memory instruction currently occupying the LD/ST
	// unit's address-generation stage: its coalesced transactions are
	// issued to the memory system at one line per cycle, so uncoalesced
	// accesses hold the unit for many cycles.
	memOp *memOp

	// Stalls is the per-scheduler-slot stall breakdown.
	Stalls []stats.StallBreakdown
	// WarpInstrs / ThreadInstrs count issued work.
	WarpInstrs   int64
	ThreadInstrs int64
	// WarpDisparitySum accumulates each retired TB's warp finish spread;
	// BarrierWaitSum/BarrierEpisodes accumulate barrier first-arrival-to
	// -release waits — the warp-level-divergence measurables.
	WarpDisparitySum int64
	BarrierWaitSum   int64
	BarrierEpisodes  int64

	// icache is the optional per-SM instruction cache (nil when the
	// config disables it): refills that miss pay an extra latency.
	icache *cache.Cache

	orderBuf []*Warp
	lineBuf  []uint64

	// cacher/timed are the policy's optional fast-path extensions (nil
	// when the policy does not implement them). orderCacheOn and
	// cycleSkipOn fold in the Config switches.
	cacher       OrderCacher
	timed        TimedScheduler
	orderCacheOn bool
	cycleSkipOn  bool
	// orderCaches holds one generation-tagged cached order per slot.
	orderCaches []orderCache

	// Sleep state for stall-aware cycle skipping: while asleep, Tick
	// returns immediately until wakeAt (or a wake event zeroes it) and
	// the per-slot stall classes frozen in slotClass are accounted in
	// bulk on wake — see trySleep for why the classification cannot
	// change while asleep.
	asleep bool
	wakeAt int64
	// sleepFrom is the last cycle whose stalls have been accounted.
	sleepFrom int64
	slotClass []slotOutcome

	// memOpFree is the memOp free list (steady-state issue runs
	// allocation-free); sfuDone is the pre-bound SFU-drain callback.
	memOpFree *memOp
	sfuDone   func(int64)

	// tbFree pools retired thread blocks (with their warps) for reuse by
	// AssignTB, so TB-churn-heavy workloads allocate nothing in steady
	// state. Only TBs with no in-flight callbacks are pooled — see
	// poolable. poolOn folds in the Config switch.
	tbFree []*ThreadBlock
	poolOn bool

	// slotGates short-circuit individual scheduler slots (cycle
	// skipping at slot granularity: one slot can be fast-forwarded
	// while its sibling still issues); gateEpoch invalidates them — it
	// is bumped by every event that zeroes a warp's issue gate.
	slotGates []slotGate
	gateEpoch uint64

	// lane, when non-nil, stages this Tick's shared side effects
	// (memory-system transactions and timing-wheel schedules) instead of
	// applying them, so multiple SMs can tick concurrently. Set only for
	// the duration of TickStaged; every other entry point (AssignTB,
	// wheel callbacks, StallTotal) runs on the coordinator goroutine
	// with the lane unset and keeps direct wheel/memsys access.
	lane *memsys.Lane

	// fl, when non-nil, is the flight recorder's per-SM trace. Every
	// hook is behind a single nil check and only reads SM state; under
	// parallel ticking the trace is written exclusively by this SM's
	// goroutine (phase 1) or the coordinator (between phases), never
	// both at once — the same single-writer discipline as the rest of
	// the SM.
	fl *flight.SMTrace
}

// SetFlight attaches (or, with nil, detaches) a flight-recorder trace.
func (sm *SM) SetFlight(t *flight.SMTrace) {
	sm.fl = t
	if t != nil {
		t.Size(len(sm.WarpSlots), sm.Cfg.SchedulersPerSM)
	}
}

// slotGate caches the contiguous gated prefix of a scheduler slot's
// priority order: strictly before cycle until — as long as the policy's
// order generation and the SM's gate epoch are unchanged — the first
// resume entries of the order are known to be gated with aggregate
// Idle/Scoreboard contribution valid, so the scan restarts at resume
// (or, when resume covers the whole order, the slot re-produces its
// outcome without examining any warp at all).
type slotGate struct {
	until  int64 // prefix min gate: resume is valid strictly before this
	gen    uint64
	epoch  uint64
	resume int  // order index to restart from; >= len(order): whole slot gated
	valid  bool // anyValid aggregate of the skipped prefix
	armed  bool
}

// orderCache memoizes one scheduler slot's priority order.
type orderCache struct {
	gen   uint64
	valid bool
	order []*Warp
}

// slotOutcome classifies one scheduler slot's cycle, mirroring the
// stall taxonomy.
type slotOutcome uint8

const (
	outIssued slotOutcome = iota
	outPipeline
	outScoreboard
	outIdle
)

// NewSM builds an SM bound to a launch; factory creates its scheduling
// policy. The launch must already be validated against cfg.
func NewSM(id int, cfg *config.Config, wheel *timing.Wheel, mem *memsys.System, launch *Launch, factory Factory) *SM {
	resident := launch.ResidentTBs(cfg)
	sm := &SM{
		ID:           id,
		Cfg:          cfg,
		Wheel:        wheel,
		Mem:          mem,
		Launch:       launch,
		WarpSlots:    make([]*Warp, resident*launch.WarpsPerTB()),
		TBSlots:      make([]*ThreadBlock, resident),
		PendingTBsFn: func() int { return 0 },
		Stalls:       make([]stats.StallBreakdown, cfg.SchedulersPerSM),
	}
	if cfg.ICacheSize > 0 {
		sm.icache = cache.MustNew(cfg.ICacheSize, cfg.ICacheAssoc, cfg.ICacheLineInstrs*8)
	}
	words := (len(sm.WarpSlots) + 63) / 64
	sm.liveBits = make([]uint64, words)
	sm.validBits = make([]uint64, words)
	sm.slotMasks = make([][]uint64, cfg.SchedulersPerSM)
	for k := range sm.slotMasks {
		sm.slotMasks[k] = make([]uint64, words)
	}
	for i := range sm.WarpSlots {
		sm.slotMasks[i%cfg.SchedulersPerSM][i>>6] |= 1 << uint(i&63)
	}
	sm.orderCaches = make([]orderCache, cfg.SchedulersPerSM)
	sm.slotClass = make([]slotOutcome, cfg.SchedulersPerSM)
	sm.slotGates = make([]slotGate, cfg.SchedulersPerSM)
	sm.sfuDone = func(int64) { sm.sfuInflight-- }
	sm.poolOn = !cfg.DisableWarpPooling
	sm.Sched = factory(sm)
	if oc, ok := sm.Sched.(OrderCacher); ok {
		sm.cacher = oc
		sm.orderCacheOn = !cfg.DisableOrderCache
		sm.cycleSkipOn = !cfg.DisableCycleSkip
	}
	if ts, ok := sm.Sched.(TimedScheduler); ok {
		sm.timed = ts
	}
	return sm
}

// CanAccept reports whether a further TB of the launch fits now.
func (sm *SM) CanAccept() bool { return sm.residentTBs < len(sm.TBSlots) }

// ResidentTBCount returns the number of TBs currently resident.
func (sm *SM) ResidentTBCount() int { return sm.residentTBs }

// AssignTB makes TB global resident and returns it. Callers must check
// CanAccept first.
func (sm *SM) AssignTB(global int, cycle int64) *ThreadBlock {
	slot := -1
	for i, tb := range sm.TBSlots {
		if tb == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		panic("engine: AssignTB on a full SM")
	}
	wpt := sm.Launch.WarpsPerTB()
	var tb *ThreadBlock
	for i, cand := range sm.tbFree {
		// Oldest-first: the longer a TB has been retired, the likelier
		// its warps' trailing callbacks (exit-time loads, last refill)
		// have drained.
		if sm.poolable(cand) {
			tb = cand
			copy(sm.tbFree[i:], sm.tbFree[i+1:])
			sm.tbFree[len(sm.tbFree)-1] = nil
			sm.tbFree = sm.tbFree[:len(sm.tbFree)-1]
			break
		}
	}
	if tb != nil {
		tb.reset(global, slot, cycle, sm.launchSeq)
		for i, w := range tb.Warps {
			w.reset(tb, i, slot*wpt+i, cycle)
			sm.WarpSlots[w.Slot] = w
			sm.setLiveBit(w.Slot)
			sm.scheduleFetch(w)
		}
	} else {
		tb = &ThreadBlock{
			Global:     global,
			SMID:       sm.ID,
			Slot:       slot,
			Launch:     sm.Launch,
			StartCycle: cycle,
			LaunchSeq:  sm.launchSeq,
		}
		tb.Warps = make([]*Warp, wpt)
		for i := 0; i < wpt; i++ {
			w := newWarp(sm, tb, i, slot*wpt+i, cycle)
			tb.Warps[i] = w
			sm.WarpSlots[w.Slot] = w
			sm.setLiveBit(w.Slot)
			sm.scheduleFetch(w)
		}
	}
	sm.launchSeq++
	sm.TBSlots[slot] = tb
	sm.residentTBs++
	sm.Sched.OnTBAssign(tb, cycle)
	if sm.fl != nil {
		sm.fl.OnTBStart(cycle, tb.Global, slot)
	}
	sm.gateEpoch++
	sm.wakeEvent()
	return tb
}

// scheduleFetch starts an i-buffer refill for w. With the instruction
// cache enabled, a refill that misses at the warp's current PC pays the
// extra miss latency (and fills the line).
func (sm *SM) scheduleFetch(w *Warp) {
	w.fetchBusy = true
	delay := int64(sm.Cfg.IFetchLatency)
	if delay < 1 {
		delay = 1
	}
	if sm.icache != nil {
		pc := w.PC()
		if pc < 0 {
			pc = 0
		}
		addr := uint64(pc) * 8
		if !sm.icache.Access(addr) {
			sm.icache.Fill(addr)
			delay += int64(sm.Cfg.ICacheMissLatency)
		}
	}
	sm.schedule(delay, w.fetchDone)
}

// schedule routes a wheel schedule through the staging lane when one is
// active (TickStaged), and straight to the wheel otherwise. Every
// ScheduleAfter reachable from Tick must go through this so concurrent
// ticks never append to shared wheel buckets.
func (sm *SM) schedule(delay int64, fn timing.Event) {
	if sm.lane != nil {
		sm.lane.ScheduleAfter(delay, fn)
		return
	}
	sm.Wheel.ScheduleAfter(delay, fn)
}

// Done reports whether the SM has no resident TBs.
func (sm *SM) Done() bool { return sm.residentTBs == 0 }

// memOp is one warp memory instruction in the LD/ST unit. Ops are
// recycled through the SM's free list so the steady-state issue loop does
// not allocate; buf backs lines (a coalesced warp access touches at most
// one line per lane).
type memOp struct {
	sm    *SM
	next  *memOp // free-list link
	w     *Warp
	dst   isa.Reg
	kind  isa.Op
	lines []uint64 // transactions not yet issued; aliases buf
	buf   [config.WarpSize]uint64
	// outstanding counts issued-but-incomplete load/atomic transactions;
	// pushed reports all transactions issued. The op's warp dependency
	// resolves when pushed && outstanding == 0.
	outstanding int
	pushed      bool
	// doneFn is the per-transaction completion callback, bound once at
	// op allocation and reused across pool cycles.
	doneFn func(int64)
}

// getMemOp takes an op from the free list, allocating on first use.
func (sm *SM) getMemOp() *memOp {
	op := sm.memOpFree
	if op == nil {
		op = &memOp{sm: sm}
		op.doneFn = func(cy int64) {
			op.outstanding--
			op.sm.memOpLineDone(op, cy)
		}
	} else {
		sm.memOpFree = op.next
		op.next = nil
	}
	return op
}

// putMemOp returns a fully-resolved op to the free list. The caller
// guarantees no transaction callbacks remain in flight.
func (sm *SM) putMemOp(op *memOp) {
	op.w = nil
	op.lines = nil
	op.outstanding = 0
	op.pushed = false
	op.next = sm.memOpFree
	sm.memOpFree = op
}

// Tick runs one core cycle: the LD/ST unit drains one pending
// transaction, then each scheduler slot picks an order and the engine
// issues at most one instruction per slot, classifying the slot's outcome
// as issued / Idle / Scoreboard / Pipeline.
//
// When the policy implements OrderCacher and cycle skipping is enabled,
// a Tick on which every slot stalls on frozen state (Idle/Scoreboard,
// no in-flight mem op) puts the SM to sleep: subsequent Ticks return
// immediately and the skipped cycles' stalls are accounted in bulk on
// wake (see trySleep for the invariants).
func (sm *SM) Tick(cycle int64) {
	if sm.asleep {
		if cycle < sm.wakeAt {
			return
		}
		sm.wake(cycle)
	}
	sm.sfuToken = true
	sm.memToken = true
	sm.drainMemOp(cycle)
	canSleep := sm.cycleSkipOn && sm.memOp == nil
	for slot := 0; slot < sm.Cfg.SchedulersPerSM; slot++ {
		out := sm.tickSlot(slot, cycle)
		sm.slotClass[slot] = out
		if sm.fl != nil {
			sm.fl.OnSlotOutcome(cycle, slot, uint8(out))
		}
		if out == outIssued || out == outPipeline {
			canSleep = false
		}
	}
	if canSleep && sm.memOp == nil {
		sm.trySleep(cycle)
	}
}

// TickStaged is Tick with every shared side effect staged into lane
// instead of applied, so SMs can tick concurrently (one goroutine per
// SM at most). It is safe because the tick's decisions read and write
// only this SM's state: memory accept/refuse consults the per-SM L1 /
// MSHR / store-buffer slices via the lane, PendingTBsFn reads a
// coordinator variable that is stable between phases, and the pre-bound
// callbacks that Tick can invoke synchronously (memOp doneFn resolving
// on the final issued line, wakeEvent) touch their own SM only. The
// caller must drain the lanes in SM-ID order afterwards, on one
// goroutine, before anything else observes the wheel or memory system.
func (sm *SM) TickStaged(cycle int64, lane *memsys.Lane) {
	sm.lane = lane
	sm.Tick(cycle)
	sm.lane = nil
}

// neverWake marks a wake-up that only an explicit event can trigger.
const neverWake = int64(math.MaxInt64)

// NeverWake is neverWake for the clock loop's horizon tracking: a
// sleeping SM reporting this wake cycle can only be woken by an
// explicit event (wheel callback or TB assignment).
const NeverWake = neverWake

// trySleep puts the SM to sleep after a cycle on which every slot
// stalled with Idle or Scoreboard and the LD/ST unit is empty. The frozen
// per-slot classification cannot change while asleep, because every state
// transition that could change it either
//
//   - happens at a statically-known cycle — a register becoming ready,
//     captured by readyAt and folded into wakeAt below, or a policy's
//     timed refresh, bounded by TimedScheduler.NextTimedEvent — or
//   - is driven by a wheel/assignment event that calls wakeEvent (load
//     completion, i-buffer refill, TB assignment), which forces a full
//     re-evaluation on the next Tick.
//
// Barrier releases and TB retirements only happen on the SM's own issue
// path, which cannot run while asleep; SFU drain only affects issue
// admission, which is irrelevant while no warp is scoreboard-ready.
func (sm *SM) trySleep(cycle int64) {
	wake := neverWake
	// Only Valid warps (validBits ≡ !finished && !atBar && ibuf > 0 —
	// exactly the warps the old per-slot walk kept) have a time-driven
	// state change; everything else arrives via wakeEvent, not with time.
	for wi, word := range sm.validBits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			w := sm.WarpSlots[wi<<6|b]
			if at := w.readyAt(w.nextIn); at < wake {
				wake = at
			}
		}
	}
	if sm.timed != nil && sm.residentTBs > 0 {
		if nt := sm.timed.NextTimedEvent(cycle); nt > cycle && nt < wake {
			wake = nt
		}
	}
	if wake <= cycle+1 {
		return // nothing to skip
	}
	sm.asleep = true
	sm.wakeAt = wake
	sm.sleepFrom = cycle
}

// setValidBit mirrors w.nextIn != nil into validBits. Called only from
// the warp's refreshNextInstr (and reset), which every Valid-state
// transition funnels through, so the mask can never drift from the
// pointer it mirrors.
func (sm *SM) setValidBit(slot int, ok bool) {
	if ok {
		sm.validBits[slot>>6] |= 1 << uint(slot&63)
	} else {
		sm.validBits[slot>>6] &^= 1 << uint(slot&63)
	}
}

func (sm *SM) setLiveBit(slot int)   { sm.liveBits[slot>>6] |= 1 << uint(slot&63) }
func (sm *SM) clearLiveBit(slot int) { sm.liveBits[slot>>6] &^= 1 << uint(slot&63) }

// ScanLive appends scheduler slot schedSlot's live warps (resident and
// not yet finished) to dst in warp-slot order, starting at warp slot
// start and wrapping — the rotation primitive for round-robin order
// rebuilds. It walks the packed liveBits words, so a rebuild tests 64
// slots per word instead of loading every WarpSlots pointer. Excluding
// finished warps here is invisible to issue behaviour: compactOrder
// drops them from every produced order anyway.
func (sm *SM) ScanLive(schedSlot, start int, dst []*Warp) []*Warp {
	words := sm.liveBits
	mask := sm.slotMasks[schedSlot]
	sw, sb := start>>6, uint(start&63)
	for wi := sw; wi < len(words); wi++ {
		word := words[wi] & mask[wi]
		if wi == sw {
			word &= ^uint64(0) << sb
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			dst = append(dst, sm.WarpSlots[wi<<6|b])
		}
	}
	for wi := 0; wi <= sw && wi < len(words); wi++ {
		word := words[wi] & mask[wi]
		if wi == sw {
			word &= 1<<sb - 1
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			dst = append(dst, sm.WarpSlots[wi<<6|b])
		}
	}
	return dst
}

// wake ends a sleep at cycle, accounting the skipped cycles' stalls;
// cycle itself is then ticked normally by the caller.
func (sm *SM) wake(cycle int64) {
	sm.flushSleep(cycle - 1)
	sm.asleep = false
}

// flushSleep accounts the frozen per-slot stall classes for all skipped
// cycles up to and including through.
func (sm *SM) flushSleep(through int64) {
	if through <= sm.sleepFrom {
		return
	}
	n := through - sm.sleepFrom
	for slot, class := range sm.slotClass {
		if class == outScoreboard {
			sm.Stalls[slot].Scoreboard += n
		} else {
			sm.Stalls[slot].Idle += n
		}
	}
	sm.sleepFrom = through
}

// wakeEvent forces a sleeping SM to re-evaluate on its next Tick. Called
// from every callback that can change a warp's validity or readiness
// outside the SM's own issue path.
func (sm *SM) wakeEvent() {
	if sm.asleep {
		sm.wakeAt = 0
	}
}

// NextEvent reports the SM's contribution to the GPU-wide fast-forward
// horizon, queried after the SM has been ticked at now: the earliest
// future cycle at which the SM could change state on its own clock.
//
//   - Asleep: wakeAt, computed by trySleep from the warps' readyAt and
//     the policy's NextTimedEvent. neverWake means only an explicit
//     event (a wheel callback or an assignment) can wake it — both are
//     covered by the other components' horizons — and the skipped
//     cycles' stall accounting is flushed lazily by StallTotal. This
//     includes drained SMs (no resident TBs), which sleep at neverWake
//     after their first empty Tick.
//   - Awake: the SM ticks — and accounts a stall class — on the very
//     next cycle, so nothing may be skipped. This also covers a
//     just-drained SM that has not had its first empty Tick yet: that
//     Tick must still run to classify the slots Idle and start the
//     sleep, or the stall-accounting invariant would lose cycles.
func (sm *SM) NextEvent(now int64) (cycle int64, ok bool) {
	if sm.asleep {
		if sm.wakeAt <= now+1 {
			return now + 1, true
		}
		if sm.wakeAt == neverWake {
			return 0, false
		}
		return sm.wakeAt, true
	}
	return now + 1, true
}

// SleepState exposes the raw sleep fields for the clock loop's
// incremental horizon tracking (the wake-heap mirror): asleep=false
// means the SM must tick on the very next cycle; asleep=true with
// wake==NeverWake means only an explicit event can wake it. Query it
// after the SM's Tick for the current cycle, like NextEvent.
func (sm *SM) SleepState() (asleep bool, wake int64) {
	return sm.asleep, sm.wakeAt
}

// drainMemOp issues at most one transaction of the in-flight memory
// instruction. The unit frees as soon as all transactions are issued; the
// data return path is tracked by callbacks.
func (sm *SM) drainMemOp(cycle int64) {
	op := sm.memOp
	if op == nil {
		return
	}
	line := op.lines[0]
	switch op.kind {
	case isa.OpStGlobal:
		if !sm.storeLine(line) {
			return // store buffer full; retry next cycle
		}
	case isa.OpLdGlobal, isa.OpAtomGlobal:
		var ok bool
		if op.kind == isa.OpLdGlobal {
			ok = sm.loadLine(line, op.doneFn)
		} else {
			ok = sm.atomicLine(line, op.doneFn)
		}
		if !ok {
			return // MSHRs full; retry next cycle
		}
		op.outstanding++
	}
	op.lines = op.lines[1:]
	if len(op.lines) == 0 {
		op.pushed = true
		sm.memOp = nil
		if op.kind == isa.OpStGlobal {
			// Stores are fire-and-forget: the instruction is complete for
			// the warp once all lines entered the store path.
			sm.memInflight--
			sm.putMemOp(op)
		} else {
			sm.memOpLineDone(op, cycle)
		}
	}
}

// storeLine / loadLine / atomicLine route one memory transaction
// through the staging lane when one is active, and straight to the
// memory system otherwise. The accept/refuse answer is identical either
// way (same decision core in memsys); only the shared side effects are
// deferred.
func (sm *SM) storeLine(line uint64) bool {
	if sm.lane != nil {
		return sm.lane.StoreLine(line)
	}
	return sm.Mem.StoreLine(sm.ID, line)
}

func (sm *SM) loadLine(line uint64, done func(int64)) bool {
	if sm.lane != nil {
		return sm.lane.LoadLine(line, done)
	}
	return sm.Mem.LoadLine(sm.ID, line, done)
}

func (sm *SM) atomicLine(line uint64, done func(int64)) bool {
	if sm.lane != nil {
		return sm.lane.AtomicLine(line, done)
	}
	return sm.Mem.AtomicLine(sm.ID, line, done)
}

// memOpLineDone resolves a load/atomic op when every transaction has
// been issued and completed.
func (sm *SM) memOpLineDone(op *memOp, cy int64) {
	if !op.pushed || op.outstanding != 0 {
		return
	}
	op.pushed = false // guard against double resolution
	if op.dst != isa.NoReg {
		op.w.regReady[op.dst] = cy
	}
	op.w.gate = 0
	sm.gateEpoch++
	op.w.outstandingLoads--
	sm.memInflight--
	sm.wakeEvent()
	sm.putMemOp(op)
}

func (sm *SM) tickSlot(slot int, cycle int64) slotOutcome {
	if sm.residentTBs == 0 {
		sm.Stalls[slot].Idle++
		return outIdle
	}
	var order []*Warp
	var gen uint64
	skipOn := sm.cycleSkipOn
	startIdx := 0
	anyValid := false
	minGate := neverWake
	if sm.cacher != nil {
		// OrderGen runs unconditionally — time-driven refreshes (PRO's
		// THRESHOLD re-sort) live inside it — and its generation decides
		// whether the cached order is still current.
		gen = sm.cacher.OrderGen(slot, cycle)
		if skipOn {
			// Slot fast-forward: the last scan recorded its contiguous
			// gated prefix. If nothing since could have changed it —
			// same order generation, no gate-zeroing event, earliest
			// prefix gate still in the future — the scan resumes past
			// the prefix with its aggregate contribution; when the
			// prefix covers the whole order, the slot repeats its
			// outcome without touching a single warp. Stale armed
			// records can never validate spuriously: gen and epoch
			// only grow, and a scan only runs once this check fails.
			sg := &sm.slotGates[slot]
			if sg.armed && sg.gen == gen && sg.epoch == sm.gateEpoch && cycle < sg.until {
				startIdx = sg.resume
				anyValid = sg.valid
				minGate = sg.until
			}
		}
		oc := &sm.orderCaches[slot]
		if sm.orderCacheOn && oc.valid && oc.gen == gen {
			order = oc.order
		} else {
			oc.order = compactOrder(sm.Sched.Order(slot, oc.order[:0], cycle), slot)
			oc.gen = gen
			oc.valid = true
			order = oc.order
			if sm.fl != nil {
				// A generation bump on a cacher policy is a real
				// re-sort (PRO's THRESHOLD cadence, barrier/retire
				// invalidations); non-cachers rebuild every cycle, so
				// only this path is a meaningful event.
				sm.fl.OnResort(cycle, slot, gen)
			}
		}
	} else {
		order = compactOrder(sm.Sched.Order(slot, sm.orderBuf[:0], cycle), slot)
		sm.orderBuf = order[:0]
	}

	if startIdx >= len(order) && startIdx > 0 {
		// Whole slot gated: every warp is blocked exactly as last
		// classified.
		if anyValid {
			sm.Stalls[slot].Scoreboard++
			return outScoreboard
		}
		sm.Stalls[slot].Idle++
		return outIdle
	}

	// contig tracks whether every entry examined so far (including the
	// resumed prefix) is gated strictly beyond cycle; the snapshot taken
	// when it breaks — at the first scoreboard-ready warp — becomes the
	// next cycle's resume point.
	// epochStart snapshots the gate epoch before any issue this scan
	// can perform: a tryIssue side effect that zeroes gates (a barrier
	// release freeing warps already scanned into the prefix) bumps the
	// live epoch, so a record armed with the snapshot self-invalidates.
	epochStart := sm.gateEpoch
	anyReady := false
	contig := true
	resumeIdx := 0
	var pValid bool
	pMin := neverWake
	for idx := startIdx; idx < len(order); idx++ {
		w := order[idx]
		if w.finished {
			// Finished after the order was built; compactOrder drops it
			// at the next rebuild.
			continue
		}
		if skipOn && cycle < w.gate {
			// Still blocked as classified when the gate was set.
			anyValid = anyValid || w.gateInstr
			if w.gate < minGate {
				minGate = w.gate
			}
			continue
		}
		in := w.NextInstr()
		if in == nil {
			// At a barrier or awaiting an i-buffer refill: both end via
			// events that zero the gate (barrier release on the SM's
			// own issue path, the warp's fetchDone callback).
			w.gate, w.gateInstr = neverWake, false
			continue
		}
		if !(skipOn && w.scoreboardOK) && !w.ScoreboardReady(in, cycle) {
			// Blocked until the registers are ready (readyAt > cycle
			// whenever the scoreboard blocks); a pending load gates at
			// neverWake and its resolution zeroes the gate.
			anyValid = true
			w.gate, w.gateInstr = w.readyAt(in), true
			if sm.fl != nil {
				sm.fl.OnWarpStall(cycle, w.Slot, w.TB.Global, w.gate)
			}
			if w.gate < minGate {
				minGate = w.gate
			}
			continue
		}
		// Scoreboard-ready: the gated prefix ends here — this warp must
		// be re-examined next cycle whether it issues or stays
		// pipeline-blocked. The sentinel makes that re-examination a
		// single flag load (see Warp.scoreboardOK for why readiness is
		// sticky until the warp issues).
		w.scoreboardOK = true
		if contig {
			contig = false
			resumeIdx, pValid, pMin = idx, anyValid, minGate
		}
		anyValid = true
		anyReady = true
		if sm.tryIssue(w, in, cycle) {
			// Arming is worthwhile only when there is a gated prefix to
			// skip (resumeIdx > 0). With no prefix the record would be a
			// no-op, and leaving the previous record in place is safe:
			// its gen/epoch stamps are from an earlier scan, and both
			// counters only grow, so it can only validate while the
			// order and every recorded gate are provably unchanged.
			if skipOn && sm.cacher != nil && resumeIdx > 0 {
				sm.slotGates[slot] = slotGate{until: pMin, gen: gen, epoch: epochStart, resume: resumeIdx, valid: pValid, armed: true}
			}
			sm.Stalls[slot].Issued++
			return outIssued
		}
	}
	switch {
	case anyReady:
		if skipOn && sm.cacher != nil && resumeIdx > 0 {
			// A pipeline-blocked slot re-arms the same record every
			// cycle (no issue, so gen, gates and the prefix are all
			// unchanged); comparing first keeps the cache line clean on
			// those long runs instead of rewriting it.
			sg := &sm.slotGates[slot]
			if !(sg.armed && sg.gen == gen && sg.epoch == epochStart && sg.resume == resumeIdx && sg.until == pMin && sg.valid == pValid) {
				*sg = slotGate{until: pMin, gen: gen, epoch: epochStart, resume: resumeIdx, valid: pValid, armed: true}
			}
		}
		sm.Stalls[slot].Pipeline++
		return outPipeline
	case anyValid:
		// Every warp is gated strictly beyond cycle, so the outcome is
		// frozen until minGate, barring gen/epoch invalidation.
		if skipOn && sm.cacher != nil {
			sm.slotGates[slot] = slotGate{until: minGate, gen: gen, epoch: epochStart, resume: len(order), valid: true, armed: true}
		}
		sm.Stalls[slot].Scoreboard++
		return outScoreboard
	default:
		if skipOn && sm.cacher != nil {
			sm.slotGates[slot] = slotGate{until: minGate, gen: gen, epoch: epochStart, resume: len(order), valid: false, armed: true}
		}
		sm.Stalls[slot].Idle++
		return outIdle
	}
}

// compactOrder drops, in place, the entries slot's issue scan would skip
// unconditionally — nil slots, the other scheduler's warps, finished
// warps. Policies return SM-wide orders, so without this every per-cycle
// walk re-skips half the entries. Dropping at rebuild time is safe
// because none of the three conditions can reverse for a warp object
// while a cached order lives: slots never un-nil, SchedSlot is fixed at
// assignment, and a finished warp only comes back through AssignTB's
// pool reuse, which invalidates every cached order via the policy's
// generation bump.
func compactOrder(order []*Warp, slot int) []*Warp {
	out := order[:0]
	for _, w := range order {
		if w == nil || w.SchedSlot != slot || w.finished {
			continue
		}
		out = append(out, w)
	}
	return out
}

// tryIssue attempts to issue in from w at cycle; it returns false — with
// no state changed — when the required pipeline cannot accept the
// instruction (unit token taken, queue full, MSHR/store-buffer refusal).
func (sm *SM) tryIssue(w *Warp, in *isa.Instr, cycle int64) bool {
	switch in.Op.Unit() {
	case isa.UnitSFU:
		if !sm.sfuToken || sm.sfuInflight >= sm.Cfg.SFUQueueDepth {
			return false
		}
	case isa.UnitMem:
		if !sm.memToken || cycle < sm.memBusyUntil || sm.memOp != nil {
			return false
		}
	}

	// The snapshot fields are coherent with in (== w.nextIn): see
	// Warp.nextPC.
	pc := int(w.nextPC)
	iter := int64(w.nextIter)
	mask := w.nextMask
	tb := w.TB

	// Global-memory instructions occupy the LD/ST unit's single mem-op
	// register until all their coalesced transactions have been issued.
	switch in.Op {
	case isa.OpLdGlobal, isa.OpAtomGlobal, isa.OpStGlobal:
		if sm.memOp != nil || sm.memInflight >= sm.Cfg.MemQueueDepth {
			return false
		}
		lines := isa.LineAddrs(sm.lineBuf[:0], in.Mem, sm.Launch.Seed,
			tb.Global, w.IDInTB, pc, iter, mask, sm.Launch.BlockThreads, sm.Cfg.L1Line)
		sm.lineBuf = lines[:0]
		op := sm.getMemOp()
		op.w = w
		op.dst = in.Dst
		op.kind = in.Op
		op.lines = op.buf[:copy(op.buf[:], lines)]
		sm.memOp = op
		sm.memInflight++
		if in.Op != isa.OpStGlobal {
			w.outstandingLoads++
			if in.Dst != isa.NoReg {
				w.regReady[in.Dst] = regPendingLoad
			}
		}
		sm.memToken = false
		// Issue the first transaction this cycle so a fully coalesced
		// access holds the unit for exactly one cycle.
		sm.drainMemOp(cycle)

	case isa.OpLdShared, isa.OpStShared:
		passes := isa.BankPasses(in.Mem, sm.Launch.Seed, tb.Global, w.IDInTB, pc, iter, mask, sm.Cfg.SharedBanks)
		lat := int64(sm.Cfg.SharedLatency + (passes-1)*sm.Cfg.SharedConflictPenalty)
		w.setRegLatency(in.Dst, cycle, lat)
		sm.memToken = false
		sm.memBusyUntil = cycle + int64(passes)

	case isa.OpLdConst:
		w.setRegLatency(in.Dst, cycle, int64(sm.Cfg.ConstLatency))
		sm.memToken = false
		sm.memBusyUntil = cycle + 1

	case isa.OpSFU:
		w.setRegLatency(in.Dst, cycle, int64(sm.Cfg.SFULatency))
		sm.sfuInflight++
		sm.schedule(int64(sm.Cfg.SFULatency), sm.sfuDone)
		sm.sfuToken = false

	default: // SP arithmetic and control
		w.setRegLatency(in.Dst, cycle, int64(sm.Cfg.ALULatency))
	}

	// Committed: account progress exactly as the paper's hardware does —
	// warp and TB progress registers incremented by the active-thread
	// count on every scheduled cycle.
	lanes := bits.OnesCount32(mask)
	w.visits[pc]++
	w.Progress += int64(lanes)
	tb.Progress += int64(lanes)
	w.Issued++
	sm.WarpInstrs++
	sm.ThreadInstrs += int64(lanes)
	if sm.fl != nil {
		sm.fl.OnIssue(cycle, w.SchedSlot, w.Slot, tb.Global, w.Progress, int64(pc))
	}

	w.ibuf--
	if w.ibuf == 0 && !w.finished {
		sm.scheduleFetch(w)
	}

	switch in.Op {
	case isa.OpBra:
		w.execBranch(in, pc, iter)
	case isa.OpBar:
		w.advancePC()
		w.atBar = true
		tb.WarpsAtBarrier++
		if tb.WarpsAtBarrier == 1 {
			tb.barrierStart = cycle
		}
		sm.Sched.OnBarrierArrive(w, cycle)
		if sm.fl != nil {
			sm.fl.OnBarrier(cycle, w.Slot, tb.Global)
		}
		if tb.barrierComplete() {
			for _, sib := range tb.Warps {
				sib.atBar = false
				sib.gate = 0
				sib.refreshNextInstr()
			}
			sm.gateEpoch++
			tb.WarpsAtBarrier = 0
			sm.BarrierWaitSum += cycle - tb.barrierStart
			sm.BarrierEpisodes++
			tb.barrierStart = 0
			sm.Sched.OnBarrierRelease(tb, cycle)
		}
	case isa.OpExit:
		w.finished = true
		sm.clearLiveBit(w.Slot)
		w.FinishCycle = cycle
		w.stack = w.stack[:0]
		tb.WarpsFinished++
		sm.Sched.OnWarpFinish(w, cycle)
		if sm.fl != nil {
			sm.fl.OnWarpFinish(cycle, w.Slot, tb.Global, w.Progress, w.SpawnCycle)
		}
		if tb.Done() {
			sm.retireTB(tb, cycle)
		}
	default:
		w.advancePC()
	}
	w.refreshNextInstr()

	sm.Sched.OnIssue(w, in, lanes, cycle)
	return true
}

// retireTB releases a finished TB's resources and notifies the policy and
// the GPU.
func (sm *SM) retireTB(tb *ThreadBlock, cycle int64) {
	tb.EndCycle = cycle
	sm.WarpDisparitySum += tb.WarpDisparity()
	wpt := sm.Launch.WarpsPerTB()
	for i := 0; i < wpt; i++ {
		// Every warp already finished (cleared its live and valid bits
		// on Exit via clearLiveBit / refreshNextInstr); clear anyway so
		// the masks can never outlive the slot pointers.
		sm.WarpSlots[tb.Slot*wpt+i] = nil
		sm.clearLiveBit(tb.Slot*wpt + i)
		sm.setValidBit(tb.Slot*wpt+i, false)
	}
	sm.TBSlots[tb.Slot] = nil
	sm.residentTBs--
	sm.Sched.OnTBRetire(tb, cycle)
	if sm.fl != nil {
		sm.fl.OnTBFinish(cycle, tb.Global, tb.Progress)
	}
	if sm.OnTBRetireFn != nil {
		sm.OnTBRetireFn(tb, cycle)
	}
	if sm.poolOn {
		sm.tbFree = append(sm.tbFree, tb)
	}
}

// poolable reports whether tb's warps can be recycled right now. A warp
// can exit with a load or atomic still in flight (Exit does not read the
// load's destination register), or with a final useless i-buffer refill
// pending (scheduled in the same issue that set finished); both
// callbacks still reference the warp and would corrupt a reused one, so
// such TBs stay in the pool until the callbacks drain — AssignTB
// re-checks at reuse time. The callbacks themselves are harmless against
// a pool-resident warp (they fired against retired warps before pooling
// existed, too).
func (sm *SM) poolable(tb *ThreadBlock) bool {
	for _, w := range tb.Warps {
		if w.outstandingLoads != 0 || w.fetchBusy {
			return false
		}
	}
	return true
}

// StallTotal sums the per-slot breakdowns, first accounting any cycles
// skipped by an in-progress sleep up to the wheel's current cycle (the
// GPU samples mid-run and reads the final totals through this method).
func (sm *SM) StallTotal() stats.StallBreakdown {
	if sm.asleep {
		sm.flushSleep(sm.Wheel.Now())
	}
	var t stats.StallBreakdown
	for _, s := range sm.Stalls {
		t.Add(s)
	}
	return t
}
