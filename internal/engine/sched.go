package engine

import "repro/internal/isa"

// Scheduler is a warp-scheduling policy for one SM. One Scheduler
// instance serves all of the SM's hardware scheduler slots (Fermi has
// two), which lets policies with SM-wide state — PRO's thread-block
// priorities — present a coherent view to both slots.
//
// The engine invokes Order once per slot per cycle — or, for policies
// implementing OrderCacher, only when the slot's order generation
// changes — and walks the returned warps in order, issuing the first one
// that is valid, scoreboard-ready and has a free pipeline. A warp is owned by slot w.SchedSlot. Warps
// omitted from Order cannot issue that cycle; a policy that filters (TL
// only exposes its active set) must guarantee every live warp is
// eventually exposed, or the SM deadlocks. The engine performs all
// readiness checks itself, so Order is free to return blocked warps in
// any position.
//
// Event hooks fire exactly once per event, after the engine has updated
// the warp/TB state the hook describes. Policies that ignore an event
// simply provide an empty method (see BasePolicy).
type Scheduler interface {
	// Name identifies the policy in results.
	Name() string

	// Order appends slot's warps to dst in decreasing priority and
	// returns the extended slice. dst is a reusable scratch buffer owned
	// by the engine.
	Order(slot int, dst []*Warp, cycle int64) []*Warp

	// OnTBAssign fires when a TB becomes resident.
	OnTBAssign(tb *ThreadBlock, cycle int64)
	// OnTBRetire fires when a TB's last warp finished and its resources
	// were released.
	OnTBRetire(tb *ThreadBlock, cycle int64)
	// OnIssue fires after a warp issues in (active lanes active).
	OnIssue(w *Warp, in *isa.Instr, lanes int, cycle int64)
	// OnBarrierArrive fires when a warp blocks at a barrier (the TB's
	// WarpsAtBarrier already includes it).
	OnBarrierArrive(w *Warp, cycle int64)
	// OnBarrierRelease fires when the TB's last warp arrived and all its
	// warps were unblocked (WarpsAtBarrier already reset to 0).
	OnBarrierRelease(tb *ThreadBlock, cycle int64)
	// OnWarpFinish fires when a warp exits (the TB's WarpsFinished
	// already includes it). It does not fire again at TB retirement.
	OnWarpFinish(w *Warp, cycle int64)
}

// Factory builds a Scheduler bound to an SM. It runs during SM
// construction, before any TB is assigned.
type Factory func(sm *SM) Scheduler

// OrderCacher is an optional Scheduler extension that makes the per-slot
// order cacheable. Implementing it is a promise that Order is a pure
// function of policy state: the sequence of warps Order returns for a
// slot changes only when that slot's generation counter changes, and all
// state mutation happens in the event hooks or inside OrderGen itself.
//
// The engine calls OrderGen once per slot per cycle (whenever the SM has
// resident TBs), *before* consulting its cached order, and rebuilds the
// order via Order only when the returned generation differs from the
// cached one. Policies with time-driven behaviour (PRO's THRESHOLD
// re-sort) perform it inside OrderGen, so the refresh keeps firing even
// on cycles where the cache hits.
//
// Implementing OrderCacher also declares the policy safe for stall-aware
// cycle skipping: the engine may stop ticking a fully-stalled SM (no
// OrderGen/Order calls at all) until the next wake-up event. A policy
// whose timed behaviour must fire at specific cycles must additionally
// implement TimedScheduler so those cycles bound the skip.
type OrderCacher interface {
	// OrderGen returns slot's current order generation at cycle.
	OrderGen(slot int, cycle int64) uint64
}

// TimedScheduler is an optional extension for policies whose OrderGen
// refresh has time-driven effects (re-sorts on a cycle threshold,
// profiling epochs). NextTimedEvent returns the earliest future cycle at
// which such an effect fires; the engine wakes a sleeping SM no later
// than that cycle so the effect happens exactly when it would have under
// naive per-cycle ticking. Values at or before cycle are ignored.
type TimedScheduler interface {
	NextTimedEvent(cycle int64) int64
}

// BasePolicy provides no-op hook implementations so policies only
// override what they observe.
type BasePolicy struct{}

// OnTBAssign implements Scheduler.
func (BasePolicy) OnTBAssign(*ThreadBlock, int64) {}

// OnTBRetire implements Scheduler.
func (BasePolicy) OnTBRetire(*ThreadBlock, int64) {}

// OnIssue implements Scheduler.
func (BasePolicy) OnIssue(*Warp, *isa.Instr, int, int64) {}

// OnBarrierArrive implements Scheduler.
func (BasePolicy) OnBarrierArrive(*Warp, int64) {}

// OnBarrierRelease implements Scheduler.
func (BasePolicy) OnBarrierRelease(*ThreadBlock, int64) {}

// OnWarpFinish implements Scheduler.
func (BasePolicy) OnWarpFinish(*Warp, int64) {}
