package schedreg

import (
	"testing"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/timing"
)

// newSM builds a small real SM so every factory can be exercised.
func newSM(t *testing.T, factory engine.Factory) *engine.SM {
	t.Helper()
	b := isa.NewBuilder("schedreg-test")
	b.IAdd(1, 0, 0)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.GTX480()
	wheel := timing.NewWheel()
	mem := memsys.New(cfg, wheel)
	launch := &engine.Launch{Program: prog, GridTBs: 4, BlockThreads: 64, Seed: 1}
	if err := launch.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	return engine.NewSM(0, cfg, wheel, mem, launch, factory)
}

func TestAllNamesConstruct(t *testing.T) {
	for _, name := range All() {
		f, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		sm := newSM(t, f)
		if sm.Sched == nil {
			t.Fatalf("factory %q produced nil scheduler", name)
		}
		if sm.Sched.Name() == "" {
			t.Fatalf("policy %q has an empty name", name)
		}
	}
}

func TestNamesAreRegistered(t *testing.T) {
	if len(Names()) != 4 {
		t.Fatalf("Names() = %v, want the paper's four", Names())
	}
	for _, name := range Names() {
		if _, err := New(name); err != nil {
			t.Fatalf("comparison-order name %q not registered: %v", name, err)
		}
	}
}

func TestUnknownName(t *testing.T) {
	if _, err := New("BOGUS"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestResolveSpecs(t *testing.T) {
	good := []string{
		"PRO",
		"GTO",
		"PRO+threshold=500",
		"PRO+threshold=default",
		"PRO+ordertrace+threshold=default",
		"PRO+ordertrace+threshold=250",
		"PRO-nobar+threshold=1000",
		"PRO-norm+ordertrace",
	}
	for _, spec := range good {
		f, err := Resolve(spec)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", spec, err)
		}
		sm := newSM(t, f)
		if sm.Sched == nil {
			t.Fatalf("Resolve(%q) produced nil scheduler", spec)
		}
	}
	bad := []string{
		"",
		"BOGUS",
		"BOGUS+threshold=500",
		"GTO+threshold=500", // only the PRO family takes options
		"PRO+threshold=0",   // threshold must be positive
		"PRO+threshold=-5",
		"PRO+threshold=abc",
		"PRO+turbo",               // unknown option
		"PRO-adaptive+ordertrace", // adaptive takes no options
	}
	for _, spec := range bad {
		if _, err := Resolve(spec); err == nil {
			t.Fatalf("Resolve(%q) accepted", spec)
		}
	}
}
