// Package schedreg is the registry of named warp-scheduling policies.
// It maps the names used throughout the evaluation harness (TL, LRR,
// GTO, PRO and the PRO ablations) to engine.Factory constructors, so
// that both the public prosim facade and the internal job engine can
// resolve policies without depending on each other.
//
// A policy *name* is also a stable identity: the result cache keys
// simulations by it, so a name must always construct the same policy
// with the same parameters. Parameterized factories (e.g. PRO with a
// non-default threshold) are not named here; callers pass an explicit
// factory plus their own cache discriminator instead.
package schedreg

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
)

// Names lists the four policies of the paper's comparison in its
// comparison order (Fig. 4, Table III).
func Names() []string { return []string{"TL", "LRR", "GTO", "PRO"} }

// All lists every registered policy name, the paper's four first.
func All() []string {
	return []string{"TL", "LRR", "GTO", "PRO",
		"PRO-nobar", "PRO-adaptive", "PRO-norm", "CAWS-lite", "OWL-lite"}
}

// New returns the factory for a named policy. Recognized names: LRR,
// GTO, TL, PRO, PRO-nobar (the barrier-handling ablation of Sec. IV),
// PRO-adaptive (the paper's future-work online profiler that toggles
// barrier handling per SM), PRO-norm (the Sec. III-A normalized-progress
// variant), CAWS-lite and OWL-lite (related-work baselines).
func New(name string) (engine.Factory, error) {
	switch name {
	case "LRR":
		return sched.NewLRR, nil
	case "GTO":
		return sched.NewGTO, nil
	case "TL":
		return sched.NewTL, nil
	case "PRO":
		return core.New(), nil
	case "PRO-nobar":
		return core.New(core.WithoutBarrierHandling()), nil
	case "PRO-adaptive":
		return core.New(core.WithAdaptiveBarrierHandling(0, 0)), nil
	case "PRO-norm":
		return core.New(core.WithNormalizedProgress()), nil
	case "CAWS-lite":
		return sched.NewCAWSLite, nil
	case "OWL-lite":
		return sched.NewOWLLite, nil
	default:
		return nil, fmt.Errorf("schedreg: unknown scheduler %q", name)
	}
}
