// Package schedreg is the registry of named warp-scheduling policies.
// It maps the names used throughout the evaluation harness (TL, LRR,
// GTO, PRO and the PRO ablations) to engine.Factory constructors, so
// that both the public prosim facade and the internal job engine can
// resolve policies without depending on each other.
//
// A policy *name* is also a stable identity: the result cache keys
// simulations by it, so a name must always construct the same policy
// with the same parameters. Parameterized factories (e.g. PRO with a
// non-default threshold) are not named here; callers pass an explicit
// factory plus their own cache discriminator instead.
package schedreg

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
)

// Names lists the four policies of the paper's comparison in its
// comparison order (Fig. 4, Table III).
func Names() []string { return []string{"TL", "LRR", "GTO", "PRO"} }

// All lists every registered policy name, the paper's four first.
func All() []string {
	return []string{"TL", "LRR", "GTO", "PRO",
		"PRO-nobar", "PRO-adaptive", "PRO-norm", "CAWS-lite", "OWL-lite"}
}

// New returns the factory for a named policy. Recognized names: LRR,
// GTO, TL, PRO, PRO-nobar (the barrier-handling ablation of Sec. IV),
// PRO-adaptive (the paper's future-work online profiler that toggles
// barrier handling per SM), PRO-norm (the Sec. III-A normalized-progress
// variant), CAWS-lite and OWL-lite (related-work baselines).
func New(name string) (engine.Factory, error) {
	switch name {
	case "LRR":
		return sched.NewLRR, nil
	case "GTO":
		return sched.NewGTO, nil
	case "TL":
		return sched.NewTL, nil
	case "PRO":
		return core.New(), nil
	case "PRO-nobar":
		return core.New(core.WithoutBarrierHandling()), nil
	case "PRO-adaptive":
		return core.New(core.WithAdaptiveBarrierHandling(0, 0)), nil
	case "PRO-norm":
		return core.New(core.WithNormalizedProgress()), nil
	case "CAWS-lite":
		return sched.NewCAWSLite, nil
	case "OWL-lite":
		return sched.NewOWLLite, nil
	default:
		return nil, fmt.Errorf("schedreg: unknown scheduler %q", name)
	}
}

// Resolve turns a scheduler *spec* into a factory. A spec is either a
// registered policy name ("PRO", "GTO", ...) or a parameterized
// PRO-family form: the base name followed by "+"-separated options,
// matching the FactoryKey strings the harnesses already use as cache
// identities — e.g. "PRO+threshold=500" (cmd/sweep's threshold sweep)
// or "PRO+ordertrace+threshold=default" (the Table IV trace).
//
// Recognized options: "threshold=<cycles|default>" sets the re-sort
// interval; "ordertrace" records Table IV order samples on SM 0. Only
// PRO, PRO-nobar and PRO-norm accept options.
//
// Resolve is what lets a job cross a process boundary: a wire job names
// its policy by spec, the daemon resolves the spec to a factory, and
// because the spec doubles as the FactoryKey, the daemon-side cache key
// is byte-identical to the one a local run would compute.
func Resolve(spec string) (engine.Factory, error) {
	parts := strings.Split(spec, "+")
	if len(parts) == 1 {
		return New(spec)
	}
	var opts []core.Option
	switch parts[0] {
	case "PRO":
	case "PRO-nobar":
		opts = append(opts, core.WithoutBarrierHandling())
	case "PRO-norm":
		opts = append(opts, core.WithNormalizedProgress())
	default:
		return nil, fmt.Errorf("schedreg: scheduler %q does not accept %q options", parts[0], spec)
	}
	for _, tok := range parts[1:] {
		switch {
		case tok == "ordertrace":
			opts = append(opts, core.WithOrderTrace())
		case strings.HasPrefix(tok, "threshold="):
			v := strings.TrimPrefix(tok, "threshold=")
			if v == "default" {
				continue
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("schedreg: bad threshold in spec %q", spec)
			}
			opts = append(opts, core.WithThreshold(n))
		default:
			return nil, fmt.Errorf("schedreg: unknown option %q in spec %q", tok, spec)
		}
	}
	return core.New(opts...), nil
}
