package cache

import (
	"testing"
	"testing/quick"
)

func line(i int) uint64 { return uint64(i) * 128 }

func TestMissThenFillThenHit(t *testing.T) {
	c := MustNew(16*1024, 4, 128)
	if c.Access(line(1)) {
		t.Fatal("cold cache reported a hit")
	}
	c.Fill(line(1))
	if !c.Access(line(1)) {
		t.Fatal("filled line missed")
	}
	if c.Accesses != 2 || c.Misses != 1 {
		t.Fatalf("counters = (%d acc, %d miss), want (2, 1)", c.Accesses, c.Misses)
	}
}

func TestProbeDoesNotCount(t *testing.T) {
	c := MustNew(16*1024, 4, 128)
	c.Fill(line(3))
	if !c.Probe(line(3)) || c.Probe(line(4)) {
		t.Fatal("Probe gave wrong presence")
	}
	if c.Accesses != 0 {
		t.Fatal("Probe counted as an access")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 2-way, 1 set: size = 2*128.
	c := MustNew(256, 2, 128)
	if c.Sets() != 1 {
		t.Fatalf("expected 1 set, got %d", c.Sets())
	}
	c.Fill(line(0))
	c.Fill(line(1))
	c.Access(line(0)) // 0 becomes MRU
	c.Fill(line(2))   // must evict 1 (LRU)
	if !c.Probe(line(0)) {
		t.Fatal("MRU line 0 was evicted")
	}
	if c.Probe(line(1)) {
		t.Fatal("LRU line 1 survived eviction")
	}
	if !c.Probe(line(2)) {
		t.Fatal("newly filled line 2 absent")
	}
}

func TestConflictMissesWithinOneSet(t *testing.T) {
	// 4-way cache: 5 lines mapping to the same set cannot all reside.
	c := MustNew(16*1024, 4, 128)
	sets := c.Sets()
	for i := 0; i < 5; i++ {
		c.Fill(uint64(i*sets) * 128) // same set index, different tags
	}
	resident := 0
	for i := 0; i < 5; i++ {
		if c.Probe(uint64(i*sets) * 128) {
			resident++
		}
	}
	if resident != 4 {
		t.Fatalf("%d lines resident in a 4-way set, want 4", resident)
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(16*1024, 4, 128)
	c.Fill(line(9))
	if !c.Invalidate(line(9)) {
		t.Fatal("Invalidate missed a present line")
	}
	if c.Probe(line(9)) {
		t.Fatal("line present after Invalidate")
	}
	if c.Invalidate(line(9)) {
		t.Fatal("Invalidate hit an absent line")
	}
}

func TestRefillSameLineNoDuplicate(t *testing.T) {
	c := MustNew(256, 2, 128)
	c.Fill(line(5))
	c.Fill(line(5)) // refresh, not duplicate
	c.Fill(line(6))
	// Both must fit: the double-fill must not have consumed two ways.
	if !c.Probe(line(5)) || !c.Probe(line(6)) {
		t.Fatal("double Fill consumed an extra way")
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	cases := []struct{ size, assoc, line int }{
		{0, 4, 128}, {1024, 0, 128}, {1024, 4, 0},
		{1024, 4, 100},    // non-pow2 line
		{1000, 4, 128},    // not divisible
		{3 * 128, 1, 128}, // 3 sets: not a power of two
	}
	for _, cs := range cases {
		if _, err := New(cs.size, cs.assoc, cs.line); err == nil {
			t.Errorf("New(%d,%d,%d) accepted bad geometry", cs.size, cs.assoc, cs.line)
		}
	}
}

func TestPropertyFillMakesResidentUntilEnoughConflicts(t *testing.T) {
	// After Fill(x), x stays resident as long as fewer than assoc other
	// lines mapping to x's set are filled.
	f := func(tag uint8, others []uint8) bool {
		c := MustNew(4*1024, 4, 128) // 8 sets
		sets := uint64(c.Sets())
		x := uint64(tag) * sets * 128 // set 0
		c.Fill(x)
		n := 0
		for _, o := range others {
			if n >= 3 {
				break
			}
			y := (uint64(o) + 1 + uint64(tag)) * sets * 128 // set 0, distinct tags
			if y == x {
				continue
			}
			c.Fill(y)
			n++
		}
		return c.Probe(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	c := MustNew(16*1024, 4, 128)
	c.Fill(line(1))
	c.Access(line(1))
	c.Reset()
	if c.Probe(line(1)) || c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("Reset left residue")
	}
}
