// Package cache implements the set-associative caches and miss-status
// holding registers (MSHRs) of the memory hierarchy.
//
// The caches are tag-only (the simulator never stores data): a cache is a
// timing filter that answers "hit or miss" and models capacity, conflict
// and coherence-free sharing behaviour. Replacement is true LRU within a
// set. Stores are write-through no-allocate (as GPGPU-Sim configures the
// Fermi L1 for global accesses), so Probe/Access distinguish loads, which
// update recency, from stores, which only check presence.
package cache

import "fmt"

// Cache is one tag array. Not safe for concurrent use; the simulator is
// single-threaded per GPU instance.
type Cache struct {
	assoc    int
	sets     int
	lineBits uint
	setMask  uint64
	tags     []uint64 // sets × assoc
	valid    []bool
	stamp    []int64 // LRU recency; larger = more recent
	clock    int64

	// Accesses and Misses count lookups via Access.
	Accesses int64
	Misses   int64
}

// New builds a cache of size bytes, assoc ways and lineSize-byte lines.
// size must equal sets*assoc*lineSize for a positive power-of-two number
// of sets.
func New(size, assoc, lineSize int) (*Cache, error) {
	if size <= 0 || assoc <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry (%d,%d,%d)", size, assoc, lineSize)
	}
	if lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a power of two", lineSize)
	}
	if size%(assoc*lineSize) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible by assoc*line (%d)", size, assoc*lineSize)
	}
	sets := size / (assoc * lineSize)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	lb := uint(0)
	for 1<<lb != lineSize {
		lb++
	}
	n := sets * assoc
	return &Cache{
		assoc:    assoc,
		sets:     sets,
		lineBits: lb,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
		stamp:    make([]int64, n),
	}, nil
}

// MustNew is New that panics on error; for configurations already
// validated by config.Validate.
func MustNew(size, assoc, lineSize int) *Cache {
	c, err := New(size, assoc, lineSize)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr >> c.lineBits
	return int(line & c.setMask), line >> 0 // full line id as tag (simplest, unambiguous)
}

// Access looks up addr; on hit it refreshes LRU recency and returns true.
// It counts toward Accesses/Misses.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	set, tag := c.index(addr)
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.clock++
			c.stamp[base+w] = c.clock
			return true
		}
	}
	c.Misses++
	return false
}

// Probe reports presence without touching recency or counters.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Fill installs addr's line, evicting the LRU way if the set is full.
// Filling an already-present line refreshes its recency.
func (c *Cache) Fill(addr uint64) {
	set, tag := c.index(addr)
	base := set * c.assoc
	c.clock++
	victim, oldest := base, c.stamp[base]
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.stamp[i] = c.clock
			return
		}
		if !c.valid[i] {
			victim, oldest = i, -1 // invalid way wins immediately
			continue
		}
		if oldest >= 0 && c.stamp[i] < oldest {
			victim, oldest = i, c.stamp[i]
		}
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.stamp[victim] = c.clock
}

// Invalidate drops addr's line if present; returns whether it was present.
func (c *Cache) Invalidate(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.valid[base+w] = false
			return true
		}
	}
	return false
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.stamp[i] = 0
		c.tags[i] = 0
	}
	c.clock = 0
	c.Accesses = 0
	c.Misses = 0
}

// Sets returns the number of sets (for tests).
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the associativity (for tests).
func (c *Cache) Assoc() int { return c.assoc }
