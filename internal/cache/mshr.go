package cache

// MSHR models a miss-status holding register file: a bounded table of
// outstanding line fills, each merging a bounded number of waiters. A
// request for a line already in flight merges into its entry instead of
// generating new downstream traffic — the mechanism that lets dozens of
// warps miss on the same line while sending one memory request.
type MSHR struct {
	capacity  int
	maxMerges int
	entries   map[uint64]*mshrEntry
	// free recycles filled entries (and their waiter slices): an MSHR
	// allocates and fills entries at memory-traffic rate, so without
	// reuse the entry table dominates the simulator's allocation count.
	free []*mshrEntry

	// Merged counts requests absorbed into existing entries.
	Merged int64
	// Allocated counts new entries (downstream requests sent).
	Allocated int64
}

type mshrEntry struct {
	waiters []func(cycle int64)
}

// NewMSHR builds an MSHR file with the given entry capacity and per-entry
// merge limit (including the allocating request).
func NewMSHR(capacity, maxMerges int) *MSHR {
	if capacity <= 0 || maxMerges <= 0 {
		panic("cache: MSHR capacity and merge limit must be positive")
	}
	return &MSHR{
		capacity:  capacity,
		maxMerges: maxMerges,
		entries:   make(map[uint64]*mshrEntry, capacity),
	}
}

// Outcome of an MSHR lookup.
type Outcome uint8

const (
	// Allocated: a new entry was created; the caller must send the
	// downstream request.
	Allocated Outcome = iota
	// Merged: the request joined an in-flight entry; no downstream
	// traffic needed.
	Merged
	// Refused: table full or entry at its merge limit; the caller must
	// retry later (reservation failure / pipeline stall).
	Refused
)

// CanAccept reports whether a request for line would be Allocated or
// Merged, without committing. Used to test a whole warp instruction's
// lines atomically before committing any of them.
func (m *MSHR) CanAccept(line uint64, extraAllocs int) (ok, wouldAlloc bool) {
	if e, found := m.entries[line]; found {
		return len(e.waiters) < m.maxMerges, false
	}
	return len(m.entries)+extraAllocs < m.capacity, true
}

// Add registers waiter for line and returns the outcome. The waiter fires
// when Fill is called for the line.
func (m *MSHR) Add(line uint64, waiter func(cycle int64)) Outcome {
	if e, found := m.entries[line]; found {
		if len(e.waiters) >= m.maxMerges {
			return Refused
		}
		e.waiters = append(e.waiters, waiter)
		m.Merged++
		return Merged
	}
	if len(m.entries) >= m.capacity {
		return Refused
	}
	var e *mshrEntry
	if n := len(m.free); n > 0 {
		e = m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
	} else {
		e = &mshrEntry{}
	}
	e.waiters = append(e.waiters[:0], waiter)
	m.entries[line] = e
	m.Allocated++
	return Allocated
}

// Fill completes the in-flight line: the entry is removed and every
// waiter is invoked (in registration order) with the fill cycle. Filling
// a line with no entry is a protocol bug and panics.
func (m *MSHR) Fill(line uint64, cycle int64) {
	e, found := m.entries[line]
	if !found {
		panic("cache: MSHR fill for line with no entry")
	}
	delete(m.entries, line)
	for _, w := range e.waiters {
		w(cycle)
	}
	// Recycle only after every waiter has run: a waiter may re-enter Add,
	// and the entry must not be on the freelist while its slice is still
	// being iterated.
	for i := range e.waiters {
		e.waiters[i] = nil
	}
	e.waiters = e.waiters[:0]
	m.free = append(m.free, e)
}

// InFlight returns the number of live entries.
func (m *MSHR) InFlight() int { return len(m.entries) }

// Pending reports whether line has a live entry.
func (m *MSHR) Pending(line uint64) bool {
	_, found := m.entries[line]
	return found
}

// Waiters returns how many requests line's live entry is tracking
// (including the allocating one), or 0 when no entry is in flight. The
// flight recorder reads it just before a Fill to attribute merge waits.
func (m *MSHR) Waiters(line uint64) int {
	if e, found := m.entries[line]; found {
		return len(e.waiters)
	}
	return 0
}
