package cache

import (
	"testing"
	"testing/quick"
)

func TestMSHRAllocateMergeFill(t *testing.T) {
	m := NewMSHR(4, 3)
	var fired []int
	w := func(id int) func(int64) { return func(int64) { fired = append(fired, id) } }

	if got := m.Add(128, w(0)); got != Allocated {
		t.Fatalf("first Add = %v, want Allocated", got)
	}
	if got := m.Add(128, w(1)); got != Merged {
		t.Fatalf("second Add = %v, want Merged", got)
	}
	if !m.Pending(128) || m.InFlight() != 1 {
		t.Fatal("entry bookkeeping wrong")
	}
	m.Fill(128, 99)
	if m.Pending(128) || m.InFlight() != 0 {
		t.Fatal("entry survived Fill")
	}
	if len(fired) != 2 || fired[0] != 0 || fired[1] != 1 {
		t.Fatalf("waiters fired %v, want [0 1] in registration order", fired)
	}
}

func TestMSHRMergeLimit(t *testing.T) {
	m := NewMSHR(4, 2)
	m.Add(128, func(int64) {})
	m.Add(128, func(int64) {})
	if got := m.Add(128, func(int64) {}); got != Refused {
		t.Fatalf("Add past merge limit = %v, want Refused", got)
	}
}

func TestMSHRCapacity(t *testing.T) {
	m := NewMSHR(2, 8)
	m.Add(0, func(int64) {})
	m.Add(128, func(int64) {})
	if got := m.Add(256, func(int64) {}); got != Refused {
		t.Fatalf("Add past capacity = %v, want Refused", got)
	}
	// Merging into existing entries still works at capacity.
	if got := m.Add(0, func(int64) {}); got != Merged {
		t.Fatalf("merge at capacity = %v, want Merged", got)
	}
	m.Fill(0, 1)
	if got := m.Add(256, func(int64) {}); got != Allocated {
		t.Fatalf("Add after Fill freed a slot = %v, want Allocated", got)
	}
}

func TestMSHRCanAcceptMatchesAdd(t *testing.T) {
	f := func(ops []uint8) bool {
		m := NewMSHR(3, 2)
		for _, op := range ops {
			ln := uint64(op%5) * 128
			ok, _ := m.CanAccept(ln, 0)
			got := m.Add(ln, func(int64) {})
			if ok != (got != Refused) {
				return false
			}
			if m.InFlight() == 3 && got == Allocated && m.InFlight() > 3 {
				return false
			}
		}
		return m.InFlight() <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRCanAcceptExtraAllocs(t *testing.T) {
	m := NewMSHR(2, 8)
	m.Add(0, func(int64) {})
	// One free slot left: a hypothetical batch that already consumed it
	// must be refused.
	if ok, _ := m.CanAccept(128, 1); ok {
		t.Fatal("CanAccept ignored extraAllocs")
	}
	if ok, alloc := m.CanAccept(128, 0); !ok || !alloc {
		t.Fatal("CanAccept with free slot should allocate")
	}
}

func TestMSHRFillUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fill of unknown line did not panic")
		}
	}()
	NewMSHR(2, 2).Fill(0, 1)
}

func TestMSHRWaiterSeesFillCycle(t *testing.T) {
	m := NewMSHR(2, 2)
	var at int64
	m.Add(128, func(c int64) { at = c })
	m.Fill(128, 12345)
	if at != 12345 {
		t.Fatalf("waiter saw cycle %d, want 12345", at)
	}
}
