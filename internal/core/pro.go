// Package core implements PRO, the Progress Aware warp scheduling
// algorithm of Anantpur & Govindarajan (IPDPS 2015) — the paper's primary
// contribution.
//
// PRO prioritizes thread blocks and the warps inside them by *progress*
// (thread-instructions executed), with a small state machine per TB
// (paper Fig. 3) and two kernel-level phases:
//
//   - fastTBPhase (TBs still waiting in the Thread Block Scheduler):
//     priority finishWait > barrierWait > noWait. finishWait TBs sort by
//     warps-finished descending (tie: progress descending); barrierWait
//     TBs by warps-at-barrier descending (tie: progress descending);
//     noWait TBs by progress descending (SRTF-like — most-progressed TB
//     finishes soonest, freeing its slot for a fresh TB). Warps inside
//     finishWait/barrierWait TBs sort by progress ascending (help the
//     stragglers); inside noWait TBs by progress descending.
//
//   - slowTBPhase (last TB assigned): finishWait and noWait merge into
//     finishNoWait, sorted by progress ascending (shrink the straggler
//     tail), warps ascending; barrierWait TBs keep top priority.
//
// TB and warp orders for the noWait/finishNoWait group refresh every
// THRESHOLD cycles (1000 in the paper); barrier/finish groups re-sort on
// the events that change them, mirroring Algorithm 1's
// insertBarrierWarp / insertFinishWarp procedures.
//
// Note on Algorithm 1 line 59: the pseudocode says sortTBs(remTBs,
// INC_ORDER) unconditionally, while the prose (Sec. III-C.1) and Table IV
// are explicit that noWait TBs in fastTBPhase sort by *decreasing*
// progress. This implementation follows the prose — decreasing in
// fastTBPhase, increasing in slowTBPhase — and records the discrepancy in
// DESIGN.md.
package core

import (
	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/stats"
)

// DefaultThreshold is the paper's re-sort interval (Sec. III-C.1).
const DefaultThreshold = 1000

type tbState uint8

const (
	stNoWait tbState = iota
	stBarrierWait
	stFinishWait
	stFinishNoWait
)

// tbEntry is PRO's per-TB bookkeeping: the state-machine state plus the
// policy's priority-ordered view of the TB's warps.
type tbEntry struct {
	tb    *engine.ThreadBlock
	state tbState
	warps []*engine.Warp
}

// Policy is the PRO scheduler for one SM (serving both scheduler slots,
// which share the SM-wide TB priority structure).
type Policy struct {
	engine.BasePolicy
	sm *engine.SM

	threshold       int64
	barrierHandling bool
	trace           bool

	// normalize enables the Sec. III-A alternative progress metric
	// (progress normalized by the mean size of completed TBs).
	normalize       bool
	completedTBs    int64
	completedInstrs int64

	// adaptive enables the Sec. IV future-work mechanism: profile the
	// kernel online and enable/disable barrier special-handling per SM
	// based on measured issue throughput.
	adaptive *adaptiveState

	slowPhase bool
	lastSort  int64

	// gen is the order generation reported through OrderGen: bumped by
	// every mutation of the priority structure that changes the emitted
	// order (group sorts that actually move an element, list migrations,
	// assignment/retirement), it lets the engine reuse a cached order on
	// the many cycles where nothing changed. Event-driven re-sorts that
	// leave every element in place — the common case for barrier
	// arrivals and warp finishes — deliberately do not bump it.
	gen uint64

	entries map[*engine.ThreadBlock]*tbEntry
	finish  []*tbEntry // finishWait TBs, priority order
	barrier []*tbEntry // barrierWait / barrierWait1 TBs, priority order
	rem     []*tbEntry // noWait (fast) or finishNoWait (slow), priority order

	// entryFree recycles retired tbEntries (and their warps slices) so
	// TB churn does not allocate in steady state. A retired entry is out
	// of every group list and the entries map before it is pooled.
	entryFree []*tbEntry

	samples []stats.OrderSample
}

// Option configures the policy.
type Option func(*Policy)

// WithThreshold sets the TB/warp re-sort interval in cycles.
func WithThreshold(cycles int64) Option {
	return func(p *Policy) {
		if cycles > 0 {
			p.threshold = cycles
		}
	}
}

// WithoutBarrierHandling disables the special prioritization of TBs with
// warps waiting at barriers — the ablation the paper reports for
// scalarProd (Sec. IV: +11% when disabled).
func WithoutBarrierHandling() Option {
	return func(p *Policy) { p.barrierHandling = false }
}

// WithOrderTrace records Table IV-style priority-order samples on SM 0
// at every threshold re-sort.
func WithOrderTrace() Option {
	return func(p *Policy) { p.trace = true }
}

// New returns an engine.Factory building PRO policies.
func New(opts ...Option) engine.Factory {
	return func(sm *engine.SM) engine.Scheduler {
		p := &Policy{
			sm:              sm,
			threshold:       DefaultThreshold,
			barrierHandling: true,
			entries:         make(map[*engine.ThreadBlock]*tbEntry),
		}
		for _, o := range opts {
			o(p)
		}
		return p
	}
}

// Name implements engine.Scheduler.
func (p *Policy) Name() string {
	switch {
	case p.adaptive != nil:
		return "PRO-adaptive"
	case p.normalize:
		return "PRO-norm"
	case !p.barrierHandling:
		return "PRO-nobar"
	}
	return "PRO"
}

// fastPhase queries the Thread Block Scheduler, like Algorithm 1's
// TBsWaitingInThrdBlkSched().
func (p *Policy) fastPhase() bool { return p.sm.PendingTBsFn() > 0 }

// refresh runs the time-driven part of scheduleWarps: the adaptive
// profiling state machine, the fast→slow phase transition and the
// THRESHOLD re-sort of the rem group. It is idempotent within a cycle
// (each step guards on state it updates), matching the historical
// behavior of running once per scheduler slot.
func (p *Policy) refresh(cycle int64) {
	if p.adaptive != nil {
		p.adaptTick(cycle)
	}
	if !p.slowPhase && !p.fastPhase() {
		p.transitionToSlowPhase()
	}
	if cycle-p.lastSort >= p.threshold {
		p.lastSort = cycle
		p.sortRem()
		if p.trace && p.sm.ID == 0 {
			p.sample(cycle)
		}
	}
}

// Order implements engine.Scheduler — the scheduleWarps procedure of
// Algorithm 1: handle the phase transition, re-sort the rem group on the
// threshold, then emit warps from finishWait, barrierWait and rem TBs in
// that priority order.
func (p *Policy) Order(slot int, dst []*engine.Warp, cycle int64) []*engine.Warp {
	p.refresh(cycle)
	dst = p.appendGroup(dst, slot, p.finish)
	dst = p.appendGroup(dst, slot, p.barrier)
	dst = p.appendGroup(dst, slot, p.rem)
	return dst
}

// OrderGen implements engine.OrderCacher. The refresh lives here so
// threshold re-sorts and adaptive epochs keep firing on cycles where the
// engine's order cache hits and Order is never called.
func (p *Policy) OrderGen(slot int, cycle int64) uint64 {
	p.refresh(cycle)
	return p.gen
}

// NextTimedEvent implements engine.TimedScheduler: the next cycle at
// which refresh does something time-driven — the cycle the re-sort
// threshold elapses, or the adaptive controller's next epoch switch.
// A sleeping SM wakes no later than this, so lastSort and the epoch
// boundaries advance exactly as under per-cycle ticking.
func (p *Policy) NextTimedEvent(cycle int64) int64 {
	next := p.lastSort + p.threshold
	if p.adaptive != nil && p.adaptive.nextSwitch > cycle && p.adaptive.nextSwitch < next {
		next = p.adaptive.nextSwitch
	}
	return next
}

func (p *Policy) appendGroup(dst []*engine.Warp, slot int, group []*tbEntry) []*engine.Warp {
	for _, e := range group {
		for _, w := range e.warps {
			if w.SchedSlot == slot && !w.Finished() {
				dst = append(dst, w)
			}
		}
	}
	return dst
}

// transitionToSlowPhase implements Algorithm 1 lines 36–40: finishWait
// and noWait TBs merge into finishNoWait (sorted ascending by progress,
// warps ascending); barrierWait TBs become barrierWait1 (no list change —
// they already outrank finishNoWait and will transition to finishNoWait
// when their barrier completes).
func (p *Policy) transitionToSlowPhase() {
	p.slowPhase = true
	p.gen++ // group merge changes the order even if no sort moves
	p.rem = append(p.rem, p.finish...)
	p.finish = p.finish[:0]
	for _, e := range p.rem {
		e.state = stFinishNoWait
		sortWarpsAsc(e.warps)
	}
	p.sortRem()
}

// progressKey is the TB priority key for the rem group. Plain PRO uses
// raw TBProgress; the normalized variant (Sec. III-A's alternative)
// divides by the mean total instruction count of completed TBs,
// approximating "fraction of the TB done" when TBs differ in size.
func (p *Policy) progressKey(tb *engine.ThreadBlock) float64 {
	if p.normalize && p.completedTBs > 0 {
		return float64(tb.Progress) * float64(p.completedTBs) / float64(p.completedInstrs)
	}
	return float64(tb.Progress)
}

// The group and warp sorts below are stable insertion sorts rather than
// sort.SliceStable: every comparator is a total order (global TB index /
// warp index break all ties), so the permutation is identical, and
// insertion sorting small, mostly-sorted lists in place avoids the
// reflection machinery and its per-call allocations on the hot path.

// insertionSortTBs stably sorts list by less, reporting whether any
// element moved. Because every comparator is a total order, "nothing
// moved" means the sorted list — and hence the emitted Order — is
// byte-identical to the previous one, so callers skip the generation
// bump and the engine keeps its cached orders and slot gates.
func insertionSortTBs(list []*tbEntry, less func(a, b *tbEntry) bool) bool {
	moved := false
	for i := 1; i < len(list); i++ {
		e := list[i]
		j := i - 1
		for j >= 0 && less(e, list[j]) {
			list[j+1] = list[j]
			j--
		}
		list[j+1] = e
		if j+1 != i {
			moved = true
		}
	}
	return moved
}

// sortRem orders the rem group: fast phase by progress descending (tie:
// global TB index ascending, per Sec. III-C.1) with warps descending;
// slow phase by progress ascending with warps ascending.
func (p *Policy) sortRem() {
	var moved bool
	if p.slowPhase {
		moved = insertionSortTBs(p.rem, func(x, y *tbEntry) bool {
			ka, kb := p.progressKey(x.tb), p.progressKey(y.tb)
			if ka != kb {
				return ka < kb
			}
			return x.tb.Global < y.tb.Global
		})
		for _, e := range p.rem {
			if sortWarpsAsc(e.warps) {
				moved = true
			}
		}
	} else {
		moved = insertionSortTBs(p.rem, func(x, y *tbEntry) bool {
			ka, kb := p.progressKey(x.tb), p.progressKey(y.tb)
			if ka != kb {
				return ka > kb
			}
			return x.tb.Global < y.tb.Global
		})
		for _, e := range p.rem {
			if sortWarpsDesc(e.warps) {
				moved = true
			}
		}
	}
	if moved {
		p.gen++
	}
}

// sortFinish orders finishWait TBs by warps-finished descending, tie by
// progress descending (Sec. III-C.2), then global index.
func (p *Policy) sortFinish() {
	moved := insertionSortTBs(p.finish, func(x, y *tbEntry) bool {
		a, b := x.tb, y.tb
		if a.WarpsFinished != b.WarpsFinished {
			return a.WarpsFinished > b.WarpsFinished
		}
		if a.Progress != b.Progress {
			return a.Progress > b.Progress
		}
		return a.Global < b.Global
	})
	if moved {
		p.gen++
	}
}

// sortBarrier orders barrierWait TBs by warps-at-barrier descending, tie
// by progress descending (Sec. III-C.3), then global index.
func (p *Policy) sortBarrier() {
	moved := insertionSortTBs(p.barrier, func(x, y *tbEntry) bool {
		a, b := x.tb, y.tb
		if a.WarpsAtBarrier != b.WarpsAtBarrier {
			return a.WarpsAtBarrier > b.WarpsAtBarrier
		}
		if a.Progress != b.Progress {
			return a.Progress > b.Progress
		}
		return a.Global < b.Global
	})
	if moved {
		p.gen++
	}
}

func sortWarpsAsc(ws []*engine.Warp) bool {
	moved := false
	for i := 1; i < len(ws); i++ {
		w := ws[i]
		j := i - 1
		for j >= 0 && (w.Progress < ws[j].Progress ||
			(w.Progress == ws[j].Progress && w.IDInTB < ws[j].IDInTB)) {
			ws[j+1] = ws[j]
			j--
		}
		ws[j+1] = w
		if j+1 != i {
			moved = true
		}
	}
	return moved
}

func sortWarpsDesc(ws []*engine.Warp) bool {
	moved := false
	for i := 1; i < len(ws); i++ {
		w := ws[i]
		j := i - 1
		for j >= 0 && (w.Progress > ws[j].Progress ||
			(w.Progress == ws[j].Progress && w.IDInTB < ws[j].IDInTB)) {
			ws[j+1] = ws[j]
			j--
		}
		ws[j+1] = w
		if j+1 != i {
			moved = true
		}
	}
	return moved
}

// remove deletes e from list, preserving order.
func remove(list []*tbEntry, e *tbEntry) []*tbEntry {
	for i, x := range list {
		if x == e {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// OnTBAssign implements engine.Scheduler: a fresh TB starts in noWait
// (new TBs only arrive during fastTBPhase; if one ever arrived later it
// would join finishNoWait). It enters at the tail of the rem group — with
// zero progress it belongs at the bottom of the fast-phase order anyway —
// and the next threshold sort places it exactly.
func (p *Policy) OnTBAssign(tb *engine.ThreadBlock, _ int64) {
	var e *tbEntry
	if n := len(p.entryFree); n > 0 {
		e = p.entryFree[n-1]
		p.entryFree[n-1] = nil
		p.entryFree = p.entryFree[:n-1]
		e.tb = tb
		e.state = stNoWait
		e.warps = append(e.warps[:0], tb.Warps...)
	} else {
		e = &tbEntry{tb: tb, warps: append([]*engine.Warp(nil), tb.Warps...)}
	}
	if p.slowPhase {
		e.state = stFinishNoWait
	}
	p.entries[tb] = e
	p.rem = append(p.rem, e)
	p.gen++
}

// OnTBRetire implements engine.Scheduler.
func (p *Policy) OnTBRetire(tb *engine.ThreadBlock, _ int64) {
	e := p.entries[tb]
	if e == nil {
		return
	}
	p.completedTBs++
	p.completedInstrs += tb.Progress
	delete(p.entries, tb)
	p.gen++
	switch e.state {
	case stFinishWait:
		p.finish = remove(p.finish, e)
	case stBarrierWait:
		p.barrier = remove(p.barrier, e)
	default:
		p.rem = remove(p.rem, e)
	}
	e.tb = nil
	p.entryFree = append(p.entryFree, e)
}

// OnWarpFinish implements Algorithm 1's insertFinishWarp: on the first
// finished warp, move the TB to finishWait (fast phase only) and sort its
// warps by increasing progress so the stragglers get the compute time;
// then re-sort the finishWait group.
func (p *Policy) OnWarpFinish(w *engine.Warp, _ int64) {
	e := p.entries[w.TB]
	if e == nil {
		return
	}
	if w.TB.WarpsFinished == 1 {
		if p.fastPhase() && e.state == stNoWait {
			p.rem = remove(p.rem, e)
			e.state = stFinishWait
			p.finish = append(p.finish, e)
		}
		sortWarpsAsc(e.warps)
		p.gen++ // list migration / warp re-sort changed the order
	}
	p.sortFinish()
}

// OnBarrierArrive implements Algorithm 1's insertBarrierWarp: on the
// first warp at the barrier, move the TB to barrierWait and sort its
// warps by increasing progress; then re-sort the barrierWait group. With
// barrier handling ablated, arrivals change nothing.
func (p *Policy) OnBarrierArrive(w *engine.Warp, _ int64) {
	if !p.barrierHandling {
		return
	}
	e := p.entries[w.TB]
	if e == nil {
		return
	}
	if w.TB.WarpsAtBarrier == 1 {
		if e.state == stNoWait || e.state == stFinishNoWait {
			p.rem = remove(p.rem, e)
			e.state = stBarrierWait
			p.barrier = append(p.barrier, e)
		}
		sortWarpsAsc(e.warps)
		p.gen++ // list migration / warp re-sort changed the order
	}
	p.sortBarrier()
}

// OnBarrierRelease completes insertBarrierWarp's all-arrived case: back
// to noWait during fastTBPhase, to finishNoWait afterwards.
func (p *Policy) OnBarrierRelease(tb *engine.ThreadBlock, _ int64) {
	if !p.barrierHandling {
		return
	}
	e := p.entries[tb]
	if e == nil || e.state != stBarrierWait {
		return
	}
	p.barrier = remove(p.barrier, e)
	if p.fastPhase() {
		e.state = stNoWait
	} else {
		e.state = stFinishNoWait
	}
	p.rem = append(p.rem, e)
	p.gen++
}

// sample records the current SM-0 TB priority order (highest first).
func (p *Policy) sample(cycle int64) {
	order := make([]int, 0, len(p.entries))
	for _, e := range p.finish {
		order = append(order, e.tb.Global)
	}
	for _, e := range p.barrier {
		order = append(order, e.tb.Global)
	}
	for _, e := range p.rem {
		order = append(order, e.tb.Global)
	}
	p.samples = append(p.samples, stats.OrderSample{Cycle: cycle, Order: order})
}

// OrderSamples implements gpu.OrderTracer.
func (p *Policy) OrderSamples() []stats.OrderSample { return p.samples }

// HardwareCostBytes returns PRO's extra per-SM storage per Sec. III-E:
// one 4-byte progress register per warp and per TB, a 1-byte
// warps-at-barrier/finished counter per TB and a 1-byte sorted-order
// entry per TB: (4W + 4T) + T + T bytes. For the paper's Fermi
// configuration (W=48, T=8) this is 240 bytes.
func HardwareCostBytes(cfg *config.Config) int {
	w := cfg.MaxWarpsPerSM()
	t := cfg.MaxTBsPerSM
	return 4*w + 4*t + t + t
}
