// Package core implements PRO, the Progress Aware warp scheduling
// algorithm of Anantpur & Govindarajan (IPDPS 2015) — the paper's primary
// contribution.
//
// PRO prioritizes thread blocks and the warps inside them by *progress*
// (thread-instructions executed), with a small state machine per TB
// (paper Fig. 3) and two kernel-level phases:
//
//   - fastTBPhase (TBs still waiting in the Thread Block Scheduler):
//     priority finishWait > barrierWait > noWait. finishWait TBs sort by
//     warps-finished descending (tie: progress descending); barrierWait
//     TBs by warps-at-barrier descending (tie: progress descending);
//     noWait TBs by progress descending (SRTF-like — most-progressed TB
//     finishes soonest, freeing its slot for a fresh TB). Warps inside
//     finishWait/barrierWait TBs sort by progress ascending (help the
//     stragglers); inside noWait TBs by progress descending.
//
//   - slowTBPhase (last TB assigned): finishWait and noWait merge into
//     finishNoWait, sorted by progress ascending (shrink the straggler
//     tail), warps ascending; barrierWait TBs keep top priority.
//
// TB and warp orders for the noWait/finishNoWait group refresh every
// THRESHOLD cycles (1000 in the paper); barrier/finish groups re-sort on
// the events that change them, mirroring Algorithm 1's
// insertBarrierWarp / insertFinishWarp procedures.
//
// Note on Algorithm 1 line 59: the pseudocode says sortTBs(remTBs,
// INC_ORDER) unconditionally, while the prose (Sec. III-C.1) and Table IV
// are explicit that noWait TBs in fastTBPhase sort by *decreasing*
// progress. This implementation follows the prose — decreasing in
// fastTBPhase, increasing in slowTBPhase — and records the discrepancy in
// DESIGN.md.
package core

import (
	"sort"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/stats"
)

// DefaultThreshold is the paper's re-sort interval (Sec. III-C.1).
const DefaultThreshold = 1000

type tbState uint8

const (
	stNoWait tbState = iota
	stBarrierWait
	stFinishWait
	stFinishNoWait
)

// tbEntry is PRO's per-TB bookkeeping: the state-machine state plus the
// policy's priority-ordered view of the TB's warps.
type tbEntry struct {
	tb    *engine.ThreadBlock
	state tbState
	warps []*engine.Warp
}

// Policy is the PRO scheduler for one SM (serving both scheduler slots,
// which share the SM-wide TB priority structure).
type Policy struct {
	engine.BasePolicy
	sm *engine.SM

	threshold       int64
	barrierHandling bool
	trace           bool

	// normalize enables the Sec. III-A alternative progress metric
	// (progress normalized by the mean size of completed TBs).
	normalize       bool
	completedTBs    int64
	completedInstrs int64

	// adaptive enables the Sec. IV future-work mechanism: profile the
	// kernel online and enable/disable barrier special-handling per SM
	// based on measured issue throughput.
	adaptive *adaptiveState

	slowPhase bool
	lastSort  int64

	entries map[*engine.ThreadBlock]*tbEntry
	finish  []*tbEntry // finishWait TBs, priority order
	barrier []*tbEntry // barrierWait / barrierWait1 TBs, priority order
	rem     []*tbEntry // noWait (fast) or finishNoWait (slow), priority order

	samples []stats.OrderSample
}

// Option configures the policy.
type Option func(*Policy)

// WithThreshold sets the TB/warp re-sort interval in cycles.
func WithThreshold(cycles int64) Option {
	return func(p *Policy) {
		if cycles > 0 {
			p.threshold = cycles
		}
	}
}

// WithoutBarrierHandling disables the special prioritization of TBs with
// warps waiting at barriers — the ablation the paper reports for
// scalarProd (Sec. IV: +11% when disabled).
func WithoutBarrierHandling() Option {
	return func(p *Policy) { p.barrierHandling = false }
}

// WithOrderTrace records Table IV-style priority-order samples on SM 0
// at every threshold re-sort.
func WithOrderTrace() Option {
	return func(p *Policy) { p.trace = true }
}

// New returns an engine.Factory building PRO policies.
func New(opts ...Option) engine.Factory {
	return func(sm *engine.SM) engine.Scheduler {
		p := &Policy{
			sm:              sm,
			threshold:       DefaultThreshold,
			barrierHandling: true,
			entries:         make(map[*engine.ThreadBlock]*tbEntry),
		}
		for _, o := range opts {
			o(p)
		}
		return p
	}
}

// Name implements engine.Scheduler.
func (p *Policy) Name() string {
	switch {
	case p.adaptive != nil:
		return "PRO-adaptive"
	case p.normalize:
		return "PRO-norm"
	case !p.barrierHandling:
		return "PRO-nobar"
	}
	return "PRO"
}

// fastPhase queries the Thread Block Scheduler, like Algorithm 1's
// TBsWaitingInThrdBlkSched().
func (p *Policy) fastPhase() bool { return p.sm.PendingTBsFn() > 0 }

// Order implements engine.Scheduler — the scheduleWarps procedure of
// Algorithm 1: handle the phase transition, re-sort the rem group on the
// threshold, then emit warps from finishWait, barrierWait and rem TBs in
// that priority order.
func (p *Policy) Order(slot int, dst []*engine.Warp, cycle int64) []*engine.Warp {
	if p.adaptive != nil {
		p.adaptTick(cycle)
	}
	if !p.slowPhase && !p.fastPhase() {
		p.transitionToSlowPhase()
	}
	if cycle-p.lastSort > p.threshold {
		p.lastSort = cycle
		p.sortRem()
		if p.trace && p.sm.ID == 0 {
			p.sample(cycle)
		}
	}
	dst = p.appendGroup(dst, slot, p.finish)
	dst = p.appendGroup(dst, slot, p.barrier)
	dst = p.appendGroup(dst, slot, p.rem)
	return dst
}

func (p *Policy) appendGroup(dst []*engine.Warp, slot int, group []*tbEntry) []*engine.Warp {
	for _, e := range group {
		for _, w := range e.warps {
			if w.SchedSlot == slot && !w.Finished() {
				dst = append(dst, w)
			}
		}
	}
	return dst
}

// transitionToSlowPhase implements Algorithm 1 lines 36–40: finishWait
// and noWait TBs merge into finishNoWait (sorted ascending by progress,
// warps ascending); barrierWait TBs become barrierWait1 (no list change —
// they already outrank finishNoWait and will transition to finishNoWait
// when their barrier completes).
func (p *Policy) transitionToSlowPhase() {
	p.slowPhase = true
	p.rem = append(p.rem, p.finish...)
	p.finish = p.finish[:0]
	for _, e := range p.rem {
		e.state = stFinishNoWait
		sortWarpsAsc(e.warps)
	}
	p.sortRem()
}

// progressKey is the TB priority key for the rem group. Plain PRO uses
// raw TBProgress; the normalized variant (Sec. III-A's alternative)
// divides by the mean total instruction count of completed TBs,
// approximating "fraction of the TB done" when TBs differ in size.
func (p *Policy) progressKey(tb *engine.ThreadBlock) float64 {
	if p.normalize && p.completedTBs > 0 {
		return float64(tb.Progress) * float64(p.completedTBs) / float64(p.completedInstrs)
	}
	return float64(tb.Progress)
}

// sortRem orders the rem group: fast phase by progress descending (tie:
// global TB index ascending, per Sec. III-C.1) with warps descending;
// slow phase by progress ascending with warps ascending.
func (p *Policy) sortRem() {
	if p.slowPhase {
		sort.SliceStable(p.rem, func(i, j int) bool {
			a, b := p.rem[i].tb, p.rem[j].tb
			ka, kb := p.progressKey(a), p.progressKey(b)
			if ka != kb {
				return ka < kb
			}
			return a.Global < b.Global
		})
		for _, e := range p.rem {
			sortWarpsAsc(e.warps)
		}
		return
	}
	sort.SliceStable(p.rem, func(i, j int) bool {
		a, b := p.rem[i].tb, p.rem[j].tb
		ka, kb := p.progressKey(a), p.progressKey(b)
		if ka != kb {
			return ka > kb
		}
		return a.Global < b.Global
	})
	for _, e := range p.rem {
		sortWarpsDesc(e.warps)
	}
}

// sortFinish orders finishWait TBs by warps-finished descending, tie by
// progress descending (Sec. III-C.2), then global index.
func (p *Policy) sortFinish() {
	sort.SliceStable(p.finish, func(i, j int) bool {
		a, b := p.finish[i].tb, p.finish[j].tb
		if a.WarpsFinished != b.WarpsFinished {
			return a.WarpsFinished > b.WarpsFinished
		}
		if a.Progress != b.Progress {
			return a.Progress > b.Progress
		}
		return a.Global < b.Global
	})
}

// sortBarrier orders barrierWait TBs by warps-at-barrier descending, tie
// by progress descending (Sec. III-C.3), then global index.
func (p *Policy) sortBarrier() {
	sort.SliceStable(p.barrier, func(i, j int) bool {
		a, b := p.barrier[i].tb, p.barrier[j].tb
		if a.WarpsAtBarrier != b.WarpsAtBarrier {
			return a.WarpsAtBarrier > b.WarpsAtBarrier
		}
		if a.Progress != b.Progress {
			return a.Progress > b.Progress
		}
		return a.Global < b.Global
	})
}

func sortWarpsAsc(ws []*engine.Warp) {
	sort.SliceStable(ws, func(i, j int) bool {
		if ws[i].Progress != ws[j].Progress {
			return ws[i].Progress < ws[j].Progress
		}
		return ws[i].IDInTB < ws[j].IDInTB
	})
}

func sortWarpsDesc(ws []*engine.Warp) {
	sort.SliceStable(ws, func(i, j int) bool {
		if ws[i].Progress != ws[j].Progress {
			return ws[i].Progress > ws[j].Progress
		}
		return ws[i].IDInTB < ws[j].IDInTB
	})
}

// remove deletes e from list, preserving order.
func remove(list []*tbEntry, e *tbEntry) []*tbEntry {
	for i, x := range list {
		if x == e {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// OnTBAssign implements engine.Scheduler: a fresh TB starts in noWait
// (new TBs only arrive during fastTBPhase; if one ever arrived later it
// would join finishNoWait). It enters at the tail of the rem group — with
// zero progress it belongs at the bottom of the fast-phase order anyway —
// and the next threshold sort places it exactly.
func (p *Policy) OnTBAssign(tb *engine.ThreadBlock, _ int64) {
	e := &tbEntry{tb: tb, warps: append([]*engine.Warp(nil), tb.Warps...)}
	if p.slowPhase {
		e.state = stFinishNoWait
	}
	p.entries[tb] = e
	p.rem = append(p.rem, e)
}

// OnTBRetire implements engine.Scheduler.
func (p *Policy) OnTBRetire(tb *engine.ThreadBlock, _ int64) {
	e := p.entries[tb]
	if e == nil {
		return
	}
	p.completedTBs++
	p.completedInstrs += tb.Progress
	delete(p.entries, tb)
	switch e.state {
	case stFinishWait:
		p.finish = remove(p.finish, e)
	case stBarrierWait:
		p.barrier = remove(p.barrier, e)
	default:
		p.rem = remove(p.rem, e)
	}
}

// OnWarpFinish implements Algorithm 1's insertFinishWarp: on the first
// finished warp, move the TB to finishWait (fast phase only) and sort its
// warps by increasing progress so the stragglers get the compute time;
// then re-sort the finishWait group.
func (p *Policy) OnWarpFinish(w *engine.Warp, _ int64) {
	e := p.entries[w.TB]
	if e == nil {
		return
	}
	if w.TB.WarpsFinished == 1 {
		if p.fastPhase() && e.state == stNoWait {
			p.rem = remove(p.rem, e)
			e.state = stFinishWait
			p.finish = append(p.finish, e)
		}
		sortWarpsAsc(e.warps)
	}
	p.sortFinish()
}

// OnBarrierArrive implements Algorithm 1's insertBarrierWarp: on the
// first warp at the barrier, move the TB to barrierWait and sort its
// warps by increasing progress; then re-sort the barrierWait group. With
// barrier handling ablated, arrivals change nothing.
func (p *Policy) OnBarrierArrive(w *engine.Warp, _ int64) {
	if !p.barrierHandling {
		return
	}
	e := p.entries[w.TB]
	if e == nil {
		return
	}
	if w.TB.WarpsAtBarrier == 1 {
		if e.state == stNoWait || e.state == stFinishNoWait {
			p.rem = remove(p.rem, e)
			e.state = stBarrierWait
			p.barrier = append(p.barrier, e)
		}
		sortWarpsAsc(e.warps)
	}
	p.sortBarrier()
}

// OnBarrierRelease completes insertBarrierWarp's all-arrived case: back
// to noWait during fastTBPhase, to finishNoWait afterwards.
func (p *Policy) OnBarrierRelease(tb *engine.ThreadBlock, _ int64) {
	if !p.barrierHandling {
		return
	}
	e := p.entries[tb]
	if e == nil || e.state != stBarrierWait {
		return
	}
	p.barrier = remove(p.barrier, e)
	if p.fastPhase() {
		e.state = stNoWait
	} else {
		e.state = stFinishNoWait
	}
	p.rem = append(p.rem, e)
}

// sample records the current SM-0 TB priority order (highest first).
func (p *Policy) sample(cycle int64) {
	order := make([]int, 0, len(p.entries))
	for _, e := range p.finish {
		order = append(order, e.tb.Global)
	}
	for _, e := range p.barrier {
		order = append(order, e.tb.Global)
	}
	for _, e := range p.rem {
		order = append(order, e.tb.Global)
	}
	p.samples = append(p.samples, stats.OrderSample{Cycle: cycle, Order: order})
}

// OrderSamples implements gpu.OrderTracer.
func (p *Policy) OrderSamples() []stats.OrderSample { return p.samples }

// HardwareCostBytes returns PRO's extra per-SM storage per Sec. III-E:
// one 4-byte progress register per warp and per TB, a 1-byte
// warps-at-barrier/finished counter per TB and a 1-byte sorted-order
// entry per TB: (4W + 4T) + T + T bytes. For the paper's Fermi
// configuration (W=48, T=8) this is 240 bytes.
func HardwareCostBytes(cfg *config.Config) int {
	w := cfg.MaxWarpsPerSM()
	t := cfg.MaxTBsPerSM
	return 4*w + 4*t + t + t
}
