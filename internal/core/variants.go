package core

// This file implements the two extensions the paper itself proposes:
//
//   - Sec. IV (future work): "dynamically enable or disable special
//     handling of barrier statements ... by profiling each application."
//     WithAdaptiveBarrierHandling profiles online, per SM: it alternates
//     short measurement epochs with barrier handling on and off,
//     compares the issue throughput, commits to the winner for a longer
//     window, then re-explores — the scalarProd pathology (Sec. IV,
//     -10% vs GTO, +11% with handling off) selects itself out.
//
//   - Sec. III-A (alternative progress definition): "one could use the
//     number of instructions executed by a TB which has completed and
//     use this to normalize progress across TBs."
//     WithNormalizedProgress ranks TBs by progress divided by the mean
//     size of completed TBs — an online estimate of the fraction of the
//     TB already done, a better SRTF surrogate when TBs are uneven.

// Adaptive-controller phases.
const (
	adaptMeasureOn uint8 = iota
	adaptMeasureOff
	adaptCommitted
)

// adaptiveState is the per-SM profile-and-commit controller.
type adaptiveState struct {
	epochLen   int64
	commitLen  int64
	mode       uint8
	nextSwitch int64
	snapshot   int64 // sm.WarpInstrs at the start of the current epoch
	onRate     int64 // instructions issued during the last ON epoch
}

// WithAdaptiveBarrierHandling enables the Sec. IV future-work mechanism.
// epochLen is the measurement-window length in cycles and commitLen the
// exploitation window; zero selects defaults derived from the re-sort
// threshold (4× and 16×).
func WithAdaptiveBarrierHandling(epochLen, commitLen int64) Option {
	return func(p *Policy) {
		p.adaptive = &adaptiveState{epochLen: epochLen, commitLen: commitLen}
	}
}

// WithNormalizedProgress enables the Sec. III-A normalized progress
// metric for the noWait/finishNoWait ordering.
func WithNormalizedProgress() Option {
	return func(p *Policy) { p.normalize = true }
}

// adaptTick advances the profile-and-commit state machine. Called from
// Order once per cycle (cheap guard inside).
func (p *Policy) adaptTick(cycle int64) {
	a := p.adaptive
	if a.epochLen <= 0 {
		a.epochLen = 4 * p.threshold
	}
	if a.commitLen <= 0 {
		a.commitLen = 16 * p.threshold
	}
	if a.nextSwitch == 0 {
		// First call: begin measuring with handling enabled.
		a.mode = adaptMeasureOn
		a.snapshot = p.sm.WarpInstrs
		a.nextSwitch = cycle + a.epochLen
		p.setBarrierHandling(true)
		return
	}
	if cycle < a.nextSwitch {
		return
	}
	switch a.mode {
	case adaptMeasureOn:
		a.onRate = p.sm.WarpInstrs - a.snapshot
		a.snapshot = p.sm.WarpInstrs
		a.mode = adaptMeasureOff
		a.nextSwitch = cycle + a.epochLen
		p.setBarrierHandling(false)
	case adaptMeasureOff:
		offRate := p.sm.WarpInstrs - a.snapshot
		a.mode = adaptCommitted
		a.nextSwitch = cycle + a.commitLen
		p.setBarrierHandling(a.onRate >= offRate)
	case adaptCommitted:
		a.mode = adaptMeasureOn
		a.snapshot = p.sm.WarpInstrs
		a.nextSwitch = cycle + a.epochLen
		p.setBarrierHandling(true)
	}
}

// setBarrierHandling switches the barrier special-handling on or off at
// run time, migrating TB list membership so the priority structure stays
// consistent: disabling flushes barrierWait TBs back into the rem group;
// enabling rescans resident TBs for in-progress barriers.
func (p *Policy) setBarrierHandling(on bool) {
	if p.barrierHandling == on {
		return
	}
	p.barrierHandling = on
	// Membership migrates below; the sorts only bump the generation when
	// they move something, so invalidate cached orders here explicitly.
	p.gen++
	if !on {
		for _, e := range p.barrier {
			if p.slowPhase {
				e.state = stFinishNoWait
			} else {
				e.state = stNoWait
			}
			p.rem = append(p.rem, e)
		}
		p.barrier = p.barrier[:0]
		p.sortRem()
		return
	}
	for _, tb := range p.sm.TBSlots {
		if tb == nil || tb.WarpsAtBarrier == 0 {
			continue
		}
		e := p.entries[tb]
		if e == nil || e.state == stBarrierWait || e.state == stFinishWait {
			continue
		}
		p.rem = remove(p.rem, e)
		e.state = stBarrierWait
		p.barrier = append(p.barrier, e)
		sortWarpsAsc(e.warps)
	}
	p.sortBarrier()
}
