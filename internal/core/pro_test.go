package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/timing"
)

// harness builds one SM driven manually, with a controllable pending-TB
// count so fast/slow phase transitions can be forced.
type harness struct {
	sm      *engine.SM
	wheel   *timing.Wheel
	policy  *Policy
	pending int
}

func newHarness(t *testing.T, prog *isa.Program, blockThreads int, opts ...Option) *harness {
	t.Helper()
	cfg := config.GTX480()
	wheel := timing.NewWheel()
	mem := memsys.New(cfg, wheel)
	launch := &engine.Launch{Program: prog, GridTBs: 64, BlockThreads: blockThreads, Seed: 5}
	if err := launch.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	h := &harness{wheel: wheel, pending: 64}
	h.sm = engine.NewSM(0, cfg, wheel, mem, launch, New(opts...))
	h.sm.PendingTBsFn = func() int { return h.pending }
	h.policy = h.sm.Sched.(*Policy)
	return h
}

func barrierProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("barprog")
	b.IAdd(1, 1, 1)
	b.Bar()
	b.IAdd(2, 2, 2)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func straightProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("straight")
	b.IAdd(1, 1, 1)
	b.IAdd(2, 2, 2)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// order returns the TB ids in the policy's current priority order for
// slot 0 (deduplicated, highest priority first).
func (h *harness) order(cycle int64) []int {
	warps := h.policy.Order(0, nil, cycle)
	var tbs []int
	seen := map[int]bool{}
	for _, w := range warps {
		if !seen[w.TB.Global] {
			seen[w.TB.Global] = true
			tbs = append(tbs, w.TB.Global)
		}
	}
	return tbs
}

func TestHardwareCostMatchesPaper(t *testing.T) {
	// Sec. III-E: for W=48, T=8 the extra storage is 240 bytes per SM.
	if got := HardwareCostBytes(config.GTX480()); got != 240 {
		t.Fatalf("HardwareCostBytes = %d, want 240", got)
	}
}

func TestNoWaitPriorityIsProgressDescendingInFastPhase(t *testing.T) {
	h := newHarness(t, straightProg(t), 64)
	tb0 := h.sm.AssignTB(0, 1)
	tb1 := h.sm.AssignTB(1, 1)
	tb2 := h.sm.AssignTB(2, 1)
	tb0.Progress = 100
	tb1.Progress = 300
	tb2.Progress = 200
	got := h.order(DefaultThreshold + 2) // past threshold → sorted
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fast-phase noWait order = %v, want %v", got, want)
		}
	}
}

func TestNoWaitTieBreaksOnGlobalIndex(t *testing.T) {
	h := newHarness(t, straightProg(t), 64)
	h.sm.AssignTB(5, 1)
	h.sm.AssignTB(3, 1)
	got := h.order(DefaultThreshold + 2)
	if got[0] != 3 || got[1] != 5 {
		t.Fatalf("equal-progress order = %v, want [3 5]", got)
	}
}

func TestSlowPhaseFlipsToProgressAscending(t *testing.T) {
	h := newHarness(t, straightProg(t), 64)
	tb0 := h.sm.AssignTB(0, 1)
	tb1 := h.sm.AssignTB(1, 1)
	tb0.Progress = 100
	tb1.Progress = 300
	h.pending = 0 // slowTBPhase begins
	got := h.order(DefaultThreshold + 2)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("slow-phase order = %v, want [0 1] (least progress first)", got)
	}
}

func TestBarrierWaitOutranksNoWait(t *testing.T) {
	h := newHarness(t, barrierProg(t), 64)
	tbA := h.sm.AssignTB(0, 1)
	tbB := h.sm.AssignTB(1, 1)
	tbA.Progress = 1000 // would lead noWait order
	tbB.Progress = 10
	// One warp of tbB reaches the barrier.
	tbB.WarpsAtBarrier = 1
	h.policy.OnBarrierArrive(tbB.Warps[0], 2)
	got := h.order(3)
	if got[0] != 1 {
		t.Fatalf("order = %v; barrierWait TB must outrank noWait", got)
	}
}

func TestFinishWaitOutranksBarrierWaitAndNoWait(t *testing.T) {
	h := newHarness(t, barrierProg(t), 64)
	tbA := h.sm.AssignTB(0, 1)
	tbB := h.sm.AssignTB(1, 1)
	tbC := h.sm.AssignTB(2, 1)
	tbA.Progress = 1000
	tbB.WarpsAtBarrier = 1
	h.policy.OnBarrierArrive(tbB.Warps[0], 2)
	tbC.WarpsFinished = 1
	h.policy.OnWarpFinish(tbC.Warps[0], 2)
	got := h.order(3)
	if got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("order = %v, want [2 1 0] (finishWait > barrierWait > noWait)", got)
	}
}

func TestFinishWaitTBsSortByWarpsFinished(t *testing.T) {
	h := newHarness(t, straightProg(t), 128) // 4 warps per TB
	tbA := h.sm.AssignTB(0, 1)
	tbB := h.sm.AssignTB(1, 1)
	tbA.WarpsFinished = 1
	h.policy.OnWarpFinish(tbA.Warps[0], 2)
	tbB.WarpsFinished = 1
	h.policy.OnWarpFinish(tbB.Warps[0], 2)
	// tbB gets a second finished warp → must outrank tbA.
	tbB.WarpsFinished = 2
	h.policy.OnWarpFinish(tbB.Warps[1], 3)
	got := h.order(4)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("finishWait order = %v, want [1 0]", got)
	}
}

func TestBarrierWaitTBsSortByWarpsAtBarrier(t *testing.T) {
	h := newHarness(t, barrierProg(t), 128)
	tbA := h.sm.AssignTB(0, 1)
	tbB := h.sm.AssignTB(1, 1)
	tbA.WarpsAtBarrier = 1
	h.policy.OnBarrierArrive(tbA.Warps[0], 2)
	tbB.WarpsAtBarrier = 1
	h.policy.OnBarrierArrive(tbB.Warps[0], 2)
	tbB.WarpsAtBarrier = 2
	h.policy.OnBarrierArrive(tbB.Warps[1], 3)
	got := h.order(4)
	if got[0] != 1 {
		t.Fatalf("barrierWait order = %v, want TB 1 first (more warps at barrier)", got)
	}
}

func TestBarrierReleaseReturnsToNoWaitInFastPhase(t *testing.T) {
	h := newHarness(t, barrierProg(t), 64)
	tb := h.sm.AssignTB(0, 1)
	tb.WarpsAtBarrier = 1
	h.policy.OnBarrierArrive(tb.Warps[0], 2)
	tb.WarpsAtBarrier = 0
	h.policy.OnBarrierRelease(tb, 3)
	e := h.policy.entries[tb]
	if e.state != stNoWait {
		t.Fatalf("state after release = %v, want noWait", e.state)
	}
}

func TestBarrierReleaseGoesToFinishNoWaitInSlowPhase(t *testing.T) {
	h := newHarness(t, barrierProg(t), 64)
	tb := h.sm.AssignTB(0, 1)
	tb.WarpsAtBarrier = 1
	h.policy.OnBarrierArrive(tb.Warps[0], 2)
	h.pending = 0
	h.order(3) // triggers the phase transition (barrierWait1)
	tb.WarpsAtBarrier = 0
	h.policy.OnBarrierRelease(tb, 4)
	if e := h.policy.entries[tb]; e.state != stFinishNoWait {
		t.Fatalf("state after slow-phase release = %v, want finishNoWait", e.state)
	}
}

func TestPhaseTransitionMergesFinishIntoRem(t *testing.T) {
	h := newHarness(t, straightProg(t), 64)
	tbA := h.sm.AssignTB(0, 1)
	tbB := h.sm.AssignTB(1, 1)
	tbA.WarpsFinished = 1
	h.policy.OnWarpFinish(tbA.Warps[0], 2)
	tbA.Progress = 500
	tbB.Progress = 10
	h.pending = 0
	got := h.order(3)
	if len(h.policy.finish) != 0 {
		t.Fatal("finishWait list not cleared at phase transition")
	}
	// Merged into finishNoWait, ascending progress: tbB (10) first.
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("post-merge order = %v, want [1 0]", got)
	}
}

func TestWarpOrderWithinNoWaitTBIsProgressDescending(t *testing.T) {
	h := newHarness(t, straightProg(t), 128) // 4 warps
	tb := h.sm.AssignTB(0, 1)
	tb.Warps[0].Progress = 10
	tb.Warps[1].Progress = 40
	tb.Warps[2].Progress = 20
	tb.Warps[3].Progress = 30
	warps := h.policy.Order(0, nil, DefaultThreshold+2) // slot 0 owns warps 0 and 2
	if len(warps) != 2 {
		t.Fatalf("slot 0 got %d warps, want 2", len(warps))
	}
	if warps[0] != tb.Warps[2] || warps[1] != tb.Warps[0] {
		t.Fatalf("noWait warp order wrong: got progress %d then %d, want 20 then 10",
			warps[0].Progress, warps[1].Progress)
	}
}

func TestWarpOrderWithinFinishWaitTBIsProgressAscending(t *testing.T) {
	h := newHarness(t, straightProg(t), 128)
	tb := h.sm.AssignTB(0, 1)
	tb.Warps[0].Progress = 40
	tb.Warps[2].Progress = 10
	tb.WarpsFinished = 1
	h.policy.OnWarpFinish(tb.Warps[1], 2)
	warps := h.policy.Order(0, nil, 3)
	if warps[0] != tb.Warps[2] || warps[1] != tb.Warps[0] {
		t.Fatalf("finishWait warp order: got progress %d then %d, want 10 then 40",
			warps[0].Progress, warps[1].Progress)
	}
}

func TestAblationWithoutBarrierHandling(t *testing.T) {
	h := newHarness(t, barrierProg(t), 64, WithoutBarrierHandling())
	tbA := h.sm.AssignTB(0, 1)
	tbB := h.sm.AssignTB(1, 1)
	tbA.Progress = 1000
	tbB.WarpsAtBarrier = 1
	h.policy.OnBarrierArrive(tbB.Warps[0], 2)
	if len(h.policy.barrier) != 0 {
		t.Fatal("ablated policy still tracks barrierWait TBs")
	}
	got := h.order(DefaultThreshold + 2)
	if got[0] != 0 {
		t.Fatalf("order = %v; without barrier handling progress alone must rule", got)
	}
	if h.policy.Name() != "PRO-nobar" {
		t.Fatalf("Name = %q", h.policy.Name())
	}
}

func TestThresholdControlsResortCadence(t *testing.T) {
	h := newHarness(t, straightProg(t), 64, WithThreshold(100))
	tbA := h.sm.AssignTB(0, 1)
	tbB := h.sm.AssignTB(1, 1)
	h.order(101) // initial sort
	tbA.Progress = 10
	tbB.Progress = 999
	// Within the threshold window the stale order (assignment order)
	// persists.
	got := h.order(150)
	if got[0] != 0 {
		t.Fatalf("order re-sorted before threshold: %v", got)
	}
	got = h.order(250)
	if got[0] != 1 {
		t.Fatalf("order not re-sorted after threshold: %v", got)
	}
}

func TestOrderTraceSamples(t *testing.T) {
	h := newHarness(t, straightProg(t), 64, WithOrderTrace(), WithThreshold(50))
	h.sm.AssignTB(0, 1)
	h.sm.AssignTB(1, 1)
	h.order(60)
	h.order(120)
	samples := h.policy.OrderSamples()
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	if len(samples[0].Order) != 2 {
		t.Fatalf("sample covers %d TBs, want 2", len(samples[0].Order))
	}
}

func TestTBRetireRemovesFromLists(t *testing.T) {
	h := newHarness(t, straightProg(t), 64)
	tb := h.sm.AssignTB(0, 1)
	h.policy.OnTBRetire(tb, 5)
	if len(h.policy.entries) != 0 || len(h.policy.rem) != 0 {
		t.Fatal("retired TB still tracked")
	}
	// Idempotent on unknown TBs.
	h.policy.OnTBRetire(tb, 6)
}

func TestOrderCoversEveryLiveWarpOnce(t *testing.T) {
	h := newHarness(t, barrierProg(t), 128)
	tbA := h.sm.AssignTB(0, 1)
	tbB := h.sm.AssignTB(1, 1)
	tbB.WarpsAtBarrier = 1
	h.policy.OnBarrierArrive(tbB.Warps[0], 2)
	for slot := 0; slot < 2; slot++ {
		warps := h.policy.Order(slot, nil, 3)
		seen := map[*engine.Warp]bool{}
		for _, w := range warps {
			if w.SchedSlot != slot {
				t.Fatalf("slot %d order contains foreign warp", slot)
			}
			if seen[w] {
				t.Fatalf("slot %d order repeats a warp", slot)
			}
			seen[w] = true
		}
		want := 0
		for _, tb := range []*engine.ThreadBlock{tbA, tbB} {
			for _, w := range tb.Warps {
				if w.SchedSlot == slot {
					want++
				}
			}
		}
		if len(warps) != want {
			t.Fatalf("slot %d order has %d warps, want %d", slot, len(warps), want)
		}
	}
}
