package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/sched"
)

func TestNormalizedProgressKey(t *testing.T) {
	h := newHarness(t, straightProg(t), 64, WithNormalizedProgress())
	tbA := h.sm.AssignTB(0, 1)
	tbB := h.sm.AssignTB(1, 1)
	// Before any TB completes, normalization falls back to raw progress.
	tbA.Progress = 100
	tbB.Progress = 300
	got := h.order(DefaultThreshold + 2)
	if got[0] != 1 {
		t.Fatalf("pre-completion order = %v, want raw-progress order", got)
	}
	// A completed TB of 200 instructions calibrates the scale; keys
	// become fractions but ordering by progress is preserved (same
	// denominator for all TBs).
	done := &engine.ThreadBlock{Global: 9, Launch: tbA.Launch, Progress: 200}
	h.policy.entries[done] = &tbEntry{tb: done}
	h.policy.rem = append(h.policy.rem, h.policy.entries[done])
	h.policy.OnTBRetire(done, 2)
	if h.policy.completedTBs != 1 || h.policy.completedInstrs != 200 {
		t.Fatalf("completion accounting: %d TBs, %d instrs",
			h.policy.completedTBs, h.policy.completedInstrs)
	}
	if k := h.policy.progressKey(tbA); k != 0.5 {
		t.Fatalf("normalized key = %v, want 0.5 (100/200)", k)
	}
	if h.policy.Name() != "PRO-norm" {
		t.Fatalf("Name = %q", h.policy.Name())
	}
}

func TestAdaptiveTogglesAndMigratesLists(t *testing.T) {
	h := newHarness(t, barrierProg(t), 64,
		WithThreshold(100), WithAdaptiveBarrierHandling(200, 400))
	tb := h.sm.AssignTB(0, 1)
	if h.policy.Name() != "PRO-adaptive" {
		t.Fatalf("Name = %q", h.policy.Name())
	}

	// Cycle 1: first tick arms the controller measuring ON.
	h.policy.Order(0, nil, 1)
	if !h.policy.barrierHandling {
		t.Fatal("controller must start with handling on")
	}
	// A warp reaches the barrier: TB moves to the barrier list.
	tb.WarpsAtBarrier = 1
	h.policy.OnBarrierArrive(tb.Warps[0], 2)
	if len(h.policy.barrier) != 1 {
		t.Fatal("barrier list not populated while handling on")
	}

	// Past the first epoch boundary the controller measures OFF: the
	// barrier list must flush back into rem.
	h.policy.Order(0, nil, 202)
	if h.policy.barrierHandling {
		t.Fatal("controller did not switch to OFF epoch")
	}
	if len(h.policy.barrier) != 0 || len(h.policy.rem) != 1 {
		t.Fatal("barrier list not migrated on toggle")
	}

	// Past the second boundary it commits; with zero issue in both
	// epochs the tie goes to handling ON, and the still-waiting barrier
	// TB must be rediscovered by the rescan.
	h.policy.Order(0, nil, 403)
	if !h.policy.barrierHandling {
		t.Fatal("tie must commit to handling on")
	}
	if len(h.policy.barrier) != 1 {
		t.Fatal("rescan did not restore the barrierWait TB")
	}
}

// TestVariantsEndToEnd runs every PRO variant on a barrier-heavy kernel
// and checks work conservation against plain PRO.
func TestVariantsEndToEnd(t *testing.T) {
	b := isa.NewBuilder("variant-kernel")
	b.Loop(isa.LoopSpec{Min: 4, Max: 12, Imb: isa.ImbPerWarp})
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced, IterVaries: true})
	b.FFMA(2, 1, 1, 2)
	b.EndLoop()
	b.StShared(2, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.Bar()
	b.LdShared(3, isa.MemSpec{Pattern: isa.PatStrided, Stride: 8})
	b.FAdd(2, 2, 3)
	b.StGlobal(2, isa.MemSpec{Pattern: isa.PatCoalesced, Space: 1})
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.GTX480()
	cfg.NumSMs = 2
	cfg.L2Partitions = 2
	cfg.L2Size = 256 * 1024
	launch := &engine.Launch{Program: prog, GridTBs: 20, BlockThreads: 128, Seed: 11}

	ref, err := gpu.Run(cfg, launch, New(), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]engine.Factory{
		"PRO-nobar":    New(WithoutBarrierHandling()),
		"PRO-adaptive": New(WithAdaptiveBarrierHandling(0, 0)),
		"PRO-norm":     New(WithNormalizedProgress()),
		"LRR-check":    sched.NewLRR,
	}
	for name, f := range variants {
		r, err := gpu.Run(cfg, launch, f, gpu.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.ThreadInstrs != ref.ThreadInstrs {
			t.Errorf("%s executed %d thread-instrs, PRO executed %d",
				name, r.ThreadInstrs, ref.ThreadInstrs)
		}
		if r.Cycles <= 0 {
			t.Errorf("%s: no cycles", name)
		}
	}
}

func TestAdaptiveDeterminism(t *testing.T) {
	b := isa.NewBuilder("adeterm")
	b.IAdd(1, 1, 1)
	b.Bar()
	b.IAdd(2, 2, 2)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.GTX480()
	cfg.NumSMs = 2
	cfg.L2Partitions = 2
	cfg.L2Size = 256 * 1024
	launch := &engine.Launch{Program: prog, GridTBs: 30, BlockThreads: 96, Seed: 4}
	a, err := gpu.Run(cfg, launch, New(WithAdaptiveBarrierHandling(100, 300)), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := gpu.Run(cfg, launch, New(WithAdaptiveBarrierHandling(100, 300)), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b2.Cycles {
		t.Fatalf("adaptive runs diverged: %d vs %d", a.Cycles, b2.Cycles)
	}
}
