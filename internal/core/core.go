package core
