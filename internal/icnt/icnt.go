// Package icnt models the SM↔L2 interconnect as a set of
// bandwidth-limited injection ports with a fixed traversal latency — the
// usual crossbar abstraction for Fermi-class GPUs.
//
// Every SM owns a request-side port and every L2 partition owns a
// response-side port. A packet occupies its injection port for
// ceil(bytes/bytesPerCycle) cycles (serialization), then arrives
// latency cycles later. Control packets (read requests) are small;
// data packets (fills, store data) are line-sized, so the store and fill
// bandwidth of a port is finite and contended — which is what makes
// memory-intensive phases back-pressure the LD/ST units.
package icnt

import "repro/internal/timing"

// Network is the crossbar. Ports 0..numSM-1 are SM injection ports;
// ports numSM..numSM+parts-1 are partition injection ports.
type Network struct {
	wheel         *timing.Wheel
	latency       int64
	bytesPerCycle int
	portFree      []int64

	// Packets and Bytes count injected traffic.
	Packets int64
	Bytes   int64
}

// New builds a network with numSM SM-side and parts partition-side ports.
func New(wheel *timing.Wheel, numSM, parts int, latency int64, bytesPerCycle int) *Network {
	if numSM <= 0 || parts <= 0 || latency < 0 || bytesPerCycle <= 0 {
		panic("icnt: invalid geometry")
	}
	return &Network{
		wheel:         wheel,
		latency:       latency,
		bytesPerCycle: bytesPerCycle,
		portFree:      make([]int64, numSM+parts),
	}
}

// SMPort returns the injection-port id of SM sm.
func (n *Network) SMPort(sm int) int { return sm }

// PartPort returns the injection-port id of partition p, given numSM SMs.
func (n *Network) PartPort(numSM, p int) int { return numSM + p }

// Occupancy returns how many cycles ahead of now port's next free slot is
// — a congestion signal callers may use for back-pressure.
func (n *Network) Occupancy(port int) int64 {
	d := n.portFree[port] - n.wheel.Now()
	if d < 0 {
		return 0
	}
	return d
}

// NextEvent reports the network's contribution to the global next-event
// horizon. The crossbar holds no per-cycle state of its own: every
// in-flight packet is a delivery event already scheduled on the timing
// wheel at injection time, and port occupancy only matters at the next
// Send, which can only come from such an event. The network is therefore
// always "idle" from the clock loop's point of view.
func (n *Network) NextEvent(now int64) (cycle int64, ok bool) { return 0, false }

// Send injects a packet of bytes at port, delivering deliver(cycle) after
// serialization plus traversal latency. Injection begins at the port's
// next free cycle (at least the next cycle). The returned cycle is when
// deliver will fire — observability callers (the flight recorder) use it
// to bound a packet's network leg; timing callers may ignore it.
func (n *Network) Send(port int, bytes int, deliver func(cycle int64)) (deliverAt int64) {
	now := n.wheel.Now()
	start := now + 1
	if n.portFree[port] > start {
		start = n.portFree[port]
	}
	ser := int64((bytes + n.bytesPerCycle - 1) / n.bytesPerCycle)
	if ser < 1 {
		ser = 1
	}
	n.portFree[port] = start + ser
	n.Packets++
	n.Bytes += int64(bytes)
	at := start + ser + n.latency
	n.wheel.Schedule(at, deliver)
	return at
}
