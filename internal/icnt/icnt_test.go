package icnt

import (
	"testing"

	"repro/internal/timing"
)

func TestSingleDeliveryTiming(t *testing.T) {
	w := timing.NewWheel()
	n := New(w, 2, 2, 10, 32)
	var at int64
	n.Send(0, 32, func(c int64) { at = c })
	w.Advance(100)
	// Injection starts at cycle 1, serializes 1 cycle, +10 latency = 12.
	if at != 12 {
		t.Fatalf("delivered at %d, want 12", at)
	}
}

func TestSerializationOfLargePacket(t *testing.T) {
	w := timing.NewWheel()
	n := New(w, 1, 1, 10, 32)
	var at int64
	n.Send(0, 128, func(c int64) { at = c })
	w.Advance(100)
	// 128B at 32B/cycle = 4 cycles: 1+4+10 = 15.
	if at != 15 {
		t.Fatalf("delivered at %d, want 15", at)
	}
}

func TestPortContentionQueues(t *testing.T) {
	w := timing.NewWheel()
	n := New(w, 1, 1, 10, 32)
	var first, second int64
	n.Send(0, 128, func(c int64) { first = c })
	n.Send(0, 128, func(c int64) { second = c })
	w.Advance(100)
	if second-first != 4 {
		t.Fatalf("second packet delivered %d cycles after first, want 4 (serialization)", second-first)
	}
}

func TestIndependentPortsDoNotContend(t *testing.T) {
	w := timing.NewWheel()
	n := New(w, 2, 1, 10, 32)
	var a, b int64
	n.Send(0, 128, func(c int64) { a = c })
	n.Send(1, 128, func(c int64) { b = c })
	w.Advance(100)
	if a != b {
		t.Fatalf("independent ports delivered at %d and %d; want equal", a, b)
	}
}

func TestOccupancySignal(t *testing.T) {
	w := timing.NewWheel()
	n := New(w, 1, 1, 10, 32)
	if n.Occupancy(0) != 0 {
		t.Fatal("fresh port occupied")
	}
	n.Send(0, 320, func(int64) {}) // 10 cycles of serialization
	if occ := n.Occupancy(0); occ != 11 {
		t.Fatalf("occupancy = %d, want 11 (start 1 + 10 serialization)", occ)
	}
}

func TestTrafficCounters(t *testing.T) {
	w := timing.NewWheel()
	n := New(w, 2, 2, 10, 32)
	n.Send(0, 8, func(int64) {})
	n.Send(3, 128, func(int64) {})
	if n.Packets != 2 || n.Bytes != 136 {
		t.Fatalf("counters = (%d, %d), want (2, 136)", n.Packets, n.Bytes)
	}
}

func TestPortIDHelpers(t *testing.T) {
	w := timing.NewWheel()
	n := New(w, 14, 6, 10, 32)
	if n.SMPort(3) != 3 {
		t.Fatal("SMPort wrong")
	}
	if n.PartPort(14, 2) != 16 {
		t.Fatal("PartPort wrong")
	}
}

func TestFIFODeliveryPerPort(t *testing.T) {
	w := timing.NewWheel()
	n := New(w, 1, 1, 0, 32)
	var order []int
	for i := 0; i < 5; i++ {
		id := i
		n.Send(0, 32, func(int64) { order = append(order, id) })
	}
	w.Advance(50)
	for i, id := range order {
		if id != i {
			t.Fatalf("out-of-order delivery: %v", order)
		}
	}
}
