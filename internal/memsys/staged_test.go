package memsys

// Differential tests for the staged DRAM tick (TickStage + TickCommit,
// used by the parallel clock loop to overlap the channel scan with SM
// phase 1) and for the lane drain's reference hygiene. The staged pair
// must be indistinguishable from the classic Tick at every observation
// point — grant timing, completion callbacks, counters and the
// fast-forward horizon — and the heap-tracked horizon must always equal
// a brute-force scan of the channels.

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/timing"
)

func TestStagedTickMatchesSerial(t *testing.T) {
	build := func() (*System, *timing.Wheel) {
		cfg := config.GTX480()
		cfg.NumSMs = 2
		cfg.L2Partitions = 2
		cfg.L2Size = 256 * 1024
		w := timing.NewWheel()
		return New(cfg, w), w
	}
	sa, wa := build()
	sb, wb := build()
	rng := rand.New(rand.NewSource(11))
	var histA, histB []int64 // completion cycles, callback order
	issued := 0
	for c := int64(1); c <= 80000; c++ {
		wa.Advance(c)
		wb.Advance(c)
		sa.Tick(c)
		sb.TickStage(c)
		sb.TickCommit()
		if issued < 300 && rng.Intn(4) == 0 {
			sm := rng.Intn(2)
			// A small line pool forces row hits, row conflicts, MSHR
			// merges and L1/L2 reuse on top of cold misses.
			line := uint64(rng.Intn(256)) << 7
			switch rng.Intn(4) {
			case 0, 1:
				okA := sa.LoadLine(sm, line, func(at int64) { histA = append(histA, at) })
				okB := sb.LoadLine(sm, line, func(at int64) { histB = append(histB, at) })
				if okA != okB {
					t.Fatalf("cycle %d: load accept diverged (%v vs %v)", c, okA, okB)
				}
			case 2:
				if okA, okB := sa.StoreLine(sm, line), sb.StoreLine(sm, line); okA != okB {
					t.Fatalf("cycle %d: store accept diverged", c)
				}
			default:
				okA := sa.AtomicLine(sm, line, func(at int64) { histA = append(histA, at) })
				okB := sb.AtomicLine(sm, line, func(at int64) { histB = append(histB, at) })
				if okA != okB {
					t.Fatalf("cycle %d: atomic accept diverged", c)
				}
			}
			issued++
		}
		na, oka := sa.NextEvent(c)
		nb, okb := sb.NextEvent(c)
		if na != nb || oka != okb {
			t.Fatalf("cycle %d: NextEvent diverged: (%d,%v) vs (%d,%v)", c, na, oka, nb, okb)
		}
		// The WakeHeap-folded horizon must equal a brute-force scan of
		// every channel (the pre-heap implementation).
		bf, okbf := int64(0), false
		for _, ch := range sb.chans {
			if at, ok := ch.NextEvent(c); ok && (!okbf || at < bf) {
				bf, okbf = at, true
			}
		}
		if okb != okbf || (okb && nb != bf) {
			t.Fatalf("cycle %d: heap horizon (%d,%v) != brute force (%d,%v)", c, nb, okb, bf, okbf)
		}
	}
	if issued < 300 {
		t.Fatalf("budget too small: issued only %d transactions", issued)
	}
	if len(histA) != len(histB) {
		t.Fatalf("completions: %d vs %d", len(histA), len(histB))
	}
	for i := range histA {
		if histA[i] != histB[i] {
			t.Fatalf("completion %d: cycle %d vs %d", i, histA[i], histB[i])
		}
	}
	if sa.Stats() != sb.Stats() {
		t.Fatalf("stats diverged:\n%+v\n%+v", sa.Stats(), sb.Stats())
	}
}

// TestLaneDrainClearsReferences pins the fix for the op-buffer retention
// leak: the lane reuses its ops backing array across phases, so every
// drained slot — singleton schedules, batched runs, pre-popped carrier
// slots and the fns scratch — must drop its closure/carrier reference,
// or the warp state those closures capture stays reachable for the rest
// of the run.
func TestLaneDrainClearsReferences(t *testing.T) {
	cfg := config.GTX480()
	cfg.NumSMs = 1
	cfg.L2Partitions = 2
	cfg.L2Size = 256 * 1024
	w := timing.NewWheel()
	s := New(cfg, w)
	l := s.NewLane(0)

	// A batchable run of three, a singleton at another delay, and a
	// load + store for the carrier paths.
	for i := 0; i < 3; i++ {
		l.ScheduleAfter(4, func(int64) {})
	}
	l.ScheduleAfter(9, func(int64) {})
	if !l.LoadLine(0x111<<7, func(int64) {}) {
		t.Fatal("staged load refused")
	}
	if !l.StoreLine(0x222 << 7) {
		t.Fatal("staged store refused")
	}
	n := l.Pending()
	if n < 6 {
		t.Fatalf("staged only %d ops", n)
	}
	l.Drain()
	if l.Pending() != 0 {
		t.Fatalf("lane still holds %d ops after drain", l.Pending())
	}
	for i, op := range l.ops[:n] {
		if op.fn != nil {
			t.Errorf("op slot %d keeps its callback after drain", i)
		}
	}
	for i, fn := range l.fns[:cap(l.fns)] {
		if fn != nil {
			t.Errorf("fns scratch slot %d keeps a callback", i)
		}
	}
	for i, r := range l.reads[:cap(l.reads)] {
		if r != nil {
			t.Errorf("reads scratch slot %d keeps a carrier", i)
		}
	}
	for i, wr := range l.writes[:cap(l.writes)] {
		if wr != nil {
			t.Errorf("writes scratch slot %d keeps a carrier", i)
		}
	}
}
