// Package memsys composes the global-memory hierarchy: per-SM L1 data
// caches with MSHRs, an SM↔L2 interconnect, address-interleaved L2
// partitions with their own MSHRs, and one FR-FCFS DRAM channel per
// partition.
//
// The SM core talks to this package through three line-granular entry
// points — LoadLine, StoreLine, AtomicLine. The SM's LD/ST unit issues
// the coalesced transactions of one warp memory instruction at one line
// per cycle (so an uncoalesced 32-transaction access occupies the unit
// for 32 cycles, as on real hardware); when a line cannot be tracked
// (MSHRs full, store buffer full) the call returns false with no side
// effects and the unit retries it the next cycle — the back-pressure that
// produces pipeline stalls under memory-intensive phases.
package memsys

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/flight"
	"repro/internal/icnt"
	"repro/internal/stats"
	"repro/internal/timing"
)

// readReqBytes is the size of a read-request control packet.
const readReqBytes = 8

// retryDelay is the back-off before re-offering a request refused by a
// full downstream queue.
const retryDelay = 8

// System is the global-memory hierarchy for one GPU.
type System struct {
	cfg    *config.Config
	wheel  *timing.Wheel
	net    *icnt.Network
	l1     []*cache.Cache
	l1mshr []*cache.MSHR
	l2     []*cache.Cache
	l2mshr []*cache.MSHR
	chans  []*dram.Channel

	storesOut []int // per-SM outstanding global stores

	// dramQueued counts requests sitting in channel queues (enqueued but
	// not yet granted). Everything else in the hierarchy is event-driven
	// on the wheel; the DRAM queues are the only state that needs a
	// per-cycle Tick, so when this is zero Tick has nothing to do and the
	// clock loop may skip it entirely.
	dramQueued int
	// TickScans counts Tick calls that actually scanned the channels
	// (i.e. were not skipped as idle) — observable for tests.
	TickScans int64

	// horizons caches each channel's earliest-grantable cycle in a
	// lazy-deletion min-heap, refreshed only when a channel mutates
	// (enqueue or grant). NextEvent then answers from the heap top
	// instead of rescanning every channel queue per clock iteration.
	horizons *timing.WakeHeap

	// Staged-tick state for the overlapped (parallel-phase) DRAM scan:
	// TickStage records at most one grant per channel here, and
	// TickCommit applies them in channel order — the exact order the
	// serial Tick loop would have committed them in.
	granted []*dram.Request
	grantAt []int64
	staged  bool

	// Free lists of pooled request carriers. Each carrier binds its event
	// callbacks once at first allocation, so the steady-state memory path
	// schedules wheel/network events without allocating closures. The
	// pools are per-System and all events of one System fire on one
	// goroutine, so no locking is needed.
	readFree  *readReq
	writeFree *writeReq

	// fl, when non-nil, records each transaction's lifecycle span for
	// the flight recorder. Every site that touches it — span creation in
	// the send helpers, stage stamps in the carrier callbacks and L2
	// handlers — runs on the coordinator goroutine (the lane drain calls
	// the send helpers there even under parallel SM ticking), so the
	// trace needs no locking.
	fl *flight.MemTrace
}

// SetFlight attaches (or, with nil, detaches) the flight recorder's
// memory-side trace.
func (s *System) SetFlight(t *flight.MemTrace) { s.fl = t }

// readReq carries one read (load/atomic) transaction through the
// L2-access → DRAM → response chain. All callback fields close over the
// carrier only, and are created once when the carrier is first built;
// pooled reuse re-points the data fields and keeps the callbacks.
type readReq struct {
	s      *System
	line   uint64
	sm     int
	p      int
	fillL1 bool
	dreq   dram.Request
	next   *readReq // free-list link
	// span, when non-nil, is this transaction's flight-recorder span;
	// the callbacks below stamp its stage timestamps as they fire.
	span *flight.MemSpan

	start     timing.Event // request packet arrived at the partition
	respond   timing.Event // L2 data ready: send response toward the SM
	deliver   timing.Event // response arrived: fill the L1 side, recycle
	dramDone  timing.Event // DRAM service done: fill the L2 side
	retryL2   timing.Event // L2 MSHRs were full: replay the L2 access
	retryDRAM timing.Event // DRAM queue was full: replay the enqueue
}

// popRead takes a carrier off the free list, building one (and binding
// its callbacks) when the list is empty. Pop order is part of the
// determinism contract: the staged-lane drain pre-pops the exact number
// of carriers a drain will consume, in op order, which yields the same
// carrier sequence as the serial loop's pop-per-transaction.
func (s *System) popRead() *readReq {
	r := s.readFree
	if r != nil {
		s.readFree = r.next
		r.next = nil
	} else {
		r = &readReq{s: s}
		r.start = func(cy int64) {
			// First partition arrival stamps the end of the request's
			// network leg; retryL2 replays keep the original arrival so
			// full-MSHR wait attributes to the L2/MSHR component.
			if r.span != nil {
				r.span.L2At = cy
			}
			r.s.l2Read(r)
		}
		r.respond = func(cy int64) {
			sys := r.s
			if r.span != nil {
				r.span.Done = cy
			}
			sys.net.Send(sys.net.PartPort(sys.cfg.NumSMs, r.p), sys.cfg.L1Line, r.deliver)
		}
		r.deliver = func(cy int64) {
			sys := r.s
			if r.span != nil {
				sp := r.span
				r.span = nil
				sp.Deliver = cy
				// The L1 MSHR entry this fill is about to clear tracks
				// every same-line request that merged behind this one —
				// their whole wait is MSHR-merge wait.
				if n := sys.l1mshr[r.sm].Waiters(r.line); n > 1 {
					sp.Merged = int32(n - 1)
				}
				sys.fl.Commit(sp)
			}
			if r.fillL1 {
				sys.l1[r.sm].Fill(r.line)
			}
			sys.l1mshr[r.sm].Fill(r.line, cy)
			sys.putRead(r)
		}
		r.dramDone = func(cy int64) {
			sys := r.s
			sys.l2[r.p].Fill(r.line)
			sys.l2mshr[r.p].Fill(r.line, cy)
		}
		r.retryL2 = func(int64) { r.s.l2Read(r) }
		r.retryDRAM = func(int64) { r.s.enqueueDRAM(r.p, &r.dreq, r.retryDRAM) }
	}
	return r
}

// initRead points a pooled carrier at a concrete transaction. The dreq
// literal also clears the previous use's Span; the span pointer itself
// is re-armed (or left nil) by traceRead.
func (s *System) initRead(r *readReq, sm int, line uint64, fillL1 bool) {
	r.sm, r.line, r.fillL1 = sm, line, fillL1
	r.p = s.partition(line)
	r.span = nil
	r.dreq = dram.Request{Line: line, Done: r.dramDone}
}

func (s *System) getRead(sm int, line uint64, fillL1 bool) *readReq {
	r := s.popRead()
	s.initRead(r, sm, line, fillL1)
	return r
}

// putRead recycles a completed carrier. Called from deliver, after which
// nothing in the hierarchy references it: the DRAM request (if any) was
// consumed, the L2 MSHR entry was cleared by Fill, and the network has
// delivered the response.
func (s *System) putRead(r *readReq) {
	r.next = s.readFree
	s.readFree = r
}

// writeReq carries one store transaction through interconnect → L2 →
// DRAM. Same pooling scheme as readReq.
type writeReq struct {
	s    *System
	line uint64
	sm   int
	p    int
	dreq dram.Request
	next *writeReq
	span *flight.MemSpan

	start     timing.Event // store packet arrived at the partition
	release   timing.Event // store complete: free the buffer slot, recycle
	retryDRAM timing.Event
}

// popWrite is popRead's store-side counterpart (same pooling and pop
// order contract).
func (s *System) popWrite() *writeReq {
	r := s.writeFree
	if r != nil {
		s.writeFree = r.next
		r.next = nil
	} else {
		r = &writeReq{s: s}
		r.start = func(cy int64) {
			if r.span != nil {
				r.span.L2At = cy
			}
			r.s.l2Write(r)
		}
		r.release = func(cy int64) {
			sys := r.s
			if r.span != nil {
				sp := r.span
				r.span = nil
				// Stores are fire-and-forget: the span ends when the
				// write completes downstream, with no response leg.
				sp.Done, sp.Deliver = cy, cy
				sys.fl.Commit(sp)
			}
			sys.storesOut[r.sm]--
			r.next = sys.writeFree
			sys.writeFree = r
		}
		r.retryDRAM = func(int64) { r.s.enqueueDRAM(r.p, &r.dreq, r.retryDRAM) }
	}
	return r
}

// initWrite points a pooled carrier at a concrete store transaction.
func (s *System) initWrite(r *writeReq, sm int, line uint64) {
	r.sm, r.line = sm, line
	r.p = s.partition(line)
	r.span = nil
	r.dreq = dram.Request{Line: line, Write: true, Done: r.release}
}

func (s *System) getWrite(sm int, line uint64) *writeReq {
	r := s.popWrite()
	s.initWrite(r, sm, line)
	return r
}

// New builds the hierarchy described by cfg, scheduling all latencies on
// wheel. cfg must already be validated.
func New(cfg *config.Config, wheel *timing.Wheel) *System {
	s := &System{
		cfg:       cfg,
		wheel:     wheel,
		net:       icnt.New(wheel, cfg.NumSMs, cfg.L2Partitions, int64(cfg.IcntLatency), cfg.IcntBytesPerCycle),
		l1:        make([]*cache.Cache, cfg.NumSMs),
		l1mshr:    make([]*cache.MSHR, cfg.NumSMs),
		l2:        make([]*cache.Cache, cfg.L2Partitions),
		l2mshr:    make([]*cache.MSHR, cfg.L2Partitions),
		chans:     make([]*dram.Channel, cfg.L2Partitions),
		storesOut: make([]int, cfg.NumSMs),
		horizons:  timing.NewWakeHeap(cfg.L2Partitions),
		granted:   make([]*dram.Request, cfg.L2Partitions),
		grantAt:   make([]int64, cfg.L2Partitions),
	}
	for i := range s.l1 {
		s.l1[i] = cache.MustNew(cfg.L1Size, cfg.L1Assoc, cfg.L1Line)
		s.l1mshr[i] = cache.NewMSHR(cfg.L1MSHRs, cfg.L1Merges)
	}
	partSize := cfg.L2Size / cfg.L2Partitions
	for p := range s.l2 {
		s.l2[p] = cache.MustNew(partSize, cfg.L2Assoc, cfg.L1Line)
		// L2 MSHRs: give each partition the same tracking capacity as one
		// SM's L1, with generous merging (requests from all 14 SMs can
		// collapse onto hot lines).
		s.l2mshr[p] = cache.NewMSHR(cfg.L1MSHRs, cfg.NumSMs*cfg.L1Merges)
		s.chans[p] = dram.NewChannel(cfg.DRAMBanksPerChannel, uint64(cfg.DRAMRowBytes),
			int64(cfg.DRAMRowHit), int64(cfg.DRAMRowMiss), cfg.DRAMQueueDepth)
	}
	return s
}

// partition maps a line address to its L2 partition (line interleaving).
func (s *System) partition(line uint64) int {
	return int((line / uint64(s.cfg.L1Line)) % uint64(s.cfg.L2Partitions))
}

// Tick performs one DRAM arbitration step per channel. Call once per core
// cycle after the timing wheel has advanced to that cycle. With no
// requests queued at any channel it returns immediately without touching
// the channels.
func (s *System) Tick(cycle int64) {
	if s.dramQueued == 0 {
		return
	}
	s.TickScans++
	for p, ch := range s.chans {
		if r, doneAt := ch.Tick(cycle); r != nil {
			s.commitGrant(p, r, doneAt)
		}
	}
}

// TickStage is the arbitration half of Tick, safe to run concurrently
// with staged SM ticks: it scans every channel (each channel's queue,
// bank and row state is private to this call) and records the grants
// without touching the timing wheel or any other shared structure.
// TickCommit must follow on the coordinator goroutine before any wheel
// event can fire. The split lets the clock loop overlap the DRAM scan
// with phase 1 of the parallel SM tick (DESIGN.md §12.5).
func (s *System) TickStage(cycle int64) {
	if s.dramQueued == 0 {
		return
	}
	s.TickScans++
	s.staged = true
	for p, ch := range s.chans {
		s.granted[p], s.grantAt[p] = ch.Tick(cycle)
	}
}

// TickCommit applies the grants recorded by the last TickStage in
// channel order — exactly the order the serial Tick loop interleaves
// its wheel schedules in — and clears the staging buffer.
func (s *System) TickCommit() {
	if !s.staged {
		return
	}
	s.staged = false
	for p, r := range s.granted {
		if r == nil {
			continue
		}
		s.granted[p] = nil
		s.commitGrant(p, r, s.grantAt[p])
	}
}

// commitGrant applies one channel grant's shared effects: the queue
// count, the completion event, and the channel's refreshed horizon.
func (s *System) commitGrant(p int, r *dram.Request, doneAt int64) {
	s.dramQueued--
	if r.Done != nil {
		s.wheel.Schedule(doneAt, r.Done)
	}
	s.refreshHorizon(p)
}

// refreshHorizon re-mirrors channel p's earliest-grantable cycle into
// the horizon heap. Called only when the channel mutates (enqueue or
// grant), so the per-mutation queue walk replaces a per-clock-iteration
// walk of every channel in NextEvent.
func (s *System) refreshHorizon(p int) {
	at, ok := s.chans[p].Horizon()
	if !ok {
		s.horizons.Clear(p)
		return
	}
	if at < 1 {
		// Bank already free (possibly since cycle 0); WakeHeap treats 0
		// as "disarmed", so clamp — NextEvent clamps to now+1 anyway.
		at = 1
	}
	s.horizons.Set(p, at)
}

// NextEvent returns the earliest cycle strictly after now at which Tick
// could grant a DRAM request, or ok=false when no channel has queued
// work. All other memory-system activity (cache fills, interconnect
// traversal, MSHR responses, retries) is scheduled on the timing wheel
// and is therefore covered by the wheel's own NextEvent. The answer
// comes from the horizon heap maintained by refreshHorizon, so the call
// is O(1) amortized instead of a scan over every channel queue.
func (s *System) NextEvent(now int64) (cycle int64, ok bool) {
	if s.dramQueued == 0 {
		return 0, false
	}
	at, ok := s.horizons.Min()
	if !ok {
		return 0, false
	}
	if at <= now {
		at = now + 1
	}
	return at, true
}

// effects is the sink for the shared side effects of one SM-facing
// transaction. The accept/refuse decision of each entry point depends
// only on per-SM state (l1[sm], l1mshr[sm], storesOut[sm]); everything
// that touches shared structures — the timing wheel, the interconnect,
// the pooled request carriers — goes through this interface. *System
// applies them immediately (the serial path); *Lane records them for a
// later in-order drain (the parallel SM-tick path). Keeping one
// decision core for both guarantees the two modes accept exactly the
// same transactions.
type effects interface {
	schedule(delay int64, fn timing.Event)
	read(sm int, line uint64, fillL1 bool)
	write(sm int, line uint64)
}

func (s *System) schedule(delay int64, fn timing.Event) { s.wheel.ScheduleAfter(delay, fn) }
func (s *System) read(sm int, line uint64, fillL1 bool) { s.sendRead(sm, line, fillL1) }
func (s *System) write(sm int, line uint64)             { s.sendWrite(sm, line) }

// LoadLine issues one load transaction from SM sm for the line-aligned
// address line. It returns false without side effects when the L1 MSHRs
// cannot track the miss this cycle; when accepted, done fires once, at
// the cycle the line's data is available in the SM.
func (s *System) LoadLine(sm int, line uint64, done func(cycle int64)) bool {
	return s.loadLine(sm, line, done, s)
}

func (s *System) loadLine(sm int, line uint64, done timing.Event, fx effects) bool {
	if s.l1[sm].Access(line) {
		fx.schedule(int64(s.cfg.L1HitLatency), done)
		return true
	}
	switch s.l1mshr[sm].Add(line, done) {
	case cache.Allocated:
		fx.read(sm, line, true)
		return true
	case cache.Merged:
		// The in-flight fill will wake us; no downstream traffic.
		return true
	default: // Refused: MSHRs full, retry later.
		// Undo the miss that Access counted? No: real hardware also
		// re-probes on replay; counting each attempt would inflate the
		// miss rate, so compensate here.
		s.l1[sm].Accesses--
		s.l1[sm].Misses--
		return false
	}
}

// AtomicLine issues one global-atomic transaction. Atomics bypass the L1
// (no lookup, no fill) and are resolved at the L2 partition; timing-wise
// the line behaves like an L1 miss whose response does not allocate in
// L1. Tracking shares the L1 MSHR file, bounding outstanding requests.
func (s *System) AtomicLine(sm int, line uint64, done func(cycle int64)) bool {
	return s.atomicLine(sm, line, done, s)
}

func (s *System) atomicLine(sm int, line uint64, done timing.Event, fx effects) bool {
	switch s.l1mshr[sm].Add(line, done) {
	case cache.Allocated:
		fx.read(sm, line, false)
		return true
	case cache.Merged:
		return true
	default:
		return false
	}
}

// StoreLine issues one store transaction. Stores are write-through
// no-allocate with write-evict at L1 (GPGPU-Sim's Fermi global-store
// policy): the L1 copy is invalidated and a line-sized data packet
// contends for interconnect bandwidth. The warp does not wait, but the
// per-SM store buffer bounds outstanding store lines; a full buffer
// refuses the transaction (replay → pipeline stall).
func (s *System) StoreLine(sm int, line uint64) bool {
	return s.storeLine(sm, line, s)
}

func (s *System) storeLine(sm int, line uint64, fx effects) bool {
	if s.storesOut[sm] >= s.cfg.StoreBufferPerSM {
		return false
	}
	s.storesOut[sm]++
	s.l1[sm].Invalidate(line)
	fx.write(sm, line)
	return true
}

// traceRead starts a flight span for an accepted read transaction (no-op
// without a recorder, nil-span under sampling). Called after initRead,
// before the network injection, so Inject and the port backlog reflect
// the injection decision point.
func (s *System) traceRead(r *readReq) {
	if s.fl == nil {
		return
	}
	kind := flight.SpanLoad
	if !r.fillL1 {
		kind = flight.SpanAtomic
	}
	r.span = s.fl.Start(kind, r.sm, r.p, r.line, s.wheel.Now(), s.net.Occupancy(s.net.SMPort(r.sm)))
	r.dreq.Span = r.span
}

// traceWrite is traceRead's store-side counterpart.
func (s *System) traceWrite(r *writeReq) {
	if s.fl == nil {
		return
	}
	r.span = s.fl.Start(flight.SpanStore, r.sm, r.p, r.line, s.wheel.Now(), s.net.Occupancy(s.net.SMPort(r.sm)))
	r.dreq.Span = r.span
}

// sendRead injects a read-request packet; fillL1 marks whether the
// response should allocate in the SM's L1.
func (s *System) sendRead(sm int, line uint64, fillL1 bool) {
	r := s.getRead(sm, line, fillL1)
	s.traceRead(r)
	s.net.Send(s.net.SMPort(sm), readReqBytes, r.start)
}

// sendWrite injects a line-sized store data packet.
func (s *System) sendWrite(sm int, line uint64) {
	r := s.getWrite(sm, line)
	s.traceWrite(r)
	s.net.Send(s.net.SMPort(sm), s.cfg.L1Line, r.start)
}

// sendReadCarrier is sendRead with the carrier already popped (the lane
// drain's batched acquisition pass pops its carriers up front).
func (s *System) sendReadCarrier(r *readReq, sm int, line uint64, fillL1 bool) {
	s.initRead(r, sm, line, fillL1)
	s.traceRead(r)
	s.net.Send(s.net.SMPort(sm), readReqBytes, r.start)
}

// sendWriteCarrier is sendWrite with the carrier already popped.
func (s *System) sendWriteCarrier(r *writeReq, sm int, line uint64) {
	s.initWrite(r, sm, line)
	s.traceWrite(r)
	s.net.Send(s.net.SMPort(sm), s.cfg.L1Line, r.start)
}

// l2Read handles a read request arriving at line's partition.
func (s *System) l2Read(r *readReq) {
	if s.l2[r.p].Access(r.line) {
		if r.span != nil {
			r.span.L2Hit = true
		}
		s.wheel.ScheduleAfter(int64(s.cfg.L2HitLatency), r.respond)
		return
	}
	switch s.l2mshr[r.p].Add(r.line, r.respond) {
	case cache.Allocated:
		s.enqueueDRAM(r.p, &r.dreq, r.retryDRAM)
	case cache.Merged:
		if r.span != nil {
			r.span.L2Merged = true
		}
	case cache.Refused:
		// L2 MSHRs full: retry the whole L2 access later. The L1-side MSHR
		// entry stays allocated meanwhile, so the SM sees a longer miss.
		if r.span != nil {
			r.span.Retries++
		}
		s.wheel.ScheduleAfter(retryDelay, r.retryL2)
	}
}

// l2Write handles a store arriving at line's partition: L2 write hit
// updates in place; a miss forwards to DRAM without allocating.
func (s *System) l2Write(r *writeReq) {
	if s.l2[r.p].Access(r.line) {
		if r.span != nil {
			r.span.L2Hit = true
		}
		s.wheel.ScheduleAfter(int64(s.cfg.L2HitLatency), r.release)
		return
	}
	s.enqueueDRAM(r.p, &r.dreq, r.retryDRAM)
}

// enqueueDRAM offers a request to partition p's channel, retrying on a
// full queue via the caller's pre-bound retry event.
func (s *System) enqueueDRAM(p int, r *dram.Request, retry timing.Event) {
	if !s.chans[p].Enqueue(r) {
		if r.Span != nil {
			r.Span.Retries++
		}
		s.wheel.ScheduleAfter(retryDelay, retry)
		return
	}
	if r.Span != nil {
		r.Span.DRAMq = s.wheel.Now()
	}
	s.dramQueued++
	s.refreshHorizon(p)
}

// OutstandingStores returns SM sm's store-buffer occupancy (for tests).
func (s *System) OutstandingStores(sm int) int { return s.storesOut[sm] }

// QueuedDRAM returns the number of requests waiting in channel queues —
// the predicate for whether a Tick (or TickStage) will actually scan.
// The clock loop reads it for the memsys-parallel telemetry counter.
func (s *System) QueuedDRAM() int { return s.dramQueued }

// Stats sums the hierarchy's counters.
func (s *System) Stats() stats.MemStats {
	var m stats.MemStats
	for _, c := range s.l1 {
		m.L1Accesses += c.Accesses
		m.L1Misses += c.Misses
	}
	for _, c := range s.l2 {
		m.L2Accesses += c.Accesses
		m.L2Misses += c.Misses
	}
	for _, ch := range s.chans {
		m.DRAMReqs += ch.Reqs
		m.DRAMRowHits += ch.RowHits
	}
	return m
}

// Drained reports whether no memory activity remains (for watchdogs; the
// timing wheel's pending count covers in-flight latencies).
func (s *System) Drained(cycle int64) bool {
	for _, ch := range s.chans {
		if ch.Busy(cycle) {
			return false
		}
	}
	for _, m := range s.l1mshr {
		if m.InFlight() > 0 {
			return false
		}
	}
	for _, m := range s.l2mshr {
		if m.InFlight() > 0 {
			return false
		}
	}
	for _, n := range s.storesOut {
		if n > 0 {
			return false
		}
	}
	return true
}
