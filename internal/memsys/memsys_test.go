package memsys

import (
	"testing"

	"repro/internal/config"
	"repro/internal/timing"
)

func testSystem() (*System, *timing.Wheel, *config.Config) {
	cfg := config.GTX480()
	cfg.NumSMs = 2
	cfg.L2Partitions = 2
	cfg.L2Size = 256 * 1024
	w := timing.NewWheel()
	return New(cfg, w), w, cfg
}

// runUntil advances the wheel in single cycles, ticking DRAM, until cond
// or the cycle budget runs out; returns the final cycle.
func runUntil(s *System, w *timing.Wheel, budget int64, cond func() bool) int64 {
	for c := w.Now() + 1; c < w.Now()+budget; c++ {
		w.Advance(c)
		s.Tick(c)
		if cond() {
			return c
		}
	}
	return -1
}

func TestLoadMissGoesThroughHierarchyAndFills(t *testing.T) {
	s, w, cfg := testSystem()
	var doneAt int64 = -1
	if !s.LoadLine(0, 0x1000<<7, func(c int64) { doneAt = c }) {
		t.Fatal("cold load refused")
	}
	end := runUntil(s, w, 100000, func() bool { return doneAt >= 0 })
	if end < 0 {
		t.Fatal("load never completed")
	}
	// Must be a long-latency path: icnt out + L2 + DRAM + icnt back.
	if doneAt < int64(cfg.IcntLatency*2) {
		t.Fatalf("miss completed suspiciously fast: %d", doneAt)
	}
	m := s.Stats()
	if m.L1Misses != 1 || m.L2Misses != 1 || m.DRAMReqs != 1 {
		t.Fatalf("counters: %+v", m)
	}
}

func TestLoadHitAfterFillIsFast(t *testing.T) {
	s, w, cfg := testSystem()
	line := uint64(0x2000) << 7
	done := false
	s.LoadLine(0, line, func(int64) { done = true })
	runUntil(s, w, 100000, func() bool { return done })

	var hitAt int64 = -1
	issued := w.Now()
	if !s.LoadLine(0, line, func(c int64) { hitAt = c }) {
		t.Fatal("hit refused")
	}
	runUntil(s, w, 1000, func() bool { return hitAt >= 0 })
	if hitAt-issued != int64(cfg.L1HitLatency) {
		t.Fatalf("hit latency %d, want %d", hitAt-issued, cfg.L1HitLatency)
	}
	m := s.Stats()
	if m.L1Misses != 1 || m.L1Accesses != 2 {
		t.Fatalf("counters after hit: %+v", m)
	}
}

func TestMSHRMergingAvoidsDuplicateTraffic(t *testing.T) {
	s, w, _ := testSystem()
	line := uint64(0x3000) << 7
	completions := 0
	s.LoadLine(0, line, func(int64) { completions++ })
	s.LoadLine(0, line, func(int64) { completions++ })
	runUntil(s, w, 100000, func() bool { return completions == 2 })
	if completions != 2 {
		t.Fatal("merged waiters not all woken")
	}
	m := s.Stats()
	if m.DRAMReqs != 1 {
		t.Fatalf("merged miss sent %d DRAM requests, want 1", m.DRAMReqs)
	}
}

func TestCrossSMSharingHitsInL2(t *testing.T) {
	s, w, _ := testSystem()
	line := uint64(0x4000) << 7
	done := false
	s.LoadLine(0, line, func(int64) { done = true })
	runUntil(s, w, 100000, func() bool { return done })
	// SM 1 misses its own L1 but must hit L2: no new DRAM request.
	done = false
	s.LoadLine(1, line, func(int64) { done = true })
	runUntil(s, w, 100000, func() bool { return done })
	m := s.Stats()
	if m.DRAMReqs != 1 {
		t.Fatalf("L2 shared hit went to DRAM: %d reqs", m.DRAMReqs)
	}
	if m.L2Accesses != 2 || m.L2Misses != 1 {
		t.Fatalf("L2 counters: %+v", m)
	}
}

func TestMSHRExhaustionRefusesAndRecovers(t *testing.T) {
	s, w, cfg := testSystem()
	outstanding := 0
	accepted := 0
	for i := 0; ; i++ {
		ok := s.LoadLine(0, uint64(0x5000+i)<<7, func(int64) { outstanding-- })
		if !ok {
			break
		}
		outstanding++
		accepted++
		if accepted > cfg.L1MSHRs {
			t.Fatalf("accepted %d distinct misses with %d MSHRs", accepted, cfg.L1MSHRs)
		}
	}
	if accepted != cfg.L1MSHRs {
		t.Fatalf("accepted %d, want exactly %d", accepted, cfg.L1MSHRs)
	}
	runUntil(s, w, 200000, func() bool { return outstanding == 0 })
	if outstanding != 0 {
		t.Fatal("some misses never completed")
	}
	if !s.LoadLine(0, uint64(0x9000)<<7, func(int64) {}) {
		t.Fatal("MSHRs did not recover after drain")
	}
}

func TestStoreBufferBoundsOutstandingStores(t *testing.T) {
	s, w, cfg := testSystem()
	accepted := 0
	for i := 0; ; i++ {
		if !s.StoreLine(0, uint64(0xA000+i)<<7) {
			break
		}
		accepted++
		if accepted > cfg.StoreBufferPerSM {
			t.Fatalf("store buffer overflowed: %d", accepted)
		}
	}
	if accepted != cfg.StoreBufferPerSM {
		t.Fatalf("accepted %d stores, want %d", accepted, cfg.StoreBufferPerSM)
	}
	end := runUntil(s, w, 400000, func() bool { return s.OutstandingStores(0) == 0 })
	if end < 0 {
		t.Fatal("stores never drained")
	}
	if !s.StoreLine(0, uint64(0xB000)<<7) {
		t.Fatal("store buffer did not recover")
	}
}

func TestStoreEvictsL1Copy(t *testing.T) {
	s, w, _ := testSystem()
	line := uint64(0xC000) << 7
	done := false
	s.LoadLine(0, line, func(int64) { done = true })
	runUntil(s, w, 100000, func() bool { return done })
	s.StoreLine(0, line)
	// Next load must miss L1 (write-evict policy).
	before := s.Stats().L1Misses
	done = false
	s.LoadLine(0, line, func(int64) { done = true })
	runUntil(s, w, 100000, func() bool { return done })
	if s.Stats().L1Misses != before+1 {
		t.Fatal("store did not evict the L1 copy")
	}
}

func TestAtomicBypassesL1(t *testing.T) {
	s, w, _ := testSystem()
	line := uint64(0xD000) << 7
	done := false
	s.AtomicLine(0, line, func(int64) { done = true })
	runUntil(s, w, 100000, func() bool { return done })
	// The atomic's response must not have filled L1: a subsequent load
	// misses.
	missesBefore := s.Stats().L1Misses
	done = false
	s.LoadLine(0, line, func(int64) { done = true })
	runUntil(s, w, 100000, func() bool { return done })
	if s.Stats().L1Misses != missesBefore+1 {
		t.Fatal("atomic response filled L1")
	}
}

func TestDrainedReflectsActivity(t *testing.T) {
	s, w, _ := testSystem()
	if !s.Drained(0) {
		t.Fatal("fresh system not drained")
	}
	done := false
	s.LoadLine(0, 0xE000<<7, func(int64) { done = true })
	if s.Drained(w.Now()) {
		t.Fatal("system with in-flight load reports drained")
	}
	runUntil(s, w, 100000, func() bool { return done })
	// Let the wheel settle any trailing events.
	runUntil(s, w, 1000, func() bool { return w.Pending() == 0 })
	if !s.Drained(w.Now()) {
		t.Fatal("system not drained after completion")
	}
}

func TestPartitionInterleavingSpreadsLines(t *testing.T) {
	s, _, cfg := testSystem()
	counts := make([]int, cfg.L2Partitions)
	for i := 0; i < 64; i++ {
		counts[s.partition(uint64(i)*uint64(cfg.L1Line))]++
	}
	for p, c := range counts {
		if c != 64/cfg.L2Partitions {
			t.Fatalf("partition %d got %d of 64 lines", p, c)
		}
	}
}

func TestRowLocalityImprovesDRAM(t *testing.T) {
	// Sequential lines within one DRAM row should mostly row-hit;
	// lines scattered across rows should not.
	seq, wA, _ := testSystem()
	doneA := 0
	for i := 0; i < 16; i++ {
		// Same partition (stride = L1Line*partitions), same bank region.
		seq.LoadLine(0, uint64(i)*128*2, func(int64) { doneA++ })
	}
	runUntil(seq, wA, 400000, func() bool { return doneA == 16 })
	mA := seq.Stats()

	scat, wB, _ := testSystem()
	doneB := 0
	for i := 0; i < 16; i++ {
		scat.LoadLine(0, uint64(i)*(1<<21), func(int64) { doneB++ })
	}
	runUntil(scat, wB, 400000, func() bool { return doneB == 16 })
	mB := scat.Stats()

	if mA.DRAMRowHits <= mB.DRAMRowHits {
		t.Fatalf("sequential row hits %d not above scattered %d", mA.DRAMRowHits, mB.DRAMRowHits)
	}
}

// TestIdleSystemDoesNoTickWork checks the fast-forward bookkeeping that
// makes skipping idle memory cycles free: Tick is a no-op (no channel
// scan) unless DRAM work is queued, and NextEvent reports no horizon at
// all while the system is idle.
func TestIdleSystemDoesNoTickWork(t *testing.T) {
	s, w, _ := testSystem()
	// tickFor advances exactly n cycles regardless of activity (runUntil
	// requires its condition to eventually hold).
	tickFor := func(n int64) {
		end := w.Now() + n
		for c := w.Now() + 1; c <= end; c++ {
			w.Advance(c)
			s.Tick(c)
		}
	}
	if _, ok := s.NextEvent(w.Now()); ok {
		t.Fatal("idle system reported a DRAM horizon")
	}
	tickFor(1000)
	if s.TickScans != 0 {
		t.Fatalf("idle system scanned channels %d times, want 0", s.TickScans)
	}

	// A missing line must reach DRAM and make the scans start.
	var done bool
	if !s.LoadLine(0, 0x9000<<7, func(int64) { done = true }) {
		t.Fatal("LoadLine refused on idle system")
	}
	runUntil(s, w, 100000, func() bool { return done })
	if !done {
		t.Fatal("load never completed")
	}
	busy := s.TickScans
	if busy == 0 {
		t.Fatal("in-flight DRAM request caused no channel scans")
	}

	// Drained again: scans stop and the horizon disappears.
	tickFor(1000)
	if s.TickScans != busy {
		t.Fatalf("drained system kept scanning: %d -> %d", busy, s.TickScans)
	}
	if _, ok := s.NextEvent(w.Now()); ok {
		t.Fatal("drained system reported a DRAM horizon")
	}
}
