package memsys

import "repro/internal/timing"

// Lane is one SM's staging buffer for the parallel-tick path. During a
// parallel phase each SM issues its memory transactions through its own
// Lane instead of the System directly: the accept/refuse decision runs
// immediately (it reads and writes only that SM's slice of the
// hierarchy — L1, L1 MSHRs, store-buffer count — so concurrent lanes
// never touch the same state), while every shared side effect is
// recorded as a laneOp. Draining the lanes in SM-ID order afterwards
// replays those effects in exactly the order the serial loop would
// have produced them: the serial loop ticks SMs in ID order, and
// within one SM the lane preserves program order across effect kinds.
// Timing-wheel bucket FIFO order, interconnect port state and carrier
// pool order therefore end up bit-identical to a serial run.
//
// A Lane belongs to one SM and one goroutine at a time; Drain must run
// on the coordinator goroutine after all concurrent ticks have joined.
type Lane struct {
	s   *System
	sm  int
	ops []laneOp
}

type laneKind uint8

const (
	laneSchedule laneKind = iota // wheel.ScheduleAfter(delay, fn)
	laneReadFill                 // sendRead(sm, line, fillL1=true)
	laneReadRaw                  // sendRead(sm, line, fillL1=false)
	laneWrite                    // sendWrite(sm, line)
)

// laneOp is one staged shared side effect. One struct covers all kinds
// so the buffer stays a flat reusable slice (no per-op allocation).
type laneOp struct {
	fn    timing.Event // laneSchedule only
	line  uint64       // reads / writes
	delay int64        // laneSchedule only
	kind  laneKind
}

// laneSeed is the initial op capacity. An SM issues at most one global
// memory transaction per cycle plus a handful of wheel schedules, so a
// lane rarely holds more than a few ops per phase.
const laneSeed = 8

// NewLane returns a staging lane for SM sm.
func (s *System) NewLane(sm int) *Lane {
	return &Lane{s: s, sm: sm, ops: make([]laneOp, 0, laneSeed)}
}

// SM returns the owning SM's ID (lanes are drained in this order).
func (l *Lane) SM() int { return l.sm }

// Pending returns the number of staged, undrained effects.
func (l *Lane) Pending() int { return len(l.ops) }

// LoadLine is System.LoadLine with shared side effects staged.
func (l *Lane) LoadLine(line uint64, done func(cycle int64)) bool {
	return l.s.loadLine(l.sm, line, done, l)
}

// AtomicLine is System.AtomicLine with shared side effects staged.
func (l *Lane) AtomicLine(line uint64, done func(cycle int64)) bool {
	return l.s.atomicLine(l.sm, line, done, l)
}

// StoreLine is System.StoreLine with shared side effects staged.
func (l *Lane) StoreLine(line uint64) bool {
	return l.s.storeLine(l.sm, line, l)
}

// ScheduleAfter stages a timing-wheel schedule. The engine routes every
// wheel schedule reachable from a concurrent SM.Tick (i-buffer refetch,
// SFU completion) through this so the wheel's bucket append order stays
// serial.
func (l *Lane) ScheduleAfter(delay int64, fn timing.Event) {
	l.ops = append(l.ops, laneOp{kind: laneSchedule, delay: delay, fn: fn})
}

func (l *Lane) schedule(delay int64, fn timing.Event) { l.ScheduleAfter(delay, fn) }

func (l *Lane) read(sm int, line uint64, fillL1 bool) {
	kind := laneReadRaw
	if fillL1 {
		kind = laneReadFill
	}
	l.ops = append(l.ops, laneOp{kind: kind, line: line})
}

func (l *Lane) write(sm int, line uint64) {
	l.ops = append(l.ops, laneOp{kind: laneWrite, line: line})
}

// Drain applies the staged effects in staging order and empties the
// lane. Carrier acquisition (getRead/getWrite) happens here, not at
// staging time, so the shared free lists are only ever touched by the
// coordinator goroutine — and pool pop order matches the serial loop's.
func (l *Lane) Drain() {
	s := l.s
	for i := range l.ops {
		op := &l.ops[i]
		switch op.kind {
		case laneSchedule:
			s.wheel.ScheduleAfter(op.delay, op.fn)
		case laneReadFill:
			s.sendRead(l.sm, op.line, true)
		case laneReadRaw:
			s.sendRead(l.sm, op.line, false)
		case laneWrite:
			s.sendWrite(l.sm, op.line)
		}
		op.fn = nil // drop the callback reference until the slot is reused
	}
	l.ops = l.ops[:0]
}
