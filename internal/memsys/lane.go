package memsys

import "repro/internal/timing"

// Lane is one SM's staging buffer for the parallel-tick path. During a
// parallel phase each SM issues its memory transactions through its own
// Lane instead of the System directly: the accept/refuse decision runs
// immediately (it reads and writes only that SM's slice of the
// hierarchy — L1, L1 MSHRs, store-buffer count — so concurrent lanes
// never touch the same state), while every shared side effect is
// recorded as a laneOp. Draining the lanes in SM-ID order afterwards
// replays those effects in exactly the order the serial loop would
// have produced them: the serial loop ticks SMs in ID order, and
// within one SM the lane preserves program order across effect kinds.
// Timing-wheel bucket FIFO order, interconnect port state and carrier
// pool order therefore end up bit-identical to a serial run.
//
// A Lane belongs to one SM and one goroutine at a time; Drain must run
// on the coordinator goroutine after all concurrent ticks have joined.
type Lane struct {
	s   *System
	sm  int
	ops []laneOp

	// Drain-time scratch, reused across phases: fns collects a run of
	// same-cycle schedule callbacks for one ScheduleBatch slab append;
	// reads/writes hold the carriers pre-popped for this drain.
	fns    []timing.Event
	reads  []*readReq
	writes []*writeReq
}

type laneKind uint8

const (
	laneSchedule laneKind = iota // wheel.ScheduleAfter(delay, fn)
	laneReadFill                 // sendRead(sm, line, fillL1=true)
	laneReadRaw                  // sendRead(sm, line, fillL1=false)
	laneWrite                    // sendWrite(sm, line)
)

// laneOp is one staged shared side effect. One struct covers all kinds
// so the buffer stays a flat reusable slice (no per-op allocation).
type laneOp struct {
	fn    timing.Event // laneSchedule only
	line  uint64       // reads / writes
	delay int64        // laneSchedule only
	kind  laneKind
}

// laneSeed is the initial op capacity. An SM issues at most one global
// memory transaction per cycle plus a handful of wheel schedules, so a
// lane rarely holds more than a few ops per phase.
const laneSeed = 8

// NewLane returns a staging lane for SM sm.
func (s *System) NewLane(sm int) *Lane {
	return &Lane{s: s, sm: sm, ops: make([]laneOp, 0, laneSeed)}
}

// SM returns the owning SM's ID (lanes are drained in this order).
func (l *Lane) SM() int { return l.sm }

// Pending returns the number of staged, undrained effects. The clock
// loop reads it just before Drain to feed the commit-phase telemetry
// (lane batch sizes in the heartbeat, sim_lane_batch_size histogram).
func (l *Lane) Pending() int { return len(l.ops) }

// LoadLine is System.LoadLine with shared side effects staged.
func (l *Lane) LoadLine(line uint64, done func(cycle int64)) bool {
	return l.s.loadLine(l.sm, line, done, l)
}

// AtomicLine is System.AtomicLine with shared side effects staged.
func (l *Lane) AtomicLine(line uint64, done func(cycle int64)) bool {
	return l.s.atomicLine(l.sm, line, done, l)
}

// StoreLine is System.StoreLine with shared side effects staged.
func (l *Lane) StoreLine(line uint64) bool {
	return l.s.storeLine(l.sm, line, l)
}

// ScheduleAfter stages a timing-wheel schedule. The engine routes every
// wheel schedule reachable from a concurrent SM.Tick (i-buffer refetch,
// SFU completion) through this so the wheel's bucket append order stays
// serial.
func (l *Lane) ScheduleAfter(delay int64, fn timing.Event) {
	l.ops = append(l.ops, laneOp{kind: laneSchedule, delay: delay, fn: fn})
}

func (l *Lane) schedule(delay int64, fn timing.Event) { l.ScheduleAfter(delay, fn) }

func (l *Lane) read(sm int, line uint64, fillL1 bool) {
	kind := laneReadRaw
	if fillL1 {
		kind = laneReadFill
	}
	l.ops = append(l.ops, laneOp{kind: kind, line: line})
}

func (l *Lane) write(sm int, line uint64) {
	l.ops = append(l.ops, laneOp{kind: laneWrite, line: line})
}

// Drain applies the staged effects in staging order and empties the
// lane. Carrier acquisition (popRead/popWrite) happens here, not at
// staging time, so the shared free lists are only ever touched by the
// coordinator goroutine — and pool pop order matches the serial loop's.
//
// Two batched-commit refinements (DESIGN.md §12.5), both identity-
// preserving by construction and gated by config.DisableCommitBatch:
// a run of consecutive schedule ops with the same delay lands in its
// wheel bucket as one slab append (ScheduleBatch keeps slice order, so
// FIFO dispatch is unchanged), and every carrier the drain will consume
// is popped from the free lists up front in one pass (nothing recycles
// a carrier mid-drain — free-list pushes happen only inside wheel
// events — so the pre-popped sequence is exactly the op-by-op one).
//
// Every drained slot's callback reference is cleared, including batched
// runs, so the reusable op buffer never keeps a stale closure — and the
// warp state it captures — alive across phases.
func (l *Lane) Drain() {
	s := l.s
	ops := l.ops
	if len(ops) == 0 {
		return
	}
	batch := !s.cfg.DisableCommitBatch
	if batch {
		nr, nw := 0, 0
		for i := range ops {
			switch ops[i].kind {
			case laneReadFill, laneReadRaw:
				nr++
			case laneWrite:
				nw++
			}
		}
		l.reads = l.reads[:0]
		for ; nr > 0; nr-- {
			l.reads = append(l.reads, s.popRead())
		}
		l.writes = l.writes[:0]
		for ; nw > 0; nw-- {
			l.writes = append(l.writes, s.popWrite())
		}
	}
	ri, wi := 0, 0
	for i := 0; i < len(ops); {
		op := &ops[i]
		switch op.kind {
		case laneSchedule:
			j := i + 1
			if batch {
				for j < len(ops) && ops[j].kind == laneSchedule && ops[j].delay == op.delay {
					j++
				}
			}
			if j == i+1 {
				s.wheel.ScheduleAfter(op.delay, op.fn)
				op.fn = nil
			} else {
				l.fns = l.fns[:0]
				for k := i; k < j; k++ {
					l.fns = append(l.fns, ops[k].fn)
					ops[k].fn = nil
				}
				s.wheel.ScheduleBatch(s.wheel.Now()+op.delay, l.fns)
				for k := range l.fns {
					l.fns[k] = nil
				}
			}
			i = j
			continue
		case laneReadFill, laneReadRaw:
			if batch {
				s.sendReadCarrier(l.reads[ri], l.sm, op.line, op.kind == laneReadFill)
				l.reads[ri] = nil
				ri++
			} else {
				s.sendRead(l.sm, op.line, op.kind == laneReadFill)
			}
		case laneWrite:
			if batch {
				s.sendWriteCarrier(l.writes[wi], l.sm, op.line)
				l.writes[wi] = nil
				wi++
			} else {
				s.sendWrite(l.sm, op.line)
			}
		}
		i++
	}
	l.ops = ops[:0]
}
