// Package stats defines the counters the simulator produces and the
// aggregation helpers the experiment harness consumes.
//
// The stall taxonomy follows GPGPU-Sim as described in the paper
// (Sec. II-B): in a scheduler-cycle where no warp issues,
//   - Idle:       no warp has a valid instruction ready to consider
//     (warps finished, waiting at a barrier, or with an empty
//     instruction buffer);
//   - Scoreboard: at least one warp has a valid instruction but none has
//     all operands ready;
//   - Pipeline:   some warp has a valid instruction with ready operands
//     but every required execution pipeline is full.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// StallBreakdown counts scheduler-cycles by outcome. Each warp scheduler
// contributes one count per cycle, so Issued+Idle+Scoreboard+Pipeline ==
// cycles × schedulers.
type StallBreakdown struct {
	Issued     int64
	Idle       int64
	Scoreboard int64
	Pipeline   int64
}

// Total returns the total stall cycles (everything but issued).
func (s StallBreakdown) Total() int64 { return s.Idle + s.Scoreboard + s.Pipeline }

// Slots returns all accounted scheduler-cycles.
func (s StallBreakdown) Slots() int64 { return s.Issued + s.Total() }

// Add accumulates o into s.
func (s *StallBreakdown) Add(o StallBreakdown) {
	s.Issued += o.Issued
	s.Idle += o.Idle
	s.Scoreboard += o.Scoreboard
	s.Pipeline += o.Pipeline
}

// MemStats counts memory-system events.
type MemStats struct {
	L1Accesses  int64
	L1Misses    int64
	L2Accesses  int64
	L2Misses    int64
	DRAMReqs    int64
	DRAMRowHits int64
}

// Add accumulates o into m.
func (m *MemStats) Add(o MemStats) {
	m.L1Accesses += o.L1Accesses
	m.L1Misses += o.L1Misses
	m.L2Accesses += o.L2Accesses
	m.L2Misses += o.L2Misses
	m.DRAMReqs += o.DRAMReqs
	m.DRAMRowHits += o.DRAMRowHits
}

// L1MissRate returns the L1 miss ratio, or 0 with no accesses.
func (m MemStats) L1MissRate() float64 {
	if m.L1Accesses == 0 {
		return 0
	}
	return float64(m.L1Misses) / float64(m.L1Accesses)
}

// L2MissRate returns the L2 miss ratio, or 0 with no accesses.
func (m MemStats) L2MissRate() float64 {
	if m.L2Accesses == 0 {
		return 0
	}
	return float64(m.L2Misses) / float64(m.L2Accesses)
}

// TBSpan records the lifetime of one thread block on one SM — the raw
// material of the paper's Figure 2.
type TBSpan struct {
	TB    int   // global thread-block index
	SM    int   // SM it ran on
	Slot  int   // how-many-th TB launched on that SM (0-based)
	Start int64 // cycle the TB was assigned
	End   int64 // cycle the TB retired
}

// Sample is one point of a sampled time series over a simulation: the
// deltas of the core counters across one sampling window. Useful for
// phase analysis (compute vs memory phases, batch boundaries, barrier
// convoys).
type Sample struct {
	// Cycle is the window's end cycle.
	Cycle int64
	// WarpInstrs is the number of warp-instructions issued in the window.
	WarpInstrs int64
	// Stalls is the window's scheduler-slot breakdown.
	Stalls StallBreakdown
	// ResidentTBs is the number of TBs resident across all SMs at the
	// sample point.
	ResidentTBs int
	// PendingTBs is the number of TBs still waiting in the Thread Block
	// Scheduler (fastTBPhase has PendingTBs > 0).
	PendingTBs int
}

// IPC returns the window's warp-instructions per cycle, given the window
// length.
func (s Sample) IPC(window int64) float64 {
	if window == 0 {
		return 0
	}
	return float64(s.WarpInstrs) / float64(window)
}

// OrderSample is one row of a Table IV-style trace: the priority-sorted
// TB order on an SM at a sample cycle (highest priority first; global TB
// indices).
type OrderSample struct {
	Cycle int64
	Order []int
}

// KernelResult is everything one simulated kernel launch produces.
type KernelResult struct {
	Kernel    string
	Scheduler string
	// Cycles is the kernel runtime in core cycles (the paper's figure of
	// merit).
	Cycles int64
	// WarpInstrs is the number of warp-instructions issued.
	WarpInstrs int64
	// ThreadInstrs is the number of thread-instructions executed (warp
	// issues weighted by active lanes) — the quantity PRO calls progress.
	ThreadInstrs int64
	// TBCount is the number of thread blocks executed.
	TBCount int
	Stalls  StallBreakdown
	Mem     MemStats
	// Timeline holds per-TB lifetimes (Fig. 2); populated when requested.
	Timeline []TBSpan
	// OrderTrace holds Table IV samples for SM 0; populated when the PRO
	// scheduler runs with order tracing enabled.
	OrderTrace []OrderSample
	// WarpDisparitySum accumulates, over all retired TBs, the spread of
	// warp finish cycles within the TB — total warp-level divergence.
	WarpDisparitySum int64
	// BarrierWaitSum accumulates, over all barrier episodes, the cycles
	// between the first warp arriving and the barrier releasing.
	BarrierWaitSum int64
	// BarrierEpisodes counts completed barrier episodes.
	BarrierEpisodes int64
	// Samples is the sampled time series (when Options.SampleEvery > 0).
	Samples []Sample
}

// AvgWarpDisparity returns the mean per-TB warp finish spread.
func (r *KernelResult) AvgWarpDisparity() float64 {
	if r.TBCount == 0 {
		return 0
	}
	return float64(r.WarpDisparitySum) / float64(r.TBCount)
}

// AvgBarrierWait returns the mean first-arrival-to-release barrier wait.
func (r *KernelResult) AvgBarrierWait() float64 {
	if r.BarrierEpisodes == 0 {
		return 0
	}
	return float64(r.BarrierWaitSum) / float64(r.BarrierEpisodes)
}

// IPC returns warp-instructions per cycle.
func (r *KernelResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.WarpInstrs) / float64(r.Cycles)
}

// Speedup returns base.Cycles / r.Cycles — how much faster r is than base.
func (r *KernelResult) Speedup(base *KernelResult) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// AppResult aggregates the kernels of one application (Table III is per
// application, not per kernel): stalls and memory counters sum, cycles sum.
type AppResult struct {
	App       string
	Scheduler string
	Cycles    int64
	Stalls    StallBreakdown
	Mem       MemStats
	Kernels   int
}

// Accumulate folds one kernel run into the application aggregate.
func (a *AppResult) Accumulate(r *KernelResult) {
	a.Cycles += r.Cycles
	a.Stalls.Add(r.Stalls)
	a.Mem.Add(r.Mem)
	a.Kernels++
}

// Geomean returns the geometric mean of xs; 0 when xs is empty or any
// element is non-positive.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Ratio returns a/b, or 0 when b is 0. Used for stall-improvement tables
// where the paper reports baseline/PRO.
func Ratio(a, b int64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return 0
	}
	return float64(a) / float64(b)
}

// SortSpansByStart orders TB spans by (SM, Start, TB) for stable reports.
func SortSpansByStart(spans []TBSpan) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.SM != b.SM {
			return a.SM < b.SM
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.TB < b.TB
	})
}

// FormatPct renders x as a percentage with one decimal.
func FormatPct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
