package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStallBreakdownArithmetic(t *testing.T) {
	b := StallBreakdown{Issued: 10, Idle: 5, Scoreboard: 3, Pipeline: 2}
	if b.Total() != 10 {
		t.Fatalf("Total = %d, want 10", b.Total())
	}
	if b.Slots() != 20 {
		t.Fatalf("Slots = %d, want 20", b.Slots())
	}
	var sum StallBreakdown
	sum.Add(b)
	sum.Add(b)
	if sum.Issued != 20 || sum.Total() != 20 {
		t.Fatalf("Add broken: %+v", sum)
	}
}

func TestMemStatsRates(t *testing.T) {
	m := MemStats{L1Accesses: 100, L1Misses: 25, L2Accesses: 25, L2Misses: 5}
	if m.L1MissRate() != 0.25 {
		t.Fatalf("L1MissRate = %v", m.L1MissRate())
	}
	if m.L2MissRate() != 0.2 {
		t.Fatalf("L2MissRate = %v", m.L2MissRate())
	}
	var zero MemStats
	if zero.L1MissRate() != 0 || zero.L2MissRate() != 0 {
		t.Fatal("zero-access rates must be 0")
	}
}

func TestKernelResultDerived(t *testing.T) {
	r := &KernelResult{Cycles: 1000, WarpInstrs: 2500}
	if r.IPC() != 2.5 {
		t.Fatalf("IPC = %v", r.IPC())
	}
	base := &KernelResult{Cycles: 1200}
	if got := r.Speedup(base); got != 1.2 {
		t.Fatalf("Speedup = %v, want 1.2", got)
	}
	var zero KernelResult
	if zero.IPC() != 0 || zero.Speedup(base) != 0 {
		t.Fatal("zero-cycle results must not divide by zero")
	}
}

func TestAppResultAccumulate(t *testing.T) {
	var a AppResult
	a.Accumulate(&KernelResult{Cycles: 100, Stalls: StallBreakdown{Idle: 5}})
	a.Accumulate(&KernelResult{Cycles: 200, Stalls: StallBreakdown{Idle: 7, Pipeline: 1}})
	if a.Cycles != 300 || a.Stalls.Idle != 12 || a.Stalls.Pipeline != 1 || a.Kernels != 2 {
		t.Fatalf("Accumulate: %+v", a)
	}
}

func TestGeomeanKnownValues(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-12 {
		t.Fatalf("Geomean(ones) = %v", g)
	}
	if Geomean(nil) != 0 {
		t.Fatal("Geomean(nil) must be 0")
	}
	if Geomean([]float64{1, -2}) != 0 {
		t.Fatal("Geomean with non-positive input must be 0")
	}
}

func TestGeomeanPropertyBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r%1000)/100 + 0.01
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 5) != 2 {
		t.Fatal("Ratio(10,5)")
	}
	if Ratio(0, 0) != 1 {
		t.Fatal("Ratio(0,0) should be neutral 1")
	}
	if Ratio(5, 0) != 0 {
		t.Fatal("Ratio(x,0) should be 0 (undefined)")
	}
}

func TestSortSpansByStart(t *testing.T) {
	spans := []TBSpan{
		{TB: 3, SM: 1, Start: 5},
		{TB: 1, SM: 0, Start: 9},
		{TB: 2, SM: 0, Start: 2},
		{TB: 0, SM: 0, Start: 2},
	}
	SortSpansByStart(spans)
	want := []int{2, 1, 3} // SM0 first: (start 2, TB 0), (2, TB 2), (9, TB 1); then SM1
	_ = want
	if spans[0].TB != 0 || spans[1].TB != 2 || spans[2].TB != 1 || spans[3].TB != 3 {
		t.Fatalf("order = %v", spans)
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(0.1234); got != "12.3%" {
		t.Fatalf("FormatPct = %q", got)
	}
}
