package viz

import (
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/stats"
)

// wellFormed checks the SVG parses as XML.
func wellFormed(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, doc[:min(len(doc), 400)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGroupedBars(t *testing.T) {
	doc := GroupedBars("Fig 4", []string{"k1", "k2", "k3"},
		[]Series{
			{Name: "vs TL", Values: []float64{1.1, 1.3, 0.9}},
			{Name: "vs LRR", Values: []float64{1.0, 1.2, 1.05}},
		}, 1.0)
	wellFormed(t, doc)
	for _, frag := range []string{"Fig 4", "vs TL", "vs LRR", "k1", "<rect", "stroke-dasharray"} {
		if !strings.Contains(doc, frag) {
			t.Errorf("missing %q", frag)
		}
	}
	// 3 groups × 2 series bars plus background/legend rects.
	if n := strings.Count(doc, "<rect"); n < 9 {
		t.Errorf("only %d rects", n)
	}
}

func TestGroupedBarsEmptyAndZero(t *testing.T) {
	doc := GroupedBars("empty", nil, nil, 0)
	wellFormed(t, doc)
	doc = GroupedBars("zeros", []string{"a"}, []Series{{Name: "s", Values: []float64{0}}}, 0)
	wellFormed(t, doc)
}

func TestStackedShares(t *testing.T) {
	doc := StackedShares("Fig 1", []string{"AES", "BFS"},
		[]string{"sb", "idle", "pipe"},
		[][]float64{{0.2, 0.3, 0.5}, {0.1, 0.1, 0.8}})
	wellFormed(t, doc)
	for _, frag := range []string{"Fig 1", "AES", "idle", "50%"} {
		if !strings.Contains(doc, frag) {
			t.Errorf("missing %q", frag)
		}
	}
}

func TestTimeline(t *testing.T) {
	spans := []stats.TBSpan{
		{TB: 0, SM: 0, Slot: 0, Start: 0, End: 500},
		{TB: 14, SM: 0, Slot: 1, Start: 100, End: 900},
	}
	doc := Timeline("Fig 2", spans, 1000)
	wellFormed(t, doc)
	if !strings.Contains(doc, "TB 14") {
		t.Error("missing TB label")
	}
	doc = Timeline("empty", nil, 0)
	wellFormed(t, doc)
}

func TestEscaping(t *testing.T) {
	doc := GroupedBars(`a<b>&"q"`, []string{"x&y"}, []Series{{Name: "<s>", Values: []float64{1}}}, 0)
	wellFormed(t, doc)
	if strings.Contains(doc, "a<b>") {
		t.Error("title not escaped")
	}
}
