// Package viz renders the experiment artifacts as standalone SVG files —
// grouped bar charts for Fig. 4 / Fig. 5, stacked composition bars for
// Fig. 1, and Gantt-style thread-block timelines for Fig. 2 — using only
// the standard library. The output opens in any browser, so a
// reproduction run can be inspected visually without plotting tools.
package viz

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Palette used across charts (colorblind-safe defaults).
var Palette = []string{"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377"}

const (
	fontFamily = "ui-monospace, SFMono-Regular, Menlo, monospace"
	labelSize  = 11
	titleSize  = 14
)

// esc escapes text for SVG.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

type svg struct {
	b    strings.Builder
	w, h int
}

func newSVG(w, h int) *svg {
	s := &svg{w: w, h: h}
	fmt.Fprintf(&s.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&s.b, `<rect x="0" y="0" width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return s
}

func (s *svg) rect(x, y, w, h float64, fill, title string) {
	if w < 0.5 {
		w = 0.5
	}
	if h < 0 {
		h = 0
	}
	fmt.Fprintf(&s.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s">`, x, y, w, h, fill)
	if title != "" {
		fmt.Fprintf(&s.b, `<title>%s</title>`, esc(title))
	}
	s.b.WriteString("</rect>\n")
}

func (s *svg) line(x1, y1, x2, y2 float64, stroke string, width float64, dash string) {
	fmt.Fprintf(&s.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"`,
		x1, y1, x2, y2, stroke, width)
	if dash != "" {
		fmt.Fprintf(&s.b, ` stroke-dasharray="%s"`, dash)
	}
	s.b.WriteString("/>\n")
}

func (s *svg) text(x, y float64, size int, anchor, fill, content string, rotate float64) {
	fmt.Fprintf(&s.b, `<text x="%.1f" y="%.1f" font-size="%d" font-family="%s" text-anchor="%s" fill="%s"`,
		x, y, size, fontFamily, anchor, fill)
	if rotate != 0 {
		fmt.Fprintf(&s.b, ` transform="rotate(%.0f %.1f %.1f)"`, rotate, x, y)
	}
	fmt.Fprintf(&s.b, ">%s</text>\n", esc(content))
}

func (s *svg) done() string {
	s.b.WriteString("</svg>\n")
	return s.b.String()
}

// Series is one bar series of a grouped chart.
type Series struct {
	Name   string
	Values []float64
}

// GroupedBars renders a grouped bar chart (Fig. 4 / Fig. 5 shape):
// one group per label, one bar per series, with a dashed reference line
// at ref (pass 0 to omit).
func GroupedBars(title string, labels []string, series []Series, ref float64) string {
	const (
		mL, mR, mT, mB = 60, 20, 40, 110
		groupW         = 26
	)
	n := len(labels)
	w := mL + mR + n*groupW*max(1, len(series))/1 + n*10
	if w < 480 {
		w = 480
	}
	h := 360
	plotW := float64(w - mL - mR)
	plotH := float64(h - mT - mB)

	maxV := ref
	for _, s := range series {
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	maxV *= 1.1

	sv := newSVG(w, h)
	sv.text(float64(w)/2, 24, titleSize, "middle", "#222", title, 0)
	// Axis and gridlines.
	for i := 0; i <= 4; i++ {
		v := maxV * float64(i) / 4
		y := float64(mT) + plotH - plotH*float64(i)/4
		sv.line(float64(mL), y, float64(w-mR), y, "#ddd", 1, "")
		sv.text(float64(mL)-6, y+4, labelSize, "end", "#555", fmt.Sprintf("%.2f", v), 0)
	}
	if ref > 0 {
		y := float64(mT) + plotH - plotH*ref/maxV
		sv.line(float64(mL), y, float64(w-mR), y, "#999", 1.2, "4,3")
	}
	groupSpan := plotW / float64(n)
	barW := groupSpan * 0.8 / float64(max(1, len(series)))
	for gi, label := range labels {
		gx := float64(mL) + groupSpan*float64(gi) + groupSpan*0.1
		for si, s := range series {
			v := 0.0
			if gi < len(s.Values) {
				v = s.Values[gi]
			}
			bh := plotH * v / maxV
			sv.rect(gx+barW*float64(si), float64(mT)+plotH-bh, barW, bh,
				Palette[si%len(Palette)], fmt.Sprintf("%s / %s: %.3f", label, s.Name, v))
		}
		sv.text(gx+groupSpan*0.4, float64(mT)+plotH+12, labelSize, "end", "#333", label, -55)
	}
	// Legend.
	lx := float64(mL)
	for si, s := range series {
		sv.rect(lx, 32, 10, 10, Palette[si%len(Palette)], "")
		sv.text(lx+14, 41, labelSize, "start", "#333", s.Name, 0)
		lx += 14 + float64(8*len(s.Name)) + 18
	}
	sv.line(float64(mL), float64(mT)+plotH, float64(w-mR), float64(mT)+plotH, "#333", 1.2, "")
	return sv.done()
}

// StackedShares renders Fig. 1-style 100% stacked bars: per label, the
// parts must be fractions summing to ~1.
func StackedShares(title string, labels []string, partNames []string, parts [][]float64) string {
	const (
		mL, mR, mT, mB = 60, 20, 40, 110
	)
	n := len(labels)
	w := mL + mR + n*34
	if w < 480 {
		w = 480
	}
	h := 340
	plotH := float64(h - mT - mB)
	groupSpan := (float64(w - mL - mR)) / float64(n)

	sv := newSVG(w, h)
	sv.text(float64(w)/2, 24, titleSize, "middle", "#222", title, 0)
	for i := 0; i <= 4; i++ {
		y := float64(mT) + plotH - plotH*float64(i)/4
		sv.line(float64(mL), y, float64(w-mR), y, "#ddd", 1, "")
		sv.text(float64(mL)-6, y+4, labelSize, "end", "#555", fmt.Sprintf("%d%%", 25*i), 0)
	}
	for gi, label := range labels {
		x := float64(mL) + groupSpan*float64(gi) + groupSpan*0.15
		y := float64(mT) + plotH
		for pi := range partNames {
			v := parts[gi][pi]
			bh := plotH * v
			y -= bh
			sv.rect(x, y, groupSpan*0.7, bh, Palette[pi%len(Palette)],
				fmt.Sprintf("%s / %s: %.1f%%", label, partNames[pi], 100*v))
		}
		sv.text(x+groupSpan*0.3, float64(mT)+plotH+12, labelSize, "end", "#333", label, -55)
	}
	lx := float64(mL)
	for pi, name := range partNames {
		sv.rect(lx, 32, 10, 10, Palette[pi%len(Palette)], "")
		sv.text(lx+14, 41, labelSize, "start", "#333", name, 0)
		lx += 14 + float64(8*len(name)) + 18
	}
	return sv.done()
}

// Timeline renders a Fig. 2-style Gantt chart of TB lifetimes on one SM.
func Timeline(title string, spans []stats.TBSpan, totalCycles int64) string {
	const (
		mL, mR, mT, mB = 90, 20, 40, 30
		rowH           = 14
	)
	n := len(spans)
	w := 720
	h := mT + mB + n*rowH
	if h < 160 {
		h = 160
	}
	plotW := float64(w - mL - mR)
	if totalCycles <= 0 {
		totalCycles = 1
	}

	sv := newSVG(w, h)
	sv.text(float64(w)/2, 24, titleSize, "middle", "#222", title, 0)
	for i := 0; i <= 4; i++ {
		x := float64(mL) + plotW*float64(i)/4
		sv.line(x, float64(mT), x, float64(h-mB), "#ddd", 1, "")
		sv.text(x, float64(h-mB)+14, labelSize, "middle", "#555",
			fmt.Sprintf("%d", totalCycles*int64(i)/4), 0)
	}
	for i, sp := range spans {
		y := float64(mT) + float64(i*rowH)
		x0 := float64(mL) + plotW*float64(sp.Start)/float64(totalCycles)
		x1 := float64(mL) + plotW*float64(sp.End)/float64(totalCycles)
		sv.rect(x0, y+2, x1-x0, rowH-4, Palette[sp.Slot%len(Palette)],
			fmt.Sprintf("TB %d: %d..%d", sp.TB, sp.Start, sp.End))
		sv.text(float64(mL)-6, y+rowH-3, labelSize, "end", "#333", fmt.Sprintf("TB %d", sp.TB), 0)
	}
	return sv.done()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
