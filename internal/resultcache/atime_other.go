//go:build !unix

package resultcache

import (
	"io/fs"
	"time"
)

// accessTime falls back to the modification time on platforms without a
// usable atime in os.FileInfo.Sys(); Get touches both timestamps, so
// LRU ordering still tracks cache hits.
func accessTime(fi fs.FileInfo) time.Time {
	return fi.ModTime()
}
