package resultcache

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
)

// StoreHandler serves c over HTTP as the object store Remote speaks:
//
//	GET  /<key>  the stored envelope JSON, or 404 on any kind of miss
//	HEAD /<key>  presence probe, same status codes as GET
//	PUT  /<key>  store an envelope (schema and key must match), 204
//
// Keys are validated as sha256 hex digests before they go anywhere
// near the filesystem, so the handler can be mounted on a shared
// daemon port (cmd/prosimd -serve-cache mounts it under /cache/).
// Stored bytes are revalidated as a well-formed envelope on PUT; a
// client can therefore never corrupt the store, only miss it.
func StoreHandler(c *Cache) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/")
		if !validKey(key) {
			http.Error(w, "resultcache: not a result key", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			data, ok := c.getRaw(key)
			if !ok {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if r.Method == http.MethodHead {
				w.WriteHeader(http.StatusOK)
				return
			}
			w.Write(data)
		case http.MethodPut:
			data, err := io.ReadAll(io.LimitReader(r.Body, maxEnvelopeBytes+1))
			if err != nil {
				http.Error(w, "resultcache: "+err.Error(), http.StatusBadRequest)
				return
			}
			if len(data) > maxEnvelopeBytes {
				http.Error(w, "resultcache: envelope too large", http.StatusRequestEntityTooLarge)
				return
			}
			if err := c.putRaw(key, data); err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			w.Header().Set("Allow", "GET, HEAD, PUT")
			http.Error(w, "GET, HEAD or PUT required", http.StatusMethodNotAllowed)
		}
	})
}

// getRaw returns the stored envelope bytes for key after the same
// validation Get performs, counting a hit or miss on the cache's own
// counters — a store hit served to a peer daemon is still a hit of
// this cache.
func (c *Cache) getRaw(key string) ([]byte, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		mMisses.Inc()
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil ||
		env.Schema != c.version || env.Key != key || env.Result == nil {
		c.misses.Add(1)
		mMisses.Inc()
		return nil, false
	}
	c.hits.Add(1)
	c.bytesRead.Add(int64(len(data)))
	mHits.Inc()
	mBytesRead.Add(int64(len(data)))
	c.touch(key)
	return data, true
}

// putRaw validates data as an envelope for key at this cache's schema
// version and stores it verbatim through the same atomic temp+rename
// path Put uses.
func (c *Cache) putRaw(key string, data []byte) error {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return errBadEnvelope
	}
	if env.Schema != c.version || env.Key != key || env.Result == nil {
		return errBadEnvelope
	}
	return c.writeEntry(key, data)
}
