//go:build unix

package resultcache

import (
	"io/fs"
	"syscall"
	"time"
)

// accessTime returns fi's last-access time, falling back to the
// modification time when the platform-specific stat is unavailable.
func accessTime(fi fs.FileInfo) time.Time {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return time.Unix(st.Atim.Sec, st.Atim.Nsec)
	}
	return fi.ModTime()
}
