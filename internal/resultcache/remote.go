// Remote is the HTTP object-store client: the L2 of a tiered result
// cache. The store is any server speaking the trivial protocol of
// StoreHandler — GET /<key> returns the envelope JSON, PUT /<key>
// stores it — which in practice is another prosimd started with
// -serve-cache, so one replica's disk becomes the cluster's shared
// warm tier.
//
// The client is deliberately paranoid about latency: every operation
// carries a short timeout (DefaultRemoteTimeout unless configured) and
// every failure — connect, timeout, non-2xx, corrupt envelope — is a
// cache miss or a returned error, never a stall. The caller (Tiered)
// degrades to L1-only service on such failures.
package resultcache

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Process-wide L2 telemetry. The tier distinction matters
// operationally: an L2 miss is normal (cold shared store), an L2 error
// means the remote is unreachable or slow and the tier is degraded.
var (
	mL2Hits   = obs.NewCounter("resultcache_l2_hits_total", "remote-tier Gets that returned a result")
	mL2Misses = obs.NewCounter("resultcache_l2_misses_total", "remote-tier Gets that found nothing (clean miss)")
	mL2Errors = obs.NewCounter("resultcache_l2_errors_total", "remote-tier operations that failed (timeout, transport, bad envelope)")
)

// DefaultRemoteTimeout bounds one remote cache operation. The L2 sits
// on the simulation hot path only as a read-through before a
// multi-second simulation, so the budget is milliseconds: a slow
// remote must cost less than the work it might save.
const DefaultRemoteTimeout = 250 * time.Millisecond

// Remote is an HTTP L2 result store client. All methods are safe for
// concurrent use.
type Remote struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	version int

	hits   atomic.Int64
	misses atomic.Int64
	errs   atomic.Int64
}

// NewRemote builds a client for the object store at base — the exact
// URL prefix keys are appended to, e.g. "http://127.0.0.1:9753/cache"
// for a prosimd running -serve-cache (a bare host:port gets http://
// prefixed). timeout <= 0 means DefaultRemoteTimeout.
func NewRemote(base string, timeout time.Duration) *Remote {
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	if timeout <= 0 {
		timeout = DefaultRemoteTimeout
	}
	return &Remote{
		base:    base,
		hc:      &http.Client{},
		timeout: timeout,
		version: SchemaVersion,
	}
}

// Base returns the store URL the client was built with.
func (r *Remote) Base() string { return r.base }

// Errors returns the number of failed remote operations since NewRemote.
func (r *Remote) Errors() int64 { return r.errs.Load() }

func (r *Remote) url(key string) string { return r.base + "/" + key }

// Get fetches key from the remote store. Any failure — bad key,
// timeout, non-200, corrupt or wrong-schema envelope — is a miss.
func (r *Remote) Get(key string) (*stats.KernelResult, bool) {
	if !validKey(key) {
		r.misses.Add(1)
		mL2Misses.Inc()
		return nil, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url(key), nil)
	if err != nil {
		r.fail()
		return nil, false
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		r.fail()
		return nil, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		r.misses.Add(1)
		mL2Misses.Inc()
		return nil, false
	default:
		r.fail()
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEnvelopeBytes))
	if err != nil {
		r.fail()
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil ||
		env.Schema != r.version || env.Key != key || env.Result == nil {
		// The remote answered but with garbage (or a different schema
		// generation): treat as an error, not a clean miss, so the
		// degradation metrics surface it.
		r.fail()
		return nil, false
	}
	r.hits.Add(1)
	mL2Hits.Inc()
	return env.Result, true
}

// Put stores a result under key on the remote store. Unlike Get it
// returns the failure — the tiering layer decides whether a failed L2
// write degrades the tier or fails the operation (Tiered degrades).
func (r *Remote) Put(key string, res *stats.KernelResult) error {
	if !validKey(key) {
		return fmt.Errorf("resultcache: remote put: invalid key %q", key)
	}
	data, err := json.Marshal(envelope{Schema: r.version, Key: key, Result: res})
	if err != nil {
		return fmt.Errorf("resultcache: remote put: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, r.url(key), bytes.NewReader(data))
	if err != nil {
		r.fail()
		return fmt.Errorf("resultcache: remote put: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.hc.Do(req)
	if err != nil {
		r.fail()
		return fmt.Errorf("resultcache: remote put: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		r.fail()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("resultcache: remote put: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	return nil
}

func (r *Remote) fail() {
	r.errs.Add(1)
	mL2Errors.Inc()
}

// maxEnvelopeBytes bounds one stored result on the wire. A
// KernelResult with full per-TB timelines marshals to well under a
// megabyte; 64 MiB leaves three orders of magnitude of headroom while
// still bounding a misbehaving server's response.
const maxEnvelopeBytes = 64 << 20
