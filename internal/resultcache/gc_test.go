package resultcache

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseSize(t *testing.T) {
	good := map[string]int64{
		"0":     0,
		"123":   123,
		"1K":    1 << 10,
		"1k":    1 << 10,
		"1KB":   1 << 10,
		"1KiB":  1 << 10,
		"256M":  256 << 20,
		"2G":    2 << 30,
		"1T":    1 << 40,
		" 64m ": 64 << 20,
	}
	for in, want := range good {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "-1", "12X", "G", "1.5M", "9999999999G"} {
		if got, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) = %d; want error", in, got)
		}
	}
}

// fillCache puts n identical results under distinct keys and stamps
// strictly increasing access times (keys[0] least recent).
func fillCache(t *testing.T, c *Cache, dir string, n int) []string {
	t.Helper()
	keys := make([]string, n)
	for i := range keys {
		key, err := c.Key(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put(key, sampleResult()); err != nil {
			t.Fatal(err)
		}
		keys[i] = key
	}
	base := time.Now().Add(-time.Hour)
	for i, key := range keys {
		at := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, key+".json"), at, at); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func TestGCEvictsLeastRecentlyUsed(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := fillCache(t, c, dir, 3)

	// A hit refreshes recency: after this, keys[1] is the LRU entry.
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("miss on a present entry")
	}

	// Size the budget so exactly one entry must go.
	scan, err := c.GC(1 << 62)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Entries != 3 || scan.Evicted != 0 {
		t.Fatalf("dry pass: %+v", scan)
	}
	st, err := c.GC(scan.Bytes - 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 3 || st.Evicted != 1 || st.Freed <= 0 {
		t.Fatalf("GC stats: %+v", st)
	}
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("least-recently-used entry survived GC")
	}
	for _, key := range []string{keys[0], keys[2]} {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("recently used entry %s evicted", key)
		}
	}
}

func TestGCZeroBudgetEmptiesCache(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := fillCache(t, c, dir, 4)
	st, err := c.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 4 || st.Evicted != 4 || st.Freed != st.Bytes {
		t.Fatalf("GC stats: %+v", st)
	}
	for _, key := range keys {
		if _, ok := c.Get(key); ok {
			t.Fatal("entry survived a zero-budget GC")
		}
	}
}

func TestGCEmptyCache(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if st != (GCStats{}) {
		t.Fatalf("GC of empty cache: %+v", st)
	}
}

func TestGCRemovesStaleTmpFiles(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := fillCache(t, c, dir, 2)

	// A leftover from a killed Put, old enough to be garbage; and a
	// young one that may belong to a Put racing this GC pass.
	stale := filepath.Join(dir, "put-dead123.tmp")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, "put-live456.tmp")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := c.GC(1 << 62) // budget high enough that no entry is evicted
	if err != nil {
		t.Fatal(err)
	}
	if st.TmpFiles != 1 || st.TmpBytes != int64(len("partial")) {
		t.Fatalf("tmp stats: %+v", st)
	}
	if st.Freed != st.TmpBytes || st.Evicted != 0 {
		t.Fatalf("stale tmp bytes not accounted as freed: %+v", st)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale tmp file survived GC")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh tmp file (possibly a racing Put) was removed")
	}
	for _, key := range keys {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("real entry %s evicted by tmp cleanup", key)
		}
	}
}

func TestGCTmpBytesDoNotInflateEvictionBudget(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fillCache(t, c, dir, 2)

	// A huge stale tmp file must not count against the entry budget:
	// after it is deleted the two real entries fit and none is evicted.
	scan, err := c.GC(1 << 62)
	if err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "put-huge.tmp")
	if err := os.WriteFile(stale, make([]byte, 4*scan.Bytes), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	st, err := c.GC(scan.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 0 {
		t.Fatalf("stale tmp bytes inflated the eviction budget: %+v", st)
	}
}
