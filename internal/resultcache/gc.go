package resultcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Process-wide GC telemetry, aggregated like the hit/miss counters in
// resultcache.go.
var (
	mGCRuns    = obs.NewCounter("resultcache_gc_runs_total", "completed GC passes")
	mGCEvicted = obs.NewCounter("resultcache_gc_evicted_total", "entries evicted by GC")
	mGCFreed   = obs.NewCounter("resultcache_gc_freed_bytes_total", "bytes freed by GC (stale temp files included)")
	mGCTmp     = obs.NewCounter("resultcache_gc_tmp_files_total", "abandoned put-*.tmp files removed by GC")
)

// GCStats reports what one GC pass found and removed.
type GCStats struct {
	// Entries and Bytes describe the cache before the pass. Bytes
	// includes stale temp files, so the directory's true footprint is
	// visible even when killed writers littered it.
	Entries int
	Bytes   int64
	// Evicted and Freed describe what the pass removed (Freed includes
	// stale temp files).
	Evicted int
	Freed   int64
	// TmpFiles and TmpBytes count the stale put-*.tmp files removed:
	// temp files abandoned by a writer that died between CreateTemp and
	// Rename. Fresh temp files (a Put in flight) are never touched.
	TmpFiles int
	TmpBytes int64
}

// tmpMaxAge is the safety margin before an orphaned put-*.tmp file is
// considered abandoned. A live Put holds its temp file for milliseconds
// (one JSON encode plus a write and rename), so anything this old
// belongs to a killed process.
const tmpMaxAge = time.Hour

// GC evicts least-recently-used entries until the cache fits in maxBytes
// (the on-disk size of the entry files; maxBytes <= 0 empties the
// cache). Recency is the entry's access time where the filesystem
// tracks one — Get touches its entry's timestamps explicitly, so
// relatime/noatime mounts still observe hits — with the modification
// time as fallback. Concurrent writers are safe: eviction races at
// worst delete an entry that was just re-read, which is a future cache
// miss, never an error.
func (c *Cache) GC(maxBytes int64) (GCStats, error) {
	type entry struct {
		path string
		size int64
		used time.Time
	}
	names, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return GCStats{}, fmt.Errorf("resultcache: gc: %w", err)
	}
	var st GCStats
	// Record telemetry even for a pass that errors mid-eviction: what
	// was removed is gone either way.
	defer func() {
		c.gcRuns.Add(1)
		c.gcEvicted.Add(int64(st.Evicted))
		c.gcFreed.Add(st.Freed)
		mGCRuns.Inc()
		mGCEvicted.Add(int64(st.Evicted))
		mGCFreed.Add(st.Freed)
		mGCTmp.Add(int64(st.TmpFiles))
	}()
	if err := c.gcTmp(&st); err != nil {
		return st, err
	}
	entries := make([]entry, 0, len(names))
	for _, name := range names {
		fi, err := os.Stat(name)
		if err != nil {
			continue // already evicted by a concurrent pass
		}
		entries = append(entries, entry{path: name, size: fi.Size(), used: accessTime(fi)})
		st.Entries++
		st.Bytes += fi.Size()
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].used.Equal(entries[j].used) {
			return entries[i].used.Before(entries[j].used)
		}
		return entries[i].path < entries[j].path
	})
	total := st.Bytes - st.TmpBytes // stale tmp files are already gone
	for _, e := range entries {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(e.path); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return st, fmt.Errorf("resultcache: gc: %w", err)
		}
		total -= e.size
		st.Evicted++
		st.Freed += e.size
	}
	return st, nil
}

// gcTmp removes abandoned put-*.tmp files — the atomic-write temp files
// a killed run leaves behind, which Glob("*.json") never sees and which
// would otherwise accumulate forever. Only files older than tmpMaxAge
// go, so a concurrent Put's in-flight temp file is never pulled out from
// under it.
func (c *Cache) gcTmp(st *GCStats) error {
	tmps, err := filepath.Glob(filepath.Join(c.dir, "put-*.tmp"))
	if err != nil {
		return fmt.Errorf("resultcache: gc: %w", err)
	}
	cutoff := time.Now().Add(-tmpMaxAge)
	for _, name := range tmps {
		fi, err := os.Stat(name)
		if err != nil {
			continue // already renamed or removed by its writer
		}
		if fi.ModTime().After(cutoff) {
			continue // a Put may still be writing it
		}
		st.Bytes += fi.Size()
		if err := os.Remove(name); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("resultcache: gc: %w", err)
		}
		st.TmpFiles++
		st.TmpBytes += fi.Size()
		st.Freed += fi.Size()
	}
	return nil
}

// touch marks key's entry as recently used. Best effort: a missing
// entry or read-only directory is not an error.
func (c *Cache) touch(key string) {
	now := time.Now()
	_ = os.Chtimes(c.path(key), now, now)
}

// ParseSize parses a human-friendly byte size: a plain integer is
// bytes; suffixes K, M, G, T (case-insensitive, optionally followed by
// "B" or "iB") scale by powers of 1024.
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	t = strings.TrimSuffix(t, "IB")
	t = strings.TrimSuffix(t, "B")
	shift := 0
	switch {
	case strings.HasSuffix(t, "K"):
		shift, t = 10, strings.TrimSuffix(t, "K")
	case strings.HasSuffix(t, "M"):
		shift, t = 20, strings.TrimSuffix(t, "M")
	case strings.HasSuffix(t, "G"):
		shift, t = 30, strings.TrimSuffix(t, "G")
	case strings.HasSuffix(t, "T"):
		shift, t = 40, strings.TrimSuffix(t, "T")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("resultcache: invalid size %q", s)
	}
	if shift > 0 && n > (1<<62)>>shift {
		return 0, fmt.Errorf("resultcache: size %q overflows", s)
	}
	return n << shift, nil
}
