package resultcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// GCStats reports what one GC pass found and removed.
type GCStats struct {
	// Entries and Bytes describe the cache before the pass.
	Entries int
	Bytes   int64
	// Evicted and Freed describe what the pass removed.
	Evicted int
	Freed   int64
}

// GC evicts least-recently-used entries until the cache fits in maxBytes
// (the on-disk size of the entry files; maxBytes <= 0 empties the
// cache). Recency is the entry's access time where the filesystem
// tracks one — Get touches its entry's timestamps explicitly, so
// relatime/noatime mounts still observe hits — with the modification
// time as fallback. Concurrent writers are safe: eviction races at
// worst delete an entry that was just re-read, which is a future cache
// miss, never an error.
func (c *Cache) GC(maxBytes int64) (GCStats, error) {
	type entry struct {
		path string
		size int64
		used time.Time
	}
	names, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return GCStats{}, fmt.Errorf("resultcache: gc: %w", err)
	}
	var st GCStats
	entries := make([]entry, 0, len(names))
	for _, name := range names {
		fi, err := os.Stat(name)
		if err != nil {
			continue // already evicted by a concurrent pass
		}
		entries = append(entries, entry{path: name, size: fi.Size(), used: accessTime(fi)})
		st.Entries++
		st.Bytes += fi.Size()
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].used.Equal(entries[j].used) {
			return entries[i].used.Before(entries[j].used)
		}
		return entries[i].path < entries[j].path
	})
	total := st.Bytes
	for _, e := range entries {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(e.path); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return st, fmt.Errorf("resultcache: gc: %w", err)
		}
		total -= e.size
		st.Evicted++
		st.Freed += e.size
	}
	return st, nil
}

// touch marks key's entry as recently used. Best effort: a missing
// entry or read-only directory is not an error.
func (c *Cache) touch(key string) {
	now := time.Now()
	_ = os.Chtimes(c.path(key), now, now)
}

// ParseSize parses a human-friendly byte size: a plain integer is
// bytes; suffixes K, M, G, T (case-insensitive, optionally followed by
// "B" or "iB") scale by powers of 1024.
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	t = strings.TrimSuffix(t, "IB")
	t = strings.TrimSuffix(t, "B")
	shift := 0
	switch {
	case strings.HasSuffix(t, "K"):
		shift, t = 10, strings.TrimSuffix(t, "K")
	case strings.HasSuffix(t, "M"):
		shift, t = 20, strings.TrimSuffix(t, "M")
	case strings.HasSuffix(t, "G"):
		shift, t = 30, strings.TrimSuffix(t, "G")
	case strings.HasSuffix(t, "T"):
		shift, t = 40, strings.TrimSuffix(t, "T")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("resultcache: invalid size %q", s)
	}
	if shift > 0 && n > (1<<62)>>shift {
		return 0, fmt.Errorf("resultcache: size %q overflows", s)
	}
	return n << shift, nil
}
