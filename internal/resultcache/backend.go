// Tiered result storage. The disk Cache is the canonical L1; Backend
// abstracts its Get/Put surface so an HTTP object store can sit behind
// it as a shared L2 (see Remote and Tiered). Everything above this
// package — the job engine, the daemon, the cluster — keys results the
// same way regardless of how many tiers serve them, because the key is
// a content hash of the simulation inputs and the envelope re-checks
// schema and key at every tier boundary.
package resultcache

import "repro/internal/stats"

// Backend is the get/put surface of a result store. Get reports a miss
// — absent, unreadable, corrupt, wrong schema, or remote failure — as
// (nil, false), never as an error: the caller recomputes. Put stores a
// result under its content key; implementations define how persistent
// that is.
//
// *Cache (disk L1), *Remote (HTTP L2) and *Tiered (L1 over L2) all
// implement it.
type Backend interface {
	Get(key string) (*stats.KernelResult, bool)
	Put(key string, r *stats.KernelResult) error
}

var (
	_ Backend = (*Cache)(nil)
	_ Backend = (*Remote)(nil)
	_ Backend = (*Tiered)(nil)
)

// validKey reports whether key looks like a resultcache content key —
// a lowercase sha256 hex digest. The HTTP store uses it to keep
// arbitrary request paths from ever touching the filesystem, and the
// remote client uses it to refuse keys that would not round-trip.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
