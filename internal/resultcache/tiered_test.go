package resultcache

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// testResult builds a distinguishable fake result; the tier never
// inspects it beyond JSON round-tripping.
func testResult(cycles int64) *stats.KernelResult {
	return &stats.KernelResult{Kernel: "fake", Scheduler: "PRO", Cycles: cycles}
}

// testKey derives a valid content key for tests.
func testKey(t *testing.T, seed any) string {
	t.Helper()
	key, err := Key(SchemaVersion, seed)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// storeServer serves dir as an HTTP object store, returning the
// backing cache and the server.
func storeServer(t *testing.T) (*Cache, *httptest.Server) {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(StoreHandler(c))
	t.Cleanup(srv.Close)
	return c, srv
}

func newTestTiered(t *testing.T, remoteURL string) (*Tiered, *Cache) {
	t.Helper()
	l1, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A generous timeout: these tests assert tier behaviour, not remote
	// latency budgets, and a loaded CI host must not turn a hit into a
	// degradation.
	return NewTiered(l1, NewRemote(remoteURL, 5*time.Second)), l1
}

func TestTieredWriteThrough(t *testing.T) {
	store, srv := storeServer(t)
	tiered, l1 := newTestTiered(t, srv.URL)
	key, want := testKey(t, "write-through"), testResult(111)

	if err := tiered.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if r, ok := l1.Get(key); !ok || r.Cycles != want.Cycles {
		t.Fatalf("L1 after write-through: ok=%v r=%+v", ok, r)
	}
	if r, ok := store.Get(key); !ok || r.Cycles != want.Cycles {
		t.Fatalf("remote store after write-through: ok=%v r=%+v", ok, r)
	}
	if got := tiered.Degraded(); got != 0 {
		t.Fatalf("healthy write-through degraded %d times", got)
	}
}

func TestTieredReadThroughPromotesIntoL1(t *testing.T) {
	store, srv := storeServer(t)
	tiered, l1 := newTestTiered(t, srv.URL)
	key, want := testKey(t, "read-through"), testResult(222)

	// Seed only the remote store — a peer daemon's write-through.
	if err := store.Put(key, want); err != nil {
		t.Fatal(err)
	}
	r, ok := tiered.Get(key)
	if !ok || r.Cycles != want.Cycles {
		t.Fatalf("tiered Get missed a remote-only entry: ok=%v r=%+v", ok, r)
	}
	if got := tiered.L2Hits(); got != 1 {
		t.Fatalf("L2Hits = %d, want 1", got)
	}
	// The hit must have been promoted: a direct L1 read now succeeds.
	if _, ok := l1.Get(key); !ok {
		t.Fatal("remote hit was not promoted into L1")
	}
	// And the next tiered read is served locally (no new L2 hit).
	if _, ok := tiered.Get(key); !ok {
		t.Fatal("promoted entry missing on re-read")
	}
	if got := tiered.L2Hits(); got != 1 {
		t.Fatalf("second read went remote: L2Hits = %d, want 1", got)
	}
}

func TestTieredMissIsCleanWhenBothTiersCold(t *testing.T) {
	_, srv := storeServer(t)
	tiered, _ := newTestTiered(t, srv.URL)
	if _, ok := tiered.Get(testKey(t, "absent")); ok {
		t.Fatal("Get of an absent key hit")
	}
	if got := tiered.L2Misses(); got != 1 {
		t.Fatalf("L2Misses = %d, want 1", got)
	}
	if got := tiered.Degraded(); got != 0 {
		t.Fatalf("clean double miss counted as degraded (%d)", got)
	}
}

func TestTieredDegradesToL1WhenRemoteIsDown(t *testing.T) {
	_, srv := storeServer(t)
	srv.Close() // the remote is gone before the tier ever reaches it
	tiered, l1 := newTestTiered(t, srv.URL)
	key, want := testKey(t, "degraded"), testResult(333)

	// Writes must still land in L1 and report success.
	if err := tiered.Put(key, want); err != nil {
		t.Fatalf("Put with remote down: %v", err)
	}
	if _, ok := l1.Get(key); !ok {
		t.Fatal("Put with remote down lost the L1 copy")
	}
	if got := tiered.Degraded(); got != 1 {
		t.Fatalf("Degraded = %d after failed L2 write, want 1", got)
	}
	// Reads of L1-resident entries never notice the outage...
	if r, ok := tiered.Get(key); !ok || r.Cycles != want.Cycles {
		t.Fatalf("L1 hit with remote down: ok=%v r=%+v", ok, r)
	}
	// ...and reads that would have gone remote miss cleanly instead of
	// erroring or hanging.
	if _, ok := tiered.Get(testKey(t, "degraded-miss")); ok {
		t.Fatal("Get with remote down fabricated a hit")
	}
}

func TestStoreHandlerRejectsBadKeysAndMethods(t *testing.T) {
	_, srv := storeServer(t)
	for path, want := range map[string]int{
		"/not-a-key":                  http.StatusBadRequest,
		"/../../etc/passwd":           http.StatusBadRequest,
		"/" + strings.Repeat("a", 64): http.StatusNotFound, // valid shape, absent
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	key := testKey(t, "method-check")
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/"+key, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: status %d, want 405", resp.StatusCode)
	}
}

func TestStoreHandlerRejectsCorruptEnvelopes(t *testing.T) {
	store, srv := storeServer(t)
	key := testKey(t, "corrupt-put")
	for _, body := range []string{
		"{not json",
		`{"schema":999,"key":"` + key + `","result":{"cycles":1}}`,                   // wrong schema
		`{"schema":2,"key":"` + strings.Repeat("b", 64) + `","result":{"cycles":1}}`, // wrong key
	} {
		req, err := http.NewRequest(http.MethodPut, srv.URL+"/"+key, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode/100 == 2 {
			t.Errorf("PUT of corrupt envelope %q accepted", body)
		}
	}
	if _, ok := store.Get(key); ok {
		t.Fatal("corrupt PUT landed in the store")
	}
}
