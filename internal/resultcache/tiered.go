package resultcache

import (
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/stats"
)

// mL2Degraded counts operations served L1-only because the remote tier
// failed — the "is my shared cache actually shared right now" signal.
var mL2Degraded = obs.NewCounter("resultcache_l2_degraded_total", "tiered-cache operations that fell back to L1-only because the remote tier failed")

// Tiered layers a shared remote store (L2) behind the local disk cache
// (L1):
//
//   - Get is read-through: an L1 hit never touches the network; an L1
//     miss consults L2 and, on a hit, promotes the entry into L1 so the
//     next read is local.
//   - Put is write-through: the result lands in L1 first (the local
//     disk is the correctness-critical copy), then in L2 best-effort.
//
// The L2 is strictly an accelerator: every L2 failure — unreachable
// store, timeout, corrupt envelope — degrades the operation to exactly
// what a plain Cache would have done, counted in
// resultcache_l2_degraded_total. Coherence needs no invalidation
// protocol because entries are content-addressed and immutable: a key
// fully determines its value, so the worst staleness failure mode is a
// redundant simulation, never a wrong result.
type Tiered struct {
	l1 *Cache
	l2 Backend

	l2Hits   atomic.Int64
	l2Misses atomic.Int64
	degraded atomic.Int64
}

// NewTiered builds a tiered store over l1 (required) and l2 (required;
// callers without a remote should use the Cache directly).
func NewTiered(l1 *Cache, l2 Backend) *Tiered {
	return &Tiered{l1: l1, l2: l2}
}

// L1 returns the local disk tier (stats, GC and Key live there).
func (t *Tiered) L1() *Cache { return t.l1 }

// L2Hits returns how many Gets were served by the remote tier.
func (t *Tiered) L2Hits() int64 { return t.l2Hits.Load() }

// L2Misses returns how many L1-missing Gets also missed remotely.
func (t *Tiered) L2Misses() int64 { return t.l2Misses.Load() }

// Degraded returns how many operations fell back to L1-only service.
func (t *Tiered) Degraded() int64 { return t.degraded.Load() }

// Get implements Backend with read-through promotion.
func (t *Tiered) Get(key string) (*stats.KernelResult, bool) {
	if r, ok := t.l1.Get(key); ok {
		return r, true
	}
	r, ok := t.l2.Get(key)
	if !ok {
		t.l2Misses.Add(1)
		return nil, false
	}
	t.l2Hits.Add(1)
	// Promote into L1 so later reads stay local. A failed promotion
	// (disk full) degrades silently: the result itself is still good.
	if err := t.l1.Put(key, r); err != nil {
		t.degrade()
	}
	return r, true
}

// Put implements Backend with write-through. An L1 failure is the
// caller's problem (local disk is the canonical tier); an L2 failure
// only degrades the shared tier.
func (t *Tiered) Put(key string, r *stats.KernelResult) error {
	if err := t.l1.Put(key, r); err != nil {
		return err
	}
	if err := t.l2.Put(key, r); err != nil {
		t.degrade()
	}
	return nil
}

func (t *Tiered) degrade() {
	t.degraded.Add(1)
	mL2Degraded.Inc()
}
