// Package resultcache memoizes simulation results on disk. The
// simulator is deterministic — the same (GPU config, launch, scheduling
// policy, options) always produces the same stats.KernelResult — so a
// result can be stored under a content hash of its inputs and replayed
// on any later run. Warm re-runs of the evaluation harnesses then
// perform zero simulations.
//
// Layout: one JSON file per result, <dir>/<hex key>.json, wrapped in an
// envelope that repeats the schema version and key. A missing file,
// unreadable file, malformed JSON, or envelope mismatch is a cache
// miss, never an error: the caller recomputes and overwrites. Writes go
// through a temp file plus rename so concurrent writers (the parallel
// job engine) can never expose a half-written entry.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Process-wide cache telemetry (internal/obs). These aggregate over
// every open cache in the process; per-cache counters for /v1/stats
// live on the Cache struct.
var (
	mHits       = obs.NewCounter("resultcache_hits_total", "successful cache Gets")
	mMisses     = obs.NewCounter("resultcache_misses_total", "failed cache Gets (absent, corrupt, or wrong schema)")
	mWrites     = obs.NewCounter("resultcache_writes_total", "successful cache Puts")
	mBytesRead  = obs.NewCounter("resultcache_read_bytes_total", "bytes read by cache hits")
	mBytesWrite = obs.NewCounter("resultcache_written_bytes_total", "bytes written by cache Puts")
)

// SchemaVersion is the cache format generation. Bump it whenever the
// simulator's observable behaviour changes (new counters, timing-model
// fixes, KernelResult field changes): the version participates in every
// key, so stale entries from older schemas can never hit.
//
// v2: PRO re-sort cadence fix — the THRESHOLD refresh now fires every
// THRESHOLD cycles instead of every THRESHOLD+1, shifting PRO-family
// cycle counts.
const SchemaVersion = 2

// Cache is a content-addressed store of KernelResults in one directory.
// All methods are safe for concurrent use.
type Cache struct {
	dir     string
	version int

	hits         atomic.Int64
	misses       atomic.Int64
	writes       atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64

	// Cumulative GC telemetry over this cache's lifetime (each pass's
	// GCStats describes only that pass).
	gcRuns    atomic.Int64
	gcEvicted atomic.Int64
	gcFreed   atomic.Int64
}

// envelope is the on-disk wrapper: the version and key guard against
// reading entries written by a different schema or a corrupted file.
type envelope struct {
	Schema int                 `json:"schema"`
	Key    string              `json:"key"`
	Result *stats.KernelResult `json:"result"`
}

// Open creates (if needed) and opens a cache directory at the current
// schema version.
func Open(dir string) (*Cache, error) { return OpenVersion(dir, SchemaVersion) }

// OpenVersion opens a cache pinned to an explicit schema version; tests
// use it to prove that version bumps invalidate old entries.
func OpenVersion(dir string, version int) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultcache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Cache{dir: dir, version: version}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Key hashes an arbitrary JSON-encodable description of a simulation
// together with the cache schema version into a stable hex key.
func (c *Cache) Key(desc any) (string, error) { return Key(c.version, desc) }

// Key hashes a JSON-encodable description of a simulation together with
// an explicit schema version into a stable hex key. Go's encoding/json
// emits struct fields in declaration order, so the same inputs always
// produce the same bytes. Callers without an open cache (the daemon's
// in-flight dedupe) use Key(SchemaVersion, desc) and get the same keys
// the cache files entries under.
func Key(version int, desc any) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "resultcache/v%d\n", version)
	enc := json.NewEncoder(h)
	if err := enc.Encode(desc); err != nil {
		return "", fmt.Errorf("resultcache: encoding key: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// path maps a key to its file.
func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".json") }

// Get returns the cached result for key, or (nil, false) on any kind of
// miss — absent, unreadable, corrupt, or from a different schema.
func (c *Cache) Get(key string) (*stats.KernelResult, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		mMisses.Inc()
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil ||
		env.Schema != c.version || env.Key != key || env.Result == nil {
		c.misses.Add(1)
		mMisses.Inc()
		return nil, false
	}
	c.hits.Add(1)
	c.bytesRead.Add(int64(len(data)))
	mHits.Inc()
	mBytesRead.Add(int64(len(data)))
	c.touch(key)
	return env.Result, true
}

// errBadEnvelope rejects store PUTs whose body is not a valid envelope
// for the requested key at this cache's schema version.
var errBadEnvelope = fmt.Errorf("resultcache: body is not a valid result envelope for this key and schema")

// Put stores a result under key, atomically replacing any previous
// entry.
func (c *Cache) Put(key string, r *stats.KernelResult) error {
	data, err := json.Marshal(envelope{Schema: c.version, Key: key, Result: r})
	if err != nil {
		return fmt.Errorf("resultcache: encoding result: %w", err)
	}
	return c.writeEntry(key, data)
}

// writeEntry lands pre-encoded envelope bytes under key through a temp
// file plus rename, so concurrent writers never expose a half-written
// entry. Shared by Put and the HTTP store's putRaw.
func (c *Cache) writeEntry(key string, data []byte) error {
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	c.writes.Add(1)
	c.bytesWritten.Add(int64(len(data)))
	mWrites.Inc()
	mBytesWrite.Add(int64(len(data)))
	return nil
}

// Hits returns the number of successful Gets since Open.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of failed Gets since Open.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Writes returns the number of successful Puts since Open.
func (c *Cache) Writes() int64 { return c.writes.Load() }

// BytesRead returns the bytes returned by cache hits since Open.
func (c *Cache) BytesRead() int64 { return c.bytesRead.Load() }

// BytesWritten returns the bytes written by Puts since Open.
func (c *Cache) BytesWritten() int64 { return c.bytesWritten.Load() }

// GCRuns returns the number of GC passes since Open.
func (c *Cache) GCRuns() int64 { return c.gcRuns.Load() }

// GCEvicted returns entries evicted across all GC passes since Open.
func (c *Cache) GCEvicted() int64 { return c.gcEvicted.Load() }

// GCFreed returns bytes freed across all GC passes since Open (stale
// temp files included).
func (c *Cache) GCFreed() int64 { return c.gcFreed.Load() }
