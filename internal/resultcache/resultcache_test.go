package resultcache

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/stats"
)

func sampleResult() *stats.KernelResult {
	return &stats.KernelResult{
		Kernel:       "aesEncrypt128",
		Scheduler:    "PRO",
		Cycles:       123456,
		WarpInstrs:   7890,
		ThreadInstrs: 252480,
		TBCount:      257,
		Stalls:       stats.StallBreakdown{Issued: 7890, Idle: 11, Scoreboard: 22, Pipeline: 33},
		Mem:          stats.MemStats{L1Accesses: 100, L1Misses: 25},
		Timeline:     []stats.TBSpan{{TB: 0, SM: 0, Slot: 0, Start: 10, End: 500}},
		OrderTrace:   []stats.OrderSample{{Cycle: 1000, Order: []int{2, 0, 1}}},
	}
}

func TestHitMissRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, err := c.Key(map[string]any{"kernel": "aes", "sched": "PRO"})
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get(key); ok {
		t.Fatal("hit on an empty cache")
	}
	if c.Misses() != 1 {
		t.Fatalf("Misses = %d, want 1", c.Misses())
	}

	want := sampleResult()
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mutated result:\ngot  %+v\nwant %+v", got, want)
	}
	if c.Hits() != 1 || c.Writes() != 1 {
		t.Fatalf("Hits = %d, Writes = %d, want 1, 1", c.Hits(), c.Writes())
	}
}

func TestKeyIsStableAndDiscriminates(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type desc struct {
		Kernel, Sched string
		Grid          int
	}
	k1, err := c.Key(desc{"aes", "PRO", 257})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := c.Key(desc{"aes", "PRO", 257})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("identical descriptions hashed differently")
	}
	k3, err := c.Key(desc{"aes", "PRO", 256})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Fatal("different descriptions collided")
	}
}

func TestCorruptEntryFallsBackToMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, err := c.Key("corruption-test")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key, sampleResult()); err != nil {
		t.Fatal(err)
	}

	corruptions := map[string][]byte{
		"truncated": []byte(`{"schema":1,"key":`),
		"garbage":   []byte("\x00\x01not json at all"),
		"empty":     nil,
		"wrong-key": []byte(`{"schema":1,"key":"0000","result":{"Kernel":"x"}}`),
		"no-result": []byte(`{"schema":1,"key":"` + key + `"}`),
	}
	for name, data := range corruptions {
		if err := os.WriteFile(filepath.Join(dir, key+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(key); ok {
			t.Fatalf("%s: corrupt entry returned a hit", name)
		}
	}

	// Recompute-and-overwrite restores the entry.
	if err := c.Put(key, sampleResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); !ok {
		t.Fatal("miss after recovering from corruption")
	}
}

func TestSchemaVersionBumpInvalidates(t *testing.T) {
	dir := t.TempDir()
	v1, err := OpenVersion(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	desc := "the same simulation"
	k1, err := v1.Key(desc)
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.Put(k1, sampleResult()); err != nil {
		t.Fatal(err)
	}

	v2, err := OpenVersion(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := v2.Key(desc)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("schema bump did not change the key")
	}
	if _, ok := v2.Get(k2); ok {
		t.Fatal("new schema hit an old entry")
	}
	// Even a deliberate read of the old key must reject the envelope.
	if _, ok := v2.Get(k1); ok {
		t.Fatal("new schema accepted an old-schema envelope")
	}
	// The old version still sees its entry.
	if _, ok := v1.Get(k1); !ok {
		t.Fatal("old schema lost its entry")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty directory accepted")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, err := c.Key("contended")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				if err := c.Put(key, sampleResult()); err != nil {
					t.Error(err)
					return
				}
				if r, ok := c.Get(key); ok && r.Cycles != 123456 {
					t.Errorf("torn read: Cycles = %d", r.Cycles)
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
