// Package jobs is the parallel simulation job engine. Every evaluation
// harness in the repository — cmd/report, cmd/papercheck, cmd/sweep,
// the bench suite — boils down to a batch of independent, deterministic
// (config, launch, policy, options) simulations; this package fans such
// a batch across a worker pool sized to the machine and memoizes each
// result in an optional content-addressed disk cache, so a warm re-run
// performs zero simulations.
//
// Determinism: results are returned indexed by job position, never by
// completion order, so a batch run at Workers=8 is byte-identical to
// the same batch run at Workers=1 (the simulator itself is
// deterministic). Panics inside a job are captured and surfaced as that
// job's error rather than crashing the pool, and a context cancel (or
// the first failing job) stops the remaining work promptly.
package jobs

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/flight"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/schedreg"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Process-wide job telemetry (internal/obs). Counters aggregate over
// every engine in the process; the gauges describe the instantaneous
// state of whatever batches are running. All updates are O(1) atomics
// at job granularity — the simulation cycle loop itself is never
// touched.
var (
	mCompleted = obs.NewCounter("jobs_completed_total", "jobs finished (including failures)")
	mSimulated = obs.NewCounter("jobs_simulated_total", "jobs that ran the simulator")
	mReplayed  = obs.NewCounter("jobs_replayed_total", "jobs served from the result cache")
	mFailed    = obs.NewCounter("jobs_failed_total", "jobs that returned an error (panics included)")
	mQueued    = obs.NewGauge("jobs_queue_depth", "batch jobs accepted but not yet picked up by a worker")
	mBusy      = obs.NewGauge("jobs_workers_busy", "workers currently executing a job")
	mSimCycles = obs.NewCounter("jobs_sim_cycles_total", "simulated GPU cycles summed over simulated jobs")
	mSimTime   = obs.NewHistogram("jobs_sim_duration_seconds", "wall time of simulated (non-cached) jobs", nil)
	mCycleRate = obs.NewGauge("jobs_sim_cycles_per_sec", "simulated cycles per wall second of the most recently finished simulated job")
)

// Job describes one simulation. Scheduler names a registered policy
// (schedreg); alternatively Factory supplies an explicit policy, in
// which case FactoryKey must be a stable string identifying its exact
// parameters for the result cache — with Factory set and FactoryKey
// empty the job still runs but is never cached (an anonymous policy has
// no trustworthy identity).
type Job struct {
	// Config is the simulated GPU; nil means the paper's GTX480.
	Config *config.Config
	// Launch is the kernel launch to simulate.
	Launch *engine.Launch
	// Kernel labels the job in progress events; defaults to the
	// program name.
	Kernel string
	// Scheduler is a registered policy name (ignored when Factory is
	// set).
	Scheduler string
	// Factory overrides Scheduler with an explicit policy.
	Factory engine.Factory
	// FactoryKey is the cache identity of Factory (e.g.
	// "PRO+threshold=500").
	FactoryKey string
	// Options tune the run.
	Options gpu.Options
	// Cost is the job's expected relative run time (any consistent unit;
	// Grid uses launch threads = grid TBs × block size). The engine
	// dispatches expensive jobs first so the worker pool doesn't end on
	// one long straggler; zero-cost jobs keep batch order. Cost never
	// affects results or their order, only scheduling.
	Cost int64
}

// Label returns the display name of the job's kernel — what progress
// events and daemon streams report. Exported for the runner-multiplexing
// layers (daemon, cluster) that emit events about jobs they did not run
// themselves.
func (j *Job) Label() string { return j.label() }

// SchedLabel returns the display name of the job's scheduling policy.
func (j *Job) SchedLabel() string { return j.schedLabel() }

// label returns the display name of the job's kernel.
func (j *Job) label() string {
	if j.Kernel != "" {
		return j.Kernel
	}
	if j.Launch != nil && j.Launch.Program != nil {
		return j.Launch.Program.Name
	}
	return "?"
}

// schedLabel returns the display name of the job's policy.
func (j *Job) schedLabel() string {
	if j.Factory != nil {
		if j.FactoryKey != "" {
			return j.FactoryKey
		}
		return "custom"
	}
	return j.Scheduler
}

// Event reports the completion of one job to the progress callback.
type Event struct {
	// Kernel and Scheduler identify the finished job.
	Kernel, Scheduler string
	// Done and Total count completed jobs and the batch size.
	Done, Total int
	// FromCache is true when the result was replayed, not simulated.
	FromCache bool
	// CacheHits counts replayed results so far in this batch.
	CacheHits int
	// Elapsed is the wall time since the batch started; ETA estimates
	// the remaining wall time from the mean pace so far.
	Elapsed, ETA time.Duration
}

// Simulated counts the jobs of this batch that actually ran the
// simulator.
func (e Event) Simulated() int { return e.Done - e.CacheHits }

// Runner executes batches of simulation jobs and returns one result per
// job, in job order. Both the local Engine and the daemon client
// (internal/daemon) implement it, so harness code can target either a
// worker pool in-process or a long-running simulation service.
type Runner interface {
	Run(ctx context.Context, js []Job) ([]*stats.KernelResult, error)
}

// Engine runs batches of jobs. The zero value is valid: NumCPU workers,
// no cache, no progress reporting.
type Engine struct {
	// Workers is the pool size; <= 0 means runtime.NumCPU().
	Workers int
	// SMWorkers controls intra-simulation parallelism (parallel SM
	// ticking, config.ParallelSMs) for jobs that leave the knob at auto:
	// 0 derives max(1, GOMAXPROCS/Workers) so batch fan-out and
	// per-simulation fan-out share the machine (at -jobs 1 a lone
	// simulation gets every core; at -jobs NumCPU simulations stay
	// serial), a positive value forces that worker count, and a negative
	// value leaves the decision to the simulator's own auto mode. Jobs
	// whose Config sets ParallelSMs or DisableSMParallel explicitly are
	// never overridden. Like the knob itself this cannot affect results
	// or cache keys, only wall-clock time.
	SMWorkers int
	// Cache, when non-nil, memoizes results on disk.
	Cache *resultcache.Cache
	// Backend, when non-nil, overrides Cache as the store job execution
	// reads and writes — typically a resultcache.Tiered built with Cache
	// as its L1, so a fleet of engines shares one remote warm tier.
	// Cache stays the handle for keys, stats and GC (the local tier owns
	// those); Backend only changes where results are looked up and
	// stored. Nil means Cache alone.
	Backend resultcache.Backend
	// OnProgress, when non-nil, is called after every job completion.
	// Calls are serialized; keep the callback fast.
	OnProgress func(Event)
	// Trace, when non-nil, receives one NDJSON span per lifecycle step
	// of every job this engine processes (submit, then done with the
	// outcome). A nil tracer costs one pointer check per job.
	Trace *obs.Tracer
	// FlightDir, when non-empty, attaches a flight recorder to every
	// simulated (non-cached) job and writes its Perfetto trace as
	// <key>.trace.json in that directory — the per-job capture artifact
	// next to the result-cache entry. Like every execution knob it never
	// enters cache keys (gpu.Options.Flight is json:"-"), so recorded
	// and unrecorded runs share identity. Cache hits record nothing: a
	// replayed result never executed, so there is no flight to record.
	FlightDir string
	// FlightOpts tune the recorders FlightDir creates (zero value =
	// flight defaults).
	FlightOpts flight.Options

	// Engine-lifetime counters, summed over every batch this engine ran
	// (a harness typically runs several: the main suite, timelines,
	// traces).
	completed atomic.Int64
	replayed  atomic.Int64
}

// Completed returns the number of jobs finished over the engine's
// lifetime.
func (e *Engine) Completed() int64 { return e.completed.Load() }

// Replayed returns how many of the completed jobs came from the cache.
func (e *Engine) Replayed() int64 { return e.replayed.Load() }

// Simulated returns how many of the completed jobs actually ran the
// simulator.
func (e *Engine) Simulated() int64 { return e.completed.Load() - e.replayed.Load() }

// New builds an engine with workers pool slots (<= 0 means NumCPU) and,
// when cacheDir is non-empty, a result cache in that directory.
func New(workers int, cacheDir string, progress func(Event)) (*Engine, error) {
	e := &Engine{Workers: workers, OnProgress: progress}
	if cacheDir != "" {
		c, err := resultcache.Open(cacheDir)
		if err != nil {
			return nil, err
		}
		e.Cache = c
	}
	return e, nil
}

// cacheKey is the JSON-encoded identity of a simulation. Struct fields
// marshal in declaration order, so the encoding is stable.
type cacheKey struct {
	Config    *config.Config
	Launch    *engine.Launch
	Scheduler string
	Options   gpu.Options
}

// Run executes the batch and returns one result per job, in job order.
// On error (including a captured panic or a context cancel) the partial
// results are discarded and the first failure is returned.
func (e *Engine) Run(ctx context.Context, js []Job) ([]*stats.KernelResult, error) {
	if len(js) == 0 {
		return nil, nil
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(js) {
		workers = len(js)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*stats.KernelResult, len(js))
	idx := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
		hits     int
		start    = time.Now()
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	finish := func(j *Job, fromCache bool) {
		e.completed.Add(1)
		if fromCache {
			e.replayed.Add(1)
		}
		mu.Lock()
		done++
		if fromCache {
			hits++
		}
		ev := Event{
			Kernel:    j.label(),
			Scheduler: j.schedLabel(),
			Done:      done,
			Total:     len(js),
			FromCache: fromCache,
			CacheHits: hits,
			Elapsed:   time.Since(start),
		}
		ev.ETA = eta(ev.Elapsed, done, hits, len(js))
		cb := e.OnProgress
		if cb != nil {
			cb(ev)
		}
		mu.Unlock()
	}

	mQueued.Add(int64(len(js)))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				mQueued.Add(-1)
				if ctx.Err() != nil {
					return
				}
				r, fromCache, err := e.runOne(ctx, &js[i])
				if err != nil {
					fail(fmt.Errorf("jobs: job %d (%s/%s): %w",
						i, js[i].label(), js[i].schedLabel(), err))
					return
				}
				results[i] = r
				finish(&js[i], fromCache)
			}
		}()
	}

	// Dispatch longest-expected jobs first (stable, so equal costs keep
	// batch order) to cut tail latency; results[i] still lands at the
	// job's input position.
	order := make([]int, len(js))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return js[order[a]].Cost > js[order[b]].Cost
	})

	sent := 0
feed:
	for _, i := range order {
		select {
		case idx <- i:
			sent++
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	// Jobs never handed to a worker (cancelled batch) leave the queue
	// here; dispatched ones were decremented at their pickup.
	mQueued.Add(int64(sent - len(js)))

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return nil, fmt.Errorf("jobs: %w", ctxErr)
	}
	return results, nil
}

// eta estimates the remaining wall time of a batch after done of total
// jobs finished in elapsed, hits of them replayed from the cache. The
// pace comes from *simulated* jobs only: cache hits complete in
// microseconds, so a warm batch's mean-over-everything pace would
// report a near-zero ETA while minutes of cold simulations remain.
// Remaining jobs are assumed cold (an upper bound — some may hit).
// Before the first simulated job finishes the overall pace is all
// there is, and for a fully-replayed batch it is also correct.
func eta(elapsed time.Duration, done, hits, total int) time.Duration {
	if done == 0 || done >= total {
		return 0
	}
	pace := done
	if sim := done - hits; sim > 0 {
		pace = sim
	}
	return elapsed / time.Duration(pace) * time.Duration(total-done)
}

// resolve returns the policy factory for j and the stable scheduler
// identity the result cache keys it under. The identity is "" for an
// anonymous factory (Factory set, FactoryKey empty): such a job runs
// but can be neither cached nor deduped.
func (j *Job) resolve() (engine.Factory, string, error) {
	if j.Factory != nil {
		return j.Factory, j.FactoryKey, nil
	}
	f, err := schedreg.New(j.Scheduler)
	if err != nil {
		return nil, "", err
	}
	return f, j.Scheduler, nil
}

// Key returns the content-addressed identity of j — the exact key the
// result cache files its entry under — and whether j has one (jobs with
// an anonymous factory do not). The key is stable across processes and
// engines at the same cache schema version, which is what lets a daemon
// dedupe in-flight work submitted by independent clients.
func (e *Engine) Key(j *Job) (key string, ok bool, err error) {
	_, schedID, err := j.resolve()
	if err != nil || schedID == "" {
		return "", false, err
	}
	cfg := j.Config
	if cfg == nil {
		cfg = config.GTX480()
	}
	desc := cacheKey{Config: cfg, Launch: j.Launch, Scheduler: schedID, Options: j.Options}
	if e.Cache != nil {
		key, err = e.Cache.Key(desc)
	} else {
		key, err = resultcache.Key(resultcache.SchemaVersion, desc)
	}
	return key, err == nil, err
}

// Key returns the content-addressed identity of j without needing an
// engine or an open cache: the same key Engine.Key computes at the
// current schema version. Layers that route jobs across processes — the
// cluster shard selector and coordinator — use it to slice and merge
// batches by the exact identity the result cache files entries under.
func Key(j *Job) (key string, ok bool, err error) {
	var e Engine
	return e.Key(j)
}

// runOne resolves, memoizes and executes a single job, converting any
// panic into an error. ctx aborts an in-flight simulation within a
// bounded delay (see gpu.RunContext). Every call feeds the process
// metrics and, when the engine has a tracer, emits a submit/done span
// pair.
func (e *Engine) runOne(ctx context.Context, j *Job) (r *stats.KernelResult, fromCache bool, err error) {
	start := time.Now()
	var key string
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
		}
		e.observeDone(j, key, r, fromCache, time.Since(start), err)
	}()

	cfg := j.Config
	if cfg == nil {
		cfg = config.GTX480()
	}
	factory, schedID, err := j.resolve()
	if err != nil {
		return nil, false, err
	}

	store := e.store()
	cacheable := store != nil && schedID != ""
	if cacheable || (e.Trace != nil && schedID != "") {
		desc := cacheKey{Config: cfg, Launch: j.Launch, Scheduler: schedID, Options: j.Options}
		if e.Cache != nil {
			key, err = e.Cache.Key(desc)
		} else {
			key, err = resultcache.Key(resultcache.SchemaVersion, desc)
		}
		if err != nil {
			return nil, false, err
		}
	}
	e.Trace.Emit(obs.Span{Event: "submit", Key: key, Kernel: j.label(), Sched: j.schedLabel()})
	if cacheable {
		if cached, ok := store.Get(key); ok {
			return cached, true, nil
		}
	}

	// Resolve intra-simulation parallelism for auto jobs. This happens
	// after the cache key is computed, and the knobs are excluded from
	// key JSON anyway (`json:"-"`), so the identity of the job cannot
	// depend on how it is executed.
	if cfg.ParallelSMs == 0 && !cfg.DisableSMParallel {
		if n := e.smWorkers(); n > 0 {
			cc := *cfg
			cc.ParallelSMs = n
			cfg = &cc
		}
	}

	// Flight capture: attach a per-job recorder when the engine has a
	// capture directory and the job doesn't carry its own. The copy of
	// Options is essential — jobs are shared batch-slice entries, and
	// the recorder is strictly per-run.
	opts := j.Options
	var rec *flight.Recorder
	if e.FlightDir != "" && opts.Flight == nil {
		rec = flight.New(e.FlightOpts)
		opts.Flight = rec
	}

	mBusy.Add(1)
	defer mBusy.Add(-1)
	// Worker goroutines run under pprof labels so `make profile`
	// artifacts attribute hot paths per workload.
	pprof.Do(ctx, pprof.Labels(
		"kernel", j.label(), "scheduler", j.schedLabel(), "job_key", key,
	), func(ctx context.Context) {
		r, err = gpu.RunContext(ctx, cfg, j.Launch, factory, opts)
	})
	if err != nil {
		return nil, false, err
	}
	if rec != nil && rec.Recorded() {
		if werr := e.writeFlightArtifact(j, key, rec); werr != nil {
			return nil, false, werr
		}
	}
	if cacheable {
		if err := store.Put(key, r); err != nil {
			return nil, false, err
		}
	}
	return r, false, nil
}

// writeFlightArtifact persists one simulated job's flight capture as
// Perfetto trace-event JSON under FlightDir, named by the job's cache
// key (so the artifact sits next to — and shares identity with — the
// result-cache entry), falling back to kernel_scheduler for uncacheable
// jobs.
func (e *Engine) writeFlightArtifact(j *Job, key string, rec *flight.Recorder) error {
	name := key
	if name == "" {
		name = j.label() + "_" + j.schedLabel()
	}
	if err := os.MkdirAll(e.FlightDir, 0o755); err != nil {
		return fmt.Errorf("flight artifact: %w", err)
	}
	path := filepath.Join(e.FlightDir, name+".trace.json")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("flight artifact: %w", err)
	}
	if err := rec.Capture().WritePerfetto(f); err != nil {
		f.Close()
		return fmt.Errorf("flight artifact %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("flight artifact %s: %w", path, err)
	}
	return nil
}

// store resolves the result store job execution uses: the explicit
// Backend when set, otherwise the plain disk cache, otherwise nothing.
func (e *Engine) store() resultcache.Backend {
	if e.Backend != nil {
		return e.Backend
	}
	if e.Cache != nil {
		return e.Cache
	}
	return nil
}

// smWorkers resolves the Engine.SMWorkers policy to a concrete
// config.ParallelSMs value for auto jobs; <= 0 means "do not stamp".
func (e *Engine) smWorkers() int {
	if e.SMWorkers != 0 {
		return e.SMWorkers
	}
	w := e.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	n := runtime.GOMAXPROCS(0) / w
	if n < 1 {
		n = 1
	}
	return n
}

// observeDone records one finished runOne in the process metrics and
// the engine's tracer. err covers failures and captured panics.
func (e *Engine) observeDone(j *Job, key string, r *stats.KernelResult, fromCache bool, dur time.Duration, err error) {
	mCompleted.Inc()
	outcome := obs.OutcomeSimulated
	switch {
	case err != nil:
		outcome = obs.OutcomeError
		mFailed.Inc()
	case fromCache:
		outcome = obs.OutcomeCacheHit
		mReplayed.Inc()
	default:
		mSimulated.Inc()
		mSimCycles.Add(r.Cycles)
		mSimTime.Observe(dur.Seconds())
		if s := dur.Seconds(); s > 0 {
			mCycleRate.Set(int64(float64(r.Cycles) / s))
		}
	}
	if e.Trace == nil {
		return
	}
	span := obs.Span{
		Event: "done", Key: key, Kernel: j.label(), Sched: j.schedLabel(),
		Outcome: outcome, DurationMS: obs.Millis(dur),
	}
	if r != nil {
		span.SimCycles = r.Cycles
	}
	if err != nil {
		span.Err = err.Error()
	}
	e.Trace.Emit(span)
}

// RunJob executes one job synchronously on the caller's goroutine,
// bypassing the batch worker pool but keeping the cache and the
// engine-lifetime counters — the daemon's per-job entry point, where
// concurrency, progress streaming and dedupe live above the engine. It
// additionally reports whether the result was replayed from the cache.
func (e *Engine) RunJob(ctx context.Context, j *Job) (*stats.KernelResult, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("jobs: %w", err)
	}
	r, fromCache, err := e.runOne(ctx, j)
	if err != nil {
		return nil, false, fmt.Errorf("jobs: job (%s/%s): %w", j.label(), j.schedLabel(), err)
	}
	e.completed.Add(1)
	if fromCache {
		e.replayed.Add(1)
	}
	return r, fromCache, nil
}

// RunOne is the single-job convenience: it runs j synchronously through
// the engine (cache included) and returns its result.
func (e *Engine) RunOne(ctx context.Context, j Job) (*stats.KernelResult, error) {
	rs, err := e.Run(ctx, []Job{j})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// PrintProgress returns a progress callback that renders each event as
// one line on w — conventionally os.Stderr, so stdout stays
// machine-parseable. Lines look like
//
//	[  12.3s]  37/100 aesEncrypt128/PRO (12 cached, eta 41.0s)
func PrintProgress(w io.Writer) func(Event) {
	return func(ev Event) {
		tags := ""
		if ev.FromCache {
			tags = " [cached]"
		}
		extra := ""
		if ev.CacheHits > 0 {
			extra = fmt.Sprintf("%d cached", ev.CacheHits)
		}
		if ev.ETA > 0 {
			if extra != "" {
				extra += ", "
			}
			extra += fmt.Sprintf("eta %.1fs", ev.ETA.Seconds())
		}
		if extra != "" {
			extra = " (" + extra + ")"
		}
		fmt.Fprintf(w, "[%7.1fs] %3d/%d %s/%s%s%s\n",
			ev.Elapsed.Seconds(), ev.Done, ev.Total, ev.Kernel, ev.Scheduler, tags, extra)
	}
}

// Grid builds the standard evaluation batch: every workload under every
// named scheduler, scheduler-major within each workload (the same order
// the serial harness used). maxTBs > 0 shrinks each grid first.
func Grid(ws []*workloads.Workload, scheds []string, maxTBs int, opts gpu.Options) []Job {
	js := make([]Job, 0, len(ws)*len(scheds))
	for _, w := range ws {
		run := w
		if maxTBs > 0 {
			run = w.Shrunk(maxTBs)
		}
		for _, sched := range scheds {
			js = append(js, Job{
				Launch:    run.Launch,
				Kernel:    run.Kernel,
				Scheduler: sched,
				Options:   opts,
				Cost:      int64(run.Launch.GridTBs) * int64(run.Launch.BlockThreads),
			})
		}
	}
	return js
}
