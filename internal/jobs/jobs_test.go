package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/resultcache"
	"repro/internal/sched"
	"repro/internal/workloads"
)

// testBatch is a small kernels × schedulers grid.
func testBatch(t *testing.T) []Job {
	t.Helper()
	var ws []*workloads.Workload
	for _, k := range []string{"aesEncrypt128", "scalarProdGPU"} {
		w, err := workloads.ByKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return Grid(ws, []string{"LRR", "PRO"}, 8, gpu.Options{})
}

// mustRun runs the batch and fails the test on error.
func mustRun(t *testing.T, e *Engine, js []Job) []json.RawMessage {
	t.Helper()
	rs, err := e.Run(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]json.RawMessage, len(rs))
	for i, r := range rs {
		if r == nil {
			t.Fatalf("job %d produced a nil result", i)
		}
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = data
	}
	return out
}

func TestParallelMatchesSerial(t *testing.T) {
	js := testBatch(t)
	serial := mustRun(t, &Engine{Workers: 1}, js)
	parallel := mustRun(t, &Engine{Workers: 4}, js)
	for i := range js {
		if string(serial[i]) != string(parallel[i]) {
			t.Fatalf("job %d (%s/%s): parallel result differs from serial",
				i, js[i].Kernel, js[i].Scheduler)
		}
	}
}

func TestCacheWarmRunSimulatesNothing(t *testing.T) {
	cache, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	js := testBatch(t)

	var cold, warm []Event
	e := &Engine{Workers: 2, Cache: cache, OnProgress: func(ev Event) { cold = append(cold, ev) }}
	first := mustRun(t, e, js)
	if got := cold[len(cold)-1]; got.CacheHits != 0 || got.Simulated() != len(js) {
		t.Fatalf("cold run: hits %d, simulated %d", got.CacheHits, got.Simulated())
	}

	e.OnProgress = func(ev Event) { warm = append(warm, ev) }
	second := mustRun(t, e, js)
	last := warm[len(warm)-1]
	if last.CacheHits != len(js) || last.Simulated() != 0 {
		t.Fatalf("warm run simulated %d jobs, %d hits; want 0 simulations",
			last.Simulated(), last.CacheHits)
	}
	for _, ev := range warm {
		if !ev.FromCache {
			t.Fatalf("warm run event %s/%s not from cache", ev.Kernel, ev.Scheduler)
		}
	}
	for i := range js {
		if string(first[i]) != string(second[i]) {
			t.Fatalf("job %d: cached result differs from simulated", i)
		}
	}
	if cache.Hits() != int64(len(js)) {
		t.Fatalf("cache.Hits = %d, want %d", cache.Hits(), len(js))
	}
}

func TestCacheKeysDiscriminateJobs(t *testing.T) {
	cache, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Workers: 2, Cache: cache}
	js := testBatch(t)
	mustRun(t, e, js)
	if cache.Writes() != int64(len(js)) {
		t.Fatalf("cache.Writes = %d, want %d distinct entries", cache.Writes(), len(js))
	}
}

func TestProgressEventsAreOrdered(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	e := &Engine{Workers: 4, OnProgress: func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}}
	js := testBatch(t)
	mustRun(t, e, js)
	if len(events) != len(js) {
		t.Fatalf("%d events for %d jobs", len(events), len(js))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(js) {
			t.Fatalf("event %d: Done %d / Total %d", i, ev.Done, ev.Total)
		}
		if ev.ETA < 0 {
			t.Fatalf("event %d: negative ETA %v", i, ev.ETA)
		}
	}
	if events[len(events)-1].ETA != 0 {
		t.Fatal("final event should have zero ETA")
	}
}

func TestPanicIsCapturedAsJobError(t *testing.T) {
	w, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	js := []Job{{
		Launch: w.Shrunk(4).Launch,
		Kernel: w.Kernel,
		Factory: func(sm *engine.SM) engine.Scheduler {
			panic("policy exploded")
		},
	}}
	_, err = (&Engine{Workers: 2}).Run(context.Background(), js)
	if err == nil {
		t.Fatal("panic in a job did not surface as an error")
	}
	if !strings.Contains(err.Error(), "policy exploded") {
		t.Fatalf("error lost the panic value: %v", err)
	}
	if !strings.Contains(err.Error(), w.Kernel) {
		t.Fatalf("error lost the job identity: %v", err)
	}
}

func TestUnknownSchedulerFailsBatch(t *testing.T) {
	w, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	js := Grid([]*workloads.Workload{w}, []string{"BOGUS"}, 4, gpu.Options{})
	if _, err := (&Engine{}).Run(context.Background(), js); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestCancelledContextStopsBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ws []*workloads.Workload
	w, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	ws = append(ws, w)
	js := Grid(ws, []string{"LRR", "GTO", "TL", "PRO"}, 8, gpu.Options{})
	if _, err := (&Engine{Workers: 2}).Run(ctx, js); err == nil {
		t.Fatal("cancelled context did not abort the batch")
	}
}

func TestEmptyBatch(t *testing.T) {
	rs, err := (&Engine{}).Run(context.Background(), nil)
	if err != nil || rs != nil {
		t.Fatalf("empty batch: %v, %v", rs, err)
	}
}

func TestCustomFactoryCachesOnlyWithKey(t *testing.T) {
	cache, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByKernel("scalarProdGPU")
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Workers: 1, Cache: cache}
	j := Job{
		Launch:  w.Shrunk(4).Launch,
		Kernel:  w.Kernel,
		Factory: sched.NewLRR,
	}

	// Anonymous factory: runs, but must never be cached.
	if _, err := e.RunOne(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if cache.Writes() != 0 {
		t.Fatalf("anonymous factory was cached: writes = %d", cache.Writes())
	}

	// The same factory with a stable identity caches and replays.
	j.FactoryKey = "LRR-custom"
	if _, err := e.RunOne(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if cache.Writes() != 1 {
		t.Fatalf("keyed factory not cached: writes = %d", cache.Writes())
	}
	if _, err := e.RunOne(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 1 {
		t.Fatalf("keyed factory not replayed: hits = %d", cache.Hits())
	}
}

func TestGridOrderIsSchedulerMajorPerWorkload(t *testing.T) {
	w1, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := workloads.ByKernel("scalarProdGPU")
	if err != nil {
		t.Fatal(err)
	}
	js := Grid([]*workloads.Workload{w1, w2}, []string{"LRR", "PRO"}, 10, gpu.Options{})
	want := [][2]string{
		{"aesEncrypt128", "LRR"}, {"aesEncrypt128", "PRO"},
		{"scalarProdGPU", "LRR"}, {"scalarProdGPU", "PRO"},
	}
	if len(js) != len(want) {
		t.Fatalf("%d jobs, want %d", len(js), len(want))
	}
	for i, j := range js {
		if j.Kernel != want[i][0] || j.Scheduler != want[i][1] {
			t.Fatalf("job %d = %s/%s, want %s/%s", i, j.Kernel, j.Scheduler, want[i][0], want[i][1])
		}
		if j.Launch.GridTBs > 10 {
			t.Fatalf("job %d grid not shrunk: %d", i, j.Launch.GridTBs)
		}
	}
}

func TestETAUsesSimulatedPace(t *testing.T) {
	// 10 jobs, 4 done in 4s — but 3 of those were cache hits: only one
	// job was actually simulated, so the remaining 6 should be estimated
	// at ~4s each, not at the collapsed mean of 1s.
	got := eta(4*time.Second, 4, 3, 10)
	if got != 24*time.Second {
		t.Fatalf("eta = %v, want 24s (pace of simulated jobs)", got)
	}
	// All-hits warm run: no simulated pace to extrapolate, fall back to
	// the overall pace.
	if got := eta(4*time.Second, 4, 4, 10); got != 6*time.Second {
		t.Fatalf("all-hit eta = %v, want 6s (overall pace)", got)
	}
	if eta(time.Second, 0, 0, 10) != 0 {
		t.Fatal("eta before the first completion should be 0")
	}
	if eta(time.Second, 10, 2, 10) != 0 {
		t.Fatal("eta after the last completion should be 0")
	}
}

func TestContextCancelAbortsLongJob(t *testing.T) {
	w, err := workloads.ByKernel("scalarProdGPU")
	if err != nil {
		t.Fatal(err)
	}
	// The full grid simulates for roughly a second; cancelling shortly
	// after the start must abort it long before it finishes.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	e := &Engine{Workers: 1}
	start := time.Now()
	_, _, err = e.RunJob(ctx, &Job{Launch: w.Launch, Kernel: w.Kernel, Scheduler: "PRO"})
	if err == nil {
		t.Fatal("cancelled job completed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v; the simulation ran to completion", d)
	}
}

func TestKeyMatchesCachedEntries(t *testing.T) {
	cache, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Workers: 1, Cache: cache}
	j := Job{Launch: w.Shrunk(4).Launch, Kernel: w.Kernel, Scheduler: "LRR"}
	key, ok, err := e.Key(&j)
	if err != nil || !ok {
		t.Fatalf("Key: %v, ok=%v", err, ok)
	}
	if _, err := e.RunOne(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if _, hit := cache.Get(key); !hit {
		t.Fatal("Engine.Key does not address the entry RunOne wrote")
	}

	// An anonymous factory has no stable identity.
	j2 := Job{Launch: w.Shrunk(4).Launch, Factory: sched.NewLRR}
	if _, ok, err := e.Key(&j2); err != nil || ok {
		t.Fatalf("anonymous factory got a key (ok=%v, err=%v)", ok, err)
	}

	// Without a cache the key must still be derivable (the daemon
	// dedupes in-flight work even when running cacheless).
	e2 := &Engine{}
	key2, ok, err := e2.Key(&j)
	if err != nil || !ok || key2 != key {
		t.Fatalf("cacheless Key = %q, ok=%v, err=%v; want %q", key2, ok, err, key)
	}
}
