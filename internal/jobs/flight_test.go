package jobs

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/flight"
	"repro/internal/workloads"
)

// TestFlightOptionDoesNotChangeCacheKey pins the kill switch: the
// recorder rides on gpu.Options behind a json:"-" tag, so attaching
// one must not move a job to a different cache identity — a flight
// capture is an execution artifact, never part of what was simulated.
func TestFlightOptionDoesNotChangeCacheKey(t *testing.T) {
	w, err := workloads.ByKernel("scalarProdGPU")
	if err != nil {
		t.Fatal(err)
	}
	w = w.Shrunk(4)
	bare := Job{Launch: w.Launch, Kernel: w.Kernel, Scheduler: "PRO"}
	recorded := bare
	recorded.Options.Flight = flight.New(flight.Options{})

	k1, ok, err := Key(&bare)
	if err != nil || !ok {
		t.Fatalf("bare key: ok=%v err=%v", ok, err)
	}
	k2, ok, err := Key(&recorded)
	if err != nil || !ok {
		t.Fatalf("recorded key: ok=%v err=%v", ok, err)
	}
	if k1 != k2 {
		t.Fatalf("flight recorder changed the cache key: %s vs %s", k1, k2)
	}
}

// TestFlightDirWritesArtifact pins the per-job capture artifact: an
// engine with FlightDir set writes <cache-key>.trace.json next to the
// result-cache entry for every simulated job, the artifact is valid
// trace-event JSON, and a cache-served replay of the same job records
// nothing new.
func TestFlightDirWritesArtifact(t *testing.T) {
	w, err := workloads.ByKernel("scalarProdGPU")
	if err != nil {
		t.Fatal(err)
	}
	w = w.Shrunk(4)
	j := Job{Launch: w.Launch, Kernel: w.Kernel, Scheduler: "LRR"}

	dir := t.TempDir()
	e, err := New(1, filepath.Join(dir, "cache"), nil)
	if err != nil {
		t.Fatal(err)
	}
	e.FlightDir = filepath.Join(dir, "flight")
	e.FlightOpts = flight.Options{MemSample: 4}

	if _, err := e.RunOne(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	key, _, err := e.Key(&j)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(e.FlightDir, key+".trace.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("artifact has no trace events")
	}

	// Replay from the cache: the artifact must not be rewritten (a
	// cached result was never executed, so there is no flight).
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunOne(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("cache hit rewrote the flight artifact (stat err: %v)", err)
	}
	if e.Replayed() == 0 {
		t.Fatal("second run did not come from the cache")
	}
	if !strings.HasPrefix(filepath.Base(path), key) {
		t.Fatalf("artifact %s not named by cache key %s", path, key)
	}
}
