package jobs

import (
	"context"
	"testing"

	"repro/internal/gpu"
	"repro/internal/workloads"
)

func TestGridAssignsCost(t *testing.T) {
	w, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	js := Grid([]*workloads.Workload{w}, []string{"LRR", "PRO"}, 6, gpu.Options{})
	for i, j := range js {
		want := int64(j.Launch.GridTBs) * int64(j.Launch.BlockThreads)
		if j.Cost != want || j.Cost == 0 {
			t.Fatalf("job %d: Cost = %d, want %d", i, j.Cost, want)
		}
	}
}

func TestExpensiveJobsDispatchFirst(t *testing.T) {
	// Three jobs submitted in ascending cost order; a single worker makes
	// completion order equal dispatch order, so the progress events must
	// arrive in descending cost order while the results stay at their
	// input positions.
	w, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(tbs int, sched string) Job {
		run := w.Shrunk(tbs)
		return Job{
			Launch:    run.Launch,
			Kernel:    run.Kernel,
			Scheduler: sched,
			Cost:      int64(run.Launch.GridTBs) * int64(run.Launch.BlockThreads),
		}
	}
	js := []Job{mk(2, "LRR"), mk(6, "GTO"), mk(4, "PRO")}

	var order []string
	e := &Engine{Workers: 1, OnProgress: func(ev Event) { order = append(order, ev.Scheduler) }}
	rs, err := e.Run(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"GTO", "PRO", "LRR"} // descending cost
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
	for i, j := range js {
		if rs[i].Scheduler != j.Scheduler {
			t.Fatalf("result %d is %s, want %s: cost ordering leaked into result order",
				i, rs[i].Scheduler, j.Scheduler)
		}
	}
}

func TestCostDoesNotAffectResults(t *testing.T) {
	js := testBatch(t) // Grid sets real costs
	flat := make([]Job, len(js))
	copy(flat, js)
	for i := range flat {
		flat[i].Cost = 0 // zero cost keeps plain batch order
	}
	costed := mustRun(t, &Engine{Workers: 3}, js)
	plain := mustRun(t, &Engine{Workers: 3}, flat)
	for i := range js {
		if string(costed[i]) != string(plain[i]) {
			t.Fatalf("job %d: cost-ordered dispatch changed the result", i)
		}
	}
}
