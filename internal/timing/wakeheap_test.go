package timing

import (
	"math/rand"
	"testing"
)

// TestWakeHeapMatchesScan drives a WakeHeap with random Set/Clear
// traffic against a plain-array reference: Min must always equal the
// scan minimum over the armed sources.
func TestWakeHeapMatchesScan(t *testing.T) {
	const sources = 56
	rng := rand.New(rand.NewSource(7))
	h := NewWakeHeap(sources)
	ref := make([]int64, sources)
	scanMin := func() (int64, bool) {
		var best int64
		ok := false
		for _, at := range ref {
			if at != 0 && (!ok || at < best) {
				best, ok = at, true
			}
		}
		return best, ok
	}
	for step := 0; step < 20000; step++ {
		id := rng.Intn(sources)
		switch rng.Intn(4) {
		case 0:
			h.Clear(id)
			ref[id] = 0
		default:
			// Mostly-increasing cycles with occasional early re-arms, the
			// wake-pattern shape the clock loop produces.
			at := int64(1 + rng.Intn(1<<14))
			h.Set(id, at)
			ref[id] = at
		}
		got, gotOK := h.Min()
		want, wantOK := scanMin()
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("step %d: Min() = %d,%v want %d,%v", step, got, gotOK, want, wantOK)
		}
	}
}

// TestWakeHeapStaleBound forces the lazy-deletion worst case — one
// source re-armed to ever-earlier cycles thousands of times without the
// min ever advancing past it — and checks the compaction bound keeps
// the heap from growing without limit.
func TestWakeHeapStaleBound(t *testing.T) {
	const sources = 14
	h := NewWakeHeap(sources)
	for i := 0; i < sources; i++ {
		h.Set(i, 1<<20)
	}
	for at := int64(1 << 19); at > 1; at-- {
		h.Set(0, at)
	}
	if got := len(h.entries); got > 4*sources+1 {
		t.Fatalf("heap retained %d entries for %d sources; compaction did not engage", got, sources)
	}
	if at, ok := h.Min(); !ok || at != 2 {
		t.Fatalf("Min() = %d,%v want 2,true", at, ok)
	}
}

// TestWakeHeapSetSameCycleNoChurn asserts the unconditional-mirror
// pattern (Set with an unchanged cycle every iteration) does not grow
// the heap.
func TestWakeHeapSetSameCycleNoChurn(t *testing.T) {
	h := NewWakeHeap(4)
	h.Set(2, 100)
	before := len(h.entries)
	for i := 0; i < 1000; i++ {
		h.Set(2, 100)
	}
	if len(h.entries) != before {
		t.Fatalf("repeated same-cycle Set grew the heap: %d -> %d entries", before, len(h.entries))
	}
}
