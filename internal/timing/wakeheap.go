package timing

// WakeHeap tracks the earliest wake-up cycle across a fixed set of
// sources (the clock loop's per-SM sleep horizons). The serial
// alternative — rescanning every SM's NextEvent when computing the
// fast-forward jump — is O(n) per iteration; the heap makes a horizon
// update O(log n) and the min query O(1) amortized, which matters as
// SM counts grow past the GTX480's 14 (wide-GPU configs run 28–56).
//
// Deletion is lazy: Set pushes a fresh entry and leaves the stale one
// in place; an entry is live only while it still matches cur[id], and
// Min pops dead entries as they surface. Stale entries are bounded by
// the number of premature wake-ups between pops, and a compaction
// rebuild kicks in if they ever pile up, so steady state allocates
// nothing.
type WakeHeap struct {
	entries []wakeEntry // binary min-heap ordered by at
	cur     []int64     // live wake cycle per source; 0 = no timed wake
	scratch []wakeEntry // compaction buffer, reused
}

type wakeEntry struct {
	at int64
	id int
}

// NewWakeHeap returns a heap for source ids 0..n-1, none of them armed.
func NewWakeHeap(n int) *WakeHeap {
	return &WakeHeap{
		entries: make([]wakeEntry, 0, n),
		cur:     make([]int64, n),
		scratch: make([]wakeEntry, 0, n),
	}
}

// Set arms source id to wake at cycle at (at > 0). Setting the cycle the
// source is already armed for is a no-op, so callers can mirror state
// unconditionally every cycle without churning the heap.
func (h *WakeHeap) Set(id int, at int64) {
	if h.cur[id] == at {
		return
	}
	h.cur[id] = at
	h.entries = append(h.entries, wakeEntry{at: at, id: id})
	h.siftUp(len(h.entries) - 1)
	if len(h.entries) > 4*len(h.cur) && len(h.entries) >= 64 {
		h.compact()
	}
}

// Clear disarms source id (no timed wake). Its heap entry, if any, dies
// lazily.
func (h *WakeHeap) Clear(id int) {
	h.cur[id] = 0
}

// Min returns the earliest armed wake cycle, or ok=false when no source
// is armed. Dead entries encountered at the top are popped permanently.
func (h *WakeHeap) Min() (at int64, ok bool) {
	for len(h.entries) > 0 {
		top := h.entries[0]
		if h.cur[top.id] == top.at {
			return top.at, true
		}
		h.pop()
	}
	return 0, false
}

func (h *WakeHeap) pop() {
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	if last > 0 {
		h.siftDown(0)
	}
}

// compact rebuilds the heap from the live cur entries, dropping every
// stale one. Runs only when stale entries outnumber live sources 4:1,
// so its O(n) cost is amortized away by the pushes that got us here.
func (h *WakeHeap) compact() {
	h.scratch = h.scratch[:0]
	for id, at := range h.cur {
		if at != 0 {
			h.scratch = append(h.scratch, wakeEntry{at: at, id: id})
		}
	}
	h.entries = append(h.entries[:0], h.scratch...)
	for i := len(h.entries)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *WakeHeap) siftUp(i int) {
	e := h.entries[i]
	for i > 0 {
		parent := (i - 1) / 2
		if h.entries[parent].at <= e.at {
			break
		}
		h.entries[i] = h.entries[parent]
		i = parent
	}
	h.entries[i] = e
}

func (h *WakeHeap) siftDown(i int) {
	e := h.entries[i]
	n := len(h.entries)
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && h.entries[r].at < h.entries[kid].at {
			kid = r
		}
		if h.entries[kid].at >= e.at {
			break
		}
		h.entries[i] = h.entries[kid]
		i = kid
	}
	h.entries[i] = e
}
