package timing

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFireOrderWithinAndAcrossCycles(t *testing.T) {
	w := NewWheel()
	var got []int
	w.Schedule(5, func(int64) { got = append(got, 2) })
	w.Schedule(3, func(int64) { got = append(got, 0) })
	w.Schedule(5, func(int64) { got = append(got, 3) }) // same cycle, FIFO after first
	w.Schedule(4, func(int64) { got = append(got, 1) })
	w.Advance(10)
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

func TestEventReceivesItsCycle(t *testing.T) {
	w := NewWheel()
	var at int64
	w.Schedule(7, func(c int64) { at = c })
	w.Advance(7)
	if at != 7 {
		t.Fatalf("event saw cycle %d, want 7", at)
	}
	if w.Now() != 7 {
		t.Fatalf("Now() = %d, want 7", w.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	w := NewWheel()
	w.Advance(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling at current cycle did not panic")
		}
	}()
	w.Schedule(10, func(int64) {})
}

func TestOverflowBeyondHorizon(t *testing.T) {
	w := NewWheel()
	fired := false
	w.Schedule(Horizon*3+17, func(int64) { fired = true })
	w.Advance(Horizon * 3)
	if fired {
		t.Fatal("overflow event fired early")
	}
	w.Advance(Horizon*3 + 17)
	if !fired {
		t.Fatal("overflow event never fired")
	}
	if w.Pending() != 0 {
		t.Fatalf("Pending() = %d after all events fired", w.Pending())
	}
}

func TestCascadedScheduling(t *testing.T) {
	// Events scheduling further events, including chains that hop
	// across the horizon boundary.
	w := NewWheel()
	count := 0
	var hop func(c int64)
	hop = func(c int64) {
		count++
		if count < 10 {
			w.Schedule(c+Horizon/2, hop)
		}
	}
	w.Schedule(1, hop)
	w.Advance(Horizon * 6)
	if count != 10 {
		t.Fatalf("chain fired %d times, want 10", count)
	}
}

func TestSameCycleLaterEventVisible(t *testing.T) {
	// An event firing at cycle c may schedule at c+1 and that event must
	// fire during the same Advance span.
	w := NewWheel()
	var order []string
	w.Schedule(2, func(c int64) {
		order = append(order, "first")
		w.Schedule(c+1, func(int64) { order = append(order, "second") })
	})
	w.Advance(3)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v", order)
	}
}

func TestPendingCount(t *testing.T) {
	w := NewWheel()
	for i := int64(1); i <= 100; i++ {
		w.Schedule(i*3, func(int64) {})
	}
	if w.Pending() != 100 {
		t.Fatalf("Pending() = %d, want 100", w.Pending())
	}
	w.Advance(150)
	if w.Pending() != 50 {
		t.Fatalf("Pending() = %d after half fired, want 50", w.Pending())
	}
}

func TestPropertyAllScheduledEventsFireExactlyOnce(t *testing.T) {
	f := func(delays []uint16) bool {
		w := NewWheel()
		fired := make([]int, len(delays))
		for i, d := range delays {
			at := int64(d)%(Horizon*2) + 1
			idx := i
			w.Schedule(at, func(int64) { fired[idx]++ })
		}
		w.Advance(Horizon*2 + 1)
		for _, f := range fired {
			if f != 1 {
				return false
			}
		}
		return w.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleAfter(t *testing.T) {
	w := NewWheel()
	w.Advance(100)
	fired := int64(0)
	w.ScheduleAfter(25, func(c int64) { fired = c })
	w.Advance(200)
	if fired != 125 {
		t.Fatalf("ScheduleAfter fired at %d, want 125", fired)
	}
}

// TestScheduleBatchMatchesSequential checks the batched-commit
// contract: one ScheduleBatch call must be indistinguishable from the
// same Schedule calls made one by one in slice order — same FIFO
// dispatch order, same Pending count — across in-ring targets, the
// horizon boundary and the overflow path, with singleton events
// interleaved into the same buckets.
func TestScheduleBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		a, b := NewWheel(), NewWheel()
		anchor := rng.Int63n(3 * Horizon)
		a.Advance(anchor)
		b.Advance(anchor)
		var gotA, gotB []int
		id := 0
		for step := 0; step < 20; step++ {
			var d int64
			switch rng.Intn(3) {
			case 0:
				d = 1 + rng.Int63n(16) // imminent
			case 1:
				d = 1 + rng.Int63n(Horizon-1) // anywhere in the ring
			default:
				d = Horizon + rng.Int63n(3*Horizon) // overflow path
			}
			at := anchor + d
			fns := make([]Event, rng.Intn(5))
			for i := range fns {
				k := id
				id++
				fns[i] = func(int64) { gotA = append(gotA, k) }
				b.Schedule(at, func(int64) { gotB = append(gotB, k) })
			}
			a.ScheduleBatch(at, fns)
			// A singleton on both wheels, so batches land in buckets that
			// already hold (and later receive) individual events.
			k := id
			id++
			a.Schedule(at, func(int64) { gotA = append(gotA, k) })
			b.Schedule(at, func(int64) { gotB = append(gotB, k) })
		}
		if a.Pending() != b.Pending() {
			t.Fatalf("trial %d: Pending %d vs %d", trial, a.Pending(), b.Pending())
		}
		end := anchor + 7*Horizon
		a.Advance(end)
		b.Advance(end)
		if a.Pending() != 0 || b.Pending() != 0 {
			t.Fatalf("trial %d: events left pending", trial)
		}
		if len(gotA) != len(gotB) {
			t.Fatalf("trial %d: fired %d vs %d", trial, len(gotA), len(gotB))
		}
		for i := range gotA {
			if gotA[i] != gotB[i] {
				t.Fatalf("trial %d: fire order diverged at %d: %v vs %v", trial, i, gotA, gotB)
			}
		}
	}
}

// TestNextEventReportsEarliestPending checks the fast-forward contract:
// NextEvent must return exactly the earliest pending cycle — never later
// (the jump would skip a due event) and never earlier (the loop would
// spin on empty cycles) — across ring wrap-around and overflow refills.
func TestNextEventReportsEarliestPending(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		w := NewWheel()
		// Random anchor so bucket indices wrap mid-ring.
		anchor := rng.Int63n(3 * Horizon)
		w.Advance(anchor)
		n := rng.Intn(10)
		pend := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			var d int64
			switch rng.Intn(3) {
			case 0:
				d = 1 + rng.Int63n(16) // imminent
			case 1:
				d = 1 + rng.Int63n(Horizon-1) // anywhere in the ring
			default:
				d = Horizon + rng.Int63n(4*Horizon) // overflow path
			}
			w.Schedule(anchor+d, func(int64) {})
			pend = append(pend, anchor+d)
		}
		sort.Slice(pend, func(i, j int) bool { return pend[i] < pend[j] })
		// Drain: at every step NextEvent must equal the true minimum.
		for len(pend) > 0 {
			got, ok := w.NextEvent()
			if !ok || got != pend[0] {
				t.Fatalf("trial %d: NextEvent = (%d,%v), want (%d,true); pending %v",
					trial, got, ok, pend[0], pend)
			}
			w.Advance(got)
			for len(pend) > 0 && pend[0] == got {
				pend = pend[1:]
			}
		}
		if got, ok := w.NextEvent(); ok {
			t.Fatalf("trial %d: NextEvent = (%d,true) on drained wheel", trial, got)
		}
	}
}
