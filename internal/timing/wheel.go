// Package timing provides the event infrastructure of the simulator.
//
// The core clock loop is cycle-driven, but long-latency completions
// (cache fills, DRAM service, writebacks) are scheduled as future events.
// A bucketed timing wheel keeps scheduling and dispatch O(1) amortized:
// events within Horizon cycles land in a ring of per-cycle buckets, and
// the rare farther events go to an overflow slice that is re-examined as
// the wheel advances.
package timing

// Event is a callback fired at a specific cycle. Events fire in FIFO order
// within a cycle, which keeps the simulator deterministic.
type Event func(cycle int64)

// Horizon is the wheel span in cycles. Events scheduled at most Horizon-1
// cycles ahead take the fast path. It comfortably exceeds the longest
// single-hop latency in the memory system.
const Horizon = 4096

type deferred struct {
	at int64
	fn Event
}

// Wheel is a timing wheel anchored at the current cycle. The zero value is
// not usable; call NewWheel.
type Wheel struct {
	now      int64
	buckets  [][]Event // ring, indexed by cycle % Horizon
	overflow []deferred
	pending  int
}

// bucketSeed is the initial per-bucket capacity. Buckets are carved out
// of one shared slab so a fresh wheel costs two allocations instead of a
// growth chain per bucket; the few buckets that outgrow the seed
// reallocate individually. Eight fits the largest routine event batch —
// a thread-block launch schedules one i-buffer refill per warp (8 on the
// GTX480 geometry) into a single bucket — so steady-state TB churn does
// not regrow buckets as it walks the ring.
const bucketSeed = 8

// NewWheel returns a wheel positioned at cycle 0.
func NewWheel() *Wheel {
	buckets := make([][]Event, Horizon)
	slab := make([]Event, Horizon*bucketSeed)
	for i := range buckets {
		buckets[i] = slab[i*bucketSeed : i*bucketSeed : (i+1)*bucketSeed]
	}
	return &Wheel{buckets: buckets}
}

// Now returns the wheel's current cycle.
func (w *Wheel) Now() int64 { return w.now }

// Pending returns the number of scheduled-but-unfired events. The GPU clock
// loop uses it to detect quiescence.
func (w *Wheel) Pending() int { return w.pending }

// Schedule registers fn to fire at cycle at. Scheduling in the past or at
// the current cycle is a bug in the caller and panics: the wheel has
// already dispatched (or is dispatching) that cycle.
func (w *Wheel) Schedule(at int64, fn Event) {
	if at <= w.now {
		panic("timing: event scheduled at or before current cycle")
	}
	w.pending++
	if at-w.now < Horizon {
		idx := at % Horizon
		w.buckets[idx] = append(w.buckets[idx], fn)
		return
	}
	w.overflow = append(w.overflow, deferred{at: at, fn: fn})
}

// ScheduleAfter registers fn to fire delay cycles after the current cycle.
// delay must be positive.
func (w *Wheel) ScheduleAfter(delay int64, fn Event) {
	w.Schedule(w.now+delay, fn)
}

// ScheduleBatch registers every event in fns to fire at cycle at,
// equivalent to calling Schedule(at, fn) for each element in slice
// order but with one bucket append for the whole run. The staged-lane
// drain uses it to commit a run of same-cycle events as a single slab
// copy instead of len(fns) individual appends; because the events land
// in the bucket in slice order, FIFO dispatch order — and therefore
// simulation results — are identical to the sequential calls.
func (w *Wheel) ScheduleBatch(at int64, fns []Event) {
	if len(fns) == 0 {
		return
	}
	if at <= w.now {
		panic("timing: event scheduled at or before current cycle")
	}
	w.pending += len(fns)
	if at-w.now < Horizon {
		idx := at % Horizon
		w.buckets[idx] = append(w.buckets[idx], fns...)
		return
	}
	for _, fn := range fns {
		w.overflow = append(w.overflow, deferred{at: at, fn: fn})
	}
}

// NextEvent returns the cycle of the earliest pending event, or ok=false
// when nothing is scheduled. The ring is walked outward from Now, so the
// scan cost is proportional to the distance to the next event, and the
// bucket index uniquely determines the event's cycle (events beyond the
// horizon live in the overflow slice, checked separately).
func (w *Wheel) NextEvent() (cycle int64, ok bool) {
	if w.pending == 0 {
		return 0, false
	}
	for d := int64(1); d < Horizon; d++ {
		if len(w.buckets[(w.now+d)%Horizon]) > 0 {
			return w.now + d, true
		}
	}
	for _, o := range w.overflow {
		if !ok || o.at < cycle {
			cycle, ok = o.at, true
		}
	}
	return cycle, ok
}

// Advance moves the wheel to cycle c, firing every event scheduled in
// (Now, c] in cycle order. Callbacks may schedule further events, including
// events within the same cycle range still being advanced.
func (w *Wheel) Advance(c int64) {
	for w.now < c {
		if w.pending == 0 {
			// Nothing can fire in the remaining range (same-cycle
			// scheduling is forbidden), so the wheel teleports: every
			// bucket is empty and the overflow list is empty too.
			w.now = c
			return
		}
		w.now++
		w.refillFromOverflow()
		idx := w.now % Horizon
		// Events may append to this bucket while firing (same-cycle
		// scheduling is forbidden, so growth only happens for future laps;
		// re-slicing from the stored header each iteration stays correct
		// because fired entries are consumed by index).
		bucket := w.buckets[idx]
		for i := 0; i < len(bucket); i++ {
			fn := bucket[i]
			bucket[i] = nil
			w.pending--
			fn(w.now)
			bucket = w.buckets[idx]
		}
		w.buckets[idx] = bucket[:0]
	}
}

// refillFromOverflow moves overflow events that are now within the horizon
// into their buckets. Called once per advanced cycle; the overflow list is
// scanned only when non-empty, which is rare.
func (w *Wheel) refillFromOverflow() {
	if len(w.overflow) == 0 {
		return
	}
	kept := w.overflow[:0]
	for _, d := range w.overflow {
		if d.at-w.now < Horizon {
			if d.at <= w.now {
				// Only possible for d.at == w.now because Schedule rejected
				// past cycles and we refill every cycle.
				idx := d.at % Horizon
				w.buckets[idx] = append(w.buckets[idx], d.fn)
				continue
			}
			w.buckets[d.at%Horizon] = append(w.buckets[d.at%Horizon], d.fn)
			continue
		}
		kept = append(kept, d)
	}
	w.overflow = kept
}
