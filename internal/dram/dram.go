// Package dram models one GDDR channel per L2 partition with a
// First-Ready, First-Come-First-Served (FR-FCFS) scheduler — the DRAM
// scheduling policy from Table I of the paper.
//
// Each channel has a bounded request queue and a set of banks with one
// open row each. Every arbitration step picks, among requests whose bank
// is idle, the oldest request that hits its bank's open row; if none
// hits, the oldest such request (which then opens its row). Row hits are
// serviced in RowHit cycles, misses in RowMiss cycles; the channel data
// bus serializes one grant per arbitration cycle, which is saturated well
// below bank parallelism for the line sizes involved.
package dram

import "repro/internal/flight"

// Request is one line-sized DRAM transaction.
type Request struct {
	// Line is the line-aligned address.
	Line uint64
	// Write marks a write (no reply payload, but same bank timing).
	Write bool
	// Done is invoked at service completion; may be nil for writes.
	Done func(cycle int64)

	// Span, when non-nil, is the flight recorder's lifecycle span for
	// this transaction; Tick stamps the grant cycle and row-hit outcome
	// onto it. The stamp happens in the same synchronization domain as
	// the granted request itself (the staged scan publishes both through
	// one barrier), so it is race-free under the overlapped DRAM scan.
	Span *flight.MemSpan

	arrival int64
	bank    int
	row     uint64
}

// Channel is one DRAM channel.
type Channel struct {
	banks      int
	rowBytes   uint64
	rowHit     int64
	rowMiss    int64
	queueDepth int
	openRow    []uint64
	rowValid   []bool
	bankBusy   []int64 // cycle at which the bank becomes free
	queue      []*Request
	arrivalSeq int64
	// nextReady caches the earliest cycle at which a scan could grant,
	// set when a scan comes up empty (every queued request's bank busy);
	// Tick skips the queue walk until then. Enqueue resets it: a new
	// request may target a free bank.
	nextReady int64
	// Reqs counts accepted requests; RowHits counts row-buffer hits.
	Reqs    int64
	RowHits int64
}

// NewChannel builds a channel. rowBytes must be a power of two and at
// least the line size used by callers.
func NewChannel(banks int, rowBytes uint64, rowHit, rowMiss int64, queueDepth int) *Channel {
	if banks <= 0 || rowBytes == 0 || rowBytes&(rowBytes-1) != 0 || rowHit <= 0 || rowMiss < rowHit || queueDepth <= 0 {
		panic("dram: invalid channel geometry")
	}
	return &Channel{
		banks:      banks,
		rowBytes:   rowBytes,
		rowHit:     rowHit,
		rowMiss:    rowMiss,
		queueDepth: queueDepth,
		openRow:    make([]uint64, banks),
		rowValid:   make([]bool, banks),
		bankBusy:   make([]int64, banks),
	}
}

// locate computes the bank and row of a line address. Banks interleave at
// row granularity so consecutive rows map to different banks.
func (c *Channel) locate(line uint64) (bank int, row uint64) {
	row = line / c.rowBytes
	return int(row % uint64(c.banks)), row / uint64(c.banks)
}

// Enqueue offers a request; it returns false when the queue is full (the
// caller retries later — modeling upstream back-pressure).
func (c *Channel) Enqueue(r *Request) bool {
	if len(c.queue) >= c.queueDepth {
		return false
	}
	r.arrival = c.arrivalSeq
	c.arrivalSeq++
	r.bank, r.row = c.locate(r.Line)
	c.queue = append(c.queue, r)
	c.Reqs++
	c.nextReady = 0
	return true
}

// QueueLen returns the number of waiting requests.
func (c *Channel) QueueLen() int { return len(c.queue) }

// Busy reports whether any bank is still servicing at cycle.
func (c *Channel) Busy(cycle int64) bool {
	if len(c.queue) > 0 {
		return true
	}
	for _, b := range c.bankBusy {
		if b > cycle {
			return true
		}
	}
	return false
}

// NextEvent returns the earliest cycle strictly after now at which Tick
// could grant a request, or ok=false when the queue is empty. A queued
// request is grantable once its bank frees up, so the channel's horizon is
// the minimum over the queue of max(now+1, bankBusy[bank]); skipping Tick
// for every cycle before that horizon cannot change arbitration.
func (c *Channel) NextEvent(now int64) (cycle int64, ok bool) {
	if len(c.queue) == 0 {
		return 0, false
	}
	for _, r := range c.queue {
		at := c.bankBusy[r.bank]
		if at <= now+1 {
			return now + 1, true
		}
		if !ok || at < cycle {
			cycle, ok = at, true
		}
	}
	return cycle, ok
}

// Horizon returns the earliest cycle at which any queued request's bank
// is (or already was) free — the channel's contribution to a global
// next-event horizon — with ok=false when the queue is empty. Unlike
// NextEvent it is not clamped to a caller's "now": the memory system
// recomputes it only when the channel mutates (enqueue or grant) and
// caches it in a heap, clamping at query time.
func (c *Channel) Horizon() (cycle int64, ok bool) {
	if len(c.queue) == 0 {
		return 0, false
	}
	cycle = int64(1<<63 - 1)
	for _, r := range c.queue {
		if at := c.bankBusy[r.bank]; at < cycle {
			cycle = at
		}
	}
	return cycle, true
}

// Tick performs one arbitration step at cycle: grants at most one request
// per call (the command/data bus serializes grants). Completion callbacks
// are scheduled by the caller via the returned (req, doneAt) pair;
// a nil request means nothing was granted.
func (c *Channel) Tick(cycle int64) (granted *Request, doneAt int64) {
	if len(c.queue) == 0 || cycle < c.nextReady {
		return nil, 0
	}
	best := -1
	bestHit := false
	for i, r := range c.queue {
		if c.bankBusy[r.bank] > cycle {
			continue
		}
		hit := c.rowValid[r.bank] && c.openRow[r.bank] == r.row
		switch {
		case best == -1:
			best, bestHit = i, hit
		case hit && !bestHit:
			// First-ready: any row hit beats any row miss.
			best, bestHit = i, hit
		case hit == bestHit && c.queue[i].arrival < c.queue[best].arrival:
			best = i
		}
	}
	if best == -1 {
		// Every queued request's bank is busy; nothing can be granted
		// before the earliest of those banks frees.
		next := int64(1<<63 - 1)
		for _, r := range c.queue {
			if b := c.bankBusy[r.bank]; b < next {
				next = b
			}
		}
		c.nextReady = next
		return nil, 0
	}
	r := c.queue[best]
	c.queue = append(c.queue[:best], c.queue[best+1:]...)
	service := c.rowMiss
	if bestHit {
		service = c.rowHit
		c.RowHits++
	}
	if r.Span != nil {
		r.Span.Grant = cycle
		r.Span.RowHit = bestHit
	}
	c.openRow[r.bank] = r.row
	c.rowValid[r.bank] = true
	done := cycle + service
	c.bankBusy[r.bank] = done
	return r, done
}
