package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestChannel() *Channel {
	return NewChannel(4, 2048, 40, 100, 32)
}

func TestRowMissThenHitTiming(t *testing.T) {
	c := newTestChannel()
	var done []int64
	mk := func(line uint64) *Request {
		return &Request{Line: line, Done: func(cy int64) { done = append(done, cy) }}
	}
	// Two requests to the same row: first opens (miss), second hits.
	if !c.Enqueue(mk(0)) || !c.Enqueue(mk(128)) {
		t.Fatal("enqueue failed on empty queue")
	}
	r1, at1 := c.Tick(10)
	if r1 == nil || at1 != 110 {
		t.Fatalf("first grant at %d, want 110 (row miss)", at1)
	}
	// Bank busy until 110: nothing grants meanwhile.
	if r, _ := c.Tick(50); r != nil {
		t.Fatal("granted while bank busy")
	}
	r2, at2 := c.Tick(110)
	if r2 == nil || at2 != 150 {
		t.Fatalf("second grant completes at %d, want 150 (row hit)", at2)
	}
	if c.RowHits != 1 {
		t.Fatalf("RowHits = %d, want 1", c.RowHits)
	}
}

func TestFRFCFSPrefersRowHitOverOlder(t *testing.T) {
	c := newTestChannel()
	// Open row 0 of bank 0.
	c.Enqueue(&Request{Line: 0})
	c.Tick(1)
	// Queue: older request to a different row (same bank), newer to the
	// open row. FR-FCFS must pick the newer row hit first.
	rowMiss := &Request{Line: 4 * 2048 * 4} // bank 0, different row
	rowHit := &Request{Line: 64}            // bank 0, row 0
	c.Enqueue(rowMiss)
	c.Enqueue(rowHit)
	g, _ := c.Tick(200) // bank idle again
	if g != rowHit {
		t.Fatal("FR-FCFS did not prefer the row hit")
	}
	g2, _ := c.Tick(400)
	if g2 != rowMiss {
		t.Fatal("remaining request not granted")
	}
}

func TestOldestFirstAmongMisses(t *testing.T) {
	c := newTestChannel()
	a := &Request{Line: 0}
	b := &Request{Line: 4 * 2048 * 8} // same bank 0, another row
	c.Enqueue(a)
	c.Enqueue(b)
	if g, _ := c.Tick(1); g != a {
		t.Fatal("older request not granted first")
	}
}

func TestBankParallelism(t *testing.T) {
	c := newTestChannel()
	// Requests to different banks can be in service concurrently; grants
	// serialize at one per tick.
	c.Enqueue(&Request{Line: 0})        // bank 0
	c.Enqueue(&Request{Line: 1 * 2048}) // bank 1
	g1, _ := c.Tick(1)
	g2, _ := c.Tick(2)
	if g1 == nil || g2 == nil {
		t.Fatal("banks did not service in parallel")
	}
	if g1.bank == g2.bank {
		t.Fatal("expected distinct banks")
	}
}

func TestQueueCapacity(t *testing.T) {
	c := newTestChannel()
	for i := 0; i < 32; i++ {
		if !c.Enqueue(&Request{Line: uint64(i) * 128}) {
			t.Fatalf("enqueue %d refused below capacity", i)
		}
	}
	if c.Enqueue(&Request{Line: 999 * 128}) {
		t.Fatal("enqueue accepted past capacity")
	}
}

func TestBusyReflectsQueueAndBanks(t *testing.T) {
	c := newTestChannel()
	if c.Busy(0) {
		t.Fatal("empty channel busy")
	}
	c.Enqueue(&Request{Line: 0})
	if !c.Busy(0) {
		t.Fatal("queued channel not busy")
	}
	_, at := c.Tick(1)
	if !c.Busy(at - 1) {
		t.Fatal("channel with bank in service not busy")
	}
	if c.Busy(at) {
		t.Fatal("drained channel still busy")
	}
}

func TestPropertyEveryRequestEventuallyServed(t *testing.T) {
	f := func(lines []uint16) bool {
		c := newTestChannel()
		want := 0
		served := 0
		for _, ln := range lines {
			if want >= 32 {
				break
			}
			r := &Request{Line: uint64(ln) * 128, Done: func(int64) { served++ }}
			if c.Enqueue(r) {
				want++
			}
		}
		cycle := int64(1)
		for c.Busy(cycle) && cycle < 1_000_000 {
			if g, _ := c.Tick(cycle); g != nil && g.Done != nil {
				g.Done(cycle)
			}
			cycle++
		}
		return served == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLocateDistributesBanks(t *testing.T) {
	c := newTestChannel()
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		b, _ := c.locate(uint64(i) * 2048)
		seen[b] = true
	}
	if len(seen) != 4 {
		t.Fatalf("rows spread over %d banks, want 4", len(seen))
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry did not panic")
		}
	}()
	NewChannel(0, 2048, 40, 100, 32)
}

// cloneChannel deep-copies a channel so a hypothetical future can be
// simulated without disturbing the original's state.
func cloneChannel(c *Channel) *Channel {
	d := *c
	d.openRow = append([]uint64(nil), c.openRow...)
	d.rowValid = append([]bool(nil), c.rowValid...)
	d.bankBusy = append([]int64(nil), c.bankBusy...)
	d.queue = make([]*Request, len(c.queue))
	for i, r := range c.queue {
		rc := *r
		d.queue[i] = &rc
	}
	return &d
}

// TestNextEventNeverUnderReports checks the fast-forward soundness
// contract on randomized channel states: if NextEvent(now) reports
// horizon `at`, then Tick must grant nothing on any cycle in (now, at)
// — so skipping those cycles is invisible — and must grant at `at`
// — so the horizon is tight, not merely safe.
func TestNextEventNeverUnderReports(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		c := newTestChannel()
		now := int64(0)
		for step := 0; step < 50; step++ {
			switch rng.Intn(4) {
			case 0, 1: // offer a request somewhere in a handful of rows
				c.Enqueue(&Request{Line: uint64(rng.Intn(64)) * 128})
			case 2: // arbitrate at the current cycle
				c.Tick(now)
				now++
			default: // let time pass without arbitration
				now += 1 + rng.Int63n(30)
			}
			at, ok := c.NextEvent(now)
			if !ok {
				if len(c.queue) != 0 {
					t.Fatalf("trial %d: NextEvent ok=false with %d queued", trial, len(c.queue))
				}
				continue
			}
			if at <= now {
				t.Fatalf("trial %d: horizon %d not strictly after now %d", trial, at, now)
			}
			probe := cloneChannel(c)
			for x := now + 1; x < at; x++ {
				if r, _ := probe.Tick(x); r != nil {
					t.Fatalf("trial %d: grant at %d before reported horizon %d", trial, x, at)
				}
			}
			if r, _ := cloneChannel(c).Tick(at); r == nil {
				t.Fatalf("trial %d: no grant at reported horizon %d", trial, at)
			}
		}
	}
}
