package daemon

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/jobs"
	"repro/internal/schedreg"
	"repro/internal/workloads"
)

// newTestDaemon builds a daemon and serves its handler over httptest.
func newTestDaemon(t *testing.T, cfg Config) (*Daemon, *Client) {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return d, c
}

// slowJob is a job that simulates for a few hundred milliseconds (a
// multiple of that under the race detector) — long enough that a
// second submission reliably arrives while it runs, short enough that
// a graceful drain finishes well inside its timeout.
func slowJob(t *testing.T) jobs.Job {
	t.Helper()
	w, err := workloads.ByKernel("scalarProdGPU")
	if err != nil {
		t.Fatal(err)
	}
	w = w.Shrunk(50)
	return jobs.Job{Launch: w.Launch, Kernel: w.Kernel, Scheduler: "PRO"}
}

// quickBatch is a small grid that simulates in well under a second.
func quickBatch(t *testing.T) []jobs.Job {
	t.Helper()
	w, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	return jobs.Grid([]*workloads.Workload{w}, []string{"LRR", "GTO", "TL", "PRO"}, 8, gpu.Options{})
}

func TestConcurrentDuplicateSubmissionsSimulateOnce(t *testing.T) {
	d, c := newTestDaemon(t, Config{Workers: 2})
	j := slowJob(t)

	var wg sync.WaitGroup
	results := make([][]byte, 2)
	errs := make([]error, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger the second client so it arrives mid-run.
			time.Sleep(time.Duration(i) * 100 * time.Millisecond)
			rs, err := c.Run(context.Background(), []jobs.Job{j})
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = json.Marshal(rs[0])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Fatal("deduped submission returned a different result")
	}
	if got := d.Engine().Simulated(); got != 1 {
		t.Fatalf("identical concurrent submissions simulated %d times, want exactly 1", got)
	}
	if got := d.Engine().Completed(); got != 1 {
		t.Fatalf("engine completed %d jobs, want 1 (the attach must not re-run)", got)
	}
}

func TestBatchStreamIsWellFormedNDJSON(t *testing.T) {
	d, _ := newTestDaemon(t, Config{Workers: 4})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	js := quickBatch(t)
	req := BatchRequest{Jobs: make([]WireJob, len(js))}
	for i := range js {
		wj, err := FromJob(&js[i])
		if err != nil {
			t.Fatal(err)
		}
		req.Jobs[i] = wj
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			t.Fatal("blank line in NDJSON stream")
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("unparseable stream line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(events) != len(js)+1 {
		t.Fatalf("%d stream lines for %d jobs, want %d", len(events), len(js), len(js)+1)
	}
	seen := make(map[int]bool)
	for i, ev := range events[:len(js)] {
		if ev.Type != "job" {
			t.Fatalf("line %d type %q, want job", i, ev.Type)
		}
		if ev.Seq != i+1 || ev.Done != i+1 || ev.Total != len(js) {
			t.Fatalf("line %d: seq %d done %d total %d", i, ev.Seq, ev.Done, ev.Total)
		}
		if ev.Index < 0 || ev.Index >= len(js) || seen[ev.Index] {
			t.Fatalf("line %d: bad or repeated job index %d", i, ev.Index)
		}
		seen[ev.Index] = true
		if ev.Err != "" {
			t.Fatalf("job %d failed: %s", ev.Index, ev.Err)
		}
	}
	final := events[len(js)]
	if final.Type != "batch" {
		t.Fatalf("final line type %q, want batch", final.Type)
	}
	if len(final.Results) != len(js) {
		t.Fatalf("%d results for %d jobs", len(final.Results), len(js))
	}
	for i, jr := range final.Results {
		if jr.Err != "" || jr.Result == nil || jr.Result.Cycles <= 0 {
			t.Fatalf("result %d: %+v", i, jr)
		}
		if jr.Result.Scheduler != js[i].Scheduler {
			t.Fatalf("result %d is for scheduler %q, want %q (job order lost)",
				i, jr.Result.Scheduler, js[i].Scheduler)
		}
	}
}

func TestUnixSocketTransport(t *testing.T) {
	d, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "prosimd.sock")
	l, err := Listen("unix:" + sock)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Serve(l) }()

	c, err := Dial("unix:" + sock)
	if err != nil {
		t.Fatal(err)
	}
	js := quickBatch(t)[:2]
	rs, err := c.Run(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Cycles <= 0 || rs[1].Cycles <= 0 {
		t.Fatalf("bad results over unix socket: %+v", rs)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestGracefulShutdownDrainsRunningBatch(t *testing.T) {
	d, err := New(Config{Workers: 2, DrainTimeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.Serve(l) }()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	type out struct {
		cycles int64
		err    error
	}
	got := make(chan out, 1)
	go func() {
		rs, err := c.Run(context.Background(), []jobs.Job{slowJob(t)})
		if err != nil {
			got <- out{err: err}
			return
		}
		got <- out{cycles: rs[0].Cycles}
	}()
	// Let the job reach the engine, then shut down mid-run.
	for i := 0; d.running.Load() == 0 && i < 100; i++ {
		time.Sleep(20 * time.Millisecond)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
	o := <-got
	if o.err != nil {
		t.Fatalf("batch aborted by graceful shutdown: %v", o.err)
	}
	if o.cycles <= 0 {
		t.Fatal("drained batch lost its result")
	}
}

func TestJobTimeoutAbortsRun(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 1, JobTimeout: 50 * time.Millisecond})
	_, err := c.Run(context.Background(), []jobs.Job{slowJob(t)})
	if err == nil {
		t.Fatal("over-budget job completed")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("error does not name the deadline: %v", err)
	}
}

func TestStatsAndGC(t *testing.T) {
	dir := t.TempDir()
	_, c := newTestDaemon(t, Config{Workers: 2, CacheDir: dir})
	js := quickBatch(t)[:2]
	if _, err := c.Run(context.Background(), js); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), js); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 4 || st.Simulated != 2 || st.Replayed != 2 {
		t.Fatalf("stats after cold+warm batch: %+v", st)
	}
	if st.CacheWrites != 2 || st.CacheHits != 2 || st.CacheDir != dir {
		t.Fatalf("cache stats: %+v", st)
	}
	if st.Batches != 2 || st.Workers != 2 {
		t.Fatalf("batch/worker counters: %+v", st)
	}

	gc, err := c.GC(context.Background(), "0")
	if err != nil {
		t.Fatal(err)
	}
	if gc.Entries != 2 || gc.Evicted != 2 {
		t.Fatalf("gc to zero: %+v", gc)
	}
}

func TestClientProgressEvents(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 2})
	var mu sync.Mutex
	var events []jobs.Event
	c.Progress = func(ev jobs.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	js := quickBatch(t)
	if _, err := c.Run(context.Background(), js); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(js) {
		t.Fatalf("%d progress events for %d jobs", len(events), len(js))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(js) {
			t.Fatalf("event %d: done %d total %d", i, ev.Done, ev.Total)
		}
	}
}

func TestBadBatchRejected(t *testing.T) {
	d, _ := newTestDaemon(t, Config{Workers: 1})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	for _, body := range []string{
		"{not json",
		`{"jobs":[{"scheduler":"PRO"}]}`, // no launch
	} {
		resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %s, want 400", body, resp.Status)
		}
	}
}

func TestWireJobRoundTripKeysMatch(t *testing.T) {
	eng := &jobs.Engine{}
	js := quickBatch(t)
	// Add a parameterized-factory job: the spec must survive the round
	// trip as the cache identity.
	w, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	f, err := schedreg.Resolve("PRO+threshold=500")
	if err != nil {
		t.Fatal(err)
	}
	js = append(js, jobs.Job{
		Launch:     w.Shrunk(8).Launch,
		Kernel:     w.Kernel,
		Factory:    f,
		FactoryKey: "PRO+threshold=500",
	})

	for i := range js {
		local, ok, err := eng.Key(&js[i])
		if err != nil || !ok {
			t.Fatalf("job %d: local key: %v ok=%v", i, err, ok)
		}
		wj, err := FromJob(&js[i])
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(wj)
		if err != nil {
			t.Fatal(err)
		}
		var back WireJob
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		rj, err := back.Job()
		if err != nil {
			t.Fatal(err)
		}
		remote, ok, err := eng.Key(&rj)
		if err != nil || !ok {
			t.Fatalf("job %d: remote key: %v ok=%v", i, err, ok)
		}
		if remote != local {
			t.Fatalf("job %d: wire round trip changed the cache key\nlocal  %s\nremote %s",
				i, local, remote)
		}
	}
}
