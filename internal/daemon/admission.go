// Admission control and priority scheduling for the daemon's worker
// slots. The dispatcher replaces a bare semaphore channel with a
// bounded two-queue allocator: each priority class has its own pending
// queue with a hard depth limit, and free slots are handed out by
// weighted round-robin so a flood of bulk work can delay — but never
// starve or crowd out — interactive submissions.
//
// Lifecycle of one admitted job:
//
//	admit(class, n)  reserves queue room for n jobs at batch admission
//	                 (all-or-nothing; a full queue fast-fails the batch
//	                 with 429 instead of absorbing unbounded work)
//	acquire(...)     waits for a worker slot; the reservation converts
//	                 into a slot grant, a canceled wait, or shutdown
//	release()        returns the slot, granting it to the next waiter
//	forfeit(class)   drops a reservation that will never reach acquire
//	                 (dedupe follower, key error, canceled pre-submit)
//
// Every reserved unit is returned exactly once, by acquire (grant or
// abandonment), or by forfeit.
package daemon

import (
	"context"
	"fmt"
	"sync"
)

// class is a scheduling priority class.
type class int

const (
	// classInteractive is the low-latency class: paper-table reruns,
	// report generation, a human waiting at a terminal.
	classInteractive class = iota
	// classBulk is the throughput class: sweeps and batch experiments
	// that care about completion, not per-job latency.
	classBulk
	numClasses
)

func (c class) String() string {
	if c == classBulk {
		return PriorityBulk
	}
	return PriorityInteractive
}

// parseClass maps a wire priority string to a class. The empty string
// is interactive: untagged clients predate priority classes and were
// written as interactive tools.
func parseClass(s string) (class, error) {
	switch s {
	case "", PriorityInteractive:
		return classInteractive, nil
	case PriorityBulk:
		return classBulk, nil
	default:
		return 0, fmt.Errorf("daemon: unknown priority %q (want %q or %q)", s, PriorityInteractive, PriorityBulk)
	}
}

// ticket is one waiter in a dispatcher queue. The dispatcher signals a
// grant by setting granted and closing ready while holding the lock;
// a waiter that gives up first sets abandoned so release skips it.
type ticket struct {
	ready     chan struct{}
	granted   bool
	abandoned bool
	cl        class
}

// dispatcher owns the daemon's worker slots. All methods are safe for
// concurrent use.
type dispatcher struct {
	mu sync.Mutex
	// free counts unassigned worker slots. Invariant: free > 0 implies
	// both waiter queues are empty (release grants before banking).
	free int
	// waiting counts admitted-but-not-running jobs per class (queued in
	// acquire or still between admit and acquire); admit bounds it.
	waiting  [numClasses]int
	maxQueue int
	// waiters are the acquire callers parked per class, FIFO.
	waiters [numClasses][]*ticket
	// servedI counts consecutive interactive grants of the current
	// round-robin round; after weight of them one bulk waiter is served.
	servedI int
	weight  int
}

// newDispatcher sizes a dispatcher: slots worker slots, maxQueue
// pending jobs per class, and weight consecutive interactive grants
// per bulk grant.
func newDispatcher(slots, maxQueue, weight int) *dispatcher {
	if slots < 1 {
		slots = 1
	}
	if maxQueue < 1 {
		maxQueue = 1
	}
	if weight < 1 {
		weight = 1
	}
	return &dispatcher{free: slots, maxQueue: maxQueue, weight: weight}
}

// admit reserves queue room for n class-cl jobs. It returns false —
// and reserves nothing — when the class queue cannot absorb all n:
// admission is all-or-nothing per batch so a half-admitted batch never
// occupies queue room while failing.
func (d *dispatcher) admit(cl class, n int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.waiting[cl]+n > d.maxQueue {
		return false
	}
	d.waiting[cl] += n
	return true
}

// forfeit returns one admitted unit that will never call acquire.
func (d *dispatcher) forfeit(cl class) {
	d.mu.Lock()
	d.dequeued(cl)
	d.mu.Unlock()
}

// dequeued decrements a class's waiting count, clamping at zero (a
// direct acquire in tests has no matching admit). Callers hold d.mu.
func (d *dispatcher) dequeued(cl class) {
	if d.waiting[cl] > 0 {
		d.waiting[cl]--
	}
}

// acquire blocks until a worker slot is granted, waitCtx is done (the
// submitter gave up), or baseCtx is done (daemon shutdown). A nil
// error means the caller owns a slot and must release() it.
func (d *dispatcher) acquire(waitCtx, baseCtx context.Context, cl class) error {
	d.mu.Lock()
	if d.free > 0 {
		d.free--
		d.dequeued(cl)
		d.mu.Unlock()
		return nil
	}
	t := &ticket{ready: make(chan struct{}), cl: cl}
	d.waiters[cl] = append(d.waiters[cl], t)
	d.mu.Unlock()

	select {
	case <-t.ready:
		return nil
	case <-waitCtx.Done():
		if d.abandon(t) {
			return waitCtx.Err()
		}
		// Granted in the race window: hand the slot straight onward.
		d.release()
		return waitCtx.Err()
	case <-baseCtx.Done():
		if d.abandon(t) {
			return fmt.Errorf("daemon: shutting down: %w", baseCtx.Err())
		}
		d.release()
		return fmt.Errorf("daemon: shutting down: %w", baseCtx.Err())
	}
}

// abandon marks t dead and settles its queue accounting. It reports
// whether the abandonment won the race: false means the ticket was
// already granted and the caller owns a slot it must put back.
func (d *dispatcher) abandon(t *ticket) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t.granted {
		return false
	}
	t.abandoned = true
	d.dequeued(t.cl)
	return true
}

// release returns a slot, granting it to the next waiter chosen by
// weighted round-robin, or banking it when no one waits.
func (d *dispatcher) release() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		t := d.next()
		if t == nil {
			d.free++
			return
		}
		if t.abandoned {
			continue // already settled its own accounting
		}
		t.granted = true
		d.dequeued(t.cl)
		close(t.ready)
		return
	}
}

// next pops the next waiter per weighted round-robin: up to weight
// consecutive interactive grants, then one bulk grant. A class with no
// waiters cedes its turn. Callers hold d.mu.
func (d *dispatcher) next() *ticket {
	order := [numClasses]class{classInteractive, classBulk}
	if d.servedI >= d.weight {
		order = [numClasses]class{classBulk, classInteractive}
	}
	for _, cl := range order {
		if len(d.waiters[cl]) == 0 {
			continue
		}
		t := d.waiters[cl][0]
		d.waiters[cl] = d.waiters[cl][1:]
		if cl == classInteractive {
			d.servedI++
		} else {
			d.servedI = 0
		}
		return t
	}
	return nil
}

// depths reports the per-class waiting counts (for stats, health, and
// Retry-After estimates).
func (d *dispatcher) depths() (interactive, bulk int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.waiting[classInteractive], d.waiting[classBulk]
}
