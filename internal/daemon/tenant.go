// Tenancy for the daemon: named clients identified by a bearer token,
// each with its own rate limit and in-flight quota, so one runaway
// client on a shared daemon cannot consume another's capacity.
//
// Tenants come from a JSON file (-tokens-file); a daemon started
// without one runs open, with every request landing on the default
// tenant. Requests carry the token in the X-Prosim-Token header; an
// empty token maps to the default tenant (so legacy clients keep
// working against a tokened daemon), an unknown token is rejected.
package daemon

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// TokenHeader carries the tenant token on every daemon request.
const TokenHeader = "X-Prosim-Token"

// DefaultTenant names the tenant that untokened requests land on.
const DefaultTenant = "default"

// TenantConfig is one entry of a -tokens-file: a JSON array of these.
type TenantConfig struct {
	// Token is the secret presented in X-Prosim-Token. Empty defines
	// the default tenant's limits (untokened requests).
	Token string `json:"token"`
	// Name labels the tenant in metrics and logs; it must be unique.
	// Empty with an empty token means the default tenant.
	Name string `json:"name"`
	// RatePerSec caps job submissions per second (token bucket);
	// 0 means unlimited.
	RatePerSec float64 `json:"ratePerSec,omitempty"`
	// Burst is the bucket depth — how many jobs may land at once after
	// idle time; 0 with a positive rate defaults to the rate (1s worth)
	// and at least 1.
	Burst int `json:"burst,omitempty"`
	// MaxInFlight caps this tenant's admitted-but-unfinished jobs;
	// 0 means unlimited.
	MaxInFlight int `json:"maxInFlight,omitempty"`
}

// bucket is a token-bucket rate limiter. Unlimited when rate == 0.
type bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// take attempts to draw n tokens. On refusal it reports how long until
// the bucket could satisfy the draw (the Retry-After hint), at least
// one second.
func (b *bucket) take(n int, now time.Time) (ok bool, retryAfter time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
	}
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	wait := time.Duration((need - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}

// tenant is one resolved tenant with its live accounting.
type tenant struct {
	name        string
	maxInFlight int
	rl          *bucket

	inflight atomic.Int64

	mJobs     *obs.Counter
	mRejected *obs.Counter
	mInflight *obs.Gauge
}

func newTenant(tc TenantConfig) *tenant {
	name := tc.Name
	if name == "" {
		name = DefaultTenant
	}
	burst := float64(tc.Burst)
	if tc.RatePerSec > 0 && burst <= 0 {
		burst = tc.RatePerSec
		if burst < 1 {
			burst = 1
		}
	}
	return &tenant{
		name:        name,
		maxInFlight: tc.MaxInFlight,
		rl:          &bucket{rate: tc.RatePerSec, burst: burst, tokens: burst},
		mJobs: obs.NewCounter(
			obs.Labeled("prosimd_tenant_jobs_total", "tenant", name),
			"jobs admitted, by tenant"),
		mRejected: obs.NewCounter(
			obs.Labeled("prosimd_tenant_rejected_total", "tenant", name),
			"batch rejections (rate, quota, queue), by tenant"),
		mInflight: obs.NewGauge(
			obs.Labeled("prosimd_tenant_inflight", "tenant", name),
			"admitted-but-unfinished jobs, by tenant"),
	}
}

// tryReserve charges n jobs against the in-flight quota, all or
// nothing. Each reserved unit must be returned by one done() call.
func (t *tenant) tryReserve(n int) bool {
	for {
		cur := t.inflight.Load()
		if t.maxInFlight > 0 && cur+int64(n) > int64(t.maxInFlight) {
			return false
		}
		if t.inflight.CompareAndSwap(cur, cur+int64(n)) {
			t.mInflight.Add(int64(n))
			return true
		}
	}
}

// done returns n quota units after the jobs finished (or were never
// submitted).
func (t *tenant) done(n int) {
	t.inflight.Add(int64(-n))
	t.mInflight.Add(int64(-n))
}

// tenantTable resolves tokens to tenants.
type tenantTable struct {
	byToken map[string]*tenant
	def     *tenant
}

// newTenantTable builds the table; entries with an empty token
// override the default tenant's limits. A nil/empty entries slice
// yields an open table: every token resolves to an unlimited default
// tenant.
func newTenantTable(entries []TenantConfig) (*tenantTable, error) {
	tt := &tenantTable{byToken: make(map[string]*tenant)}
	names := make(map[string]bool)
	for _, tc := range entries {
		t := newTenant(tc)
		if names[t.name] {
			return nil, fmt.Errorf("daemon: duplicate tenant name %q", t.name)
		}
		names[t.name] = true
		if tc.Token == "" {
			if tt.def != nil {
				return nil, fmt.Errorf("daemon: multiple default tenants (empty token)")
			}
			tt.def = t
			continue
		}
		if _, dup := tt.byToken[tc.Token]; dup {
			return nil, fmt.Errorf("daemon: duplicate tenant token")
		}
		tt.byToken[tc.Token] = t
	}
	if tt.def == nil {
		tt.def = newTenant(TenantConfig{})
	}
	return tt, nil
}

// resolve maps a request token to its tenant. An unknown non-empty
// token is an authentication failure; empty means the default tenant.
func (tt *tenantTable) resolve(token string) (*tenant, error) {
	if token == "" {
		return tt.def, nil
	}
	if t, ok := tt.byToken[token]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("daemon: unknown tenant token")
}

// size reports how many tenants the table defines (default included).
func (tt *tenantTable) size() int { return len(tt.byToken) + 1 }

// LoadTenants reads a -tokens-file: a JSON array of TenantConfig.
func LoadTenants(path string) ([]TenantConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("daemon: tokens file: %w", err)
	}
	var entries []TenantConfig
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("daemon: tokens file %s: %w", path, err)
	}
	for i, tc := range entries {
		if tc.Token == "" && tc.Name != "" && tc.Name != DefaultTenant {
			return nil, fmt.Errorf("daemon: tokens file %s entry %d: empty token must be the default tenant", path, i)
		}
	}
	return entries, nil
}
