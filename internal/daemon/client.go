package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/internal/stats"
)

// Client submits work to a running daemon. It implements jobs.Runner,
// so everything that takes a local engine — experiments.RunSuite, the
// cmd/ tools — can transparently target a daemon instead.
type Client struct {
	base string
	hc   *http.Client

	// Progress, when non-nil, receives one jobs.Event per completed job
	// of a Run batch, translated from the daemon's stream — the same
	// callback shape the local engine uses, so jobs.PrintProgress works
	// unchanged. Calls arrive on Run's goroutine.
	Progress func(jobs.Event)
}

// Dial connects to a daemon at addr — "unix:<path>" for a unix socket,
// otherwise a TCP host:port (an explicit http:// base is also accepted)
// — and verifies it responds to /v1/stats so a missing daemon fails
// fast rather than on first batch.
func Dial(addr string) (*Client, error) {
	c := &Client{hc: &http.Client{}}
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		c.base = "http://prosimd" // authority is ignored over a socket
		c.hc.Transport = &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "unix", path)
			},
		}
	} else if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		c.base = strings.TrimSuffix(addr, "/")
	} else {
		c.base = "http://" + addr
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Stats(ctx); err != nil {
		return nil, fmt.Errorf("daemon: no daemon at %s: %w", addr, err)
	}
	return c, nil
}

// Run implements jobs.Runner: submit the batch, relay progress events,
// and return one result per job in job order. Like the local engine, a
// failing job fails the batch (the daemon still finishes the others and
// keeps their results in its cache).
func (c *Client) Run(ctx context.Context, js []jobs.Job) ([]*stats.KernelResult, error) {
	if len(js) == 0 {
		return nil, nil
	}
	req := BatchRequest{Jobs: make([]WireJob, len(js))}
	for i := range js {
		wj, err := FromJob(&js[i])
		if err != nil {
			return nil, fmt.Errorf("daemon: job %d: %w", i, err)
		}
		req.Jobs[i] = wj
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("daemon: encoding batch: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("daemon: submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("daemon: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}

	dec := json.NewDecoder(resp.Body)
	var batch *Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("daemon: reading stream: %w", err)
		}
		switch ev.Type {
		case "job":
			if c.Progress != nil {
				jev := jobs.Event{
					Kernel:    ev.Kernel,
					Scheduler: ev.Scheduler,
					Done:      ev.Done,
					Total:     ev.Total,
					FromCache: ev.FromCache,
					CacheHits: ev.CacheHits,
					Elapsed:   time.Duration(ev.ElapsedMS) * time.Millisecond,
					ETA:       time.Duration(ev.EtaMS) * time.Millisecond,
				}
				c.Progress(jev)
			}
		case "batch":
			b := ev
			batch = &b
		}
	}
	if batch == nil {
		return nil, fmt.Errorf("daemon: stream ended without results (daemon shut down?)")
	}
	if len(batch.Results) != len(js) {
		return nil, fmt.Errorf("daemon: got %d results for %d jobs", len(batch.Results), len(js))
	}
	out := make([]*stats.KernelResult, len(js))
	for i, jr := range batch.Results {
		if jr.Err != "" {
			return nil, fmt.Errorf("daemon: job %d (%s/%s): %s",
				i, req.Jobs[i].Kernel, req.Jobs[i].Scheduler, jr.Err)
		}
		out[i] = jr.Result
	}
	return out, nil
}

// Stats fetches the daemon's counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("daemon: stats: %s", resp.Status)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("daemon: stats: %w", err)
	}
	return &st, nil
}

// GC asks the daemon to evict result-cache entries down to size
// (resultcache.ParseSize syntax) and returns what the pass removed.
func (c *Client) GC(ctx context.Context, size string) (GCStats, error) {
	body, _ := json.Marshal(GCRequest{Size: size})
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/gc", bytes.NewReader(body))
	if err != nil {
		return GCStats{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return GCStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return GCStats{}, fmt.Errorf("daemon: gc: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var st GCStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return GCStats{}, fmt.Errorf("daemon: gc: %w", err)
	}
	return st, nil
}
