package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/internal/stats"
)

// Client submits work to a running daemon. It implements jobs.Runner,
// so everything that takes a local engine — experiments.RunSuite, the
// cmd/ tools — can transparently target a daemon instead.
type Client struct {
	addr string
	base string
	hc   *http.Client

	// Progress, when non-nil, receives one jobs.Event per completed job
	// of a Run batch, translated from the daemon's stream — the same
	// callback shape the local engine uses, so jobs.PrintProgress works
	// unchanged. Calls arrive on Run's goroutine.
	Progress func(jobs.Event)

	// SMWorkers, when positive, is stamped onto every submitted wire job
	// as its intra-simulation worker count (WireJob.SMWorkers); zero
	// defers to the daemon's own policy. Execution knob only — it cannot
	// change results or cache keys.
	SMWorkers int

	// Token authenticates the client to a tokened daemon: it is sent as
	// X-Prosim-Token on every request. Empty means the default tenant.
	Token string

	// Priority is the batch-level scheduling class sent with every Run
	// (PriorityInteractive or PriorityBulk). Empty means interactive.
	Priority string
}

// OverloadedError reports a batch the daemon refused at admission —
// 429 (rate limit, quota, full queue) or 503 (draining). Unlike a
// TransportError the daemon is alive and answering: a coordinator
// should back off and retry the same worker after RetryAfter rather
// than mark it lost.
type OverloadedError struct {
	Addr       string
	Status     int
	RetryAfter time.Duration
	Msg        string
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("daemon: worker %s overloaded (HTTP %d, retry after %s): %s",
		e.Addr, e.Status, e.RetryAfter, e.Msg)
}

// TransportError reports a batch that failed between the client and a
// daemon — connect, submit, or a mid-stream disconnect — as opposed to
// a job that ran and returned an error. Work lost to a TransportError
// never completed on the worker's stream, so a coordinator can retry it
// on a surviving replica; a plain job error must not be retried. Addr
// names the worker and Pending the result-cache keys of the jobs still
// unresolved when the transport broke, so retry logs are actionable.
type TransportError struct {
	Addr    string
	Pending []string
	Err     error
}

func (e *TransportError) Error() string {
	if len(e.Pending) == 0 {
		return fmt.Sprintf("daemon: worker %s: %v", e.Addr, e.Err)
	}
	return fmt.Sprintf("daemon: worker %s: %v (pending jobs: %s)",
		e.Addr, e.Err, strings.Join(e.Pending, ", "))
}

func (e *TransportError) Unwrap() error { return e.Err }

// transportErr wraps err with the worker address and the keys of the
// jobs that had no result yet. resolved[i] marks jobs whose outcome the
// stream delivered before breaking.
func (c *Client) transportErr(err error, js []jobs.Job, resolved []bool) error {
	te := &TransportError{Addr: c.addr, Err: err}
	for i := range js {
		if resolved != nil && resolved[i] {
			continue
		}
		key, ok, kerr := jobs.Key(&js[i])
		if kerr != nil || !ok {
			key = js[i].Kernel // best-effort label for keyless jobs
		}
		te.Pending = append(te.Pending, shortKey(key))
	}
	return te
}

// shortKey abbreviates a 64-hex-char cache key for log lines.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// auth stamps the tenant token onto a request when the client has one.
func (c *Client) auth(hreq *http.Request) {
	if c.Token != "" {
		hreq.Header.Set(TokenHeader, c.Token)
	}
}

// parseRetryAfter reads a Retry-After header's delay-seconds form; a
// missing or unparseable header yields a one-second default so retry
// loops never spin hot.
func parseRetryAfter(v string) time.Duration {
	if sec, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && sec > 0 {
		return time.Duration(sec) * time.Second
	}
	return time.Second
}

// NewClient builds a client for a daemon at addr — "unix:<path>" for a
// unix socket, otherwise a TCP host:port (an explicit http:// base is
// also accepted) — without probing it. Callers that tolerate a dead
// endpoint (the cluster coordinator, which health-checks continuously)
// use this; interactive tools use Dial for its fail-fast probe.
func NewClient(addr string) *Client {
	c := &Client{addr: addr, hc: &http.Client{}}
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		c.base = "http://prosimd" // authority is ignored over a socket
		c.hc.Transport = &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "unix", path)
			},
		}
	} else if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		c.base = strings.TrimSuffix(addr, "/")
	} else {
		c.base = "http://" + addr
	}
	return c
}

// Addr returns the address the client was built with.
func (c *Client) Addr() string { return c.addr }

// Dial connects to a daemon at addr (NewClient syntax) and verifies it
// responds to /v1/stats so a missing daemon fails fast rather than on
// first batch.
func Dial(addr string) (*Client, error) {
	c := NewClient(addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Stats(ctx); err != nil {
		return nil, fmt.Errorf("daemon: no daemon at %s: %w", addr, err)
	}
	return c, nil
}

// Run implements jobs.Runner: submit the batch, relay progress events,
// and return one result per job in job order. Like the local engine, a
// failing job fails the batch (the daemon still finishes the others and
// keeps their results in its cache).
func (c *Client) Run(ctx context.Context, js []jobs.Job) ([]*stats.KernelResult, error) {
	if len(js) == 0 {
		return nil, nil
	}
	req := BatchRequest{Jobs: make([]WireJob, len(js)), Priority: c.Priority}
	for i := range js {
		wj, err := FromJob(&js[i])
		if err != nil {
			return nil, fmt.Errorf("daemon: job %d: %w", i, err)
		}
		if c.SMWorkers > 0 {
			wj.SMWorkers = c.SMWorkers
		}
		req.Jobs[i] = wj
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("daemon: encoding batch: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.auth(hreq)
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, c.transportErr(fmt.Errorf("submit: %w", err), js, nil)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			return nil, &OverloadedError{
				Addr:       c.addr,
				Status:     resp.StatusCode,
				RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
				Msg:        strings.TrimSpace(string(msg)),
			}
		}
		return nil, fmt.Errorf("daemon: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}

	// resolved[i] flips when the stream reports job i's outcome; jobs
	// still false when the stream breaks are named in the error so a
	// coordinator's retry log says exactly what work was lost where.
	resolved := make([]bool, len(js))
	dec := json.NewDecoder(resp.Body)
	var batch *Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return nil, c.transportErr(fmt.Errorf("stream broke mid-batch: %w", err), js, resolved)
		}
		switch ev.Type {
		case "job":
			if ev.Index >= 0 && ev.Index < len(js) {
				resolved[ev.Index] = true
			}
			if c.Progress != nil {
				jev := jobs.Event{
					Kernel:    ev.Kernel,
					Scheduler: ev.Scheduler,
					Done:      ev.Done,
					Total:     ev.Total,
					FromCache: ev.FromCache,
					CacheHits: ev.CacheHits,
					Elapsed:   time.Duration(ev.ElapsedMS) * time.Millisecond,
					ETA:       time.Duration(ev.EtaMS) * time.Millisecond,
				}
				c.Progress(jev)
			}
		case "batch":
			b := ev
			batch = &b
		}
	}
	if batch == nil {
		return nil, c.transportErr(fmt.Errorf("stream ended without results (daemon shut down?)"), js, resolved)
	}
	if len(batch.Results) != len(js) {
		return nil, c.transportErr(fmt.Errorf("got %d results for %d jobs", len(batch.Results), len(js)), js, resolved)
	}
	out := make([]*stats.KernelResult, len(js))
	for i, jr := range batch.Results {
		if jr.Err != "" {
			return nil, fmt.Errorf("daemon: job %d (%s/%s): %s",
				i, req.Jobs[i].Kernel, req.Jobs[i].Scheduler, jr.Err)
		}
		out[i] = jr.Result
	}
	return out, nil
}

// Stats fetches the daemon's counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	c.auth(hreq)
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("daemon: stats: %s", resp.Status)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("daemon: stats: %w", err)
	}
	return &st, nil
}

// Health probes the daemon's /v1/health endpoint. Older daemons predate
// the endpoint and answer 404; the client then falls back to /v1/stats
// and synthesizes the probe from its fields (such a daemon cannot
// report draining — absent fields decode to their zero values, which is
// the wire-compat contract for every additive daemon field).
func (c *Client) Health(ctx context.Context) (*Health, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/health", nil)
	if err != nil {
		return nil, err
	}
	c.auth(hreq)
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, &TransportError{Addr: c.addr, Err: fmt.Errorf("health: %w", err)}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			return nil, fmt.Errorf("daemon: health: %w", err)
		}
		return &h, nil
	case http.StatusNotFound:
		// Pre-health daemon: /v1/stats proves liveness and carries the
		// same in-flight/uptime/worker numbers.
		st, err := c.Stats(ctx)
		if err != nil {
			return nil, err
		}
		return &Health{
			Status:    "ok",
			Draining:  st.Draining,
			InFlight:  st.InFlight,
			UptimeSec: st.UptimeSec,
			Workers:   st.Workers,
		}, nil
	default:
		return nil, fmt.Errorf("daemon: health: %s", resp.Status)
	}
}

// GC asks the daemon to evict result-cache entries down to size
// (resultcache.ParseSize syntax) and returns what the pass removed.
func (c *Client) GC(ctx context.Context, size string) (GCStats, error) {
	body, _ := json.Marshal(GCRequest{Size: size})
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/gc", bytes.NewReader(body))
	if err != nil {
		return GCStats{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.auth(hreq)
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return GCStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return GCStats{}, fmt.Errorf("daemon: gc: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var st GCStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return GCStats{}, fmt.Errorf("daemon: gc: %w", err)
	}
	return st, nil
}
