// Wire protocol of the simulation daemon. Everything crossing the
// socket is JSON: a batch request carries self-contained job specs
// (config, launch — program included — scheduler spec, options), the
// response is an NDJSON stream of per-job progress events terminated by
// one batch line holding the results in job order.
//
// A wire job names its scheduling policy by *spec* rather than by
// factory: either a registered name ("PRO", "GTO") or a parameterized
// PRO-family form ("PRO+threshold=500", "PRO+ordertrace+threshold=
// default") — exactly the strings local jobs already use as FactoryKey
// cache identities. The daemon resolves specs through schedreg.Resolve,
// so a job serialized by a client keys to the same result-cache entry a
// local run of the same job would.
package daemon

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/jobs"
	"repro/internal/resultcache"
	"repro/internal/schedreg"
	"repro/internal/stats"
)

// WireJob is the JSON form of one simulation job.
type WireJob struct {
	// Config is the simulated GPU; nil means the paper's GTX480.
	Config *config.Config `json:"config,omitempty"`
	// Launch is the kernel launch, program included — wire jobs are
	// self-contained, the daemon holds no workload table.
	Launch *engine.Launch `json:"launch"`
	// Kernel labels the job in progress events.
	Kernel string `json:"kernel,omitempty"`
	// Scheduler is the policy spec (see schedreg.Resolve).
	Scheduler string `json:"scheduler"`
	// Options tune the run.
	Options gpu.Options `json:"options"`
	// Cost is the job's expected relative run time (informational).
	Cost int64 `json:"cost,omitempty"`
	// SMWorkers, when positive, asks the daemon to tick this job's SMs
	// on that many workers (config.ParallelSMs). It is an execution
	// knob, not part of the job's identity: the config field it sets is
	// excluded from cache-key JSON, so a job submitted with any
	// SMWorkers value keys identically to a local run. Zero defers to
	// the daemon's own -sm-workers policy.
	SMWorkers int `json:"smWorkers,omitempty"`
	// Priority is this job's scheduling class (PriorityInteractive or
	// PriorityBulk), overriding the batch-level default. Like SMWorkers
	// it is an execution knob, not identity: it never reaches the cache
	// key. Empty defers to the batch (and ultimately to interactive).
	Priority string `json:"priority,omitempty"`
}

// Priority classes a wire job or batch may carry. Interactive work
// (paper tables, report reruns, a human at a terminal) is granted
// worker slots ahead of bulk work (sweeps) at a configured ratio, so a
// saturating sweep cannot starve a quick look at one result.
const (
	PriorityInteractive = "interactive"
	PriorityBulk        = "bulk"
)

// Job converts the wire form into an executable job. Plain names pass
// through as Job.Scheduler; parameterized specs resolve to a factory
// with the spec as FactoryKey — either way the cache key matches the
// local execution path for the same job.
func (wj *WireJob) Job() (jobs.Job, error) {
	j := jobs.Job{
		Config:  wj.Config,
		Launch:  wj.Launch,
		Kernel:  wj.Kernel,
		Options: wj.Options,
		Cost:    wj.Cost,
	}
	if j.Launch == nil {
		return jobs.Job{}, fmt.Errorf("daemon: wire job has no launch")
	}
	if strings.Contains(wj.Scheduler, "+") {
		f, err := schedreg.Resolve(wj.Scheduler)
		if err != nil {
			return jobs.Job{}, err
		}
		j.Factory, j.FactoryKey = f, wj.Scheduler
	} else {
		j.Scheduler = wj.Scheduler
	}
	if wj.SMWorkers > 0 {
		// Stamp the execution knob onto a copy of the config. Materializing
		// the GTX480 default is key-neutral: the engine resolves a nil
		// Config to the same value before hashing, and ParallelSMs itself
		// is excluded from key JSON.
		cfg := j.Config
		if cfg == nil {
			cfg = config.GTX480()
		} else {
			cc := *cfg
			cfg = &cc
		}
		if cfg.ParallelSMs == 0 && !cfg.DisableSMParallel {
			cfg.ParallelSMs = wj.SMWorkers
			j.Config = cfg
		}
	}
	return j, nil
}

// FromJob converts a local job to wire form. A factory job is
// representable only when its FactoryKey is a resolvable spec — an
// anonymous closure cannot cross a process boundary.
func FromJob(j *jobs.Job) (WireJob, error) {
	wj := WireJob{
		Config:  j.Config,
		Launch:  j.Launch,
		Kernel:  j.Kernel,
		Options: j.Options,
		Cost:    j.Cost,
	}
	if j.Factory == nil {
		wj.Scheduler = j.Scheduler
		return wj, nil
	}
	if j.FactoryKey == "" {
		return WireJob{}, fmt.Errorf("daemon: job with anonymous factory cannot be submitted remotely")
	}
	if _, err := schedreg.Resolve(j.FactoryKey); err != nil {
		return WireJob{}, fmt.Errorf("daemon: factory key is not a wire-resolvable spec: %w", err)
	}
	wj.Scheduler = j.FactoryKey
	return wj, nil
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Jobs []WireJob `json:"jobs"`
	// Priority is the default class for every job of the batch; a job's
	// own Priority overrides it. Empty means interactive (additive
	// field: batches from older clients predate priority classes and
	// were interactive tools).
	Priority string `json:"priority,omitempty"`
}

// Event is one NDJSON line of a batch response. Type "job" reports one
// completed job; the final line has Type "batch" and carries Results.
type Event struct {
	Type string `json:"type"`

	// Job-event fields.
	//
	// Seq is the 1-based completion sequence within the batch, strictly
	// increasing across the stream; Index is the job's position in the
	// submitted batch (completion order is not submission order).
	Seq   int `json:"seq,omitempty"`
	Index int `json:"index,omitempty"`
	// Kernel and Scheduler identify the job.
	Kernel    string `json:"kernel,omitempty"`
	Scheduler string `json:"scheduler,omitempty"`
	// Done counts completed jobs of this batch, Total its size.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// FromCache marks a result replayed from the result cache; Deduped
	// marks one obtained by attaching to another submission's in-flight
	// run of the identical job.
	FromCache bool `json:"fromCache,omitempty"`
	Deduped   bool `json:"deduped,omitempty"`
	// CacheHits counts replayed results so far in this batch.
	CacheHits int `json:"cacheHits,omitempty"`
	// ElapsedMS is milliseconds since the batch started; EtaMS estimates
	// the remaining time from the pace of simulated jobs.
	ElapsedMS int64 `json:"elapsedMs,omitempty"`
	EtaMS     int64 `json:"etaMs,omitempty"`
	// Err is the job's failure, if any (the batch keeps running).
	Err string `json:"err,omitempty"`

	// Batch-line field: one entry per job, in job order.
	Results []JobResult `json:"results,omitempty"`
}

// JobResult is one job's outcome on the final batch line.
type JobResult struct {
	Result *stats.KernelResult `json:"result,omitempty"`
	Err    string              `json:"err,omitempty"`
}

// Stats is the body of GET /v1/stats.
type Stats struct {
	// Engine-lifetime job counters (across every batch and client since
	// the daemon started).
	Completed int64 `json:"completed"`
	Simulated int64 `json:"simulated"`
	Replayed  int64 `json:"replayed"`
	// Result-cache counters; zero when the daemon runs cacheless.
	CacheDir    string `json:"cacheDir,omitempty"`
	CacheHits   int64  `json:"cacheHits"`
	CacheMisses int64  `json:"cacheMisses"`
	CacheWrites int64  `json:"cacheWrites"`
	// Extended cache telemetry (additive; older clients ignore them):
	// byte traffic and cumulative GC activity since the daemon opened
	// its cache. Sourced from the same counters the obs registry
	// exposes at /metrics.
	CacheBytesRead    int64 `json:"cacheBytesRead"`
	CacheBytesWritten int64 `json:"cacheBytesWritten"`
	CacheGCRuns       int64 `json:"cacheGCRuns"`
	CacheGCEvicted    int64 `json:"cacheGCEvicted"`
	CacheGCFreedBytes int64 `json:"cacheGCFreedBytes"`
	// InFlight counts jobs currently executing or queued for a worker
	// slot; Attached counts submissions currently waiting on another
	// client's identical in-flight run.
	InFlight int64 `json:"inFlight"`
	Attached int64 `json:"attached"`
	// Batches counts batch requests accepted since start.
	Batches int64 `json:"batches"`
	// UptimeSec is seconds since the daemon started.
	UptimeSec float64 `json:"uptimeSec"`
	// Workers is the worker-slot count.
	Workers int `json:"workers"`
	// Draining is true once a shutdown began (additive; older daemons
	// omit it and older clients ignore it — absent decodes as false).
	Draining bool `json:"draining,omitempty"`
	// Multi-tenant admission telemetry (additive). QueueInteractive and
	// QueueBulk are the per-class admitted-but-not-running job counts;
	// Rejected counts batch requests refused at admission (rate, quota,
	// full queue, auth, size) since start; Tenants is the number of
	// configured tenants, the unnamed default included.
	QueueInteractive int   `json:"queueInteractive,omitempty"`
	QueueBulk        int   `json:"queueBulk,omitempty"`
	Rejected         int64 `json:"rejected,omitempty"`
	Tenants          int   `json:"tenants,omitempty"`
	// Tiered-cache telemetry (additive; all zero unless the daemon runs
	// with -cache-remote). CacheRemote is the L2 store URL; L2Hits and
	// L2Misses count read-throughs; L2Degraded counts operations that
	// fell back to L1-only service because the remote misbehaved.
	CacheRemote string `json:"cacheRemote,omitempty"`
	L2Hits      int64  `json:"l2Hits,omitempty"`
	L2Misses    int64  `json:"l2Misses,omitempty"`
	L2Degraded  int64  `json:"l2Degraded,omitempty"`
}

// Health is the body of GET /v1/health — the lightweight liveness probe
// cluster coordinators poll between batches. Unlike /v1/stats it carries
// no cache counters, so it stays cheap under a tight polling interval.
type Health struct {
	// Status is "ok" while the daemon accepts work and "draining" once a
	// shutdown began (in-flight jobs are finishing; send new work
	// elsewhere).
	Status string `json:"status"`
	// Draining mirrors Status for programmatic callers.
	Draining bool `json:"draining"`
	// InFlight counts jobs executing or queued for a worker slot.
	InFlight int64 `json:"inFlight"`
	// UptimeSec is seconds since the daemon started.
	UptimeSec float64 `json:"uptimeSec"`
	// Workers is the worker-slot count.
	Workers int `json:"workers"`
	// QueueDepth is the total admitted-but-not-running job count across
	// both priority classes (additive; a loaded daemon advertises its
	// backlog so pollers can prefer an idle replica).
	QueueDepth int `json:"queueDepth,omitempty"`
}

// GCRequest is the body of POST /v1/gc: evict least-recently-used cache
// entries down to Size (resultcache.ParseSize syntax, e.g. "256M").
type GCRequest struct {
	Size string `json:"size"`
}

// GCStats aliases the cache GC report for wire use.
type GCStats = resultcache.GCStats
