// Package daemon is the long-running simulation service: an HTTP server
// (TCP or unix socket) wrapping the parallel job engine, so the result
// cache stays warm across invocations of the cmd/ tools and identical
// in-flight work submitted by independent clients is performed once.
//
// Endpoints:
//
//	POST /v1/batch  submit a job batch; the response streams NDJSON
//	                progress events and ends with the results
//	GET  /v1/stats  engine/cache/in-flight counters
//	GET  /v1/health liveness probe (drain flag, in-flight, uptime)
//	POST /v1/gc     evict result-cache entries down to a size budget
//
// Dedupe semantics (singleflight): every job with a stable identity is
// keyed by its result-cache key. The first submission of a key becomes
// the *leader* and runs the simulation; submissions of the same key
// arriving while it runs *attach* to the leader's run and receive the
// same result without simulating. Runs execute under the daemon's own
// context, not the submitting request's, so a leader's client
// disconnecting mid-run never aborts work that attached followers (or
// the warm cache) still want. With a cache configured, the key dedupes
// across time as well — the leader's Put makes every later submission a
// cache hit.
//
// Shutdown: on Shutdown (cmd/prosimd wires SIGINT/SIGTERM to it) the
// daemon stops accepting connections and drains running batches; jobs
// still running when the drain timeout expires are aborted through
// context cancellation (gpu.RunContext polls it), so even a stuck
// daemon exits within a bounded delay.
package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/gpu"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/stats"
)

// Daemon telemetry (internal/obs). The HTTP request series are
// per-endpoint; everything else is process-wide like the jobs_ and
// resultcache_ families.
var (
	mBatches  = obs.NewCounter("prosimd_batches_total", "batch requests accepted")
	mDeduped  = obs.NewCounter("prosimd_dedupe_attached_total", "submissions that attached to another client's identical in-flight run")
	mInflight = obs.NewGauge("prosimd_jobs_inflight", "jobs executing or waiting for a worker slot")
	mAttached = obs.NewGauge("prosimd_attached_waiting", "submissions currently waiting on a leader's run")
	mDraining = obs.NewGauge("prosimd_draining", "1 while the daemon drains for shutdown")

	// Simulation heartbeat mirror (gpu.SetHeartbeat; registered by New).
	mSimBeats    = obs.NewCounter("sim_heartbeats_total", "simulation heartbeats observed")
	mSimFFJumps  = obs.NewCounter("sim_fastforward_jumps_total", "event-horizon clock jumps summed over heartbeats")
	mSimIters    = obs.NewCounter("sim_loop_iters_total", "top-level simulation loop iterations summed over heartbeats")
	mSimCycle    = obs.NewGauge("sim_last_heartbeat_cycle", "simulated cycle of the most recent heartbeat")
	mSimResident = obs.NewGauge("sim_resident_tbs", "resident thread blocks at the most recent heartbeat")

	// Parallel SM ticking (two-phase commit; see gpu.Heartbeat). The
	// phase histograms record the mean per-iteration duration of each
	// phase over a heartbeat window, so the ratio of tick (parallel) to
	// commit (serial drain) time — the Amdahl split — is readable
	// straight off /metrics.
	mSimSMWorkers = obs.NewGauge("sim_sm_workers", "intra-simulation SM tick workers of the most recent heartbeat (1 = serial)")
	mSimParTicks  = obs.NewCounter("sim_parallel_ticks_total", "loop iterations whose SM ticks fanned out to the worker pool")
	mSimPhaseTick = obs.NewHistogram(
		obs.Labeled("sim_phase_seconds", "phase", "tick"),
		"mean per-iteration duration of the parallel SM tick phase, per heartbeat window", phaseBuckets)
	mSimPhaseCommit = obs.NewHistogram(
		obs.Labeled("sim_phase_seconds", "phase", "commit"),
		"mean per-iteration duration of the serial lane-drain commit phase, per heartbeat window", phaseBuckets)
	mSimImbalance = obs.NewCounter("sim_phase_imbalance_ns_total",
		"cumulative slowest-minus-fastest worker shard nanoseconds across fanned iterations")

	// Adaptive fan-out and batched-commit telemetry (DESIGN.md §12.5).
	// The decision counters split every pool-backed iteration by the
	// fan-out controller's verdict; their ratio is the realized
	// parallel fraction. The batch-size histogram records the mean
	// staged ops per non-empty lane drain over a heartbeat window, and
	// the memsys counter tracks iterations whose DRAM channel scan was
	// overlapped with the parallel tick phase.
	mSimFanoutPar = obs.NewCounter(
		obs.Labeled("sim_fanout_decisions_total", "mode", "parallel"),
		"pool-backed loop iterations the fan-out decision parallelised")
	mSimFanoutSer = obs.NewCounter(
		obs.Labeled("sim_fanout_decisions_total", "mode", "serial"),
		"pool-backed loop iterations the fan-out decision ran serially")
	mSimLaneBatch = obs.NewHistogram("sim_lane_batch_size",
		"mean staged effects per non-empty lane drain, per heartbeat window", laneBatchBuckets)
	mSimMemPar = obs.NewCounter("sim_memsys_par_ticks_total",
		"fanned iterations whose DRAM channel scan overlapped the parallel tick phase")
)

// phaseBuckets spans the microsecond scale of one tick/commit phase
// (DefBuckets starts at 5ms — three orders of magnitude too coarse).
var phaseBuckets = []float64{1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 1e-3, 1e-2}

// laneBatchBuckets spans plausible mean commit batch sizes: an SM stages
// a handful of effects per cycle, so the interesting range is 1..128.
var laneBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// httpMetrics wraps an endpoint handler with a request counter and a
// latency histogram labeled by path. For /v1/batch the latency is the
// full stream duration — submission to terminal batch line.
func httpMetrics(path string, h http.HandlerFunc) http.Handler {
	reqs := obs.NewCounter(
		obs.Labeled("prosimd_http_requests_total", "path", path), "HTTP requests by endpoint")
	lat := obs.NewHistogram(
		obs.Labeled("prosimd_http_request_seconds", "path", path), "HTTP request latency by endpoint", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		start := time.Now()
		h(w, r)
		lat.Observe(time.Since(start).Seconds())
	})
}

// Config tunes a daemon.
type Config struct {
	// Workers is the number of concurrent simulations; <= 0 means
	// runtime.NumCPU().
	Workers int
	// CacheDir, when non-empty, backs the engine with a result cache.
	CacheDir string
	// JobTimeout caps one job's wall-clock time; 0 means no cap.
	JobTimeout time.Duration
	// SMWorkers is the default intra-simulation SM tick parallelism for
	// jobs that do not carry their own WireJob.SMWorkers: 0 derives
	// GOMAXPROCS/Workers (so a lightly-loaded daemon parallelizes inside
	// jobs), > 0 forces that count, < 0 defers to the simulator's auto
	// mode (see jobs.Engine.SMWorkers).
	SMWorkers int
	// DrainTimeout bounds how long Shutdown waits for running batches
	// before aborting their jobs; 0 means DefaultDrainTimeout.
	DrainTimeout time.Duration
	// QueueDepth bounds each priority class's admitted-but-not-running
	// jobs; a batch that would overflow its class queue is rejected with
	// 429 instead of absorbed. <= 0 means DefaultQueueDepth.
	QueueDepth int
	// MaxBatchJobs caps one batch request's job count (413 beyond it);
	// <= 0 means the queue depth.
	MaxBatchJobs int
	// InteractiveWeight is the weighted round-robin ratio: that many
	// consecutive interactive grants per bulk grant when both classes
	// have waiters. <= 0 means DefaultInteractiveWeight.
	InteractiveWeight int
	// Tenants defines the named tenants (see LoadTenants); empty means
	// an open daemon with one unlimited default tenant.
	Tenants []TenantConfig
	// CacheRemote, when non-empty, layers an HTTP L2 result store over
	// the disk cache (which becomes the L1 and is then required): reads
	// fall through to the remote store and writes replicate to it, with
	// graceful degradation to L1-only when the remote misbehaves. The
	// value is the exact URL prefix keys are appended to, e.g.
	// "http://peer:9753/cache" for a peer prosimd with -serve-cache.
	CacheRemote string
	// CacheRemoteTimeout bounds one L2 operation; <= 0 means
	// resultcache.DefaultRemoteTimeout.
	CacheRemoteTimeout time.Duration
	// ServeCache mounts the disk cache as an HTTP object store under
	// /cache/, so peer daemons can use this one as their L2.
	ServeCache bool
	// FlightDir, when non-empty, attaches a flight recorder to every
	// simulated job and writes its Perfetto capture artifact there,
	// named by the job's result-cache key (see jobs.Engine.FlightDir).
	FlightDir string
	// Log, when non-nil, receives structured lifecycle events (batch
	// accepted/finished, shutdown progress); nil logs nothing.
	Log *slog.Logger
	// Trace, when non-nil, receives one NDJSON span per job lifecycle
	// step — submissions that attach to an in-flight run included.
	Trace *obs.Tracer
}

// DefaultDrainTimeout is the Shutdown drain bound when Config leaves it
// zero.
const DefaultDrainTimeout = 30 * time.Second

// DefaultQueueDepth is the per-class pending-job bound when Config
// leaves it zero: deep enough for the repo's sweep and report batches
// (tens to a few hundred jobs), shallow enough that a runaway client
// hits 429 long before the daemon's memory does.
const DefaultQueueDepth = 1024

// DefaultInteractiveWeight is the round-robin ratio when Config leaves
// it zero: up to this many consecutive interactive grants before one
// queued bulk job gets a slot.
const DefaultInteractiveWeight = 8

// flight is one in-flight keyed run: the leader fills res/err and
// closes done; followers wait on done.
type flight struct {
	done      chan struct{}
	res       *stats.KernelResult
	fromCache bool
	err       error
}

// Daemon is the simulation service. Create with New, serve with Serve
// (or ServeUntilSignal), stop with Shutdown.
type Daemon struct {
	cfg     Config
	log     *slog.Logger
	eng     *jobs.Engine
	disp    *dispatcher
	tenants *tenantTable
	tiered  *resultcache.Tiered

	// baseCtx parents every job execution; baseCancel aborts them all
	// (the drain-timeout hammer).
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	inflight map[string]*flight

	running  atomic.Int64
	attached atomic.Int64
	batches  atomic.Int64
	rejected atomic.Int64
	draining atomic.Bool
	start    time.Time

	server *http.Server
}

// New builds a daemon from cfg.
func New(cfg Config) (*Daemon, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.MaxBatchJobs <= 0 {
		cfg.MaxBatchJobs = cfg.QueueDepth
	}
	if cfg.InteractiveWeight <= 0 {
		cfg.InteractiveWeight = DefaultInteractiveWeight
	}
	if cfg.CacheRemote != "" && cfg.CacheDir == "" {
		return nil, fmt.Errorf("daemon: -cache-remote requires a local cache directory (the L1)")
	}
	if cfg.ServeCache && cfg.CacheDir == "" {
		return nil, fmt.Errorf("daemon: -serve-cache requires a local cache directory")
	}
	eng, err := jobs.New(cfg.Workers, cfg.CacheDir, nil)
	if err != nil {
		return nil, err
	}
	eng.Trace = cfg.Trace
	eng.SMWorkers = cfg.SMWorkers
	eng.FlightDir = cfg.FlightDir
	log := cfg.Log
	if log == nil {
		log = obs.Discard()
	}
	tenants, err := newTenantTable(cfg.Tenants)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:      cfg,
		log:      log,
		eng:      eng,
		disp:     newDispatcher(cfg.Workers, cfg.QueueDepth, cfg.InteractiveWeight),
		tenants:  tenants,
		inflight: make(map[string]*flight),
		start:    time.Now(),
	}
	if cfg.CacheRemote != "" {
		remote := resultcache.NewRemote(cfg.CacheRemote, cfg.CacheRemoteTimeout)
		d.tiered = resultcache.NewTiered(eng.Cache, remote)
		eng.Backend = d.tiered
		log.Info("tiered result cache", "l1", cfg.CacheDir, "l2", remote.Base())
	}
	d.baseCtx, d.baseCancel = context.WithCancel(context.Background())
	d.server = &http.Server{Handler: d.Handler()}
	// The daemon is a long-running service, so it turns on the
	// low-frequency simulation heartbeat: liveness of in-flight runs
	// becomes visible on /metrics. Results are unaffected (the listener
	// only reads; see gpu.SetHeartbeat).
	gpu.SetHeartbeat(func(h gpu.Heartbeat) {
		mSimBeats.Inc()
		mSimFFJumps.Add(h.FFJumps)
		mSimIters.Add(h.Iters)
		mSimCycle.Set(h.Cycle)
		mSimResident.Set(int64(h.ResidentTBs))
		mSimSMWorkers.Set(int64(h.SMWorkers))
		if h.ParTicks > 0 {
			mSimParTicks.Add(h.ParTicks)
			mSimFanoutPar.Add(h.ParTicks)
			mSimPhaseTick.Observe(float64(h.TickNS) / float64(h.ParTicks) * 1e-9)
			mSimPhaseCommit.Observe(float64(h.CommitNS) / float64(h.ParTicks) * 1e-9)
			mSimImbalance.Add(h.ImbalanceNS)
		}
		mSimFanoutSer.Add(h.SerialTicks)
		mSimMemPar.Add(h.MemsysParTicks)
		if h.LaneDrains > 0 {
			mSimLaneBatch.Observe(float64(h.LaneOps) / float64(h.LaneDrains))
		}
	}, 0)
	return d, nil
}

// Engine exposes the wrapped job engine (tests assert its counters).
func (d *Daemon) Engine() *jobs.Engine { return d.eng }

// Handler returns the daemon's HTTP handler (useful for tests and for
// mounting under an existing server). Every /v1 endpoint carries a
// request counter and latency histogram; /metrics serves the process
// registry in Prometheus text format.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/batch", httpMetrics("/v1/batch", d.handleBatch))
	mux.Handle("/v1/stats", httpMetrics("/v1/stats", d.handleStats))
	mux.Handle("/v1/health", httpMetrics("/v1/health", d.handleHealth))
	mux.Handle("/v1/gc", httpMetrics("/v1/gc", d.handleGC))
	mux.Handle("/metrics", obs.Default.Handler())
	if d.cfg.ServeCache && d.eng.Cache != nil {
		// The disk cache doubles as the cluster's shared object store:
		// peer daemons point -cache-remote at this URL prefix.
		mux.Handle("/cache/", http.StripPrefix("/cache/", resultcache.StoreHandler(d.eng.Cache)))
	}
	return mux
}

// Listen opens the daemon transport for addr: "unix:<path>" listens on
// a unix socket, anything else is a TCP host:port. A leftover socket
// file is removed only after a connect probe fails — removing it
// unconditionally would silently unbind a live daemon on the same
// path, stranding it with no reachable socket.
func Listen(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		if _, err := os.Stat(path); err == nil {
			conn, err := net.DialTimeout("unix", path, 500*time.Millisecond)
			if err == nil {
				conn.Close()
				return nil, fmt.Errorf("daemon: socket %s is in use by a live daemon", path)
			}
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return nil, fmt.Errorf("daemon: stale socket: %w", err)
			}
		}
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

// Serve accepts connections on l until Shutdown (returning nil) or a
// listener failure (returning its error).
func (d *Daemon) Serve(l net.Listener) error {
	err := d.server.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown gracefully stops the daemon: stop accepting work, wait up to
// the drain timeout for running batches, then abort leftover jobs via
// context cancellation and close. It returns nil when everything
// drained cleanly and the drain error otherwise.
func (d *Daemon) Shutdown() error {
	d.draining.Store(true)
	mDraining.Set(1)
	defer mDraining.Set(0)
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.DrainTimeout)
	defer cancel()
	err := d.server.Shutdown(ctx)
	if err == nil {
		d.baseCancel() // nothing left to abort; release the context
		return nil
	}
	// Drain timed out with batches still running: cancel every job and
	// give the handlers a moment to observe it and flush their streams.
	d.log.Warn("drain timeout, aborting in-flight jobs", "timeout", d.cfg.DrainTimeout)
	d.baseCancel()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err2 := d.server.Shutdown(ctx2); err2 != nil {
		d.server.Close()
	}
	return fmt.Errorf("daemon: drain: %w", err)
}

// ServeUntilSignal serves on l until SIGINT or SIGTERM arrives, then
// drains and returns Shutdown's result — the whole lifecycle of
// cmd/prosimd in one call.
func (d *Daemon) ServeUntilSignal(l net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- d.Serve(l) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		d.log.Info("signal received, draining", "signal", s.String(), "timeout", d.cfg.DrainTimeout)
		err := d.Shutdown()
		<-errc
		d.log.Info("stopped")
		return err
	}
}

// runJob executes one job with singleflight dedupe: the first
// submission of a key becomes the leader and runs it, concurrent
// submissions of the same key attach and share the outcome. waitCtx is
// the submitting request's context — it bounds this submission's wait
// but never the shared run: once a flight is registered, the leader's
// slot wait and execution proceed under the daemon's own context, so a
// leader whose client disconnects mid-queue cannot poison the result
// its attached followers are waiting on.
func (d *Daemon) runJob(waitCtx context.Context, j *jobs.Job, cl class) (r *stats.KernelResult, fromCache, deduped bool, err error) {
	key, ok, err := d.eng.Key(j)
	if err != nil {
		d.disp.forfeit(cl)
		return nil, false, false, err
	}
	if !ok {
		// No stable identity — run without dedupe. Nobody can attach,
		// so the submitter's context may bound the whole slot wait.
		r, fromCache, err = d.execute(waitCtx, j, cl)
		return r, fromCache, false, err
	}

	d.mu.Lock()
	if f := d.inflight[key]; f != nil {
		d.mu.Unlock()
		d.disp.forfeit(cl) // the leader holds the queue position
		d.attached.Add(1)
		mAttached.Add(1)
		defer func() {
			d.attached.Add(-1)
			mAttached.Add(-1)
		}()
		start := time.Now()
		select {
		case <-f.done:
			mDeduped.Inc()
			d.cfg.Trace.Emit(obs.Span{
				Event: "done", Key: key, Kernel: jobLabel(j), Sched: schedLabel(j),
				Outcome: obs.OutcomeDeduped, DurationMS: obs.Millis(time.Since(start)),
				SimCycles: simCycles(f.res),
			})
			return f.res, f.fromCache, true, f.err
		case <-waitCtx.Done():
			return nil, false, false, waitCtx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	d.inflight[key] = f
	d.mu.Unlock()

	// Leader: from here on the run belongs to every attached follower,
	// so it waits and executes under d.baseCtx, not waitCtx.
	f.res, f.fromCache, f.err = d.execute(d.baseCtx, j, cl)
	d.mu.Lock()
	delete(d.inflight, key)
	d.mu.Unlock()
	close(f.done)
	return f.res, f.fromCache, false, f.err
}

// execute waits for a worker slot and runs j through the engine. The
// run itself is bound to the daemon's lifetime (plus JobTimeout), not
// to the submitting request: followers may be attached to it. waitCtx
// only bounds the slot wait (callers running on behalf of followers
// pass d.baseCtx).
func (d *Daemon) execute(waitCtx context.Context, j *jobs.Job, cl class) (*stats.KernelResult, bool, error) {
	if err := d.disp.acquire(waitCtx, d.baseCtx, cl); err != nil {
		return nil, false, err
	}
	defer d.disp.release()

	d.running.Add(1)
	mInflight.Add(1)
	defer func() {
		d.running.Add(-1)
		mInflight.Add(-1)
	}()

	ctx := d.baseCtx
	if d.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.cfg.JobTimeout)
		defer cancel()
	}
	return d.eng.RunJob(ctx, j)
}

// reject refuses a batch before any job ran: it counts the rejection
// (globally, by reason, and against the tenant when known), sets
// Retry-After for retryable statuses, and writes the error body.
func (d *Daemon) reject(w http.ResponseWriter, tn *tenant, code int, reason, msg string, retryAfter time.Duration) {
	d.rejected.Add(1)
	obs.NewCounter(
		obs.Labeled("prosimd_rejected_total", "reason", reason),
		"batch requests refused at admission, by reason").Inc()
	if tn != nil {
		tn.mRejected.Inc()
	}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retryAfter.Seconds()+0.999)))
	}
	http.Error(w, msg, code)
}

// retryAfterHint estimates when a full class queue will have drained
// enough to admit new work: pending jobs over worker slots, clamped to
// a sane polling range.
func (d *Daemon) retryAfterHint(cl class) time.Duration {
	qi, qb := d.disp.depths()
	pending := qi
	if cl == classBulk {
		pending = qb
	}
	sec := pending / d.cfg.Workers
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return time.Duration(sec) * time.Second
}

// submitPoolSize bounds a batch's submission goroutines. Submission
// goroutines mostly park (on the dispatcher or an NDJSON emit), but a
// goroutine per job still means a 100k-job batch costs gigabytes of
// stacks; a small multiple of the worker count keeps every slot fed
// with a bounded footprint.
func (d *Daemon) submitPoolSize(n int) int {
	pool := d.cfg.Workers * 4
	if pool < 8 {
		pool = 8
	}
	if pool > 64 {
		pool = 64
	}
	if pool > n {
		pool = n
	}
	return pool
}

// handleBatch streams a batch execution: one NDJSON job event per
// completion (strictly increasing seq), then one batch line with the
// results in job order. Individual job failures are reported per job
// and do not abort the rest of the batch.
//
// Admission happens before the stream starts, in order: tenant
// authentication (401), drain check (503), body and priority parsing
// (400), batch-size cap (413), tenant rate limit and in-flight quota
// (429), per-class queue capacity (429). Every 429 carries Retry-After.
func (d *Daemon) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	tn, err := d.tenants.resolve(r.Header.Get(TokenHeader))
	if err != nil {
		d.reject(w, nil, http.StatusUnauthorized, "auth", err.Error(), 0)
		return
	}
	if d.draining.Load() {
		d.reject(w, tn, http.StatusServiceUnavailable, "draining", "daemon is draining", 2*time.Second)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Jobs) > d.cfg.MaxBatchJobs {
		d.reject(w, tn, http.StatusRequestEntityTooLarge, "batch_size",
			fmt.Sprintf("batch of %d jobs exceeds the %d-job cap; split it", len(req.Jobs), d.cfg.MaxBatchJobs), 0)
		return
	}
	defCl, err := parseClass(req.Priority)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	js := make([]jobs.Job, len(req.Jobs))
	cls := make([]class, len(req.Jobs))
	var nByClass [numClasses]int
	for i := range req.Jobs {
		j, err := req.Jobs[i].Job()
		if err != nil {
			http.Error(w, fmt.Sprintf("bad job %d: %v", i, err), http.StatusBadRequest)
			return
		}
		js[i] = j
		cls[i] = defCl
		if p := req.Jobs[i].Priority; p != "" {
			if cls[i], err = parseClass(p); err != nil {
				http.Error(w, fmt.Sprintf("bad job %d: %v", i, err), http.StatusBadRequest)
				return
			}
		}
		nByClass[cls[i]]++
	}

	if ok, wait := tn.rl.take(len(js), time.Now()); !ok {
		d.reject(w, tn, http.StatusTooManyRequests, "rate",
			fmt.Sprintf("tenant %s over its rate limit", tn.name), wait)
		return
	}
	if !tn.tryReserve(len(js)) {
		d.reject(w, tn, http.StatusTooManyRequests, "quota",
			fmt.Sprintf("tenant %s at its in-flight quota (%d)", tn.name, tn.maxInFlight), time.Second)
		return
	}
	admitted := [numClasses]bool{}
	for cl := class(0); cl < numClasses; cl++ {
		if nByClass[cl] == 0 {
			admitted[cl] = true
			continue
		}
		if admitted[cl] = d.disp.admit(cl, nByClass[cl]); !admitted[cl] {
			// Roll back whatever the earlier classes reserved.
			for rb := class(0); rb < cl; rb++ {
				for k := 0; k < nByClass[rb]; k++ {
					d.disp.forfeit(rb)
				}
			}
			tn.done(len(js))
			d.reject(w, tn, http.StatusTooManyRequests, "queue",
				fmt.Sprintf("%s queue is full (%d pending)", cl, d.cfg.QueueDepth), d.retryAfterHint(cl))
			return
		}
	}
	tn.mJobs.Add(int64(len(js)))

	d.batches.Add(1)
	mBatches.Inc()
	d.log.Info("batch accepted", "jobs", len(js), "tenant", tn.name, "remote", r.RemoteAddr)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var (
		emu        sync.Mutex
		enc        = json.NewEncoder(w)
		seq        int
		hits       int
		free       int // hits + deduped: jobs that cost this batch ~nothing
		streamDead bool
		start      = time.Now()
		results    = make([]JobResult, len(js))
		wg         sync.WaitGroup
	)
	emit := func(ev *Event) {
		emu.Lock()
		defer emu.Unlock()
		seq++
		ev.Seq = seq
		ev.Done = seq
		ev.Total = len(js)
		if ev.FromCache {
			hits++
		}
		if ev.FromCache || ev.Deduped {
			free++
		}
		ev.CacheHits = hits
		elapsed := time.Since(start)
		ev.ElapsedMS = elapsed.Milliseconds()
		// Remaining-time estimate from the pace of simulated jobs: cache
		// hits and dedup attaches are near-instant and would collapse the
		// mean (the warm-cache ETA-skew bug of jobs.Run).
		if ev.Done < ev.Total {
			pace := seq - free
			if pace <= 0 {
				pace = seq
			}
			ev.EtaMS = (elapsed / time.Duration(pace) *
				time.Duration(ev.Total-ev.Done)).Milliseconds()
		}
		if streamDead {
			return
		}
		if err := enc.Encode(ev); err != nil {
			// The client is gone; keep running (followers and the cache
			// still want the results) but stop writing into the void.
			streamDead = true
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	// A bounded submission pool instead of one goroutine per job: the
	// admission queue bounds how much work may pend, the pool bounds
	// how many goroutines carry it.
	idx := make(chan int)
	pool := d.submitPoolSize(len(js))
	for p := 0; p < pool; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := r.Context().Err(); err != nil {
					// Client gone before this job was submitted: drop its
					// reservation instead of launching work nobody reads.
					d.disp.forfeit(cls[i])
					tn.done(1)
					results[i] = JobResult{Err: "submission canceled: " + err.Error()}
					continue
				}
				res, fromCache, deduped, err := d.runJob(r.Context(), &js[i], cls[i])
				tn.done(1)
				ev := Event{
					Type:      "job",
					Index:     i,
					Kernel:    jobLabel(&js[i]),
					Scheduler: schedLabel(&js[i]),
					FromCache: fromCache,
					Deduped:   deduped,
				}
				if err != nil {
					ev.Err = err.Error()
					results[i] = JobResult{Err: err.Error()}
				} else {
					results[i] = JobResult{Result: res}
				}
				emit(&ev)
			}
		}()
	}
	for i := range js {
		idx <- i
	}
	close(idx)
	wg.Wait()

	emu.Lock()
	defer emu.Unlock()
	if !streamDead {
		enc.Encode(&Event{Type: "batch", Results: results})
		if flusher != nil {
			flusher.Flush()
		}
	}
	d.log.Info("batch done",
		"jobs", len(js), "cached", hits, "tenant", tn.name,
		"elapsed_sec", fmt.Sprintf("%.1f", time.Since(start).Seconds()))
}

// simCycles extracts a result's cycle count nil-safely for trace spans.
func simCycles(r *stats.KernelResult) int64 {
	if r == nil {
		return 0
	}
	return r.Cycles
}

// handleHealth is the coordinator's liveness probe: always 200 with a
// tiny JSON body, "draining" once a shutdown began so pollers stop
// assigning new work while in-flight jobs finish.
func (d *Daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	qi, qb := d.disp.depths()
	h := Health{
		Status:     "ok",
		Draining:   d.draining.Load(),
		InFlight:   d.running.Load(),
		UptimeSec:  time.Since(d.start).Seconds(),
		Workers:    d.cfg.Workers,
		QueueDepth: qi + qb,
	}
	if h.Draining {
		h.Status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	st := Stats{
		Completed: d.eng.Completed(),
		Simulated: d.eng.Simulated(),
		Replayed:  d.eng.Replayed(),
		InFlight:  d.running.Load(),
		Attached:  d.attached.Load(),
		Batches:   d.batches.Load(),
		UptimeSec: time.Since(d.start).Seconds(),
		Workers:   d.cfg.Workers,
		Draining:  d.draining.Load(),
	}
	if c := d.eng.Cache; c != nil {
		st.CacheDir = c.Dir()
		st.CacheHits = c.Hits()
		st.CacheMisses = c.Misses()
		st.CacheWrites = c.Writes()
		st.CacheBytesRead = c.BytesRead()
		st.CacheBytesWritten = c.BytesWritten()
		st.CacheGCRuns = c.GCRuns()
		st.CacheGCEvicted = c.GCEvicted()
		st.CacheGCFreedBytes = c.GCFreed()
	}
	st.QueueInteractive, st.QueueBulk = d.disp.depths()
	st.Rejected = d.rejected.Load()
	st.Tenants = d.tenants.size()
	if d.tiered != nil {
		st.CacheRemote = d.cfg.CacheRemote
		st.L2Hits = d.tiered.L2Hits()
		st.L2Misses = d.tiered.L2Misses()
		st.L2Degraded = d.tiered.Degraded()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (d *Daemon) handleGC(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if d.eng.Cache == nil {
		http.Error(w, "daemon runs without a result cache", http.StatusBadRequest)
		return
	}
	var req GCRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad gc request: "+err.Error(), http.StatusBadRequest)
		return
	}
	maxBytes, err := resultcache.ParseSize(req.Size)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st, err := d.eng.Cache.GC(maxBytes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	d.log.Info("cache gc",
		"budget", req.Size, "evicted", st.Evicted, "entries", st.Entries,
		"freed_bytes", st.Freed, "stale_tmp", st.TmpFiles)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// jobLabel and schedLabel name a job in event reporting.
func jobLabel(j *jobs.Job) string   { return j.Label() }
func schedLabel(j *jobs.Job) string { return j.SchedLabel() }
