// Package daemon is the long-running simulation service: an HTTP server
// (TCP or unix socket) wrapping the parallel job engine, so the result
// cache stays warm across invocations of the cmd/ tools and identical
// in-flight work submitted by independent clients is performed once.
//
// Endpoints:
//
//	POST /v1/batch  submit a job batch; the response streams NDJSON
//	                progress events and ends with the results
//	GET  /v1/stats  engine/cache/in-flight counters
//	GET  /v1/health liveness probe (drain flag, in-flight, uptime)
//	POST /v1/gc     evict result-cache entries down to a size budget
//
// Dedupe semantics (singleflight): every job with a stable identity is
// keyed by its result-cache key. The first submission of a key becomes
// the *leader* and runs the simulation; submissions of the same key
// arriving while it runs *attach* to the leader's run and receive the
// same result without simulating. Runs execute under the daemon's own
// context, not the submitting request's, so a leader's client
// disconnecting mid-run never aborts work that attached followers (or
// the warm cache) still want. With a cache configured, the key dedupes
// across time as well — the leader's Put makes every later submission a
// cache hit.
//
// Shutdown: on Shutdown (cmd/prosimd wires SIGINT/SIGTERM to it) the
// daemon stops accepting connections and drains running batches; jobs
// still running when the drain timeout expires are aborted through
// context cancellation (gpu.RunContext polls it), so even a stuck
// daemon exits within a bounded delay.
package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/gpu"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/stats"
)

// Daemon telemetry (internal/obs). The HTTP request series are
// per-endpoint; everything else is process-wide like the jobs_ and
// resultcache_ families.
var (
	mBatches  = obs.NewCounter("prosimd_batches_total", "batch requests accepted")
	mDeduped  = obs.NewCounter("prosimd_dedupe_attached_total", "submissions that attached to another client's identical in-flight run")
	mInflight = obs.NewGauge("prosimd_jobs_inflight", "jobs executing or waiting for a worker slot")
	mAttached = obs.NewGauge("prosimd_attached_waiting", "submissions currently waiting on a leader's run")
	mDraining = obs.NewGauge("prosimd_draining", "1 while the daemon drains for shutdown")

	// Simulation heartbeat mirror (gpu.SetHeartbeat; registered by New).
	mSimBeats    = obs.NewCounter("sim_heartbeats_total", "simulation heartbeats observed")
	mSimFFJumps  = obs.NewCounter("sim_fastforward_jumps_total", "event-horizon clock jumps summed over heartbeats")
	mSimIters    = obs.NewCounter("sim_loop_iters_total", "top-level simulation loop iterations summed over heartbeats")
	mSimCycle    = obs.NewGauge("sim_last_heartbeat_cycle", "simulated cycle of the most recent heartbeat")
	mSimResident = obs.NewGauge("sim_resident_tbs", "resident thread blocks at the most recent heartbeat")

	// Parallel SM ticking (two-phase commit; see gpu.Heartbeat). The
	// phase histograms record the mean per-iteration duration of each
	// phase over a heartbeat window, so the ratio of tick (parallel) to
	// commit (serial drain) time — the Amdahl split — is readable
	// straight off /metrics.
	mSimSMWorkers = obs.NewGauge("sim_sm_workers", "intra-simulation SM tick workers of the most recent heartbeat (1 = serial)")
	mSimParTicks  = obs.NewCounter("sim_parallel_ticks_total", "loop iterations whose SM ticks fanned out to the worker pool")
	mSimPhaseTick = obs.NewHistogram(
		obs.Labeled("sim_phase_seconds", "phase", "tick"),
		"mean per-iteration duration of the parallel SM tick phase, per heartbeat window", phaseBuckets)
	mSimPhaseCommit = obs.NewHistogram(
		obs.Labeled("sim_phase_seconds", "phase", "commit"),
		"mean per-iteration duration of the serial lane-drain commit phase, per heartbeat window", phaseBuckets)
	mSimImbalance = obs.NewCounter("sim_phase_imbalance_ns_total",
		"cumulative slowest-minus-fastest worker shard nanoseconds across fanned iterations")
)

// phaseBuckets spans the microsecond scale of one tick/commit phase
// (DefBuckets starts at 5ms — three orders of magnitude too coarse).
var phaseBuckets = []float64{1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 1e-3, 1e-2}

// httpMetrics wraps an endpoint handler with a request counter and a
// latency histogram labeled by path. For /v1/batch the latency is the
// full stream duration — submission to terminal batch line.
func httpMetrics(path string, h http.HandlerFunc) http.Handler {
	reqs := obs.NewCounter(
		obs.Labeled("prosimd_http_requests_total", "path", path), "HTTP requests by endpoint")
	lat := obs.NewHistogram(
		obs.Labeled("prosimd_http_request_seconds", "path", path), "HTTP request latency by endpoint", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		start := time.Now()
		h(w, r)
		lat.Observe(time.Since(start).Seconds())
	})
}

// Config tunes a daemon.
type Config struct {
	// Workers is the number of concurrent simulations; <= 0 means
	// runtime.NumCPU().
	Workers int
	// CacheDir, when non-empty, backs the engine with a result cache.
	CacheDir string
	// JobTimeout caps one job's wall-clock time; 0 means no cap.
	JobTimeout time.Duration
	// SMWorkers is the default intra-simulation SM tick parallelism for
	// jobs that do not carry their own WireJob.SMWorkers: 0 derives
	// GOMAXPROCS/Workers (so a lightly-loaded daemon parallelizes inside
	// jobs), > 0 forces that count, < 0 defers to the simulator's auto
	// mode (see jobs.Engine.SMWorkers).
	SMWorkers int
	// DrainTimeout bounds how long Shutdown waits for running batches
	// before aborting their jobs; 0 means DefaultDrainTimeout.
	DrainTimeout time.Duration
	// Log, when non-nil, receives structured lifecycle events (batch
	// accepted/finished, shutdown progress); nil logs nothing.
	Log *slog.Logger
	// Trace, when non-nil, receives one NDJSON span per job lifecycle
	// step — submissions that attach to an in-flight run included.
	Trace *obs.Tracer
}

// DefaultDrainTimeout is the Shutdown drain bound when Config leaves it
// zero.
const DefaultDrainTimeout = 30 * time.Second

// flight is one in-flight keyed run: the leader fills res/err and
// closes done; followers wait on done.
type flight struct {
	done      chan struct{}
	res       *stats.KernelResult
	fromCache bool
	err       error
}

// Daemon is the simulation service. Create with New, serve with Serve
// (or ServeUntilSignal), stop with Shutdown.
type Daemon struct {
	cfg Config
	log *slog.Logger
	eng *jobs.Engine
	sem chan struct{}

	// baseCtx parents every job execution; baseCancel aborts them all
	// (the drain-timeout hammer).
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	inflight map[string]*flight

	running  atomic.Int64
	attached atomic.Int64
	batches  atomic.Int64
	draining atomic.Bool
	start    time.Time

	server *http.Server
}

// New builds a daemon from cfg.
func New(cfg Config) (*Daemon, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	eng, err := jobs.New(cfg.Workers, cfg.CacheDir, nil)
	if err != nil {
		return nil, err
	}
	eng.Trace = cfg.Trace
	eng.SMWorkers = cfg.SMWorkers
	log := cfg.Log
	if log == nil {
		log = obs.Discard()
	}
	d := &Daemon{
		cfg:      cfg,
		log:      log,
		eng:      eng,
		sem:      make(chan struct{}, cfg.Workers),
		inflight: make(map[string]*flight),
		start:    time.Now(),
	}
	d.baseCtx, d.baseCancel = context.WithCancel(context.Background())
	d.server = &http.Server{Handler: d.Handler()}
	// The daemon is a long-running service, so it turns on the
	// low-frequency simulation heartbeat: liveness of in-flight runs
	// becomes visible on /metrics. Results are unaffected (the listener
	// only reads; see gpu.SetHeartbeat).
	gpu.SetHeartbeat(func(h gpu.Heartbeat) {
		mSimBeats.Inc()
		mSimFFJumps.Add(h.FFJumps)
		mSimIters.Add(h.Iters)
		mSimCycle.Set(h.Cycle)
		mSimResident.Set(int64(h.ResidentTBs))
		mSimSMWorkers.Set(int64(h.SMWorkers))
		if h.ParTicks > 0 {
			mSimParTicks.Add(h.ParTicks)
			mSimPhaseTick.Observe(float64(h.TickNS) / float64(h.ParTicks) * 1e-9)
			mSimPhaseCommit.Observe(float64(h.CommitNS) / float64(h.ParTicks) * 1e-9)
			mSimImbalance.Add(h.ImbalanceNS)
		}
	}, 0)
	return d, nil
}

// Engine exposes the wrapped job engine (tests assert its counters).
func (d *Daemon) Engine() *jobs.Engine { return d.eng }

// Handler returns the daemon's HTTP handler (useful for tests and for
// mounting under an existing server). Every /v1 endpoint carries a
// request counter and latency histogram; /metrics serves the process
// registry in Prometheus text format.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/batch", httpMetrics("/v1/batch", d.handleBatch))
	mux.Handle("/v1/stats", httpMetrics("/v1/stats", d.handleStats))
	mux.Handle("/v1/health", httpMetrics("/v1/health", d.handleHealth))
	mux.Handle("/v1/gc", httpMetrics("/v1/gc", d.handleGC))
	mux.Handle("/metrics", obs.Default.Handler())
	return mux
}

// Listen opens the daemon transport for addr: "unix:<path>" listens on
// a unix socket (removing a stale socket file first — the daemon owns
// its socket path), anything else is a TCP host:port.
func Listen(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("daemon: stale socket: %w", err)
		}
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

// Serve accepts connections on l until Shutdown (returning nil) or a
// listener failure (returning its error).
func (d *Daemon) Serve(l net.Listener) error {
	err := d.server.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown gracefully stops the daemon: stop accepting work, wait up to
// the drain timeout for running batches, then abort leftover jobs via
// context cancellation and close. It returns nil when everything
// drained cleanly and the drain error otherwise.
func (d *Daemon) Shutdown() error {
	d.draining.Store(true)
	mDraining.Set(1)
	defer mDraining.Set(0)
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.DrainTimeout)
	defer cancel()
	err := d.server.Shutdown(ctx)
	if err == nil {
		d.baseCancel() // nothing left to abort; release the context
		return nil
	}
	// Drain timed out with batches still running: cancel every job and
	// give the handlers a moment to observe it and flush their streams.
	d.log.Warn("drain timeout, aborting in-flight jobs", "timeout", d.cfg.DrainTimeout)
	d.baseCancel()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err2 := d.server.Shutdown(ctx2); err2 != nil {
		d.server.Close()
	}
	return fmt.Errorf("daemon: drain: %w", err)
}

// ServeUntilSignal serves on l until SIGINT or SIGTERM arrives, then
// drains and returns Shutdown's result — the whole lifecycle of
// cmd/prosimd in one call.
func (d *Daemon) ServeUntilSignal(l net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- d.Serve(l) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		d.log.Info("signal received, draining", "signal", s.String(), "timeout", d.cfg.DrainTimeout)
		err := d.Shutdown()
		<-errc
		d.log.Info("stopped")
		return err
	}
}

// runJob executes one job with singleflight dedupe: the first
// submission of a key runs it (under the daemon's context, bounded by
// JobTimeout), concurrent submissions of the same key attach and share
// the outcome. waitCtx is the submitting request's context — it bounds
// only this submission's wait, never the shared run.
func (d *Daemon) runJob(waitCtx context.Context, j *jobs.Job) (r *stats.KernelResult, fromCache, deduped bool, err error) {
	key, ok, err := d.eng.Key(j)
	if err != nil {
		return nil, false, false, err
	}
	if !ok {
		// No stable identity — run without dedupe.
		r, fromCache, err = d.execute(waitCtx, j)
		return r, fromCache, false, err
	}

	d.mu.Lock()
	if f := d.inflight[key]; f != nil {
		d.mu.Unlock()
		d.attached.Add(1)
		mAttached.Add(1)
		defer func() {
			d.attached.Add(-1)
			mAttached.Add(-1)
		}()
		start := time.Now()
		select {
		case <-f.done:
			mDeduped.Inc()
			d.cfg.Trace.Emit(obs.Span{
				Event: "done", Key: key, Kernel: jobLabel(j), Sched: schedLabel(j),
				Outcome: obs.OutcomeDeduped, DurationMS: obs.Millis(time.Since(start)),
				SimCycles: simCycles(f.res),
			})
			return f.res, f.fromCache, true, f.err
		case <-waitCtx.Done():
			return nil, false, false, waitCtx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	d.inflight[key] = f
	d.mu.Unlock()

	f.res, f.fromCache, f.err = d.execute(waitCtx, j)
	d.mu.Lock()
	delete(d.inflight, key)
	d.mu.Unlock()
	close(f.done)
	return f.res, f.fromCache, false, f.err
}

// execute waits for a worker slot and runs j through the engine. The
// run itself is bound to the daemon's lifetime (plus JobTimeout), not
// to the submitting request: followers may be attached to it. waitCtx
// only bounds the slot wait.
func (d *Daemon) execute(waitCtx context.Context, j *jobs.Job) (*stats.KernelResult, bool, error) {
	select {
	case d.sem <- struct{}{}:
	case <-waitCtx.Done():
		return nil, false, waitCtx.Err()
	case <-d.baseCtx.Done():
		return nil, false, fmt.Errorf("daemon: shutting down: %w", d.baseCtx.Err())
	}
	defer func() { <-d.sem }()

	d.running.Add(1)
	mInflight.Add(1)
	defer func() {
		d.running.Add(-1)
		mInflight.Add(-1)
	}()

	ctx := d.baseCtx
	if d.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.cfg.JobTimeout)
		defer cancel()
	}
	return d.eng.RunJob(ctx, j)
}

// handleBatch streams a batch execution: one NDJSON job event per
// completion (strictly increasing seq), then one batch line with the
// results in job order. Individual job failures are reported per job
// and do not abort the rest of the batch.
func (d *Daemon) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	js := make([]jobs.Job, len(req.Jobs))
	for i := range req.Jobs {
		j, err := req.Jobs[i].Job()
		if err != nil {
			http.Error(w, fmt.Sprintf("bad job %d: %v", i, err), http.StatusBadRequest)
			return
		}
		js[i] = j
	}
	d.batches.Add(1)
	mBatches.Inc()
	d.log.Info("batch accepted", "jobs", len(js), "remote", r.RemoteAddr)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var (
		emu     sync.Mutex
		enc     = json.NewEncoder(w)
		seq     int
		hits    int
		free    int // hits + deduped: jobs that cost this batch ~nothing
		start   = time.Now()
		results = make([]JobResult, len(js))
		wg      sync.WaitGroup
	)
	emit := func(ev *Event) {
		emu.Lock()
		defer emu.Unlock()
		seq++
		ev.Seq = seq
		ev.Done = seq
		ev.Total = len(js)
		if ev.FromCache {
			hits++
		}
		if ev.FromCache || ev.Deduped {
			free++
		}
		ev.CacheHits = hits
		elapsed := time.Since(start)
		ev.ElapsedMS = elapsed.Milliseconds()
		// Remaining-time estimate from the pace of simulated jobs: cache
		// hits and dedup attaches are near-instant and would collapse the
		// mean (the warm-cache ETA-skew bug of jobs.Run).
		if ev.Done < ev.Total {
			pace := seq - free
			if pace <= 0 {
				pace = seq
			}
			ev.EtaMS = (elapsed / time.Duration(pace) *
				time.Duration(ev.Total-ev.Done)).Milliseconds()
		}
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	for i := range js {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, fromCache, deduped, err := d.runJob(r.Context(), &js[i])
			ev := Event{
				Type:      "job",
				Index:     i,
				Kernel:    jobLabel(&js[i]),
				Scheduler: schedLabel(&js[i]),
				FromCache: fromCache,
				Deduped:   deduped,
			}
			if err != nil {
				ev.Err = err.Error()
				results[i] = JobResult{Err: err.Error()}
			} else {
				results[i] = JobResult{Result: res}
			}
			emit(&ev)
		}(i)
	}
	wg.Wait()

	emu.Lock()
	defer emu.Unlock()
	enc.Encode(&Event{Type: "batch", Results: results})
	if flusher != nil {
		flusher.Flush()
	}
	d.log.Info("batch done",
		"jobs", len(js), "cached", hits,
		"elapsed_sec", fmt.Sprintf("%.1f", time.Since(start).Seconds()))
}

// simCycles extracts a result's cycle count nil-safely for trace spans.
func simCycles(r *stats.KernelResult) int64 {
	if r == nil {
		return 0
	}
	return r.Cycles
}

// handleHealth is the coordinator's liveness probe: always 200 with a
// tiny JSON body, "draining" once a shutdown began so pollers stop
// assigning new work while in-flight jobs finish.
func (d *Daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:    "ok",
		Draining:  d.draining.Load(),
		InFlight:  d.running.Load(),
		UptimeSec: time.Since(d.start).Seconds(),
		Workers:   d.cfg.Workers,
	}
	if h.Draining {
		h.Status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	st := Stats{
		Completed: d.eng.Completed(),
		Simulated: d.eng.Simulated(),
		Replayed:  d.eng.Replayed(),
		InFlight:  d.running.Load(),
		Attached:  d.attached.Load(),
		Batches:   d.batches.Load(),
		UptimeSec: time.Since(d.start).Seconds(),
		Workers:   d.cfg.Workers,
		Draining:  d.draining.Load(),
	}
	if c := d.eng.Cache; c != nil {
		st.CacheDir = c.Dir()
		st.CacheHits = c.Hits()
		st.CacheMisses = c.Misses()
		st.CacheWrites = c.Writes()
		st.CacheBytesRead = c.BytesRead()
		st.CacheBytesWritten = c.BytesWritten()
		st.CacheGCRuns = c.GCRuns()
		st.CacheGCEvicted = c.GCEvicted()
		st.CacheGCFreedBytes = c.GCFreed()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (d *Daemon) handleGC(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if d.eng.Cache == nil {
		http.Error(w, "daemon runs without a result cache", http.StatusBadRequest)
		return
	}
	var req GCRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad gc request: "+err.Error(), http.StatusBadRequest)
		return
	}
	maxBytes, err := resultcache.ParseSize(req.Size)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st, err := d.eng.Cache.GC(maxBytes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	d.log.Info("cache gc",
		"budget", req.Size, "evicted", st.Evicted, "entries", st.Entries,
		"freed_bytes", st.Freed, "stale_tmp", st.TmpFiles)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// jobLabel and schedLabel name a job in event reporting.
func jobLabel(j *jobs.Job) string   { return j.Label() }
func schedLabel(j *jobs.Job) string { return j.SchedLabel() }
