package daemon

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/obstest"
)

// TestMetricsEndpointServesPrometheus is the acceptance test for the
// telemetry tentpole: after real work flows through the daemon, GET
// /metrics must return well-formed Prometheus text exposition covering
// the daemon, job-engine and result-cache metric families.
func TestMetricsEndpointServesPrometheus(t *testing.T) {
	d, c := newTestDaemon(t, Config{Workers: 2, CacheDir: t.TempDir()})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	js := quickBatch(t)[:2]
	// Cold then warm, so cache hit and miss counters both move.
	for i := 0; i < 2; i++ {
		if _, err := c.Run(context.Background(), js); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	obstest.ValidatePrometheus(t, text)

	// One family per instrumented layer. Values are process-global (other
	// tests in the package contribute), so assert presence, not counts.
	for _, family := range []string{
		"prosimd_batches_total",
		"prosimd_http_requests_total",
		"prosimd_jobs_inflight",
		"jobs_completed_total",
		"jobs_simulated_total",
		"jobs_sim_duration_seconds_bucket",
		"resultcache_hits_total",
		"resultcache_written_bytes_total",
		"sim_heartbeats_total",
		"sim_fanout_decisions_total",
		"sim_lane_batch_size",
		"sim_memsys_par_ticks_total",
		"sim_flight_runs_total",
		"sim_flight_events_total",
		"sim_flight_spans_total",
		"sim_flight_event_ring_occupancy_pct",
		"sim_flight_span_ring_occupancy_pct",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if !strings.Contains(text, `prosimd_http_requests_total{path="/v1/batch"}`) {
		t.Errorf("/metrics missing per-endpoint request series:\n%s", text)
	}
	// Both fan-out decision modes must be pre-registered label series, so
	// dashboards can rate() them from daemon start.
	for _, series := range []string{
		`sim_fanout_decisions_total{mode="parallel"}`,
		`sim_fanout_decisions_total{mode="serial"}`,
		// The flight-recorder attribution histograms are pre-registered
		// per component at package init, so dashboards see the full label
		// set from daemon start even before any recorded run.
		`sim_flight_attr_cycles_bucket{component="dram_queue"`,
		`sim_flight_attr_cycles_bucket{component="total"`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics missing series %s", series)
		}
	}
}

// TestStatsExtendedCacheFields pins the additive /v1/stats extension:
// byte traffic and GC activity appear alongside the original counters,
// and the original fields keep their meaning (wire compatibility).
func TestStatsExtendedCacheFields(t *testing.T) {
	dir := t.TempDir()
	d, c := newTestDaemon(t, Config{Workers: 2, CacheDir: dir})
	js := quickBatch(t)[:2]
	for i := 0; i < 2; i++ {
		if _, err := c.Run(context.Background(), js); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.GC(context.Background(), "0"); err != nil {
		t.Fatal(err)
	}

	// Decode through a raw map as an old client would: the original keys
	// must still be present with their original spellings.
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"completed", "simulated", "replayed", "cacheDir",
		"cacheHits", "cacheMisses", "cacheWrites",
		"cacheBytesRead", "cacheBytesWritten",
		"cacheGCRuns", "cacheGCEvicted", "cacheGCFreedBytes",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/v1/stats missing key %q", key)
		}
	}

	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 4 || st.Simulated != 2 || st.Replayed != 2 {
		t.Fatalf("engine counters: %+v", st)
	}
	if st.CacheBytesWritten <= 0 || st.CacheBytesRead <= 0 {
		t.Fatalf("cache byte counters did not move: %+v", st)
	}
	if st.CacheGCRuns != 1 || st.CacheGCEvicted != 2 || st.CacheGCFreedBytes <= 0 {
		t.Fatalf("gc counters after one full eviction: %+v", st)
	}
	if st.CacheBytesWritten < st.CacheGCFreedBytes {
		t.Fatalf("gc freed %d bytes but only %d were written",
			st.CacheGCFreedBytes, st.CacheBytesWritten)
	}
}

// TestStreamClientDisconnectMidBatch pins the daemon's survival of a
// client that drops the NDJSON stream mid-batch: the handler must not
// wedge, and because leaders run under the daemon's context, work the
// disconnected client started still completes (the cache stays warm for
// the next submission).
func TestStreamClientDisconnectMidBatch(t *testing.T) {
	d, _ := newTestDaemon(t, Config{Workers: 1})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Workers:1 serializes the batch, so after the first job event the
	// remaining jobs are still queued or running when we disconnect.
	js := quickBatch(t)
	req := BatchRequest{Jobs: make([]WireJob, len(js))}
	for i := range js {
		wj, err := FromJob(&js[i])
		if err != nil {
			t.Fatal(err)
		}
		req.Jobs[i] = wj
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		t.Fatalf("stream ended before the first event: %v", sc.Err())
	}
	var first Event
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first stream line: %v", err)
	}
	if first.Type != "job" || first.Seq != 1 {
		t.Fatalf("first event: %+v", first)
	}
	cancel() // drop the connection mid-stream

	// The in-flight leader finishes under the daemon's own context; jobs
	// not yet dispatched are abandoned (their submission context is
	// gone), but the daemon itself must wind the batch down and stay
	// healthy. Wait for the in-flight gauge to drain.
	deadline := time.Now().Add(30 * time.Second)
	for d.running.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := d.running.Load(); got != 0 {
		t.Fatalf("%d jobs still marked in-flight long after disconnect", got)
	}
	if got := d.Engine().Completed(); got < 1 {
		t.Fatalf("leader abandoned on client disconnect: %d completed", got)
	}

	// A fresh client gets full service afterwards.
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.Run(context.Background(), js[:1])
	if err != nil {
		t.Fatalf("daemon unhealthy after client disconnect: %v", err)
	}
	if rs[0].Cycles <= 0 {
		t.Fatalf("bad result after disconnect: %+v", rs[0])
	}
}

// TestTraceSpansCoverBatchLifecycle runs a cold and a warm batch with a
// tracer attached and checks the span stream tells the story: submits
// precede dones, cold jobs are "simulated", warm jobs "cache-hit", and
// every span carries the result-cache key.
func TestTraceSpansCoverBatchLifecycle(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	_, c := newTestDaemon(t, Config{Workers: 2, CacheDir: t.TempDir(), Trace: tr})
	js := quickBatch(t)[:2]
	for i := 0; i < 2; i++ {
		if _, err := c.Run(context.Background(), js); err != nil {
			t.Fatal(err)
		}
	}

	var submits, simulated, cacheHits int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var span struct {
			Event      string `json:"event"`
			Key        string `json:"key"`
			Outcome    string `json:"outcome"`
			DurationMS *int64 `json:"duration_ms"`
			SimCycles  int64  `json:"sim_cycles"`
		}
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		if span.Key == "" {
			t.Fatalf("span without cache key: %s", sc.Text())
		}
		switch span.Event {
		case "submit":
			submits++
		case "done":
			// Every done span reports its duration, even sub-millisecond
			// ones (cache hits).
			if span.DurationMS == nil {
				t.Fatalf("done span without duration_ms: %s", sc.Text())
			}
			switch span.Outcome {
			case "simulated":
				simulated++
				if span.SimCycles <= 0 {
					t.Fatalf("simulated span without cycles: %s", sc.Text())
				}
			case "cache-hit":
				cacheHits++
			default:
				t.Fatalf("unexpected outcome %q", span.Outcome)
			}
		default:
			t.Fatalf("unexpected event %q", span.Event)
		}
	}
	if submits != 4 || simulated != 2 || cacheHits != 2 {
		t.Fatalf("spans: %d submits, %d simulated, %d cache hits (want 4/2/2)",
			submits, simulated, cacheHits)
	}
}
